package wormmesh_test

import (
	"testing"

	"wormmesh"
	"wormmesh/internal/experiments"
)

// One benchmark per figure of the paper. Each runs the same experiment
// definition that cmd/experiments uses at publication scale, reduced
// to bench-friendly cycle counts, and reports the figure's headline
// numbers as custom metrics. Regenerate the full figures with:
//
//	go run ./cmd/experiments all            # paper scale
//	go run ./cmd/experiments -quick all     # CI scale
func benchOptions() experiments.Options {
	o := experiments.Quick()
	o.WarmupCycles = 300
	o.MeasureCycles = 1200
	o.FaultSets = 2
	return o
}

// BenchmarkFig1Throughput regenerates Figure 1: saturation throughput
// of all eleven configurations against the traffic generation rate on
// the fault-free 10×10 mesh.
func BenchmarkFig1Throughput(b *testing.B) {
	o := benchOptions()
	rates := []float64{0.002, 0.006, 0.012}
	var last *experiments.TrafficSweepResult
	for i := 0; i < b.N; i++ {
		res, err := experiments.TrafficSweep(o, nil, rates)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last.PeakThroughput("Duato-Nbc"), "peakThr/Duato-Nbc")
	b.ReportMetric(last.PeakThroughput("PHop"), "peakThr/PHop")
}

// BenchmarkFig2Latency regenerates Figure 2: average message latency
// against the traffic generation rate (same sweep, latency metric).
func BenchmarkFig2Latency(b *testing.B) {
	o := benchOptions()
	rates := []float64{0.001, 0.003}
	var last *experiments.TrafficSweepResult
	for i := 0; i < b.N; i++ {
		res, err := experiments.TrafficSweep(o, nil, rates)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last.Latency["Duato-Nbc"][0], "latency/Duato-Nbc@0.001")
	b.ReportMetric(last.Latency["PHop"][0], "latency/PHop@0.001")
}

// BenchmarkFig3VCUsage regenerates Figure 3: per-virtual-channel
// utilization with 5% node failures.
func BenchmarkFig3VCUsage(b *testing.B) {
	o := benchOptions()
	var last *experiments.VCUsageResult
	for i := 0; i < b.N; i++ {
		res, err := experiments.VCUsage(o, nil, 5)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last.Imbalance("PHop"), "imbalance/PHop")
	b.ReportMetric(last.Imbalance("Duato"), "imbalance/Duato")
}

// BenchmarkFig4Throughput regenerates Figure 4: normalized throughput
// against the percentage of faulty nodes at saturating load.
func BenchmarkFig4Throughput(b *testing.B) {
	o := benchOptions()
	var last *experiments.FaultSweepResult
	for i := 0; i < b.N; i++ {
		res, err := experiments.FaultSweep(o, nil, []int{0, 5, 10})
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last.Throughput["Duato-Nbc"][2], "normThr/Duato-Nbc@10%")
	b.ReportMetric(last.Throughput["PHop"][2], "normThr/PHop@10%")
}

// BenchmarkFig5Latency regenerates Figure 5: normalized message
// latency against the percentage of faulty nodes (same runs as Fig 4;
// benched separately so each figure has its own regeneration target).
func BenchmarkFig5Latency(b *testing.B) {
	o := benchOptions()
	var last *experiments.FaultSweepResult
	for i := 0; i < b.N; i++ {
		res, err := experiments.FaultSweep(o, nil, []int{0, 10})
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last.Latency["Duato-Nbc"][1], "latency/Duato-Nbc@10%")
	b.ReportMetric(last.Latency["PHop"][1], "latency/PHop@10%")
}

// BenchmarkFig6RingLoad regenerates Figure 6: traffic load
// distribution around fault rings for the canned three-region pattern.
func BenchmarkFig6RingLoad(b *testing.B) {
	o := benchOptions()
	var last *experiments.RingLoadResult
	for i := 0; i < b.N; i++ {
		res, err := experiments.RingLoad(o, nil)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(100*last.Faulty["PHop"].OtherShare, "otherShare%/PHop")
	b.ReportMetric(100*last.Faulty["Duato-Nbc"].OtherShare, "otherShare%/Duato-Nbc")
}

// BenchmarkEngineCyclesPerSecond measures raw simulation speed at a
// medium load: how many simulated cycles per wall second the engine
// sustains, the figure of merit for sweep turnaround.
func BenchmarkEngineCyclesPerSecond(b *testing.B) {
	p := wormmesh.DefaultParams()
	p.Algorithm = "Duato-Nbc"
	p.Rate = 0.003
	p.Faults = 5
	p.WarmupCycles = 0
	p.MeasureCycles = 2000
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Seed = int64(i + 1)
		if _, err := wormmesh.Run(p); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(p.MeasureCycles)*float64(b.N)/b.Elapsed().Seconds(), "cycles/s")
}

// BenchmarkSweepParallelism measures the batch harness: many short
// simulations across the worker pool.
func BenchmarkSweepParallelism(b *testing.B) {
	base := wormmesh.DefaultParams()
	base.Rate = 0.002
	base.WarmupCycles = 100
	base.MeasureCycles = 500
	var points []wormmesh.SweepPoint
	for _, alg := range wormmesh.Algorithms() {
		p := base
		p.Algorithm = alg
		points = append(points, wormmesh.SweepPoint{Key: alg, Params: p})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		outcomes := wormmesh.RunBatch(points, 0)
		for _, o := range outcomes {
			if o.Err != nil {
				b.Fatal(o.Err)
			}
		}
	}
}
