// Command benchdiff compares two benchmark digests produced by
// bench.sh (BENCH_core.json / BENCH_sweep.json) and prints per-
// benchmark deltas for ns/op, B/op and allocs/op.
//
// Usage:
//
//	benchdiff [-threshold PCT] [-suite PREFIX] old.json new.json
//
// -suite restricts the comparison (and the threshold gate) to the
// benchmarks whose name starts with Benchmark<PREFIX>, matched
// case-insensitively — `-suite serve` covers BenchmarkServe*. This
// lets CI gate a host-stable suite tightly without cross-host noise
// from the rest of a digest.
//
// Digests made with `./bench.sh 5` contain five entries per benchmark;
// benchdiff aggregates repeats by median before diffing, matching the
// median-of-N methodology the repository's recorded numbers use (the
// standalone benchstat tool is not assumed to be installed).
//
// By default exit status is 0 on a successful comparison — the tool
// reports, it does not judge. With -threshold PCT it also judges:
// when any benchmark present in both digests regresses its median
// ns/op by more than PCT percent, the offenders are listed on stderr
// and the exit status is 1, so CI can gate on it.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
)

// entry mirrors one element of bench.sh's JSON digest. Pointer fields
// distinguish "absent" from zero (allocs_per_op: 0 is a budget worth
// diffing; a missing ns_per_op must not render as a 100% regression).
// Extra metrics (flits/cycle and friends) are ignored: they are
// workload descriptors, not costs.
type entry struct {
	Name        string   `json:"name"`
	Iterations  int64    `json:"iterations"`
	NsPerOp     *float64 `json:"ns_per_op"`
	BytesPerOp  *float64 `json:"bytes_per_op"`
	AllocsPerOp *float64 `json:"allocs_per_op"`
}

// bench holds the aggregated (median) metrics for one benchmark name.
type bench struct {
	ns, bytes, allocs *float64
	runs              int
}

func main() {
	threshold := flag.Float64("threshold", -1,
		"fail (exit 1) when any benchmark's median ns/op regresses by more than this percentage; negative disables the gate")
	suite := flag.String("suite", "",
		"only compare benchmarks named Benchmark<PREFIX>* (case-insensitive), e.g. -suite serve")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [-threshold PCT] [-suite PREFIX] old.json new.json")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 2 {
		flag.Usage()
		os.Exit(2)
	}
	oldPath, newPath := flag.Arg(0), flag.Arg(1)
	old, err := load(oldPath)
	if err != nil {
		fatal(err)
	}
	new_, err := load(newPath)
	if err != nil {
		fatal(err)
	}

	names := make([]string, 0, len(old)+len(new_))
	seen := map[string]bool{}
	for n := range old {
		names = append(names, n)
		seen[n] = true
	}
	for n := range new_ {
		if !seen[n] {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	if *suite != "" {
		kept := names[:0]
		for _, n := range names {
			if suiteMatch(n, *suite) {
				kept = append(kept, n)
			}
		}
		names = kept
		if len(names) == 0 {
			fatal(fmt.Errorf("no benchmarks match -suite %q in either digest", *suite))
		}
	}

	fmt.Printf("%-44s %26s %26s %26s\n", "benchmark", "ns/op", "B/op", "allocs/op")
	var offenders []string
	for _, name := range names {
		o, haveOld := old[name]
		n, haveNew := new_[name]
		switch {
		case !haveOld:
			fmt.Printf("%-44s %s\n", name, "only in "+newPath)
			continue
		case !haveNew:
			fmt.Printf("%-44s %s\n", name, "only in "+oldPath)
			continue
		}
		fmt.Printf("%-44s %26s %26s %26s\n", name,
			delta(o.ns, n.ns), delta(o.bytes, n.bytes), delta(o.allocs, n.allocs))
		if pct, ok := nsRegression(o, n); ok && *threshold >= 0 && pct > *threshold {
			offenders = append(offenders, fmt.Sprintf("%s: ns/op +%.1f%% (threshold %.1f%%)", name, pct, *threshold))
		}
	}
	if len(offenders) > 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: %d benchmark(s) regressed past the threshold:\n", len(offenders))
		for _, o := range offenders {
			fmt.Fprintln(os.Stderr, "  "+o)
		}
		os.Exit(1)
	}
}

// suiteMatch reports whether a benchmark name belongs to the named
// suite: the part after the "Benchmark" prefix must start with the
// suite string, case-insensitively. Names without the Go "Benchmark"
// prefix are compared from their beginning.
func suiteMatch(name, suite string) bool {
	rest := strings.TrimPrefix(name, "Benchmark")
	return len(rest) >= len(suite) && strings.EqualFold(rest[:len(suite)], suite)
}

// nsRegression returns the ns/op regression in percent (positive =
// slower) for a benchmark present in both digests, and whether both
// sides report the metric with a non-zero baseline.
func nsRegression(o, n bench) (float64, bool) {
	if o.ns == nil || n.ns == nil || *o.ns == 0 {
		return 0, false
	}
	return (*n.ns - *o.ns) / *o.ns * 100, true
}

// load parses a digest file and aggregates duplicate benchmark names
// (from -count N runs) by per-metric median.
func load(path string) (map[string]bench, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var entries []entry
	if err := json.Unmarshal(data, &entries); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	groups := map[string][]entry{}
	for _, e := range entries {
		groups[e.Name] = append(groups[e.Name], e)
	}
	out := make(map[string]bench, len(groups))
	for name, g := range groups {
		out[name] = bench{
			ns:     medianOf(g, func(e entry) *float64 { return e.NsPerOp }),
			bytes:  medianOf(g, func(e entry) *float64 { return e.BytesPerOp }),
			allocs: medianOf(g, func(e entry) *float64 { return e.AllocsPerOp }),
			runs:   len(g),
		}
	}
	return out, nil
}

// medianOf takes the median of a metric over the entries that report
// it; nil if none do.
func medianOf(g []entry, get func(entry) *float64) *float64 {
	var vals []float64
	for _, e := range g {
		if v := get(e); v != nil {
			vals = append(vals, *v)
		}
	}
	if len(vals) == 0 {
		return nil
	}
	sort.Float64s(vals)
	var m float64
	if n := len(vals); n%2 == 1 {
		m = vals[n/2]
	} else {
		m = (vals[n/2-1] + vals[n/2]) / 2
	}
	return &m
}

// delta renders "old -> new (±pct%)" for one metric, or "-" when the
// metric is absent on either side. A zero-to-zero metric (the alloc
// budgets) renders as "0 (=)".
func delta(o, n *float64) string {
	if o == nil || n == nil {
		return "-"
	}
	if *o == 0 && *n == 0 {
		return "0 (=)"
	}
	if *o == 0 {
		return fmt.Sprintf("%s -> %s (new)", format(*o), format(*n))
	}
	pct := (*n - *o) / *o * 100
	return fmt.Sprintf("%s -> %s (%+.1f%%)", format(*o), format(*n), pct)
}

// format prints a metric compactly: integers as integers, small
// values with enough precision to be meaningful.
func format(v float64) string {
	switch {
	case v == float64(int64(v)) && v < 1e6:
		return fmt.Sprintf("%d", int64(v))
	case v >= 100:
		return fmt.Sprintf("%.0f", v)
	case v >= 1:
		return fmt.Sprintf("%.2f", v)
	default:
		return fmt.Sprintf("%.4f", v)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchdiff:", err)
	os.Exit(1)
}
