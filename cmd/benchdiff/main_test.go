package main

import (
	"os"
	"path/filepath"
	"testing"
)

func writeDigest(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestLoadAggregatesByMedian checks that repeated entries for the same
// benchmark (a -count 5 digest) collapse to per-metric medians.
func TestLoadAggregatesByMedian(t *testing.T) {
	path := writeDigest(t, "d.json", `[
		{"name":"BenchmarkX","iterations":10,"ns_per_op":100,"bytes_per_op":8,"allocs_per_op":1},
		{"name":"BenchmarkX","iterations":10,"ns_per_op":300,"bytes_per_op":8,"allocs_per_op":1},
		{"name":"BenchmarkX","iterations":10,"ns_per_op":120,"bytes_per_op":8,"allocs_per_op":1},
		{"name":"BenchmarkY","iterations":10,"ns_per_op":50}
	]`)
	got, err := load(path)
	if err != nil {
		t.Fatal(err)
	}
	x, ok := got["BenchmarkX"]
	if !ok {
		t.Fatal("BenchmarkX missing")
	}
	if x.runs != 3 {
		t.Errorf("runs = %d, want 3", x.runs)
	}
	if x.ns == nil || *x.ns != 120 {
		t.Errorf("median ns = %v, want 120", x.ns)
	}
	if x.bytes == nil || *x.bytes != 8 {
		t.Errorf("median bytes = %v, want 8", x.bytes)
	}
	y := got["BenchmarkY"]
	if y.ns == nil || *y.ns != 50 {
		t.Errorf("Y ns = %v, want 50", y.ns)
	}
	if y.bytes != nil {
		t.Errorf("Y bytes = %v, want nil (not reported)", *y.bytes)
	}
}

// TestMedianEvenCount checks the even-length midpoint rule.
func TestMedianEvenCount(t *testing.T) {
	v1, v2 := 10.0, 20.0
	g := []entry{{NsPerOp: &v1}, {NsPerOp: &v2}}
	m := medianOf(g, func(e entry) *float64 { return e.NsPerOp })
	if m == nil || *m != 15 {
		t.Fatalf("median = %v, want 15", m)
	}
}

// TestSuiteMatch pins the -suite prefix filter: the serve suite must
// select BenchmarkServe* and nothing else, case-insensitively.
func TestSuiteMatch(t *testing.T) {
	cases := []struct {
		name, suite string
		want        bool
	}{
		{"BenchmarkServeWarmHit", "serve", true},
		{"BenchmarkServeColdMiss", "Serve", true},
		{"BenchmarkStep10x10", "serve", false},
		{"BenchmarkSweep4x", "serve", false},
		{"BenchmarkServe", "serve", true},
		{"BenchmarkS", "serve", false},
		{"ServeRaw", "serve", true}, // no Benchmark prefix: compared from the start
	}
	for _, c := range cases {
		if got := suiteMatch(c.name, c.suite); got != c.want {
			t.Errorf("suiteMatch(%q, %q) = %v, want %v", c.name, c.suite, got, c.want)
		}
	}
}

// TestDeltaRendering pins the formatting contract the CHANGES.md
// tables rely on.
func TestDeltaRendering(t *testing.T) {
	f := func(v float64) *float64 { return &v }
	cases := []struct {
		o, n *float64
		want string
	}{
		{f(100), f(50), "100 -> 50 (-50.0%)"},
		{f(200), f(300), "200 -> 300 (+50.0%)"},
		{f(0), f(0), "0 (=)"},
		{f(0), f(4), "0 -> 4 (new)"},
		{nil, f(4), "-"},
		{f(4), nil, "-"},
	}
	for _, c := range cases {
		if got := delta(c.o, c.n); got != c.want {
			t.Errorf("delta(%v,%v) = %q, want %q", c.o, c.n, got, c.want)
		}
	}
}
