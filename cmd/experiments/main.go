// Command experiments regenerates the paper's figures and the
// repository's extension studies.
//
// Usage:
//
//	experiments [flags] fig1|fig2|fig3|fig4|fig5|fig6|all
//	experiments -hybrid [flags] fig1|fig2  # analytic-guided: simulate the knee bracket, model-fill the rest
//	experiments [flags] ablate        # VC count / buffer depth / selection policy
//	experiments [flags] model         # analytic model vs. simulator
//	experiments [flags] saturation    # per-algorithm saturation points
//	experiments [flags] adaptivity    # routing freedom per decision
//	experiments [flags] scale         # larger meshes on the parallel engine
//	experiments [flags] hotspot       # on-ring vs off-ring blocked-cycle maps
//	experiments [flags] warmup        # fixed vs MSER-detected warm-up truncation
//	experiments [flags] topology      # mesh vs torus backends, torus-enabled roster
//
// Each target prints an ASCII chart plus the underlying data table;
// -csv DIR additionally writes the table as CSV.
package main

import (
	"flag"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"path/filepath"
	"strings"

	"wormmesh"

	"wormmesh/internal/experiments"
	"wormmesh/internal/metrics"
	"wormmesh/internal/prof"
	"wormmesh/internal/report"
	"wormmesh/internal/serve"
	"wormmesh/internal/sweep"
)

func main() {
	opt := experiments.Paper()
	var quick bool
	var csvDir string
	var algs string
	var cpuProfile, memProfile string
	var metricsAddr, cacheDir string
	var hybrid bool
	var hybridRadius float64
	var hybridFaults int
	flag.BoolVar(&quick, "quick", false, "reduced cycle counts (CI scale)")
	flag.BoolVar(&hybrid, "hybrid", false, "analytic-guided fig1/fig2 sweep: simulate only the saturation-knee bracket, model-fill the rest (per-cell provenance in the table)")
	flag.Float64Var(&hybridRadius, "hybrid-radius", 0, "hybrid bracket radius around the predicted knee (<=1 uses the default 1.3)")
	flag.IntVar(&hybridFaults, "hybrid-faults", 0, "random node faults for the hybrid sweep's curves (0 = the paper's fault-free figs 1-2)")
	flag.StringVar(&opt.Topology, "topology", "mesh", "network topology: mesh|torus (re-bases every study)")
	flag.IntVar(&opt.FaultSets, "sets", opt.FaultSets, "fault sets per case")
	flag.Int64Var(&opt.WarmupCycles, "warmup", opt.WarmupCycles, "warm-up cycles")
	flag.Int64Var(&opt.MeasureCycles, "cycles", opt.MeasureCycles, "measured cycles")
	flag.IntVar(&opt.Workers, "workers", 0, "parallel workers (0 = NumCPU)")
	flag.Int64Var(&opt.Seed, "seed", opt.Seed, "base seed")
	flag.StringVar(&csvDir, "csv", "", "directory for CSV output")
	flag.StringVar(&algs, "algs", "", "comma-separated algorithm subset")
	flag.StringVar(&cpuProfile, "cpuprofile", "", "write a CPU profile to this file")
	flag.StringVar(&memProfile, "memprofile", "", "write a heap profile to this file on exit")
	flag.StringVar(&metricsAddr, "metrics-addr", "", "serve live sweep-progress metrics (Prometheus text) on this address, e.g. :9090")
	flag.StringVar(&cacheDir, "cache", "", "content-addressed result cache directory (shared with meshserve); repeated cells answer without simulating")
	flag.Parse()
	stopProf, err := prof.Start(cpuProfile, memProfile)
	if err != nil {
		fatal(err)
	}
	defer stopProf()
	if quick {
		q := experiments.Quick()
		opt.WarmupCycles, opt.MeasureCycles, opt.FaultSets = q.WarmupCycles, q.MeasureCycles, q.FaultSets
	}
	opt.Progress = os.Stderr

	if metricsAddr != "" {
		reg := metrics.NewRegistry()
		opt.SweepMetrics = metrics.NewSweep(reg)
		reg.PublishExpvar()
		_, addr, err := metrics.Serve(metricsAddr, reg)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "experiments: serving live metrics on http://%s/metrics\n", addr)
	}

	var resultCache *serve.SweepCache
	if cacheDir != "" {
		c, err := serve.OpenDiskCache(cacheDir, 0)
		if err != nil {
			fatal(err)
		}
		resultCache = serve.NewSweepCache(c)
		opt.Cache = resultCache
		defer func() {
			hits, diskHits, misses := resultCache.Stats()
			fmt.Fprintf(os.Stderr, "experiments: cache: %d hits (%d from disk), %d misses\n", hits, diskHits, misses)
		}()
	}

	// With -csv, a manifest.json lands next to the tables: parameters,
	// command line, wall time, and a digest per CSV so two regenerations
	// can be compared for bit-identity without diffing the files.
	var manifest *metrics.Manifest
	csvDigests := map[string]string{}

	// Reject unusable topology/algorithm combinations up front: torus
	// runs are limited to the fortifications that stay deadlock-free
	// over wrap links.
	topo, err := wormmesh.NewTopology(opt.Topology, opt.Width, opt.Height)
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(2)
	}
	var algorithms []string
	if algs != "" {
		algorithms = strings.Split(algs, ",")
		for _, a := range algorithms {
			if err := wormmesh.SupportsTopology(a, topo); err != nil {
				fmt.Fprintln(os.Stderr, "experiments:", err)
				os.Exit(2)
			}
		}
	} else if topo.Kind() == "torus" {
		// Figure defaults include mesh-only algorithms; on the torus the
		// implicit roster is the torus-enabled subset.
		for _, a := range wormmesh.Algorithms() {
			if wormmesh.SupportsTopology(a, topo) == nil {
				algorithms = append(algorithms, a)
			}
		}
	}

	targets := flag.Args()
	if len(targets) == 0 {
		targets = []string{"all"}
	}
	want := map[string]bool{}
	for _, t := range targets {
		if t == "all" {
			for _, f := range []string{"fig1", "fig2", "fig3", "fig4", "fig5", "fig6"} {
				want[f] = true
			}
			continue
		}
		want[t] = true
	}

	// Hybrid mode drives the fig1/fig2 traffic sweep only, and only
	// over cells the analytic surrogate models; reject anything else
	// up front rather than silently falling back to full simulation.
	if hybrid {
		for tgt := range want {
			if tgt != "fig1" && tgt != "fig2" {
				fmt.Fprintf(os.Stderr, "experiments: -hybrid applies to fig1/fig2 only, not %q\n", tgt)
				os.Exit(2)
			}
		}
		roster := algorithms
		if roster == nil {
			roster = wormmesh.Algorithms()
		}
		for _, alg := range roster {
			probe := wormmesh.DefaultParams()
			probe.Topology = opt.Topology
			probe.Algorithm = alg
			probe.Faults = hybridFaults
			if err := sweep.HybridSupported(probe); err != nil {
				fmt.Fprintln(os.Stderr, "experiments:", err)
				os.Exit(2)
			}
		}
	}

	if csvDir != "" {
		manifest = metrics.NewManifest("experiments", opt)
		manifest.Seeds = []int64{opt.Seed}
	}

	saveCSV := func(name string, t *report.Table) {
		if csvDir == "" {
			return
		}
		if err := os.MkdirAll(csvDir, 0o755); err != nil {
			fatal(err)
		}
		f, err := os.Create(filepath.Join(csvDir, name+".csv"))
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		h := fnv.New64a()
		if err := t.WriteCSV(io.MultiWriter(f, h)); err != nil {
			fatal(err)
		}
		csvDigests[name] = fmt.Sprintf("fnv1a:%016x", h.Sum64())
		fmt.Fprintf(os.Stderr, "wrote %s\n", filepath.Join(csvDir, name+".csv"))
	}

	if (want["fig1"] || want["fig2"]) && hybrid {
		res, err := experiments.HybridTrafficSweep(opt, algorithms, nil, hybridFaults, hybridRadius)
		if err != nil {
			fatal(err)
		}
		if want["fig1"] {
			must(res.ThroughputChart().Write(os.Stdout))
			fmt.Println()
		}
		if want["fig2"] {
			must(res.LatencyChart().Write(os.Stdout))
			fmt.Println()
		}
		fmt.Printf("hybrid sweep: %d of %d points simulated, the rest model-filled\n",
			res.SimulatedPoints, res.TotalPoints)
		must(res.SummaryTable().Write(os.Stdout))
		fmt.Println()
		must(res.Table().Write(os.Stdout))
		saveCSV("fig1_fig2_hybrid_sweep", res.Table())
		if manifest != nil {
			manifest.Notes = map[string]any{
				"hybrid_provenance":       res.Provenance(),
				"hybrid_simulated_points": res.SimulatedPoints,
				"hybrid_total_points":     res.TotalPoints,
			}
		}
		fmt.Println()
	} else if want["fig1"] || want["fig2"] {
		res, err := experiments.TrafficSweep(opt, algorithms, nil)
		if err != nil {
			fatal(err)
		}
		if want["fig1"] {
			must(res.ThroughputChart().Write(os.Stdout))
			fmt.Println()
		}
		if want["fig2"] {
			must(res.LatencyChart().Write(os.Stdout))
			fmt.Println()
		}
		must(res.Table().Write(os.Stdout))
		saveCSV("fig1_fig2_traffic_sweep", res.Table())
		fmt.Println()
	}
	if want["fig3"] {
		res, err := experiments.VCUsage(opt, algorithms, 5)
		if err != nil {
			fatal(err)
		}
		for _, alg := range res.Algorithms {
			must(res.Chart(alg).Write(os.Stdout))
			fmt.Println()
		}
		must(res.Table().Write(os.Stdout))
		saveCSV("fig3_vc_usage", res.Table())
		fmt.Println()
	}
	if want["fig4"] || want["fig5"] {
		res, err := experiments.FaultSweep(opt, algorithms, nil)
		if err != nil {
			fatal(err)
		}
		if want["fig4"] {
			must(res.ThroughputChart().Write(os.Stdout))
			fmt.Println()
		}
		if want["fig5"] {
			must(res.LatencyChart().Write(os.Stdout))
			fmt.Println()
		}
		must(res.Table().Write(os.Stdout))
		saveCSV("fig4_fig5_fault_sweep", res.Table())
		fmt.Println()
	}
	if want["fig6"] {
		res, err := experiments.RingLoad(opt, algorithms)
		if err != nil {
			fatal(err)
		}
		must(res.Chart().Write(os.Stdout))
		fmt.Println()
		must(res.Table().Write(os.Stdout))
		saveCSV("fig6_ring_load", res.Table())
		fmt.Println()
	}
	if want["ablate"] {
		alg := "Duato-Nbc"
		if len(algorithms) > 0 {
			alg = algorithms[0]
		}
		vcs, err := opt.AblateVCs(alg, nil)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("ablation: virtual channels (%s)\n", alg)
		must(vcs.Table().Write(os.Stdout))
		saveCSV("ablate_vcs", vcs.Table())
		fmt.Println()
		buf, err := opt.AblateBufDepth(alg, nil)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("ablation: VC buffer depth (%s)\n", alg)
		must(buf.Table().Write(os.Stdout))
		saveCSV("ablate_bufdepth", buf.Table())
		fmt.Println()
		sel, err := opt.AblateSelection(alg)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("ablation: selection policy (%s)\n", alg)
		must(sel.Table().Write(os.Stdout))
		saveCSV("ablate_selection", sel.Table())
		fmt.Println()
		msg, err := opt.AblateMessageLength(alg, nil)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("ablation: message length at constant flit load (%s)\n", alg)
		must(msg.Table().Write(os.Stdout))
		saveCSV("ablate_msglength", msg.Table())
		fmt.Println()
	}
	if want["model"] {
		res, err := opt.ModelValidation(nil)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("analytic model vs. simulator (contention gain fitted at the first rate: %.2f)\n", res.Gain)
		must(res.Table().Write(os.Stdout))
		saveCSV("model_validation", res.Table())
		fmt.Println()
		// Faulted validation covers meshes only: the surrogate's route
		// loads are mesh fortifications.
		if opt.Topology == "" || opt.Topology == "mesh" {
			fres, err := opt.FaultedModelValidation()
			if err != nil {
				fatal(err)
			}
			fmt.Println("faulted model vs. simulator (γ fitted at 0.55 of each scenario's predicted knee)")
			must(fres.Table().Write(os.Stdout))
			saveCSV("model_validation_faulted", fres.Table())
			fmt.Println()
		}
	}
	if want["adaptivity"] {
		res, err := experiments.Adaptivity(opt, algorithms, 5, 400)
		if err != nil {
			fatal(err)
		}
		fmt.Println("routing freedom per decision (5% faults)")
		must(res.Table().Write(os.Stdout))
		saveCSV("adaptivity", res.Table())
		fmt.Println()
	}
	if want["scale"] {
		res, err := experiments.Scale(opt, algorithms, nil)
		if err != nil {
			fatal(err)
		}
		fmt.Println("scaling study (5% faults, 0.1 flits/node/cycle offered)")
		must(res.Table().Write(os.Stdout))
		saveCSV("scale", res.Table())
		fmt.Println()
	}
	if want["hotspot"] {
		res, err := experiments.Hotspot(opt, algorithms, nil)
		if err != nil {
			fatal(err)
		}
		fmt.Println("hotspot study: blocked cycles on f-ring links vs. the rest (saturating load)")
		for _, alg := range res.Algorithms {
			if lv := res.Views[alg]; lv != nil {
				must(lv.Write(os.Stdout))
				fmt.Println()
			}
		}
		must(res.Table().Write(os.Stdout))
		saveCSV("hotspot", res.Table())
		fmt.Println()
	}
	if want["warmup"] {
		alg := "Duato-Nbc"
		if len(algorithms) > 0 {
			alg = algorithms[0]
		}
		res, err := experiments.Warmup(opt, alg, 5, nil)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("warm-up sensitivity: fixed truncation ladder vs MSER detection (%s, %d faults)\n", res.Algorithm, res.Faults)
		must(res.Table().Write(os.Stdout))
		saveCSV("warmup", res.Table())
		if manifest != nil {
			detected := map[string]any{}
			for _, row := range res.Rows {
				if row.Variant == "mser" {
					detected[fmt.Sprintf("rate_%g", row.Rate)] = row.Effective
				}
			}
			if manifest.Notes == nil {
				manifest.Notes = map[string]any{}
			}
			manifest.Notes["warmup_detected_truncation"] = detected
		}
		fmt.Println()
	}
	if want["topology"] {
		res, err := experiments.TopologyCompare(opt, algorithms)
		if err != nil {
			fatal(err)
		}
		fmt.Println("topology study: mesh vs torus, each normalized to its own bisection capacity")
		must(res.Table().Write(os.Stdout))
		saveCSV("topology", res.Table())
		fmt.Println()
	}
	if want["saturation"] {
		res, err := opt.SaturationPoints(algorithms)
		if err != nil {
			fatal(err)
		}
		fmt.Println("measured saturation points (fault-free)")
		must(res.Table().Write(os.Stdout))
		saveCSV("saturation_points", res.Table())
		fmt.Println()
	}

	if manifest != nil {
		must(manifest.Finish(csvDigests))
		path := filepath.Join(csvDir, "manifest.json")
		must(manifest.WriteFile(path))
		fmt.Fprintf(os.Stderr, "wrote %s\n", path)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}

func must(err error) {
	if err != nil {
		fatal(err)
	}
}
