// Command meshserve runs the simulation service: an HTTP/JSON API over
// a content-addressed result cache and a worker fleet of pooled
// sim.Runners. Repeated parameter studies cost a cache lookup instead
// of a simulation; misses are deduplicated, queued with backpressure,
// and (where the analytic surrogate applies) answered instantly with a
// provenance-tagged model estimate while the exact result computes.
//
// Usage:
//
//	meshserve -addr :8080 -cache /var/cache/wormmesh
//
// Endpoints:
//
//	POST /run    {"params":{...},"wait":true}  one simulation cell
//	POST /sweep  {"base":{...},"algorithms":[...],"rates":[...]}
//	GET  /jobs/{key|sweep-id}                  job/sweep progress
//	GET  /metrics, /debug/vars, /healthz
package main

import (
	"expvar"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"

	"wormmesh/internal/metrics"
	"wormmesh/internal/serve"
)

func main() {
	var addr, cacheDir string
	var mem, workers, queue, maxRunners int
	flag.StringVar(&addr, "addr", ":8080", "listen address (use 127.0.0.1:0 for a kernel-assigned port)")
	flag.StringVar(&cacheDir, "cache", "", "disk store directory for cached results (empty = memory only)")
	flag.IntVar(&mem, "mem", 0, "in-memory cache entries (0 = 4096)")
	flag.IntVar(&workers, "workers", 0, "simulation workers (0 = NumCPU)")
	flag.IntVar(&queue, "queue", 0, "max queued jobs before 429 backpressure (0 = 256)")
	flag.IntVar(&maxRunners, "max-runners", 0, "warm Runners kept between jobs (0 = workers)")
	flag.Parse()

	reg := metrics.NewRegistry()
	srv, err := serve.New(serve.Config{
		Dir:        cacheDir,
		MemEntries: mem,
		Workers:    workers,
		QueueDepth: queue,
		MaxRunners: maxRunners,
		Registry:   reg,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "meshserve:", err)
		os.Exit(1)
	}
	reg.PublishExpvar()

	mux := http.NewServeMux()
	mux.Handle("/", srv.Handler())
	mux.Handle("/metrics", reg.Handler())
	mux.Handle("/debug/vars", expvar.Handler())

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "meshserve:", err)
		os.Exit(1)
	}
	// The bound address goes to stderr so scripts starting us on ":0"
	// (the CI smoke test does) can discover the port.
	fmt.Fprintf(os.Stderr, "meshserve: listening on http://%s\n", ln.Addr())
	if cacheDir != "" {
		fmt.Fprintf(os.Stderr, "meshserve: disk store at %s\n", cacheDir)
	}

	httpSrv := &http.Server{Handler: mux}
	done := make(chan error, 1)
	go func() { done <- httpSrv.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case s := <-sig:
		fmt.Fprintf(os.Stderr, "meshserve: %v, shutting down\n", s)
		httpSrv.Close()
		srv.Close()
	case err := <-done:
		if err != nil && err != http.ErrServerClosed {
			fmt.Fprintln(os.Stderr, "meshserve:", err)
			srv.Close()
			os.Exit(1)
		}
	}
}
