// Command meshserve runs the simulation service: an HTTP/JSON API over
// a content-addressed result cache and a worker fleet of pooled
// sim.Runners. Repeated parameter studies cost a cache lookup instead
// of a simulation; misses are deduplicated, queued with backpressure,
// and (where the analytic surrogate applies) answered instantly with a
// provenance-tagged model estimate while the exact result computes.
//
// Usage:
//
//	meshserve -addr :8080 -cache /var/cache/wormmesh
//
// Endpoints:
//
//	POST /run    {"params":{...},"wait":true}  one simulation cell
//	POST /sweep  {"base":{...},"algorithms":[...],"rates":[...]}
//	GET  /jobs/{key|sweep-id}                  job/sweep progress
//	GET  /jobs/{key}/live                      SSE window-telemetry stream
//	GET  /traces/{id}                          span tree for a request
//	GET  /traces/{id}.json                     Chrome trace JSON (Perfetto)
//	GET  /metrics, /debug/vars, /healthz, /readyz
//
// Every response carries an X-Trace-Id header; feed it to /traces to
// see where the request's time went. Logs are structured (slog); pick
// the format with -log-format. -pprof-addr exposes net/http/pprof on a
// separate listener for production profiling.
package main

import (
	"context"
	"expvar"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on the -pprof-addr listener
	"os"
	"os/signal"
	"syscall"
	"time"

	"wormmesh/internal/metrics"
	"wormmesh/internal/serve"
)

func main() {
	var addr, cacheDir, logFormat, pprofAddr string
	var mem, workers, queue, maxRunners, traceSpans, engineEvents int
	var windowCycles int64
	flag.StringVar(&addr, "addr", ":8080", "listen address (use 127.0.0.1:0 for a kernel-assigned port)")
	flag.StringVar(&cacheDir, "cache", "", "disk store directory for cached results (empty = memory only)")
	flag.IntVar(&mem, "mem", 0, "in-memory cache entries (0 = 4096)")
	flag.IntVar(&workers, "workers", 0, "simulation workers (0 = NumCPU)")
	flag.IntVar(&queue, "queue", 0, "max queued jobs before 429 backpressure (0 = 256)")
	flag.IntVar(&maxRunners, "max-runners", 0, "warm Runners kept between jobs (0 = workers)")
	flag.IntVar(&traceSpans, "trace-spans", 0, "completed-span ring capacity (0 = 8192, negative = tracing off)")
	flag.IntVar(&engineEvents, "engine-events", 0, "per-job engine flight-recorder capacity (0 = 4096, negative = engine bridge off)")
	flag.Int64Var(&windowCycles, "window-cycles", 0, "live window-sampler width in cycles for /jobs/{key}/live (0 = 512, negative = window telemetry off)")
	flag.StringVar(&logFormat, "log-format", "text", "log format: text|json")
	flag.StringVar(&pprofAddr, "pprof-addr", "", "serve net/http/pprof on this address (empty = off)")
	flag.Parse()

	var handler slog.Handler
	switch logFormat {
	case "text":
		handler = slog.NewTextHandler(os.Stderr, nil)
	case "json":
		handler = slog.NewJSONHandler(os.Stderr, nil)
	default:
		fmt.Fprintf(os.Stderr, "meshserve: unknown -log-format %q (want text or json)\n", logFormat)
		os.Exit(2)
	}
	logger := slog.New(handler)

	reg := metrics.NewRegistry()
	srv, err := serve.New(serve.Config{
		Dir:          cacheDir,
		MemEntries:   mem,
		Workers:      workers,
		QueueDepth:   queue,
		MaxRunners:   maxRunners,
		Registry:     reg,
		Logger:       logger,
		TraceSpans:   traceSpans,
		EngineEvents: engineEvents,
		WindowCycles: windowCycles,
	})
	if err != nil {
		logger.Error("startup failed", "error", err)
		os.Exit(1)
	}
	reg.PublishExpvar()

	mux := http.NewServeMux()
	mux.Handle("/", srv.Handler())
	mux.Handle("/metrics", reg.Handler())
	mux.Handle("/debug/vars", expvar.Handler())

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		logger.Error("listen failed", "addr", addr, "error", err)
		os.Exit(1)
	}
	// Startup banner. The url attribute is load-bearing: scripts that
	// start us on ":0" (the CI smoke test) parse the bound port out of
	// this line.
	logger.Info("listening",
		"url", fmt.Sprintf("http://%s", ln.Addr()),
		"store", cacheDir,
		"workers", workers,
		"queue_depth", queue,
		"cache_entries", mem,
		"log_format", logFormat)

	if pprofAddr != "" {
		go func() {
			logger.Info("pprof listening", "addr", pprofAddr)
			// DefaultServeMux carries the /debug/pprof handlers the
			// blank import registered; nothing else is mounted on it.
			if err := http.ListenAndServe(pprofAddr, nil); err != nil {
				logger.Error("pprof listener failed", "error", err)
			}
		}()
	}

	httpSrv := &http.Server{Handler: mux}
	done := make(chan error, 1)
	go func() { done <- httpSrv.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case s := <-sig:
		logger.Info("shutting down", "signal", s.String(), "in_flight", srv.InFlight())
		// Stop accepting requests, then drain: queued jobs run to
		// completion (Close waits on them), with progress logged so an
		// operator watching a long drain knows it is moving.
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		_ = httpSrv.Shutdown(ctx)
		cancel()
		drained := make(chan struct{})
		go func() { srv.Close(); close(drained) }()
		ticker := time.NewTicker(2 * time.Second)
		for {
			select {
			case <-drained:
				ticker.Stop()
				logger.Info("drained, exiting")
				return
			case <-ticker.C:
				logger.Info("draining", "in_flight", srv.InFlight())
			}
		}
	case err := <-done:
		if err != nil && err != http.ErrServerClosed {
			logger.Error("server failed", "error", err)
			srv.Close()
			os.Exit(1)
		}
	}
}
