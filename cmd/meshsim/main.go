// Command meshsim runs a single wormhole-mesh simulation and prints
// the measured statistics.
//
// Usage:
//
//	meshsim -alg Duato-Nbc -rate 0.002 -faults 5 -cycles 30000
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"sort"
	"strings"
	"time"

	"wormmesh"
	"wormmesh/internal/core"
	"wormmesh/internal/metrics"
	"wormmesh/internal/prof"
	"wormmesh/internal/report"
	"wormmesh/internal/serve"
	"wormmesh/internal/sweep"
	"wormmesh/internal/trace"
)

func main() {
	p := wormmesh.DefaultParams()
	var total int64
	var list, heat, traceFlits, latBreakdown, predict, live bool
	var windows int64
	var traceFile, postmortemFile, metricsAddr, manifestFile, linkmapFile, chromeFile string
	var engineWorkers, reps, flightrecEvents int
	var cpuProfile, memProfile, cacheDir string
	flag.StringVar(&p.Algorithm, "alg", p.Algorithm, "routing algorithm (see -list)")
	flag.StringVar(&p.Topology, "topology", "mesh", "network topology: mesh|torus")
	flag.IntVar(&p.Width, "width", p.Width, "mesh width")
	flag.IntVar(&p.Height, "height", p.Height, "mesh height")
	flag.Float64Var(&p.Rate, "rate", p.Rate, "traffic rate (messages/node/cycle)")
	flag.IntVar(&p.MessageLength, "len", p.MessageLength, "message length in flits")
	flag.IntVar(&p.Faults, "faults", p.Faults, "number of random node faults")
	flag.Int64Var(&p.Seed, "seed", p.Seed, "traffic/arbitration seed")
	flag.Int64Var(&p.FaultSeed, "fault-seed", p.FaultSeed, "fault pattern seed")
	flag.IntVar(&p.Config.NumVCs, "vcs", p.Config.NumVCs, "virtual channels per physical channel")
	flag.IntVar(&p.Config.BufDepth, "buf", p.Config.BufDepth, "VC buffer depth in flits")
	flag.StringVar(&p.Pattern, "pattern", p.Pattern, "traffic pattern: uniform|transpose|bit-complement|bit-reverse|tornado|hotspot")
	flag.Int64Var(&p.WarmupCycles, "warmup", p.WarmupCycles, "warm-up cycles (not measured)")
	flag.Int64Var(&total, "cycles", p.WarmupCycles+p.MeasureCycles, "total cycles including warm-up")
	flag.BoolVar(&list, "list", false, "list algorithms and exit")
	flag.BoolVar(&predict, "predict", false, "print the analytic surrogate's latency/saturation predictions for this configuration instead of simulating")
	flag.BoolVar(&heat, "heatmap", false, "print the per-node traffic load heatmap")
	flag.StringVar(&linkmapFile, "linkmap", "", "enable per-link telemetry, write the per-link counter CSV to this file and print directional congestion maps (single run only)")
	flag.BoolVar(&latBreakdown, "latbreakdown", false, "print the latency-anatomy table (per-component means, shares, percentiles; single run only)")
	flag.Int64Var(&windows, "windows", 0, "collect time-series windows of this many cycles")
	flag.BoolVar(&live, "live", false, "render a live terminal dashboard while the run executes (sparklines + link congestion; single run only)")
	flag.StringVar(&p.WarmupMode, "warmup-mode", "", "warm-up truncation: fixed (default) or mser (detect steady state, cap at -warmup)")
	flag.Float64Var(&p.StopRelPrecision, "stop-rel", 0, "stop measuring once the 95% CI half-width on latency is within this fraction of the mean (0 = run all cycles)")
	flag.Int64Var(&p.SteadyWindow, "steady-window", 0, "batch width in cycles for -warmup-mode mser and -stop-rel (0 = 500)")
	flag.StringVar(&traceFile, "trace", "", "write the event stream as JSON lines to this file (with -reps > 1, only the first replication is traced)")
	flag.BoolVar(&traceFlits, "trace-flits", false, "include per-flit hops in the trace")
	flag.StringVar(&postmortemFile, "postmortem", "", "write a deadlock post-mortem (wait-for graph, blocked chains, recent events) to this file at each global watchdog firing (with -reps > 1, first replication only)")
	flag.IntVar(&flightrecEvents, "flightrec", 0, "flight recorder ring capacity in events (0 = off unless -postmortem is set)")
	flag.StringVar(&chromeFile, "chrometrace", "", "write the run's engine events as Chrome trace-event JSON to this file (load in Perfetto or chrome://tracing; ring capacity from -flightrec; single run only)")
	flag.StringVar(&metricsAddr, "metrics-addr", "", "serve live Prometheus metrics on this address (e.g. :9090; endpoints /metrics and /debug/vars)")
	flag.StringVar(&manifestFile, "manifest", "", "write a JSON run manifest (params, seeds, wall time, result digest) to this file")
	flag.IntVar(&engineWorkers, "engine-workers", 0, "use the deterministic parallel engine with this many workers")
	flag.IntVar(&reps, "reps", 1, "replications over fault sets/seeds, reported as mean ± 95% CI")
	flag.StringVar(&cpuProfile, "cpuprofile", "", "write a CPU profile to this file")
	flag.StringVar(&memProfile, "memprofile", "", "write a heap profile to this file on exit")
	flag.StringVar(&cacheDir, "cache", "", "content-addressed result cache directory (shared with meshserve); repeated configurations answer without simulating")
	flag.Parse()

	stopProf, err := prof.Start(cpuProfile, memProfile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "meshsim:", err)
		os.Exit(1)
	}
	defer stopProf()

	if list {
		for _, name := range wormmesh.Algorithms() {
			fmt.Printf("  %-18s %s\n", name, wormmesh.DescribeAlgorithm(name))
		}
		return
	}
	p.MeasureCycles = total - p.WarmupCycles
	if p.MeasureCycles <= 0 {
		fmt.Fprintln(os.Stderr, "meshsim: -cycles must exceed -warmup")
		os.Exit(2)
	}
	// Reject unusable topology/algorithm combinations before any run
	// setup: not every fortification is deadlock-free over wrap links
	// (the rejection message explains why).
	topo, err := wormmesh.NewTopology(p.Topology, p.Width, p.Height)
	if err != nil {
		fmt.Fprintln(os.Stderr, "meshsim:", err)
		os.Exit(2)
	}
	if err := wormmesh.SupportsTopology(p.Algorithm, topo); err != nil {
		fmt.Fprintln(os.Stderr, "meshsim:", err)
		os.Exit(2)
	}
	// -predict answers from the analytic surrogate without running the
	// engine. Configurations the surrogate does not model (torus, or
	// faults under an algorithm outside the BC fortification) are a
	// usage error, not a silent fallback to simulation.
	if predict {
		if err := printPrediction(p); err != nil {
			fmt.Fprintln(os.Stderr, "meshsim:", err)
			os.Exit(2)
		}
		return
	}
	// Per-run telemetry reports describe ONE run; replications aggregate
	// many. Reject the combination up front (like -trace documents its
	// first-replication-only behavior, but these flags would silently
	// report an arbitrary replication).
	if reps > 1 && (linkmapFile != "" || latBreakdown || chromeFile != "" || live) {
		fmt.Fprintln(os.Stderr, "meshsim: -linkmap, -latbreakdown, -chrometrace and -live report a single run; drop them or use -reps 1")
		os.Exit(2)
	}
	if linkmapFile != "" {
		p.Config.ChannelTelemetry = true
	}
	// A Chrome export without a window series has no counter tracks;
	// default the width so -chrometrace alone yields the load curves
	// (the stdout time-series table stays tied to an explicit -windows).
	windowsAsked := windows > 0
	if chromeFile != "" && windows == 0 {
		windows = core.DefaultWindowCycles
	}
	p.WindowCycles = windows
	p.EngineWorkers = engineWorkers
	if traceFile != "" {
		f, err := os.Create(traceFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "meshsim:", err)
			os.Exit(1)
		}
		defer f.Close()
		p.TraceWriter = f
		p.TraceFlits = traceFlits
	}
	if postmortemFile != "" {
		f, err := os.Create(postmortemFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "meshsim:", err)
			os.Exit(1)
		}
		defer f.Close()
		p.PostmortemWriter = f
	}
	p.FlightRecorderEvents = flightrecEvents
	var chromeRec *core.FlightRecorder
	if chromeFile != "" {
		capacity := flightrecEvents
		if capacity <= 0 {
			capacity = core.DefaultFlightRecorderEvents
		}
		chromeRec = core.NewFlightRecorder(capacity)
		p.FlightRecorder = chromeRec
	}

	var sweepMetrics *metrics.Sweep
	if metricsAddr != "" {
		reg := metrics.NewRegistry()
		p.Metrics = metrics.NewSim(reg)
		sweepMetrics = metrics.NewSweep(reg)
		reg.PublishExpvar()
		_, addr, err := metrics.Serve(metricsAddr, reg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "meshsim:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "meshsim: serving live metrics on http://%s/metrics\n", addr)
	}

	var manifest *metrics.Manifest
	if manifestFile != "" {
		manifest = metrics.NewManifest("meshsim", p)
		manifest.Seeds = []int64{p.Seed}
	}

	// -cache shares meshserve's content-addressed store. Runs that need
	// artifacts a cached Stats cannot reproduce (traces, post-mortems,
	// link/window telemetry, the fault-model heatmap) skip the lookup
	// but still file their result for future plain runs.
	var cache *serve.SweepCache
	if cacheDir != "" {
		c, err := serve.OpenDiskCache(cacheDir, 0)
		if err != nil {
			fmt.Fprintln(os.Stderr, "meshsim:", err)
			os.Exit(1)
		}
		cache = serve.NewSweepCache(c)
	}

	if reps > 1 {
		runReplications(p, reps, sweepMetrics, manifest, manifestFile, cache)
		return
	}

	var res wormmesh.Result
	cached := false
	if cache != nil && !heat && !live {
		res, cached = cache.Lookup(p)
	}
	if !cached {
		if live {
			res, err = runLive(p, windows)
		} else {
			res, err = wormmesh.Run(p)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "meshsim:", err)
			os.Exit(1)
		}
		if cache != nil {
			cache.Store(p, res)
		}
	}
	st := res.Stats
	if manifest != nil {
		manifest.EffectiveWarmupCycles = st.EffectiveWarmup
		manifest.LatencyCIHalfWidth = st.LatencyCIHalf
	}
	writeManifest(manifest, manifestFile, st)
	if chromeRec != nil {
		if err := writeChromeTrace(chromeFile, p, res, chromeRec); err != nil {
			fmt.Fprintln(os.Stderr, "meshsim:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "meshsim: wrote %s (%d engine events; open in ui.perfetto.dev)\n",
			chromeFile, chromeRec.Len())
	}

	fmt.Printf("%v, %s, %s traffic, rate %g msg/node/cycle, %d-flit messages, %d VCs\n",
		topo, p.Algorithm, p.Pattern, p.Rate, p.MessageLength, p.Config.NumVCs)
	if res.FaultCount > 0 {
		fmt.Printf("faults: %d seed (+%d deactivated) in %d block regions, %d f-ring nodes\n",
			res.SeedFaults, res.FaultCount-res.SeedFaults, res.Regions, res.RingNodes)
	}
	if cached {
		fmt.Printf("measured %d cycles after %d warm-up (cached result, no simulation)\n",
			p.MeasureCycles, p.WarmupCycles)
	} else {
		fmt.Printf("measured %d cycles after %d warm-up (%.2fs wall)\n",
			p.MeasureCycles, p.WarmupCycles, res.Elapsed.Seconds())
	}
	// Under adaptive warm-up or the stopping rule the planned cycle
	// counts above are ceilings; report what actually happened.
	if p.WarmupMode == "mser" || p.StopRelPrecision > 0 {
		fmt.Printf("steady-state: effective warm-up %d cycles, measured %d cycles",
			st.EffectiveWarmup, st.Cycles)
		if st.LatencyCIHalf > 0 {
			fmt.Printf(", latency 95%% CI half-width %.2f cycles", st.LatencyCIHalf)
		}
		fmt.Println()
	}
	fmt.Println()

	t := report.NewTable("metric", "value")
	t.AddRow("generated messages", st.Generated)
	t.AddRow("delivered messages", st.Delivered)
	t.AddRow("refused offers", st.Refused)
	t.AddRow("avg latency (cycles)", st.AvgLatency())
	t.AddRow("latency std dev", st.LatencyStdDev())
	t.AddRow("max latency", st.LatencyMax)
	t.AddRow("avg network latency", st.AvgNetLatency())
	t.AddRow("throughput (flits/node/cycle)", st.Throughput())
	t.AddRow("normalized throughput", res.NormalizedThroughput())
	t.AddRow("avg hops", st.AvgHops())
	t.AddRow("avg detour hops", st.AvgDetour())
	t.AddRow("killed (recovery)", st.Killed)
	if st.Killed > 0 {
		t.AddRow("  killed global/stall/livelock",
			fmt.Sprintf("%d/%d/%d", st.KilledGlobal, st.KilledStall, st.KilledLivelock))
	}
	t.AddRow("deadlock events", st.DeadlockEvents)
	if err := t.Write(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "meshsim:", err)
		os.Exit(1)
	}

	fmt.Println()
	util := st.VCUtilization()
	var b strings.Builder
	b.WriteString("per-VC utilization:")
	for v, u := range util {
		if v%8 == 0 {
			b.WriteString("\n  ")
		}
		fmt.Fprintf(&b, "vc%-2d %.3f  ", v, u)
	}
	fmt.Println(b.String())

	if windowsAsked {
		fmt.Println("\ntime series (per window):")
		for _, w := range res.Windows {
			fmt.Printf("  %v thr=%.4f\n", w, w.Throughput(st.HealthyNodes))
		}
	}
	if latBreakdown {
		fmt.Println("\nlatency anatomy (generation to tail delivery):")
		if err := wormmesh.LatencyAnatomy(st).Write(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "meshsim:", err)
			os.Exit(1)
		}
	}
	if linkmapFile != "" {
		lt, err := res.LinkTable()
		if err != nil {
			fmt.Fprintln(os.Stderr, "meshsim:", err)
			os.Exit(1)
		}
		f, err := os.Create(linkmapFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "meshsim:", err)
			os.Exit(1)
		}
		if err := lt.WriteCSV(f); err == nil {
			err = f.Close()
			if err != nil {
				fmt.Fprintln(os.Stderr, "meshsim:", err)
				os.Exit(1)
			}
		} else {
			f.Close()
			fmt.Fprintln(os.Stderr, "meshsim:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "meshsim: wrote %s\n", linkmapFile)
		for _, metric := range []wormmesh.LinkMetric{wormmesh.LinkFlits, wormmesh.LinkBlocked} {
			lv, err := res.LinkView(metric)
			if err != nil {
				fmt.Fprintln(os.Stderr, "meshsim:", err)
				os.Exit(1)
			}
			fmt.Println()
			if err := lv.Write(os.Stdout); err != nil {
				fmt.Fprintln(os.Stderr, "meshsim:", err)
				os.Exit(1)
			}
		}
	}
	if heat {
		values := make([]float64, len(st.NodeCrossings))
		for id, c := range st.NodeCrossings {
			if res.Faults.IsFaulty(wormmesh.NodeID(id)) {
				values[id] = math.NaN()
			} else {
				values[id] = float64(c) / float64(st.Cycles)
			}
		}
		wraps := topo.Kind() == "torus"
		hm := report.Heatmap{
			Title:  "\nper-node traffic load (crossbar flits/cycle):",
			Width:  p.Width,
			Height: p.Height,
			Values: values,
			WrapX:  wraps,
			WrapY:  wraps,
			Legend: true,
		}
		if err := hm.Write(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "meshsim:", err)
			os.Exit(1)
		}
	}
}

// runReplications runs the configuration over several fault sets and
// seeds in parallel and reports mean and 95% confidence intervals.
// Per-run observers stay on the FIRST replication only: the points run
// concurrently on a worker pool, so sharing one trace/post-mortem
// writer or engine-metrics sampler across replications would interleave
// their streams (the -trace flag documents this).
func runReplications(p wormmesh.Params, reps int, sm *metrics.Sweep, manifest *metrics.Manifest, manifestFile string, cache *serve.SweepCache) {
	points := sweep.FaultReplicas("rep", p, reps)
	if manifest != nil {
		manifest.Seeds = nil
		for _, pt := range points {
			manifest.Seeds = append(manifest.Seeds, pt.Params.Seed)
		}
	}
	for i := 1; i < len(points); i++ {
		points[i].Params.TraceWriter = nil
		points[i].Params.PostmortemWriter = nil
		points[i].Params.Metrics = nil
	}
	var progress func(done, total int)
	if sm != nil {
		sm.Start(len(points))
		defer sm.Finish()
		progress = sm.Progress
	}
	var cacheArg sweep.Cache
	if cache != nil {
		cacheArg = cache
	}
	outcomes := sweep.RunCached(points, 0, progress, cacheArg)
	if err := sweep.FirstError(outcomes); err != nil {
		fmt.Fprintln(os.Stderr, "meshsim:", err)
		os.Exit(1)
	}
	cells := sweep.Aggregate(outcomes)
	c := cells[0]
	writeManifest(manifest, manifestFile, cells)
	if cache != nil {
		hits, _, misses := cache.Stats()
		fmt.Fprintf(os.Stderr, "meshsim: cache: %d hits, %d misses\n", hits, misses)
	}
	fmt.Printf("%d replications of %s (rate %g, %d faults):\n", c.N, p.Algorithm, p.Rate, p.Faults)
	t := report.NewTable("metric", "mean", "ci95", "std")
	t.AddRow("latency (cycles)", c.Latency.Mean(), c.Latency.CI95(), c.Latency.Std())
	t.AddRow("throughput (flits/node/cycle)", c.Throughput.Mean(), c.Throughput.CI95(), c.Throughput.Std())
	t.AddRow("normalized throughput", c.Normalized.Mean(), c.Normalized.CI95(), c.Normalized.Std())
	t.AddRow("detour hops", c.Detour.Mean(), c.Detour.CI95(), c.Detour.Std())
	t.AddRow("killed fraction", c.KilledFraction.Mean(), c.KilledFraction.CI95(), c.KilledFraction.Std())
	if err := t.Write(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "meshsim:", err)
		os.Exit(1)
	}
}

// writeChromeTrace renders the run's flight-recorder history as Chrome
// trace-event JSON: one service-side span for the whole run (wall
// clock) carrying every engine event on the cycle timeline, exactly the
// file GET /traces/{id}.json serves for a meshserve job.
func writeChromeTrace(path string, p wormmesh.Params, res wormmesh.Result, rec *core.FlightRecorder) error {
	end := time.Now()
	tr := trace.New(16)
	root := tr.StartAt(fmt.Sprintf("meshsim %s rate %g", p.Algorithm, p.Rate),
		trace.Context{}, end.Add(-res.Elapsed))
	root.Set("algorithm", p.Algorithm)
	root.Set("rate", p.Rate)
	root.Set("cycles", p.WarmupCycles+p.MeasureCycles)
	evs := rec.Events()
	out := make([]trace.EngineEvent, len(evs))
	for i, e := range evs {
		out[i] = trace.EngineEvent{
			Cycle: e.Cycle, Kind: e.Kind, Msg: e.Msg,
			Src: e.Src, Dst: e.Dst, Node: e.Node,
			Dir: e.Dir, VC: e.VC, Flit: e.Flit, Cause: e.Cause,
		}
	}
	root.AttachEngine(out)
	// Window telemetry (-windows) becomes Perfetto counter tracks above
	// the per-message slices, on the same cycle timeline.
	if len(res.Windows) > 0 {
		healthy := res.Stats.HealthyNodes
		pts := make([]trace.WindowPoint, len(res.Windows))
		for i, w := range res.Windows {
			pts[i] = trace.WindowPoint{
				Seq: int64(i), Start: w.Start, End: w.End,
				Generated: w.Generated, Delivered: w.Delivered,
				DeliveredFlits: w.Flits, Killed: w.Killed,
				InFlight:   w.InFlight,
				AvgLatency: w.AvgLatency, Throughput: w.Throughput(healthy),
			}
		}
		root.AttachWindows(pts)
	}
	root.EndAt(end)
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := trace.WriteChrome(f, tr.Collect(root.TraceID())); err != nil {
		f.Close()
		return fmt.Errorf("chrometrace: %w", err)
	}
	return f.Close()
}

// writeManifest finalizes and writes the run manifest when -manifest
// was given: the results payload is digested (FNV-1a over its JSON
// encoding) so two runs can be compared for bit-identity at a glance.
func writeManifest(m *metrics.Manifest, path string, results any) {
	if m == nil {
		return
	}
	if err := m.Finish(results); err == nil {
		err = m.WriteFile(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "meshsim: manifest:", err)
			os.Exit(1)
		}
	} else {
		fmt.Fprintln(os.Stderr, "meshsim: manifest:", err)
		os.Exit(1)
	}
}

// printPrediction answers the configured cell from the analytic
// surrogate: the predicted saturation knee and the latency anatomy
// across the stable region, with the -rate operating point marked. No
// simulation runs; predictions carry the uncalibrated γ=1 contention
// gain (calibrate against one measured run for tighter numbers).
func printPrediction(p wormmesh.Params) error {
	mo, err := sweep.Surrogate(p)
	if err != nil {
		return err
	}
	knee := mo.SaturationRate()
	kind := "fault-free"
	if mo.Faulted() {
		kind = fmt.Sprintf("%d random faults (fortified route loads)", p.Faults)
	}
	fmt.Printf("analytic surrogate: %dx%d mesh, %s, %d-flit messages, %d VCs, %s\n",
		p.Width, p.Height, p.Algorithm, p.MessageLength, p.Config.NumVCs, kind)
	fmt.Printf("predicted saturation: %.5f messages/node/cycle\n\n", knee)
	t := report.NewTable("rate", "latency_cycles", "blocking_prob", "stretch", "source_wait")
	rates := []float64{0.25 * knee, 0.5 * knee, 0.75 * knee, 0.9 * knee}
	if p.Rate > 0 && p.Rate < knee {
		rates = append(rates, p.Rate)
		sort.Float64s(rates)
	}
	for _, r := range rates {
		mark := ""
		if r == p.Rate {
			mark = " <- -rate"
		}
		pred, err := mo.Predict(r)
		if err != nil {
			t.AddRow(fmt.Sprintf("%.5f%s", r, mark), "saturated", "-", "-", "-")
			continue
		}
		t.AddRow(fmt.Sprintf("%.5f%s", r, mark), pred.Latency, pred.BlockingProb, pred.MeanStretch, pred.SourceWait)
	}
	if p.Rate >= knee {
		fmt.Printf("note: -rate %g is at or beyond the predicted saturation point\n", p.Rate)
	}
	return t.Write(os.Stdout)
}
