// Command routecheck verifies routing safety for a fault pattern:
// every healthy source-destination pair must be deliverable by every
// algorithm (or a chosen one), with no walk entering a faulty node or
// exceeding the hop bound, and the channel dependencies of the
// deterministic walks must form an acyclic graph (the wormhole
// deadlock-freedom witness — on the torus this certifies the dateline
// discipline over the wrap links). Exit status is non-zero on any
// violation.
//
// Usage:
//
//	routecheck -faults 10 -seed 7            # random pattern
//	routecheck -pattern double-wall          # canned pattern
//	routecheck -nodes 33,34,44 -alg Nbc      # explicit pattern, one algorithm
//	routecheck -random 5                     # additionally: 5 random-choice passes
//	routecheck -topology torus               # torus backend, torus-enabled roster
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"

	"wormmesh"
	"wormmesh/internal/fault"
	"wormmesh/internal/routing"
	"wormmesh/internal/topology"
)

func main() {
	var width, height, faults, randomPasses int
	var seed int64
	var nodes, pattern, algName, topoKind string
	flag.IntVar(&width, "width", 10, "mesh width")
	flag.IntVar(&height, "height", 10, "mesh height")
	flag.StringVar(&topoKind, "topology", "mesh", "network topology: mesh|torus")
	flag.IntVar(&faults, "faults", 10, "number of random node faults")
	flag.Int64Var(&seed, "seed", 1, "fault pattern seed")
	flag.StringVar(&nodes, "nodes", "", "comma-separated failed node IDs")
	flag.StringVar(&pattern, "pattern", "", "canned pattern: "+strings.Join(fault.PatternNames(), "|"))
	flag.StringVar(&algName, "alg", "", "check only this algorithm (default: all enabled on the topology)")
	flag.IntVar(&randomPasses, "random", 0, "extra passes with random candidate choice")
	flag.Parse()

	topo, err := wormmesh.NewTopology(topoKind, width, height)
	if err != nil {
		fmt.Fprintln(os.Stderr, "routecheck:", err)
		os.Exit(2)
	}
	model, err := buildModel(topo, pattern, nodes, faults, seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "routecheck:", err)
		os.Exit(1)
	}
	fmt.Printf("%v: %d faulty nodes in %d regions, %d healthy\n",
		topo, model.FaultCount(), len(model.Regions()), model.HealthyCount())

	var algorithms []string
	if algName != "" {
		if err := wormmesh.SupportsTopology(algName, topo); err != nil {
			fmt.Fprintln(os.Stderr, "routecheck:", err)
			os.Exit(2)
		}
		algorithms = []string{algName}
	} else {
		// All enabled algorithms: the full roster on the mesh, the
		// torus-enabled subset over wrap links.
		algorithms = routing.TorusAlgorithmNames(topo)
	}
	failed := false
	for _, name := range algorithms {
		alg, err := routing.New(name, model, 24)
		if err != nil {
			fmt.Fprintf(os.Stderr, "routecheck: %s: %v\n", name, err)
			failed = true
			continue
		}
		res, err := routing.CheckReachability(model, alg, nil)
		if err != nil {
			fmt.Printf("  %-18s FAIL: %v\n", name, err)
			failed = true
			continue
		}
		dag, err := routing.CheckChannelDAG(model, alg)
		if err != nil {
			fmt.Printf("  %-18s FAIL: %v\n", name, err)
			failed = true
			continue
		}
		bad := false
		for pass := 0; pass < randomPasses; pass++ {
			if _, err := routing.CheckReachability(model, alg, rand.New(rand.NewSource(seed+int64(pass)))); err != nil {
				fmt.Printf("  %-18s FAIL (random pass %d): %v\n", name, pass, err)
				failed = true
				bad = true
				break
			}
		}
		if !bad {
			wrap := ""
			if dag.WrapChannels > 0 {
				wrap = fmt.Sprintf(", %d wrap channels cycle-free", dag.WrapChannels)
			}
			fmt.Printf("  %-18s ok: %d pairs, max %d hops, %d detoured; CDG %d channels, %d forced deps%s\n",
				name, res.Pairs, res.MaxHops, res.Detoured, dag.Channels, dag.Edges, wrap)
		}
	}
	if failed {
		os.Exit(1)
	}
}

func buildModel(topo wormmesh.Topology, pattern, nodes string, faults int, seed int64) (*fault.Model, error) {
	switch {
	case pattern != "":
		ids, err := fault.NamedPattern(pattern, topo)
		if err != nil {
			return nil, err
		}
		return fault.New(topo, ids)
	case nodes != "":
		var ids []topology.NodeID
		for _, s := range strings.Split(nodes, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil {
				return nil, fmt.Errorf("bad node id %q", s)
			}
			ids = append(ids, topology.NodeID(v))
		}
		return fault.New(topo, ids)
	default:
		return wormmesh.GenerateFaults(topo, faults, seed)
	}
}
