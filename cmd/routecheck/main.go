// Command routecheck verifies routing safety for a fault pattern:
// every healthy source-destination pair must be deliverable by every
// algorithm (or a chosen one), with no walk entering a faulty node or
// exceeding the hop bound. Exit status is non-zero on any violation.
//
// Usage:
//
//	routecheck -faults 10 -seed 7            # random pattern
//	routecheck -pattern double-wall          # canned pattern
//	routecheck -nodes 33,34,44 -alg Nbc      # explicit pattern, one algorithm
//	routecheck -random 5                     # additionally: 5 random-choice passes
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"

	"wormmesh"
	"wormmesh/internal/fault"
	"wormmesh/internal/routing"
	"wormmesh/internal/topology"
)

func main() {
	var width, height, faults, randomPasses int
	var seed int64
	var nodes, pattern, algName string
	flag.IntVar(&width, "width", 10, "mesh width")
	flag.IntVar(&height, "height", 10, "mesh height")
	flag.IntVar(&faults, "faults", 10, "number of random node faults")
	flag.Int64Var(&seed, "seed", 1, "fault pattern seed")
	flag.StringVar(&nodes, "nodes", "", "comma-separated failed node IDs")
	flag.StringVar(&pattern, "pattern", "", "canned pattern: "+strings.Join(fault.PatternNames(), "|"))
	flag.StringVar(&algName, "alg", "", "check only this algorithm (default: all)")
	flag.IntVar(&randomPasses, "random", 0, "extra passes with random candidate choice")
	flag.Parse()

	mesh := wormmesh.NewMesh(width, height)
	model, err := buildModel(mesh, pattern, nodes, faults, seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "routecheck:", err)
		os.Exit(1)
	}
	fmt.Printf("%v: %d faulty nodes in %d regions, %d healthy\n",
		mesh, model.FaultCount(), len(model.Regions()), model.HealthyCount())

	algorithms := wormmesh.Algorithms()
	if algName != "" {
		algorithms = []string{algName}
	}
	failed := false
	for _, name := range algorithms {
		alg, err := routing.New(name, model, 24)
		if err != nil {
			fmt.Fprintf(os.Stderr, "routecheck: %s: %v\n", name, err)
			failed = true
			continue
		}
		res, err := routing.CheckReachability(model, alg, nil)
		if err != nil {
			fmt.Printf("  %-18s FAIL: %v\n", name, err)
			failed = true
			continue
		}
		for pass := 0; pass < randomPasses; pass++ {
			if _, err := routing.CheckReachability(model, alg, rand.New(rand.NewSource(seed+int64(pass)))); err != nil {
				fmt.Printf("  %-18s FAIL (random pass %d): %v\n", name, pass, err)
				failed = true
				break
			}
		}
		if !failed {
			fmt.Printf("  %-18s ok: %d pairs, max %d hops, %d detoured\n",
				name, res.Pairs, res.MaxHops, res.Detoured)
		}
	}
	if failed {
		os.Exit(1)
	}
}

func buildModel(mesh wormmesh.Mesh, pattern, nodes string, faults int, seed int64) (*fault.Model, error) {
	switch {
	case pattern != "":
		ids, err := fault.NamedPattern(pattern, mesh)
		if err != nil {
			return nil, err
		}
		return fault.New(mesh, ids)
	case nodes != "":
		var ids []topology.NodeID
		for _, s := range strings.Split(nodes, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil {
				return nil, fmt.Errorf("bad node id %q", s)
			}
			ids = append(ids, topology.NodeID(v))
		}
		return fault.New(mesh, ids)
	default:
		return wormmesh.GenerateFaults(mesh, faults, seed)
	}
}
