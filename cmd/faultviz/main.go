// Command faultviz renders a fault pattern as ASCII art: seed faults,
// deactivated nodes, block regions, f-ring membership, and the
// Boura–Das unsafe labeling.
//
// Usage:
//
//	faultviz -faults 10 -seed 3
//	faultviz -nodes 23,24,33,34       # explicit failed nodes
//	faultviz -fig6                    # the paper's Figure 6 pattern
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"wormmesh"
	"wormmesh/internal/experiments"
	"wormmesh/internal/fault"
	"wormmesh/internal/topology"
)

func main() {
	var width, height, faults int
	var seed int64
	var nodes, pattern string
	var fig6 bool
	flag.IntVar(&width, "width", 10, "mesh width")
	flag.IntVar(&height, "height", 10, "mesh height")
	flag.IntVar(&faults, "faults", 10, "number of random node faults")
	flag.Int64Var(&seed, "seed", 1, "fault pattern seed")
	flag.StringVar(&nodes, "nodes", "", "comma-separated failed node IDs (overrides -faults)")
	flag.BoolVar(&fig6, "fig6", false, "use the paper's Figure 6 canned pattern")
	flag.StringVar(&pattern, "pattern", "", "canned pattern name: "+strings.Join(fault.PatternNames(), "|"))
	flag.Parse()

	mesh := wormmesh.NewMesh(width, height)
	var model *fault.Model
	var err error
	switch {
	case pattern != "":
		var ids []topology.NodeID
		ids, err = fault.NamedPattern(pattern, mesh)
		if err == nil {
			model, err = wormmesh.NewFaultModel(mesh, ids)
		}
	case fig6:
		opt := experiments.Paper()
		opt.Width, opt.Height = width, height
		model, err = wormmesh.NewFaultModel(mesh, opt.Fig6FaultNodes())
	case nodes != "":
		var ids []topology.NodeID
		for _, s := range strings.Split(nodes, ",") {
			v, convErr := strconv.Atoi(strings.TrimSpace(s))
			if convErr != nil {
				fmt.Fprintln(os.Stderr, "faultviz: bad node id:", s)
				os.Exit(2)
			}
			ids = append(ids, topology.NodeID(v))
		}
		model, err = wormmesh.NewFaultModel(mesh, ids)
	default:
		model, err = wormmesh.GenerateFaults(mesh, faults, seed)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "faultviz:", err)
		os.Exit(1)
	}

	fmt.Printf("%v: %d seed faults, %d deactivated, %d block regions, %d rings (%d chains)\n",
		mesh, model.SeedCount(), model.DeactivatedCount(), len(model.Regions()), len(model.Rings()), chains(model))
	fmt.Println("legend: X seed fault, x deactivated (= Boura-unsafe), o f-ring node, . healthy")
	fmt.Println()
	// +Y is drawn upward, matching the paper's coordinates.
	for y := height - 1; y >= 0; y-- {
		fmt.Printf("%3d  ", y)
		for x := 0; x < width; x++ {
			id := mesh.ID(topology.Coord{X: x, Y: y})
			switch {
			case model.IsSeedFault(id):
				fmt.Print("X ")
			case model.IsFaulty(id):
				fmt.Print("x ")
			case model.OnAnyRing(id):
				fmt.Print("o ")
			default:
				fmt.Print(". ")
			}
		}
		fmt.Println()
	}
	fmt.Print("     ")
	for x := 0; x < width; x++ {
		fmt.Printf("%-2d", x%10)
	}
	fmt.Println()
	fmt.Println()
	for i, r := range model.Regions() {
		ring := model.Rings()[i]
		kind := "ring"
		if ring.Chain {
			kind = "chain"
		}
		fmt.Printf("region %d: %v (%dx%d), %s of %d nodes\n",
			i, r, r.Width(), r.Height(), kind, ring.Len())
	}
}

func chains(m *fault.Model) int {
	n := 0
	for _, r := range m.Rings() {
		if r.Chain {
			n++
		}
	}
	return n
}
