module wormmesh

go 1.22
