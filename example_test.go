package wormmesh_test

import (
	"fmt"

	"wormmesh"
)

// ExampleRun simulates one load point deterministically: the same
// parameters always reproduce the same numbers.
func ExampleRun() {
	p := wormmesh.DefaultParams()
	p.Algorithm = "NHop"
	p.Rate = 0.0005
	p.WarmupCycles = 1000
	p.MeasureCycles = 4000
	res, err := wormmesh.Run(p)
	if err != nil {
		panic(err)
	}
	fmt.Printf("delivered %d messages, detour %.2f hops\n", res.Stats.Delivered, res.Stats.AvgDetour())
	// Output: delivered 221 messages, detour 0.00 hops
}

// ExampleGenerateFaults builds a random block-fault pattern and
// inspects its f-rings.
func ExampleGenerateFaults() {
	mesh := wormmesh.NewMesh(10, 10)
	model, err := wormmesh.GenerateFaults(mesh, 5, 42)
	if err != nil {
		panic(err)
	}
	fmt.Printf("%d seed faults -> %d block regions\n", model.SeedCount(), len(model.Regions()))
	for _, ring := range model.Rings() {
		fmt.Printf("  region %v ringed by %d nodes\n", ring.Region, ring.Len())
	}
	// Output:
	// 5 seed faults -> 4 block regions
	//   region [(0,0)..(0,0)] ringed by 3 nodes
	//   region [(5,0)..(5,1)] ringed by 7 nodes
	//   region [(6,5)..(6,5)] ringed by 8 nodes
	//   region [(3,7)..(3,7)] ringed by 8 nodes
}

// ExampleAlgorithms lists the evaluated configurations.
func ExampleAlgorithms() {
	for _, name := range wormmesh.Algorithms()[:4] {
		fmt.Println(name)
	}
	// Output:
	// PHop
	// NHop
	// Pbc
	// Nbc
}

// ExampleMinVCs shows how the virtual-channel requirement of the
// hop-based class ladders grows with the mesh diameter.
func ExampleMinVCs() {
	for _, size := range []int{10, 16} {
		m := wormmesh.NewMesh(size, size)
		phop, _ := wormmesh.MinVCs("PHop", m)
		nhop, _ := wormmesh.MinVCs("NHop", m)
		fmt.Printf("%dx%d: PHop needs %d VCs, NHop %d\n", size, size, phop, nhop)
	}
	// Output:
	// 10x10: PHop needs 23 VCs, NHop 14
	// 16x16: PHop needs 35 VCs, NHop 20
}
