// Package fault implements the paper's fault model: random node
// failures coalesced into rectangular block (convex) fault regions,
// the fault-rings (f-rings) and fault-chains (f-chains) of fault-free
// nodes that surround each region, and the Boura–Das node-labeling
// used by that algorithm's fault-tolerant variant.
//
// Only node failures are modeled: when a node fails, every physical
// link incident on it is also unusable (the paper's assumption). Fault
// patterns are static, non-malicious, and must not disconnect the
// network; New rejects disconnecting patterns and Generate retries
// until it finds a connected one.
//
// On a torus the same block model applies with wrap-aware adjacency:
// fault groups may straddle a wrap edge, in which case their bounding
// box is the minimal circular interval per dimension (Min stays
// canonical, Max may extend past the dimension). Because the torus has
// no boundary every f-ring is closed — there are no f-chains — but a
// region must leave room for the ring one step outside it, so New
// returns ErrRegionWrap when a coalesced region's extent+2 exceeds a
// dimension.
package fault

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"wormmesh/internal/topology"
)

// Region is a rectangular block fault region: every node with
// Min.X <= x <= Max.X and Min.Y <= y <= Max.Y is faulty or deactivated.
// Min is always canonical (inside the topology); on a torus a region
// that straddles a wrap edge has Max extending past the dimension
// (Max < Min + dimension), so the interval reads the same way in the
// unrolled coordinate space.
type Region struct {
	Min, Max topology.Coord
}

// Contains reports whether c lies inside the region, with c given in
// the region's own (possibly extended) coordinate space. For canonical
// coordinates on a torus use ContainsOn, which re-lifts them past a
// wrap edge first.
func (r Region) Contains(c topology.Coord) bool {
	return c.X >= r.Min.X && c.X <= r.Max.X && c.Y >= r.Min.Y && c.Y <= r.Max.Y
}

// ContainsOn reports whether the canonical coordinate c lies inside the
// region on the given topology: coordinates below Min are lifted by one
// period before the interval test, so wrapped torus regions answer
// correctly. On a mesh it is equivalent to Contains.
func (r Region) ContainsOn(t topology.Topology, c topology.Coord) bool {
	x, y := c.X, c.Y
	if x < r.Min.X {
		x += t.Width()
	}
	if y < r.Min.Y {
		y += t.Height()
	}
	return x >= r.Min.X && x <= r.Max.X && y >= r.Min.Y && y <= r.Max.Y
}

// Width returns the region's extent in X.
func (r Region) Width() int { return r.Max.X - r.Min.X + 1 }

// Height returns the region's extent in Y.
func (r Region) Height() int { return r.Max.Y - r.Min.Y + 1 }

// Size returns the number of nodes covered by the region.
func (r Region) Size() int { return r.Width() * r.Height() }

// String renders the region as "[(x0,y0)..(x1,y1)]".
func (r Region) String() string { return fmt.Sprintf("[%v..%v]", r.Min, r.Max) }

// chebyshev returns the Chebyshev (L∞) distance between two regions:
// 0 when they overlap, 1 when they touch (including diagonally).
func (r Region) chebyshev(o Region) int {
	dx := gap(r.Min.X, r.Max.X, o.Min.X, o.Max.X)
	dy := gap(r.Min.Y, r.Max.Y, o.Min.Y, o.Max.Y)
	if dx > dy {
		return dx
	}
	return dy
}

func gap(aMin, aMax, bMin, bMax int) int {
	switch {
	case bMin > aMax:
		return bMin - aMax
	case aMin > bMax:
		return aMin - bMax
	}
	return 0
}

// union returns the bounding box of two regions.
func (r Region) union(o Region) Region {
	return Region{
		Min: topology.Coord{X: min(r.Min.X, o.Min.X), Y: min(r.Min.Y, o.Min.Y)},
		Max: topology.Coord{X: max(r.Max.X, o.Max.X), Y: max(r.Max.Y, o.Max.Y)},
	}
}

// Ring is the cycle (or, for regions touching the mesh boundary, the
// open chain) of fault-free nodes immediately surrounding a fault
// region. Nodes are ordered clockwise (with +Y drawn upward: east along
// the top, then down the east side, west along the bottom, and back up
// the west side). A torus has no boundary, so torus rings are always
// closed cycles (Chain is never set), with member coordinates taken
// modulo the dimensions.
type Ring struct {
	Region Region
	// Nodes lists the ring members in clockwise order. For a closed
	// ring the successor of the last node is the first; for a chain the
	// ends have no successor in one orientation.
	Nodes []topology.NodeID
	// Chain is true when the region touches the mesh boundary and the
	// surrounding nodes form an open path rather than a cycle.
	Chain bool

	// pos is a dense node→clockwise-index table (-1 for nodes off the
	// ring), sized to the mesh. Position and Next sit on the routing
	// hot path (every f-ring hop of every blocked header), so the
	// lookup is a single bounds-checked load rather than a map probe.
	pos []int32
}

// Len returns the number of nodes on the ring.
func (r *Ring) Len() int { return len(r.Nodes) }

// Position returns the clockwise index of id on the ring and whether id
// is a ring member.
func (r *Ring) Position(id topology.NodeID) (int, bool) {
	if id < 0 || int(id) >= len(r.pos) {
		return 0, false
	}
	p := r.pos[id]
	return int(p), p >= 0
}

// Next returns the ring node adjacent to id in the clockwise
// (clockwise=true) or counter-clockwise orientation. The second result
// is false when id is not on the ring or when id is the terminal node
// of a chain in that orientation.
func (r *Ring) Next(id topology.NodeID, clockwise bool) (topology.NodeID, bool) {
	p, ok := r.Position(id)
	if !ok {
		return topology.Invalid, false
	}
	n := len(r.Nodes)
	if clockwise {
		if p == n-1 {
			if r.Chain {
				return topology.Invalid, false
			}
			return r.Nodes[0], true
		}
		return r.Nodes[p+1], true
	}
	if p == 0 {
		if r.Chain {
			return topology.Invalid, false
		}
		return r.Nodes[n-1], true
	}
	return r.Nodes[p-1], true
}

// Model is an immutable fault pattern over a mesh: the failed nodes,
// the block regions they coalesce into (growing each connected group of
// faults to its bounding box, possibly deactivating healthy nodes), the
// f-rings around the regions, and the Boura–Das unsafe labeling.
type Model struct {
	Topo topology.Topology

	faulty      []bool // faulty or deactivated: unusable for routing
	seed        []bool // the originally failed nodes
	deactivated int    // healthy nodes sacrificed by convexification

	regions  []Region
	rings    []*Ring
	regionOf []int32   // node -> region index, -1 for healthy nodes
	ringsOf  [][]int32 // node -> indices of rings it lies on
}

// ErrDisconnected is returned when a fault pattern splits the healthy
// nodes into more than one connected component.
var ErrDisconnected = errors.New("fault: pattern disconnects the network")

// ErrAllFaulty is returned when a pattern leaves fewer than two healthy
// nodes, so no traffic can flow.
var ErrAllFaulty = errors.New("fault: fewer than two healthy nodes remain")

// ErrRegionWrap is returned on the torus when a coalesced fault region
// leaves no room for a closed f-ring in some dimension (extent+2 >
// dimension): the perimeter one step outside the region would
// self-intersect, so the pattern is rejected rather than fortified.
var ErrRegionWrap = errors.New("fault: region too large for a closed f-ring on the torus")

// None returns the empty (fault-free) model for a mesh.
func None(m topology.Topology) *Model {
	f, err := New(m, nil)
	if err != nil {
		panic("fault: empty pattern rejected: " + err.Error())
	}
	return f
}

// New builds a Model from a set of failed nodes. Duplicate IDs are
// tolerated. It returns ErrDisconnected if, after block
// convexification, the healthy nodes are not 4-connected, and
// ErrAllFaulty when fewer than two healthy nodes remain.
func New(m topology.Topology, failed []topology.NodeID) (*Model, error) {
	n := m.NodeCount()
	f := &Model{
		Topo:     m,
		faulty:   make([]bool, n),
		seed:     make([]bool, n),
		regionOf: make([]int32, n),
		ringsOf:  make([][]int32, n),
	}
	for _, id := range failed {
		if id < 0 || int(id) >= n {
			return nil, fmt.Errorf("fault: node %d outside %v", id, m)
		}
		f.seed[id] = true
		f.faulty[id] = true
	}
	f.buildRegions()
	if wraps(m) {
		for _, r := range f.regions {
			if r.Width()+2 > m.Width() || r.Height()+2 > m.Height() {
				return nil, fmt.Errorf("%w: %v on %v", ErrRegionWrap, r, m)
			}
		}
	}
	for i := range f.regionOf {
		f.regionOf[i] = -1
	}
	for ri, r := range f.regions {
		for y := r.Min.Y; y <= r.Max.Y; y++ {
			for x := r.Min.X; x <= r.Max.X; x++ {
				id := m.ID(canonical(m, topology.Coord{X: x, Y: y}))
				f.regionOf[id] = int32(ri)
				if !f.seed[id] {
					f.deactivated++
				}
			}
		}
	}
	if f.HealthyCount() < 2 {
		return nil, ErrAllFaulty
	}
	if !f.connected() {
		return nil, ErrDisconnected
	}
	f.buildRings()
	return f, nil
}

// wraps reports whether the topology has wrap links, selecting the
// torus code paths. The mesh paths are kept verbatim so mesh models
// stay bit-identical to the pre-torus implementation.
func wraps(t topology.Topology) bool { return t.Kind() == "torus" }

// canonical reduces a possibly-extended coordinate (from a wrapped
// region's interval) back into the topology. On a mesh every region
// coordinate is already canonical, so this is the identity.
func canonical(t topology.Topology, c topology.Coord) topology.Coord {
	w, h := t.Width(), t.Height()
	return topology.Coord{X: ((c.X % w) + w) % w, Y: ((c.Y % h) + h) % h}
}

// buildRegions coalesces 8-connected groups of faulty nodes, grows each
// group to its bounding box (marking enclosed healthy nodes faulty),
// and repeats until the boxes are pairwise non-touching (Chebyshev
// distance >= 2). Boxes at distance exactly 2 remain distinct regions
// whose f-rings overlap, matching the paper's overlapping-ring case.
func (f *Model) buildRegions() {
	if wraps(f.Topo) {
		f.buildRegionsTorus()
		return
	}
	m := f.Topo
	// Initial components of seed faults under 8-adjacency.
	var regions []Region
	visited := make([]bool, m.NodeCount())
	for id := range f.faulty {
		if !f.faulty[id] || visited[id] {
			continue
		}
		// Flood fill.
		stack := []topology.NodeID{topology.NodeID(id)}
		visited[id] = true
		box := Region{Min: m.CoordOf(topology.NodeID(id)), Max: m.CoordOf(topology.NodeID(id))}
		for len(stack) > 0 {
			cur := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			c := m.CoordOf(cur)
			box.Min.X = min(box.Min.X, c.X)
			box.Min.Y = min(box.Min.Y, c.Y)
			box.Max.X = max(box.Max.X, c.X)
			box.Max.Y = max(box.Max.Y, c.Y)
			for dy := -1; dy <= 1; dy++ {
				for dx := -1; dx <= 1; dx++ {
					if dx == 0 && dy == 0 {
						continue
					}
					nc := topology.Coord{X: c.X + dx, Y: c.Y + dy}
					if !m.Contains(nc) {
						continue
					}
					nid := m.ID(nc)
					if f.faulty[nid] && !visited[nid] {
						visited[nid] = true
						stack = append(stack, nid)
					}
				}
			}
		}
		regions = append(regions, box)
	}
	// Merge boxes that touch (Chebyshev <= 1) until fixpoint.
	for {
		merged := false
		for i := 0; i < len(regions) && !merged; i++ {
			for j := i + 1; j < len(regions); j++ {
				if regions[i].chebyshev(regions[j]) <= 1 {
					regions[i] = regions[i].union(regions[j])
					regions = append(regions[:j], regions[j+1:]...)
					merged = true
					break
				}
			}
		}
		if !merged {
			break
		}
	}
	// Mark every node inside a final box faulty (deactivation).
	for _, r := range regions {
		for y := r.Min.Y; y <= r.Max.Y; y++ {
			for x := r.Min.X; x <= r.Max.X; x++ {
				f.faulty[m.ID(topology.Coord{X: x, Y: y})] = true
			}
		}
	}
	// Deterministic region order: by (Min.Y, Min.X).
	sort.Slice(regions, func(i, j int) bool {
		if regions[i].Min.Y != regions[j].Min.Y {
			return regions[i].Min.Y < regions[j].Min.Y
		}
		return regions[i].Min.X < regions[j].Min.X
	})
	f.regions = regions
}

// buildRegionsTorus is the wrap-aware block convexification. Instead of
// the mesh path's pairwise box merge it iterates a single closure:
// flood-fill 8-connected components of the unusable set (adjacency
// taken modulo the dimensions), box each component with the minimal
// circular interval per dimension, deactivate every node inside the
// boxes, and repeat until no node is added. Two boxes within Chebyshev
// distance 1 contain 8-adjacent unusable nodes, so the re-fill merges
// them — the same fixpoint the mesh procedure computes, but correct
// across wrap edges.
func (f *Model) buildRegionsTorus() {
	m := f.Topo
	w, h := m.Width(), m.Height()
	for {
		visited := make([]bool, m.NodeCount())
		var regions []Region
		for id := range f.faulty {
			if !f.faulty[id] || visited[id] {
				continue
			}
			// Flood fill one component, recording per-dimension
			// occupancy for the circular bounding interval.
			occX := make([]bool, w)
			occY := make([]bool, h)
			stack := []topology.NodeID{topology.NodeID(id)}
			visited[id] = true
			for len(stack) > 0 {
				cur := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				c := m.CoordOf(cur)
				occX[c.X] = true
				occY[c.Y] = true
				for dy := -1; dy <= 1; dy++ {
					for dx := -1; dx <= 1; dx++ {
						if dx == 0 && dy == 0 {
							continue
						}
						nid := m.ID(topology.Coord{X: ((c.X+dx)%w + w) % w, Y: ((c.Y+dy)%h + h) % h})
						if f.faulty[nid] && !visited[nid] {
							visited[nid] = true
							stack = append(stack, nid)
						}
					}
				}
			}
			x0, x1 := circularInterval(occX)
			y0, y1 := circularInterval(occY)
			regions = append(regions, Region{
				Min: topology.Coord{X: x0, Y: y0},
				Max: topology.Coord{X: x1, Y: y1},
			})
		}
		grew := false
		for _, r := range regions {
			for y := r.Min.Y; y <= r.Max.Y; y++ {
				for x := r.Min.X; x <= r.Max.X; x++ {
					id := m.ID(topology.Coord{X: x % w, Y: y % h})
					if !f.faulty[id] {
						f.faulty[id] = true
						grew = true
					}
				}
			}
		}
		if !grew {
			// Every box is exactly its (filled) component, so distinct
			// boxes are pairwise at Chebyshev distance >= 2 and the
			// closure is complete.
			sort.Slice(regions, func(i, j int) bool {
				if regions[i].Min.Y != regions[j].Min.Y {
					return regions[i].Min.Y < regions[j].Min.Y
				}
				return regions[i].Min.X < regions[j].Min.X
			})
			f.regions = regions
			return
		}
	}
}

// circularInterval returns the minimal circular interval [lo, hi]
// covering every occupied index modulo len(occ): the complement of the
// longest run of unoccupied indices (first such run on ties, scanning
// from the lowest occupied index, for determinism). lo is canonical;
// hi may extend past len(occ) when the interval wraps. A fully
// occupied dimension yields [0, len(occ)-1]. occ must have at least
// one occupied index.
func circularInterval(occ []bool) (lo, hi int) {
	n := len(occ)
	first := -1
	for i, o := range occ {
		if o {
			first = i
			break
		}
	}
	if first < 0 {
		panic("fault: circularInterval on empty occupancy")
	}
	bestLen, bestEnd := 0, -1
	runLen := 0
	for k := 0; k < n; k++ {
		i := (first + k) % n
		if !occ[i] {
			runLen++
			if runLen > bestLen {
				bestLen = runLen
				bestEnd = i
			}
		} else {
			runLen = 0
		}
	}
	if bestLen == 0 {
		return 0, n - 1
	}
	lo = (bestEnd + 1) % n
	hi = lo + (n - bestLen) - 1
	return lo, hi
}

// connected reports whether the healthy nodes form one 4-connected
// component.
func (f *Model) connected() bool {
	m := f.Topo
	start := topology.Invalid
	healthy := 0
	for id := range f.faulty {
		if !f.faulty[id] {
			healthy++
			if start == topology.Invalid {
				start = topology.NodeID(id)
			}
		}
	}
	if healthy == 0 {
		return false
	}
	seen := make([]bool, m.NodeCount())
	seen[start] = true
	queue := []topology.NodeID{start}
	reached := 1
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for d := topology.Direction(0); d < topology.NumDirs; d++ {
			n := m.NeighborID(cur, d)
			if n == topology.Invalid || f.faulty[n] || seen[n] {
				continue
			}
			seen[n] = true
			reached++
			queue = append(queue, n)
		}
	}
	return reached == healthy
}

// buildRings constructs the ordered f-ring (or f-chain) around every
// region.
func (f *Model) buildRings() {
	m := f.Topo
	for ri, r := range f.regions {
		ring := buildRing(m, r)
		f.rings = append(f.rings, ring)
		for _, id := range ring.Nodes {
			f.ringsOf[id] = append(f.ringsOf[id], int32(ri))
		}
	}
}

// buildRing enumerates the rectangle one step outside the region,
// clockwise, clipped to the mesh. When clipping removes nodes the
// result is an open chain; the surviving nodes are rotated so they are
// contiguous in slice order.
func buildRing(m topology.Topology, r Region) *Ring {
	x0, y0 := r.Min.X-1, r.Min.Y-1
	x1, y1 := r.Max.X+1, r.Max.Y+1
	var cycle []topology.Coord
	// Top edge, west→east (y = y1), then east edge top→bottom, then
	// bottom edge east→west, then west edge bottom→top: clockwise with
	// +Y drawn upward.
	for x := x0; x <= x1; x++ {
		cycle = append(cycle, topology.Coord{X: x, Y: y1})
	}
	for y := y1 - 1; y >= y0; y-- {
		cycle = append(cycle, topology.Coord{X: x1, Y: y})
	}
	for x := x1 - 1; x >= x0; x-- {
		cycle = append(cycle, topology.Coord{X: x, Y: y0})
	}
	for y := y0 + 1; y <= y1-1; y++ {
		cycle = append(cycle, topology.Coord{X: x0, Y: y})
	}
	ring := &Ring{Region: r, pos: make([]int32, m.NodeCount())}
	for i := range ring.pos {
		ring.pos[i] = -1
	}
	if wraps(m) {
		// Every perimeter coordinate exists once wrapped, so torus
		// rings are always closed. New's ring-fit check (extent+2 <=
		// dimension) guarantees the wrapped perimeter nodes are
		// distinct.
		for _, c := range cycle {
			ring.Nodes = append(ring.Nodes, m.ID(canonical(m, c)))
		}
		for i, id := range ring.Nodes {
			ring.pos[id] = int32(i)
		}
		return ring
	}
	inside := func(c topology.Coord) bool { return m.Contains(c) }
	allIn := true
	firstOut := -1
	for i, c := range cycle {
		if !inside(c) {
			allIn = false
			if firstOut < 0 {
				firstOut = i
			}
		}
	}
	if allIn {
		for _, c := range cycle {
			ring.Nodes = append(ring.Nodes, m.ID(c))
		}
	} else {
		ring.Chain = true
		// Rotate so an outside coordinate comes first, then keep the
		// inside ones; they form one contiguous arc for any pattern
		// that does not disconnect the mesh.
		n := len(cycle)
		for i := 0; i < n; i++ {
			c := cycle[(firstOut+i)%n]
			if inside(c) {
				ring.Nodes = append(ring.Nodes, m.ID(c))
			}
		}
	}
	for i, id := range ring.Nodes {
		ring.pos[id] = int32(i)
	}
	return ring
}

// IsFaulty reports whether a node is faulty or deactivated (unusable).
func (f *Model) IsFaulty(id topology.NodeID) bool { return f.faulty[id] }

// IsSeedFault reports whether the node was one of the originally
// injected failures (as opposed to deactivated by convexification).
func (f *Model) IsSeedFault(id topology.NodeID) bool { return f.seed[id] }

// IsUnsafe reports whether a node carries the Boura–Das unsafe label.
// Under the block (convex) fault model the labeling fixpoint coincides
// with block convexification: a node with faulty-or-unsafe neighbors
// in two different dimensions always sits inside the bounding box of
// one 8-connected fault group (any two such neighbors are within
// Chebyshev distance 1 of each other and therefore coalesce). The
// unsafe nodes are thus exactly the deactivated ones, and Boura–Das
// node labeling is realized by treating deactivated nodes as
// non-routable.
func (f *Model) IsUnsafe(id topology.NodeID) bool { return f.faulty[id] && !f.seed[id] }

// HealthyCount returns the number of usable nodes.
func (f *Model) HealthyCount() int {
	n := 0
	for _, bad := range f.faulty {
		if !bad {
			n++
		}
	}
	return n
}

// FaultCount returns the number of unusable nodes (seed + deactivated).
func (f *Model) FaultCount() int { return f.Topo.NodeCount() - f.HealthyCount() }

// SeedCount returns the number of originally failed nodes.
func (f *Model) SeedCount() int {
	n := 0
	for _, s := range f.seed {
		if s {
			n++
		}
	}
	return n
}

// DeactivatedCount returns the number of healthy nodes sacrificed to
// make the fault regions rectangular.
func (f *Model) DeactivatedCount() int { return f.deactivated }

// Regions returns the block fault regions (do not modify).
func (f *Model) Regions() []Region { return f.regions }

// Rings returns the f-rings/f-chains, index-aligned with Regions.
func (f *Model) Rings() []*Ring { return f.rings }

// RegionIndex returns the index (into Regions and Rings) of the region
// containing a faulty node, or -1 for a healthy node. It is the
// hot-path form of RegionOf: a single table load, correct for wrapped
// torus regions where a coordinate box test would not be.
func (f *Model) RegionIndex(id topology.NodeID) int32 { return f.regionOf[id] }

// RegionOf returns the region containing a faulty node, or nil for a
// healthy node.
func (f *Model) RegionOf(id topology.NodeID) *Region {
	ri := f.regionOf[id]
	if ri < 0 {
		return nil
	}
	return &f.regions[ri]
}

// RingAround returns the f-ring surrounding the region that contains
// the given faulty node, or nil when the node is healthy.
func (f *Model) RingAround(faultyNode topology.NodeID) *Ring {
	ri := f.regionOf[faultyNode]
	if ri < 0 {
		return nil
	}
	return f.rings[ri]
}

// RingsThrough returns the rings passing through a (healthy) node.
func (f *Model) RingsThrough(id topology.NodeID) []*Ring {
	idxs := f.ringsOf[id]
	if len(idxs) == 0 {
		return nil
	}
	out := make([]*Ring, len(idxs))
	for i, ri := range idxs {
		out[i] = f.rings[ri]
	}
	return out
}

// OnAnyRing reports whether the node lies on at least one f-ring.
func (f *Model) OnAnyRing(id topology.NodeID) bool { return len(f.ringsOf[id]) > 0 }

// HealthyNodes returns the IDs of all usable nodes in ascending order.
func (f *Model) HealthyNodes() []topology.NodeID {
	out := make([]topology.NodeID, 0, f.HealthyCount())
	for id := range f.faulty {
		if !f.faulty[id] {
			out = append(out, topology.NodeID(id))
		}
	}
	return out
}

// Options controls random fault generation.
type Options struct {
	// ForbidBoundary rejects patterns whose regions touch the mesh
	// boundary (so every region has a closed f-ring, no chains).
	ForbidBoundary bool
	// MaxGrowthFactor bounds how many nodes convexification may
	// deactivate: total unusable nodes must not exceed
	// MaxGrowthFactor × requested count. Zero means 2×.
	MaxGrowthFactor float64
	// MaxAttempts bounds the number of rejected patterns before
	// Generate gives up. Zero means 10000.
	MaxAttempts int
}

// Generate draws `count` distinct random failed nodes and returns the
// resulting model, retrying until the pattern is connected, within the
// growth budget, and (optionally) boundary-free. It returns an error
// when MaxAttempts patterns in a row are rejected.
func Generate(m topology.Topology, count int, rng *rand.Rand, opts Options) (*Model, error) {
	if count < 0 || count >= m.NodeCount() {
		return nil, fmt.Errorf("fault: cannot fail %d of %d nodes", count, m.NodeCount())
	}
	growth := opts.MaxGrowthFactor
	if growth == 0 {
		growth = 2
	}
	attempts := opts.MaxAttempts
	if attempts == 0 {
		attempts = 10000
	}
	ids := make([]topology.NodeID, m.NodeCount())
	for i := range ids {
		ids[i] = topology.NodeID(i)
	}
	for try := 0; try < attempts; try++ {
		rng.Shuffle(len(ids), func(i, j int) { ids[i], ids[j] = ids[j], ids[i] })
		model, err := New(m, ids[:count])
		if err != nil {
			continue
		}
		if count > 0 && float64(model.FaultCount()) > growth*float64(count) {
			continue
		}
		if opts.ForbidBoundary {
			touches := false
			for _, r := range model.rings {
				if r.Chain {
					touches = true
					break
				}
			}
			if touches {
				continue
			}
		}
		return model, nil
	}
	return nil, fmt.Errorf("fault: no acceptable pattern with %d faults after %d attempts", count, attempts)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
