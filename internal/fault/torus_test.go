package fault

import (
	"errors"
	"math/rand"
	"testing"

	"wormmesh/internal/topology"
)

// TestTorusWrapRegion checks that faults straddling a wrap edge
// coalesce into a single wrapped region with a closed f-ring.
func TestTorusWrapRegion(t *testing.T) {
	tor := topology.NewTorus(10, 10)
	f, err := New(tor, []topology.NodeID{
		tor.ID(topology.Coord{X: 9, Y: 5}),
		tor.ID(topology.Coord{X: 0, Y: 5}),
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(f.Regions()); got != 1 {
		t.Fatalf("wrap-adjacent faults formed %d regions, want 1: %v", got, f.Regions())
	}
	r := f.Regions()[0]
	if r.Min.X != 9 || r.Max.X != 10 || r.Min.Y != 5 || r.Max.Y != 5 {
		t.Fatalf("wrapped region = %v, want [(9,5)..(10,5)]", r)
	}
	if f.DeactivatedCount() != 0 {
		t.Fatalf("exact 2x1 block deactivated %d nodes, want 0", f.DeactivatedCount())
	}
	for _, c := range []topology.Coord{{X: 9, Y: 5}, {X: 0, Y: 5}} {
		if !r.ContainsOn(tor, c) {
			t.Errorf("ContainsOn(%v) = false, want true", c)
		}
		if f.RegionOf(tor.ID(c)) == nil {
			t.Errorf("RegionOf(%v) = nil, want the wrapped region", c)
		}
	}
	if r.ContainsOn(tor, topology.Coord{X: 5, Y: 5}) {
		t.Error("ContainsOn((5,5)) = true for a region wrapping X over 9..0")
	}

	ring := f.RingAround(tor.ID(topology.Coord{X: 0, Y: 5}))
	if ring == nil {
		t.Fatal("RingAround returned nil for a faulty node")
	}
	if ring.Chain {
		t.Fatal("torus ring is a chain, want a closed cycle")
	}
	// Perimeter of the 4x3 rectangle one step outside a 2x1 region.
	if want := 10; ring.Len() != want {
		t.Fatalf("ring has %d nodes, want %d: %v", ring.Len(), want, ring.Nodes)
	}
	// Every ring member is healthy, adjacent to the ring's neighbors,
	// and the clockwise walk returns to the start in Len steps.
	cur := ring.Nodes[0]
	for i := 0; i < ring.Len(); i++ {
		if f.IsFaulty(cur) {
			t.Fatalf("ring node %d is faulty", cur)
		}
		next, ok := ring.Next(cur, true)
		if !ok {
			t.Fatalf("closed ring has no clockwise successor at %d", cur)
		}
		adjacent := false
		for d := topology.Direction(0); d < topology.NumDirs; d++ {
			if tor.NeighborID(cur, d) == next {
				adjacent = true
			}
		}
		if !adjacent {
			t.Fatalf("ring nodes %d -> %d are not torus-adjacent", cur, next)
		}
		cur = next
	}
	if cur != ring.Nodes[0] {
		t.Fatalf("clockwise walk ended at %d, want start %d", cur, ring.Nodes[0])
	}
}

// TestTorusCornerWrapRegion checks a region wrapping both dimensions:
// the four corner nodes are mutually 8-adjacent across the wraps.
func TestTorusCornerWrapRegion(t *testing.T) {
	tor := topology.NewTorus(10, 10)
	f, err := New(tor, []topology.NodeID{
		tor.ID(topology.Coord{X: 0, Y: 0}),
		tor.ID(topology.Coord{X: 9, Y: 0}),
		tor.ID(topology.Coord{X: 0, Y: 9}),
		tor.ID(topology.Coord{X: 9, Y: 9}),
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(f.Regions()); got != 1 {
		t.Fatalf("corner faults formed %d regions, want 1: %v", got, f.Regions())
	}
	r := f.Regions()[0]
	if r.Min.X != 9 || r.Max.X != 10 || r.Min.Y != 9 || r.Max.Y != 10 {
		t.Fatalf("corner region = %v, want [(9,9)..(10,10)]", r)
	}
	ring := f.Rings()[0]
	if ring.Chain {
		t.Fatal("corner-wrap ring is a chain, want closed")
	}
	if want := 12; ring.Len() != want { // perimeter of 4x4
		t.Fatalf("ring has %d nodes, want %d", ring.Len(), want)
	}
	for _, id := range ring.Nodes {
		if f.IsFaulty(id) {
			t.Fatalf("ring node %d is faulty", id)
		}
	}
}

// TestTorusRegionTooWide checks that a region leaving no room for a
// closed ring (extent+2 > dimension) is rejected with ErrRegionWrap.
func TestTorusRegionTooWide(t *testing.T) {
	tor := topology.NewTorus(5, 5)
	var row []topology.NodeID
	for x := 0; x < 4; x++ {
		row = append(row, tor.ID(topology.Coord{X: x, Y: 2}))
	}
	if _, err := New(tor, row); !errors.Is(err, ErrRegionWrap) {
		t.Fatalf("4-wide region on a 5-torus: err = %v, want ErrRegionWrap", err)
	}
	// A full faulty row never disconnects a torus, but no ring fits.
	row = append(row, tor.ID(topology.Coord{X: 4, Y: 2}))
	if _, err := New(tor, row); !errors.Is(err, ErrRegionWrap) {
		t.Fatalf("full-band region on a 5-torus: err = %v, want ErrRegionWrap", err)
	}
}

// TestTorusGenerate checks random generation on the torus: patterns
// are connected and every ring closed.
func TestTorusGenerate(t *testing.T) {
	tor := topology.NewTorus(10, 10)
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		f, err := Generate(tor, 6, rng, Options{})
		if err != nil {
			t.Fatal(err)
		}
		for _, ring := range f.Rings() {
			if ring.Chain {
				t.Fatalf("trial %d: torus generated a chain ring around %v", trial, ring.Region)
			}
			for _, id := range ring.Nodes {
				if f.IsFaulty(id) {
					t.Fatalf("trial %d: ring node %d faulty", trial, id)
				}
			}
		}
		for id := 0; id < tor.NodeCount(); id++ {
			nid := topology.NodeID(id)
			reg := f.RegionOf(nid)
			if f.IsFaulty(nid) != (reg != nil) {
				t.Fatalf("trial %d: node %d faulty=%v but RegionOf=%v", trial, id, f.IsFaulty(nid), reg)
			}
			if reg != nil && !reg.ContainsOn(tor, tor.CoordOf(nid)) {
				t.Fatalf("trial %d: node %d in region %v but ContainsOn is false", trial, id, reg)
			}
		}
	}
}
