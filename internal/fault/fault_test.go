package fault

import (
	"math/rand"
	"testing"

	"wormmesh/internal/topology"
)

func ids(m topology.Topology, coords ...topology.Coord) []topology.NodeID {
	out := make([]topology.NodeID, len(coords))
	for i, c := range coords {
		out[i] = m.ID(c)
	}
	return out
}

func TestEmptyModel(t *testing.T) {
	m := topology.New(6, 6)
	f := None(m)
	if f.FaultCount() != 0 || f.HealthyCount() != 36 || len(f.Regions()) != 0 {
		t.Fatalf("empty model: faults=%d healthy=%d regions=%d", f.FaultCount(), f.HealthyCount(), len(f.Regions()))
	}
	for id := topology.NodeID(0); id < 36; id++ {
		if f.IsFaulty(id) || f.OnAnyRing(id) || f.IsUnsafe(id) {
			t.Fatalf("node %d flagged in empty model", id)
		}
	}
}

func TestSingleFaultRegionAndRing(t *testing.T) {
	m := topology.New(6, 6)
	f, err := New(m, ids(m, topology.Coord{X: 2, Y: 2}))
	if err != nil {
		t.Fatal(err)
	}
	if got := len(f.Regions()); got != 1 {
		t.Fatalf("regions = %d, want 1", got)
	}
	r := f.Regions()[0]
	if r.Min != (topology.Coord{X: 2, Y: 2}) || r.Max != (topology.Coord{X: 2, Y: 2}) {
		t.Fatalf("region = %v", r)
	}
	ring := f.Rings()[0]
	if ring.Chain {
		t.Error("interior region produced a chain")
	}
	if ring.Len() != 8 {
		t.Fatalf("ring length = %d, want 8", ring.Len())
	}
	// Every ring node is healthy and Chebyshev-adjacent to the region.
	for _, id := range ring.Nodes {
		if f.IsFaulty(id) {
			t.Fatalf("ring node %d is faulty", id)
		}
		c := m.CoordOf(id)
		if c.X < 1 || c.X > 3 || c.Y < 1 || c.Y > 3 {
			t.Fatalf("ring node %v not adjacent to region", c)
		}
	}
}

func TestRingOrderingIsAdjacentCycle(t *testing.T) {
	m := topology.New(10, 10)
	f, err := New(m, ids(m,
		topology.Coord{X: 4, Y: 4}, topology.Coord{X: 5, Y: 4},
		topology.Coord{X: 4, Y: 5}, topology.Coord{X: 5, Y: 5},
		topology.Coord{X: 4, Y: 6}))
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Regions()) != 1 {
		t.Fatalf("regions = %d, want 1 (coalesced)", len(f.Regions()))
	}
	ring := f.Rings()[0]
	n := ring.Len()
	for i, id := range ring.Nodes {
		next := ring.Nodes[(i+1)%n]
		if m.Distance(m.CoordOf(id), m.CoordOf(next)) != 1 {
			t.Fatalf("ring nodes %v and %v not adjacent", m.CoordOf(id), m.CoordOf(next))
		}
		if p, ok := ring.Position(id); !ok || p != i {
			t.Fatalf("Position(%d) = %d, %v; want %d", id, p, ok, i)
		}
	}
	// Next is consistent with slice order in both orientations.
	for i, id := range ring.Nodes {
		cw, ok := ring.Next(id, true)
		if !ok || cw != ring.Nodes[(i+1)%n] {
			t.Fatalf("Next(cw) inconsistent at %d", i)
		}
		ccw, ok := ring.Next(id, false)
		if !ok || ccw != ring.Nodes[(i-1+n)%n] {
			t.Fatalf("Next(ccw) inconsistent at %d", i)
		}
	}
	if _, ok := ring.Next(topology.NodeID(0), true); ok {
		t.Error("Next for non-member returned ok")
	}
}

func TestDiagonalFaultsCoalesce(t *testing.T) {
	m := topology.New(8, 8)
	f, err := New(m, ids(m, topology.Coord{X: 2, Y: 2}, topology.Coord{X: 3, Y: 3}))
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Regions()) != 1 {
		t.Fatalf("diagonal faults formed %d regions, want 1", len(f.Regions()))
	}
	r := f.Regions()[0]
	if r.Size() != 4 {
		t.Fatalf("region size = %d, want 4 (2x2 bounding box)", r.Size())
	}
	if f.DeactivatedCount() != 2 {
		t.Fatalf("deactivated = %d, want 2", f.DeactivatedCount())
	}
	if f.SeedCount() != 2 {
		t.Fatalf("seed count = %d, want 2", f.SeedCount())
	}
}

func TestLShapeConvexified(t *testing.T) {
	m := topology.New(8, 8)
	// L-shaped group: (2,2),(2,3),(2,4),(3,2) -> bounding box 2x3.
	f, err := New(m, ids(m,
		topology.Coord{X: 2, Y: 2}, topology.Coord{X: 2, Y: 3},
		topology.Coord{X: 2, Y: 4}, topology.Coord{X: 3, Y: 2}))
	if err != nil {
		t.Fatal(err)
	}
	r := f.Regions()[0]
	if r.Width() != 2 || r.Height() != 3 {
		t.Fatalf("region %v, want 2x3", r)
	}
	for y := 2; y <= 4; y++ {
		for x := 2; x <= 3; x++ {
			if !f.IsFaulty(m.ID(topology.Coord{X: x, Y: y})) {
				t.Fatalf("(%d,%d) not deactivated inside block", x, y)
			}
		}
	}
}

func TestNearbyRegionsStayDistinctWithOverlappingRings(t *testing.T) {
	m := topology.New(10, 10)
	// Chebyshev distance exactly 2: distinct regions, shared ring nodes.
	f, err := New(m, ids(m, topology.Coord{X: 3, Y: 4}, topology.Coord{X: 5, Y: 4}))
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Regions()) != 2 {
		t.Fatalf("regions = %d, want 2", len(f.Regions()))
	}
	shared := m.ID(topology.Coord{X: 4, Y: 4})
	rings := f.RingsThrough(shared)
	if len(rings) != 2 {
		t.Fatalf("node between regions on %d rings, want 2", len(rings))
	}
}

func TestBoundaryRegionFormsChain(t *testing.T) {
	m := topology.New(8, 8)
	f, err := New(m, ids(m, topology.Coord{X: 0, Y: 3}))
	if err != nil {
		t.Fatal(err)
	}
	ring := f.Rings()[0]
	if !ring.Chain {
		t.Fatal("boundary region did not form a chain")
	}
	if ring.Len() != 5 {
		t.Fatalf("chain length = %d, want 5", ring.Len())
	}
	// Chain ends have no successor in one orientation.
	first, last := ring.Nodes[0], ring.Nodes[len(ring.Nodes)-1]
	if _, ok := ring.Next(last, true); ok {
		t.Error("chain end has clockwise successor")
	}
	if _, ok := ring.Next(first, false); ok {
		t.Error("chain start has counter-clockwise successor")
	}
	// Interior chain nodes remain connected in order.
	for i := 0; i+1 < len(ring.Nodes); i++ {
		if m.Distance(m.CoordOf(ring.Nodes[i]), m.CoordOf(ring.Nodes[i+1])) != 1 {
			t.Fatalf("chain nodes %d and %d not adjacent", i, i+1)
		}
	}
}

func TestCornerRegionChain(t *testing.T) {
	m := topology.New(8, 8)
	f, err := New(m, ids(m, topology.Coord{X: 0, Y: 0}))
	if err != nil {
		t.Fatal(err)
	}
	ring := f.Rings()[0]
	if !ring.Chain || ring.Len() != 3 {
		t.Fatalf("corner chain: chain=%v len=%d, want chain of 3", ring.Chain, ring.Len())
	}
}

func TestDisconnectingPatternRejected(t *testing.T) {
	m := topology.New(6, 6)
	// A full column of faults splits the mesh.
	var wall []topology.NodeID
	for y := 0; y < 6; y++ {
		wall = append(wall, m.ID(topology.Coord{X: 3, Y: y}))
	}
	if _, err := New(m, wall); err != ErrDisconnected {
		t.Fatalf("err = %v, want ErrDisconnected", err)
	}
}

func TestAlmostAllFaultyRejected(t *testing.T) {
	m := topology.New(3, 3)
	var all []topology.NodeID
	for id := topology.NodeID(0); id < 8; id++ {
		all = append(all, id)
	}
	_, err := New(m, all)
	if err == nil {
		t.Fatal("expected error for 8 of 9 nodes faulty")
	}
}

func TestOutOfRangeFaultRejected(t *testing.T) {
	m := topology.New(4, 4)
	if _, err := New(m, []topology.NodeID{99}); err == nil {
		t.Fatal("expected error for out-of-range node")
	}
}

// TestUnsafeEqualsDeactivated verifies the documented equivalence: the
// Boura–Das unsafe label coincides with the nodes deactivated by block
// convexification. The classic unsafe witness — a node with faulty
// neighbors in two different dimensions — must therefore itself be
// deactivated, never left healthy-but-labeled.
func TestUnsafeEqualsDeactivated(t *testing.T) {
	m := topology.New(10, 10)
	// Faults east and north of (4,4): an L-trap. The two faults are
	// diagonal neighbors, so they coalesce and (4,4) lands inside the
	// bounding box.
	f, err := New(m, ids(m, topology.Coord{X: 5, Y: 4}, topology.Coord{X: 4, Y: 5}))
	if err != nil {
		t.Fatal(err)
	}
	trap := m.ID(topology.Coord{X: 4, Y: 4})
	if !f.IsFaulty(trap) || f.IsSeedFault(trap) {
		t.Error("(4,4) should be deactivated by convexification")
	}
	if !f.IsUnsafe(trap) {
		t.Error("deactivated node not reported unsafe")
	}
	for id := topology.NodeID(0); int(id) < m.NodeCount(); id++ {
		if f.IsUnsafe(id) != (f.IsFaulty(id) && !f.IsSeedFault(id)) {
			t.Fatalf("node %d: unsafe label disagrees with deactivation", id)
		}
	}
}

// TestNoHealthyNodeHasTwoDimensionFaults is the structural theorem the
// equivalence rests on: after convexification, no routable node can
// have faulty neighbors in both dimensions (such a configuration
// always coalesces and swallows the node).
func TestNoHealthyNodeHasTwoDimensionFaults(t *testing.T) {
	m := topology.New(10, 10)
	for seed := int64(0); seed < 25; seed++ {
		f, err := Generate(m, 12, rand.New(rand.NewSource(seed)), Options{})
		if err != nil {
			t.Fatal(err)
		}
		for id := topology.NodeID(0); int(id) < m.NodeCount(); id++ {
			if f.IsFaulty(id) {
				continue
			}
			c := m.CoordOf(id)
			bad := func(d topology.Direction) bool {
				nb, ok := m.Neighbor(c, d)
				return ok && f.IsFaulty(m.ID(nb))
			}
			xBad := bad(topology.East) || bad(topology.West)
			yBad := bad(topology.North) || bad(topology.South)
			if xBad && yBad {
				t.Fatalf("seed %d: healthy node %v has faulty neighbors in both dimensions", seed, c)
			}
		}
	}
}

func TestRegionOfAndRingAround(t *testing.T) {
	m := topology.New(8, 8)
	c := topology.Coord{X: 3, Y: 3}
	f, err := New(m, ids(m, c))
	if err != nil {
		t.Fatal(err)
	}
	id := m.ID(c)
	if r := f.RegionOf(id); r == nil || !r.Contains(c) {
		t.Fatalf("RegionOf faulty node = %v", r)
	}
	if f.RegionOf(m.ID(topology.Coord{X: 0, Y: 0})) != nil {
		t.Error("RegionOf healthy node non-nil")
	}
	if f.RingAround(id) == nil {
		t.Error("RingAround faulty node nil")
	}
	if f.RingAround(m.ID(topology.Coord{X: 0, Y: 0})) != nil {
		t.Error("RingAround healthy node non-nil")
	}
}

func TestHealthyNodes(t *testing.T) {
	m := topology.New(4, 4)
	f, err := New(m, ids(m, topology.Coord{X: 1, Y: 1}))
	if err != nil {
		t.Fatal(err)
	}
	h := f.HealthyNodes()
	if len(h) != 15 {
		t.Fatalf("healthy = %d, want 15", len(h))
	}
	for _, id := range h {
		if f.IsFaulty(id) {
			t.Fatalf("healthy list contains faulty node %d", id)
		}
	}
}

func TestGenerateProperties(t *testing.T) {
	m := topology.New(10, 10)
	for seed := int64(0); seed < 30; seed++ {
		rng := rand.New(rand.NewSource(seed))
		f, err := Generate(m, 10, rng, Options{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if f.SeedCount() != 10 {
			t.Fatalf("seed %d: seed faults = %d, want 10", seed, f.SeedCount())
		}
		if f.FaultCount() > 20 {
			t.Fatalf("seed %d: growth budget exceeded: %d faults", seed, f.FaultCount())
		}
		// Structural invariants on every generated pattern.
		checkModelInvariants(t, f)
	}
}

func TestGenerateDeterministicPerSeed(t *testing.T) {
	m := topology.New(10, 10)
	a, err := Generate(m, 8, rand.New(rand.NewSource(42)), Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(m, 8, rand.New(rand.NewSource(42)), Options{})
	if err != nil {
		t.Fatal(err)
	}
	for id := topology.NodeID(0); int(id) < m.NodeCount(); id++ {
		if a.IsFaulty(id) != b.IsFaulty(id) {
			t.Fatalf("same seed produced different patterns at node %d", id)
		}
	}
}

func TestGenerateForbidBoundary(t *testing.T) {
	m := topology.New(10, 10)
	for seed := int64(0); seed < 10; seed++ {
		f, err := Generate(m, 5, rand.New(rand.NewSource(seed)), Options{ForbidBoundary: true})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for _, r := range f.Rings() {
			if r.Chain {
				t.Fatalf("seed %d: boundary chain despite ForbidBoundary", seed)
			}
		}
	}
}

func TestGenerateRejectsBadCounts(t *testing.T) {
	m := topology.New(4, 4)
	rng := rand.New(rand.NewSource(1))
	if _, err := Generate(m, 16, rng, Options{}); err == nil {
		t.Error("Generate with count == nodes did not fail")
	}
	if _, err := Generate(m, -1, rng, Options{}); err == nil {
		t.Error("Generate with negative count did not fail")
	}
}

func TestGenerateZeroFaults(t *testing.T) {
	m := topology.New(5, 5)
	f, err := Generate(m, 0, rand.New(rand.NewSource(1)), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if f.FaultCount() != 0 {
		t.Fatalf("zero-fault generate produced %d faults", f.FaultCount())
	}
}

// checkModelInvariants verifies the structural properties every valid
// model must satisfy.
func checkModelInvariants(t *testing.T, f *Model) {
	t.Helper()
	m := f.Topo
	// Regions are pairwise Chebyshev >= 2 apart and fully faulty.
	regions := f.Regions()
	for i := range regions {
		for j := i + 1; j < len(regions); j++ {
			if regions[i].chebyshev(regions[j]) < 2 {
				t.Fatalf("regions %v and %v touch", regions[i], regions[j])
			}
		}
		for y := regions[i].Min.Y; y <= regions[i].Max.Y; y++ {
			for x := regions[i].Min.X; x <= regions[i].Max.X; x++ {
				if !f.IsFaulty(m.ID(topology.Coord{X: x, Y: y})) {
					t.Fatalf("region %v contains healthy node (%d,%d)", regions[i], x, y)
				}
			}
		}
	}
	// Every faulty node is in exactly one region.
	for id := topology.NodeID(0); int(id) < m.NodeCount(); id++ {
		if f.IsFaulty(id) {
			if f.RegionOf(id) == nil {
				t.Fatalf("faulty node %d not in any region", id)
			}
		} else if f.RegionOf(id) != nil {
			t.Fatalf("healthy node %d assigned a region", id)
		}
	}
	// Rings consist of healthy nodes hugging their region.
	for ri, ring := range f.Rings() {
		for i, id := range ring.Nodes {
			if f.IsFaulty(id) {
				t.Fatalf("ring %d node %d faulty", ri, id)
			}
			if i+1 < len(ring.Nodes) {
				if m.Distance(m.CoordOf(id), m.CoordOf(ring.Nodes[i+1])) != 1 {
					t.Fatalf("ring %d not an adjacent path at %d", ri, i)
				}
			}
		}
		if !ring.Chain && len(ring.Nodes) > 1 {
			if m.Distance(m.CoordOf(ring.Nodes[0]), m.CoordOf(ring.Nodes[len(ring.Nodes)-1])) != 1 {
				t.Fatalf("ring %d endpoints not adjacent in closed ring", ri)
			}
		}
	}
	// Healthy nodes are connected (re-verify with a fresh BFS).
	if !f.connected() {
		t.Fatal("model not connected")
	}
}
