package fault

import (
	"math/rand"
	"testing"
	"testing/quick"

	"wormmesh/internal/topology"
)

// Property tests on the region geometry primitives via testing/quick.

func regionFrom(a, b topology.Coord) Region {
	r := Region{Min: a, Max: a}
	if b.X < r.Min.X {
		r.Min.X = b.X
	} else {
		r.Max.X = b.X
	}
	if b.Y < r.Min.Y {
		r.Min.Y = b.Y
	} else {
		r.Max.Y = b.Y
	}
	return r
}

func randCoord(rng *rand.Rand) topology.Coord {
	return topology.Coord{X: rng.Intn(20), Y: rng.Intn(20)}
}

func TestQuickRegionChebyshevSymmetric(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func() bool {
		a := regionFrom(randCoord(rng), randCoord(rng))
		b := regionFrom(randCoord(rng), randCoord(rng))
		return a.chebyshev(b) == b.chebyshev(a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestQuickRegionChebyshevZeroIffOverlap(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	f := func() bool {
		a := regionFrom(randCoord(rng), randCoord(rng))
		b := regionFrom(randCoord(rng), randCoord(rng))
		overlap := false
		for y := a.Min.Y; y <= a.Max.Y && !overlap; y++ {
			for x := a.Min.X; x <= a.Max.X; x++ {
				if b.Contains(topology.Coord{X: x, Y: y}) {
					overlap = true
					break
				}
			}
		}
		return (a.chebyshev(b) == 0) == overlap
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestQuickUnionContainsBoth(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	f := func() bool {
		a := regionFrom(randCoord(rng), randCoord(rng))
		b := regionFrom(randCoord(rng), randCoord(rng))
		u := a.union(b)
		return u.Contains(a.Min) && u.Contains(a.Max) && u.Contains(b.Min) && u.Contains(b.Max) &&
			u.Size() >= a.Size() && u.Size() >= b.Size()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestQuickRingLengthFormula: a closed f-ring around a w×h interior
// region has exactly 2(w+h)+4 nodes.
func TestQuickRingLengthFormula(t *testing.T) {
	m := topology.New(16, 16)
	rng := rand.New(rand.NewSource(4))
	f := func() bool {
		w := 1 + rng.Intn(4)
		h := 1 + rng.Intn(4)
		x0 := 2 + rng.Intn(16-w-4)
		y0 := 2 + rng.Intn(16-h-4)
		var ids []topology.NodeID
		for y := y0; y < y0+h; y++ {
			for x := x0; x < x0+w; x++ {
				ids = append(ids, m.ID(topology.Coord{X: x, Y: y}))
			}
		}
		model, err := New(m, ids)
		if err != nil {
			return false
		}
		if len(model.Rings()) != 1 || model.Rings()[0].Chain {
			return false
		}
		return model.Rings()[0].Len() == 2*(w+h)+4
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestQuickGeneratedPatternsSatisfyInvariants fuzzes Generate with
// random counts and seeds through quick.Check.
func TestQuickGeneratedPatternsSatisfyInvariants(t *testing.T) {
	m := topology.New(10, 10)
	rng := rand.New(rand.NewSource(5))
	f := func() bool {
		count := rng.Intn(12)
		seed := rng.Int63()
		model, err := Generate(m, count, rand.New(rand.NewSource(seed)), Options{})
		if err != nil {
			// Acceptable only for large counts that keep disconnecting.
			return count > 8
		}
		if model.SeedCount() != count {
			return false
		}
		// Every ring node borders its region.
		for ri, ring := range model.Rings() {
			region := model.Regions()[ri]
			for _, id := range ring.Nodes {
				c := m.CoordOf(id)
				if c.X < region.Min.X-1 || c.X > region.Max.X+1 ||
					c.Y < region.Min.Y-1 || c.Y > region.Max.Y+1 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
