package fault

import (
	"math/rand"
	"testing"

	"wormmesh/internal/topology"
)

// BenchmarkGenerate measures random fault-pattern generation with
// convexification and connectivity checking (the per-replication setup
// cost of every fault experiment).
func BenchmarkGenerate(b *testing.B) {
	m := topology.New(10, 10)
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Generate(m, 10, rng, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNewModel measures model construction for a fixed pattern.
func BenchmarkNewModel(b *testing.B) {
	m := topology.New(10, 10)
	ids, err := NamedPattern("paper-fig6", m)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := New(m, ids); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRingNext measures the per-hop cost of ring traversal
// lookups (the inner loop of BC detours).
func BenchmarkRingNext(b *testing.B) {
	m := topology.New(10, 10)
	ids, err := NamedPattern("center-block", m)
	if err != nil {
		b.Fatal(err)
	}
	model, err := New(m, ids)
	if err != nil {
		b.Fatal(err)
	}
	ring := model.Rings()[0]
	node := ring.Nodes[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		next, ok := ring.Next(node, i%2 == 0)
		if !ok {
			b.Fatal("ring broke")
		}
		node = next
	}
}
