package fault

import (
	"fmt"
	"sort"

	"wormmesh/internal/topology"
)

// Canned fault patterns from the fault-tolerant routing literature,
// scaled to the mesh. Each returns the seed fault nodes; build the
// Model with New. Patterns that do not fit a mesh return an error.

// PatternNames lists the canned patterns.
func PatternNames() []string {
	names := make([]string, 0, len(patterns))
	for name := range patterns {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// NamedPattern returns the seed fault nodes of a canned pattern.
func NamedPattern(name string, m topology.Topology) ([]topology.NodeID, error) {
	fn, ok := patterns[name]
	if !ok {
		return nil, fmt.Errorf("fault: unknown pattern %q (have %v)", name, PatternNames())
	}
	return fn(m)
}

var patterns = map[string]func(topology.Topology) ([]topology.NodeID, error){
	"center-block":   centerBlock,
	"cross":          cross,
	"boundary-chain": boundaryChainPattern,
	"corner":         cornerPattern,
	"staircase":      staircase,
	"double-wall":    doubleWall,
	"paper-fig6":     paperFig6,
}

func need(m topology.Topology, w, h int) error {
	if m.Width() < w || m.Height() < h {
		return fmt.Errorf("fault: pattern needs at least a %dx%d mesh, got %v", w, h, m)
	}
	return nil
}

func block(m topology.Topology, x0, y0, x1, y1 int) []topology.NodeID {
	var ids []topology.NodeID
	for y := y0; y <= y1; y++ {
		for x := x0; x <= x1; x++ {
			ids = append(ids, m.ID(topology.Coord{X: x, Y: y}))
		}
	}
	return ids
}

// centerBlock is a 2×2 block in the middle of the mesh.
func centerBlock(m topology.Topology) ([]topology.NodeID, error) {
	if err := need(m, 6, 6); err != nil {
		return nil, err
	}
	cx, cy := m.Width()/2, m.Height()/2
	return block(m, cx-1, cy-1, cx, cy), nil
}

// cross places four 1×1 regions around the center at Chebyshev
// distance 2 from a central 1×1 region: five distinct regions whose
// f-rings overlap pairwise, the stress case for the BC ring channels.
func cross(m topology.Topology) ([]topology.NodeID, error) {
	if err := need(m, 9, 9); err != nil {
		return nil, err
	}
	cx, cy := m.Width()/2, m.Height()/2
	var ids []topology.NodeID
	for _, d := range [][2]int{{0, 0}, {2, 0}, {-2, 0}, {0, 2}, {0, -2}} {
		ids = append(ids, m.ID(topology.Coord{X: cx + d[0], Y: cy + d[1]}))
	}
	return ids, nil
}

// boundaryChainPattern is a 2×2 block touching the west edge: an open
// f-chain.
func boundaryChainPattern(m topology.Topology) ([]topology.NodeID, error) {
	if err := need(m, 5, 6); err != nil {
		return nil, err
	}
	cy := m.Height() / 2
	return block(m, 0, cy-1, 1, cy), nil
}

// cornerPattern fails the north-east corner 2×2.
func cornerPattern(m topology.Topology) ([]topology.NodeID, error) {
	if err := need(m, 5, 5); err != nil {
		return nil, err
	}
	return block(m, m.Width()-2, m.Height()-2, m.Width()-1, m.Height()-1), nil
}

// staircase is a diagonal run of faults that convexification merges
// into one large block — the worst case for deactivation overhead.
func staircase(m topology.Topology) ([]topology.NodeID, error) {
	if err := need(m, 8, 8); err != nil {
		return nil, err
	}
	var ids []topology.NodeID
	for i := 0; i < 3; i++ {
		ids = append(ids, m.ID(topology.Coord{X: 2 + i, Y: 2 + i}))
	}
	return ids, nil
}

// doubleWall places two parallel horizontal bars with a two-row gap:
// a corridor that funnels all crossing traffic.
func doubleWall(m topology.Topology) ([]topology.NodeID, error) {
	if err := need(m, 8, 9); err != nil {
		return nil, err
	}
	cy := m.Height() / 2
	var ids []topology.NodeID
	ids = append(ids, block(m, 2, cy-2, m.Width()-3, cy-2)...)
	ids = append(ids, block(m, 2, cy+2, m.Width()-3, cy+2)...)
	return ids, nil
}

// paperFig6 is the pattern of the paper's Figure 6: a 2×3 block plus
// two unit regions in the same row band, spaced so the f-rings
// overlap.
func paperFig6(m topology.Topology) ([]topology.NodeID, error) {
	if err := need(m, 10, 7); err != nil {
		return nil, err
	}
	var ids []topology.NodeID
	ids = append(ids, block(m, 2, 3, 3, 5)...)
	ids = append(ids, m.ID(topology.Coord{X: 5, Y: 4}), m.ID(topology.Coord{X: 7, Y: 4}))
	return ids, nil
}
