package fault

import (
	"testing"

	"wormmesh/internal/topology"
)

func TestNamedPatternsBuildValidModels(t *testing.T) {
	m := topology.New(10, 10)
	for _, name := range PatternNames() {
		ids, err := NamedPattern(name, m)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		model, err := New(m, ids)
		if err != nil {
			t.Fatalf("%s: model: %v", name, err)
		}
		checkModelInvariants(t, model)
	}
}

func TestNamedPatternUnknown(t *testing.T) {
	if _, err := NamedPattern("nope", topology.New(10, 10)); err == nil {
		t.Error("unknown pattern accepted")
	}
}

func TestPatternsRejectTinyMeshes(t *testing.T) {
	tiny := topology.New(4, 4)
	rejected := 0
	for _, name := range PatternNames() {
		if _, err := NamedPattern(name, tiny); err != nil {
			rejected++
		}
	}
	if rejected == 0 {
		t.Error("no pattern rejected a 4x4 mesh")
	}
}

func TestPatternShapes(t *testing.T) {
	m := topology.New(10, 10)

	ids, err := NamedPattern("cross", m)
	if err != nil {
		t.Fatal(err)
	}
	model, err := New(m, ids)
	if err != nil {
		t.Fatal(err)
	}
	if len(model.Regions()) != 5 {
		t.Errorf("cross regions = %d, want 5", len(model.Regions()))
	}
	overlaps := 0
	for id := topology.NodeID(0); int(id) < m.NodeCount(); id++ {
		if len(model.RingsThrough(id)) >= 2 {
			overlaps++
		}
	}
	if overlaps == 0 {
		t.Error("cross pattern has no overlapping rings")
	}

	ids, err = NamedPattern("staircase", m)
	if err != nil {
		t.Fatal(err)
	}
	model, err = New(m, ids)
	if err != nil {
		t.Fatal(err)
	}
	if len(model.Regions()) != 1 {
		t.Errorf("staircase regions = %d, want 1 (merged)", len(model.Regions()))
	}
	if model.DeactivatedCount() != 9-3 {
		t.Errorf("staircase deactivated = %d, want 6 (3x3 box minus 3 seeds)", model.DeactivatedCount())
	}

	ids, err = NamedPattern("boundary-chain", m)
	if err != nil {
		t.Fatal(err)
	}
	model, err = New(m, ids)
	if err != nil {
		t.Fatal(err)
	}
	if !model.Rings()[0].Chain {
		t.Error("boundary-chain did not produce a chain")
	}

	ids, err = NamedPattern("double-wall", m)
	if err != nil {
		t.Fatal(err)
	}
	model, err = New(m, ids)
	if err != nil {
		t.Fatal(err)
	}
	if len(model.Regions()) != 2 {
		t.Errorf("double-wall regions = %d, want 2", len(model.Regions()))
	}
}
