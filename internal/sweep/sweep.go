// Package sweep runs batches of simulations in parallel and aggregates
// replicated results. One simulation is strictly sequential (the
// engine is deterministic per seed); the parallelism the paper's
// methodology offers — many algorithms × loads × fault sets — is
// embarrassingly parallel and is exploited here with a worker pool.
package sweep

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"wormmesh/internal/sim"
)

// Point is one simulation to run, tagged for aggregation: outcomes
// sharing a Key are replications of the same experimental cell.
type Point struct {
	Key    string
	Params sim.Params
}

// Outcome pairs a point with its result (or error).
type Outcome struct {
	Point  Point
	Result sim.Result
	Err    error
}

// Run executes the points on `workers` goroutines (NumCPU when 0) and
// returns outcomes in input order. progress, when non-nil, is invoked
// after each completion with the done count; see RunContext for the
// callback contract.
func Run(points []Point, workers int, progress func(done, total int)) []Outcome {
	return RunContext(context.Background(), points, workers, progress)
}

// RunContext is Run with cancellation: once ctx is done, no further
// simulations start; points never started carry ctx.Err() as their
// outcome error. Simulations already in flight run to completion (a
// single run is seconds at most).
//
// Each worker owns one sim.Runner for its whole lifetime, so a sweep
// builds O(workers) networks — not O(points) — and reuses fault models,
// fortified algorithms and traffic state across the points it draws.
//
// Progress callback contract: progress may be called from any worker
// goroutine, but calls are serialized by an internal mutex — the
// callback never runs concurrently with itself, so it may mutate its
// captured state without its own locking. done counts completions
// (1..total) and each value is delivered exactly once, though values
// may arrive out of order when workers finish near-simultaneously. The
// callback must not call back into the sweep.
func RunContext(ctx context.Context, points []Point, workers int, progress func(done, total int)) []Outcome {
	return runContext(ctx, points, workers, progress, nil)
}

// runContext is the shared worker-pool core behind RunContext and
// RunCachedContext; cache may be nil.
func runContext(ctx context.Context, points []Point, workers int, progress func(done, total int), cache Cache) []Outcome {
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > len(points) {
		workers = len(points)
	}
	out := make([]Outcome, len(points))
	var next, done int64
	var progressMu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var runner *sim.Runner
			defer func() {
				if runner != nil {
					runner.Close()
				}
			}()
			for {
				i := int(atomic.AddInt64(&next, 1)) - 1
				if i >= len(points) {
					return
				}
				if cache != nil {
					if res, ok := cache.Lookup(points[i].Params); ok {
						out[i] = Outcome{Point: points[i], Result: res}
						d := int(atomic.AddInt64(&done, 1))
						if progress != nil {
							progressMu.Lock()
							progress(d, len(points))
							progressMu.Unlock()
						}
						continue
					}
				}
				if err := ctx.Err(); err != nil {
					out[i] = Outcome{Point: points[i], Err: err}
					continue
				}
				if runner == nil {
					// Lazily built so an all-hit batch constructs no network.
					runner = sim.NewRunner()
				}
				res, err := runner.Run(points[i].Params)
				out[i] = Outcome{Point: points[i], Result: res, Err: err}
				if cache != nil && err == nil {
					cache.Store(points[i].Params, res)
				}
				d := int(atomic.AddInt64(&done, 1))
				if progress != nil {
					progressMu.Lock()
					progress(d, len(points))
					progressMu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	return out
}

// Cell is the aggregate of the replications sharing one key.
type Cell struct {
	Key string
	N   int

	Throughput     Moments // flits per node per cycle
	Normalized     Moments // fraction of bisection capacity
	Latency        Moments // cycles, generation to tail delivery
	NetLatency     Moments
	Detour         Moments // extra hops beyond minimal
	KilledFraction Moments // killed / generated
	Errors         []error
}

// Moments accumulates mean and standard deviation online.
type Moments struct {
	N    int
	Sum  float64
	SumQ float64
}

// Add folds in one observation; NaNs are skipped.
func (m *Moments) Add(v float64) {
	if math.IsNaN(v) {
		return
	}
	m.N++
	m.Sum += v
	m.SumQ += v * v
}

// Mean returns the sample mean (NaN when empty).
func (m Moments) Mean() float64 {
	if m.N == 0 {
		return math.NaN()
	}
	return m.Sum / float64(m.N)
}

// CI95 returns the half-width of the 95% confidence interval of the
// mean using Student's t (zero when fewer than two observations).
func (m Moments) CI95() float64 {
	if m.N < 2 {
		return 0
	}
	return tCritical95(m.N-1) * m.Std() / math.Sqrt(float64(m.N))
}

// tCritical95 returns the two-sided 95% critical value of Student's t
// with df degrees of freedom (tabulated; the asymptote 1.96 beyond).
func tCritical95(df int) float64 {
	table := []float64{0, 12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365,
		2.306, 2.262, 2.228, 2.201, 2.179, 2.160, 2.145, 2.131, 2.120,
		2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060,
		2.056, 2.052, 2.048, 2.045, 2.042}
	if df < len(table) {
		return table[df]
	}
	switch {
	case df >= 120:
		return 1.980
	case df >= 60:
		return 2.000
	case df >= 40:
		return 2.021
	default:
		return 2.030
	}
}

// Std returns the sample standard deviation.
func (m Moments) Std() float64 {
	if m.N < 2 {
		return 0
	}
	n := float64(m.N)
	mean := m.Sum / n
	v := (m.SumQ - n*mean*mean) / (n - 1)
	if v < 0 {
		v = 0
	}
	return math.Sqrt(v)
}

// Aggregate groups outcomes by key and folds their headline metrics.
// Keys appear in first-seen order.
func Aggregate(outcomes []Outcome) []Cell {
	index := map[string]int{}
	var cells []Cell
	for _, o := range outcomes {
		i, ok := index[o.Point.Key]
		if !ok {
			i = len(cells)
			index[o.Point.Key] = i
			cells = append(cells, Cell{Key: o.Point.Key})
		}
		c := &cells[i]
		if o.Err != nil {
			c.Errors = append(c.Errors, o.Err)
			continue
		}
		c.N++
		st := o.Result.Stats
		c.Throughput.Add(st.Throughput())
		c.Normalized.Add(o.Result.NormalizedThroughput())
		c.Latency.Add(st.AvgLatency())
		c.NetLatency.Add(st.AvgNetLatency())
		c.Detour.Add(st.AvgDetour())
		if st.Generated > 0 {
			c.KilledFraction.Add(float64(st.Killed) / float64(st.Generated))
		}
	}
	return cells
}

// FirstError returns the first error among the outcomes, or nil.
func FirstError(outcomes []Outcome) error {
	for _, o := range outcomes {
		if o.Err != nil {
			return fmt.Errorf("sweep: point %q: %w", o.Point.Key, o.Err)
		}
	}
	return nil
}

// FaultReplicas expands one base configuration into n points that
// differ only in their fault seed (and traffic seed), the paper's
// "10 different fault sets averaged".
func FaultReplicas(key string, base sim.Params, n int) []Point {
	pts := make([]Point, n)
	for i := range pts {
		p := base
		p.FaultSeed = base.FaultSeed + int64(1000*i)
		p.Seed = base.Seed + int64(i)
		pts[i] = Point{Key: key, Params: p}
	}
	return pts
}

// SaturationSearch finds the saturation throughput of a configuration:
// it doubles the offered rate until accepted throughput stops
// improving by more than tol (relative), then returns the best
// accepted throughput observed. It runs at most maxRuns simulations.
func SaturationSearch(base sim.Params, startRate float64, tol float64, maxRuns int) (rate, throughput float64, err error) {
	best := 0.0
	bestRate := startRate
	r := startRate
	for i := 0; i < maxRuns; i++ {
		p := base
		p.Rate = r
		res, e := sim.Run(p)
		if e != nil {
			return 0, 0, e
		}
		thr := res.Stats.Throughput()
		if thr > best*(1+tol) {
			best, bestRate = thr, r
			r *= 2
			continue
		}
		break
	}
	return bestRate, best, nil
}

// SortCells orders cells by key (for deterministic test output).
func SortCells(cells []Cell) {
	sort.Slice(cells, func(i, j int) bool { return cells[i].Key < cells[j].Key })
}
