package sweep

import (
	"fmt"
	"math"
	"sort"

	"wormmesh/internal/analytic"
	"wormmesh/internal/routing"
	"wormmesh/internal/sim"
)

// Point provenance values recorded per hybrid sweep cell.
const (
	// SourceSimulated marks a cell whose numbers come from a flit-level
	// simulation, bit-identical to a full sweep of the same Params.
	SourceSimulated = "simulated"
	// SourceModel marks a cell filled by the calibrated analytic
	// surrogate (stable region) or the simulated plateau (beyond it).
	SourceModel = "model"
)

// HybridCurve is one load curve of a hybrid sweep: a key, the shared
// simulation parameters, and the ascending rate axis. Base.Rate is
// overridden per point.
type HybridCurve struct {
	Key   string
	Base  sim.Params
	Rates []float64
}

// HybridOptions tunes HybridSweep.
type HybridOptions struct {
	// Workers for the simulated batch (0 = NumCPU, as Run).
	Workers int
	// BracketRadius widens the simulated window around the surrogate's
	// predicted knee k: grid rates in [k/BracketRadius, k·BracketRadius]
	// are simulated (plus the two rates straddling k, always). Default
	// 1.3; larger values trade speed for a safer bracket.
	BracketRadius float64
	// Progress receives completed/total counts for the simulated batch.
	Progress func(done, total int)
	// Metrics, when non-nil, receives the batch lifecycle. Start is
	// called with the simulated-cell count — not the full grid — so the
	// published ETA extrapolates over the cells that actually run
	// instead of overestimating by the model-filled fraction.
	Metrics ProgressSink
	// Cache, when non-nil, answers simulated cells without running them
	// and files fresh results for the next sweep.
	Cache Cache
}

// HybridPoint is one cell of a hybrid curve.
type HybridPoint struct {
	Rate   float64
	Source string // SourceSimulated or SourceModel
	// Result holds the full simulation outcome for simulated cells
	// (zero value for model cells).
	Result     sim.Result
	Latency    float64 // cycles
	Accepted   float64 // flits/node/cycle
	Normalized float64 // fraction of bisection capacity
}

// HybridCurveResult is one curve's outcome.
type HybridCurveResult struct {
	Key string
	// Gamma is the fitted contention gain (1 when calibration was not
	// possible); Knee the surrogate's predicted saturation rate.
	Gamma float64
	Knee  float64
	// BracketLo/Hi bound the simulated rates: the knee bracket the
	// simulator was scheduled into.
	BracketLo, BracketHi float64
	Points               []HybridPoint
	Simulated            int
}

// HybridSupported reports whether the analytic surrogate models the
// given cell, with an error explaining any rejection: callers gate
// hybrid modes on it instead of silently falling back to simulation.
func HybridSupported(p sim.Params) error {
	if p.Topology != "" && p.Topology != "mesh" {
		return fmt.Errorf("%w: hybrid sweeps model meshes only, not %q", analytic.ErrUnsupported, p.Topology)
	}
	if (p.Faults > 0 || p.FaultNodes != nil) && !routing.LoadsSupported(p.Algorithm) {
		return fmt.Errorf("%w: %s routes around faults outside the BC fortification", analytic.ErrUnsupported, p.Algorithm)
	}
	return nil
}

// Surrogate builds the analytic model matching one cell's parameters
// (topology, message length, VC budget, fault pattern): the model a
// hybrid sweep screens that cell's load axis with. Unsupported cells
// return an error satisfying errors.Is(err, analytic.ErrUnsupported).
func Surrogate(p sim.Params) (analytic.Model, error) {
	if err := HybridSupported(p); err != nil {
		return analytic.Model{}, err
	}
	f, err := sim.BuildFaults(p)
	if err != nil {
		return analytic.Model{}, err
	}
	cfg := p.Config
	if cfg.NumVCs == 0 {
		cfg = sim.DefaultEngineConfig()
	}
	mo := analytic.Default()
	mo.Topo = f.Topo
	mo.MessageLength = p.MessageLength
	// The BC fortification reserves four ring VCs; the rest is the
	// free pool the model's occupancy term sees.
	mo.VirtualChannels = cfg.NumVCs - 4
	if mo.VirtualChannels < 1 {
		mo.VirtualChannels = 1
	}
	if cfg.EjectBW > 0 {
		mo.EjectBandwidth = float64(cfg.EjectBW)
	}
	if f.FaultCount() > 0 {
		return mo.WithFaults(p.Algorithm, f, cfg.NumVCs)
	}
	return mo, nil
}

// HybridSweep runs an analytic-guided load sweep: per curve the
// surrogate screens the rate axis in microseconds, predicts the
// saturation knee, and schedules flit-level simulation only for the
// rates bracketing it (plus the straddle pair). The simulated cells go
// through the same Run worker pool as a full sweep — each worker owns
// one Runner whose reuse is observably transparent — so their Stats
// are bit-identical to the full sweep's. Stable-region cells outside
// the bracket are filled by the surrogate after a single-γ calibration
// at the lowest simulated stable rate; cells beyond the bracket carry
// the highest simulated point's plateau. Every point records its
// provenance in Source.
func HybridSweep(curves []HybridCurve, opt HybridOptions) ([]HybridCurveResult, error) {
	radius := opt.BracketRadius
	if radius <= 1 {
		radius = 1.3
	}
	type plan struct {
		curve HybridCurve
		model analytic.Model
		knee  float64
		sim   map[float64]bool
	}
	plans := make([]plan, 0, len(curves))
	var points []Point
	for _, c := range curves {
		if len(c.Rates) == 0 {
			return nil, fmt.Errorf("sweep: hybrid curve %q has no rates", c.Key)
		}
		if !sort.Float64sAreSorted(c.Rates) {
			return nil, fmt.Errorf("sweep: hybrid curve %q rates not ascending", c.Key)
		}
		model, err := Surrogate(c.Base)
		if err != nil {
			return nil, fmt.Errorf("sweep: curve %q: %w", c.Key, err)
		}
		knee := model.SaturationRate()
		simSet := map[float64]bool{}
		var below, above float64
		haveBelow, haveAbove := false, false
		for _, r := range c.Rates {
			if r >= knee/radius && r <= knee*radius {
				simSet[r] = true
			}
			if r < knee {
				below, haveBelow = r, true
			} else if !haveAbove {
				above, haveAbove = r, true
			}
		}
		// Always simulate the straddle pair so the measured knee cannot
		// slip between two model-filled cells.
		if haveBelow {
			simSet[below] = true
		}
		if haveAbove {
			simSet[above] = true
		}
		if len(simSet) == 0 {
			// Knee outside the whole grid; anchor on the nearest end.
			simSet[c.Rates[0]] = true
		}
		plans = append(plans, plan{curve: c, model: model, knee: knee, sim: simSet})
		for _, r := range c.Rates {
			if simSet[r] {
				p := c.Base
				p.Rate = r
				points = append(points, Point{Key: fmt.Sprintf("%s@%g", c.Key, r), Params: p})
			}
		}
	}

	progress := opt.Progress
	if opt.Metrics != nil {
		opt.Metrics.Start(len(points))
		user := opt.Progress
		progress = func(done, total int) {
			opt.Metrics.Progress(done, total)
			if user != nil {
				user(done, total)
			}
		}
	}
	outcomes := RunCached(points, opt.Workers, progress, opt.Cache)
	if opt.Metrics != nil {
		opt.Metrics.Finish()
	}
	if err := FirstError(outcomes); err != nil {
		return nil, err
	}
	byKey := make(map[string]Outcome, len(outcomes))
	for _, out := range outcomes {
		byKey[out.Point.Key] = out
	}

	results := make([]HybridCurveResult, 0, len(plans))
	for _, pl := range plans {
		res := HybridCurveResult{
			Key:   pl.curve.Key,
			Gamma: 1,
			Knee:  pl.knee,
		}
		// Calibrate γ at the lowest simulated rate the model can still
		// predict: just below the knee the contention delta is large,
		// so the single-point fit is well conditioned.
		cal := pl.model
		for _, r := range pl.curve.Rates {
			if !pl.sim[r] {
				continue
			}
			out := byKey[fmt.Sprintf("%s@%g", pl.curve.Key, r)]
			if _, err := pl.model.Predict(r); err != nil {
				break // this and later rates are model-saturated
			}
			if c, err := pl.model.Calibrate(r, out.Result.Stats.AvgLatency()); err == nil {
				cal = c
				res.Gamma = c.ContentionGain
			}
			break
		}

		var lastSim *HybridPoint
		for _, r := range pl.curve.Rates {
			if pl.sim[r] {
				out := byKey[fmt.Sprintf("%s@%g", pl.curve.Key, r)]
				hp := HybridPoint{
					Rate:       r,
					Source:     SourceSimulated,
					Result:     out.Result,
					Latency:    out.Result.Stats.AvgLatency(),
					Accepted:   out.Result.Stats.Throughput(),
					Normalized: out.Result.NormalizedThroughput(),
				}
				res.Points = append(res.Points, hp)
				res.Simulated++
				if res.BracketLo == 0 || r < res.BracketLo {
					res.BracketLo = r
				}
				if r > res.BracketHi {
					res.BracketHi = r
				}
				lastSim = &res.Points[len(res.Points)-1]
				continue
			}
			hp := HybridPoint{Rate: r, Source: SourceModel}
			if pred, err := cal.Predict(r); err == nil && r < pl.knee {
				// Stable region: all offered traffic is accepted.
				hp.Latency = pred.Latency
				hp.Accepted = r * float64(pl.curve.Base.MessageLength)
				hp.Normalized = hp.Accepted / meshCapacity(pl.curve.Base)
			} else if lastSim != nil {
				// Past the bracket: the curve has flattened; carry the
				// highest simulated plateau.
				hp.Latency = lastSim.Latency
				hp.Accepted = lastSim.Accepted
				hp.Normalized = lastSim.Normalized
			} else {
				hp.Latency = math.NaN()
			}
			res.Points = append(res.Points, hp)
		}
		results = append(results, res)
	}
	return results, nil
}

// meshCapacity mirrors sim.Result.NormalizedThroughput's denominator
// for model-filled points.
func meshCapacity(p sim.Params) float64 {
	minDim := p.Width
	if p.Height < minDim {
		minDim = p.Height
	}
	return 4 * float64(minDim) / float64(p.Width*p.Height)
}
