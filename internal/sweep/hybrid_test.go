package sweep

import (
	"errors"
	"fmt"
	"math"
	"reflect"
	"testing"

	"wormmesh/internal/analytic"
	"wormmesh/internal/sim"
)

// hybridBase is the quick-scale cell the hybrid tests sweep: an 8×8
// mesh with short messages so a full grid stays in test time.
func hybridBase(alg string, vcs, faults int) sim.Params {
	p := sim.DefaultParams()
	p.Width, p.Height = 8, 8
	p.Algorithm = alg
	p.MessageLength = 20
	p.WarmupCycles = 1000
	p.MeasureCycles = 4000
	p.Faults = faults
	p.FaultSeed = 7
	p.Config.NumVCs = vcs
	return p
}

// kneeGrid builds a geometric rate axis spanning a quarter to four
// times the surrogate's knee — a fig1-style load sweep centered so
// both the flat region and the plateau are on the grid.
func kneeGrid(t *testing.T, base sim.Params) []float64 {
	t.Helper()
	mo, err := Surrogate(base)
	if err != nil {
		t.Fatal(err)
	}
	knee := mo.SaturationRate()
	var rates []float64
	for r := knee / 4; r < knee*4; r *= 1.35 {
		rates = append(rates, r)
	}
	return rates
}

func TestHybridSupported(t *testing.T) {
	p := hybridBase("Minimal-Adaptive", 12, 2)
	if err := HybridSupported(p); err != nil {
		t.Errorf("faulted mesh Minimal-Adaptive: %v", err)
	}
	p.Topology = "torus"
	if err := HybridSupported(p); !errors.Is(err, analytic.ErrUnsupported) {
		t.Errorf("torus: err = %v, want ErrUnsupported", err)
	}
	p = hybridBase("Boura-FT", 12, 2)
	if err := HybridSupported(p); !errors.Is(err, analytic.ErrUnsupported) {
		t.Errorf("Boura-FT with faults: err = %v, want ErrUnsupported", err)
	}
	// Fault-free Boura-FT needs no route loads: the cut model covers it.
	p.Faults = 0
	if err := HybridSupported(p); err != nil {
		t.Errorf("fault-free Boura-FT: %v", err)
	}
}

func TestHybridSweepRejectsBadCurves(t *testing.T) {
	base := hybridBase("Minimal-Adaptive", 12, 0)
	if _, err := HybridSweep([]HybridCurve{{Key: "x", Base: base}}, HybridOptions{}); err == nil {
		t.Error("empty rate axis accepted")
	}
	if _, err := HybridSweep([]HybridCurve{{Key: "x", Base: base, Rates: []float64{0.01, 0.005}}}, HybridOptions{}); err == nil {
		t.Error("descending rate axis accepted")
	}
}

// TestHybridMatchesFullSweep is the reuse-transparency guarantee at
// the hybrid level: the cells the hybrid chooses to simulate must be
// bit-identical to the same cells in a full sweep, even though the
// worker pools batch different point sets onto reused Runners.
func TestHybridMatchesFullSweep(t *testing.T) {
	base := hybridBase("Minimal-Adaptive", 12, 2)
	rates := kneeGrid(t, base)

	var points []Point
	for _, r := range rates {
		p := base
		p.Rate = r
		points = append(points, Point{Key: fmt.Sprintf("full@%g", r), Params: p})
	}
	full := Run(points, 3, nil)
	if err := FirstError(full); err != nil {
		t.Fatal(err)
	}
	fullByRate := map[float64]sim.Result{}
	for i, out := range full {
		fullByRate[rates[i]] = out.Result
	}

	res, err := HybridSweep([]HybridCurve{{Key: "ma", Base: base, Rates: rates}}, HybridOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 {
		t.Fatalf("got %d curve results, want 1", len(res))
	}
	hc := res[0]
	if len(hc.Points) != len(rates) {
		t.Fatalf("got %d points, want %d", len(hc.Points), len(rates))
	}
	if hc.Simulated == 0 || hc.Simulated > len(rates)/2 {
		t.Errorf("simulated %d of %d points, want a small bracket", hc.Simulated, len(rates))
	}
	for i, hp := range hc.Points {
		if hp.Rate != rates[i] {
			t.Fatalf("point %d rate %g, want %g", i, hp.Rate, rates[i])
		}
		switch hp.Source {
		case SourceSimulated:
			want := fullByRate[hp.Rate]
			if !reflect.DeepEqual(hp.Result.Stats, want.Stats) {
				t.Errorf("rate %g: hybrid Stats differ from full sweep", hp.Rate)
			}
			if hp.Latency != want.Stats.AvgLatency() || hp.Accepted != want.Stats.Throughput() {
				t.Errorf("rate %g: derived fields diverge from Stats", hp.Rate)
			}
		case SourceModel:
			if math.IsNaN(hp.Latency) || hp.Latency <= 0 {
				t.Errorf("rate %g: model fill latency %v", hp.Rate, hp.Latency)
			}
			if hp.Accepted <= 0 || hp.Normalized <= 0 {
				t.Errorf("rate %g: model fill throughput %v / %v", hp.Rate, hp.Accepted, hp.Normalized)
			}
		default:
			t.Errorf("rate %g: unknown provenance %q", hp.Rate, hp.Source)
		}
	}
	if hc.Gamma <= 0 {
		t.Errorf("gamma %v not fitted", hc.Gamma)
	}
	if hc.BracketLo <= 0 || hc.BracketHi < hc.BracketLo {
		t.Errorf("bracket [%g, %g] malformed", hc.BracketLo, hc.BracketHi)
	}
}

// TestHybridBracketContainsKnee is the bracket-correctness property:
// across an {algorithm, fault scenario, VC count} grid, the rate
// window the hybrid chose to simulate must contain the knee of the
// fully simulated latency curve. The measured knee is the half-rise
// point — the first rate whose latency crosses the geometric mean of
// the curve's floor (lowest-rate latency) and plateau (maximum) — the
// standard midpoint of a saturating curve's transition on log axes.
func TestHybridBracketContainsKnee(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-backed property test")
	}
	combos := []struct {
		alg    string
		vcs    int
		faults int
	}{
		{"Minimal-Adaptive", 12, 0},
		{"Minimal-Adaptive", 12, 2},
		{"Duato", 12, 0},
		{"Duato", 18, 2},
		{"Nbc", 18, 2},
	}
	for _, c := range combos {
		name := fmt.Sprintf("%s/vc%d/f%d", c.alg, c.vcs, c.faults)
		base := hybridBase(c.alg, c.vcs, c.faults)
		rates := kneeGrid(t, base)

		var points []Point
		for _, r := range rates {
			p := base
			p.Rate = r
			points = append(points, Point{Key: fmt.Sprintf("%s@%g", name, r), Params: p})
		}
		full := Run(points, 0, nil)
		if err := FirstError(full); err != nil {
			t.Fatal(err)
		}
		floor := full[0].Result.Stats.AvgLatency()
		plateau := floor
		for _, out := range full {
			if l := out.Result.Stats.AvgLatency(); l > plateau {
				plateau = l
			}
		}
		threshold := math.Sqrt(floor * plateau)
		measured := 0.0
		for i, out := range full {
			if out.Result.Stats.AvgLatency() >= threshold {
				measured = rates[i]
				break
			}
		}
		if measured == 0 {
			t.Fatalf("%s: latency curve never crossed its half-rise point", name)
		}

		res, err := HybridSweep([]HybridCurve{{Key: name, Base: base, Rates: rates}}, HybridOptions{})
		if err != nil {
			t.Fatal(err)
		}
		hc := res[0]
		if measured < hc.BracketLo || measured > hc.BracketHi {
			t.Errorf("%s: measured knee %.5f outside simulated bracket [%.5f, %.5f] (model knee %.5f)",
				name, measured, hc.BracketLo, hc.BracketHi, hc.Knee)
		}
	}
}
