package sweep

import (
	"fmt"
	"testing"

	"wormmesh/internal/sim"
)

// BenchmarkSweepCell measures the end-to-end cost of one experimental
// cell of the paper's methodology: 1 algorithm × 3 loads × 5 fault
// replicas = 15 full simulations, run through the sweep harness the
// way cmd/experiments drives it. It is the headline number for
// sweep-scale throughput: per-point construction cost (network,
// routing tables, fault model) is inside the measurement, so reuse
// across points shows up here but not in the per-cycle engine
// benchmarks. workers=1 keeps the measurement deterministic and
// meaningful on single-CPU hosts.
func BenchmarkSweepCell(b *testing.B) {
	base := sim.DefaultParams()
	base.Algorithm = "Duato-Nbc"
	base.MessageLength = 32
	base.Faults = 6
	base.WarmupCycles = 400
	base.MeasureCycles = 1200
	var points []Point
	for _, rate := range []float64{0.002, 0.004, 0.006} {
		p := base
		p.Rate = rate
		points = append(points, FaultReplicas(fmt.Sprintf("cell@%g", rate), p, 5)...)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := Run(points, 1, nil)
		if err := FirstError(out); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSweepCellLowRate is the same harness at the bottom of the
// paper's load axis, where almost every cycle is quiescent. This is
// the cell the activity-driven engine (core/worklist.go) and the
// traffic tick short-circuit were built for: the low-rate points that
// dominate a latency-vs-load curve's left half used to cost the same
// per cycle as saturated ones.
func BenchmarkSweepCellLowRate(b *testing.B) {
	base := sim.DefaultParams()
	base.Algorithm = "Duato-Nbc"
	base.MessageLength = 32
	base.Faults = 6
	base.WarmupCycles = 400
	base.MeasureCycles = 1200
	var points []Point
	for _, rate := range []float64{0.0005, 0.001, 0.0015} {
		p := base
		p.Rate = rate
		points = append(points, FaultReplicas(fmt.Sprintf("lowcell@%g", rate), p, 5)...)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := Run(points, 1, nil)
		if err := FirstError(out); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHybridSweepCell is BenchmarkSweepCell's analytic-guided
// counterpart: the same faulted configuration swept over a 12-point
// load grid spanning the saturation knee, with the surrogate screening
// the axis so only the knee bracket is simulated. The ratio of this
// number to a full 12-point sweep is the hybrid mode's speedup.
func BenchmarkHybridSweepCell(b *testing.B) {
	base := sim.DefaultParams()
	base.Algorithm = "Duato-Nbc"
	base.MessageLength = 32
	base.Faults = 6
	base.WarmupCycles = 400
	base.MeasureCycles = 1200
	mo, err := Surrogate(base)
	if err != nil {
		b.Fatal(err)
	}
	knee := mo.SaturationRate()
	var rates []float64
	for r := knee / 4; r < knee*4; r *= 1.35 {
		rates = append(rates, r)
	}
	curves := []HybridCurve{{Key: "cell", Base: base, Rates: rates}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := HybridSweep(curves, HybridOptions{Workers: 1})
		if err != nil {
			b.Fatal(err)
		}
		if res[0].Simulated == 0 {
			b.Fatal("hybrid sweep simulated nothing")
		}
	}
}
