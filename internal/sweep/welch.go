package sweep

import "math"

// Welch compares two samples with unequal variances (Welch's t-test)
// — the right tool for "is algorithm A really better than B over these
// fault sets?" questions. It returns the t statistic, the
// Welch–Satterthwaite degrees of freedom, and whether the difference
// is significant at the two-sided 5% level.
func Welch(a, b Moments) (t float64, df float64, significant bool) {
	if a.N < 2 || b.N < 2 {
		return 0, 0, false
	}
	na, nb := float64(a.N), float64(b.N)
	va := a.Std() * a.Std() / na
	vb := b.Std() * b.Std() / nb
	if va+vb == 0 {
		// Zero variance: any difference in means is exact.
		return math.Inf(1), na + nb - 2, a.Mean() != b.Mean()
	}
	t = (a.Mean() - b.Mean()) / math.Sqrt(va+vb)
	df = (va + vb) * (va + vb) /
		(va*va/(na-1) + vb*vb/(nb-1))
	crit := tCritical95(int(math.Max(1, math.Floor(df))))
	return t, df, math.Abs(t) > crit
}

// Comparison summarizes a Welch test between two cells on one metric.
type Comparison struct {
	MetricA, MetricB Moments
	T                float64
	DF               float64
	Significant      bool
	// Better is +1 when A's mean is higher, -1 when lower, 0 on a tie.
	Better int
}

// CompareMetric runs Welch's test on a metric extracted from two cells.
func CompareMetric(a, b Moments) Comparison {
	t, df, sig := Welch(a, b)
	c := Comparison{MetricA: a, MetricB: b, T: t, DF: df, Significant: sig}
	switch {
	case a.Mean() > b.Mean():
		c.Better = 1
	case a.Mean() < b.Mean():
		c.Better = -1
	}
	return c
}
