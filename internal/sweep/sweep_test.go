package sweep

import (
	"context"
	"math"
	"sync/atomic"
	"testing"

	"wormmesh/internal/sim"
)

func quickParams(alg string, rate float64, faults int) sim.Params {
	p := sim.DefaultParams()
	p.Algorithm = alg
	p.Rate = rate
	p.Faults = faults
	p.WarmupCycles = 300
	p.MeasureCycles = 1200
	return p
}

func TestRunPreservesOrderAndReportsProgress(t *testing.T) {
	var points []Point
	for i, alg := range []string{"Duato", "NHop", "Minimal-Adaptive", "Nbc"} {
		points = append(points, Point{Key: alg, Params: quickParams(alg, 0.001+0.0005*float64(i), 0)})
	}
	var calls int64
	outcomes := Run(points, 2, func(done, total int) {
		atomic.AddInt64(&calls, 1)
		if total != len(points) {
			t.Errorf("total = %d", total)
		}
	})
	if len(outcomes) != len(points) {
		t.Fatalf("outcomes = %d", len(outcomes))
	}
	for i, o := range outcomes {
		if o.Err != nil {
			t.Fatalf("point %d: %v", i, o.Err)
		}
		if o.Point.Key != points[i].Key {
			t.Errorf("outcome %d key %q, want %q (order not preserved)", i, o.Point.Key, points[i].Key)
		}
		if o.Result.Stats.Delivered == 0 {
			t.Errorf("point %d delivered nothing", i)
		}
	}
	if calls != int64(len(points)) {
		t.Errorf("progress calls = %d, want %d", calls, len(points))
	}
	if err := FirstError(outcomes); err != nil {
		t.Errorf("FirstError = %v", err)
	}
}

func TestRunSurfacesErrors(t *testing.T) {
	bad := quickParams("no-such-algorithm", 0.001, 0)
	outcomes := Run([]Point{{Key: "bad", Params: bad}}, 1, nil)
	if outcomes[0].Err == nil {
		t.Fatal("bad algorithm did not error")
	}
	if FirstError(outcomes) == nil {
		t.Fatal("FirstError missed the failure")
	}
}

// TestProgressCallbackSerialized exercises the documented progress
// contract with a deliberately unsynchronized mutating closure: the
// sweep serializes callback invocations, so the closure may append to a
// slice and bump a plain counter without its own locking. Run under
// -race (CI does), this test catches any regression to concurrent
// callback invocation; it also checks each done value is delivered
// exactly once.
func TestProgressCallbackSerialized(t *testing.T) {
	base := quickParams("Duato", 0.002, 4)
	base.WarmupCycles = 100
	base.MeasureCycles = 400
	points := FaultReplicas("cell", base, 12)
	var seen []int // mutated inside the callback with no locking: the contract allows it
	calls := 0
	outcomes := Run(points, 4, func(done, total int) {
		calls++
		seen = append(seen, done)
		if total != len(points) {
			t.Errorf("total = %d, want %d", total, len(points))
		}
	})
	if err := FirstError(outcomes); err != nil {
		t.Fatal(err)
	}
	if calls != len(points) || len(seen) != len(points) {
		t.Fatalf("progress calls = %d (recorded %d), want %d", calls, len(seen), len(points))
	}
	delivered := make([]bool, len(points)+1)
	for _, d := range seen {
		if d < 1 || d > len(points) || delivered[d] {
			t.Fatalf("done value %d out of range or duplicated (seen %v)", d, seen)
		}
		delivered[d] = true
	}
}

func TestMoments(t *testing.T) {
	var m Moments
	if !math.IsNaN(m.Mean()) {
		t.Error("empty mean not NaN")
	}
	if m.Std() != 0 {
		t.Error("empty std not 0")
	}
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		m.Add(v)
	}
	if m.Mean() != 5 {
		t.Errorf("mean = %v, want 5", m.Mean())
	}
	if math.Abs(m.Std()-2.1380899) > 1e-6 {
		t.Errorf("std = %v", m.Std())
	}
	m.Add(math.NaN())
	if m.N != 8 {
		t.Error("NaN was folded in")
	}
}

func TestConfidenceInterval(t *testing.T) {
	var m Moments
	if m.CI95() != 0 {
		t.Error("empty CI nonzero")
	}
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		m.Add(v)
	}
	// n=8, df=7: t = 2.365; CI = 2.365 * 2.138 / sqrt(8) = 1.788.
	if ci := m.CI95(); math.Abs(ci-1.7878) > 1e-3 {
		t.Errorf("CI95 = %v, want ~1.788", ci)
	}
	// Critical values decrease with df toward 1.96.
	prev := math.Inf(1)
	for _, df := range []int{1, 2, 5, 10, 30, 40, 60, 120, 500} {
		c := tCritical95(df)
		if c > prev {
			t.Errorf("t(%d) = %v not decreasing", df, c)
		}
		prev = c
	}
	if tCritical95(500) != 1.980 {
		t.Errorf("asymptotic t = %v", tCritical95(500))
	}
}

func TestAggregateGroupsByKey(t *testing.T) {
	outcomes := Run([]Point{
		{Key: "a", Params: quickParams("Duato", 0.001, 0)},
		{Key: "a", Params: func() sim.Params { p := quickParams("Duato", 0.001, 0); p.Seed = 2; return p }()},
		{Key: "b", Params: quickParams("NHop", 0.001, 0)},
	}, 0, nil)
	cells := Aggregate(outcomes)
	if len(cells) != 2 {
		t.Fatalf("cells = %d, want 2", len(cells))
	}
	if cells[0].Key != "a" || cells[0].N != 2 {
		t.Errorf("cell a: key=%q n=%d", cells[0].Key, cells[0].N)
	}
	if cells[1].Key != "b" || cells[1].N != 1 {
		t.Errorf("cell b: key=%q n=%d", cells[1].Key, cells[1].N)
	}
	if cells[0].Latency.N != 2 || math.IsNaN(cells[0].Latency.Mean()) {
		t.Error("latency moments not accumulated")
	}
	SortCells(cells)
	if cells[0].Key != "a" {
		t.Error("SortCells broke order")
	}
}

func TestFaultReplicasVarySeeds(t *testing.T) {
	base := quickParams("Duato", 0.001, 5)
	pts := FaultReplicas("k", base, 3)
	if len(pts) != 3 {
		t.Fatalf("replicas = %d", len(pts))
	}
	seen := map[int64]bool{}
	for _, p := range pts {
		if p.Key != "k" {
			t.Errorf("key %q", p.Key)
		}
		if seen[p.Params.FaultSeed] {
			t.Error("duplicate fault seed")
		}
		seen[p.Params.FaultSeed] = true
	}
}

func TestSaturationSearch(t *testing.T) {
	base := quickParams("Duato", 0, 0)
	rate, thr, err := SaturationSearch(base, 0.0005, 0.05, 6)
	if err != nil {
		t.Fatal(err)
	}
	if thr <= 0 {
		t.Fatalf("throughput = %v", thr)
	}
	if rate < 0.0005 {
		t.Fatalf("rate = %v", rate)
	}
	// Saturation throughput must be near the bisection bound, well
	// below the offered load at the final rate.
	if thr > 0.4 {
		t.Errorf("throughput %v exceeds 10x10 bisection capacity 0.4", thr)
	}
}

func TestRunContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already cancelled: nothing should run
	points := []Point{
		{Key: "a", Params: quickParams("Duato", 0.001, 0)},
		{Key: "b", Params: quickParams("NHop", 0.001, 0)},
	}
	outcomes := RunContext(ctx, points, 2, nil)
	for _, o := range outcomes {
		if o.Err == nil {
			t.Errorf("point %q ran despite cancelled context", o.Point.Key)
		}
	}
}
