package sweep

import (
	"context"

	"wormmesh/internal/sim"
)

// Cache is a content-addressed result store a sweep may consult before
// simulating a point and fill after. Implementations derive the key
// from the Params themselves (see internal/serve), so bit-exact
// determinism is the contract that makes a hit safe: equal normalized
// Params always reproduce the same Stats. Lookup and Store are called
// concurrently from worker goroutines and must be safe for that; a
// Lookup miss is (zero Result, false).
type Cache interface {
	Lookup(p sim.Params) (sim.Result, bool)
	Store(p sim.Params, r sim.Result)
}

// ProgressSink receives batch-progress lifecycle events. Start is
// called once with the number of points that will actually execute —
// for hybrid sweeps the simulated-cell count, not the full grid — so
// ETAs extrapolate over work that exists. *metrics.Sweep satisfies it.
type ProgressSink interface {
	Start(total int)
	Progress(done, total int)
	Finish()
}

// RunCached is Run consulting a cache: points whose Params hit skip
// simulation entirely (their Outcome carries the cached Result), and
// fresh results are stored on the way out. A nil cache degrades to Run.
// Cached points still count toward the progress callback.
func RunCached(points []Point, workers int, progress func(done, total int), cache Cache) []Outcome {
	return RunCachedContext(context.Background(), points, workers, progress, cache)
}

// RunCachedContext is RunCached with cancellation, following the
// RunContext contract. Cache lookups are attempted even after ctx is
// done — a hit is free — but no new simulations start.
func RunCachedContext(ctx context.Context, points []Point, workers int, progress func(done, total int), cache Cache) []Outcome {
	return runContext(ctx, points, workers, progress, cache)
}
