package sweep

import (
	"reflect"
	"sync"
	"testing"

	"wormmesh/internal/metrics"
	"wormmesh/internal/sim"
)

// mapCache is a test Cache keyed by the canonical params digest, with a
// count of how many Lookup calls hit.
type mapCache struct {
	mu      sync.Mutex
	entries map[string]sim.Result
	hits    int
	stores  int
}

func newMapCache() *mapCache { return &mapCache{entries: map[string]sim.Result{}} }

func (c *mapCache) key(p sim.Params) string {
	d, err := metrics.CanonicalDigest(p)
	if err != nil {
		panic(err)
	}
	return d
}

func (c *mapCache) Lookup(p sim.Params) (sim.Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	r, ok := c.entries[c.key(p)]
	if ok {
		c.hits++
	}
	return r, ok
}

func (c *mapCache) Store(p sim.Params, r sim.Result) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.stores++
	c.entries[c.key(p)] = r
}

// TestRunCachedHitSkipsSimulation: a second pass over the same points
// is answered entirely from the cache, bit-identical to the first.
func TestRunCachedHitSkipsSimulation(t *testing.T) {
	points := []Point{
		{Key: "a", Params: quickParams("Duato", 0.001, 0)},
		{Key: "b", Params: quickParams("NHop", 0.0015, 0)},
	}
	cache := newMapCache()
	cold := RunCached(points, 2, nil, cache)
	if err := FirstError(cold); err != nil {
		t.Fatal(err)
	}
	if cache.stores != len(points) || cache.hits != 0 {
		t.Fatalf("cold pass: stores=%d hits=%d", cache.stores, cache.hits)
	}

	var calls int
	warm := RunCached(points, 2, func(done, total int) { calls++ }, cache)
	if err := FirstError(warm); err != nil {
		t.Fatal(err)
	}
	if cache.hits != len(points) {
		t.Fatalf("warm pass hits = %d, want %d", cache.hits, len(points))
	}
	if cache.stores != len(points) {
		t.Fatalf("warm pass re-stored (stores = %d)", cache.stores)
	}
	if calls != len(points) {
		t.Errorf("cached points skipped progress: calls = %d", calls)
	}
	for i := range points {
		if !reflect.DeepEqual(cold[i].Result.Stats, warm[i].Result.Stats) {
			t.Errorf("point %q: cached Stats differ from simulated", points[i].Key)
		}
		cd, _ := metrics.DigestJSON(cold[i].Result.Stats)
		wd, _ := metrics.DigestJSON(warm[i].Result.Stats)
		if cd != wd {
			t.Errorf("point %q: result digest %s != %s", points[i].Key, wd, cd)
		}
	}
}

// TestRunCachedNilCacheMatchesRun: a nil cache is exactly Run.
func TestRunCachedNilCacheMatchesRun(t *testing.T) {
	points := []Point{{Key: "a", Params: quickParams("Duato", 0.001, 0)}}
	a := Run(points, 1, nil)
	b := RunCached(points, 1, nil, nil)
	if !reflect.DeepEqual(a[0].Result.Stats, b[0].Result.Stats) {
		t.Error("nil-cache RunCached diverged from Run")
	}
}

// recordSink records the ProgressSink lifecycle.
type recordSink struct {
	startTotal int
	started    int
	progress   int
	finished   int
	lastDone   int
	lastTotal  int
}

func (s *recordSink) Start(total int) { s.started++; s.startTotal = total }
func (s *recordSink) Progress(done, total int) {
	s.progress++
	s.lastDone, s.lastTotal = done, total
}
func (s *recordSink) Finish() { s.finished++ }

// TestHybridMetricsCountSimulatedCells is the ETA-denominator fix: the
// sink's Start total must be the simulated-cell count, strictly below
// the full grid, so ETA = elapsed/done·(total−done) extrapolates over
// cells that actually run.
func TestHybridMetricsCountSimulatedCells(t *testing.T) {
	base := hybridBase("Duato", 0, 0)
	rates := kneeGrid(t, base)
	sink := &recordSink{}
	results, err := HybridSweep(
		[]HybridCurve{{Key: "duato", Base: base, Rates: rates}},
		HybridOptions{Workers: 2, Metrics: sink},
	)
	if err != nil {
		t.Fatal(err)
	}
	simulated := results[0].Simulated
	if simulated == 0 || simulated >= len(rates) {
		t.Fatalf("degenerate hybrid split: %d of %d simulated", simulated, len(rates))
	}
	if sink.started != 1 || sink.finished != 1 {
		t.Fatalf("sink lifecycle: started=%d finished=%d", sink.started, sink.finished)
	}
	if sink.startTotal != simulated {
		t.Errorf("Start total = %d, want simulated count %d (not grid %d)",
			sink.startTotal, simulated, len(rates))
	}
	if sink.progress != simulated || sink.lastTotal != simulated {
		t.Errorf("progress calls = %d (last total %d), want %d",
			sink.progress, sink.lastTotal, simulated)
	}
	if sink.lastDone > sink.lastTotal {
		t.Errorf("done %d exceeded total %d", sink.lastDone, sink.lastTotal)
	}
}

// TestHybridCacheReuse: a cached second hybrid sweep simulates nothing
// and reproduces the first sweep's simulated points bit-identically.
func TestHybridCacheReuse(t *testing.T) {
	base := hybridBase("Duato", 0, 0)
	rates := kneeGrid(t, base)
	curves := []HybridCurve{{Key: "duato", Base: base, Rates: rates}}
	cache := newMapCache()

	first, err := HybridSweep(curves, HybridOptions{Workers: 2, Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	storesAfterFirst := cache.stores
	if storesAfterFirst != first[0].Simulated {
		t.Fatalf("first sweep stored %d, simulated %d", storesAfterFirst, first[0].Simulated)
	}

	second, err := HybridSweep(curves, HybridOptions{Workers: 2, Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	if cache.stores != storesAfterFirst {
		t.Errorf("second sweep simulated %d new cells, want 0", cache.stores-storesAfterFirst)
	}
	if cache.hits != first[0].Simulated {
		t.Errorf("second sweep hits = %d, want %d", cache.hits, first[0].Simulated)
	}
	for i, hp := range first[0].Points {
		got := second[0].Points[i]
		if got.Source != hp.Source || got.Rate != hp.Rate {
			t.Fatalf("point %d provenance drifted: %v vs %v", i, got, hp)
		}
		if hp.Source == SourceSimulated && !reflect.DeepEqual(got.Result.Stats, hp.Result.Stats) {
			t.Errorf("point %d cached Stats differ", i)
		}
	}
}
