package sweep

import (
	"math"
	"testing"
)

func momentsOf(vs ...float64) Moments {
	var m Moments
	for _, v := range vs {
		m.Add(v)
	}
	return m
}

func TestWelchDetectsClearDifference(t *testing.T) {
	a := momentsOf(10, 11, 10.5, 9.8, 10.2, 10.4)
	b := momentsOf(14, 14.5, 13.8, 14.2, 14.1, 13.9)
	stat, df, sig := Welch(a, b)
	if !sig {
		t.Errorf("clear difference not significant (t=%v, df=%v)", stat, df)
	}
	if stat >= 0 {
		t.Errorf("t = %v, expected negative (a < b)", stat)
	}
	if df <= 0 {
		t.Errorf("df = %v", df)
	}
}

func TestWelchIgnoresNoise(t *testing.T) {
	a := momentsOf(10, 12, 9, 11, 10.5, 9.5)
	b := momentsOf(10.3, 11.5, 9.4, 10.8, 10.2, 10.1)
	if _, _, sig := Welch(a, b); sig {
		t.Error("overlapping samples reported significant")
	}
}

func TestWelchSmallSamples(t *testing.T) {
	if _, _, sig := Welch(momentsOf(1), momentsOf(2, 3)); sig {
		t.Error("n=1 sample reported significant")
	}
}

func TestWelchZeroVariance(t *testing.T) {
	a := momentsOf(5, 5, 5)
	b := momentsOf(7, 7, 7)
	stat, _, sig := Welch(a, b)
	if !sig || !math.IsInf(stat, 1) {
		t.Errorf("exact difference not detected: t=%v sig=%v", stat, sig)
	}
	if _, _, sig := Welch(a, a); sig {
		t.Error("identical constant samples reported significant")
	}
}

func TestCompareMetricDirection(t *testing.T) {
	hi := momentsOf(10, 10.2, 9.8, 10.1)
	lo := momentsOf(5, 5.1, 4.9, 5.0)
	c := CompareMetric(hi, lo)
	if c.Better != 1 || !c.Significant {
		t.Errorf("comparison = %+v", c)
	}
	c = CompareMetric(lo, hi)
	if c.Better != -1 {
		t.Errorf("reverse comparison Better = %d", c.Better)
	}
}

// TestWelchOnRealReplications ties the statistics to the simulator:
// the same configuration replicated under different seeds must NOT
// differ significantly from itself, while clearly different loads
// must.
func TestWelchOnRealReplications(t *testing.T) {
	run := func(rate float64, seedBase int64) Moments {
		var m Moments
		for i := int64(0); i < 4; i++ {
			p := quickParams("Duato", rate, 0)
			p.Seed = seedBase + i
			outcomes := Run([]Point{{Key: "x", Params: p}}, 1, nil)
			if outcomes[0].Err != nil {
				t.Fatal(outcomes[0].Err)
			}
			m.Add(outcomes[0].Result.Stats.AvgLatency())
		}
		return m
	}
	same1 := run(0.001, 10)
	same2 := run(0.001, 50)
	if _, _, sig := Welch(same1, same2); sig {
		t.Errorf("identical configurations significantly different: %v vs %v", same1.Mean(), same2.Mean())
	}
	light := run(0.0005, 10)
	heavy := run(0.002, 10)
	if _, _, sig := Welch(light, heavy); !sig {
		t.Errorf("4x load difference not significant: %v vs %v", light.Mean(), heavy.Mean())
	}
}
