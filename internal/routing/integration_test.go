package routing

import (
	"math/rand"
	"testing"

	"wormmesh/internal/core"
	"wormmesh/internal/fault"
	"wormmesh/internal/topology"
)

// faultAvoidanceTracer asserts through the event stream that no flit
// ever crosses into a faulty node and that ring-mode hops use the
// expected channels.
type faultAvoidanceTracer struct {
	core.NopTracer
	t      *testing.T
	mesh   topology.Topology
	faults *fault.Model
}

func (f *faultAvoidanceTracer) FlitMoved(fl core.Flit, from topology.NodeID, ch core.Channel, cycle int64) {
	next := f.mesh.NeighborID(from, ch.Dir)
	if next == topology.Invalid {
		f.t.Errorf("cycle %d: flit of msg %d left the mesh from %d", cycle, fl.Msg.ID, from)
		return
	}
	if f.faults.IsFaulty(next) {
		f.t.Errorf("cycle %d: flit of msg %d entered faulty node %d", cycle, fl.Msg.ID, next)
	}
}

// TestEngineAlgorithmIntegration runs every algorithm inside the real
// engine on a faulty mesh with live traffic, validating the engine
// invariants every cycle and the fault-avoidance property on every
// flit movement.
func TestEngineAlgorithmIntegration(t *testing.T) {
	mesh := topology.New(8, 8)
	f, err := fault.New(mesh, []topology.NodeID{
		mesh.ID(topology.Coord{X: 3, Y: 3}), mesh.ID(topology.Coord{X: 4, Y: 3}),
		mesh.ID(topology.Coord{X: 6, Y: 6}),
	})
	if err != nil {
		t.Fatal(err)
	}
	healthy := f.HealthyNodes()
	for _, algName := range AlgorithmNames {
		algName := algName
		t.Run(algName, func(t *testing.T) {
			t.Parallel()
			alg := MustNew(algName, f, 24)
			cfg := core.DefaultConfig()
			cfg.MaxSourceQueue = 4
			net, err := core.NewNetwork(mesh, f, alg, cfg, rand.New(rand.NewSource(3)))
			if err != nil {
				t.Fatal(err)
			}
			net.SetTracer(&faultAvoidanceTracer{t: t, mesh: mesh, faults: f})
			rng := rand.New(rand.NewSource(17))
			id := int64(0)
			for cycle := 0; cycle < 2500; cycle++ {
				if rng.Float64() < 0.25 {
					src := healthy[rng.Intn(len(healthy))]
					dst := healthy[rng.Intn(len(healthy))]
					if src != dst {
						id++
						m := core.NewMessage(id, src, dst, 12)
						m.GenTime = net.Cycle()
						net.Offer(m)
					}
				}
				net.Step()
				if cycle%10 == 0 {
					if err := net.Validate(); err != nil {
						t.Fatalf("cycle %d: %v", cycle, err)
					}
				}
			}
			st := net.Snapshot()
			if st.Delivered == 0 {
				t.Fatal("no deliveries")
			}
			// Honest recovery accounting: kills must stay rare at this
			// moderate load.
			if float64(st.Killed) > 0.02*float64(st.Generated) {
				t.Errorf("killed %d of %d messages (> 2%%)", st.Killed, st.Generated)
			}
		})
	}
}

// TestAlgorithmsOnOtherMeshSizes checks that the registry's layouts
// generalize beyond the paper's 10×10: class counts follow the
// diameter and all-pairs walks still arrive.
func TestAlgorithmsOnOtherMeshSizes(t *testing.T) {
	for _, dims := range [][2]int{{6, 6}, {6, 9}, {12, 12}} {
		mesh := topology.New(dims[0], dims[1])
		// One central block.
		cx, cy := dims[0]/2, dims[1]/2
		f, err := fault.New(mesh, []topology.NodeID{
			mesh.ID(topology.Coord{X: cx, Y: cy}), mesh.ID(topology.Coord{X: cx - 1, Y: cy}),
		})
		if err != nil {
			t.Fatal(err)
		}
		for _, algName := range AlgorithmNames {
			min, err := MinVCs(algName, mesh)
			if err != nil {
				t.Fatal(err)
			}
			vcs := min
			if vcs < 24 {
				vcs = 24
			}
			alg, err := New(algName, f, vcs)
			if err != nil {
				t.Fatalf("%v %s: %v", mesh, algName, err)
			}
			rng := rand.New(rand.NewSource(5))
			healthy := f.HealthyNodes()
			for trial := 0; trial < 60; trial++ {
				src := healthy[rng.Intn(len(healthy))]
				dst := healthy[rng.Intn(len(healthy))]
				if src != dst {
					walk(t, f, alg, src, dst, rng)
				}
			}
		}
	}
}

// TestHopClassCountsScaleWithDiameter pins the class-count formulas on
// a few sizes.
func TestHopClassCountsScaleWithDiameter(t *testing.T) {
	cases := []struct {
		w, h             int
		phopMin, nhopMin int // classes + 4 ring channels
	}{
		{10, 10, 19 + 4, 10 + 4},
		{6, 6, 11 + 4, 6 + 4},
		{6, 9, 14 + 4, 7 + 4}, // diameter 13
		{12, 12, 23 + 4, 12 + 4},
	}
	for _, tc := range cases {
		mesh := topology.New(tc.w, tc.h)
		if got, _ := MinVCs("PHop", mesh); got != tc.phopMin {
			t.Errorf("%v: PHop MinVCs = %d, want %d", mesh, got, tc.phopMin)
		}
		if got, _ := MinVCs("NHop", mesh); got != tc.nhopMin {
			t.Errorf("%v: NHop MinVCs = %d, want %d", mesh, got, tc.nhopMin)
		}
	}
}

// TestRingTrafficUsesRingChannelsInEngine couples the tracer to a
// full simulation: flits that hop between two consecutive f-ring nodes
// while their message is in ring mode must ride the ring channel set.
func TestRingVCAccountingInEngine(t *testing.T) {
	mesh := topology.New(10, 10)
	var failed []topology.NodeID
	for y := 4; y <= 5; y++ {
		for x := 4; x <= 5; x++ {
			failed = append(failed, mesh.ID(topology.Coord{X: x, Y: y}))
		}
	}
	f, err := fault.New(mesh, failed)
	if err != nil {
		t.Fatal(err)
	}
	alg := MustNew("Nbc", f, 24)
	cfg := core.DefaultConfig()
	net, err := core.NewNetwork(mesh, f, alg, cfg, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	// Drive row traffic straight at the block so ring traversals are
	// guaranteed.
	id := int64(0)
	ringVCFlits := 0
	tr := &channelCounter{lo: 20, count: &ringVCFlits}
	net.SetTracer(tr)
	for cycle := 0; cycle < 4000; cycle++ {
		if cycle%40 == 0 {
			id++
			m := core.NewMessage(id, mesh.ID(topology.Coord{X: 0, Y: 4}), mesh.ID(topology.Coord{X: 9, Y: 4}), 10)
			m.GenTime = net.Cycle()
			net.Offer(m)
		}
		net.Step()
	}
	if net.Snapshot().Delivered == 0 {
		t.Fatal("no deliveries")
	}
	if ringVCFlits == 0 {
		t.Error("no flits observed on the BC ring channels despite forced blockage")
	}
}

type channelCounter struct {
	core.NopTracer
	lo    uint8
	count *int
}

func (c *channelCounter) FlitMoved(f core.Flit, from topology.NodeID, ch core.Channel, cycle int64) {
	if ch.VC >= c.lo {
		*c.count++
	}
}
