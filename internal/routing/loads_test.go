package routing

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"wormmesh/internal/fault"
	"wormmesh/internal/topology"
)

func mustLoads(t *testing.T, name string, f *fault.Model, numVCs int) *LoadMap {
	t.Helper()
	lm, err := RouteLoads(name, f, numVCs)
	if err != nil {
		t.Fatalf("RouteLoads(%s): %v", name, err)
	}
	return lm
}

// Fault-free, every algorithm routes minimally: total expected channel
// crossings per message must equal the exact mean minimal distance, and
// no mass may be lost.
func TestRouteLoadsFaultFreeConservation(t *testing.T) {
	m := topology.New(8, 8)
	f := fault.None(m)
	// Exact mean distance over distinct ordered pairs.
	n := float64(m.NodeCount())
	mad := func(k int) float64 { kk := float64(k); return (kk*kk - 1) / (3 * kk) }
	want := (mad(8) + mad(8)) * n / (n - 1)

	for _, name := range AlgorithmNames {
		if !LoadsSupported(name) {
			continue
		}
		lm := mustLoads(t, name, f, 24)
		sum := 0.0
		for _, u := range lm.Loads {
			sum += u
		}
		if math.Abs(sum-want) > 1e-9 {
			t.Errorf("%s: total load %.9f, want mean distance %.9f", name, sum, want)
		}
		if math.Abs(lm.MeanHops-want) > 1e-9 {
			t.Errorf("%s: MeanHops %.9f, want %.9f", name, lm.MeanHops, want)
		}
		if lm.RingHops != 0 {
			t.Errorf("%s: fault-free RingHops = %v, want 0", name, lm.RingHops)
		}
		if lm.LostMass > 1e-9 {
			t.Errorf("%s: lost mass %v", name, lm.LostMass)
		}
		if lm.Pairs != len(lm.PairBottlenecks) {
			t.Errorf("%s: %d pairs but %d bottlenecks", name, lm.Pairs, len(lm.PairBottlenecks))
		}
	}
}

// Fault-free loads must exhibit the mesh's symmetries under uniform
// traffic: reflection about the horizontal axis (row y ≡ row H-1-y)
// and direction reversal (east load of (x,y) ≡ west load of (x+1,y)).
// Note the rows of one cut do NOT carry equal load — adaptive walks
// concentrate traffic toward the center, which is exactly the
// routing-dependence the bisection-cut shortcut cannot see.
func TestRouteLoadsFaultFreeSymmetry(t *testing.T) {
	m := topology.New(6, 6)
	f := fault.None(m)
	lm := mustLoads(t, "Minimal-Adaptive", f, 12)
	ch := func(x, y int, d topology.Direction) float64 {
		return lm.Loads[int(m.ID(topology.Coord{X: x, Y: y}))*int(topology.NumDirs)+int(d)]
	}
	for y := 0; y < 6; y++ {
		if e, mir := ch(2, y, topology.East), ch(2, 5-y, topology.East); math.Abs(e-mir) > 1e-12 {
			t.Fatalf("reflection asymmetry: row %d east %v vs row %d %v", y, e, 5-y, mir)
		}
		if e, w := ch(2, y, topology.East), ch(3, y, topology.West); math.Abs(e-w) > 1e-12 {
			t.Fatalf("direction asymmetry at row %d: east %v vs west %v", y, e, w)
		}
	}
	if center, edge := ch(2, 2, topology.East), ch(2, 0, topology.East); center <= edge {
		t.Fatalf("adaptive load should concentrate at the center: center %v <= edge %v", center, edge)
	}
}

// With a fault region, detours must show up: mean hops exceed the
// fault-free healthy-pair mean distance, ring hops are positive, and
// mass is still conserved (delivered ≈ 1 per pair).
func TestRouteLoadsFaultedDetours(t *testing.T) {
	m := topology.New(8, 8)
	var blocked []topology.NodeID
	for y := 3; y <= 4; y++ {
		for x := 3; x <= 4; x++ {
			blocked = append(blocked, m.ID(topology.Coord{X: x, Y: y}))
		}
	}
	f, err := fault.New(m, blocked)
	if err != nil {
		t.Fatal(err)
	}
	// Healthy-pair minimal mean distance, computed directly.
	healthy := f.HealthyNodes()
	minSum, pairs := 0.0, 0
	for _, a := range healthy {
		for _, b := range healthy {
			if a == b {
				continue
			}
			minSum += float64(m.Distance(m.CoordOf(a), m.CoordOf(b)))
			pairs++
		}
	}
	minMean := minSum / float64(pairs)

	for _, name := range []string{"Minimal-Adaptive", "Duato", "Nbc"} {
		lm := mustLoads(t, name, f, 24)
		if lm.LostMass > 1e-6 {
			t.Errorf("%s: lost mass %v", name, lm.LostMass)
		}
		if lm.MeanHops <= minMean {
			t.Errorf("%s: faulted MeanHops %.4f not above minimal mean %.4f", name, lm.MeanHops, minMean)
		}
		if lm.RingHops <= 0 {
			t.Errorf("%s: expected positive ring hops, got %v", name, lm.RingHops)
		}
		// Conservation: total crossings = mean hops by construction;
		// delivered mass per pair must be ≈ 1.
		sum := 0.0
		for _, u := range lm.Loads {
			sum += u
		}
		if math.Abs(sum-lm.MeanHops) > 1e-9 {
			t.Errorf("%s: Σloads %.9f != MeanHops %.9f", name, sum, lm.MeanHops)
		}
		// No load may point into a fault region.
		for id := topology.NodeID(0); int(id) < m.NodeCount(); id++ {
			for d := topology.Direction(0); d < topology.NumDirs; d++ {
				u := lm.Loads[int(id)*int(topology.NumDirs)+int(d)]
				if u == 0 {
					continue
				}
				nb := m.NeighborID(id, d)
				if nb == topology.Invalid || f.IsFaulty(nb) || f.IsFaulty(id) {
					t.Fatalf("%s: load %v on channel %v/%v into fault or edge", name, u, m.CoordOf(id), d)
				}
			}
		}
	}
}

// Randomly faulted meshes: the walk must deliver all mass for
// generated (coalesced, boundary-avoiding) fault patterns.
func TestRouteLoadsRandomFaults(t *testing.T) {
	m := topology.New(8, 8)
	for _, faults := range []int{2, 5} {
		f, err := fault.Generate(m, faults, rand.New(rand.NewSource(int64(faults)*7+1)), fault.Options{ForbidBoundary: true})
		if err != nil {
			t.Fatalf("Generate(%d): %v", faults, err)
		}
		lm := mustLoads(t, "Nbc", f, 24)
		if lm.LostMass > 1e-6 {
			t.Errorf("faults=%d: lost mass %v", faults, lm.LostMass)
		}
		if lm.PeakLoad() <= 0 {
			t.Errorf("faults=%d: no peak load", faults)
		}
	}
}

func TestRouteLoadsUnsupported(t *testing.T) {
	m := topology.New(8, 8)
	f := fault.None(m)
	if _, err := RouteLoads("Boura-FT", f, 24); !errors.Is(err, ErrLoadsUnsupported) {
		t.Fatalf("Boura-FT: err = %v, want ErrLoadsUnsupported", err)
	}
	if LoadsSupported("Boura-FT") {
		t.Fatal("LoadsSupported(Boura-FT) = true")
	}
	if !LoadsSupported("Minimal-Adaptive") {
		t.Fatal("LoadsSupported(Minimal-Adaptive) = false")
	}
	if _, err := RouteLoads("Minimal-Adaptive", f, 2); err == nil {
		t.Fatal("RouteLoads with too few VCs should fail like the simulator")
	}
}

// Per-pair bottlenecks must bound the global peak: no pair can see a
// bottleneck above peak load, and some pair must see exactly it.
func TestRouteLoadsPairBottlenecks(t *testing.T) {
	m := topology.New(6, 6)
	f := fault.None(m)
	lm := mustLoads(t, "Minimal-Adaptive", f, 12)
	peak := lm.PeakLoad()
	maxB := 0.0
	for _, b := range lm.PairBottlenecks {
		if b > peak+1e-12 {
			t.Fatalf("pair bottleneck %v exceeds peak %v", b, peak)
		}
		if b > maxB {
			maxB = b
		}
	}
	// The busiest channel is crossed with probability ≤ 1 by any single
	// pair, so maxB ≤ peak; but pairs crossing it deterministically
	// should see a bottleneck close to the peak.
	if maxB <= 0 {
		t.Fatal("no positive pair bottleneck")
	}
}
