package routing

import (
	"math/rand"
	"testing"

	"wormmesh/internal/core"
	"wormmesh/internal/fault"
	"wormmesh/internal/topology"
)

// TestStepLoadedFaultedAllocFree extends the engine's zero-alloc
// steady-state budget (internal/core's alloc tests, which run
// fault-free) to a FAULTED mesh under ring traffic: with the
// center-block pattern live, the Boppana–Chalasani wrapper's memoized
// canProgress/orientation lookups, the interned ring-channel rows
// (CandidateSet.AddMany instead of per-VC Add loops) and the message
// arena together must keep a warmed offer+step cycle at zero heap
// allocations. It lives in this package rather than internal/core
// because constructing the fortified algorithms imports routing, which
// imports core.
func TestStepLoadedFaultedAllocFree(t *testing.T) {
	mesh := topology.New(10, 10)
	ids, err := fault.NamedPattern("center-block", mesh)
	if err != nil {
		t.Fatal(err)
	}
	f, err := fault.New(mesh, ids)
	if err != nil {
		t.Fatal(err)
	}
	healthy := f.HealthyNodes()
	for _, name := range []string{"Nbc", "Duato-Nbc", "Boura-FT"} {
		t.Run(name, func(t *testing.T) {
			alg := MustNew(name, f, 24)
			cfg := core.DefaultConfig()
			cfg.MaxSourceQueue = 4
			cfg.MaxHops = int32(16 * mesh.Diameter())
			n, err := core.NewNetwork(mesh, f, alg, cfg, rand.New(rand.NewSource(1)))
			if err != nil {
				t.Fatal(err)
			}
			defer n.Close()
			rng := rand.New(rand.NewSource(2))
			id := int64(0)
			step := func() {
				for k := 0; k < 2; k++ { // busy mesh, steady f-ring traffic
					src := healthy[rng.Intn(len(healthy))]
					dst := healthy[rng.Intn(len(healthy))]
					if src != dst {
						id++
						m := n.AcquireMessage(id, src, dst, 16)
						m.GenTime = n.Cycle()
						n.Offer(m)
					}
				}
				n.Step()
			}
			// Let the arena, scratch buffers and source queues reach
			// their steady-state capacity, with a cushion for the
			// occasional watchdog scan growth.
			for i := 0; i < 6000; i++ {
				step()
			}
			if n.InFlight() == 0 {
				t.Fatal("warmup left no traffic in flight; the budget would measure an idle network")
			}
			allocs := testing.AllocsPerRun(2000, step)
			if allocs != 0 {
				t.Errorf("%s: %.2f allocs per faulted loaded cycle, want 0", name, allocs)
			}
		})
	}
}
