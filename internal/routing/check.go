package routing

import (
	"fmt"
	"math/rand"

	"wormmesh/internal/core"
	"wormmesh/internal/fault"
	"wormmesh/internal/topology"
)

// CheckResult summarizes a reachability verification.
type CheckResult struct {
	Pairs    int // (src, dst) pairs walked
	MaxHops  int // longest walk observed
	Detoured int // pairs that needed non-minimal hops
}

// CheckReachability verifies that the algorithm delivers a lone
// message between every healthy (src, dst) pair of the fault model:
// it walks each pair taking the first offered candidate (what an
// uncontended network grants) and fails if any walk gets stuck, leaves
// the healthy mesh, uses an out-of-range channel, or exceeds
// 8×diameter hops. When rng is non-nil, candidates are instead chosen
// at random within the winning tier, covering the adaptive spread.
//
// This is the repository's strongest routing safety check; the test
// suite runs it over every algorithm and fault pattern, and
// cmd/routecheck exposes it for arbitrary user patterns.
func CheckReachability(f *fault.Model, alg core.Algorithm, rng *rand.Rand) (CheckResult, error) {
	var res CheckResult
	healthy := f.HealthyNodes()
	for _, src := range healthy {
		for _, dst := range healthy {
			if src == dst {
				continue
			}
			hops, err := walkOnce(f, alg, src, dst, rng)
			if err != nil {
				return res, err
			}
			res.Pairs++
			if hops > res.MaxHops {
				res.MaxHops = hops
			}
			if hops > f.Mesh.Distance(f.Mesh.CoordOf(src), f.Mesh.CoordOf(dst)) {
				res.Detoured++
			}
		}
	}
	return res, nil
}

// walkOnce drives one message; it mirrors the test suite's walk helper
// but returns errors instead of failing a *testing.T.
func walkOnce(f *fault.Model, alg core.Algorithm, src, dst topology.NodeID, rng *rand.Rand) (int, error) {
	mesh := f.Mesh
	m := core.NewMessage(1, src, dst, 1)
	alg.InitMessage(m)
	cur := src
	bound := 8 * mesh.Diameter()
	var cands core.CandidateSet
	for steps := 0; cur != dst; steps++ {
		if steps > bound {
			return steps, fmt.Errorf("routing: %s: %v->%v: no arrival within %d hops (at %v)",
				alg.Name(), mesh.CoordOf(src), mesh.CoordOf(dst), bound, mesh.CoordOf(cur))
		}
		cands.Reset()
		alg.Candidates(m, cur, &cands)
		var ch core.Channel
		found := false
		for tier := 0; tier < core.MaxTiers && !found; tier++ {
			if tc := cands.Tier(tier); len(tc) > 0 {
				if rng != nil {
					ch = tc[rng.Intn(len(tc))]
				} else {
					ch = tc[0]
				}
				found = true
			}
		}
		if !found {
			return steps, fmt.Errorf("routing: %s: %v->%v stuck at %v",
				alg.Name(), mesh.CoordOf(src), mesh.CoordOf(dst), mesh.CoordOf(cur))
		}
		if int(ch.VC) >= alg.NumVCs() {
			return steps, fmt.Errorf("routing: %s: out-of-range VC %d", alg.Name(), ch.VC)
		}
		next := mesh.NeighborID(cur, ch.Dir)
		if next == topology.Invalid {
			return steps, fmt.Errorf("routing: %s: walked off-mesh from %v", alg.Name(), mesh.CoordOf(cur))
		}
		if f.IsFaulty(next) {
			return steps, fmt.Errorf("routing: %s: walked into faulty node %v", alg.Name(), mesh.CoordOf(next))
		}
		alg.Advance(m, cur, ch)
		cur = next
	}
	return int(m.Hops), nil
}
