package routing

import (
	"fmt"
	"math/rand"

	"wormmesh/internal/core"
	"wormmesh/internal/fault"
	"wormmesh/internal/topology"
)

// CheckResult summarizes a reachability verification.
type CheckResult struct {
	Pairs    int // (src, dst) pairs walked
	MaxHops  int // longest walk observed
	Detoured int // pairs that needed non-minimal hops
}

// CheckReachability verifies that the algorithm delivers a lone
// message between every healthy (src, dst) pair of the fault model:
// it walks each pair taking the first offered candidate (what an
// uncontended network grants) and fails if any walk gets stuck, leaves
// the healthy mesh, uses an out-of-range channel, or exceeds
// 8×diameter hops. When rng is non-nil, candidates are instead chosen
// at random within the winning tier, covering the adaptive spread.
//
// This is the repository's strongest routing safety check; the test
// suite runs it over every algorithm and fault pattern, and
// cmd/routecheck exposes it for arbitrary user patterns.
func CheckReachability(f *fault.Model, alg core.Algorithm, rng *rand.Rand) (CheckResult, error) {
	var res CheckResult
	healthy := f.HealthyNodes()
	for _, src := range healthy {
		for _, dst := range healthy {
			if src == dst {
				continue
			}
			hops, err := walkOnce(f, alg, src, dst, rng)
			if err != nil {
				return res, err
			}
			res.Pairs++
			if hops > res.MaxHops {
				res.MaxHops = hops
			}
			if hops > f.Topo.Distance(f.Topo.CoordOf(src), f.Topo.CoordOf(dst)) {
				res.Detoured++
			}
		}
	}
	return res, nil
}

// walkOnce drives one message; it mirrors the test suite's walk helper
// but returns errors instead of failing a *testing.T.
func walkOnce(f *fault.Model, alg core.Algorithm, src, dst topology.NodeID, rng *rand.Rand) (int, error) {
	return walkRecord(f, alg, src, dst, rng, nil)
}

// walkRecord is walkOnce with an optional hop recorder: record, when
// non-nil, receives each hop's (node, channel) as the message takes
// it, plus the total number of candidate channels the router offered
// for that hop across all tiers.
func walkRecord(f *fault.Model, alg core.Algorithm, src, dst topology.NodeID, rng *rand.Rand, record func(at topology.NodeID, ch core.Channel, offered int)) (int, error) {
	mesh := f.Topo
	m := core.NewMessage(1, src, dst, 1)
	alg.InitMessage(m)
	cur := src
	bound := 8 * mesh.Diameter()
	var cands core.CandidateSet
	for steps := 0; cur != dst; steps++ {
		if steps > bound {
			return steps, fmt.Errorf("routing: %s: %v->%v: no arrival within %d hops (at %v)",
				alg.Name(), mesh.CoordOf(src), mesh.CoordOf(dst), bound, mesh.CoordOf(cur))
		}
		cands.Reset()
		alg.Candidates(m, cur, &cands)
		var ch core.Channel
		found := false
		offered := 0
		for tier := 0; tier < core.MaxTiers; tier++ {
			tc := cands.Tier(tier)
			offered += len(tc)
			if !found && len(tc) > 0 {
				if rng != nil {
					ch = tc[rng.Intn(len(tc))]
				} else {
					ch = tc[0]
				}
				found = true
			}
		}
		if !found {
			return steps, fmt.Errorf("routing: %s: %v->%v stuck at %v",
				alg.Name(), mesh.CoordOf(src), mesh.CoordOf(dst), mesh.CoordOf(cur))
		}
		if int(ch.VC) >= alg.NumVCs() {
			return steps, fmt.Errorf("routing: %s: out-of-range VC %d", alg.Name(), ch.VC)
		}
		next := mesh.NeighborID(cur, ch.Dir)
		if next == topology.Invalid {
			return steps, fmt.Errorf("routing: %s: walked off-mesh from %v", alg.Name(), mesh.CoordOf(cur))
		}
		if f.IsFaulty(next) {
			return steps, fmt.Errorf("routing: %s: walked into faulty node %v", alg.Name(), mesh.CoordOf(next))
		}
		if record != nil {
			record(cur, ch, offered)
		}
		alg.Advance(m, cur, ch)
		cur = next
	}
	return int(m.Hops), nil
}

// DAGResult summarizes a channel-dependency-graph verification.
type DAGResult struct {
	Channels     int // distinct virtual channels used by any walk
	Edges        int // distinct forced hold-and-wait dependencies observed
	WrapChannels int // channels on wraparound links (0 on the mesh)
}

// CheckChannelDAG walks every healthy (src, dst) pair with
// first-candidate choice — the same deterministic walk set
// CheckReachability certifies — and records every FORCED dependency
// between consecutive virtual channels: the held channel pointing at
// the requested one on hops where the router offered exactly one
// candidate. It fails if any forced-dependency cycle passes through a
// wraparound-link channel.
//
// Forced edges are the ones that matter: a wormhole deadlock is a set
// of messages each waiting on a channel held by the next with no
// alternative, so every edge of a genuine wait cycle is a
// single-candidate hop (an adaptive hop with two or more live options
// cannot close a cycle — any one free channel unblocks it, which is
// Duato's escape argument). The cycle test is scoped to the wrap
// links because that is where a broken torus discipline deadlocks: an
// undatelined e-cube forces the same VC all the way around a wrap
// ring and closes exactly the cycle this detects, while the dateline
// VC classes break it at the wrap edge. Away from wrap links the
// forced graph may aggregate benign cycles through shared f-ring
// channels across hop classes — those are covered by the
// Boppana–Chalasani per-class argument, not by this check. On the
// mesh there are no wrap channels and the check passes vacuously.
func CheckChannelDAG(f *fault.Model, alg core.Algorithm) (DAGResult, error) {
	var res DAGResult
	t := f.Topo
	vcs := alg.NumVCs()
	// A channel is an outgoing (node, direction, VC) triple; ids are
	// dense so the graph stores plain ints.
	chanID := func(at topology.NodeID, ch core.Channel) int {
		return (int(at)*4+int(ch.Dir))*vcs + int(ch.VC)
	}
	adj := map[int]map[int]struct{}{}
	prev := -1
	record := func(at topology.NodeID, ch core.Channel, offered int) {
		id := chanID(at, ch)
		if prev >= 0 && offered == 1 {
			next, ok := adj[prev]
			if !ok {
				next = map[int]struct{}{}
				adj[prev] = next
			}
			next[id] = struct{}{}
		}
		if _, ok := adj[id]; !ok {
			adj[id] = map[int]struct{}{}
		}
		prev = id
	}
	healthy := f.HealthyNodes()
	for _, src := range healthy {
		for _, dst := range healthy {
			if src == dst {
				continue
			}
			prev = -1
			if _, err := walkRecord(f, alg, src, dst, nil, record); err != nil {
				return res, err
			}
		}
	}
	res.Channels = len(adj)
	for _, next := range adj {
		res.Edges += len(next)
	}
	describe := func(id int) string {
		vc := id % vcs
		dir := topology.Direction((id / vcs) % 4)
		node := topology.NodeID(id / vcs / 4)
		return fmt.Sprintf("%v %v vc%d", t.CoordOf(node), dir, vc)
	}
	// A channel sits on a wrap link when its hop leaves the coordinate
	// range (only possible when the topology wraps).
	onWrapLink := func(id int) bool {
		dir := topology.Direction((id / vcs) % 4)
		c := t.CoordOf(topology.NodeID(id / vcs / 4))
		switch dir {
		case topology.East:
			return c.X == t.Width()-1
		case topology.West:
			return c.X == 0
		case topology.North:
			return c.Y == t.Height()-1
		default:
			return c.Y == 0
		}
	}
	if t.Kind() != "torus" {
		return res, nil
	}
	var wrapIDs []int
	for id := range adj {
		if onWrapLink(id) {
			wrapIDs = append(wrapIDs, id)
		}
	}
	res.WrapChannels = len(wrapIDs)
	// For each wrap channel, search the forced graph for a path back to
	// itself; any such path is a wait cycle through a wrap link.
	seen := map[int]bool{}
	var stack []int
	for _, w := range wrapIDs {
		for k := range seen {
			delete(seen, k)
		}
		stack = stack[:0]
		for next := range adj[w] {
			stack = append(stack, next)
		}
		for len(stack) > 0 {
			id := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if id == w {
				return res, fmt.Errorf("routing: %s: forced channel-dependency cycle through wrap channel %s",
					alg.Name(), describe(w))
			}
			if seen[id] {
				continue
			}
			seen[id] = true
			for next := range adj[id] {
				stack = append(stack, next)
			}
		}
	}
	return res, nil
}
