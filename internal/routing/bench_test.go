package routing

import (
	"math/rand"
	"testing"

	"wormmesh/internal/core"
	"wormmesh/internal/fault"
	"wormmesh/internal/topology"
)

// BenchmarkCandidates measures the routing-decision cost of each
// algorithm — the hottest call in the simulation inner loop.
func BenchmarkCandidates(b *testing.B) {
	m := topology.New(10, 10)
	ids, err := fault.NamedPattern("center-block", m)
	if err != nil {
		b.Fatal(err)
	}
	f, err := fault.New(m, ids)
	if err != nil {
		b.Fatal(err)
	}
	for _, name := range []string{"PHop", "Nbc", "Duato-Nbc", "Minimal-Adaptive", "Boura-FT"} {
		b.Run(name, func(b *testing.B) {
			alg := MustNew(name, f, 24)
			msg := core.NewMessage(1, m.ID(topology.Coord{X: 1, Y: 1}), m.ID(topology.Coord{X: 8, Y: 7}), 1)
			alg.InitMessage(msg)
			var cands core.CandidateSet
			node := m.ID(topology.Coord{X: 3, Y: 4})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				cands.Reset()
				alg.Candidates(msg, node, &cands)
			}
		})
	}
}

// BenchmarkWalk measures a full lone-message walk around the central
// block (routing decisions + state updates over the whole path).
func BenchmarkWalk(b *testing.B) {
	m := topology.New(10, 10)
	ids, err := fault.NamedPattern("center-block", m)
	if err != nil {
		b.Fatal(err)
	}
	f, err := fault.New(m, ids)
	if err != nil {
		b.Fatal(err)
	}
	alg := MustNew("Nbc", f, 24)
	rng := rand.New(rand.NewSource(1))
	src := m.ID(topology.Coord{X: 0, Y: 4})
	dst := m.ID(topology.Coord{X: 9, Y: 5})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := walkOnce(f, alg, src, dst, rng); err != nil {
			b.Fatal(err)
		}
	}
}
