package routing

import (
	"math/rand"
	"testing"

	"wormmesh/internal/core"
	"wormmesh/internal/fault"
	"wormmesh/internal/topology"
)

// BenchmarkCandidates measures the routing-decision cost of each
// algorithm — the hottest call in the simulation inner loop.
func BenchmarkCandidates(b *testing.B) {
	m := topology.New(10, 10)
	ids, err := fault.NamedPattern("center-block", m)
	if err != nil {
		b.Fatal(err)
	}
	f, err := fault.New(m, ids)
	if err != nil {
		b.Fatal(err)
	}
	for _, name := range []string{"PHop", "Nbc", "Duato-Nbc", "Minimal-Adaptive", "Boura-FT"} {
		b.Run(name, func(b *testing.B) {
			alg := MustNew(name, f, 24)
			msg := core.NewMessage(1, m.ID(topology.Coord{X: 1, Y: 1}), m.ID(topology.Coord{X: 8, Y: 7}), 1)
			alg.InitMessage(msg)
			var cands core.CandidateSet
			node := m.ID(topology.Coord{X: 3, Y: 4})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				cands.Reset()
				alg.Candidates(msg, node, &cands)
			}
		})
	}
}

// BenchmarkStepLoadedFaulted measures the per-cycle engine cost with
// live traffic on a FAULTED mesh, so the Boppana–Chalasani wrapper's
// canProgress / blockingRing / ring-traversal paths — not just the
// fault-free base algorithms — sit on the measured hot path. The
// center-block pattern forces steady f-ring traffic for messages whose
// minimal paths cross the middle of the mesh.
func BenchmarkStepLoadedFaulted(b *testing.B) {
	mesh := topology.New(10, 10)
	ids, err := fault.NamedPattern("center-block", mesh)
	if err != nil {
		b.Fatal(err)
	}
	f, err := fault.New(mesh, ids)
	if err != nil {
		b.Fatal(err)
	}
	healthy := f.HealthyNodes()
	for _, name := range []string{"Nbc", "Duato-Nbc", "Boura-FT"} {
		b.Run(name, func(b *testing.B) {
			alg := MustNew(name, f, 24)
			cfg := core.DefaultConfig()
			cfg.MaxSourceQueue = 4
			cfg.MaxHops = int32(16 * mesh.Diameter())
			n, err := core.NewNetwork(mesh, f, alg, cfg, rand.New(rand.NewSource(1)))
			if err != nil {
				b.Fatal(err)
			}
			defer n.Close()
			rng := rand.New(rand.NewSource(2))
			id := int64(0)
			step := func() {
				for k := 0; k < 2; k++ { // busy mesh, ring traffic
					src := healthy[rng.Intn(len(healthy))]
					dst := healthy[rng.Intn(len(healthy))]
					if src != dst {
						id++
						m := n.AcquireMessage(id, src, dst, 16)
						m.GenTime = n.Cycle()
						n.Offer(m)
					}
				}
				n.Step()
			}
			// Reach the arena's steady-state capacity before measuring.
			for i := 0; i < 3000; i++ {
				step()
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				step()
			}
		})
	}
}

// BenchmarkWalk measures a full lone-message walk around the central
// block (routing decisions + state updates over the whole path).
func BenchmarkWalk(b *testing.B) {
	m := topology.New(10, 10)
	ids, err := fault.NamedPattern("center-block", m)
	if err != nil {
		b.Fatal(err)
	}
	f, err := fault.New(m, ids)
	if err != nil {
		b.Fatal(err)
	}
	alg := MustNew("Nbc", f, 24)
	rng := rand.New(rand.NewSource(1))
	src := m.ID(topology.Coord{X: 0, Y: 4})
	dst := m.ID(topology.Coord{X: 9, Y: 5})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := walkOnce(f, alg, src, dst, rng); err != nil {
			b.Fatal(err)
		}
	}
}
