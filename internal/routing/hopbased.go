package routing

import (
	"fmt"

	"wormmesh/internal/core"
	"wormmesh/internal/topology"
)

// hopScheme implements the hop-based fully adaptive schemes of Boppana
// and Chalasani's design framework: Positive-Hop (PHop), Negative-Hop
// (NHop), and their bonus-card variants (Pbc, Nbc).
//
// Each hop must use a buffer class equal to a required class plus the
// cumulative bonus cards the message has chosen to spend:
//
//   - PHop: required class = number of hops already taken, so classes
//     strictly ascend along the path. A 2-D k×k mesh needs
//     diameter+1 = 2(k-1)+1 classes.
//   - NHop: required class = number of negative hops already taken
//     (a negative hop moves from a high-color to a low-color node in
//     the checkerboard coloring), needing 1+floor(diameter/2) classes.
//
// A message holding b unspent bonus cards may, at any hop, raise its
// cumulative spend by up to b, widening its class choice to
// [required+spent, required+spent+b] — the paper's "wider choice of
// virtual channels, likely to choose the least congested one".
//
// F-ring detours (taken on the Boppana–Chalasani wrapper's own VCs)
// still increment the hop counters, so long detours can exhaust the
// class ladder; classes are clamped at the top class. The paper runs
// the same configuration and observes the resulting congestion rather
// than extending the ladder.
type hopScheme struct {
	mesh       topology.Topology
	schemeName string
	negOnly    bool // NHop-style: required class counts negative hops
	bonus      bool
	classes    int
	vcPerClass int
	baseVC     int

	dirBuf []topology.Direction
}

// newHopScheme builds a hop-based base occupying VC indices
// [baseVC, baseVC+classes*vcPerClass).
func newHopScheme(mesh topology.Topology, name string, negOnly, bonus bool, classes, vcPerClass, baseVC int) *hopScheme {
	need := mesh.Diameter() + 1
	if negOnly {
		need = 1 + maxNegHops(mesh)
	}
	if classes < need {
		panic(fmt.Sprintf("routing: %s needs %d classes on %v, got %d", name, need, mesh, classes))
	}
	return &hopScheme{
		mesh:       mesh,
		schemeName: name,
		negOnly:    negOnly,
		bonus:      bonus,
		classes:    classes,
		vcPerClass: vcPerClass,
		baseVC:     baseVC,
	}
}

func (h *hopScheme) name() string { return h.schemeName }

func (h *hopScheme) numVCs() int { return h.baseVC + h.classes*h.vcPerClass }

func (h *hopScheme) init(m *core.Message) {
	m.Class = -1
	m.CardsSpent = 0
	m.Cards = 0
	if !h.bonus {
		return
	}
	if h.negOnly {
		m.Cards = int32(h.classes - 1 - requiredNegHops(h.mesh, m.Src, m.Dst))
	} else {
		m.Cards = int32(h.mesh.Diameter() - h.mesh.Distance(h.mesh.CoordOf(m.Src), h.mesh.CoordOf(m.Dst)))
	}
	if m.Cards < 0 {
		m.Cards = 0
	}
}

// required returns the class the message must use before spending any
// further cards.
func (h *hopScheme) required(m *core.Message) int {
	if h.negOnly {
		return int(m.NegHops)
	}
	return int(m.Hops)
}

func (h *hopScheme) classRange(m *core.Message) (lo, hi int) {
	lo = h.required(m) + int(m.CardsSpent)
	hi = lo + int(m.Cards)
	if lo > h.classes-1 {
		lo = h.classes - 1
	}
	if hi > h.classes-1 {
		hi = h.classes - 1
	}
	return lo, hi
}

func (h *hopScheme) candidates(m *core.Message, node topology.NodeID, out *core.CandidateSet, tier int) {
	lo, hi := h.classRange(m)
	h.dirBuf = minimalDirs(h.mesh, node, m.Dst, h.dirBuf[:0])
	for _, d := range h.dirBuf {
		for c := lo; c <= hi; c++ {
			first := h.baseVC + c*h.vcPerClass
			out.AddVCs(tier, d, first, first+h.vcPerClass-1)
		}
	}
}

// ownsVC reports whether the channel index belongs to this scheme's
// class ladder (as opposed to the BC wrapper's ring VCs).
func (h *hopScheme) ownsVC(vc uint8) bool {
	return int(vc) >= h.baseVC && int(vc) < h.baseVC+h.classes*h.vcPerClass
}

func (h *hopScheme) advance(m *core.Message, from topology.NodeID, ch core.Channel) {
	if h.ownsVC(ch.VC) {
		class := (int(ch.VC) - h.baseVC) / h.vcPerClass
		spent := int32(class - h.required(m))
		if spent > m.CardsSpent {
			m.Cards -= spent - m.CardsSpent
			if m.Cards < 0 {
				m.Cards = 0
			}
			m.CardsSpent = spent
		}
		m.Class = int32(class)
	}
	advanceCommon(h.mesh, m, from, ch)
}
