package routing

import (
	"fmt"

	"wormmesh/internal/core"
	"wormmesh/internal/topology"
)

// ecube is deterministic dimension-order (XY) routing: correct the X
// offset first, then Y. Deadlock-free on a mesh with a single virtual
// channel; used as Duato's class-II escape discipline. On a torus the
// escape becomes the classic dateline scheme: each hop uses the single
// VC baseVC+WrapClass, where the class is 1 while the remaining
// minimal path in the dimension still has to cross the wrap edge and
// drops to 0 at the crossing. Class-0 traffic never uses a wrap link
// and class-1 dependency chains terminate at the dateline, so each
// ring's channel-dependency graph is acyclic and dimension order
// keeps the X→Y composition acyclic too (needs vcs >= 2).
type ecube struct {
	mesh     topology.Topology
	baseVC   int
	vcs      int
	dateline bool
}

func newECube(mesh topology.Topology, baseVC, vcs int) *ecube {
	e := &ecube{mesh: mesh, baseVC: baseVC, vcs: vcs, dateline: mesh.Kind() == "torus"}
	if e.dateline && vcs < 2 {
		panic(fmt.Sprintf("routing: dateline e-cube needs >= 2 VCs on %v, got %d", mesh, vcs))
	}
	return e
}

func (e *ecube) name() string         { return "ecube" }
func (e *ecube) numVCs() int          { return e.baseVC + e.vcs }
func (e *ecube) init(m *core.Message) {}
func (e *ecube) candidates(m *core.Message, node topology.NodeID, out *core.CandidateSet, tier int) {
	cur, dst := e.mesh.CoordOf(node), e.mesh.CoordOf(m.Dst)
	dim := 0
	d, ok := e.mesh.DirTowards(cur, dst, 0)
	if !ok {
		dim = 1
		d, ok = e.mesh.DirTowards(cur, dst, 1)
	}
	if !ok {
		return
	}
	if e.dateline {
		out.Add(tier, core.Channel{Dir: d, VC: uint8(e.baseVC + int(e.mesh.WrapClass(cur, dst, dim)))})
		return
	}
	out.AddVCs(tier, d, e.baseVC, e.baseVC+e.vcs-1)
}
func (e *ecube) advance(m *core.Message, from topology.NodeID, ch core.Channel) {
	advanceCommon(e.mesh, m, from, ch)
}

// minimalAdaptive is the paper's Minimal-Adaptive routing: any minimal
// direction, any virtual channel in its pool, with no supervision of
// virtual-channel usage. It is not deadlock-free; the engine watchdog
// recovers and counts.
type minimalAdaptive struct {
	mesh   topology.Topology
	baseVC int
	vcs    int
	dirBuf []topology.Direction
}

func newMinimalAdaptive(mesh topology.Topology, baseVC, vcs int) *minimalAdaptive {
	return &minimalAdaptive{mesh: mesh, baseVC: baseVC, vcs: vcs}
}

func (a *minimalAdaptive) name() string         { return "Minimal-Adaptive" }
func (a *minimalAdaptive) numVCs() int          { return a.baseVC + a.vcs }
func (a *minimalAdaptive) init(m *core.Message) {}
func (a *minimalAdaptive) candidates(m *core.Message, node topology.NodeID, out *core.CandidateSet, tier int) {
	a.dirBuf = minimalDirs(a.mesh, node, m.Dst, a.dirBuf[:0])
	for _, d := range a.dirBuf {
		out.AddVCs(tier, d, a.baseVC, a.baseVC+a.vcs-1)
	}
}
func (a *minimalAdaptive) advance(m *core.Message, from topology.NodeID, ch core.Channel) {
	advanceCommon(a.mesh, m, from, ch)
}

// fullyAdaptive extends minimalAdaptive with bounded misrouting: when
// every minimal channel is busy the message may take a non-minimal
// direction, at most limit times (the paper fixes the limit at 10 to
// prevent livelock). Misroute candidates sit one preference tier below
// the minimal ones so the engine only uses them when all minimal
// channels are occupied.
type fullyAdaptive struct {
	mesh   topology.Topology
	baseVC int
	vcs    int
	limit  int32
	dirBuf []topology.Direction
}

func newFullyAdaptive(mesh topology.Topology, baseVC, vcs int, limit int) *fullyAdaptive {
	return &fullyAdaptive{mesh: mesh, baseVC: baseVC, vcs: vcs, limit: int32(limit)}
}

func (a *fullyAdaptive) name() string         { return "Fully-Adaptive" }
func (a *fullyAdaptive) numVCs() int          { return a.baseVC + a.vcs }
func (a *fullyAdaptive) init(m *core.Message) { m.Misroutes = 0 }
func (a *fullyAdaptive) candidates(m *core.Message, node topology.NodeID, out *core.CandidateSet, tier int) {
	cur := a.mesh.CoordOf(node)
	dst := a.mesh.CoordOf(m.Dst)
	a.dirBuf = a.mesh.MinimalDirs(cur, dst, a.dirBuf[:0])
	for _, d := range a.dirBuf {
		out.AddVCs(tier, d, a.baseVC, a.baseVC+a.vcs-1)
	}
	if m.Misroutes >= a.limit || tier+1 >= core.MaxTiers {
		return
	}
	for d := topology.Direction(0); d < topology.NumDirs; d++ {
		if _, ok := a.mesh.Neighbor(cur, d); !ok {
			continue
		}
		if a.mesh.IsMinimal(cur, dst, d) {
			continue
		}
		// Avoid immediately bouncing back to the previous node.
		if m.Prev != topology.Invalid && a.mesh.NeighborID(node, d) == m.Prev {
			continue
		}
		out.AddVCs(tier+1, d, a.baseVC, a.baseVC+a.vcs-1)
	}
}
func (a *fullyAdaptive) advance(m *core.Message, from topology.NodeID, ch core.Channel) {
	if !a.mesh.IsMinimal(a.mesh.CoordOf(from), a.mesh.CoordOf(m.Dst), ch.Dir) {
		m.Misroutes++
	}
	advanceCommon(a.mesh, m, from, ch)
}

// duato composes Duato's methodology: a class-I pool of fully adaptive
// virtual channels tried first, with a deadlock-free escape base
// (class II) used when every class-I channel is busy. Network
// performance is maximized when the escape class holds the minimum
// required channels and all extras go to class I, which is how the
// registry configures Duato-Pbc and Duato-Nbc.
type duato struct {
	mesh       topology.Topology
	dispName   string
	escape     base
	adaptiveLo int
	adaptiveHi int
	dirBuf     []topology.Direction
}

func newDuato(mesh topology.Topology, name string, escape base, adaptiveLo, adaptiveHi int) *duato {
	return &duato{mesh: mesh, dispName: name, escape: escape, adaptiveLo: adaptiveLo, adaptiveHi: adaptiveHi}
}

func (d *duato) name() string { return d.dispName }
func (d *duato) numVCs() int {
	n := d.escape.numVCs()
	if d.adaptiveHi+1 > n {
		n = d.adaptiveHi + 1
	}
	return n
}
func (d *duato) init(m *core.Message) { d.escape.init(m) }
func (d *duato) candidates(m *core.Message, node topology.NodeID, out *core.CandidateSet, tier int) {
	d.dirBuf = minimalDirs(d.mesh, node, m.Dst, d.dirBuf[:0])
	for _, dir := range d.dirBuf {
		out.AddVCs(tier, dir, d.adaptiveLo, d.adaptiveHi)
	}
	if tier+1 < core.MaxTiers {
		d.escape.candidates(m, node, out, tier+1)
	}
}
func (d *duato) advance(m *core.Message, from topology.NodeID, ch core.Channel) {
	if int(ch.VC) >= d.adaptiveLo && int(ch.VC) <= d.adaptiveHi {
		advanceCommon(d.mesh, m, from, ch)
		return
	}
	d.escape.advance(m, from, ch)
}

// bouraAdaptive approximates the adaptive discipline underlying Boura
// and Das's routing scheme: the virtual channels form two virtual
// subnetworks, one for messages still needing to travel north (+Y) and
// one for south-bound messages; within its subnetwork a message routes
// fully adaptively over minimal directions. Messages with no Y offset
// stay in the subnetwork assigned at injection. (Documented
// approximation — see DESIGN.md §2.)
type bouraAdaptive struct {
	mesh   topology.Topology
	posLo  int
	posHi  int
	negLo  int
	negHi  int
	dirBuf []topology.Direction
}

func newBouraAdaptive(mesh topology.Topology, posLo, posHi, negLo, negHi int) *bouraAdaptive {
	return &bouraAdaptive{mesh: mesh, posLo: posLo, posHi: posHi, negLo: negLo, negHi: negHi}
}

func (b *bouraAdaptive) name() string { return "Boura-Adaptive" }
func (b *bouraAdaptive) numVCs() int {
	if b.negHi+1 > b.posHi+1 {
		return b.negHi + 1
	}
	return b.posHi + 1
}
func (b *bouraAdaptive) init(m *core.Message) {
	sc, dc := b.mesh.CoordOf(m.Src), b.mesh.CoordOf(m.Dst)
	if dc.Y >= sc.Y {
		m.Subnet = 0
	} else {
		m.Subnet = 1
	}
}

// subnetRange returns the VC range for the subnetwork the message
// should currently be using, re-deriving it from the remaining Y
// offset so detours pick the correct discipline.
func (b *bouraAdaptive) subnetRange(m *core.Message, node topology.NodeID) (int, int) {
	cur, dst := b.mesh.CoordOf(node), b.mesh.CoordOf(m.Dst)
	switch {
	case dst.Y > cur.Y:
		return b.posLo, b.posHi
	case dst.Y < cur.Y:
		return b.negLo, b.negHi
	case m.Subnet == 0:
		return b.posLo, b.posHi
	default:
		return b.negLo, b.negHi
	}
}

func (b *bouraAdaptive) candidates(m *core.Message, node topology.NodeID, out *core.CandidateSet, tier int) {
	lo, hi := b.subnetRange(m, node)
	b.dirBuf = minimalDirs(b.mesh, node, m.Dst, b.dirBuf[:0])
	for _, d := range b.dirBuf {
		out.AddVCs(tier, d, lo, hi)
	}
}
func (b *bouraAdaptive) advance(m *core.Message, from topology.NodeID, ch core.Channel) {
	advanceCommon(b.mesh, m, from, ch)
}
