package routing

import (
	"math/rand"
	"testing"

	"wormmesh/internal/core"
	"wormmesh/internal/fault"
	"wormmesh/internal/topology"
)

// traceWalk walks a message and records the channel of every hop.
func traceWalk(t *testing.T, f *fault.Model, alg core.Algorithm, src, dst topology.NodeID, rng *rand.Rand) (*core.Message, []core.Channel) {
	t.Helper()
	m := core.NewMessage(1, src, dst, 1)
	alg.InitMessage(m)
	mesh := f.Topo
	cur := src
	var hops []core.Channel
	var cands core.CandidateSet
	for steps := 0; cur != dst; steps++ {
		if steps > 8*mesh.Diameter() {
			t.Fatalf("%s: walk did not terminate", alg.Name())
		}
		cands.Reset()
		alg.Candidates(m, cur, &cands)
		var ch core.Channel
		found := false
		for tier := 0; tier < core.MaxTiers && !found; tier++ {
			if tc := cands.Tier(tier); len(tc) > 0 {
				if rng != nil {
					ch = tc[rng.Intn(len(tc))]
				} else {
					ch = tc[0]
				}
				found = true
			}
		}
		if !found {
			t.Fatalf("%s: stuck", alg.Name())
		}
		alg.Advance(m, cur, ch)
		hops = append(hops, ch)
		cur = mesh.NeighborID(cur, ch.Dir)
	}
	return m, hops
}

// TestPHopClassesAscendWithHops: without bonus cards, hop i uses class
// VC i exactly (1 VC per class, classes start at VC 0).
func TestPHopClassLadder(t *testing.T) {
	f := fault.None(mesh10())
	alg := MustNew("PHop", f, 24)
	src := f.Topo.ID(topology.Coord{X: 0, Y: 0})
	dst := f.Topo.ID(topology.Coord{X: 5, Y: 3})
	rng := rand.New(rand.NewSource(1))
	_, hops := traceWalk(t, f, alg, src, dst, rng)
	for i, ch := range hops {
		if int(ch.VC) != i {
			t.Errorf("hop %d used VC %d, PHop requires class %d", i, ch.VC, i)
		}
	}
}

// TestNHopClassEqualsNegativeHops: hop uses the class equal to the
// number of negative hops taken before it (2 VCs per class).
func TestNHopClassEqualsNegativeHops(t *testing.T) {
	f := fault.None(mesh10())
	alg := MustNew("NHop", f, 24)
	mesh := f.Topo
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 50; trial++ {
		src := topology.NodeID(rng.Intn(mesh.NodeCount()))
		dst := topology.NodeID(rng.Intn(mesh.NodeCount()))
		if src == dst {
			continue
		}
		m := core.NewMessage(1, src, dst, 1)
		alg.InitMessage(m)
		cur := src
		neg := 0
		var cands core.CandidateSet
		for cur != dst {
			cands.Reset()
			alg.Candidates(m, cur, &cands)
			ch := cands.Tier(0)[rng.Intn(len(cands.Tier(0)))]
			if class := int(ch.VC) / 2; class != neg {
				t.Fatalf("hop with %d neg hops used class %d", neg, class)
			}
			next := mesh.NeighborID(cur, ch.Dir)
			if topology.Color(mesh.CoordOf(cur)) == 1 && topology.Color(mesh.CoordOf(next)) == 0 {
				neg++
			}
			alg.Advance(m, cur, ch)
			cur = next
		}
		if int(m.NegHops) != neg {
			t.Fatalf("message NegHops=%d, recount=%d", m.NegHops, neg)
		}
		if want := requiredNegHops(mesh, src, dst); neg != want {
			t.Fatalf("negative hops %d, requiredNegHops predicts %d", neg, want)
		}
	}
}

// TestRequiredNegHopsBruteForce checks the closed form against an
// explicit walk along one minimal path for every pair of a small mesh.
func TestRequiredNegHopsBruteForce(t *testing.T) {
	m := topology.New(5, 4)
	for src := topology.NodeID(0); int(src) < m.NodeCount(); src++ {
		for dst := topology.NodeID(0); int(dst) < m.NodeCount(); dst++ {
			// Walk X-first, counting negative hops.
			cur := m.CoordOf(src)
			target := m.CoordOf(dst)
			neg := 0
			for cur != target {
				d, ok := topology.DirTowards(cur, target, 0)
				if !ok {
					d, _ = topology.DirTowards(cur, target, 1)
				}
				next, _ := m.Neighbor(cur, d)
				if topology.Color(cur) == 1 && topology.Color(next) == 0 {
					neg++
				}
				cur = next
			}
			if got := requiredNegHops(m, src, dst); got != neg {
				t.Fatalf("requiredNegHops(%v,%v) = %d, walk counts %d",
					m.CoordOf(src), m.CoordOf(dst), got, neg)
			}
		}
	}
}

// TestBonusCardsWidenFirstHop: a Pbc message with b cards may take any
// class 0..b on its first hop; one with 0 cards only class 0.
func TestBonusCardsWidenFirstHop(t *testing.T) {
	f := fault.None(mesh10())
	alg := MustNew("Pbc", f, 24)
	mesh := f.Topo

	// Corner-to-corner: path length = diameter, zero cards.
	m := core.NewMessage(1, mesh.ID(topology.Coord{X: 0, Y: 0}), mesh.ID(topology.Coord{X: 9, Y: 9}), 1)
	alg.InitMessage(m)
	if m.Cards != 0 {
		t.Fatalf("corner-to-corner cards = %d, want 0", m.Cards)
	}
	var cands core.CandidateSet
	alg.Candidates(m, m.Src, &cands)
	for _, ch := range cands.Tier(0) {
		if ch.VC != 0 {
			t.Errorf("0-card message offered VC %d on first hop", ch.VC)
		}
	}

	// Neighbor destination: cards = diameter - 1 = 17.
	m2 := core.NewMessage(2, mesh.ID(topology.Coord{X: 0, Y: 0}), mesh.ID(topology.Coord{X: 1, Y: 0}), 1)
	alg.InitMessage(m2)
	if m2.Cards != 17 {
		t.Fatalf("neighbor message cards = %d, want 17", m2.Cards)
	}
	cands.Reset()
	alg.Candidates(m2, m2.Src, &cands)
	seen := map[uint8]bool{}
	for _, ch := range cands.Tier(0) {
		seen[ch.VC] = true
	}
	for c := 0; c <= 17; c++ {
		if !seen[uint8(c)] {
			t.Errorf("class %d missing from 17-card first hop", c)
		}
	}
	if seen[18] {
		t.Error("class 18 offered beyond the card budget")
	}
}

// TestBonusCardSpendingIsMonotone: spending cards raises the floor of
// later choices and never exceeds the budget.
func TestBonusCardSpending(t *testing.T) {
	f := fault.None(mesh10())
	alg := MustNew("Pbc", f, 24)
	mesh := f.Topo
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 100; trial++ {
		src := topology.NodeID(rng.Intn(mesh.NodeCount()))
		dst := topology.NodeID(rng.Intn(mesh.NodeCount()))
		if src == dst {
			continue
		}
		m, hops := traceWalk(t, f, alg, src, dst, rng)
		dist := mesh.Distance(mesh.CoordOf(src), mesh.CoordOf(dst))
		budget := mesh.Diameter() - dist
		prev := -1
		for i, ch := range hops {
			class := int(ch.VC)
			if class <= prev {
				t.Fatalf("classes not strictly ascending: hop %d class %d after %d", i, class, prev)
			}
			if class > i+budget {
				t.Fatalf("hop %d class %d exceeds budget %d", i, class, budget)
			}
			prev = class
		}
		if m.Cards < 0 {
			t.Fatalf("cards went negative: %d", m.Cards)
		}
	}
}

// TestNbcCardBudget: Nbc cards = maxNegHops - requiredNegHops.
func TestNbcCardBudget(t *testing.T) {
	f := fault.None(mesh10())
	alg := MustNew("Nbc", f, 24)
	mesh := f.Topo
	m := core.NewMessage(1, mesh.ID(topology.Coord{X: 0, Y: 0}), mesh.ID(topology.Coord{X: 1, Y: 0}), 1)
	alg.InitMessage(m)
	want := int32(maxNegHops(mesh) - requiredNegHops(mesh, m.Src, m.Dst))
	if m.Cards != want {
		t.Errorf("Nbc cards = %d, want %d", m.Cards, want)
	}
}

// TestDuatoTierStructure: tier 0 carries adaptive channels on all
// minimal directions; tier 1 carries the escape discipline.
func TestDuatoTierStructure(t *testing.T) {
	f := fault.None(mesh10())
	alg := MustNew("Duato", f, 24)
	mesh := f.Topo
	m := core.NewMessage(1, mesh.ID(topology.Coord{X: 2, Y: 2}), mesh.ID(topology.Coord{X: 6, Y: 7}), 1)
	alg.InitMessage(m)
	var cands core.CandidateSet
	alg.Candidates(m, m.Src, &cands)
	if len(cands.Tier(0)) != 2*18 {
		t.Errorf("tier0 = %d channels, want 36 (2 dirs x 18 adaptive VCs)", len(cands.Tier(0)))
	}
	for _, ch := range cands.Tier(0) {
		if ch.VC < 2 || ch.VC > 19 {
			t.Errorf("tier0 channel %v outside adaptive range [2,19]", ch)
		}
		if ch.Dir != topology.East && ch.Dir != topology.North {
			t.Errorf("tier0 non-minimal dir %v", ch.Dir)
		}
	}
	if len(cands.Tier(1)) != 2 {
		t.Errorf("tier1 = %d channels, want 2 (e-cube escape pair)", len(cands.Tier(1)))
	}
	for _, ch := range cands.Tier(1) {
		if ch.VC > 1 {
			t.Errorf("escape channel %v outside [0,1]", ch)
		}
		if ch.Dir != topology.East {
			t.Errorf("escape dir %v, e-cube requires East first", ch.Dir)
		}
	}
}

// TestFullyAdaptiveMisrouteTier: non-minimal channels appear only in
// tier 1, never towards the previous node, and stop after the limit.
func TestFullyAdaptiveMisrouteTier(t *testing.T) {
	f := fault.None(mesh10())
	alg := MustNew("Fully-Adaptive", f, 24)
	mesh := f.Topo
	m := core.NewMessage(1, mesh.ID(topology.Coord{X: 5, Y: 5}), mesh.ID(topology.Coord{X: 7, Y: 5}), 1)
	alg.InitMessage(m)
	var cands core.CandidateSet
	alg.Candidates(m, m.Src, &cands)
	if len(cands.Tier(0)) != 20 {
		t.Errorf("tier0 = %d, want 20 (1 minimal dir x 20 VCs)", len(cands.Tier(0)))
	}
	dirs := map[topology.Direction]bool{}
	for _, ch := range cands.Tier(1) {
		dirs[ch.Dir] = true
	}
	if dirs[topology.East] {
		t.Error("minimal dir East in misroute tier")
	}
	if len(dirs) != 3 {
		t.Errorf("misroute dirs = %v, want {West, North, South}", dirs)
	}
	// Exhaust the misroute budget.
	m.Misroutes = 10
	cands.Reset()
	alg.Candidates(m, m.Src, &cands)
	if len(cands.Tier(1)) != 0 {
		t.Error("misroutes offered beyond the limit")
	}
}

// TestBCRingVCDiscipline: during ring traversal the 9 fortified
// algorithms use only their reserved ring channels, partitioned by
// direction class.
func TestBCRingVCDiscipline(t *testing.T) {
	f := centralBlock(t)
	mesh := f.Topo
	for _, algName := range AlgorithmNames {
		if algName == "Boura-FT" {
			continue // uses subnet channels for boundary traversal by design
		}
		alg := MustNew(algName, f, 24)
		ringLo := uint8(20)
		if algName == "PHop" || algName == "Pbc" {
			ringLo = 19
		}
		// A WE message forced around the block.
		src := mesh.ID(topology.Coord{X: 0, Y: 4})
		dst := mesh.ID(topology.Coord{X: 9, Y: 4})
		m := core.NewMessage(1, src, dst, 1)
		alg.InitMessage(m)
		cur := src
		ringHops := 0
		var cands core.CandidateSet
		for steps := 0; cur != dst && steps < 100; steps++ {
			cands.Reset()
			alg.Candidates(m, cur, &cands)
			var ch core.Channel
			found := false
			for tier := 0; tier < core.MaxTiers && !found; tier++ {
				if tc := cands.Tier(tier); len(tc) > 0 {
					ch = tc[0]
					found = true
				}
			}
			if !found {
				t.Fatalf("%s: stuck", algName)
			}
			alg.Advance(m, cur, ch)
			cur = mesh.NeighborID(cur, ch.Dir)
			if m.RingIdx >= 0 {
				ringHops++
				if ch.VC < ringLo {
					t.Errorf("%s: ring hop on VC %d below ring set %d+", algName, ch.VC, ringLo)
				}
			}
		}
		if ringHops == 0 {
			t.Errorf("%s: blocked WE message never entered ring traversal", algName)
		}
	}
}

// TestBCChainReversal: a message that must round a boundary-touching
// region reverses at the chain end and still arrives.
func TestBCChainReversal(t *testing.T) {
	// Region touching the north boundary; message travels along the
	// top row and must dip below the region.
	f := modelWith(t, mesh10(),
		topology.Coord{X: 4, Y: 9}, topology.Coord{X: 4, Y: 8}, topology.Coord{X: 5, Y: 9}, topology.Coord{X: 5, Y: 8})
	mesh := f.Topo
	if !f.Rings()[0].Chain {
		t.Fatal("expected a chain")
	}
	for _, algName := range []string{"NHop", "Pbc", "Duato", "Minimal-Adaptive", "Boura-FT"} {
		alg := MustNew(algName, f, 24)
		src := mesh.ID(topology.Coord{X: 0, Y: 9})
		dst := mesh.ID(topology.Coord{X: 9, Y: 9})
		hops := walk(t, f, alg, src, dst, nil)
		if hops < 9+4 {
			t.Errorf("%s: %d hops around chain, expected >= 13", algName, hops)
		}
	}
}

// TestBouraSubnetDiscipline: north-bound messages use the positive
// subnetwork, south-bound the negative one.
func TestBouraSubnetDiscipline(t *testing.T) {
	f := fault.None(mesh10())
	alg := MustNew("Boura-Adaptive", f, 24)
	mesh := f.Topo
	rng := rand.New(rand.NewSource(4))
	north := core.NewMessage(1, mesh.ID(topology.Coord{X: 3, Y: 1}), mesh.ID(topology.Coord{X: 6, Y: 8}), 1)
	alg.InitMessage(north)
	_, hops := traceWalk(t, f, alg, north.Src, north.Dst, rng)
	for _, ch := range hops {
		if ch.VC > 9 {
			t.Errorf("north-bound message used VC %d outside VN+ [0,9]", ch.VC)
		}
	}
	south := core.NewMessage(2, mesh.ID(topology.Coord{X: 6, Y: 8}), mesh.ID(topology.Coord{X: 3, Y: 1}), 1)
	alg.InitMessage(south)
	_, hops = traceWalk(t, f, alg, south.Src, south.Dst, rng)
	for _, ch := range hops {
		if ch.VC < 10 || ch.VC > 19 {
			t.Errorf("south-bound message used VC %d outside VN- [10,19]", ch.VC)
		}
	}
}

// TestDirClassAssignedAtInjection verifies the WE/EW/NS/SN typing.
func TestDirClassAssignedAtInjection(t *testing.T) {
	f := fault.None(mesh10())
	alg := MustNew("NHop", f, 24)
	mesh := f.Topo
	cases := []struct {
		src, dst topology.Coord
		want     core.DirClass
	}{
		{topology.Coord{X: 0, Y: 0}, topology.Coord{X: 9, Y: 9}, core.WE},
		{topology.Coord{X: 9, Y: 0}, topology.Coord{X: 0, Y: 9}, core.EW},
		{topology.Coord{X: 4, Y: 0}, topology.Coord{X: 4, Y: 9}, core.NS},
		{topology.Coord{X: 4, Y: 9}, topology.Coord{X: 4, Y: 0}, core.SN},
	}
	for _, tc := range cases {
		m := core.NewMessage(1, mesh.ID(tc.src), mesh.ID(tc.dst), 1)
		alg.InitMessage(m)
		if m.DirClass != tc.want {
			t.Errorf("%v->%v class %v, want %v", tc.src, tc.dst, m.DirClass, tc.want)
		}
	}
}

// TestPHopRingVCsGetFifthChannel: the paper's PHop layout uses 19
// classes + 5 ring channels = 24.
func TestPHopRingVCsGetFifthChannel(t *testing.T) {
	f := centralBlock(t)
	alg := MustNew("PHop", f, 24)
	if alg.NumVCs() != 24 {
		t.Errorf("PHop NumVCs = %d, want 24", alg.NumVCs())
	}
	// The WE class holds two ring channels (19 and 23).
	mesh := f.Topo
	m := core.NewMessage(1, mesh.ID(topology.Coord{X: 3, Y: 4}), mesh.ID(topology.Coord{X: 9, Y: 4}), 1)
	alg.InitMessage(m)
	var cands core.CandidateSet
	alg.Candidates(m, m.Src, &cands)
	vcs := map[uint8]bool{}
	for _, ch := range cands.Tier(0) {
		vcs[ch.VC] = true
	}
	if !vcs[19] || !vcs[23] {
		t.Errorf("WE ring hop offered VCs %v, want {19, 23}", vcs)
	}
}
