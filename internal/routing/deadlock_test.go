package routing

import (
	"math/rand"
	"testing"

	"wormmesh/internal/core"
	"wormmesh/internal/fault"
	"wormmesh/internal/topology"
)

// TestDeadlockFreedomEmpirical floods the fault-free mesh at a
// saturating load and asserts that the provably deadlock-free schemes
// never trigger recovery. (Minimal-Adaptive is deadlock-prone by
// design — the paper says so — and is checked only for a bounded kill
// fraction.)
func TestDeadlockFreedomEmpirical(t *testing.T) {
	if testing.Short() {
		t.Skip("saturating flood")
	}
	mesh := topology.New(10, 10)
	f := fault.None(mesh)
	deadlockFree := map[string]bool{
		"PHop": true, "NHop": true, "Pbc": true, "Nbc": true,
		"Duato": true, "Duato-Pbc": true, "Duato-Nbc": true,
		"Fully-Adaptive":   false, // misrouting without escape discipline
		"Minimal-Adaptive": false,
		"Boura-Adaptive":   false, // approximation (cross-subnet switches)
		"Boura-FT":         false,
	}
	for _, algName := range AlgorithmNames {
		algName := algName
		t.Run(algName, func(t *testing.T) {
			t.Parallel()
			alg := MustNew(algName, f, 24)
			cfg := core.DefaultConfig()
			cfg.MaxSourceQueue = 8
			net, err := core.NewNetwork(mesh, f, alg, cfg, rand.New(rand.NewSource(5)))
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(13))
			id := int64(0)
			for cycle := 0; cycle < 6000; cycle++ {
				// Flood: one offered message per cycle network-wide.
				src := topology.NodeID(rng.Intn(mesh.NodeCount()))
				dst := topology.NodeID(rng.Intn(mesh.NodeCount()))
				if src != dst {
					id++
					m := core.NewMessage(id, src, dst, 32)
					m.GenTime = net.Cycle()
					net.Offer(m)
				}
				net.Step()
			}
			st := net.Snapshot()
			if st.Delivered == 0 {
				t.Fatal("flood delivered nothing")
			}
			if deadlockFree[algName] {
				if st.Killed != 0 || st.DeadlockEvents != 0 {
					t.Errorf("%s is deadlock-free but recovery fired: killed=%d events=%d",
						algName, st.Killed, st.DeadlockEvents)
				}
			} else if float64(st.Killed) > 0.05*float64(st.Generated) {
				t.Errorf("%s: excessive recovery: %d of %d", algName, st.Killed, st.Generated)
			}
		})
	}
}

// TestLinkBandwidthInvariant uses the tracer to assert the physical
// constraint the engine must enforce: at most one flit per directed
// link per cycle, and at most EjectBW ejections per node per cycle.
func TestLinkBandwidthInvariant(t *testing.T) {
	mesh := topology.New(8, 8)
	f := fault.None(mesh)
	alg := MustNew("Minimal-Adaptive", f, 24)
	cfg := core.DefaultConfig()
	cfg.MaxSourceQueue = 4
	net, err := core.NewNetwork(mesh, f, alg, cfg, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	bw := &bandwidthTracer{t: t, seen: map[bwKey]int64{}}
	net.SetTracer(bw)
	rng := rand.New(rand.NewSource(9))
	id := int64(0)
	for cycle := 0; cycle < 2000; cycle++ {
		for k := 0; k < 2; k++ {
			src := topology.NodeID(rng.Intn(mesh.NodeCount()))
			dst := topology.NodeID(rng.Intn(mesh.NodeCount()))
			if src != dst {
				id++
				m := core.NewMessage(id, src, dst, 10)
				m.GenTime = net.Cycle()
				net.Offer(m)
			}
		}
		net.Step()
	}
	if bw.moves == 0 {
		t.Fatal("no flit moves observed")
	}
}

type bwKey struct {
	node  topology.NodeID
	dir   topology.Direction
	cycle int64
}

type bandwidthTracer struct {
	core.NopTracer
	t     *testing.T
	seen  map[bwKey]int64
	moves int64
}

func (b *bandwidthTracer) FlitMoved(f core.Flit, from topology.NodeID, ch core.Channel, cycle int64) {
	b.moves++
	k := bwKey{node: from, dir: ch.Dir, cycle: cycle}
	b.seen[k]++
	if b.seen[k] > 1 {
		b.t.Errorf("cycle %d: link %v/%v carried %d flits", cycle, from, ch.Dir, b.seen[k])
	}
}
