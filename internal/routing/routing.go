// Package routing implements the ten adaptive routing algorithms the
// paper compares, plus the Boppana–Chalasani fault-tolerant scheme
// that fortifies them. Algorithms are built by the registry in
// registry.go so that each receives the paper's 24-virtual-channel
// layout (or the equivalent layout for other mesh sizes).
//
// Internally, algorithms are composed from fault-oblivious "bases"
// (hop-based schemes, e-cube, minimal/fully adaptive, Duato's
// class-I/class-II methodology, Boura's subnetwork discipline). The
// Boppana–Chalasani wrapper in bc.go turns a base into a fault-
// tolerant core.Algorithm; Boura's own fault-tolerant variant carries
// its labeling-based mechanism instead.
package routing

import (
	"wormmesh/internal/core"
	"wormmesh/internal/topology"
)

// base is a routing discipline that does not know about faults. It
// emits candidates into a caller-chosen preference tier so that
// Duato's methodology can compose an escape base at a lower tier.
type base interface {
	name() string
	// numVCs returns one past the highest VC index the base uses.
	numVCs() int
	init(m *core.Message)
	// candidates appends the permitted channels for the header of m at
	// node, placing first-choice channels at tier and any fallback
	// channels at tier+1.
	candidates(m *core.Message, node topology.NodeID, out *core.CandidateSet, tier int)
	// advance updates m's routing state for a header hop from node
	// through ch; implementations must end with advanceCommon exactly
	// once per hop (directly or through a delegate).
	advance(m *core.Message, from topology.NodeID, ch core.Channel)
}

// advanceCommon applies the algorithm-independent per-hop updates:
// hop count, negative-hop count (high-color to low-color moves), and
// the previous-node marker used to dampen detour oscillation.
func advanceCommon(mesh topology.Topology, m *core.Message, from topology.NodeID, ch core.Channel) {
	m.Hops++
	fc := mesh.CoordOf(from)
	tc, ok := mesh.Neighbor(fc, ch.Dir)
	if !ok {
		panic("routing: advance off-mesh")
	}
	if topology.Color(fc) == 1 && topology.Color(tc) == 0 {
		m.NegHops++
	}
	m.Prev = from
}

// minimalDirs appends the minimal directions from node towards dst.
func minimalDirs(mesh topology.Topology, node, dst topology.NodeID, buf []topology.Direction) []topology.Direction {
	return mesh.MinimalDirs(mesh.CoordOf(node), mesh.CoordOf(dst), buf)
}

// requiredNegHops returns the number of negative hops any minimal path
// from src to dst must take: hops alternate checkerboard colors, so
// the count depends only on the source color and the path length.
func requiredNegHops(mesh topology.Topology, src, dst topology.NodeID) int {
	l := mesh.Distance(mesh.CoordOf(src), mesh.CoordOf(dst))
	if topology.Color(mesh.CoordOf(src)) == 1 {
		return (l + 1) / 2
	}
	return l / 2
}

// maxNegHops returns the largest number of negative hops a minimal
// path can take in the mesh, which sizes the NHop class count:
// 1 + floor(diameter/2) classes.
func maxNegHops(mesh topology.Topology) int { return mesh.Diameter() / 2 }
