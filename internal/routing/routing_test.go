package routing

import (
	"math/rand"
	"testing"

	"wormmesh/internal/core"
	"wormmesh/internal/fault"
	"wormmesh/internal/topology"
)

func mesh10() topology.Topology { return topology.New(10, 10) }

func modelWith(t *testing.T, m topology.Topology, coords ...topology.Coord) *fault.Model {
	t.Helper()
	var ids []topology.NodeID
	for _, c := range coords {
		ids = append(ids, m.ID(c))
	}
	f, err := fault.New(m, ids)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func centralBlock(t *testing.T) *fault.Model {
	return modelWith(t, mesh10(),
		topology.Coord{X: 4, Y: 4}, topology.Coord{X: 5, Y: 4},
		topology.Coord{X: 4, Y: 5}, topology.Coord{X: 5, Y: 5})
}

func boundaryChain(t *testing.T) *fault.Model {
	return modelWith(t, mesh10(),
		topology.Coord{X: 0, Y: 4}, topology.Coord{X: 1, Y: 4}, topology.Coord{X: 0, Y: 5})
}

func TestRegistryBuildsEveryAlgorithm(t *testing.T) {
	f := centralBlock(t)
	for _, name := range AlgorithmNames {
		alg, err := New(name, f, 24)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if alg.Name() != name && name != "Boura-Adaptive" && name != "Boura-FT" {
			t.Errorf("%s: Name() = %q", name, alg.Name())
		}
		if alg.NumVCs() > 24 {
			t.Errorf("%s: NumVCs = %d exceeds 24", name, alg.NumVCs())
		}
		if d := Describe(name); d == "" {
			t.Errorf("%s: no description", name)
		}
	}
	if Describe("nope") != "" {
		t.Error("unknown algorithm described")
	}
}

func TestRegistryRejectsUnknownAndTooFewVCs(t *testing.T) {
	f := fault.None(mesh10())
	if _, err := New("bogus", f, 24); err == nil {
		t.Error("unknown name accepted")
	}
	if _, err := MinVCs("bogus", mesh10()); err == nil {
		t.Error("MinVCs for unknown name succeeded")
	}
	for _, name := range AlgorithmNames {
		min, err := MinVCs(name, mesh10())
		if err != nil {
			t.Fatal(err)
		}
		if _, err := New(name, f, min-1); err == nil {
			t.Errorf("%s accepted %d VCs, below minimum %d", name, min-1, min)
		}
		if _, err := New(name, f, min); err != nil {
			t.Errorf("%s rejected its own minimum %d: %v", name, min, err)
		}
	}
}

func TestMinVCsMatchesPaperOn10x10(t *testing.T) {
	m := mesh10()
	want := map[string]int{
		"PHop": 23, "Pbc": 23, // 19 classes + 4 ring
		"NHop": 14, "Nbc": 14, // 10 classes + 4 ring
		"Duato":     7,  // 2 escape + 1 adaptive + 4 ring
		"Duato-Pbc": 24, // 19 escape + 1 adaptive + 4 ring
		"Duato-Nbc": 15, // 10 escape + 1 adaptive + 4 ring
	}
	for name, wantMin := range want {
		got, err := MinVCs(name, m)
		if err != nil {
			t.Fatal(err)
		}
		if got != wantMin {
			t.Errorf("MinVCs(%s) = %d, want %d", name, got, wantMin)
		}
	}
}

func TestMustNewPanicsOnError(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustNew did not panic")
		}
	}()
	MustNew("bogus", fault.None(mesh10()), 24)
}

// walk drives a lone message through the network, always taking the
// first candidate of the best tier (what an uncontended network
// grants). It fails the test if the message gets stuck, leaves the
// healthy mesh, exceeds the hop bound, or uses an out-of-range VC.
func walk(t *testing.T, f *fault.Model, alg core.Algorithm, src, dst topology.NodeID, rng *rand.Rand) int {
	t.Helper()
	m := core.NewMessage(1, src, dst, 1)
	alg.InitMessage(m)
	mesh := f.Topo
	cur := src
	bound := 8 * mesh.Diameter()
	var cands core.CandidateSet
	for steps := 0; cur != dst; steps++ {
		if steps > bound {
			t.Fatalf("%s: %v->%v: no arrival after %d hops (at %v)",
				alg.Name(), mesh.CoordOf(src), mesh.CoordOf(dst), bound, mesh.CoordOf(cur))
		}
		cands.Reset()
		alg.Candidates(m, cur, &cands)
		var ch core.Channel
		found := false
		for tier := 0; tier < core.MaxTiers && !found; tier++ {
			if tc := cands.Tier(tier); len(tc) > 0 {
				if rng != nil {
					ch = tc[rng.Intn(len(tc))]
				} else {
					ch = tc[0]
				}
				found = true
			}
		}
		if !found {
			t.Fatalf("%s: %v->%v stuck at %v after %d hops",
				alg.Name(), mesh.CoordOf(src), mesh.CoordOf(dst), mesh.CoordOf(cur), steps)
		}
		if int(ch.VC) >= alg.NumVCs() {
			t.Fatalf("%s: out-of-range VC %d", alg.Name(), ch.VC)
		}
		next := mesh.NeighborID(cur, ch.Dir)
		if next == topology.Invalid {
			t.Fatalf("%s: walked off-mesh from %v", alg.Name(), mesh.CoordOf(cur))
		}
		if f.IsFaulty(next) {
			t.Fatalf("%s: walked into faulty node %v", alg.Name(), mesh.CoordOf(next))
		}
		alg.Advance(m, cur, ch)
		cur = next
	}
	return int(m.Hops)
}

// TestAllPairsReachability is the central safety property: with every
// algorithm and several representative fault patterns, every healthy
// (src, dst) pair is reachable within the hop bound.
func TestAllPairsReachability(t *testing.T) {
	patterns := map[string]*fault.Model{
		"fault-free":    fault.None(mesh10()),
		"central-block": centralBlock(t),
		"boundary-chain": modelWith(t, mesh10(),
			topology.Coord{X: 0, Y: 4}, topology.Coord{X: 1, Y: 4}, topology.Coord{X: 0, Y: 5}),
		"overlapping-rings": modelWith(t, mesh10(),
			topology.Coord{X: 2, Y: 3}, topology.Coord{X: 2, Y: 4}, topology.Coord{X: 3, Y: 3},
			topology.Coord{X: 3, Y: 4}, topology.Coord{X: 5, Y: 4}, topology.Coord{X: 7, Y: 4}),
		"corner": modelWith(t, mesh10(),
			topology.Coord{X: 9, Y: 9}, topology.Coord{X: 8, Y: 9}),
	}
	for patName, f := range patterns {
		healthy := f.HealthyNodes()
		for _, algName := range AlgorithmNames {
			alg := MustNew(algName, f, 24)
			t.Run(patName+"/"+algName, func(t *testing.T) {
				for _, src := range healthy {
					for _, dst := range healthy {
						if src != dst {
							walk(t, f, alg, src, dst, nil)
						}
					}
				}
			})
		}
	}
}

// TestRandomChoiceReachability repeats the walk taking random
// candidates within the winning tier, covering the adaptive spread.
func TestRandomChoiceReachability(t *testing.T) {
	f := centralBlock(t)
	healthy := f.HealthyNodes()
	rng := rand.New(rand.NewSource(99))
	for _, algName := range AlgorithmNames {
		alg := MustNew(algName, f, 24)
		for trial := 0; trial < 300; trial++ {
			src := healthy[rng.Intn(len(healthy))]
			dst := healthy[rng.Intn(len(healthy))]
			if src != dst {
				walk(t, f, alg, src, dst, rng)
			}
		}
	}
}

// TestReachabilityOnRandomPatterns fuzzes fault patterns at the
// paper's 10% level.
func TestReachabilityOnRandomPatterns(t *testing.T) {
	if testing.Short() {
		t.Skip("long fuzz")
	}
	for seed := int64(1); seed <= 8; seed++ {
		f, err := fault.Generate(mesh10(), 10, rand.New(rand.NewSource(seed)), fault.Options{})
		if err != nil {
			t.Fatal(err)
		}
		healthy := f.HealthyNodes()
		rng := rand.New(rand.NewSource(seed * 7))
		for _, algName := range AlgorithmNames {
			alg := MustNew(algName, f, 24)
			for trial := 0; trial < 150; trial++ {
				src := healthy[rng.Intn(len(healthy))]
				dst := healthy[rng.Intn(len(healthy))]
				if src != dst {
					walk(t, f, alg, src, dst, rng)
				}
			}
		}
	}
}

// TestReachabilityOnNamedPatterns runs the walk property over the
// canned pattern library, including the double-wall corridor that
// forces long multi-ring detours.
func TestReachabilityOnNamedPatterns(t *testing.T) {
	m := mesh10()
	for _, patName := range fault.PatternNames() {
		ids, err := fault.NamedPattern(patName, m)
		if err != nil {
			t.Fatal(err)
		}
		f, err := fault.New(m, ids)
		if err != nil {
			t.Fatalf("%s: %v", patName, err)
		}
		healthy := f.HealthyNodes()
		rng := rand.New(rand.NewSource(31))
		for _, algName := range AlgorithmNames {
			alg := MustNew(algName, f, 24)
			for trial := 0; trial < 120; trial++ {
				src := healthy[rng.Intn(len(healthy))]
				dst := healthy[rng.Intn(len(healthy))]
				if src != dst {
					walk(t, f, alg, src, dst, rng)
				}
			}
		}
	}
}

func TestFaultFreeWalksAreMinimal(t *testing.T) {
	f := fault.None(mesh10())
	mesh := f.Topo
	rng := rand.New(rand.NewSource(3))
	for _, algName := range AlgorithmNames {
		if algName == "Fully-Adaptive" {
			continue // may misroute by design (not in uncontended walks, but keep exact check minimal-only)
		}
		alg := MustNew(algName, f, 24)
		for trial := 0; trial < 200; trial++ {
			src := topology.NodeID(rng.Intn(mesh.NodeCount()))
			dst := topology.NodeID(rng.Intn(mesh.NodeCount()))
			if src == dst {
				continue
			}
			hops := walk(t, f, alg, src, dst, rng)
			if want := mesh.Distance(mesh.CoordOf(src), mesh.CoordOf(dst)); hops != want {
				t.Fatalf("%s: %v->%v took %d hops, minimal is %d", algName,
					mesh.CoordOf(src), mesh.CoordOf(dst), hops, want)
			}
		}
	}
}
