package routing

import (
	"math/rand"
	"testing"

	"wormmesh/internal/core"
	"wormmesh/internal/fault"
	"wormmesh/internal/topology"
)

func TestCheckReachabilityReportsStats(t *testing.T) {
	f := centralBlock(t)
	alg := MustNew("Nbc", f, 24)
	res, err := CheckReachability(f, alg, nil)
	if err != nil {
		t.Fatal(err)
	}
	healthy := len(f.HealthyNodes())
	if res.Pairs != healthy*(healthy-1) {
		t.Errorf("pairs = %d, want %d", res.Pairs, healthy*(healthy-1))
	}
	if res.Detoured == 0 {
		t.Error("central block caused no detours")
	}
	if res.MaxHops <= f.Mesh.Diameter()/2 {
		t.Errorf("max hops %d implausibly small", res.MaxHops)
	}
	if _, err := CheckReachability(f, alg, rand.New(rand.NewSource(1))); err != nil {
		t.Errorf("random-choice pass: %v", err)
	}
}

func TestCheckReachabilityCatchesBrokenAlgorithm(t *testing.T) {
	f := fault.None(topology.New(4, 4))
	// An algorithm that never offers candidates must be reported as
	// stuck, not loop forever.
	if _, err := CheckReachability(f, stuckAfterInit{}, nil); err == nil {
		t.Fatal("broken algorithm passed the check")
	}
}

type stuckAfterInit struct{}

func (stuckAfterInit) Name() string                { return "stuck" }
func (stuckAfterInit) NumVCs() int                 { return 1 }
func (stuckAfterInit) InitMessage(m *core.Message) {}
func (stuckAfterInit) Candidates(m *core.Message, node topology.NodeID, out *core.CandidateSet) {
}
func (stuckAfterInit) Advance(m *core.Message, from topology.NodeID, ch core.Channel) {}
