package routing

import (
	"math/rand"
	"testing"

	"wormmesh/internal/core"
	"wormmesh/internal/fault"
	"wormmesh/internal/topology"
)

func TestCheckReachabilityReportsStats(t *testing.T) {
	f := centralBlock(t)
	alg := MustNew("Nbc", f, 24)
	res, err := CheckReachability(f, alg, nil)
	if err != nil {
		t.Fatal(err)
	}
	healthy := len(f.HealthyNodes())
	if res.Pairs != healthy*(healthy-1) {
		t.Errorf("pairs = %d, want %d", res.Pairs, healthy*(healthy-1))
	}
	if res.Detoured == 0 {
		t.Error("central block caused no detours")
	}
	if res.MaxHops <= f.Topo.Diameter()/2 {
		t.Errorf("max hops %d implausibly small", res.MaxHops)
	}
	if _, err := CheckReachability(f, alg, rand.New(rand.NewSource(1))); err != nil {
		t.Errorf("random-choice pass: %v", err)
	}
}

func TestCheckReachabilityCatchesBrokenAlgorithm(t *testing.T) {
	f := fault.None(topology.New(4, 4))
	// An algorithm that never offers candidates must be reported as
	// stuck, not loop forever.
	if _, err := CheckReachability(f, stuckAfterInit{}, nil); err == nil {
		t.Fatal("broken algorithm passed the check")
	}
}

func TestCheckChannelDAGTorusRoster(t *testing.T) {
	torus := topology.NewTorus(8, 8)
	f := fault.None(torus)
	for _, name := range TorusAlgorithmNames(torus) {
		alg := MustNew(name, f, 24)
		res, err := CheckChannelDAG(f, alg)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if res.Channels == 0 {
			t.Errorf("%s: no channels recorded", name)
		}
		if res.WrapChannels == 0 {
			t.Errorf("%s: no wrap channels recorded on a fault-free torus", name)
		}
	}
}

func TestCheckChannelDAGMeshVacuous(t *testing.T) {
	f := centralBlock(t)
	alg := MustNew("PHop", f, 24)
	res, err := CheckChannelDAG(f, alg)
	if err != nil {
		t.Fatal(err)
	}
	if res.WrapChannels != 0 {
		t.Errorf("mesh reported %d wrap channels", res.WrapChannels)
	}
	if res.Channels == 0 || res.Edges == 0 {
		t.Errorf("mesh PHop recorded %d channels, %d forced deps; want both > 0", res.Channels, res.Edges)
	}
}

// undatelinedXY routes dimension-order on the torus taking minimal
// (possibly wrap) hops but keeps every message on VC 0: the textbook
// broken discipline whose forced dependencies close a wait cycle all
// the way around each wrap ring.
type undatelinedXY struct{ topo topology.Topology }

func (undatelinedXY) Name() string                { return "undatelined-xy" }
func (undatelinedXY) NumVCs() int                 { return 1 }
func (undatelinedXY) InitMessage(m *core.Message) {}
func (a undatelinedXY) Candidates(m *core.Message, node topology.NodeID, out *core.CandidateSet) {
	cur := a.topo.CoordOf(node)
	dst := a.topo.CoordOf(m.Dst)
	for dim := 0; dim < 2; dim++ {
		if d, ok := a.topo.DirTowards(cur, dst, dim); ok {
			out.Add(0, core.Channel{Dir: d, VC: 0})
			return
		}
	}
}
func (undatelinedXY) Advance(m *core.Message, from topology.NodeID, ch core.Channel) {
	m.Hops++
}

func TestCheckChannelDAGCatchesUndatelinedTorus(t *testing.T) {
	torus := topology.NewTorus(6, 6)
	f := fault.None(torus)
	if _, err := CheckChannelDAG(f, undatelinedXY{topo: torus}); err == nil {
		t.Fatal("undatelined single-VC torus discipline passed the wrap-cycle check")
	}
	// The same discipline on the mesh is plain deadlock-free XY and has
	// no wrap links to cycle through.
	mesh := fault.None(topology.New(6, 6))
	if _, err := CheckChannelDAG(mesh, undatelinedXY{topo: topology.New(6, 6)}); err != nil {
		t.Errorf("XY on the mesh flagged: %v", err)
	}
}

type stuckAfterInit struct{}

func (stuckAfterInit) Name() string                { return "stuck" }
func (stuckAfterInit) NumVCs() int                 { return 1 }
func (stuckAfterInit) InitMessage(m *core.Message) {}
func (stuckAfterInit) Candidates(m *core.Message, node topology.NodeID, out *core.CandidateSet) {
}
func (stuckAfterInit) Advance(m *core.Message, from topology.NodeID, ch core.Channel) {}
