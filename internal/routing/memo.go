package routing

import (
	"wormmesh/internal/core"
	"wormmesh/internal/fault"
	"wormmesh/internal/topology"
)

// Static-fault routing memoization.
//
// A fault.Model is immutable for the lifetime of a run, so everything
// the Boppana–Chalasani wrapper derives from it — canProgress,
// blockingRing, the orientation scans of chooseOrientation, ringStep
// successors and dirBetween — is a pure function of (node, dst) or
// (ring, position, orientation). bcMemo precomputes those functions
// into flat tables at construction time, turning the wrapper's
// header-cycle work into table lookups plus the existing fault filter.
//
// The cache MUST reproduce bit-identical candidate ordering: the
// engine's RNG tie-breaking indexes into the candidate list, so a
// reordered (even if set-equal) candidate list changes every
// downstream arbitration draw and breaks the golden Stats contract
// (DESIGN.md §4.2). Each fast path below therefore mirrors its slow
// counterpart exactly, and the equivalence is locked in by
// internal/sim's cached-vs-uncached golden tests across all registered
// algorithms. DebugNoCache is the escape hatch those tests use.
//
// Memory: the per-(node, dst) table is nodeCount² entries. Meshes up
// to eagerMemoNodes nodes (the paper's 10×10 = 10 000 entries,
// ~200 KB) are built eagerly at construction; larger meshes allocate
// and fill one source-node row on first use, so memory follows the
// set of nodes that actually route headers. Each wrapper instance
// (including per-worker parallel clones) owns its own memo, so lazy
// fills never race.

// DebugNoCache, when set before algorithm construction, disables the
// static-fault memoization tables: wrappers built while it is true
// route through the original scanning code paths. It exists for the
// cached-vs-uncached equivalence tests and for bisecting suspected
// cache bugs; it is read at construction time only, so flipping it
// never affects algorithms that already exist.
var DebugNoCache bool

// eagerMemoNodes is the mesh size (in nodes) up to which the
// per-(node, dst) table is fully built at construction. Above it, rows
// are filled lazily per source node.
const eagerMemoNodes = 256

// progEntry memoizes the static routing facts for one (node, dst)
// pair.
type progEntry struct {
	// nbX / nbY are the healthy minimal neighbors of node towards dst
	// in the X and Y dimensions; Invalid when the dimension has no
	// offset or its minimal neighbor is faulty. canProgress(node, dst,
	// except) reduces to (nbX valid && nbX != except) || (nbY valid &&
	// nbY != except).
	nbX, nbY topology.NodeID
	// ring is blockingRing(node, dst): the f-ring index around the
	// region holding the first faulty minimal neighbor (X dimension
	// first), -1 when no minimal neighbor is faulty.
	ring int16
	// cwSteps / ccwSteps are chooseOrientation's bidirectional scan
	// results for (ring, node, dst): the ring distance to the nearest
	// exit in each orientation, -1 when none. The final orientation
	// also depends on the message's direction class (the tie default),
	// folded in by orientFromScans at query time.
	cwSteps, ccwSteps int16
	// dX / dY are the minimal directions per dimension (only
	// meaningful when the corresponding neighbor field is valid).
	dX, dY topology.Direction
}

// ringMemo holds the per-ring successor tables: next[o][p] is the ring
// node after position p in orientation o (cwIdx), Invalid at a chain
// end, and dir[o][p] is the hop direction to it — ringStep plus
// dirBetween as two array loads.
type ringMemo struct {
	ring *fault.Ring
	next [2][]topology.NodeID
	dir  [2][]topology.Direction
}

// cwIdx maps an orientation to its table index.
func cwIdx(cw bool) int {
	if cw {
		return 1
	}
	return 0
}

// bcMemo is the per-wrapper static-fault cache.
type bcMemo struct {
	w *bcWrapper

	// nbr folds the mesh and the fault model into one flat neighbor
	// table: nbr[node*NumDirs+dir] is the neighbor, or Invalid when the
	// link leaves the mesh or ends at a faulty node (mirrors
	// core.Network's table; rebuilt per algorithm because routing
	// cannot reach into the engine).
	nbr []topology.NodeID
	// allHealthy[node] marks nodes whose every in-mesh neighbor is
	// healthy: the fault filter keeps everything a base emits there
	// (bases only emit in-mesh directions), so Candidates may skip the
	// filter pass entirely — an identity rewrite, hence bit-identical.
	allHealthy []bool

	// rows[node] is the per-destination progEntry row, nil until
	// filled (all rows are filled at construction for meshes up to
	// eagerMemoNodes nodes).
	rows [][]progEntry

	rings []ringMemo
}

// initMemo builds the wrapper's memoization tables unless DebugNoCache
// is set. Must run after the wrapper's ring-channel layout is final.
func (w *bcWrapper) initMemo() {
	if DebugNoCache {
		return
	}
	mesh := w.mesh
	nodes := mesh.NodeCount()
	mm := &bcMemo{
		w:          w,
		nbr:        make([]topology.NodeID, nodes*topology.NumDirs),
		allHealthy: make([]bool, nodes),
		rows:       make([][]progEntry, nodes),
		rings:      make([]ringMemo, len(w.faults.Rings())),
	}
	for i := 0; i < nodes; i++ {
		id := topology.NodeID(i)
		all := true
		for d := topology.Direction(0); d < topology.NumDirs; d++ {
			nb := mesh.NeighborID(id, d)
			if nb != topology.Invalid && w.faults.IsFaulty(nb) {
				nb = topology.Invalid
				all = false
			}
			mm.nbr[i*topology.NumDirs+int(d)] = nb
		}
		mm.allHealthy[i] = all
	}
	for ri, ring := range w.faults.Rings() {
		rm := &mm.rings[ri]
		rm.ring = ring
		n := ring.Len()
		for _, cw := range []bool{false, true} {
			o := cwIdx(cw)
			rm.next[o] = make([]topology.NodeID, n)
			rm.dir[o] = make([]topology.Direction, n)
			for p, id := range ring.Nodes {
				nx, ok := ring.Next(id, cw)
				if !ok {
					rm.next[o][p] = topology.Invalid
					continue
				}
				rm.next[o][p] = nx
				rm.dir[o][p] = w.dirBetween(id, nx)
			}
		}
	}
	w.memo = mm
	if nodes <= eagerMemoNodes {
		for i := 0; i < nodes; i++ {
			mm.fillRow(topology.NodeID(i))
		}
	}
}

// entry returns the memoized facts for (node, dst), filling the
// node's row on first use for lazily built meshes.
func (mm *bcMemo) entry(node, dst topology.NodeID) *progEntry {
	row := mm.rows[node]
	if row == nil {
		row = mm.fillRow(node)
	}
	return &row[dst]
}

// fillRow computes the full per-destination row of one source node by
// evaluating the original scanning implementations eagerly — the same
// code the slow path runs, so the stored facts cannot drift from it.
func (mm *bcMemo) fillRow(node topology.NodeID) []progEntry {
	w := mm.w
	nodes := w.mesh.NodeCount()
	row := make([]progEntry, nodes)
	cur := w.mesh.CoordOf(node)
	for d := 0; d < nodes; d++ {
		dst := topology.NodeID(d)
		e := &row[d]
		e.nbX, e.nbY = topology.Invalid, topology.Invalid
		e.ring = -1
		dc := w.mesh.CoordOf(dst)
		for dim := 0; dim < 2; dim++ {
			dir, ok := w.mesh.DirTowards(cur, dc, dim)
			if !ok {
				continue
			}
			nb := w.mesh.NeighborID(node, dir)
			if dim == 0 {
				e.dX = dir
			} else {
				e.dY = dir
			}
			if nb == topology.Invalid {
				continue
			}
			if !w.faults.IsFaulty(nb) {
				if dim == 0 {
					e.nbX = nb
				} else {
					e.nbY = nb
				}
			} else if e.ring < 0 {
				// blockingRing: the region containing the FIRST faulty
				// minimal neighbor, X dimension checked first.
				e.ring = int16(w.faults.RegionIndex(nb))
			}
		}
		if e.ring >= 0 {
			ring := w.faults.Rings()[e.ring]
			e.cwSteps = int16(w.orientScan(ring, node, dst, true))
			e.ccwSteps = int16(w.orientScan(ring, node, dst, false))
		}
	}
	mm.rows[node] = row
	return row
}

// canProgressMemo is the memoized canProgress: some minimal direction
// leads to a healthy neighbor other than except.
func (e *progEntry) canProgressMemo(except topology.NodeID) bool {
	return (e.nbX != topology.Invalid && e.nbX != except) ||
		(e.nbY != topology.Invalid && e.nbY != except)
}

// orientFromScans combines the stored bidirectional scan results into
// the final orientation, reproducing chooseOrientation's decision
// switch exactly (including the per-class tie default).
func orientFromScans(cwSteps, ccwSteps int16, class core.DirClass) bool {
	switch {
	case cwSteps < 0 && ccwSteps < 0:
		return defaultCW(class)
	case cwSteps < 0:
		return false
	case ccwSteps < 0:
		return true
	case cwSteps < ccwSteps:
		return true
	case ccwSteps < cwSteps:
		return false
	default:
		return defaultCW(class)
	}
}
