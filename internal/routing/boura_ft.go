package routing

import (
	"wormmesh/internal/core"
	"wormmesh/internal/fault"
	"wormmesh/internal/topology"
)

// Boura and Das's fault-tolerant routing (ICPP'95) is approximated as
// three cooperating pieces (see DESIGN.md §2):
//
//   - the node labeling, which under the block fault model coincides
//     with block convexification (fault.Model.IsUnsafe documents the
//     equivalence): deactivated nodes are non-routable;
//   - an adaptive discipline over two virtual subnetworks (north- and
//     south-bound messages) with a strict-XY escape class restoring
//     deadlock freedom on fault-free stretches (Duato's extended-class
//     argument);
//   - detours around fault regions along the region boundary — the
//     only way past a rectangular obstacle in a mesh — taken on the
//     message's own subnetwork channels rather than on a reserved
//     ring-channel set, which is the operational difference from the
//     Boppana–Chalasani scheme.
//
// The boundary traversal reuses the bcWrapper machinery with its
// ringVCsFor hook pointing at the subnet channels.
type bouraEscapeBase struct {
	inner *bouraAdaptive
	mesh  topology.Topology
	escLo int
	escHi int
}

func (b *bouraEscapeBase) name() string         { return "Boura-FT" }
func (b *bouraEscapeBase) init(m *core.Message) { b.inner.init(m) }
func (b *bouraEscapeBase) numVCs() int {
	n := b.inner.numVCs()
	if b.escHi+1 > n {
		n = b.escHi + 1
	}
	return n
}

func (b *bouraEscapeBase) candidates(m *core.Message, node topology.NodeID, out *core.CandidateSet, tier int) {
	b.inner.candidates(m, node, out, tier)
	if tier+1 >= core.MaxTiers {
		return
	}
	// Strict dimension-order escape: X before Y.
	cur, dst := b.mesh.CoordOf(node), b.mesh.CoordOf(m.Dst)
	d, ok := topology.DirTowards(cur, dst, 0)
	if !ok {
		d, ok = topology.DirTowards(cur, dst, 1)
	}
	if ok {
		out.AddVCs(tier+1, d, b.escLo, b.escHi)
	}
}

func (b *bouraEscapeBase) advance(m *core.Message, from topology.NodeID, ch core.Channel) {
	if !topology.IsMinimal(b.mesh.CoordOf(from), b.mesh.CoordOf(m.Dst), ch.Dir) {
		m.Misroutes++
	}
	advanceCommon(b.mesh, m, from, ch)
}

// newBouraFT assembles the full fault-tolerant algorithm: the subnet +
// escape base, fortified with region-boundary traversal on the subnet
// channels.
func newBouraFT(faults *fault.Model, posLo, posHi, negLo, negHi, escLo, escHi int) core.Algorithm {
	inner := &bouraEscapeBase{
		inner: newBouraAdaptive(faults.Topo, posLo, posHi, negLo, negHi),
		mesh:  faults.Topo,
		escLo: escLo,
		escHi: escHi,
	}
	w := &bcWrapper{inner: inner, faults: faults, mesh: faults.Topo}
	w.ringVCsFor = func(m *core.Message, node topology.NodeID) []uint8 {
		lo, hi := inner.inner.subnetRange(m, node)
		w.vcBuf = w.vcBuf[:0]
		for vc := lo; vc <= hi; vc++ {
			w.vcBuf = append(w.vcBuf, uint8(vc))
		}
		return w.vcBuf
	}
	// Cached-path ring rows: one per virtual subnetwork, selected by
	// the same remaining-Y-offset rule subnetRange applies, so the
	// interned slices carry exactly the channels ringVCsFor would
	// rebuild per call.
	mesh := faults.Topo
	w.ringRows = make([][topology.NumDirs][]core.Channel, 2)
	ranges := [2][2]int{{posLo, posHi}, {negLo, negHi}}
	for row, r := range ranges {
		for d := topology.Direction(0); d < topology.NumDirs; d++ {
			chs := make([]core.Channel, 0, r[1]-r[0]+1)
			for vc := r[0]; vc <= r[1]; vc++ {
				chs = append(chs, core.Channel{Dir: d, VC: uint8(vc)})
			}
			w.ringRows[row][d] = chs
		}
	}
	w.ringRowFor = func(m *core.Message, node topology.NodeID) int {
		cur, dst := mesh.CoordOf(node), mesh.CoordOf(m.Dst)
		switch {
		case dst.Y > cur.Y:
			return 0
		case dst.Y < cur.Y:
			return 1
		default:
			return int(m.Subnet)
		}
	}
	w.initMemo()
	return w
}
