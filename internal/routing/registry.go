package routing

import (
	"fmt"

	"wormmesh/internal/core"
	"wormmesh/internal/fault"
	"wormmesh/internal/topology"
)

// AlgorithmNames lists the paper's eleven evaluated configurations
// (ten algorithms, with Boura's scheme appearing in both its adaptive
// and fault-tolerant forms) in the order the figures use.
var AlgorithmNames = []string{
	"PHop",
	"NHop",
	"Pbc",
	"Nbc",
	"Duato",
	"Duato-Pbc",
	"Duato-Nbc",
	"Minimal-Adaptive",
	"Fully-Adaptive",
	"Boura-Adaptive",
	"Boura-FT",
}

// Describe returns a one-line description of an algorithm name.
func Describe(name string) string {
	switch name {
	case "PHop":
		return "Positive-Hop: buffer class = hops taken, diameter+1 classes"
	case "NHop":
		return "Negative-Hop: buffer class = negative hops taken, 1+diameter/2 classes"
	case "Pbc":
		return "PHop with bonus cards (diameter - path length)"
	case "Nbc":
		return "NHop with bonus cards (max - required negative hops)"
	case "Duato":
		return "Duato's methodology: adaptive class I over an e-cube escape"
	case "Duato-Pbc":
		return "Duato's methodology with Pbc as the class-II escape"
	case "Duato-Nbc":
		return "Duato's methodology with Nbc as the class-II escape"
	case "Minimal-Adaptive":
		return "any minimal direction, any virtual channel, no supervision"
	case "Fully-Adaptive":
		return "minimal preferred, at most 10 misroutes when blocked"
	case "Boura-Adaptive":
		return "Boura-Das adaptive two-subnetwork discipline (BC-fortified)"
	case "Boura-FT":
		return "Boura-Das fault-tolerant routing via node labeling (no BC)"
	}
	return ""
}

// SupportsTopology reports whether the named algorithm is enabled on
// the given topology, with an error explaining any rejection. Every
// algorithm runs on the mesh. On the torus the roster is restricted to
// the configurations whose deadlock-freedom argument survives wrap
// links:
//
//   - PHop and Pbc hold on any torus: the positive-hop class ladder
//     strictly increases per hop and minimal paths (≤ diameter hops)
//     never exhaust diameter+1 classes, so the class clamp never binds
//     and the channel-dependency graph is stratified by class
//     regardless of wrap links.
//   - NHop, Nbc and Duato-Nbc additionally need both dimensions even:
//     the negative-hop argument counts color 1→0 hops under the
//     checkerboard coloring, which is a proper 2-coloring across the
//     wrap edge only for even cycles.
//   - Duato and Duato-Pbc hold because Duato's methodology only needs
//     a connected deadlock-free escape: the dateline e-cube (or the
//     Pbc ladder) provides one on the torus.
//   - Minimal-Adaptive and Fully-Adaptive are unsupervised: on a mesh
//     they are deadlock-prone in theory yet benchmarkable, but on a
//     torus the wrap cycles make deadlock routine, so they are
//     rejected rather than run with watchdog kills.
//   - Boura-Adaptive and Boura-FT partition traffic by Y offset sign;
//     "north of" is not well defined on a Y-cycle, so the scheme is
//     mesh-only.
func SupportsTopology(name string, t topology.Topology) error {
	if _, err := MinVCs(name, t); err != nil {
		return err
	}
	if t.Kind() != "torus" {
		return nil
	}
	switch name {
	case "PHop", "Pbc", "Duato", "Duato-Pbc":
		return nil
	case "NHop", "Nbc", "Duato-Nbc":
		if t.Width()%2 != 0 || t.Height()%2 != 0 {
			return fmt.Errorf("routing: %s needs even torus dimensions (checkerboard coloring), got %v", name, t)
		}
		return nil
	case "Minimal-Adaptive", "Fully-Adaptive":
		return fmt.Errorf("routing: %s is not deadlock-free over torus wrap links", name)
	case "Boura-Adaptive", "Boura-FT":
		return fmt.Errorf("routing: %s partitions traffic by Y direction and is mesh-only", name)
	}
	return fmt.Errorf("routing: unknown algorithm %q", name)
}

// TorusAlgorithmNames lists the algorithms enabled on the given torus
// in the paper's order.
func TorusAlgorithmNames(t topology.Topology) []string {
	var names []string
	for _, name := range AlgorithmNames {
		if SupportsTopology(name, t) == nil {
			names = append(names, name)
		}
	}
	return names
}

// MinVCs returns the smallest per-physical-channel virtual channel
// count the named algorithm supports on the given topology, including
// the Boppana–Chalasani ring channels where applicable.
func MinVCs(name string, mesh topology.Topology) (int, error) {
	d := mesh.Diameter()
	phop := d + 1
	nhop := 1 + d/2
	switch name {
	case "PHop", "Pbc":
		return phop + 4, nil
	case "NHop", "Nbc":
		return nhop + 4, nil
	case "Duato":
		return 2 + 1 + 4, nil // e-cube escape pair + 1 adaptive + ring set
	case "Duato-Pbc":
		return phop + 1 + 4, nil
	case "Duato-Nbc":
		return nhop + 1 + 4, nil
	case "Minimal-Adaptive", "Fully-Adaptive":
		return 1 + 4, nil
	case "Boura-Adaptive":
		return 2 + 4, nil
	case "Boura-FT":
		return 2 + 2, nil // two subnets + escape pair
	}
	return 0, fmt.Errorf("routing: unknown algorithm %q", name)
}

// New builds the named algorithm over the fault model with numVCs
// virtual channels per physical channel, reproducing the paper's
// layouts (24 VCs on the 10×10 mesh): every configuration reserves its
// required escape/class channels and the BC scheme's four ring
// channels, with all surplus going where the paper assigns it.
func New(name string, f *fault.Model, numVCs int) (core.Algorithm, error) {
	mesh := f.Topo
	if err := SupportsTopology(name, mesh); err != nil {
		return nil, err
	}
	minV, err := MinVCs(name, mesh)
	if err != nil {
		return nil, err
	}
	if numVCs < minV {
		return nil, fmt.Errorf("routing: %s needs >= %d VCs on %v, got %d", name, minV, mesh, numVCs)
	}
	d := mesh.Diameter()
	phopClasses := d + 1
	nhopClasses := 1 + d/2
	v := numVCs
	switch name {
	case "PHop", "Pbc":
		// One VC per class; every leftover channel joins the ring set
		// (the paper's PHop uses 19 classes + "four additional virtual
		// channels … 24 virtual channels with overlapping f-rings").
		inner := newHopScheme(mesh, name, false, name == "Pbc", phopClasses, 1, 0)
		return fortify(inner, f, phopClasses, v-1), nil
	case "NHop", "Nbc":
		// The paper gives NHop classes of two virtual channels each.
		vpc := (v - 4) / nhopClasses
		if vpc < 1 {
			vpc = 1
		}
		inner := newHopScheme(mesh, name, true, name == "Nbc", nhopClasses, vpc, 0)
		return fortify(inner, f, nhopClasses*vpc, v-1), nil
	case "Duato":
		escape := newECube(mesh, 0, 2)
		inner := newDuato(mesh, name, escape, 2, v-5)
		return fortify(inner, f, v-4, v-1), nil
	case "Duato-Pbc":
		// Minimal class II (one VC per Pbc class); extras to class I.
		escape := newHopScheme(mesh, "Pbc-escape", false, true, phopClasses, 1, 0)
		inner := newDuato(mesh, name, escape, phopClasses, v-5)
		return fortify(inner, f, v-4, v-1), nil
	case "Duato-Nbc":
		escape := newHopScheme(mesh, "Nbc-escape", true, true, nhopClasses, 1, 0)
		inner := newDuato(mesh, name, escape, nhopClasses, v-5)
		return fortify(inner, f, v-4, v-1), nil
	case "Minimal-Adaptive":
		inner := newMinimalAdaptive(mesh, 0, v-4)
		return fortify(inner, f, v-4, v-1), nil
	case "Fully-Adaptive":
		inner := newFullyAdaptive(mesh, 0, v-4, 10)
		return fortify(inner, f, v-4, v-1), nil
	case "Boura-Adaptive":
		half := (v - 4) / 2
		inner := newBouraAdaptive(mesh, 0, half-1, half, 2*half-1)
		return fortify(inner, f, v-4, v-1), nil
	case "Boura-FT":
		half := (v - 2) / 2
		return newBouraFT(f, 0, half-1, half, 2*half-1, 2*half, 2*half+1), nil
	}
	return nil, fmt.Errorf("routing: unknown algorithm %q", name)
}

// MustNew is New for callers with static names; it panics on error.
func MustNew(name string, f *fault.Model, numVCs int) core.Algorithm {
	alg, err := New(name, f, numVCs)
	if err != nil {
		panic(err)
	}
	return alg
}
