package routing

import (
	"errors"
	"fmt"
	"sort"

	"wormmesh/internal/core"
	"wormmesh/internal/fault"
	"wormmesh/internal/topology"
)

// ErrLoadsUnsupported marks an (algorithm, topology, fault) combination
// the route-load walk cannot model. Today that is any algorithm not
// built on the Boppana–Chalasani fortification (Boura-FT routes around
// regions with its own labeling scheme whose detours the walk does not
// reproduce). Callers gate hybrid/surrogate modes on it with errors.Is.
var ErrLoadsUnsupported = errors.New("routing: route-load analysis unsupported for this configuration")

// LoadsSupported reports whether RouteLoads can model the named
// algorithm (independent of topology and fault pattern; those are
// validated by RouteLoads itself).
func LoadsSupported(name string) bool {
	return name != "Boura-FT" && Describe(name) != ""
}

// LoadMap holds the expected per-channel traffic of one fortified
// algorithm over one fault pattern under uniform traffic, produced by
// RouteLoads. Loads are per generated message: Loads[c] is the
// probability that a message between a uniformly random healthy ordered
// pair traverses directed channel c, summed over the pair's possible
// paths. Multiplying by (message rate per node × healthy nodes ×
// message length) turns an entry into a flit utilization.
type LoadMap struct {
	Topo      topology.Topology
	Algorithm string

	// Loads is indexed by int(node)*topology.NumDirs + int(dir): the
	// expected traversals of that directed output channel per message.
	Loads []float64

	// MeanHops is the expected path length of a message, detours
	// included (equals the fault-free mean distance when no faults).
	MeanHops float64
	// RingHops is the portion of MeanHops spent on f-ring detour hops.
	RingHops float64

	// PairBottlenecks holds, for each healthy ordered (src, dst) pair in
	// src-major order, the expected per-unit-load bottleneck the pair's
	// flits serialize against: max over channels of (the pair's
	// crossing probability × the channel's global per-message load).
	// Scaling by the network flit rate gives the bottleneck utilization
	// the analytic model's stretch term needs.
	PairBottlenecks []float64

	// Healthy is the number of healthy nodes; Pairs the number of
	// healthy ordered pairs (= len(PairBottlenecks)).
	Healthy int
	Pairs   int
	// Channels is the number of directed channels between healthy
	// neighbors.
	Channels int

	// LostMass is the total path probability the walk dropped (ring
	// dead-ends, hop-budget caps); ~0 for the connected fault patterns
	// the fault package generates, and a red flag otherwise.
	LostMass float64
}

// PeakLoad returns the largest per-message channel load.
func (lm *LoadMap) PeakLoad() float64 {
	peak := 0.0
	for _, u := range lm.Loads {
		if u > peak {
			peak = u
		}
	}
	return peak
}

// RouteLoads walks every healthy source-destination pair's fortified
// candidate structure for the named algorithm and accumulates expected
// channel utilizations: in normal mode a message's probability mass
// splits uniformly over the healthy minimal directions; when minimal
// progress is blocked the mass follows the deterministic f-ring detour
// (orientation scan, chain-end reversal, drift re-detection) exactly as
// the engine routes it, so f-ring channels pick up the displaced load.
//
// numVCs is validated like a simulation run's (the walk itself is
// VC-independent, but a cell that cannot be simulated should not be
// modelable either). Unsupported algorithms return ErrLoadsUnsupported.
func RouteLoads(name string, f *fault.Model, numVCs int) (*LoadMap, error) {
	if !LoadsSupported(name) {
		return nil, fmt.Errorf("%w: algorithm %s", ErrLoadsUnsupported, name)
	}
	alg, err := New(name, f, numVCs)
	if err != nil {
		return nil, err
	}
	w, ok := alg.(*bcWrapper)
	if !ok {
		return nil, fmt.Errorf("%w: algorithm %s", ErrLoadsUnsupported, name)
	}
	topo := f.Topo
	n := topo.NodeCount()
	lm := &LoadMap{
		Topo:      topo,
		Algorithm: name,
		Loads:     make([]float64, n*int(topology.NumDirs)),
		Healthy:   f.HealthyCount(),
	}
	lm.Pairs = lm.Healthy * (lm.Healthy - 1)
	if lm.Pairs == 0 {
		return nil, fmt.Errorf("routing: no healthy pairs to route")
	}
	for id := topology.NodeID(0); int(id) < n; id++ {
		if f.IsFaulty(id) {
			continue
		}
		for d := topology.Direction(0); d < topology.NumDirs; d++ {
			if nb := topo.NeighborID(id, d); nb != topology.Invalid && !f.IsFaulty(nb) {
				lm.Channels++
			}
		}
	}

	lw := newLoadWalker(w)
	healthy := f.HealthyNodes()
	invPairs := 1 / float64(lm.Pairs)

	// Pass 1: global per-message loads, mean hops, lost mass. Iterate
	// destinations in the outer loop so the distance ordering is
	// computed once per destination.
	for _, dst := range healthy {
		lw.setDst(dst)
		for _, src := range healthy {
			if src == dst {
				continue
			}
			lw.walk(src, func(ch int, mass float64, onRing bool) {
				lm.Loads[ch] += mass * invPairs
				lm.MeanHops += mass * invPairs
				if onRing {
					lm.RingHops += mass * invPairs
				}
			})
			lm.LostMass += lw.lost * invPairs
		}
	}

	// Pass 2: per-pair bottlenecks against the now-complete global
	// loads. The walk is deterministic, so re-running it reproduces
	// pass 1's per-pair channel masses exactly.
	lm.PairBottlenecks = make([]float64, 0, lm.Pairs)
	scratch := make([]float64, len(lm.Loads))
	var touched []int
	for _, src := range healthy {
		for _, dst := range healthy {
			if src == dst {
				continue
			}
			lw.setDst(dst)
			touched = touched[:0]
			lw.walk(src, func(ch int, mass float64, onRing bool) {
				if scratch[ch] == 0 {
					touched = append(touched, ch)
				}
				scratch[ch] += mass
			})
			b := 0.0
			for _, ch := range touched {
				if u := scratch[ch] * lm.Loads[ch]; u > b {
					b = u
				}
				scratch[ch] = 0
			}
			lm.PairBottlenecks = append(lm.PairBottlenecks, b)
		}
	}
	return lm, nil
}

// loadWalker propagates one source-destination pair's probability mass
// through a bcWrapper's routing function. Normal-mode mass is merged
// per node (the decision there depends only on (node, dst)) and
// processed in decreasing distance-to-destination order; ring-mode
// traversal is deterministic and walked hop by hop. Ring exits can
// re-inject mass at nodes farther from the destination than the
// current sweep position, so the sweep repeats until no mass moves.
type loadWalker struct {
	w    *bcWrapper
	topo topology.Topology
	n    int

	dst    topology.NodeID
	class  core.DirClass // per-source; set in walk
	normal []float64     // pending normal-mode mass per node
	order  []topology.NodeID
	dirs   []topology.Direction
	lost   float64

	maxDetour int
	maxRounds int
}

// massEps is the probability mass below which a branch is dropped
// (accounted in LostMass). The uniform split halves mass per fork, so
// 1e-12 keeps ~40 forks — far beyond any minimal path on meshes this
// package targets — while bounding the sweep.
const massEps = 1e-12

func newLoadWalker(w *bcWrapper) *loadWalker {
	topo := w.mesh
	n := topo.NodeCount()
	ringLen := 0
	for _, r := range w.faults.Rings() {
		ringLen += r.Len()
	}
	return &loadWalker{
		w:         w,
		topo:      topo,
		n:         n,
		normal:    make([]float64, n),
		order:     make([]topology.NodeID, 0, n),
		maxDetour: 4*topo.Diameter() + 4*ringLen + 8,
		maxRounds: 4 + 4*len(w.faults.Rings()),
	}
}

// setDst fixes the destination and rebuilds the processing order:
// nodes sorted by decreasing minimal distance to dst (ties by ID for
// determinism).
func (lw *loadWalker) setDst(dst topology.NodeID) {
	lw.dst = dst
	lw.order = lw.order[:0]
	dc := lw.topo.CoordOf(dst)
	for id := topology.NodeID(0); int(id) < lw.n; id++ {
		lw.order = append(lw.order, id)
	}
	dist := func(id topology.NodeID) int { return lw.topo.Distance(lw.topo.CoordOf(id), dc) }
	sort.SliceStable(lw.order, func(i, j int) bool {
		di, dj := dist(lw.order[i]), dist(lw.order[j])
		if di != dj {
			return di > dj
		}
		return lw.order[i] < lw.order[j]
	})
}

// emitFunc receives one expected channel traversal: ch is the flat
// channel index (node*NumDirs+dir), mass the path probability crossing
// it, onRing whether the hop is an f-ring detour hop.
type emitFunc func(ch int, mass float64, onRing bool)

// walk propagates unit mass from src to the walker's destination,
// emitting every expected channel crossing. Residual undeliverable
// mass is left in lw.lost.
func (lw *loadWalker) walk(src topology.NodeID, emit emitFunc) {
	w, topo, dst := lw.w, lw.topo, lw.dst
	lw.class = core.ClassifyDirOn(topo, topo.CoordOf(src), topo.CoordOf(dst))
	lw.lost = 0
	lw.normal[src] = 1

	for round := 0; round < lw.maxRounds; round++ {
		moved := false
		for _, node := range lw.order {
			m := lw.normal[node]
			if m <= massEps || node == dst {
				continue
			}
			lw.normal[node] = 0
			moved = true
			if w.canProgress(node, dst, topology.Invalid) {
				lw.splitMinimal(node, topology.Invalid, m, emit)
			} else {
				lw.ringWalk(node, m, emit)
			}
		}
		if !moved {
			break
		}
	}
	// Delivered mass sits at dst; anything still pending elsewhere hit
	// the round cap.
	for id := range lw.normal {
		if topology.NodeID(id) != dst {
			lw.lost += lw.normal[id]
		}
		lw.normal[id] = 0
	}
}

// splitMinimal distributes mass uniformly over the healthy minimal
// directions out of node (excluding the ring-exit back-hop), emitting
// the crossings and queuing the mass at the neighbors.
func (lw *loadWalker) splitMinimal(node, except topology.NodeID, m float64, emit emitFunc) {
	w, topo := lw.w, lw.topo
	lw.dirs = minimalDirs(topo, node, lw.dst, lw.dirs[:0])
	kept := lw.dirs[:0]
	for _, d := range lw.dirs {
		nb := topo.NeighborID(node, d)
		if nb == topology.Invalid || nb == except || w.faults.IsFaulty(nb) {
			continue
		}
		kept = append(kept, d)
	}
	if len(kept) == 0 {
		lw.lost += m // canProgress guaranteed this cannot happen
		return
	}
	share := m / float64(len(kept))
	base := int(node) * int(topology.NumDirs)
	for _, d := range kept {
		emit(base+int(d), share, false)
		lw.normal[topo.NeighborID(node, d)] += share
	}
}

// ringWalk follows the deterministic f-ring detour from a blocked node
// until the mass exits back into normal mode (split over the healthy
// minimal non-backward directions), reaches the destination, or dies.
// It mirrors candidatesScan decision for decision: exit check with
// except=prev, drift re-detection onto a different obstacle, chain-end
// reversal inside ringStep.
func (lw *loadWalker) ringWalk(node topology.NodeID, m float64, emit emitFunc) {
	w, dst := lw.w, lw.dst
	prev := topology.Invalid
	ri := int32(-1)
	cw := false
	for steps := 0; steps < lw.maxDetour; steps++ {
		if node == dst {
			lw.normal[dst] += m
			return
		}
		if prev != topology.Invalid && w.canProgress(node, dst, prev) {
			lw.splitMinimal(node, prev, m, emit)
			return
		}
		if ri >= 0 {
			if _, onRing := w.faults.Rings()[ri].Position(node); !onRing {
				ri = -1 // drifted onto a different obstacle
			}
		}
		if ri < 0 {
			ri = w.blockingRing(node, dst)
			if ri < 0 {
				lw.lost += m
				return
			}
			cw = w.chooseOrientation(w.faults.Rings()[ri], node, dst, lw.class)
		}
		next, usedCW, ok := w.ringStep(ri, node, cw)
		if !ok {
			lw.lost += m
			return
		}
		d := w.dirBetween(node, next)
		emit(int(node)*int(topology.NumDirs)+int(d), m, true)
		prev, node, cw = node, next, usedCW
	}
	lw.lost += m
}
