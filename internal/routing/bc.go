package routing

import (
	"fmt"

	"wormmesh/internal/core"
	"wormmesh/internal/fault"
	"wormmesh/internal/topology"
)

// bcWrapper fortifies a fault-oblivious base algorithm with the
// Boppana–Chalasani fault-tolerant scheme: messages route per the base
// while minimal fault-free progress is possible; a message blocked by
// a fault region travels around that region's f-ring on dedicated ring
// virtual channels, re-entering base routing as soon as a minimal
// fault-free hop exists.
//
// Ring channels are partitioned by message direction class (WE, EW,
// NS, SN), the paper's "four additional virtual channels"; when more
// than four ring VCs are configured (PHop's 24-VC layout), the extras
// are dealt round-robin to the classes.
//
// Orientation around a ring is chosen by scanning both ways for the
// nearest ring node from which minimal progress resumes; ties and
// no-exit cases fall back to a fixed per-class default (WE/NS
// clockwise, EW/SN counter-clockwise). On an f-chain (a region
// touching the mesh boundary) a message reverses orientation at the
// chain's end.
type bcWrapper struct {
	inner   base
	mesh    topology.Topology
	faults  *fault.Model
	ringVCs [4][]uint8
	// ringVCsFor overrides the per-direction-class ring channel sets:
	// it returns the channels a message may use for its next ring hop
	// at a node. Boura's fault-tolerant scheme routes around regions
	// on its regular subnetwork channels instead of a reserved set.
	// Used by the uncached path; the cached path selects a ringRows
	// row via ringRowFor instead.
	ringVCsFor func(m *core.Message, node topology.NodeID) []uint8

	// ringRows interns the ring-channel candidate slices: one row per
	// channel-set choice (direction class by default, virtual
	// subnetwork for Boura-FT), one pre-built []core.Channel per
	// direction within the row, in the exact VC order the Add loops of
	// the uncached path produce. The cached Candidates bulk-appends
	// these slices (CandidateSet.AddMany) instead of rebuilding them
	// channel by channel every header-cycle.
	ringRows [][topology.NumDirs][]core.Channel
	// ringRowFor selects the ringRows row for a message at a node; nil
	// means the message's direction class.
	ringRowFor func(m *core.Message, node topology.NodeID) int

	// memo holds the static-fault tables (memo.go); nil when built
	// under DebugNoCache, which routes through the scanning paths.
	memo *bcMemo

	dirBuf []topology.Direction
	vcBuf  []uint8
}

// fortify wraps a base with the BC scheme using ring VC indices
// [ringLo, ringHi].
func fortify(inner base, faults *fault.Model, ringLo, ringHi int) *bcWrapper {
	if ringHi-ringLo+1 < 4 {
		panic(fmt.Sprintf("routing: BC scheme needs >= 4 ring VCs, got %d", ringHi-ringLo+1))
	}
	if inner.numVCs() > ringLo {
		panic(fmt.Sprintf("routing: base %s uses VCs up to %d, overlapping ring VCs from %d", inner.name(), inner.numVCs()-1, ringLo))
	}
	w := &bcWrapper{inner: inner, faults: faults, mesh: faults.Topo}
	for vc := ringLo; vc <= ringHi; vc++ {
		cls := (vc - ringLo) % 4
		w.ringVCs[cls] = append(w.ringVCs[cls], uint8(vc))
	}
	w.ringRows = make([][topology.NumDirs][]core.Channel, 4)
	for cls := 0; cls < 4; cls++ {
		for d := topology.Direction(0); d < topology.NumDirs; d++ {
			chs := make([]core.Channel, len(w.ringVCs[cls]))
			for i, vc := range w.ringVCs[cls] {
				chs[i] = core.Channel{Dir: d, VC: vc}
			}
			w.ringRows[cls][d] = chs
		}
	}
	w.initMemo()
	return w
}

// ringRowIdx resolves the ringRows row for a message at a node.
func (w *bcWrapper) ringRowIdx(m *core.Message, node topology.NodeID) int {
	if w.ringRowFor != nil {
		return w.ringRowFor(m, node)
	}
	return int(m.DirClass)
}

// ringChannels resolves the VC set for a ring hop.
func (w *bcWrapper) ringChannels(m *core.Message, node topology.NodeID) []uint8 {
	if w.ringVCsFor != nil {
		return w.ringVCsFor(m, node)
	}
	return w.ringVCs[m.DirClass]
}

func (w *bcWrapper) Name() string { return w.inner.name() }

func (w *bcWrapper) NumVCs() int {
	max := w.inner.numVCs()
	for _, vcs := range w.ringVCs {
		for _, vc := range vcs {
			if int(vc)+1 > max {
				max = int(vc) + 1
			}
		}
	}
	return max
}

func (w *bcWrapper) InitMessage(m *core.Message) {
	w.inner.init(m)
	m.DirClass = core.ClassifyDirOn(w.mesh, w.mesh.CoordOf(m.Src), w.mesh.CoordOf(m.Dst))
	m.RingIdx = -1
}

// canProgress reports whether some minimal direction from node leads
// to a healthy neighbor other than `except`. A message traversing an
// f-ring passes `except = m.Prev`: a minimal hop straight back to the
// node the header just left is not an exit — without this rule a
// message rings one hop, "exits" backwards into the same blockage, and
// livelocks. Pass topology.Invalid to allow every neighbor.
func (w *bcWrapper) canProgress(node, dst, except topology.NodeID) bool {
	cur, dc := w.mesh.CoordOf(node), w.mesh.CoordOf(dst)
	for dim := 0; dim < 2; dim++ {
		d, ok := w.mesh.DirTowards(cur, dc, dim)
		if !ok {
			continue
		}
		nb := w.mesh.NeighborID(node, d)
		if nb != topology.Invalid && nb != except && !w.faults.IsFaulty(nb) {
			return true
		}
	}
	return false
}

// blockingRing returns the index of the f-ring around the region that
// blocks minimal progress from node (the region containing the first
// faulty minimal neighbor, X dimension checked first).
func (w *bcWrapper) blockingRing(node, dst topology.NodeID) int32 {
	cur, dc := w.mesh.CoordOf(node), w.mesh.CoordOf(dst)
	for dim := 0; dim < 2; dim++ {
		d, ok := w.mesh.DirTowards(cur, dc, dim)
		if !ok {
			continue
		}
		nb := w.mesh.NeighborID(node, d)
		if nb == topology.Invalid || !w.faults.IsFaulty(nb) {
			continue
		}
		return w.faults.RegionIndex(nb)
	}
	return -1
}

// defaultCW is the per-class fallback orientation.
func defaultCW(c core.DirClass) bool { return c == core.WE || c == core.NS }

// chooseOrientation scans the ring both ways from node and picks the
// orientation reaching, in fewer ring hops, a node from which minimal
// progress towards dst resumes (progress that does not step back along
// the ring, mirroring the exit rule applied during traversal).
func (w *bcWrapper) chooseOrientation(ring *fault.Ring, node, dst topology.NodeID, class core.DirClass) bool {
	cwSteps := int16(w.orientScan(ring, node, dst, true))
	ccwSteps := int16(w.orientScan(ring, node, dst, false))
	return orientFromScans(cwSteps, ccwSteps, class)
}

// orientScan walks the ring from node in one orientation and returns
// the number of ring hops to the nearest node from which minimal
// progress towards dst resumes, or -1 when a chain end or a full loop
// comes first. It is chooseOrientation's scan body, shared with the
// memo builder so the cached orientation cannot drift from the
// scanning one.
func (w *bcWrapper) orientScan(ring *fault.Ring, node, dst topology.NodeID, cw bool) int {
	cur := node
	for steps := 1; steps <= ring.Len(); steps++ {
		next, ok := ring.Next(cur, cw)
		if !ok {
			return -1 // chain end before an exit
		}
		if next == node {
			return -1 // full loop, no exit
		}
		if next == dst || w.canProgress(next, dst, cur) {
			return steps
		}
		cur = next
	}
	return -1
}

// ringStep computes the next hop for a message traversing ring ri from
// node with the given orientation, reversing at a chain end. ok is
// false when the node has no ring successor at all (degenerate
// single-node chain).
func (w *bcWrapper) ringStep(ri int32, node topology.NodeID, cw bool) (next topology.NodeID, usedCW bool, ok bool) {
	ring := w.faults.Rings()[ri]
	if n, ok := ring.Next(node, cw); ok {
		return n, cw, true
	}
	if n, ok := ring.Next(node, !cw); ok {
		return n, !cw, true
	}
	return topology.Invalid, cw, false
}

// dirBetween returns the direction of the single hop from a to b
// (wrap links included: adjacency is by the topology's link set, so a
// mesh's unique matching direction and a torus wrap hop both resolve).
func (w *bcWrapper) dirBetween(a, b topology.NodeID) topology.Direction {
	for d := topology.Direction(0); d < topology.NumDirs; d++ {
		if w.mesh.NeighborID(a, d) == b {
			return d
		}
	}
	panic(fmt.Sprintf("routing: nodes %v and %v are not adjacent", w.mesh.CoordOf(a), w.mesh.CoordOf(b)))
}

func (w *bcWrapper) Candidates(m *core.Message, node topology.NodeID, out *core.CandidateSet) {
	if mm := w.memo; mm != nil {
		w.candidatesMemo(mm, m, node, out)
		return
	}
	w.candidatesScan(m, node, out)
}

// candidatesMemo is Candidates over the static-fault tables. Every
// branch mirrors candidatesScan exactly — identical candidate content
// AND ordering (see memo.go) — with the scans replaced by loads.
func (w *bcWrapper) candidatesMemo(mm *bcMemo, m *core.Message, node topology.NodeID, out *core.CandidateSet) {
	e := mm.entry(node, m.Dst)
	except := topology.Invalid
	if m.RingIdx >= 0 {
		except = m.Prev
	}
	if e.canProgressMemo(except) {
		// Normal (or ring-exiting) routing: base candidates minus any
		// channel pointing into a fault region or straight back along
		// a ring being exited. When the node's whole neighborhood is
		// healthy and no exit restriction applies the filter keeps
		// everything (bases emit only in-mesh directions), so it is
		// skipped — an identity rewrite.
		w.inner.candidates(m, node, out, 0)
		if except != topology.Invalid || !mm.allHealthy[node] {
			base := int(node) * topology.NumDirs
			out.Filter(func(ch core.Channel) bool {
				nb := mm.nbr[base+int(ch.Dir)]
				return nb != topology.Invalid && nb != except
			})
		}
		if !out.Empty() {
			return
		}
		// Restricted-base fallback: ring VCs on the healthy minimal
		// directions (X dimension first, matching minimalDirs order).
		row := &w.ringRows[w.ringRowIdx(m, node)]
		if e.nbX != topology.Invalid && e.nbX != except {
			out.AddMany(0, row[e.dX])
		}
		if e.nbY != topology.Invalid && e.nbY != except {
			out.AddMany(0, row[e.dY])
		}
		return
	}
	// Blocked by a fault: traverse (or begin traversing) the f-ring.
	ri := m.RingIdx
	var cw bool
	if ri >= 0 {
		if _, onRing := mm.rings[ri].ring.Position(node); onRing {
			cw = m.RingCW
		} else {
			ri = -1 // drifted onto a different obstacle
		}
	}
	if ri < 0 {
		if e.ring < 0 {
			return // nowhere to go; watchdog will clean up if persistent
		}
		ri = int32(e.ring)
		cw = orientFromScans(e.cwSteps, e.ccwSteps, m.DirClass)
	}
	rm := &mm.rings[ri]
	p, ok := rm.ring.Position(node)
	if !ok {
		return
	}
	o := cwIdx(cw)
	if rm.next[o][p] == topology.Invalid {
		o ^= 1 // chain end: reverse orientation
		if rm.next[o][p] == topology.Invalid {
			return // degenerate single-node chain
		}
	}
	out.AddMany(0, w.ringRows[w.ringRowIdx(m, node)][rm.dir[o][p]])
}

// candidatesScan is the original scanning implementation, kept as the
// DebugNoCache path and as the executable specification the memo
// tables are checked against.
func (w *bcWrapper) candidatesScan(m *core.Message, node topology.NodeID, out *core.CandidateSet) {
	// A message traversing a ring may not "exit" backwards to the node
	// it just left; normal messages have no such restriction.
	except := topology.Invalid
	if m.RingIdx >= 0 {
		except = m.Prev
	}
	if w.canProgress(node, m.Dst, except) {
		// Normal (or ring-exiting) routing: base candidates minus any
		// channel pointing into a fault region (or, when exiting a
		// ring, straight back along it).
		w.inner.candidates(m, node, out, 0)
		out.Filter(func(ch core.Channel) bool {
			nb := w.mesh.NeighborID(node, ch.Dir)
			return nb != topology.Invalid && nb != except && !w.faults.IsFaulty(nb)
		})
		if !out.Empty() {
			return
		}
		// A restricted base (e.g. a pure e-cube escape) can be left
		// with nothing even though a healthy minimal direction exists;
		// fall back to ring VCs on the healthy minimal directions so
		// the message is never wedged by the filter alone.
		w.dirBuf = minimalDirs(w.mesh, node, m.Dst, w.dirBuf[:0])
		for _, d := range w.dirBuf {
			nb := w.mesh.NeighborID(node, d)
			if nb == topology.Invalid || nb == except || w.faults.IsFaulty(nb) {
				continue
			}
			for _, vc := range w.ringChannels(m, node) {
				out.Add(0, core.Channel{Dir: d, VC: vc})
			}
		}
		return
	}
	// Blocked by a fault: traverse (or begin traversing) the f-ring.
	ri := m.RingIdx
	var cw bool
	if ri >= 0 {
		if _, onRing := w.faults.Rings()[ri].Position(node); onRing {
			cw = m.RingCW
		} else {
			ri = -1 // drifted onto a different obstacle
		}
	}
	if ri < 0 {
		ri = w.blockingRing(node, m.Dst)
		if ri < 0 {
			return // nowhere to go; watchdog will clean up if persistent
		}
		cw = w.chooseOrientation(w.faults.Rings()[ri], node, m.Dst, m.DirClass)
	}
	next, _, ok := w.ringStep(ri, node, cw)
	if !ok {
		return
	}
	d := w.dirBetween(node, next)
	for _, vc := range w.ringChannels(m, node) {
		out.Add(0, core.Channel{Dir: d, VC: vc})
	}
}

func (w *bcWrapper) Advance(m *core.Message, from topology.NodeID, ch core.Channel) {
	if mm := w.memo; mm != nil {
		w.advanceMemo(mm, m, from, ch)
		return
	}
	w.advanceScan(m, from, ch)
}

// advanceMemo is Advance over the static-fault tables, mirroring
// advanceScan decision for decision.
func (w *bcWrapper) advanceMemo(mm *bcMemo, m *core.Message, from topology.NodeID, ch core.Channel) {
	e := mm.entry(from, m.Dst)
	except := topology.Invalid
	if m.RingIdx >= 0 {
		except = m.Prev
	}
	if e.canProgressMemo(except) {
		m.RingIdx = -1
		w.inner.advance(m, from, ch)
		return
	}
	// Ring move: recover which ring and orientation produced it.
	target := w.mesh.NeighborID(from, ch.Dir)
	ri := m.RingIdx
	if ri >= 0 {
		if _, onRing := mm.rings[ri].ring.Position(from); !onRing {
			ri = -1
		}
	}
	if ri < 0 {
		ri = int32(e.ring)
	}
	if ri >= 0 && target != topology.Invalid {
		rm := &mm.rings[ri]
		if p, ok := rm.ring.Position(from); ok {
			if rm.next[1][p] == target {
				m.RingIdx, m.RingCW = ri, true
			} else if rm.next[0][p] == target {
				m.RingIdx, m.RingCW = ri, false
			}
		}
	}
	w.inner.advance(m, from, ch)
}

// advanceScan is the original scanning Advance (DebugNoCache path).
func (w *bcWrapper) advanceScan(m *core.Message, from topology.NodeID, ch core.Channel) {
	target := w.mesh.NeighborID(from, ch.Dir)
	except := topology.Invalid
	if m.RingIdx >= 0 {
		except = m.Prev
	}
	if w.canProgress(from, m.Dst, except) {
		m.RingIdx = -1
		w.inner.advance(m, from, ch)
		return
	}
	// Ring move: recover which ring and orientation produced it.
	ri := m.RingIdx
	if ri >= 0 {
		if _, onRing := w.faults.Rings()[ri].Position(from); !onRing {
			ri = -1
		}
	}
	if ri < 0 {
		ri = w.blockingRing(from, m.Dst)
	}
	if ri >= 0 {
		ring := w.faults.Rings()[ri]
		if n, ok := ring.Next(from, true); ok && n == target {
			m.RingIdx, m.RingCW = ri, true
		} else if n, ok := ring.Next(from, false); ok && n == target {
			m.RingIdx, m.RingCW = ri, false
		}
	}
	w.inner.advance(m, from, ch)
}
