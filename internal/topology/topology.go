// Package topology models the 2-D interconnect topologies the
// simulator runs on: the wrap-free mesh the paper evaluates and a
// wrap-around torus.
//
// Nodes are addressed by (x, y) coordinates with x ∈ [0, width) and
// y ∈ [0, height). Every node has a bidirectional physical link to each
// of its neighbors; the simulator treats each direction of a link as an
// independent physical channel (one flit per cycle each way).
//
// The Topology interface is the contract every backend satisfies (see
// DESIGN.md §4.6 for what the engine relies on): a dense node
// numbering id = y*width + x, per-node neighbor lookup by direction,
// minimal-direction computation that is non-empty and
// distance-decreasing for every distinct pair, and the dateline
// VC-class rule deterministic routing uses to stay deadlock-free on
// wrap links. Both backends are small comparable value types, so
// interface equality (`a == b`) means "same shape", and the hot paths
// of the engine can precompute dense neighbor tables once per run
// instead of calling through the interface per flit.
package topology

import "fmt"

// NodeID is a dense integer identifier for a node: id = y*width + x.
type NodeID int32

// Invalid is returned by functions that may fail to produce a node.
const Invalid NodeID = -1

// Coord is a node address in the network.
type Coord struct {
	X, Y int
}

// String renders the coordinate as "(x,y)".
func (c Coord) String() string { return fmt.Sprintf("(%d,%d)", c.X, c.Y) }

// Direction identifies one of the four network directions, or the
// local (ejection) port of a router.
type Direction uint8

// The four network directions. East is +X, West is -X, North is +Y and
// South is -Y. Local names the router's ejection port.
const (
	East Direction = iota
	West
	North
	South
	Local

	// NumDirs counts the network directions (excluding Local).
	NumDirs = 4
	// NumPorts counts all router ports: four directions plus injection.
	NumPorts = 5
	// InjectPort is the port index used for the injection queue side of
	// a router. It shares the slot that Local occupies on the output
	// side: input port 4 injects, output "port" Local ejects.
	InjectPort = 4
)

var dirNames = [...]string{"East", "West", "North", "South", "Local"}

// String returns the direction's name.
func (d Direction) String() string {
	if int(d) < len(dirNames) {
		return dirNames[d]
	}
	return fmt.Sprintf("Direction(%d)", uint8(d))
}

// Opposite returns the reverse direction. Opposite(Local) is Local.
func (d Direction) Opposite() Direction {
	switch d {
	case East:
		return West
	case West:
		return East
	case North:
		return South
	case South:
		return North
	}
	return Local
}

// Delta returns the coordinate change of one hop in direction d.
func (d Direction) Delta() (dx, dy int) {
	switch d {
	case East:
		return 1, 0
	case West:
		return -1, 0
	case North:
		return 0, 1
	case South:
		return 0, -1
	}
	return 0, 0
}

// Topology is the geometry contract between a network shape and the
// engine. Implementations must be small comparable value types (the
// engine and the fault model compare topologies with ==) and must
// guarantee:
//
//   - ID is a bijection onto [0, NodeCount) with id = y*Width + x, so
//     dense per-node and per-channel arrays index directly by NodeID
//     (the ChannelID/LinkID encodings and the worklist bitmaps depend
//     on this).
//   - NeighborID(id, d) returns Invalid exactly when no physical link
//     leaves id in direction d; when it returns n, then
//     NeighborID(n, d.Opposite()) == id (links are bidirectional).
//   - MinimalDirs returns a non-empty set for every cur != dst, and
//     every returned direction strictly decreases Distance to dst.
//   - DirTowards is deterministic and consistent along a path: after
//     hopping in the returned direction, the same dimension either
//     reports the same direction again or no direction at all. The
//     deterministic (e-cube) baseline routes dimension 0 first, then
//     dimension 1, following DirTowards.
//   - WrapClass implements the dateline rule: it returns the VC class
//     (0 or 1) a deterministic minimal path from cur to dst must use
//     in dimension dim. Topologies without wrap links always return 0;
//     topologies with wrap links must return classes under which the
//     restriction of the channel-dependency graph to any fixed class,
//     plus the one-way class-1→0 transitions at the dateline, is
//     acyclic.
type Topology interface {
	// Kind returns the backend name ("mesh" or "torus").
	Kind() string
	Width() int
	Height() int
	NodeCount() int
	// Diameter returns the maximum Distance between any two nodes.
	Diameter() int
	Contains(c Coord) bool
	// ID maps a coordinate to its node identifier; it panics on
	// coordinates outside the network (callers validate with Contains).
	ID(c Coord) NodeID
	CoordOf(id NodeID) Coord
	// Neighbor returns the node one hop from c in direction d and
	// whether that node exists.
	Neighbor(c Coord, d Direction) (Coord, bool)
	// NeighborID is Neighbor in NodeID space; Invalid when the
	// neighbor does not exist.
	NeighborID(id NodeID, d Direction) NodeID
	// Distance returns the minimal hop count between two nodes.
	Distance(a, b Coord) int
	// DirTowards returns the direction of one minimal hop along
	// dimension dim (0 = X, 1 = Y) from cur towards dst, and false
	// when cur and dst agree in that dimension.
	DirTowards(cur, dst Coord, dim int) (Direction, bool)
	// MinimalDirs appends to buf the directions that make minimal
	// progress from cur to dst and returns the extended slice.
	MinimalDirs(cur, dst Coord, buf []Direction) []Direction
	// IsMinimal reports whether moving in direction d from cur brings
	// the message closer to dst.
	IsMinimal(cur, dst Coord, d Direction) bool
	// OnBoundary reports whether c lies on an outer edge; always false
	// for boundary-free topologies.
	OnBoundary(c Coord) bool
	// Wraps reports whether the link leaving c in direction d is a
	// wrap-around link (crosses the dateline of its dimension).
	Wraps(c Coord, d Direction) bool
	// WrapClass returns the dateline VC class (0 or 1) a deterministic
	// minimal path from cur to dst uses in dimension dim: 1 while the
	// remaining path in that dimension still crosses the dateline,
	// 0 afterwards (and always 0 on wrap-free topologies).
	WrapClass(cur, dst Coord, dim int) uint8
	String() string
}

// Make constructs the named topology backend. The empty string selects
// the mesh, matching the pre-topology-flag default.
func Make(kind string, width, height int) (Topology, error) {
	switch kind {
	case "", "mesh":
		return New(width, height), nil
	case "torus":
		return NewTorus(width, height), nil
	}
	return nil, fmt.Errorf("topology: unknown kind %q (want mesh or torus)", kind)
}

// Color returns the 2-coloring label of a node (checkerboard parity).
// The negative-hop routing algorithm labels the network with this
// coloring: a hop from a node of color 1 to color 0 is a negative hop.
// On a torus the coloring is proper only when both dimensions are
// even; the registry restricts the negative-hop schemes accordingly.
func Color(c Coord) int { return (c.X + c.Y) & 1 }

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
