package topology

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewPanicsOnDegenerateMesh(t *testing.T) {
	for _, dims := range [][2]int{{1, 5}, {5, 1}, {0, 0}, {-3, 4}} {
		dims := dims
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d,%d) did not panic", dims[0], dims[1])
				}
			}()
			New(dims[0], dims[1])
		}()
	}
}

func TestMeshBasics(t *testing.T) {
	m := New(10, 10)
	if got := m.NodeCount(); got != 100 {
		t.Errorf("NodeCount = %d, want 100", got)
	}
	if got := m.Diameter(); got != 18 {
		t.Errorf("Diameter = %d, want 18", got)
	}
	r := New(4, 7)
	if got := r.NodeCount(); got != 28 {
		t.Errorf("4x7 NodeCount = %d, want 28", got)
	}
	if got := r.Diameter(); got != 9 {
		t.Errorf("4x7 Diameter = %d, want 9", got)
	}
}

func TestIDCoordRoundTrip(t *testing.T) {
	m := New(7, 5)
	for y := 0; y < 5; y++ {
		for x := 0; x < 7; x++ {
			c := Coord{X: x, Y: y}
			if got := m.CoordOf(m.ID(c)); got != c {
				t.Fatalf("round trip %v -> %v", c, got)
			}
		}
	}
	// IDs are dense and unique.
	seen := map[NodeID]bool{}
	for y := 0; y < 5; y++ {
		for x := 0; x < 7; x++ {
			id := m.ID(Coord{X: x, Y: y})
			if id < 0 || int(id) >= m.NodeCount() {
				t.Fatalf("ID %d out of range", id)
			}
			if seen[id] {
				t.Fatalf("duplicate ID %d", id)
			}
			seen[id] = true
		}
	}
}

func TestIDPanicsOutsideMesh(t *testing.T) {
	m := New(3, 3)
	defer func() {
		if recover() == nil {
			t.Error("ID outside mesh did not panic")
		}
	}()
	m.ID(Coord{X: 3, Y: 0})
}

func TestNeighbor(t *testing.T) {
	m := New(4, 4)
	tests := []struct {
		c    Coord
		d    Direction
		want Coord
		ok   bool
	}{
		{Coord{0, 0}, East, Coord{1, 0}, true},
		{Coord{0, 0}, West, Coord{}, false},
		{Coord{0, 0}, North, Coord{0, 1}, true},
		{Coord{0, 0}, South, Coord{}, false},
		{Coord{3, 3}, East, Coord{}, false},
		{Coord{3, 3}, North, Coord{}, false},
		{Coord{3, 3}, West, Coord{2, 3}, true},
		{Coord{3, 3}, South, Coord{3, 2}, true},
		{Coord{2, 1}, South, Coord{2, 0}, true},
	}
	for _, tc := range tests {
		got, ok := m.Neighbor(tc.c, tc.d)
		if ok != tc.ok || (ok && got != tc.want) {
			t.Errorf("Neighbor(%v, %v) = %v, %v; want %v, %v", tc.c, tc.d, got, ok, tc.want, tc.ok)
		}
	}
	if got := m.NeighborID(m.ID(Coord{0, 0}), West); got != Invalid {
		t.Errorf("NeighborID off-mesh = %d, want Invalid", got)
	}
}

func TestOppositeIsInvolution(t *testing.T) {
	for d := Direction(0); d < NumDirs; d++ {
		if d.Opposite().Opposite() != d {
			t.Errorf("Opposite not an involution for %v", d)
		}
		dx, dy := d.Delta()
		ox, oy := d.Opposite().Delta()
		if dx+ox != 0 || dy+oy != 0 {
			t.Errorf("%v and opposite deltas do not cancel", d)
		}
	}
	if Local.Opposite() != Local {
		t.Error("Local.Opposite() != Local")
	}
}

func TestDirectionStrings(t *testing.T) {
	want := map[Direction]string{East: "East", West: "West", North: "North", South: "South", Local: "Local"}
	for d, s := range want {
		if d.String() != s {
			t.Errorf("%d.String() = %q, want %q", d, d.String(), s)
		}
	}
	if Direction(99).String() == "" {
		t.Error("unknown direction renders empty")
	}
}

func TestDistance(t *testing.T) {
	m := New(10, 10)
	if got := m.Distance(Coord{0, 0}, Coord{9, 9}); got != 18 {
		t.Errorf("corner distance = %d, want 18", got)
	}
	if got := m.Distance(Coord{3, 4}, Coord{3, 4}); got != 0 {
		t.Errorf("self distance = %d, want 0", got)
	}
	if got := m.Distance(Coord{7, 2}, Coord{2, 8}); got != 11 {
		t.Errorf("distance = %d, want 11", got)
	}
}

func TestMinimalDirsAgainstDistance(t *testing.T) {
	m := New(6, 6)
	for a := NodeID(0); int(a) < m.NodeCount(); a++ {
		for b := NodeID(0); int(b) < m.NodeCount(); b++ {
			ca, cb := m.CoordOf(a), m.CoordOf(b)
			dirs := MinimalDirs(ca, cb, nil)
			if a == b && len(dirs) != 0 {
				t.Fatalf("MinimalDirs(%v,%v) = %v, want none", ca, cb, dirs)
			}
			for _, d := range dirs {
				next, ok := m.Neighbor(ca, d)
				if !ok {
					t.Fatalf("minimal dir %v leaves the mesh from %v", d, ca)
				}
				if m.Distance(next, cb) != m.Distance(ca, cb)-1 {
					t.Fatalf("dir %v from %v to %v does not reduce distance", d, ca, cb)
				}
				if !IsMinimal(ca, cb, d) {
					t.Fatalf("IsMinimal disagrees with MinimalDirs at %v->%v dir %v", ca, cb, d)
				}
			}
			// Every direction not returned must not reduce distance.
			for d := Direction(0); d < NumDirs; d++ {
				returned := false
				for _, md := range dirs {
					if md == d {
						returned = true
					}
				}
				if returned {
					continue
				}
				if next, ok := m.Neighbor(ca, d); ok && m.Distance(next, cb) < m.Distance(ca, cb) {
					t.Fatalf("missing minimal dir %v from %v to %v", d, ca, cb)
				}
			}
		}
	}
}

func TestDirTowards(t *testing.T) {
	if d, ok := DirTowards(Coord{1, 1}, Coord{5, 1}, 0); !ok || d != East {
		t.Errorf("DirTowards east = %v, %v", d, ok)
	}
	if d, ok := DirTowards(Coord{5, 1}, Coord{1, 1}, 0); !ok || d != West {
		t.Errorf("DirTowards west = %v, %v", d, ok)
	}
	if d, ok := DirTowards(Coord{1, 1}, Coord{1, 9}, 1); !ok || d != North {
		t.Errorf("DirTowards north = %v, %v", d, ok)
	}
	if d, ok := DirTowards(Coord{1, 9}, Coord{1, 1}, 1); !ok || d != South {
		t.Errorf("DirTowards south = %v, %v", d, ok)
	}
	if _, ok := DirTowards(Coord{1, 1}, Coord{1, 5}, 0); ok {
		t.Error("DirTowards aligned dimension reported a direction")
	}
}

func TestColorIsProper2Coloring(t *testing.T) {
	m := New(8, 5)
	for id := NodeID(0); int(id) < m.NodeCount(); id++ {
		c := m.CoordOf(id)
		for d := Direction(0); d < NumDirs; d++ {
			if nb, ok := m.Neighbor(c, d); ok && Color(nb) == Color(c) {
				t.Fatalf("neighbors %v and %v share color %d", c, nb, Color(c))
			}
		}
	}
}

func TestOnBoundary(t *testing.T) {
	m := New(5, 5)
	onEdge := 0
	for id := NodeID(0); int(id) < m.NodeCount(); id++ {
		if m.OnBoundary(m.CoordOf(id)) {
			onEdge++
		}
	}
	if onEdge != 16 {
		t.Errorf("boundary nodes = %d, want 16", onEdge)
	}
}

// Property: distance is a metric; neighbor hops change distance by 1.
func TestDistanceMetricProperty(t *testing.T) {
	m := New(12, 9)
	rng := rand.New(rand.NewSource(1))
	randNode := func() Coord {
		return Coord{X: rng.Intn(m.Width()), Y: rng.Intn(m.Height())}
	}
	f := func() bool {
		a, b, c := randNode(), randNode(), randNode()
		if m.Distance(a, b) != m.Distance(b, a) {
			return false
		}
		if m.Distance(a, b) < 0 || (m.Distance(a, b) == 0) != (a == b) {
			return false
		}
		if m.Distance(a, c) > m.Distance(a, b)+m.Distance(b, c) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestStringFormats(t *testing.T) {
	if got := New(10, 4).String(); got != "10x4 mesh" {
		t.Errorf("mesh String = %q", got)
	}
	if got := (Coord{X: 3, Y: 7}).String(); got != "(3,7)" {
		t.Errorf("coord String = %q", got)
	}
}
