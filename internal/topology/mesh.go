// Package topology models 2-D mesh interconnect topologies.
//
// A mesh G(l, m) is the Cartesian product of two undirected paths: l
// columns by m rows, with no wrap-around links. Nodes are addressed by
// (x, y) coordinates with x ∈ [0, l) and y ∈ [0, m). Every node has a
// bidirectional physical link to each of its up-to-four neighbors; the
// simulator treats each direction of a link as an independent physical
// channel (one flit per cycle each way).
package topology

import "fmt"

// NodeID is a dense integer identifier for a mesh node: id = y*width + x.
type NodeID int32

// Invalid is returned by functions that may fail to produce a node.
const Invalid NodeID = -1

// Coord is a node address in the mesh.
type Coord struct {
	X, Y int
}

// String renders the coordinate as "(x,y)".
func (c Coord) String() string { return fmt.Sprintf("(%d,%d)", c.X, c.Y) }

// Direction identifies one of the four mesh directions, or the local
// (ejection) port of a router.
type Direction uint8

// The four mesh directions. East is +X, West is -X, North is +Y and
// South is -Y. Local names the router's ejection port.
const (
	East Direction = iota
	West
	North
	South
	Local

	// NumDirs counts the network directions (excluding Local).
	NumDirs = 4
	// NumPorts counts all router ports: four directions plus injection.
	NumPorts = 5
	// InjectPort is the port index used for the injection queue side of
	// a router. It shares the slot that Local occupies on the output
	// side: input port 4 injects, output "port" Local ejects.
	InjectPort = 4
)

var dirNames = [...]string{"East", "West", "North", "South", "Local"}

// String returns the direction's name.
func (d Direction) String() string {
	if int(d) < len(dirNames) {
		return dirNames[d]
	}
	return fmt.Sprintf("Direction(%d)", uint8(d))
}

// Opposite returns the reverse direction. Opposite(Local) is Local.
func (d Direction) Opposite() Direction {
	switch d {
	case East:
		return West
	case West:
		return East
	case North:
		return South
	case South:
		return North
	}
	return Local
}

// Delta returns the coordinate change of one hop in direction d.
func (d Direction) Delta() (dx, dy int) {
	switch d {
	case East:
		return 1, 0
	case West:
		return -1, 0
	case North:
		return 0, 1
	case South:
		return 0, -1
	}
	return 0, 0
}

// Mesh is an l×m 2-D mesh. The zero value is invalid; use New.
type Mesh struct {
	Width, Height int
}

// New returns a width×height mesh. It panics if either dimension is
// smaller than 2, since a path with fewer than two nodes is degenerate
// for every experiment in this repository.
func New(width, height int) Mesh {
	if width < 2 || height < 2 {
		panic(fmt.Sprintf("topology: mesh dimensions must be >= 2, got %dx%d", width, height))
	}
	return Mesh{Width: width, Height: height}
}

// NodeCount returns the number of nodes in the mesh.
func (m Mesh) NodeCount() int { return m.Width * m.Height }

// Diameter returns the network diameter, (width-1)+(height-1).
func (m Mesh) Diameter() int { return m.Width - 1 + m.Height - 1 }

// Contains reports whether c is a valid coordinate in the mesh.
func (m Mesh) Contains(c Coord) bool {
	return c.X >= 0 && c.X < m.Width && c.Y >= 0 && c.Y < m.Height
}

// ID maps a coordinate to its node identifier. It panics on
// out-of-range coordinates; callers validate with Contains first.
func (m Mesh) ID(c Coord) NodeID {
	if !m.Contains(c) {
		panic(fmt.Sprintf("topology: coordinate %v outside %dx%d mesh", c, m.Width, m.Height))
	}
	return NodeID(c.Y*m.Width + c.X)
}

// CoordOf maps a node identifier back to its coordinate.
func (m Mesh) CoordOf(id NodeID) Coord {
	return Coord{X: int(id) % m.Width, Y: int(id) / m.Width}
}

// Neighbor returns the node one hop from c in direction d, and whether
// that node exists (mesh edges have no wrap-around).
func (m Mesh) Neighbor(c Coord, d Direction) (Coord, bool) {
	dx, dy := d.Delta()
	n := Coord{X: c.X + dx, Y: c.Y + dy}
	return n, m.Contains(n)
}

// NeighborID is Neighbor in NodeID space; it returns Invalid when the
// neighbor does not exist.
func (m Mesh) NeighborID(id NodeID, d Direction) NodeID {
	n, ok := m.Neighbor(m.CoordOf(id), d)
	if !ok {
		return Invalid
	}
	return m.ID(n)
}

// Distance returns the minimal hop count between two nodes.
func (m Mesh) Distance(a, b Coord) int {
	return abs(a.X-b.X) + abs(a.Y-b.Y)
}

// DirTowards returns the direction of one hop along dimension dim
// (0 = X, 1 = Y) from cur towards dst, and false when cur and dst agree
// in that dimension.
func DirTowards(cur, dst Coord, dim int) (Direction, bool) {
	switch dim {
	case 0:
		if dst.X > cur.X {
			return East, true
		}
		if dst.X < cur.X {
			return West, true
		}
	case 1:
		if dst.Y > cur.Y {
			return North, true
		}
		if dst.Y < cur.Y {
			return South, true
		}
	}
	return Local, false
}

// MinimalDirs appends to buf the directions that make minimal progress
// from cur to dst and returns the extended slice. At most two
// directions are minimal in a 2-D mesh; zero when cur == dst.
func MinimalDirs(cur, dst Coord, buf []Direction) []Direction {
	if d, ok := DirTowards(cur, dst, 0); ok {
		buf = append(buf, d)
	}
	if d, ok := DirTowards(cur, dst, 1); ok {
		buf = append(buf, d)
	}
	return buf
}

// IsMinimal reports whether moving in direction d from cur brings the
// message closer to dst.
func IsMinimal(cur, dst Coord, d Direction) bool {
	dx, dy := d.Delta()
	next := Coord{X: cur.X + dx, Y: cur.Y + dy}
	return abs(next.X-dst.X)+abs(next.Y-dst.Y) < abs(cur.X-dst.X)+abs(cur.Y-dst.Y)
}

// OnBoundary reports whether c lies on the outer edge of the mesh.
func (m Mesh) OnBoundary(c Coord) bool {
	return c.X == 0 || c.Y == 0 || c.X == m.Width-1 || c.Y == m.Height-1
}

// Color returns the 2-coloring label of a node (checkerboard parity).
// The negative-hop routing algorithm labels the mesh with this
// coloring: a hop from a node of color 1 to color 0 is a negative hop.
func Color(c Coord) int { return (c.X + c.Y) & 1 }

// String renders the mesh as "WxH mesh".
func (m Mesh) String() string { return fmt.Sprintf("%dx%d mesh", m.Width, m.Height) }

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
