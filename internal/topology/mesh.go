package topology

import "fmt"

// Mesh is an l×m 2-D mesh — the Cartesian product of two undirected
// paths, with no wrap-around links. The zero value is invalid; use New.
type Mesh struct {
	width, height int
}

// New returns a width×height mesh. It panics if either dimension is
// smaller than 2, since a path with fewer than two nodes is degenerate
// for every experiment in this repository.
func New(width, height int) Mesh {
	if width < 2 || height < 2 {
		panic(fmt.Sprintf("topology: mesh dimensions must be >= 2, got %dx%d", width, height))
	}
	return Mesh{width: width, height: height}
}

// Kind returns "mesh".
func (m Mesh) Kind() string { return "mesh" }

// Width returns the number of columns.
func (m Mesh) Width() int { return m.width }

// Height returns the number of rows.
func (m Mesh) Height() int { return m.height }

// NodeCount returns the number of nodes in the mesh.
func (m Mesh) NodeCount() int { return m.width * m.height }

// Diameter returns the network diameter, (width-1)+(height-1).
func (m Mesh) Diameter() int { return m.width - 1 + m.height - 1 }

// Contains reports whether c is a valid coordinate in the mesh.
func (m Mesh) Contains(c Coord) bool {
	return c.X >= 0 && c.X < m.width && c.Y >= 0 && c.Y < m.height
}

// ID maps a coordinate to its node identifier. It panics on
// out-of-range coordinates; callers validate with Contains first.
func (m Mesh) ID(c Coord) NodeID {
	if !m.Contains(c) {
		panic(fmt.Sprintf("topology: coordinate %v outside %dx%d mesh", c, m.width, m.height))
	}
	return NodeID(c.Y*m.width + c.X)
}

// CoordOf maps a node identifier back to its coordinate.
func (m Mesh) CoordOf(id NodeID) Coord {
	return Coord{X: int(id) % m.width, Y: int(id) / m.width}
}

// Neighbor returns the node one hop from c in direction d, and whether
// that node exists (mesh edges have no wrap-around).
func (m Mesh) Neighbor(c Coord, d Direction) (Coord, bool) {
	dx, dy := d.Delta()
	n := Coord{X: c.X + dx, Y: c.Y + dy}
	return n, m.Contains(n)
}

// NeighborID is Neighbor in NodeID space; it returns Invalid when the
// neighbor does not exist.
func (m Mesh) NeighborID(id NodeID, d Direction) NodeID {
	n, ok := m.Neighbor(m.CoordOf(id), d)
	if !ok {
		return Invalid
	}
	return m.ID(n)
}

// Distance returns the minimal hop count between two nodes.
func (m Mesh) Distance(a, b Coord) int {
	return abs(a.X-b.X) + abs(a.Y-b.Y)
}

// DirTowards returns the direction of one hop along dimension dim
// (0 = X, 1 = Y) from cur towards dst, and false when cur and dst agree
// in that dimension.
func (m Mesh) DirTowards(cur, dst Coord, dim int) (Direction, bool) {
	return DirTowards(cur, dst, dim)
}

// MinimalDirs appends to buf the directions that make minimal progress
// from cur to dst and returns the extended slice. At most two
// directions are minimal in a 2-D mesh; zero when cur == dst.
func (m Mesh) MinimalDirs(cur, dst Coord, buf []Direction) []Direction {
	return MinimalDirs(cur, dst, buf)
}

// IsMinimal reports whether moving in direction d from cur brings the
// message closer to dst.
func (m Mesh) IsMinimal(cur, dst Coord, d Direction) bool {
	return IsMinimal(cur, dst, d)
}

// OnBoundary reports whether c lies on the outer edge of the mesh.
func (m Mesh) OnBoundary(c Coord) bool {
	return c.X == 0 || c.Y == 0 || c.X == m.width-1 || c.Y == m.height-1
}

// Wraps always reports false: a mesh has no wrap-around links.
func (m Mesh) Wraps(c Coord, d Direction) bool { return false }

// WrapClass always returns 0: without wrap links every deterministic
// path stays on the single dateline class.
func (m Mesh) WrapClass(cur, dst Coord, dim int) uint8 { return 0 }

// String renders the mesh as "WxH mesh".
func (m Mesh) String() string { return fmt.Sprintf("%dx%d mesh", m.width, m.height) }

// DirTowards returns the direction of one hop along dimension dim
// (0 = X, 1 = Y) from cur towards dst on a wrap-free mesh, and false
// when cur and dst agree in that dimension.
func DirTowards(cur, dst Coord, dim int) (Direction, bool) {
	switch dim {
	case 0:
		if dst.X > cur.X {
			return East, true
		}
		if dst.X < cur.X {
			return West, true
		}
	case 1:
		if dst.Y > cur.Y {
			return North, true
		}
		if dst.Y < cur.Y {
			return South, true
		}
	}
	return Local, false
}

// MinimalDirs appends to buf the directions that make minimal progress
// from cur to dst on a wrap-free mesh and returns the extended slice.
// At most two directions are minimal in a 2-D mesh; zero when
// cur == dst.
func MinimalDirs(cur, dst Coord, buf []Direction) []Direction {
	if d, ok := DirTowards(cur, dst, 0); ok {
		buf = append(buf, d)
	}
	if d, ok := DirTowards(cur, dst, 1); ok {
		buf = append(buf, d)
	}
	return buf
}

// IsMinimal reports whether moving in direction d from cur brings the
// message closer to dst in Manhattan (mesh) distance.
func IsMinimal(cur, dst Coord, d Direction) bool {
	dx, dy := d.Delta()
	next := Coord{X: cur.X + dx, Y: cur.Y + dy}
	return abs(next.X-dst.X)+abs(next.Y-dst.Y) < abs(cur.X-dst.X)+abs(cur.Y-dst.Y)
}
