package topology

import (
	"testing"
)

func TestNewTorusPanicsOnDegenerateDims(t *testing.T) {
	for _, dims := range [][2]int{{2, 5}, {5, 2}, {0, 0}, {-3, 4}, {1, 1}} {
		dims := dims
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewTorus(%d,%d) did not panic", dims[0], dims[1])
				}
			}()
			NewTorus(dims[0], dims[1])
		}()
	}
}

func TestTorusBasics(t *testing.T) {
	tor := NewTorus(10, 10)
	if got := tor.NodeCount(); got != 100 {
		t.Errorf("NodeCount = %d, want 100", got)
	}
	if got := tor.Diameter(); got != 10 {
		t.Errorf("Diameter = %d, want 10", got)
	}
	odd := NewTorus(5, 7)
	if got := odd.Diameter(); got != 5 {
		t.Errorf("5x7 Diameter = %d, want 5", got)
	}
	if got := tor.String(); got != "10x10 torus" {
		t.Errorf("String = %q", got)
	}
	if got := tor.Kind(); got != "torus" {
		t.Errorf("Kind = %q", got)
	}
}

func TestMake(t *testing.T) {
	for _, tc := range []struct {
		kind string
		want string
	}{
		{"", "mesh"},
		{"mesh", "mesh"},
		{"torus", "torus"},
	} {
		topo, err := Make(tc.kind, 6, 6)
		if err != nil {
			t.Fatalf("Make(%q): %v", tc.kind, err)
		}
		if topo.Kind() != tc.want {
			t.Errorf("Make(%q).Kind() = %q, want %q", tc.kind, topo.Kind(), tc.want)
		}
	}
	if _, err := Make("hypercube", 6, 6); err == nil {
		t.Error("Make(hypercube) did not fail")
	}
}

// Neighbor symmetry under wrap: every link is bidirectional and the
// Opposite direction leads straight back, including across datelines.
func TestTorusNeighborSymmetry(t *testing.T) {
	for _, tor := range []Torus{NewTorus(6, 6), NewTorus(5, 7)} {
		for id := NodeID(0); int(id) < tor.NodeCount(); id++ {
			for d := Direction(0); d < NumDirs; d++ {
				nb := tor.NeighborID(id, d)
				if nb == Invalid {
					t.Fatalf("%v: node %d has no %v neighbor", tor, id, d)
				}
				if back := tor.NeighborID(nb, d.Opposite()); back != id {
					t.Fatalf("%v: %d --%v--> %d --%v--> %d, want round trip", tor, id, d, nb, d.Opposite(), back)
				}
			}
		}
	}
}

func TestTorusWraps(t *testing.T) {
	tor := NewTorus(6, 4)
	tests := []struct {
		c    Coord
		d    Direction
		want bool
	}{
		{Coord{5, 0}, East, true},
		{Coord{0, 0}, West, true},
		{Coord{0, 3}, North, true},
		{Coord{0, 0}, South, true},
		{Coord{4, 0}, East, false},
		{Coord{1, 0}, West, false},
		{Coord{0, 2}, North, false},
		{Coord{0, 1}, South, false},
		{Coord{0, 0}, Local, false},
	}
	for _, tc := range tests {
		if got := tor.Wraps(tc.c, tc.d); got != tc.want {
			t.Errorf("Wraps(%v, %v) = %v, want %v", tc.c, tc.d, got, tc.want)
		}
	}
	// A wrapping hop lands where Neighbor says it does.
	if nb, ok := tor.Neighbor(Coord{5, 0}, East); !ok || nb != (Coord{0, 0}) {
		t.Errorf("wrap East neighbor = %v, %v", nb, ok)
	}
	if nb, ok := tor.Neighbor(Coord{0, 0}, South); !ok || nb != (Coord{0, 3}) {
		t.Errorf("wrap South neighbor = %v, %v", nb, ok)
	}
	// Mesh never wraps.
	m := New(6, 4)
	for d := Direction(0); d < NumDirs; d++ {
		if m.Wraps(Coord{0, 0}, d) || m.Wraps(Coord{5, 3}, d) {
			t.Errorf("mesh Wraps(%v) = true", d)
		}
	}
}

func TestTorusDistance(t *testing.T) {
	tor := NewTorus(10, 10)
	if got := tor.Distance(Coord{0, 0}, Coord{9, 9}); got != 2 {
		t.Errorf("corner distance = %d, want 2 (wraps)", got)
	}
	if got := tor.Distance(Coord{0, 0}, Coord{5, 5}); got != 10 {
		t.Errorf("half-way distance = %d, want 10", got)
	}
	if got := tor.Distance(Coord{3, 4}, Coord{3, 4}); got != 0 {
		t.Errorf("self distance = %d, want 0", got)
	}
	// Distance is symmetric and bounded by the diameter.
	for a := NodeID(0); int(a) < tor.NodeCount(); a++ {
		for b := NodeID(0); int(b) < tor.NodeCount(); b++ {
			ca, cb := tor.CoordOf(a), tor.CoordOf(b)
			d := tor.Distance(ca, cb)
			if d != tor.Distance(cb, ca) {
				t.Fatalf("asymmetric distance %v %v", ca, cb)
			}
			if d > tor.Diameter() {
				t.Fatalf("distance %d exceeds diameter %d", d, tor.Diameter())
			}
		}
	}
}

// Quick-check over every (src,dst) pair on even and odd tori: the
// minimal-direction set is non-empty whenever src != dst, and every
// returned direction strictly decreases distance (the contract the
// routing layer depends on).
func TestTorusMinimalDirsNonEmptyAndDecreasing(t *testing.T) {
	for _, tor := range []Torus{NewTorus(6, 6), NewTorus(5, 7), NewTorus(8, 3)} {
		for a := NodeID(0); int(a) < tor.NodeCount(); a++ {
			for b := NodeID(0); int(b) < tor.NodeCount(); b++ {
				ca, cb := tor.CoordOf(a), tor.CoordOf(b)
				dirs := tor.MinimalDirs(ca, cb, nil)
				if a == b {
					if len(dirs) != 0 {
						t.Fatalf("%v: MinimalDirs(%v,%v) = %v, want none", tor, ca, cb, dirs)
					}
					continue
				}
				if len(dirs) == 0 {
					t.Fatalf("%v: MinimalDirs(%v,%v) empty for distinct pair", tor, ca, cb)
				}
				for _, d := range dirs {
					next, ok := tor.Neighbor(ca, d)
					if !ok {
						t.Fatalf("%v: minimal dir %v has no neighbor from %v", tor, d, ca)
					}
					if tor.Distance(next, cb) != tor.Distance(ca, cb)-1 {
						t.Fatalf("%v: dir %v from %v to %v does not reduce distance", tor, d, ca, cb)
					}
					if !tor.IsMinimal(ca, cb, d) {
						t.Fatalf("%v: IsMinimal disagrees with MinimalDirs at %v->%v dir %v", tor, ca, cb, d)
					}
				}
			}
		}
	}
}

// DirTowards stays consistent along the path: once a message starts
// moving one way around a cycle it never flips direction mid-way
// (otherwise the dateline class rule would be unsound).
func TestTorusDirTowardsConsistentAlongPath(t *testing.T) {
	tor := NewTorus(8, 5)
	for a := NodeID(0); int(a) < tor.NodeCount(); a++ {
		for b := NodeID(0); int(b) < tor.NodeCount(); b++ {
			ca, cb := tor.CoordOf(a), tor.CoordOf(b)
			for dim := 0; dim < 2; dim++ {
				first, ok := tor.DirTowards(ca, cb, dim)
				if !ok {
					continue
				}
				cur := ca
				for steps := 0; ; steps++ {
					if steps > tor.Diameter() {
						t.Fatalf("dim %d from %v to %v did not settle", dim, ca, cb)
					}
					d, ok := tor.DirTowards(cur, cb, dim)
					if !ok {
						break
					}
					if d != first {
						t.Fatalf("direction flipped from %v to %v en route %v->%v", first, d, ca, cb)
					}
					cur, _ = tor.Neighbor(cur, d)
				}
			}
		}
	}
}

// Dateline VC-class assignment: class 1 exactly while the remaining
// minimal path crosses the wrap edge, monotone 1→0 along the path,
// and 0 for every path that stays inside the cycle.
func TestTorusWrapClassDateline(t *testing.T) {
	tor := NewTorus(8, 8)
	// Non-wrapping path: 1 -> 4 going East never crosses, class 0 all the way.
	for x := 1; x < 4; x++ {
		if cls := tor.WrapClass(Coord{x, 0}, Coord{4, 0}, 0); cls != 0 {
			t.Errorf("WrapClass x=%d east inside cycle = %d, want 0", x, cls)
		}
	}
	// Wrapping path: 6 -> 1 going East crosses 7->0: class 1 until the
	// crossing, class 0 after.
	for _, tc := range []struct {
		x    int
		want uint8
	}{{6, 1}, {7, 1}, {0, 0}} {
		if cls := tor.WrapClass(Coord{tc.x, 0}, Coord{1, 0}, 0); cls != tc.want {
			t.Errorf("WrapClass x=%d east wrapping = %d, want %d", tc.x, cls, tc.want)
		}
	}
	// Westward wrap: 1 -> 6 going West crosses 0->7.
	for _, tc := range []struct {
		x    int
		want uint8
	}{{1, 1}, {0, 1}, {7, 0}} {
		if cls := tor.WrapClass(Coord{tc.x, 0}, Coord{6, 0}, 0); cls != tc.want {
			t.Errorf("WrapClass x=%d west wrapping = %d, want %d", tc.x, cls, tc.want)
		}
	}
	// Aligned dimension is class 0.
	if cls := tor.WrapClass(Coord{3, 2}, Coord{3, 6}, 0); cls != 0 {
		t.Errorf("aligned dim class = %d, want 0", cls)
	}
	// Monotonicity along every deterministic path: once class drops to
	// 0 it never returns to 1, and the drop happens exactly once.
	for a := NodeID(0); int(a) < tor.NodeCount(); a++ {
		for b := NodeID(0); int(b) < tor.NodeCount(); b++ {
			ca, cb := tor.CoordOf(a), tor.CoordOf(b)
			for dim := 0; dim < 2; dim++ {
				cur := ca
				prev := uint8(1)
				sawClass1 := false
				wrapped := false
				for {
					d, ok := tor.DirTowards(cur, cb, dim)
					if !ok {
						break
					}
					cls := tor.WrapClass(cur, cb, dim)
					if cls > prev {
						t.Fatalf("class rose from %d to %d en route %v->%v dim %d", prev, cls, ca, cb, dim)
					}
					prev = cls
					sawClass1 = sawClass1 || cls == 1
					next, _ := tor.Neighbor(cur, d)
					// The class drops exactly at the dateline crossing.
					if cls == 1 && !tor.Wraps(cur, d) && tor.WrapClass(next, cb, dim) == 0 {
						t.Fatalf("class dropped without a wrap hop at %v en route %v->%v", cur, ca, cb)
					}
					wrapped = wrapped || tor.Wraps(cur, d)
					cur = next
				}
				// Class 1 appears exactly on the paths that cross the
				// dateline in this dimension.
				if sawClass1 != wrapped {
					t.Fatalf("path %v->%v dim %d: sawClass1=%v wrapped=%v", ca, cb, dim, sawClass1, wrapped)
				}
			}
		}
	}
}

func TestTorusOnBoundary(t *testing.T) {
	tor := NewTorus(5, 5)
	for id := NodeID(0); int(id) < tor.NodeCount(); id++ {
		if tor.OnBoundary(tor.CoordOf(id)) {
			t.Fatalf("torus node %d reported on boundary", id)
		}
	}
}

// Mesh and torus of the same dimensions are distinct topologies under
// interface equality, while two handles to the same shape are equal —
// the property the engine's reuse checks rely on.
func TestTopologyEquality(t *testing.T) {
	var a, b Topology = New(10, 10), New(10, 10)
	if a != b {
		t.Error("equal meshes compare unequal")
	}
	var tor Topology = NewTorus(10, 10)
	if a == tor {
		t.Error("mesh compares equal to torus")
	}
	if tor != Topology(NewTorus(10, 10)) {
		t.Error("equal tori compare unequal")
	}
}
