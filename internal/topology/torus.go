package topology

import "fmt"

// Torus is an l×m 2-D torus — the Cartesian product of two undirected
// cycles. Every node has exactly four neighbors; the links leaving the
// last column/row wrap around to the first (and vice versa). The zero
// value is invalid; use NewTorus.
type Torus struct {
	width, height int
}

// NewTorus returns a width×height torus. It panics if either dimension
// is smaller than 3: a 2-cycle would give a node two parallel physical
// links to the same neighbor (East and West coincide), which the dense
// one-neighbor-per-direction channel encoding deliberately excludes.
func NewTorus(width, height int) Torus {
	if width < 3 || height < 3 {
		panic(fmt.Sprintf("topology: torus dimensions must be >= 3, got %dx%d", width, height))
	}
	return Torus{width: width, height: height}
}

// Kind returns "torus".
func (t Torus) Kind() string { return "torus" }

// Width returns the number of columns.
func (t Torus) Width() int { return t.width }

// Height returns the number of rows.
func (t Torus) Height() int { return t.height }

// NodeCount returns the number of nodes in the torus.
func (t Torus) NodeCount() int { return t.width * t.height }

// Diameter returns the network diameter, ⌊width/2⌋+⌊height/2⌋.
func (t Torus) Diameter() int { return t.width/2 + t.height/2 }

// Contains reports whether c is a valid coordinate in the torus.
func (t Torus) Contains(c Coord) bool {
	return c.X >= 0 && c.X < t.width && c.Y >= 0 && c.Y < t.height
}

// ID maps a coordinate to its node identifier. It panics on
// out-of-range coordinates; callers validate with Contains first.
func (t Torus) ID(c Coord) NodeID {
	if !t.Contains(c) {
		panic(fmt.Sprintf("topology: coordinate %v outside %dx%d torus", c, t.width, t.height))
	}
	return NodeID(c.Y*t.width + c.X)
}

// CoordOf maps a node identifier back to its coordinate.
func (t Torus) CoordOf(id NodeID) Coord {
	return Coord{X: int(id) % t.width, Y: int(id) / t.width}
}

// Neighbor returns the node one hop from c in direction d. On a torus
// every direction has a neighbor, so ok is true for the four network
// directions (false only for Local).
func (t Torus) Neighbor(c Coord, d Direction) (Coord, bool) {
	dx, dy := d.Delta()
	if dx == 0 && dy == 0 {
		return c, false
	}
	return Coord{
		X: (c.X + dx + t.width) % t.width,
		Y: (c.Y + dy + t.height) % t.height,
	}, true
}

// NeighborID is Neighbor in NodeID space; it returns Invalid only for
// Local.
func (t Torus) NeighborID(id NodeID, d Direction) NodeID {
	n, ok := t.Neighbor(t.CoordOf(id), d)
	if !ok {
		return Invalid
	}
	return t.ID(n)
}

// Distance returns the minimal hop count between two nodes: the sum
// over dimensions of the shorter way around each cycle.
func (t Torus) Distance(a, b Coord) int {
	dx := abs(a.X - b.X)
	if w := t.width - dx; w < dx {
		dx = w
	}
	dy := abs(a.Y - b.Y)
	if h := t.height - dy; h < dy {
		dy = h
	}
	return dx + dy
}

// DirTowards returns the direction of one minimal hop along dimension
// dim (0 = X, 1 = Y) from cur towards dst, and false when cur and dst
// agree in that dimension. When both ways around the cycle are equally
// short (even dimension, offset exactly half way) the positive
// direction (East/North) is chosen, so the choice is deterministic and
// stays consistent along the whole path.
func (t Torus) DirTowards(cur, dst Coord, dim int) (Direction, bool) {
	switch dim {
	case 0:
		fwd := ((dst.X-cur.X)%t.width + t.width) % t.width
		if fwd == 0 {
			return Local, false
		}
		if fwd <= t.width-fwd {
			return East, true
		}
		return West, true
	case 1:
		fwd := ((dst.Y-cur.Y)%t.height + t.height) % t.height
		if fwd == 0 {
			return Local, false
		}
		if fwd <= t.height-fwd {
			return North, true
		}
		return South, true
	}
	return Local, false
}

// MinimalDirs appends to buf the directions that make minimal progress
// from cur to dst and returns the extended slice: one direction per
// unresolved dimension (the DirTowards choice), at most two total.
func (t Torus) MinimalDirs(cur, dst Coord, buf []Direction) []Direction {
	if d, ok := t.DirTowards(cur, dst, 0); ok {
		buf = append(buf, d)
	}
	if d, ok := t.DirTowards(cur, dst, 1); ok {
		buf = append(buf, d)
	}
	return buf
}

// IsMinimal reports whether moving in direction d from cur brings the
// message closer to dst.
func (t Torus) IsMinimal(cur, dst Coord, d Direction) bool {
	next, ok := t.Neighbor(cur, d)
	return ok && t.Distance(next, dst) < t.Distance(cur, dst)
}

// OnBoundary always reports false: a torus has no boundary.
func (t Torus) OnBoundary(c Coord) bool { return false }

// Wraps reports whether the link leaving c in direction d crosses the
// dateline of its dimension (the wrap edge between the last and first
// column or row).
func (t Torus) Wraps(c Coord, d Direction) bool {
	switch d {
	case East:
		return c.X == t.width-1
	case West:
		return c.X == 0
	case North:
		return c.Y == t.height-1
	case South:
		return c.Y == 0
	}
	return false
}

// WrapClass implements the dateline rule for deterministic minimal
// paths: class 1 while the remaining path in dimension dim still
// crosses the wrap edge, class 0 afterwards. Travelling East the path
// crosses the dateline exactly when dst.X < cur.X (the forward offset
// wraps past width-1→0); West when dst.X > cur.X; and symmetrically
// in Y. A message therefore starts on class 1 iff its path wraps,
// switches to class 0 at the dateline crossing, and never returns —
// each class's channel dependencies run one way around the cycle and
// the only inter-class edges are 1→0, so the restriction is acyclic.
func (t Torus) WrapClass(cur, dst Coord, dim int) uint8 {
	d, ok := t.DirTowards(cur, dst, dim)
	if !ok {
		return 0
	}
	switch d {
	case East:
		if dst.X < cur.X {
			return 1
		}
	case West:
		if dst.X > cur.X {
			return 1
		}
	case North:
		if dst.Y < cur.Y {
			return 1
		}
	case South:
		if dst.Y > cur.Y {
			return 1
		}
	}
	return 0
}

// String renders the torus as "WxH torus".
func (t Torus) String() string { return fmt.Sprintf("%dx%d torus", t.width, t.height) }
