package serve

import (
	"bufio"
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"wormmesh/internal/core"
	"wormmesh/internal/sim"
)

// sseEvents reads a complete SSE stream into (event, data) pairs.
func sseEvents(t *testing.T, r *bufio.Reader) [][2]string {
	t.Helper()
	var events [][2]string
	var name string
	for {
		line, err := r.ReadString('\n')
		if err != nil {
			return events // stream closed by the server
		}
		line = strings.TrimRight(line, "\n")
		switch {
		case strings.HasPrefix(line, "event: "):
			name = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			events = append(events, [2]string{name, strings.TrimPrefix(line, "data: ")})
			if name == "done" {
				return events
			}
		}
	}
}

// TestLiveSSEStream: the end-to-end contract of GET /jobs/{key}/live.
// A run is held open at its final instant (the simulation has executed,
// the worker is blocked before completing the job), so the stream must
// replay the complete window series deterministically: one meta event,
// every window in order, then the terminal done event once the job is
// released. The same series count is cross-checked against the cycle
// arithmetic: 1000 cycles at window 100 is exactly 10 windows.
func TestLiveSSEStream(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, WindowCycles: 100})
	started := make(chan struct{})
	release := make(chan struct{})
	// An early test failure must still unblock the held worker, or the
	// Cleanup's s.Close() deadlocks waiting for it.
	defer func() {
		select {
		case <-release:
		default:
			close(release)
		}
	}()
	inner := s.sched.run
	s.sched.run = func(r *sim.Runner, p sim.Params) (sim.Result, error) {
		res, err := inner(r, p)
		close(started) // simulation done, full series in the ring
		<-release      // hold the job in JobRunning for the stream
		return res, err
	}

	p := quickParams() // 200 warmup + 800 measure = 1000 cycles
	resp, body := postRun(t, ts.URL, p, false)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /run status %d: %s", resp.StatusCode, body)
	}
	var acc runAccepted
	if err := json.Unmarshal(body, &acc); err != nil {
		t.Fatal(err)
	}
	<-started

	// While the job is held open, /jobs/{key} must report sampler
	// progress — the measured cycle counter, not just the EWMA guess.
	stResp, err := http.Get(ts.URL + "/jobs/" + acc.Key)
	if err != nil {
		t.Fatal(err)
	}
	var st runStatus
	if err := json.NewDecoder(stResp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	stResp.Body.Close()
	if st.Status != "running" {
		t.Fatalf("held job status = %q, want running", st.Status)
	}
	if st.Cycle != 1000 || st.TotalCycles != 1000 {
		t.Errorf("sampler progress = %d/%d cycles, want 1000/1000", st.Cycle, st.TotalCycles)
	}

	live, err := http.Get(ts.URL + "/jobs/" + acc.Key + "/live")
	if err != nil {
		t.Fatal(err)
	}
	defer live.Body.Close()
	if ct := live.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("live Content-Type = %q", ct)
	}
	br := bufio.NewReader(live.Body)

	// Read the meta event first, then release the job so the stream can
	// terminate; the handler must still deliver every retained window
	// before the done event.
	var events [][2]string
	events = append(events, sseReadOne(t, br))
	close(release)
	events = append(events, sseEvents(t, br)...)

	if events[0][0] != "meta" {
		t.Fatalf("first event = %q, want meta", events[0][0])
	}
	var meta liveMeta
	if err := json.Unmarshal([]byte(events[0][1]), &meta); err != nil {
		t.Fatal(err)
	}
	if meta.WindowCycles != 100 || meta.TotalCycles != 1000 {
		t.Errorf("meta = %+v, want window 100 total 1000", meta)
	}
	if meta.HealthyNodes != 36 {
		t.Errorf("meta healthy nodes = %d, want 36", meta.HealthyNodes)
	}

	var windows []core.WindowSnapshot
	for _, ev := range events[1:] {
		if ev[0] != "window" {
			continue
		}
		var snap core.WindowSnapshot
		if err := json.Unmarshal([]byte(ev[1]), &snap); err != nil {
			t.Fatal(err)
		}
		windows = append(windows, snap)
	}
	if len(windows) != 10 {
		t.Fatalf("streamed %d windows, want 10 (1000 cycles / window 100)", len(windows))
	}
	for i, w := range windows {
		if w.Seq != int64(i) {
			t.Errorf("window %d seq = %d, want %d", i, w.Seq, i)
		}
		if w.End-w.Start != 100 {
			t.Errorf("window %d spans [%d,%d), want width 100", i, w.Start, w.End)
		}
	}
	if last := windows[len(windows)-1]; last.End != 1000 {
		t.Errorf("last window ends at %d, want 1000", last.End)
	}

	lastEv := events[len(events)-1]
	if lastEv[0] != "done" {
		t.Fatalf("final event = %q, want done", lastEv[0])
	}
	var done liveDone
	if err := json.Unmarshal([]byte(lastEv[1]), &done); err != nil {
		t.Fatal(err)
	}
	if done.Status != "done" || done.Error != "" {
		t.Errorf("done event = %+v", done)
	}

	// A subscriber arriving after the job left the scheduler gets an
	// immediate done event from the cache, not a 404 and not a hang.
	late, err := http.Get(ts.URL + "/jobs/" + acc.Key + "/live")
	if err != nil {
		t.Fatal(err)
	}
	defer late.Body.Close()
	lateEvents := sseEvents(t, bufio.NewReader(late.Body))
	if len(lateEvents) != 1 || lateEvents[0][0] != "done" {
		t.Fatalf("late subscriber events = %v, want a single done", lateEvents)
	}

	// And a key nobody ever submitted is a 404.
	missing, err := http.Get(ts.URL + "/jobs/sha256-nope/live")
	if err != nil {
		t.Fatal(err)
	}
	missing.Body.Close()
	if missing.StatusCode != http.StatusNotFound {
		t.Errorf("unknown key live status = %d, want 404", missing.StatusCode)
	}
}

// sseReadOne reads exactly one SSE event (name, data) from the stream.
func sseReadOne(t *testing.T, r *bufio.Reader) [2]string {
	t.Helper()
	var name string
	for {
		line, err := r.ReadString('\n')
		if err != nil {
			t.Fatalf("stream ended early: %v", err)
		}
		line = strings.TrimRight(line, "\n")
		switch {
		case strings.HasPrefix(line, "event: "):
			name = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			return [2]string{name, strings.TrimPrefix(line, "data: ")}
		}
	}
}
