package serve

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"wormmesh/internal/core"
	"wormmesh/internal/metrics"
	"wormmesh/internal/sim"
)

// Float is a float64 whose JSON form tolerates the non-finite values a
// simulation can legitimately produce (AvgLatency is NaN when nothing
// was measured): NaN and ±Inf marshal as null instead of failing the
// whole document.
type Float float64

// MarshalJSON renders non-finite values as null.
func (f Float) MarshalJSON() ([]byte, error) {
	v := float64(f)
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return []byte("null"), nil
	}
	return strconv.AppendFloat(nil, v, 'g', -1, 64), nil
}

// UnmarshalJSON accepts null as NaN.
func (f *Float) UnmarshalJSON(data []byte) error {
	if string(data) == "null" {
		*f = Float(math.NaN())
		return nil
	}
	v, err := strconv.ParseFloat(string(data), 64)
	if err != nil {
		return err
	}
	*f = Float(v)
	return nil
}

// Entry is one cached result: the normalized request, the full engine
// Stats (so a hit can reconstruct everything a sim.Result derives), and
// the headline numbers pre-extracted for clients that only plot curves.
// Provenance is always "simulated" — model answers are never cached as
// results (see ModelAnswer).
type Entry struct {
	Key        string `json:"key"`
	Provenance string `json:"provenance"`

	Params sim.Params `json:"params"`
	// ResultDigest is DigestJSON over Stats: the bit-identity token.
	// Two entries for one key always agree on it, whether the result
	// was simulated this process or read back from disk.
	ResultDigest string     `json:"result_digest"`
	Stats        core.Stats `json:"stats"`

	Latency          Float   `json:"latency_cycles"`
	Accepted         Float   `json:"accepted_flits"`
	Normalized       Float   `json:"normalized_throughput"`
	FaultCount       int     `json:"fault_count,omitempty"`
	SeedFaults       int     `json:"seed_faults,omitempty"`
	RingNodes        int     `json:"ring_nodes,omitempty"`
	Regions          int     `json:"regions,omitempty"`
	UndeliveredAtEnd int     `json:"undelivered_at_end,omitempty"`
	ElapsedSeconds   float64 `json:"elapsed_seconds"`
}

// NewEntry files a simulation result under its key.
func NewEntry(key string, np sim.Params, res sim.Result) (*Entry, error) {
	rd, err := metrics.DigestJSON(res.Stats)
	if err != nil {
		return nil, err
	}
	return &Entry{
		Key:              key,
		Provenance:       "simulated",
		Params:           np,
		ResultDigest:     rd,
		Stats:            res.Stats,
		Latency:          Float(res.Stats.AvgLatency()),
		Accepted:         Float(res.Stats.Throughput()),
		Normalized:       Float(res.NormalizedThroughput()),
		FaultCount:       res.FaultCount,
		SeedFaults:       res.SeedFaults,
		RingNodes:        res.RingNodes,
		Regions:          res.Regions,
		UndeliveredAtEnd: res.UndeliveredAtEnd,
		ElapsedSeconds:   res.Elapsed.Seconds(),
	}, nil
}

// Result reconstructs a sim.Result from the entry for callers (sweep
// cache hits) that consume results structurally. The fault model and
// per-link telemetry are not stored, so Faults/Links are nil; every
// statistic is exact.
func (e *Entry) Result() sim.Result {
	return sim.Result{
		Params:           e.Params,
		Stats:            e.Stats,
		FaultCount:       e.FaultCount,
		SeedFaults:       e.SeedFaults,
		RingNodes:        e.RingNodes,
		Regions:          e.Regions,
		UndeliveredAtEnd: e.UndeliveredAtEnd,
	}
}

// Store is the disk tier: one JSON file per digest under dir, written
// atomically (temp file + rename) so a crashed or concurrent writer can
// never leave a torn file behind — a reader sees the old bytes, the new
// bytes, or no file. Corruption of any kind (truncation, bit rot, a
// foreign file under our name) degrades to a cache miss: Get verifies
// the decoded entry's key matches the file it came from.
type Store struct {
	dir string
}

// OpenStore opens (creating if needed) a disk store rooted at dir.
func OpenStore(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("serve: store: %w", err)
	}
	return &Store{dir: dir}, nil
}

// path maps a digest to its file. Digests are "fnv1a:%016x"; the colon
// is replaced for portability to filesystems that reserve it.
func (s *Store) path(key string) string {
	return filepath.Join(s.dir, strings.ReplaceAll(key, ":", "-")+".json")
}

// Get reads the entry for key. Misses and unreadable/corrupt files both
// return (nil, nil, nil): the caller recomputes, and the next Put
// overwrites the bad file. The raw bytes are returned alongside so the
// memory tier can serve them without re-marshaling.
func (s *Store) Get(key string) (*Entry, []byte, error) {
	data, err := os.ReadFile(s.path(key))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil, nil
		}
		return nil, nil, fmt.Errorf("serve: store: %w", err)
	}
	var e Entry
	if err := json.Unmarshal(data, &e); err != nil || e.Key != key {
		return nil, nil, nil // corrupt or foreign: treat as a miss
	}
	return &e, data, nil
}

// Put writes body (the marshaled entry) under key atomically.
func (s *Store) Put(key string, body []byte) error {
	tmp, err := os.CreateTemp(s.dir, "put-*.tmp")
	if err != nil {
		return fmt.Errorf("serve: store: %w", err)
	}
	name := tmp.Name()
	if _, err := tmp.Write(body); err != nil {
		tmp.Close()
		os.Remove(name)
		return fmt.Errorf("serve: store: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(name)
		return fmt.Errorf("serve: store: %w", err)
	}
	if err := os.Rename(name, s.path(key)); err != nil {
		os.Remove(name)
		return fmt.Errorf("serve: store: %w", err)
	}
	return nil
}

// Probe verifies the store directory is still writable — the readiness
// check behind /readyz. It creates and removes a temp file; a full or
// read-only disk fails here before it fails a real Put.
func (s *Store) Probe() error {
	tmp, err := os.CreateTemp(s.dir, "probe-*.tmp")
	if err != nil {
		return fmt.Errorf("serve: store: %w", err)
	}
	name := tmp.Name()
	if err := tmp.Close(); err != nil {
		os.Remove(name)
		return fmt.Errorf("serve: store: %w", err)
	}
	if err := os.Remove(name); err != nil {
		return fmt.Errorf("serve: store: %w", err)
	}
	return nil
}

// Has reports whether key is present on disk without reading the body.
func (s *Store) Has(key string) bool {
	_, err := os.Stat(s.path(key))
	return err == nil
}
