package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"wormmesh/internal/sim"
)

// benchParams is the cell the serve benchmarks request; tiny so the
// cold-miss benchmark measures scheduling overhead plus a short run,
// not minutes of simulation.
func benchParams() sim.Params {
	p := sim.DefaultParams()
	p.Width, p.Height = 6, 6
	p.Rate = 0.002
	p.MessageLength = 20
	p.WarmupCycles = 100
	p.MeasureCycles = 400
	return p
}

func newBenchServer(b *testing.B) (*Server, *httptest.Server) {
	return newBenchServerWith(b, Config{Workers: 2})
}

func newBenchServerWith(b *testing.B, cfg Config) (*Server, *httptest.Server) {
	b.Helper()
	s, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	b.Cleanup(func() { ts.Close(); s.Close() })
	return s, ts
}

// warmHitLoop drives one full HTTP round trip per iteration for a
// cache-resident cell — handshake, key normalization and digest, LRU
// lookup, response write.
func warmHitLoop(b *testing.B, ts *httptest.Server) {
	b.Helper()
	p := benchParams()
	body, _ := json.Marshal(runRequest{Params: p, Wait: true})
	warm, err := http.Post(ts.URL+"/run", "application/json", bytes.NewReader(body))
	if err != nil {
		b.Fatal(err)
	}
	io.Copy(io.Discard, warm.Body)
	warm.Body.Close()
	client := ts.Client()

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := client.Post(ts.URL+"/run", "application/json", bytes.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("status %d", resp.StatusCode)
		}
	}
}

// BenchmarkServeWarmHit is the headline number, as a traced/untraced
// pair: traced is the default configuration (every iteration opens a
// root span, records normalize and lookup children, and files them in
// the tracer's ring), untraced disables the span layer and the engine
// bridge — the baseline that prices observability. The dominant traced
// cost is not per-span work but the GC re-scanning the long-lived
// completed-span ring, so the delta is bounded by ring capacity, not
// request rate. Diff each variant like-for-like across digests with
// cmd/benchdiff.
func BenchmarkServeWarmHit(b *testing.B) {
	for _, variant := range []struct {
		name string
		cfg  Config
	}{
		{"traced", Config{Workers: 2}},
		{"untraced", Config{Workers: 2, TraceSpans: -1, EngineEvents: -1}},
	} {
		b.Run(variant.name, func(b *testing.B) {
			_, ts := newBenchServerWith(b, variant.cfg)
			warmHitLoop(b, ts)
		})
	}
}

// BenchmarkServeWarmHitLookup isolates the cache from the HTTP stack:
// key digest + LRU Get, the path that must be allocation-free after
// the response buffer (the stored body is returned, not copied).
func BenchmarkServeWarmHitLookup(b *testing.B) {
	s, _ := newBenchServer(b)
	p := benchParams()
	key, np, err := Key(p)
	if err != nil {
		b.Fatal(err)
	}
	runner := sim.NewRunner()
	res, err := runner.Run(np)
	runner.Close()
	if err != nil {
		b.Fatal(err)
	}
	entry, err := NewEntry(key, np, res)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := s.cache.Put(entry); err != nil {
		b.Fatal(err)
	}

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, ok := s.cache.Get(key); !ok {
			b.Fatal("lost the entry")
		}
	}
}

// BenchmarkServeColdMiss measures the end-to-end miss path — schedule,
// simulate on a pooled Runner, file both cache tiers, respond. Each
// iteration requests a distinct seed, so this is the per-unique-cell
// cost a parameter study pays once.
func BenchmarkServeColdMiss(b *testing.B) {
	_, ts := newBenchServer(b)
	p := benchParams()
	client := ts.Client()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Seed = int64(i + 1)
		body, _ := json.Marshal(runRequest{Params: p, Wait: true})
		resp, err := client.Post(ts.URL+"/run", "application/json", bytes.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("status %d", resp.StatusCode)
		}
	}
}

// BenchmarkServeDuplicateBurst fires 64 concurrent identical requests
// at a cold key per iteration: the singleflight guarantee means one
// simulation amortized over the burst, so per-op cost approaches
// ColdMiss/64 plus coordination overhead.
func BenchmarkServeDuplicateBurst(b *testing.B) {
	_, ts := newBenchServer(b)
	p := benchParams()
	client := ts.Client()
	const burst = 64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Seed = int64(1000 + i)
		body, _ := json.Marshal(runRequest{Params: p, Wait: true})
		var wg sync.WaitGroup
		for j := 0; j < burst; j++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				resp, err := client.Post(ts.URL+"/run", "application/json", bytes.NewReader(body))
				if err != nil {
					b.Error(err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}()
		}
		wg.Wait()
	}
}

// BenchmarkServeModelAnswer measures the surrogate fast path with a
// warm model cache: the instant answer a hybrid-supported miss returns
// while the simulation queues. Target <1ms.
func BenchmarkServeModelAnswer(b *testing.B) {
	s, _ := newBenchServer(b)
	p := benchParams()
	_, np, err := Key(p)
	if err != nil {
		b.Fatal(err)
	}
	if s.modelAnswer(np) == nil { // warm the per-class model cache
		b.Fatal("no model answer for the bench cell")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if s.modelAnswer(np) == nil {
			b.Fatal("model answer vanished")
		}
	}
}
