package serve

import (
	"container/heap"
	"errors"
	"log/slog"
	"math"
	"sync"
	"time"

	"wormmesh/internal/core"
	"wormmesh/internal/metrics"
	"wormmesh/internal/sim"
	"wormmesh/internal/trace"
)

// ErrQueueFull is returned by Submit when backpressure rejects the
// request; handlers translate it to 429 + Retry-After.
var ErrQueueFull = errors.New("serve: job queue full")

// JobState is a job's position in its lifecycle.
type JobState int32

const (
	JobQueued JobState = iota
	JobRunning
	JobDone
	JobFailed
)

// String names the state for JSON status payloads.
func (s JobState) String() string {
	switch s {
	case JobQueued:
		return "queued"
	case JobRunning:
		return "running"
	case JobDone:
		return "done"
	case JobFailed:
		return "failed"
	}
	return "unknown"
}

// Job is one in-flight simulation: the singleflight rendezvous for
// every request that asked for the same key. Wait on Done(); after it
// closes, Entry/Body/Err are immutable.
type Job struct {
	Key      string
	Params   sim.Params // normalized
	Priority int
	Created  time.Time

	seq   int64 // FIFO tiebreak within a priority
	index int   // heap position; -1 once dequeued

	// trace is the submitting request's span context: the parent under
	// which the worker backfills queue.wait/run/store.write spans. The
	// first submitter owns the job, so joiners' stage spans land under
	// that request's trace (joiners record a singleflight.join instant
	// of their own instead).
	trace trace.Context

	mu      sync.Mutex
	state   JobState
	started time.Time
	sampler *core.WindowSampler // non-nil once running, when enabled
	entry   *Entry
	body    []byte
	err     error
	done    chan struct{}
}

// Done is closed when the job finishes (either way).
func (j *Job) Done() <-chan struct{} { return j.done }

// State returns the job's current lifecycle position.
func (j *Job) State() JobState {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Outcome returns the result after Done() closed.
func (j *Job) Outcome() (*Entry, []byte, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.entry, j.body, j.err
}

// Sampler returns the job's window sampler: non-nil from the moment
// the job starts running (when the scheduler has window telemetry
// enabled), and retained after completion so late readers can replay
// the whole series. Safe to read concurrently with the run — the
// sampler is its own synchronization domain.
func (j *Job) Sampler() *core.WindowSampler {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.sampler
}

// jobQueue is a max-heap on Priority, FIFO (by seq) within a priority.
type jobQueue []*Job

func (q jobQueue) Len() int { return len(q) }
func (q jobQueue) Less(i, j int) bool {
	if q[i].Priority != q[j].Priority {
		return q[i].Priority > q[j].Priority
	}
	return q[i].seq < q[j].seq
}
func (q jobQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index, q[j].index = i, j
}
func (q *jobQueue) Push(x any) {
	j := x.(*Job)
	j.index = len(*q)
	*q = append(*q, j)
}
func (q *jobQueue) Pop() any {
	old := *q
	n := len(old)
	j := old[n-1]
	old[n-1] = nil
	j.index = -1
	*q = old[:n-1]
	return j
}

// Scheduler owns the worker fleet: a bounded priority queue of cache
// misses, singleflight deduplication (one Job per key, later identical
// requests join it), and an EWMA of job durations that prices the
// Retry-After header when the queue rejects work.
type Scheduler struct {
	cache   *Cache
	met     *metrics.Server // nil ok
	pool    *sim.RunnerPool
	workers int
	maxQ    int

	// run executes one simulation; injectable so tests can count or
	// block executions without paying for real runs.
	run func(*sim.Runner, sim.Params) (sim.Result, error)

	// Observability, filled in by Server.New right after construction
	// (before any Submit, so workers — which only read these while
	// holding a job — always see the final values). tracer nil disables
	// span backfill; engineEvents 0 disables the per-job flight
	// recorder; logger is never nil (discard by default).
	tracer       *trace.Tracer
	engineEvents int
	windowCycles int64 // per-job WindowSampler window; 0 disables
	logger       *slog.Logger

	mu         sync.Mutex
	cond       *sync.Cond
	queue      jobQueue
	jobs       map[string]*Job // queued or running, by key
	retired    map[string]*Job // recently failed, for status endpoints
	retireRing []string        // FIFO eviction of retired
	seq        int64
	avgSecs    float64 // EWMA of completed job durations
	closed     bool

	wg sync.WaitGroup
}

// retiredJobs bounds how many failed jobs stay queryable.
const retiredJobs = 1024

// NewScheduler starts `workers` goroutines draining a queue bounded at
// maxQueue (256 when <= 0). Completed jobs are filed into cache; the
// pool bounds how many Runners stay warm between jobs.
func NewScheduler(cache *Cache, workers, maxQueue int, pool *sim.RunnerPool, met *metrics.Server) *Scheduler {
	if workers <= 0 {
		workers = 1
	}
	if maxQueue <= 0 {
		maxQueue = 256
	}
	if pool == nil {
		pool = sim.NewRunnerPool(workers)
	}
	s := &Scheduler{
		cache:   cache,
		met:     met,
		pool:    pool,
		workers: workers,
		maxQ:    maxQueue,
		run:     func(r *sim.Runner, p sim.Params) (sim.Result, error) { return r.Run(p) },
		jobs:    make(map[string]*Job),
		retired: make(map[string]*Job),
		logger:  slog.New(slog.DiscardHandler),
	}
	s.cond = sync.NewCond(&s.mu)
	for i := 0; i < workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// Submit schedules a simulation for key (already normalized Params).
// If an identical job is queued or running, that job is returned with
// joined=true and nothing is enqueued — the singleflight guarantee that
// N concurrent misses on one key cost one simulation. A full queue
// returns ErrQueueFull. tc is the submitting request's trace context;
// the worker backfills the job's queue.wait/run/store.write spans under
// it (pass the zero Context for untraced submissions).
func (s *Scheduler) Submit(key string, np sim.Params, priority int, tc trace.Context) (*Job, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, false, errors.New("serve: scheduler closed")
	}
	if j, ok := s.jobs[key]; ok {
		if s.met != nil {
			s.met.Deduplicated.Inc()
		}
		return j, true, nil
	}
	if len(s.queue) >= s.maxQ {
		if s.met != nil {
			s.met.Rejected.Inc()
		}
		return nil, false, ErrQueueFull
	}
	s.seq++
	j := &Job{
		Key:      key,
		Params:   np,
		Priority: priority,
		Created:  time.Now(),
		seq:      s.seq,
		trace:    tc,
		done:     make(chan struct{}),
	}
	s.jobs[key] = j
	heap.Push(&s.queue, j)
	if s.met != nil {
		s.met.QueueDepth.Set(int64(len(s.queue)))
	}
	delete(s.retired, key) // a resubmit supersedes an old failure
	s.cond.Signal()
	return j, false, nil
}

// Job returns the queued/running job for key, or a recently failed one,
// or nil.
func (s *Scheduler) Job(key string) *Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	if j, ok := s.jobs[key]; ok {
		return j
	}
	return s.retired[key]
}

// QueueDepth returns how many jobs are waiting for a worker.
func (s *Scheduler) QueueDepth() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.queue)
}

// InFlight returns how many jobs are queued or running — the number a
// graceful drain waits on, and what /readyz reports.
func (s *Scheduler) InFlight() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.jobs)
}

// Ready reports whether the scheduler is accepting submissions (it
// stops at Close); /readyz treats a closed scheduler as not ready.
func (s *Scheduler) Ready() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return !s.closed
}

// RetryAfterSeconds prices a 429: the estimated time for the current
// backlog to drain one slot, from the duration EWMA. Clamped to
// [1, 600] so a cold server still returns something sane.
func (s *Scheduler) RetryAfterSeconds() int {
	s.mu.Lock()
	avg := s.avgSecs
	depth := len(s.queue)
	s.mu.Unlock()
	if avg <= 0 {
		avg = 1
	}
	secs := int(math.Ceil(avg * float64(depth+1) / float64(s.workers)))
	if secs < 1 {
		secs = 1
	}
	if secs > 600 {
		secs = 600
	}
	return secs
}

func (s *Scheduler) worker() {
	defer s.wg.Done()
	for {
		s.mu.Lock()
		for len(s.queue) == 0 && !s.closed {
			s.cond.Wait()
		}
		if s.closed && len(s.queue) == 0 {
			s.mu.Unlock()
			return
		}
		j := heap.Pop(&s.queue).(*Job)
		depth := len(s.queue)
		if s.met != nil {
			s.met.QueueDepth.Set(int64(depth))
			s.met.Running.Add(1)
		}
		s.mu.Unlock()

		now := time.Now()
		j.mu.Lock()
		j.state = JobRunning
		j.started = now
		j.mu.Unlock()

		// Backfill the queue-wait span — submission to pickup — under
		// the submitting request, now that both endpoints are known.
		traced := s.tracer != nil && j.trace.Valid()
		if traced {
			qw := s.tracer.StartAt("queue.wait", j.trace, j.Created)
			qw.Set("queue_depth", depth)
			qw.EndAt(now)
		}
		wait := now.Sub(j.Created)
		if s.met != nil {
			s.met.QueueWaitSeconds.Observe(wait.Seconds())
		}
		s.logger.Info("job start",
			"key", j.Key, "trace_id", j.trace.Trace.String(),
			"algorithm", j.Params.Algorithm, "rate", j.Params.Rate,
			"queue_wait_s", wait.Seconds(), "queue_depth", depth)

		var runSpan *trace.Span
		if traced {
			runSpan = s.tracer.StartAt("run", j.trace, now)
			runSpan.Set("key", j.Key)
			runSpan.Set("algorithm", j.Params.Algorithm)
			runSpan.Set("rate", j.Params.Rate)
		}
		// The engine bridge: the job runs a COPY of its normalized
		// Params carrying a private flight recorder, so the recorded
		// run stays bit-identical to the unrecorded one (observers
		// never touch Stats or RNG) and — critically — NewEntry below
		// files the CLEAN j.Params, keeping the cache-key contract
		// (Normalize strips FlightRecorder) intact.
		rp := j.Params
		var rec *core.FlightRecorder
		if runSpan != nil && s.engineEvents > 0 {
			rec = core.NewFlightRecorder(s.engineEvents)
			rp.FlightRecorder = rec
		}
		// The window bridge works the same way: a private sampler rides
		// the copied Params so /jobs/{key}/live can stream the run's
		// time-resolved series while it executes, without entering the
		// cache key (Normalize strips Sampler).
		var sampler *core.WindowSampler
		if s.windowCycles > 0 {
			capacity := int((rp.WarmupCycles+rp.MeasureCycles)/s.windowCycles) + 2
			sampler = core.NewWindowSampler(s.windowCycles, capacity)
			rp.Sampler = sampler
			j.mu.Lock()
			j.sampler = sampler
			j.mu.Unlock()
		}
		runner := s.pool.Get()
		res, err := s.run(runner, rp)
		s.pool.Put(runner)
		if s.met != nil {
			s.met.RunnersWarm.Set(int64(s.pool.Idle()))
			s.met.RunSeconds.Observe(time.Since(now).Seconds())
		}
		if rec != nil {
			runSpan.Set("engine_events", rec.Total())
			runSpan.AttachEngine(toEngineEvents(rec.Events()))
		}
		if sampler != nil && runSpan != nil {
			runSpan.Set("windows", sampler.Seq())
			runSpan.AttachWindows(toWindowPoints(sampler))
		}
		if err != nil {
			runSpan.Set("error", err.Error())
		}
		runSpan.End()

		var entry *Entry
		var body []byte
		if err == nil {
			var sw *trace.Span
			if traced {
				sw = s.tracer.Start("store.write", j.trace)
			}
			entry, err = NewEntry(j.Key, j.Params, res)
			if err == nil {
				body, err = s.cache.Put(entry)
			}
			sw.End()
		}

		elapsed := time.Since(j.started).Seconds()
		if err != nil {
			s.logger.Error("job failed",
				"key", j.Key, "trace_id", j.trace.Trace.String(),
				"elapsed_s", elapsed, "error", err)
		} else {
			s.logger.Info("job done",
				"key", j.Key, "trace_id", j.trace.Trace.String(),
				"elapsed_s", elapsed, "result_digest", entry.ResultDigest)
		}
		j.mu.Lock()
		if err != nil {
			j.state = JobFailed
			j.err = err
		} else {
			j.state = JobDone
			j.entry, j.body = entry, body
		}
		close(j.done)
		j.mu.Unlock()

		s.mu.Lock()
		delete(s.jobs, j.Key)
		if err != nil {
			s.retire(j)
		}
		const ewma = 0.2
		if s.avgSecs == 0 {
			s.avgSecs = elapsed
		} else {
			s.avgSecs = (1-ewma)*s.avgSecs + ewma*elapsed
		}
		if s.met != nil {
			s.met.Running.Add(-1)
			if err == nil {
				s.met.Simulations.Inc()
			}
		}
		s.mu.Unlock()
	}
}

// toEngineEvents converts the engine's decoded flight-recorder events
// into the trace layer's mirror struct. The copy exists because
// internal/trace must stay engine-import-free (core's own benchmarks
// import trace); the field sets match one to one.
func toEngineEvents(evs []core.TraceEvent) []trace.EngineEvent {
	if len(evs) == 0 {
		return nil
	}
	out := make([]trace.EngineEvent, len(evs))
	for i, e := range evs {
		out[i] = trace.EngineEvent{
			Cycle: e.Cycle, Kind: e.Kind, Msg: e.Msg,
			Src: e.Src, Dst: e.Dst, Node: e.Node,
			Dir: e.Dir, VC: e.VC, Flit: e.Flit, Cause: e.Cause,
		}
	}
	return out
}

// toWindowPoints converts a sampler's retained series into the trace
// layer's dependency-free mirror (same rationale as toEngineEvents),
// deriving each window's normalized throughput from the sampler's
// healthy-node count.
func toWindowPoints(s *core.WindowSampler) []trace.WindowPoint {
	snaps := s.Since(0)
	if len(snaps) == 0 {
		return nil
	}
	healthy := s.Meta().HealthyNodes
	out := make([]trace.WindowPoint, len(snaps))
	for i := range snaps {
		w := &snaps[i]
		out[i] = trace.WindowPoint{
			Seq: w.Seq, Start: w.Start, End: w.End,
			Generated: w.Generated, Delivered: w.Delivered,
			DeliveredFlits: w.DeliveredFlits, Killed: w.Killed,
			InFlight: w.InFlight, BlockedLinks: w.BlockedLinks,
			AvgLatency: w.AvgLatency, Throughput: w.Throughput(healthy),
		}
	}
	return out
}

// retire files a failed job for later status queries (caller holds mu).
func (s *Scheduler) retire(j *Job) {
	s.retired[j.Key] = j
	s.retireRing = append(s.retireRing, j.Key)
	for len(s.retireRing) > retiredJobs {
		old := s.retireRing[0]
		s.retireRing = s.retireRing[1:]
		if s.retired[old] != j {
			delete(s.retired, old)
		}
	}
}

// Close drains the queue, waits for in-flight jobs, and releases the
// Runner pool. Jobs still queued run to completion first.
func (s *Scheduler) Close() {
	s.mu.Lock()
	s.closed = true
	s.cond.Broadcast()
	s.mu.Unlock()
	s.wg.Wait()
	s.pool.Close()
}
