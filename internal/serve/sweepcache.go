package serve

import (
	"wormmesh/internal/sim"
	"wormmesh/internal/sweep"
)

// SweepCache adapts the result cache to sweep.Cache so offline drivers
// (experiments -cache, meshsim -cache, hybrid sweeps) read and feed the
// same store the server does. Points carrying observers the cache
// cannot reproduce — trace or postmortem writers, live metrics, window
// or per-link telemetry collection — bypass Lookup (the caller wants
// the side effects, not just the Stats) but still Store their results:
// observation never perturbs Stats, so the entry is valid for future
// observer-free requests.
type SweepCache struct {
	cache *Cache
}

// NewSweepCache wraps a result cache for sweep use.
func NewSweepCache(c *Cache) *SweepCache { return &SweepCache{cache: c} }

// observed reports whether p requests side effects a cached Stats
// cannot reproduce.
func observed(p sim.Params) bool {
	return p.TraceWriter != nil || p.PostmortemWriter != nil || p.Metrics != nil ||
		p.FlightRecorder != nil || p.WindowCycles > 0 || p.Config.ChannelTelemetry
}

// Lookup implements sweep.Cache.
func (sc *SweepCache) Lookup(p sim.Params) (sim.Result, bool) {
	if observed(p) {
		return sim.Result{}, false
	}
	key, np, err := Key(p)
	if err != nil {
		return sim.Result{}, false
	}
	entry, _, ok := sc.cache.Get(key)
	if !ok {
		return sim.Result{}, false
	}
	res := entry.Result()
	// Hand back the caller's own Params (pre-normalization) so derived
	// quantities like NormalizedThroughput see the topology they asked
	// about; Stats are identical by the normalization contract.
	res.Params = p
	_ = np
	return res, true
}

// Store implements sweep.Cache.
func (sc *SweepCache) Store(p sim.Params, r sim.Result) {
	key, np, err := Key(p)
	if err != nil {
		return
	}
	entry, err := NewEntry(key, np, r)
	if err != nil {
		return
	}
	// Put errors (disk full, read-only store) only cost future hits.
	_, _ = sc.cache.Put(entry)
}

// Stats exposes the underlying cache counters for CLI summaries.
func (sc *SweepCache) Stats() (hits, diskHits, misses int64) {
	return sc.cache.Stats()
}

var _ sweep.Cache = (*SweepCache)(nil)
