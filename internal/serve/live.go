package serve

import (
	"encoding/json"
	"net/http"
	"time"

	"wormmesh/internal/core"
)

// liveMeta is the first SSE event on /jobs/{key}/live: the fixed frame
// every window in the stream is interpreted against.
type liveMeta struct {
	Key          string `json:"key"`
	Status       string `json:"status"`
	WindowCycles int64  `json:"window_cycles"`
	HealthyNodes int    `json:"healthy_nodes"`
	TotalCycles  int64  `json:"total_cycles"`
}

// liveDone is the terminal SSE event: the job's outcome, after every
// retained window has been flushed to the client.
type liveDone struct {
	Status string `json:"status"`
	Key    string `json:"key"`
	Error  string `json:"error,omitempty"`
}

// livePollInterval paces the window poll while the job runs. Windows
// close every WindowCycles engine cycles — far faster than this — so
// each poll typically drains a batch.
const livePollInterval = 100 * time.Millisecond

// handleJobLive streams a running job's window series as Server-Sent
// Events: one "meta" event, then a "window" event per WindowSnapshot
// (replayed from seq 0, so a late subscriber sees the full history the
// ring still holds), then a terminal "done" event. A job that already
// left the scheduler answers with "done" immediately — the series
// itself is gone, but the result is one GET /jobs/{key} away.
func (s *Server) handleJobLive(w http.ResponseWriter, r *http.Request, key string) {
	if r.Method != http.MethodGet {
		httpError(w, r, http.StatusMethodNotAllowed, "GET only")
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		httpError(w, r, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	job := s.sched.Job(key)
	if job == nil {
		if !s.cache.Has(key) {
			httpError(w, r, http.StatusNotFound, "no such job %q", key)
			return
		}
		// Completed before anyone subscribed: the sampler is gone with
		// the job, so the stream is just its epitaph.
		sseHeaders(w)
		sseEvent(w, "done", liveDone{Status: "done", Key: key})
		flusher.Flush()
		return
	}
	sseHeaders(w)

	var (
		sampler  *core.WindowSampler
		after    int64 // replay from the beginning of the ring
		metaSent bool
	)
	ticker := time.NewTicker(livePollInterval)
	defer ticker.Stop()
	for {
		if sampler == nil {
			sampler = job.Sampler() // appears when the job starts running
		}
		if sampler != nil {
			if !metaSent {
				m := sampler.Meta()
				sseEvent(w, "meta", liveMeta{
					Key: key, Status: job.State().String(),
					WindowCycles: m.WindowCycles, HealthyNodes: m.HealthyNodes,
					TotalCycles: m.TotalCycles,
				})
				metaSent = true
			}
			for _, snap := range sampler.Since(after) {
				sseEvent(w, "window", snap)
				after = snap.Seq + 1 // Since is inclusive of `after`
			}
			flusher.Flush()
		}
		select {
		case <-job.Done():
			// Drain windows appended between the last poll and Flush.
			if sampler == nil {
				sampler = job.Sampler() // job finished between polls
			}
			if sampler != nil {
				for _, snap := range sampler.Since(after) {
					sseEvent(w, "window", snap)
					after = snap.Seq + 1 // Since is inclusive of `after`
				}
			}
			done := liveDone{Status: job.State().String(), Key: key}
			if _, _, err := job.Outcome(); err != nil {
				done.Error = err.Error()
			}
			sseEvent(w, "done", done)
			flusher.Flush()
			return
		case <-r.Context().Done():
			return
		case <-ticker.C:
		}
	}
}

// sseHeaders commits the response as an event stream.
func sseHeaders(w http.ResponseWriter) {
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
}

// sseEvent writes one named SSE event with a JSON data line.
func sseEvent(w http.ResponseWriter, event string, v any) {
	b, err := json.Marshal(v)
	if err != nil {
		return
	}
	w.Write([]byte("event: " + event + "\ndata: "))
	w.Write(b)
	w.Write([]byte("\n\n"))
}
