package serve

import (
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"time"

	"wormmesh/internal/trace"
)

// Request observability: the middleware that opens one root span per
// HTTP request (honoring an incoming Traceparent header), stamps the
// trace ID onto the response, feeds the RED metrics and the structured
// access log, plus the /traces endpoints that render a finished trace
// as a span tree or as Chrome trace-event JSON for Perfetto.

// spanKey carries the request's root span through the request context.
type spanKey struct{}

// spanFrom returns the request's root span, or nil when tracing is off.
// Span methods are nil-safe, so call sites need no guards.
func spanFrom(r *http.Request) *trace.Span {
	s, _ := r.Context().Value(spanKey{}).(*trace.Span)
	return s
}

// routeOf classifies a path into the RED metrics' fixed route
// vocabulary (bounded label cardinality — arbitrary paths collapse
// into "other").
func routeOf(path string) string {
	switch {
	case path == "/run":
		return "run"
	case path == "/sweep":
		return "sweep"
	case strings.HasPrefix(path, "/jobs/"):
		return "jobs"
	case strings.HasPrefix(path, "/traces/"):
		return "traces"
	case path == "/healthz":
		return "healthz"
	case path == "/readyz":
		return "readyz"
	case path == "/metrics":
		return "metrics"
	}
	return "other"
}

// statusWriter captures the response status for the span, the RED
// error counter and the access log.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.code == 0 {
		w.code = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.code == 0 {
		w.code = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// Flush forwards http.Flusher through the wrapper so streaming
// handlers (the SSE live stream) can push partial responses.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// observe wraps the mux: root span per request (child of an incoming
// Traceparent, if any), X-Trace-Id/Traceparent response headers, RED
// observation and one structured access-log line per request.
func (s *Server) observe(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		route := routeOf(r.URL.Path)
		var span *trace.Span
		var traceID string
		if s.tracer != nil {
			parent, _ := trace.ParseTraceparent(r.Header.Get("Traceparent"))
			span = s.tracer.StartAt("HTTP "+r.Method+" "+r.URL.Path, parent, start)
			span.Set("route", route)
			traceID = span.TraceID().String()
			w.Header().Set("X-Trace-Id", traceID)
			w.Header().Set("Traceparent", span.Context().Traceparent())
			r = r.WithContext(context.WithValue(r.Context(), spanKey{}, span))
		}
		sw := &statusWriter{ResponseWriter: w}
		next.ServeHTTP(sw, r)
		code := sw.code
		if code == 0 {
			code = http.StatusOK
		}
		elapsed := time.Since(start)
		span.Set("status", code)
		span.End()
		if s.met != nil {
			s.met.ObserveHTTP(route, code, elapsed.Seconds())
		}
		attrs := []any{
			"method", r.Method, "path", r.URL.Path, "route", route,
			"status", code, "elapsed_s", elapsed.Seconds(),
		}
		if span != nil {
			attrs = append(attrs, "trace_id", traceID)
		}
		s.logger.Info("http", attrs...)
	})
}

// traceSpanJSON is one span in the GET /traces/{id} tree.
type traceSpanJSON struct {
	SpanID          string           `json:"span_id"`
	ParentID        string           `json:"parent_id,omitempty"`
	Name            string           `json:"name"`
	Start           time.Time        `json:"start"`
	DurationSeconds float64          `json:"duration_seconds"`
	Attrs           map[string]any   `json:"attrs,omitempty"`
	EngineEvents    int              `json:"engine_events,omitempty"`
	Children        []*traceSpanJSON `json:"children,omitempty"`
}

// traceResponse is the GET /traces/{id} body: the flat count, the
// orphan count (zero in a healthy trace — the e2e tests assert it) and
// the resolved span tree.
type traceResponse struct {
	TraceID string           `json:"trace_id"`
	Spans   int              `json:"spans"`
	Orphans int              `json:"orphans"`
	Tree    []*traceSpanJSON `json:"tree"`
}

func toTraceJSON(n *trace.Node) *traceSpanJSON {
	out := &traceSpanJSON{
		SpanID:          n.ID.String(),
		Name:            n.Name,
		Start:           n.Start,
		DurationSeconds: n.Duration().Seconds(),
		EngineEvents:    len(n.Engine),
	}
	if !n.Parent.IsZero() {
		out.ParentID = n.Parent.String()
	}
	if len(n.Attrs) > 0 {
		out.Attrs = make(map[string]any, len(n.Attrs))
		for _, a := range n.Attrs {
			out.Attrs[a.Key] = a.Value
		}
	}
	for _, c := range n.Children {
		out.Children = append(out.Children, toTraceJSON(c))
	}
	return out
}

// handleTrace serves GET /traces/{id} (span tree) and
// GET /traces/{id}.json (Chrome trace-event JSON for Perfetto /
// chrome://tracing).
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, r, http.StatusMethodNotAllowed, "GET only")
		return
	}
	if s.tracer == nil {
		httpError(w, r, http.StatusNotFound, "tracing disabled")
		return
	}
	id := strings.TrimPrefix(r.URL.Path, "/traces/")
	chrome := strings.HasSuffix(id, ".json")
	id = strings.TrimSuffix(id, ".json")
	tid, ok := trace.ParseTraceID(id)
	if !ok {
		httpError(w, r, http.StatusBadRequest, "malformed trace id %q", id)
		return
	}
	spans := s.tracer.Collect(tid)
	if len(spans) == 0 {
		httpError(w, r, http.StatusNotFound, "no spans recorded for trace %s", id)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if chrome {
		if err := trace.WriteChrome(w, spans); err != nil {
			s.logger.Error("chrome trace export", "trace_id", id, "error", err)
		}
		return
	}
	roots, orphans := trace.BuildTree(spans)
	resp := traceResponse{TraceID: id, Spans: len(spans), Orphans: orphans}
	for _, root := range roots {
		resp.Tree = append(resp.Tree, toTraceJSON(root))
	}
	json.NewEncoder(w).Encode(resp)
}

// healthzResponse is the GET /healthz body: liveness plus a cheap
// status snapshot (uptime, cache and queue occupancy).
type healthzResponse struct {
	OK            bool    `json:"ok"`
	UptimeSeconds float64 `json:"uptime_seconds"`
	CacheEntries  int     `json:"cache_entries"`
	QueueDepth    int     `json:"queue_depth"`
	InFlight      int     `json:"in_flight"`
	TraceSpans    int     `json:"trace_spans"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	resp := healthzResponse{
		OK:            true,
		UptimeSeconds: time.Since(s.started).Seconds(),
		CacheEntries:  s.cache.Len(),
		QueueDepth:    s.sched.QueueDepth(),
		InFlight:      s.sched.InFlight(),
	}
	if s.tracer != nil {
		resp.TraceSpans = s.tracer.Len()
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(resp)
}

// readyzResponse is the GET /readyz body; Reasons is non-empty exactly
// when the status is 503.
type readyzResponse struct {
	Ready   bool     `json:"ready"`
	Reasons []string `json:"reasons,omitempty"`
}

// handleReadyz: ready = disk store writable (when configured) AND the
// scheduler accepting jobs. Distinct from /healthz — a draining server
// is alive but not ready, so load balancers stop routing to it first.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	resp := readyzResponse{Ready: true}
	if s.cache.store != nil {
		if err := s.cache.store.Probe(); err != nil {
			resp.Ready = false
			resp.Reasons = append(resp.Reasons, "store not writable: "+err.Error())
		}
	}
	if !s.sched.Ready() {
		resp.Ready = false
		resp.Reasons = append(resp.Reasons, "scheduler closed")
	}
	w.Header().Set("Content-Type", "application/json")
	if !resp.Ready {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	json.NewEncoder(w).Encode(resp)
}
