package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"wormmesh/internal/sim"
)

// quickParams is a cell small enough for handler tests: a 6×6 mesh,
// short messages, ~1s simulated in well under 100ms.
func quickParams() sim.Params {
	p := sim.DefaultParams()
	p.Width, p.Height = 6, 6
	p.Rate = 0.002
	p.MessageLength = 20
	p.WarmupCycles = 200
	p.MeasureCycles = 800
	return p
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Workers == 0 {
		cfg.Workers = 2
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() { ts.Close(); s.Close() })
	return s, ts
}

func postRun(t *testing.T, url string, p sim.Params, wait bool) (*http.Response, []byte) {
	t.Helper()
	body, err := json.Marshal(runRequest{Params: p, Wait: wait})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/run", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

// TestKeyNormalization: the cache-key contract over real Params — a
// request spelling every default explicitly and one leaving them zero
// address the same entry; meaningful differences do not.
func TestKeyNormalization(t *testing.T) {
	explicit := quickParams() // DefaultParams spells defaults out
	sparse := sim.Params{
		Width: 6, Height: 6,
		Rate: 0.002, MessageLength: 20,
		WarmupCycles: 200, MeasureCycles: 800,
	}
	k1, np1, err := Key(explicit)
	if err != nil {
		t.Fatal(err)
	}
	k2, np2, err := Key(sparse)
	if err != nil {
		t.Fatal(err)
	}
	if k1 != k2 {
		t.Errorf("explicit defaults keyed %s, sparse %s\nnp1=%+v\nnp2=%+v", k1, k2, np1, np2)
	}

	// Worker counts >= 1 share the parallel arbitration model.
	w4 := explicit
	w4.EngineWorkers = 4
	w1 := explicit
	w1.EngineWorkers = 1
	k4, _, _ := Key(w4)
	kw1, _, _ := Key(w1)
	if k4 != kw1 {
		t.Error("EngineWorkers 4 and 1 keyed differently (worker count is capacity, not configuration)")
	}
	if k4 == k1 {
		t.Error("parallel and serial engines keyed identically (their arbitration differs)")
	}

	// Observers never change Stats: an observed request shares the key.
	traced := explicit
	traced.TraceWriter = &bytes.Buffer{}
	traced.WindowCycles = 100
	traced.Config.ChannelTelemetry = true
	kt, _, _ := Key(traced)
	if kt != k1 {
		t.Error("observer fields leaked into the cache key")
	}

	// Meaningful differences must split.
	diff := explicit
	diff.Rate = 0.004
	if kd, _, _ := Key(diff); kd == k1 {
		t.Error("different Rate collided")
	}

	// Fault-free requests ignore FaultSeed; faulted ones don't.
	fs := explicit
	fs.FaultSeed = 77
	if kf, _, _ := Key(fs); kf != k1 {
		t.Error("FaultSeed split fault-free requests")
	}
	f1 := explicit
	f1.Faults = 3
	f2 := f1
	f2.FaultSeed = 77
	kf1, _, _ := Key(f1)
	kf2, _, _ := Key(f2)
	if kf1 == kf2 {
		t.Error("FaultSeed ignored for faulted requests")
	}

	// Unrunnable requests are rejected at the door.
	for name, bad := range map[string]sim.Params{
		"no dims":   {Rate: 0.001},
		"no rate":   {Width: 6, Height: 6},
		"bad alg":   {Width: 6, Height: 6, Rate: 0.001, Algorithm: "nope"},
		"torus MA":  {Width: 6, Height: 6, Rate: 0.001, Topology: "torus", Algorithm: "Minimal-Adaptive"},
		"neg fault": {Width: 6, Height: 6, Rate: 0.001, Faults: -1},
	} {
		if _, _, err := Key(bad); err == nil {
			t.Errorf("%s: Key accepted unrunnable params", name)
		}
	}
}

// TestRunWarmHit: a second identical request is served from cache with
// the same body — and after a restart over the same directory, from
// disk with the same ResultDigest.
func TestRunWarmHit(t *testing.T) {
	dir := t.TempDir()
	p := quickParams()

	s1, ts1 := newTestServer(t, Config{Dir: dir})
	resp, cold := postRun(t, ts1.URL, p, true)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cold: status %d: %s", resp.StatusCode, cold)
	}
	if h := resp.Header.Get("X-Cache"); h != "miss" {
		t.Errorf("cold X-Cache = %q", h)
	}
	resp, warm := postRun(t, ts1.URL, p, true)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("warm: status %d", resp.StatusCode)
	}
	if h := resp.Header.Get("X-Cache"); h != "hit" {
		t.Errorf("warm X-Cache = %q", h)
	}
	if !bytes.Equal(cold, warm) {
		t.Error("warm body differs from cold body")
	}
	var coldEntry Entry
	if err := json.Unmarshal(cold, &coldEntry); err != nil {
		t.Fatal(err)
	}
	if coldEntry.Provenance != "simulated" || coldEntry.ResultDigest == "" {
		t.Fatalf("cold entry malformed: %+v", coldEntry)
	}
	hits1, _, _ := s1.Cache().Stats()
	if hits1 != 1 {
		t.Errorf("hits after warm request = %d", hits1)
	}
	ts1.Close()
	s1.Close()

	// Restart over the same directory: the disk tier must answer with
	// the identical digest, no simulation.
	s2, ts2 := newTestServer(t, Config{Dir: dir})
	resp, again := postRun(t, ts2.URL, p, true)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("restart: status %d", resp.StatusCode)
	}
	if h := resp.Header.Get("X-Cache"); h != "hit" {
		t.Errorf("restart X-Cache = %q (disk store did not survive)", h)
	}
	var e2 Entry
	if err := json.Unmarshal(again, &e2); err != nil {
		t.Fatal(err)
	}
	if e2.ResultDigest != coldEntry.ResultDigest {
		t.Errorf("restart digest %s != original %s", e2.ResultDigest, coldEntry.ResultDigest)
	}
	_, diskHits, _ := s2.Cache().Stats()
	if diskHits != 1 {
		t.Errorf("disk hits after restart = %d", diskHits)
	}
}

// TestSingleflight: N concurrent identical misses run exactly one
// simulation and every caller reads bit-identical bytes. Run under
// -race in CI.
func TestSingleflight(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2})
	var sims atomic.Int64
	inner := s.sched.run
	s.sched.run = func(r *sim.Runner, p sim.Params) (sim.Result, error) {
		sims.Add(1)
		time.Sleep(20 * time.Millisecond) // widen the dedup window
		return inner(r, p)
	}

	const callers = 32
	p := quickParams()
	bodies := make([][]byte, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body, err := json.Marshal(runRequest{Params: p, Wait: true})
			if err != nil {
				t.Error(err)
				return
			}
			resp, err := http.Post(ts.URL+"/run", "application/json", bytes.NewReader(body))
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close()
			var buf bytes.Buffer
			buf.ReadFrom(resp.Body)
			if resp.StatusCode != http.StatusOK {
				t.Errorf("caller %d: status %d: %s", i, resp.StatusCode, buf.String())
				return
			}
			bodies[i] = buf.Bytes()
		}(i)
	}
	wg.Wait()
	if n := sims.Load(); n != 1 {
		t.Errorf("%d concurrent identical requests ran %d simulations, want 1", callers, n)
	}
	for i := 1; i < callers; i++ {
		if !bytes.Equal(bodies[i], bodies[0]) {
			t.Fatalf("caller %d read different bytes", i)
		}
	}
}

// TestBackpressure: a full queue answers 429 with a Retry-After.
func TestBackpressure(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 1})
	release := make(chan struct{})
	s.sched.run = func(r *sim.Runner, p sim.Params) (sim.Result, error) {
		<-release
		return r.Run(p)
	}
	defer close(release)

	// Occupy the worker, then the single queue slot, with distinct keys.
	for i := 0; i < 2; i++ {
		p := quickParams()
		p.Seed = int64(100 + i)
		resp, _ := postRun(t, ts.URL, p, false)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("setup request %d: status %d", i, resp.StatusCode)
		}
	}
	// Give the worker a moment to dequeue the first job.
	deadline := time.Now().Add(time.Second)
	for s.sched.QueueDepth() > 1 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}

	p := quickParams()
	p.Seed = 999
	resp, _ := postRun(t, ts.URL, p, false)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	ra, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || ra < 1 {
		t.Errorf("Retry-After = %q, want integer >= 1", resp.Header.Get("Retry-After"))
	}
}

// TestSweepEndpoint: a waited sweep simulates every cell once; the
// identical re-POST answers entirely from cache with identical digests.
func TestSweepEndpoint(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2})
	var sims atomic.Int64
	inner := s.sched.run
	s.sched.run = func(r *sim.Runner, p sim.Params) (sim.Result, error) {
		sims.Add(1)
		return inner(r, p)
	}

	base := quickParams()
	req := sweepRequest{
		Base:       base,
		Algorithms: []string{"Duato", "NHop"},
		Rates:      []float64{0.001, 0.002, 0.003},
		Wait:       true,
	}
	post := func() sweepResponse {
		t.Helper()
		body, _ := json.Marshal(req)
		resp, err := http.Post(ts.URL+"/sweep", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var sr sweepResponse
		if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("sweep status %d", resp.StatusCode)
		}
		return sr
	}

	first := post()
	if first.Status != "done" || first.Done != 6 || len(first.Cells) != 6 {
		t.Fatalf("first sweep: %+v", first)
	}
	if n := sims.Load(); n != 6 {
		t.Fatalf("first sweep ran %d simulations, want 6", n)
	}
	for _, c := range first.Cells {
		if c.Provenance != "simulated" || c.Result == nil || c.Result.ResultDigest == "" {
			t.Fatalf("cell %s@%g: %+v", c.Algorithm, c.Rate, c)
		}
	}

	second := post()
	if n := sims.Load(); n != 6 {
		t.Errorf("re-POST ran %d new simulations, want 0", n-6)
	}
	if second.Status != "done" {
		t.Fatalf("second sweep status %q", second.Status)
	}
	for i, c := range second.Cells {
		if c.Result.ResultDigest != first.Cells[i].Result.ResultDigest {
			t.Errorf("cell %d digest changed across identical sweeps", i)
		}
	}
	if second.ID != first.ID {
		t.Errorf("sweep ID not content-addressed: %s vs %s", second.ID, first.ID)
	}
}

// TestSweepModelFastPath: a no-wait sweep answers misses instantly with
// provenance "model" where the surrogate applies, and the job endpoint
// tracks completion until every cell is simulated.
func TestSweepModelFastPath(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	base := quickParams()
	req := sweepRequest{Base: base, Rates: []float64{0.001, 0.002}}
	body, _ := json.Marshal(req)
	resp, err := http.Post(ts.URL+"/sweep", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var sr sweepResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("no-wait sweep status %d, want 202", resp.StatusCode)
	}
	for _, c := range sr.Cells {
		if c.Provenance != "model" || c.Model == nil {
			t.Fatalf("miss not model-answered: %+v", c)
		}
		if c.Model.Provenance != "model" || c.Model.Knee <= 0 {
			t.Fatalf("model answer malformed: %+v", c.Model)
		}
		if !c.Model.Saturated && float64(c.Model.Latency) <= 0 {
			t.Fatalf("stable-region model latency %v", c.Model.Latency)
		}
	}

	// Poll the job handle until done.
	deadline := time.Now().Add(30 * time.Second)
	for {
		jr, err := http.Get(ts.URL + sr.StatusURL)
		if err != nil {
			t.Fatal(err)
		}
		var js sweepResponse
		if err := json.NewDecoder(jr.Body).Decode(&js); err != nil {
			t.Fatal(err)
		}
		jr.Body.Close()
		if js.Status == "done" {
			for _, c := range js.Cells {
				if c.Provenance != "simulated" {
					t.Fatalf("done sweep cell still %q", c.Provenance)
				}
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("sweep never completed: %+v", js)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestModelAnswerUnsupported: torus cells get no surrogate answer.
func TestModelAnswerUnsupported(t *testing.T) {
	s, err := New(Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	p := quickParams()
	p.Topology = "torus"
	_, np, err := Key(p)
	if err != nil {
		t.Fatal(err)
	}
	if m := s.modelAnswer(np); m != nil {
		t.Errorf("torus got a model answer: %+v", m)
	}
	mesh := quickParams()
	_, np, err = Key(mesh)
	if err != nil {
		t.Fatal(err)
	}
	if m := s.modelAnswer(np); m == nil {
		t.Error("mesh cell got no model answer")
	}
}

// TestJobStatusEndpoint covers the run-key side of /jobs: pending,
// then done with the result, and 404s for unknown keys.
func TestJobStatusEndpoint(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})
	release := make(chan struct{})
	inner := s.sched.run
	s.sched.run = func(r *sim.Runner, p sim.Params) (sim.Result, error) {
		<-release
		return inner(r, p)
	}

	p := quickParams()
	resp, body := postRun(t, ts.URL, p, false)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var acc runAccepted
	if err := json.Unmarshal(body, &acc); err != nil {
		t.Fatal(err)
	}
	if acc.Model == nil || acc.Model.Provenance != "model" {
		t.Errorf("run miss got no model fast path: %+v", acc)
	}

	jr, err := http.Get(ts.URL + acc.StatusURL)
	if err != nil {
		t.Fatal(err)
	}
	var st runStatus
	json.NewDecoder(jr.Body).Decode(&st)
	jr.Body.Close()
	if st.Status != "queued" && st.Status != "running" {
		t.Errorf("pre-release status %q", st.Status)
	}

	close(release)
	deadline := time.Now().Add(30 * time.Second)
	for {
		jr, err := http.Get(ts.URL + acc.StatusURL)
		if err != nil {
			t.Fatal(err)
		}
		json.NewDecoder(jr.Body).Decode(&st)
		jr.Body.Close()
		if st.Status == "done" {
			if st.Result == nil || st.Result.Provenance != "simulated" {
				t.Fatalf("done status carries no result: %+v", st)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never completed")
		}
		time.Sleep(5 * time.Millisecond)
	}

	nf, err := http.Get(ts.URL + "/jobs/no-such-key")
	if err != nil {
		t.Fatal(err)
	}
	nf.Body.Close()
	if nf.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job status %d, want 404", nf.StatusCode)
	}
}

// TestRunRejectsBadParams: normalization failures are 400s, not 500s.
func TestRunRejectsBadParams(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	p := sim.Params{Width: 6, Height: 6, Rate: 0.001, Algorithm: "no-such"}
	resp, _ := postRun(t, ts.URL, p, true)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("status %d, want 400", resp.StatusCode)
	}
	r2, err := http.Post(ts.URL+"/run", "application/json", bytes.NewReader([]byte("{not json")))
	if err != nil {
		t.Fatal(err)
	}
	r2.Body.Close()
	if r2.StatusCode != http.StatusBadRequest {
		t.Errorf("garbage body: status %d, want 400", r2.StatusCode)
	}
}

// TestHealthz sanity-checks the liveness endpoint.
func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz status %d", resp.StatusCode)
	}
}
