package serve

import (
	"container/list"
	"encoding/json"
	"sync"
	"sync/atomic"
	"time"

	"wormmesh/internal/metrics"
)

// Cache tiers, as reported by GetTagged and tagged onto spans,
// X-Cache headers and the lookup-latency histogram labels.
const (
	TierMemory = "memory"
	TierDisk   = "disk"
)

// Cache is the two-tier result cache: an in-memory LRU of decoded
// entries with their pre-marshaled response bodies, over an optional
// disk Store. The warm-hit path — Get on a memory-resident key — is a
// map lookup plus a list splice and allocates nothing, which is what
// keeps repeated parameter studies at lookup cost. Disk hits are
// promoted into memory; evicted entries survive on disk.
type Cache struct {
	mu    sync.Mutex
	max   int
	ll    *list.List               // front = most recent
	items map[string]*list.Element // key -> element holding *cacheItem

	store *Store // nil = memory-only

	hits, misses, diskHits atomic.Int64
	met                    *metrics.Server // nil ok
}

type cacheItem struct {
	key   string
	entry *Entry
	body  []byte // marshaled entry, served verbatim on hits
}

// NewCache builds a cache holding up to max entries in memory (4096
// when max <= 0) over store (nil for memory-only). met, when non-nil,
// receives hit/miss counters.
func NewCache(max int, store *Store, met *metrics.Server) *Cache {
	if max <= 0 {
		max = 4096
	}
	return &Cache{
		max:   max,
		ll:    list.New(),
		items: make(map[string]*list.Element),
		store: store,
		met:   met,
	}
}

// OpenDiskCache is the CLI convenience constructor: a disk store at dir
// under a memory LRU of mem entries, with no metrics.
func OpenDiskCache(dir string, mem int) (*Cache, error) {
	store, err := OpenStore(dir)
	if err != nil {
		return nil, err
	}
	return NewCache(mem, store, nil), nil
}

// Get returns the entry and its marshaled body, or ok=false on a miss.
// Memory hits are allocation-free; disk hits are promoted.
func (c *Cache) Get(key string) (*Entry, []byte, bool) {
	e, body, _, ok := c.GetTagged(key)
	return e, body, ok
}

// GetTagged is Get plus provenance: tier reports which tier answered
// ("memory" or "disk", "" on a miss) so handlers can tag spans and
// response headers, and the per-tier lookup-latency histograms get
// their observations. Lookup timing is taken only when metrics are
// attached — a metric-less cache (CLIs, benchmarks) keeps the warm
// path at a map lookup plus a list splice, no clock reads, zero
// allocations.
func (c *Cache) GetTagged(key string) (*Entry, []byte, string, bool) {
	var start time.Time
	if c.met != nil {
		start = time.Now()
	}
	c.mu.Lock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		it := el.Value.(*cacheItem)
		c.mu.Unlock()
		c.hits.Add(1)
		if c.met != nil {
			c.met.CacheHits.Inc()
			c.met.LookupMemSeconds.Observe(time.Since(start).Seconds())
		}
		return it.entry, it.body, TierMemory, true
	}
	c.mu.Unlock()

	if c.store != nil {
		if e, body, err := c.store.Get(key); err == nil && e != nil {
			c.insert(key, e, body)
			c.hits.Add(1)
			c.diskHits.Add(1)
			if c.met != nil {
				c.met.CacheHits.Inc()
				c.met.DiskHits.Inc()
				c.met.LookupDiskSeconds.Observe(time.Since(start).Seconds())
			}
			return e, body, TierDisk, true
		}
	}
	c.misses.Add(1)
	if c.met != nil {
		c.met.CacheMisses.Inc()
	}
	return nil, nil, "", false
}

// Has reports presence (memory or disk) without touching the hit/miss
// counters or the LRU order — for status polls that must not pollute
// cache statistics.
func (c *Cache) Has(key string) bool {
	c.mu.Lock()
	_, ok := c.items[key]
	c.mu.Unlock()
	if ok {
		return true
	}
	return c.store != nil && c.store.Has(key)
}

// peek returns the memory-resident entry for key without touching the
// counters or the LRU order, or nil — for status polls.
func (c *Cache) peek(key string) *Entry {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		return el.Value.(*cacheItem).entry
	}
	return nil
}

// Put files an entry under its key in both tiers and returns the
// marshaled body it will serve on future hits.
func (c *Cache) Put(e *Entry) ([]byte, error) {
	body, err := json.Marshal(e)
	if err != nil {
		return nil, err
	}
	c.insert(e.Key, e, body)
	if c.store != nil {
		if err := c.store.Put(e.Key, body); err != nil {
			return body, err
		}
	}
	return body, nil
}

func (c *Cache) insert(key string, e *Entry, body []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		it := el.Value.(*cacheItem)
		it.entry, it.body = e, body
		return
	}
	c.items[key] = c.ll.PushFront(&cacheItem{key: key, entry: e, body: body})
	for c.ll.Len() > c.max {
		last := c.ll.Back()
		c.ll.Remove(last)
		delete(c.items, last.Value.(*cacheItem).key)
	}
}

// Len returns the number of memory-resident entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Stats returns cumulative lookup counters: hits (with the disk-hit
// subset) and misses.
func (c *Cache) Stats() (hits, diskHits, misses int64) {
	return c.hits.Load(), c.diskHits.Load(), c.misses.Load()
}
