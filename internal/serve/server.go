package serve

import (
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"time"

	"wormmesh/internal/analytic"
	"wormmesh/internal/core"
	"wormmesh/internal/metrics"
	"wormmesh/internal/sim"
	"wormmesh/internal/sweep"
	"wormmesh/internal/trace"
)

// Config tunes a Server.
type Config struct {
	// Dir, when non-empty, roots the disk store; empty = memory-only.
	Dir string
	// MemEntries bounds the in-memory LRU (4096 when 0).
	MemEntries int
	// Workers sizes the simulation fleet (NumCPU when 0).
	Workers int
	// QueueDepth bounds the miss queue; beyond it requests get 429
	// (256 when 0).
	QueueDepth int
	// MaxRunners caps warm Runners parked between jobs (Workers when 0).
	MaxRunners int
	// Registry, when non-nil, receives the serve counter set.
	Registry *metrics.Registry
	// Logger, when non-nil, receives the structured access and
	// job-lifecycle logs; nil discards them.
	Logger *slog.Logger
	// TraceSpans bounds the tracer's completed-span ring
	// (trace.DefaultCapacity when 0); negative disables tracing.
	TraceSpans int
	// EngineEvents sizes each job's span-scoped engine flight recorder
	// (core.DefaultFlightRecorderEvents when 0); negative disables the
	// engine bridge while keeping service spans.
	EngineEvents int
	// WindowCycles sets the width of each job's live window sampler in
	// cycles (core.DefaultWindowCycles when 0) — the time-resolved
	// series behind GET /jobs/{id}/live, the run-span counter tracks
	// and the measured per-run ETA. Negative disables window sampling.
	WindowCycles int64
}

// Server wires cache, scheduler and surrogate into an http.Handler.
type Server struct {
	cache   *Cache
	sched   *Scheduler
	met     *metrics.Server
	tracer  *trace.Tracer // nil = tracing disabled
	logger  *slog.Logger  // never nil (discard by default)
	started time.Time

	modelMu sync.Mutex
	models  map[string]cachedModel // key: config-class digest

	sweepMu  sync.Mutex
	sweeps   map[string]*sweepJob
	sweepLog []string // FIFO eviction

	mux *http.ServeMux
}

// cachedModel memoizes a built surrogate with its saturation knee:
// faulted table builds cost ~0.2s and the knee bisection runs 60
// Predicts, while a memoized Predict is microseconds — the difference
// between a <1ms fast path and a multi-ms one.
type cachedModel struct {
	model analytic.Model
	knee  float64
}

// sweepJob tracks one accepted sweep: the cells it expanded into and
// when it was accepted, so /jobs can report progress by counting cells
// present in the cache.
type sweepJob struct {
	ID       string
	Accepted time.Time
	Cells    []sweepCell
}

type sweepCell struct {
	Key       string
	Algorithm string
	Rate      float64
}

// maxTrackedSweeps bounds the sweep-status map.
const maxTrackedSweeps = 256

// New builds a Server. Close releases its workers and runners.
func New(cfg Config) (*Server, error) {
	var met *metrics.Server
	if cfg.Registry != nil {
		met = metrics.NewServer(cfg.Registry)
	}
	var store *Store
	if cfg.Dir != "" {
		var err error
		store, err = OpenStore(cfg.Dir)
		if err != nil {
			return nil, err
		}
	}
	cache := NewCache(cfg.MemEntries, store, met)
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	maxRunners := cfg.MaxRunners
	if maxRunners <= 0 {
		maxRunners = workers
	}
	pool := sim.NewRunnerPool(maxRunners)
	logger := cfg.Logger
	if logger == nil {
		logger = slog.New(slog.DiscardHandler)
	}
	var tracer *trace.Tracer
	if cfg.TraceSpans >= 0 {
		capacity := cfg.TraceSpans
		if capacity == 0 {
			capacity = trace.DefaultCapacity
		}
		tracer = trace.New(capacity)
	}
	engineEvents := cfg.EngineEvents
	if engineEvents == 0 {
		engineEvents = core.DefaultFlightRecorderEvents
	}
	if engineEvents < 0 {
		engineEvents = 0
	}
	s := &Server{
		cache:   cache,
		sched:   NewScheduler(cache, workers, cfg.QueueDepth, pool, met),
		met:     met,
		tracer:  tracer,
		logger:  logger,
		started: time.Now(),
		models:  make(map[string]cachedModel),
		sweeps:  make(map[string]*sweepJob),
		mux:     http.NewServeMux(),
	}
	windowCycles := cfg.WindowCycles
	if windowCycles == 0 {
		windowCycles = core.DefaultWindowCycles
	}
	if windowCycles < 0 {
		windowCycles = 0
	}
	// Same-package wiring, before any Submit can reach a worker.
	s.sched.tracer = tracer
	s.sched.engineEvents = engineEvents
	s.sched.windowCycles = windowCycles
	s.sched.logger = logger
	s.mux.HandleFunc("/run", s.handleRun)
	s.mux.HandleFunc("/sweep", s.handleSweep)
	s.mux.HandleFunc("/jobs/", s.handleJob)
	s.mux.HandleFunc("/traces/", s.handleTrace)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/readyz", s.handleReadyz)
	// Catch-all: unknown paths get the same JSON error envelope as
	// every other error in the service.
	s.mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		httpError(w, r, http.StatusNotFound, "no such endpoint %s", r.URL.Path)
	})
	return s, nil
}

// Handler returns the server's HTTP handler: the endpoint mux behind
// the observability middleware (root span, RED metrics, access log).
func (s *Server) Handler() http.Handler { return s.observe(s.mux) }

// Tracer exposes the span ring (for CLIs embedding the server and for
// tests); nil when tracing is disabled.
func (s *Server) Tracer() *trace.Tracer { return s.tracer }

// Cache exposes the result cache (for CLIs embedding the server).
func (s *Server) Cache() *Cache { return s.cache }

// Close drains the worker fleet.
func (s *Server) Close() { s.sched.Close() }

// InFlight reports jobs queued or running — what a graceful drain
// waits on.
func (s *Server) InFlight() int { return s.sched.InFlight() }

// ModelAnswer is the surrogate's provisional reply to a cache miss:
// tagged provenance "model" so clients can tell an analytic estimate
// (≤13.2% stable-region latency error) from exact simulation. The
// simulated entry replaces it when the job lands.
type ModelAnswer struct {
	Provenance string  `json:"provenance"` // always "model"
	Latency    Float   `json:"latency_cycles"`
	Accepted   Float   `json:"accepted_flits"`
	Normalized Float   `json:"normalized_throughput"`
	Knee       float64 `json:"knee_rate"`
	Saturated  bool    `json:"saturated"`
}

// runRequest is the POST /run body.
type runRequest struct {
	Params   sim.Params `json:"params"`
	Priority int        `json:"priority"`
	Wait     bool       `json:"wait"`
}

// runAccepted is the 202 body for a scheduled miss.
type runAccepted struct {
	Status    string       `json:"status"`
	Key       string       `json:"key"`
	StatusURL string       `json:"status_url"`
	Model     *ModelAnswer `json:"model,omitempty"`
}

// httpError writes the service's single error envelope:
// {"error": "...", "trace_id": "..."} — every failure path, any
// endpoint, carries the trace ID so a client error report points
// straight at its spans.
func httpError(w http.ResponseWriter, r *http.Request, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	env := map[string]string{"error": fmt.Sprintf(format, args...)}
	if span := spanFrom(r); span != nil {
		env["trace_id"] = span.TraceID().String()
	}
	json.NewEncoder(w).Encode(env)
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	span := spanFrom(r)
	if r.Method != http.MethodPost {
		httpError(w, r, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var req runRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, r, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if r.URL.Query().Get("wait") == "1" {
		req.Wait = true
	}
	ns := span.Child("normalize")
	key, np, err := Key(req.Params)
	if err != nil {
		ns.Set("error", err.Error())
		ns.End()
		httpError(w, r, http.StatusBadRequest, "%v", err)
		return
	}
	ns.Set("key", key)
	ns.End()
	if s.met != nil {
		s.met.Requests.Inc()
	}
	ls := span.Child("cache.lookup")
	_, body, tier, ok := s.cache.GetTagged(key)
	if ok {
		ls.Set("tier", tier)
	}
	ls.End()
	if ok {
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("X-Cache", "hit")
		w.Header().Set("X-Cache-Tier", tier)
		w.Write(body)
		return
	}
	job, joined, err := s.sched.Submit(key, np, req.Priority, span.Context())
	if err == ErrQueueFull {
		w.Header().Set("Retry-After", strconv.Itoa(s.sched.RetryAfterSeconds()))
		httpError(w, r, http.StatusTooManyRequests, "queue full, retry later")
		return
	}
	if err != nil {
		httpError(w, r, http.StatusInternalServerError, "%v", err)
		return
	}
	if joined {
		// This request rides an earlier identical submission; its
		// stage spans live under that request's trace.
		span.Instant("singleflight.join", trace.Attr{Key: "key", Value: key})
	}
	if req.Wait {
		<-job.Done()
		entry, body, err := job.Outcome()
		if err != nil {
			httpError(w, r, http.StatusInternalServerError, "simulation failed: %v", err)
			return
		}
		_ = entry
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("X-Cache", "miss")
		w.Write(body)
		return
	}
	ms := span.Child("model.answer")
	model := s.modelAnswer(np)
	ms.Set("applicable", model != nil)
	ms.End()
	resp := runAccepted{
		Status:    "pending",
		Key:       key,
		StatusURL: "/jobs/" + key,
		Model:     model,
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusAccepted)
	json.NewEncoder(w).Encode(resp)
}

// modelAnswer evaluates the analytic surrogate for a normalized cell,
// or nil where the model doesn't apply (torus, unmodeled algorithms).
// Models are memoized per configuration class — the Params with rate,
// seeds and cycle counts zeroed — because a faulted table build costs
// ~0.2s while a memoized Predict is microseconds, and every rate on one
// curve shares a class.
func (s *Server) modelAnswer(np sim.Params) *ModelAnswer {
	if sweep.HybridSupported(np) != nil {
		return nil
	}
	class := np
	class.Rate = 0
	class.Seed = 0
	class.WarmupCycles = 0
	class.MeasureCycles = 0
	classKey, err := metrics.CanonicalDigest(class)
	if err != nil {
		return nil
	}
	s.modelMu.Lock()
	cm, ok := s.models[classKey]
	s.modelMu.Unlock()
	if !ok {
		model, err := sweep.Surrogate(np)
		if err != nil {
			return nil
		}
		cm = cachedModel{model: model, knee: model.SaturationRate()}
		s.modelMu.Lock()
		s.models[classKey] = cm
		s.modelMu.Unlock()
	}
	model, knee := cm.model, cm.knee
	ans := &ModelAnswer{Provenance: "model", Knee: knee}
	if pred, err := model.Predict(np.Rate); err == nil {
		ans.Latency = Float(pred.Latency)
		ans.Accepted = Float(np.Rate * float64(np.MessageLength))
	} else {
		// Beyond the stability region: the curve has flattened at the
		// knee's accepted load; latency diverges and is reported null.
		ans.Saturated = true
		ans.Latency = Float(nan())
		ans.Accepted = Float(knee * float64(np.MessageLength))
	}
	ans.Normalized = Float(float64(ans.Accepted) / meshCapacity(np))
	if s.met != nil {
		s.met.ModelAnswers.Inc()
	}
	return ans
}

// meshCapacity mirrors sim.Result.NormalizedThroughput's denominator
// for model answers (the surrogate is mesh-only, so no torus factor).
func meshCapacity(p sim.Params) float64 {
	minDim := p.Width
	if p.Height < minDim {
		minDim = p.Height
	}
	return 4 * float64(minDim) / float64(p.Width*p.Height)
}

func nan() float64 { var z float64; return z / z }

// sweepRequest is the POST /sweep body: a base cell expanded over
// algorithms × rates.
type sweepRequest struct {
	Base       sim.Params `json:"base"`
	Algorithms []string   `json:"algorithms"`
	Rates      []float64  `json:"rates"`
	Priority   int        `json:"priority"`
	Wait       bool       `json:"wait"`
}

// sweepCellStatus is one cell of a sweep response.
type sweepCellStatus struct {
	Algorithm  string       `json:"algorithm"`
	Rate       float64      `json:"rate"`
	Key        string       `json:"key"`
	Provenance string       `json:"provenance"` // simulated | model | pending
	Result     *Entry       `json:"result,omitempty"`
	Model      *ModelAnswer `json:"model,omitempty"`
}

// sweepResponse is the POST /sweep and GET /jobs/{sweep} body.
type sweepResponse struct {
	Status     string            `json:"status"` // done | pending
	ID         string            `json:"id"`
	StatusURL  string            `json:"status_url"`
	Done       int               `json:"done"`
	Total      int               `json:"total"`
	EtaSeconds Float             `json:"eta_seconds,omitempty"`
	Cells      []sweepCellStatus `json:"cells"`
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	span := spanFrom(r)
	if r.Method != http.MethodPost {
		httpError(w, r, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var req sweepRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, r, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if r.URL.Query().Get("wait") == "1" {
		req.Wait = true
	}
	if len(req.Algorithms) == 0 {
		req.Algorithms = []string{req.Base.Algorithm}
	}
	if len(req.Rates) == 0 {
		if req.Base.Rate > 0 {
			req.Rates = []float64{req.Base.Rate}
		} else {
			httpError(w, r, http.StatusBadRequest, "no rates given")
			return
		}
	}

	// Expand the grid: one content-addressed cell per algorithm × rate.
	es := span.Child("expand")
	var plans []cellPlan
	for _, alg := range req.Algorithms {
		for _, rate := range req.Rates {
			p := req.Base
			if alg != "" {
				p.Algorithm = alg
			}
			p.Rate = rate
			key, np, err := Key(p)
			if err != nil {
				es.End()
				httpError(w, r, http.StatusBadRequest, "cell %s@%g: %v", alg, rate, err)
				return
			}
			plans = append(plans, cellPlan{
				cell: sweepCell{Key: key, Algorithm: np.Algorithm, Rate: rate},
				np:   np,
			})
		}
	}
	es.Set("cells", len(plans))
	es.End()
	keys := make([]string, len(plans))
	for i, pl := range plans {
		keys[i] = pl.cell.Key
	}
	id, err := metrics.DigestJSON(keys)
	if err != nil {
		httpError(w, r, http.StatusInternalServerError, "%v", err)
		return
	}
	id = strings.ReplaceAll(id, ":", "-")
	span.Set("sweep_id", id)

	// Schedule every cold cell; cached cells answer immediately.
	resp := sweepResponse{ID: id, StatusURL: "/jobs/" + id, Total: len(plans)}
	for i := range plans {
		pl := &plans[i]
		if s.met != nil {
			s.met.Requests.Inc()
		}
		cs := span.Child("cell")
		cs.Set("key", pl.cell.Key)
		cs.Set("algorithm", pl.cell.Algorithm)
		cs.Set("rate", pl.cell.Rate)
		if entry, _, tier, ok := s.cache.GetTagged(pl.cell.Key); ok {
			cs.Set("tier", tier)
			cs.End()
			resp.Cells = append(resp.Cells, sweepCellStatus{
				Algorithm: pl.cell.Algorithm, Rate: pl.cell.Rate, Key: pl.cell.Key,
				Provenance: entry.Provenance, Result: entry,
			})
			resp.Done++
			continue
		}
		job, joined, err := s.sched.Submit(pl.cell.Key, pl.np, req.Priority, span.Context())
		if err == ErrQueueFull {
			cs.Set("error", "queue full")
			cs.End()
			w.Header().Set("Retry-After", strconv.Itoa(s.sched.RetryAfterSeconds()))
			httpError(w, r, http.StatusTooManyRequests, "queue full after %d cells, retry later", i)
			return
		}
		if err != nil {
			cs.End()
			httpError(w, r, http.StatusInternalServerError, "%v", err)
			return
		}
		if joined {
			cs.Instant("singleflight.join")
		}
		pl.job = job
		st := sweepCellStatus{
			Algorithm: pl.cell.Algorithm, Rate: pl.cell.Rate, Key: pl.cell.Key,
			Provenance: "pending",
		}
		// The surrogate fast path: misses answer instantly from the
		// analytic model where it applies, tagged so nobody mistakes an
		// estimate for a measurement.
		if m := s.modelAnswer(pl.np); m != nil {
			st.Provenance = m.Provenance
			st.Model = m
		}
		cs.Set("provenance", st.Provenance)
		cs.End()
		resp.Cells = append(resp.Cells, st)
	}

	cells := make([]sweepCell, len(plans))
	for i, pl := range plans {
		cells[i] = pl.cell
	}
	s.trackSweep(&sweepJob{ID: id, Accepted: time.Now(), Cells: cells})

	if req.Wait {
		for i := range plans {
			if plans[i].job == nil {
				continue
			}
			<-plans[i].job.Done()
			entry, _, err := plans[i].job.Outcome()
			if err != nil {
				httpError(w, r, http.StatusInternalServerError, "cell %s: %v", plans[i].cell.Key, err)
				return
			}
			resp.Cells[i] = sweepCellStatus{
				Algorithm: plans[i].cell.Algorithm, Rate: plans[i].cell.Rate, Key: plans[i].cell.Key,
				Provenance: entry.Provenance, Result: entry,
			}
			resp.Done++
		}
	}

	resp.Status = "pending"
	if resp.Done == resp.Total {
		resp.Status = "done"
	}
	w.Header().Set("Content-Type", "application/json")
	if resp.Status != "done" {
		w.WriteHeader(http.StatusAccepted)
	}
	json.NewEncoder(w).Encode(resp)
}

// cellPlan is one expanded sweep cell during handleSweep.
type cellPlan struct {
	cell sweepCell
	np   sim.Params
	job  *Job
}

func (s *Server) trackSweep(j *sweepJob) {
	s.sweepMu.Lock()
	defer s.sweepMu.Unlock()
	if _, ok := s.sweeps[j.ID]; !ok {
		s.sweepLog = append(s.sweepLog, j.ID)
		for len(s.sweepLog) > maxTrackedSweeps {
			old := s.sweepLog[0]
			s.sweepLog = s.sweepLog[1:]
			delete(s.sweeps, old)
		}
	}
	s.sweeps[j.ID] = j
}

// runStatus is the GET /jobs/{key} body for single-run jobs.
type runStatus struct {
	Status         string `json:"status"`
	Key            string `json:"key"`
	Result         *Entry `json:"result,omitempty"`
	Error          string `json:"error,omitempty"`
	ElapsedSeconds Float  `json:"elapsed_seconds,omitempty"`
	// Progress from the job's window sampler, present while running
	// with window telemetry on: the last completed window's cycle, the
	// run's planned total, and an ETA extrapolated from the measured
	// wall rate of the window series — not the scheduler's coarse
	// duration EWMA.
	Cycle       int64 `json:"cycle,omitempty"`
	TotalCycles int64 `json:"total_cycles,omitempty"`
	EtaSeconds  Float `json:"eta_seconds,omitempty"`
}

// samplerProgress fills st's progress fields from a running job's
// window series: cycles-per-nanosecond measured over the sampled span
// prices the remaining cycles.
func samplerProgress(job *Job, st *runStatus) {
	smp := job.Sampler()
	if smp == nil {
		return
	}
	last, ok := smp.Latest()
	if !ok {
		return
	}
	meta := smp.Meta()
	st.Cycle = last.End
	st.TotalCycles = meta.TotalCycles
	progressed := last.End - meta.StartCycle
	elapsed := last.WallNanos - meta.WallStart
	if progressed > 0 && elapsed > 0 && meta.TotalCycles > last.End {
		nsPerCycle := float64(elapsed) / float64(progressed)
		st.EtaSeconds = Float(float64(meta.TotalCycles-last.End) * nsPerCycle / 1e9)
	}
}

// handleJob reports progress for a run key or a sweep ID — the per-job
// generalization of the metrics.Sweep ETA: eta = elapsed/done·(total−done)
// over the cells that belong to this job.
func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	id := strings.TrimPrefix(r.URL.Path, "/jobs/")
	if key, ok := strings.CutSuffix(id, "/live"); ok {
		s.handleJobLive(w, r, key)
		return
	}
	w.Header().Set("Content-Type", "application/json")

	s.sweepMu.Lock()
	sj := s.sweeps[id]
	s.sweepMu.Unlock()
	if sj != nil {
		resp := sweepResponse{ID: id, StatusURL: "/jobs/" + id, Total: len(sj.Cells)}
		for _, c := range sj.Cells {
			st := sweepCellStatus{Algorithm: c.Algorithm, Rate: c.Rate, Key: c.Key, Provenance: "pending"}
			// peek, not Get: polling must not skew hit/miss statistics.
			if entry := s.cache.peek(c.Key); entry != nil {
				st.Provenance = entry.Provenance
				st.Result = entry
				resp.Done++
			} else if s.cache.Has(c.Key) {
				resp.Done++ // on disk, not yet promoted
			}
			resp.Cells = append(resp.Cells, st)
		}
		resp.Status = "pending"
		if resp.Done == resp.Total {
			resp.Status = "done"
		} else if resp.Done > 0 {
			elapsed := time.Since(sj.Accepted).Seconds()
			resp.EtaSeconds = Float(elapsed / float64(resp.Done) * float64(resp.Total-resp.Done))
		}
		json.NewEncoder(w).Encode(resp)
		return
	}

	if entry, _, ok := s.cache.Get(id); ok {
		json.NewEncoder(w).Encode(runStatus{Status: "done", Key: id, Result: entry})
		return
	}
	if job := s.sched.Job(id); job != nil {
		st := runStatus{Key: id, Status: job.State().String()}
		if _, _, err := job.Outcome(); err != nil && job.State() == JobFailed {
			st.Error = err.Error()
		}
		job.mu.Lock()
		if !job.started.IsZero() {
			st.ElapsedSeconds = Float(time.Since(job.started).Seconds())
		}
		job.mu.Unlock()
		samplerProgress(job, &st)
		json.NewEncoder(w).Encode(st)
		return
	}
	httpError(w, r, http.StatusNotFound, "no such job %q", id)
}
