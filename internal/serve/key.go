// Package serve turns the simulator into a service: a content-addressed
// result cache (memory LRU over a disk store), a request-deduplicating
// worker fleet over pooled sim.Runners, and HTTP handlers exposing
// single runs and sweeps with per-job progress. The enabling contract
// is bit-exact determinism — equal normalized Params always reproduce
// the same Stats (the sim runner golden tests) — which makes a cached
// result indistinguishable from a fresh simulation.
package serve

import (
	"fmt"

	"wormmesh/internal/metrics"
	"wormmesh/internal/routing"
	"wormmesh/internal/sim"
	"wormmesh/internal/topology"
)

// Normalize canonicalizes request Params into the representative of
// their equivalence class: every field that does not influence the
// measured Stats is forced to its canonical value, and every "zero
// means default" field is made explicit. Two requests that would
// produce bit-identical Stats normalize identically — that is the
// cache-key contract — and anything unrunnable is rejected here, before
// it can occupy a worker.
//
// Normalization rules, in order:
//   - observers are stripped (writers, metrics, window/telemetry
//     collection): they never change Stats, only record them;
//   - EngineWorkers collapses to the arbitration model: 0 stays 0 (the
//     serial engine), any n >= 1 becomes 1 (the parallel model is
//     bit-identical for every worker count, so the count is capacity,
//     not configuration);
//   - defaults are made explicit (topology, algorithm, pattern, message
//     length, cycle counts, seeds, engine Config) exactly as the sim
//     layer would apply them;
//   - fault identity: explicit FaultNodes zero the random-fault fields;
//     a fault-free request zeroes FaultSeed (no pattern is drawn).
func Normalize(p sim.Params) (sim.Params, error) {
	if p.Width <= 0 || p.Height <= 0 {
		return p, fmt.Errorf("serve: mesh dimensions %dx%d not positive", p.Width, p.Height)
	}
	if p.Rate <= 0 {
		return p, fmt.Errorf("serve: rate %g not positive", p.Rate)
	}
	if p.Faults < 0 {
		return p, fmt.Errorf("serve: fault count %d negative", p.Faults)
	}

	// Observers: recording is read-only, so observed and unobserved runs
	// share a cache entry.
	p.TraceWriter = nil
	p.TraceFlits = false
	p.PostmortemWriter = nil
	p.FlightRecorderEvents = 0
	p.FlightRecorder = nil
	p.Metrics = nil
	p.MetricsInterval = 0
	p.WindowCycles = 0
	p.Sampler = nil

	if p.EngineWorkers >= 1 {
		p.EngineWorkers = 1
	} else {
		p.EngineWorkers = 0
	}

	if p.Topology == "" {
		p.Topology = "mesh"
	}
	if p.Algorithm == "" {
		p.Algorithm = "Duato"
	}
	if p.Pattern == "" {
		p.Pattern = "uniform"
	}
	if p.MessageLength <= 0 {
		p.MessageLength = 100
	}
	if p.WarmupCycles == 0 && p.MeasureCycles == 0 {
		p.WarmupCycles, p.MeasureCycles = 10000, 20000
	}
	if p.WarmupCycles < 0 || p.MeasureCycles <= 0 {
		return p, fmt.Errorf("serve: cycle counts warmup=%d measure=%d not runnable", p.WarmupCycles, p.MeasureCycles)
	}
	if p.Seed == 0 {
		p.Seed = 1
	}

	// Steady-state handling is NOT an observer: adaptive warm-up and the
	// stopping rule change the measurement window, hence Stats, so the
	// fields stay in the key — but inert spellings collapse to the
	// canonical fixed request so they don't split the cache.
	switch p.WarmupMode {
	case "", "fixed":
		p.WarmupMode = ""
	case "mser":
	default:
		return p, fmt.Errorf("serve: unknown warmup mode %q", p.WarmupMode)
	}
	if p.StopRelPrecision < 0 {
		return p, fmt.Errorf("serve: stop precision %g negative", p.StopRelPrecision)
	}
	if p.WarmupMode == "" && p.StopRelPrecision == 0 {
		p.SteadyWindow = 0 // no detector runs; the batch width is inert
	} else if p.SteadyWindow <= 0 {
		p.SteadyWindow = sim.DefaultSteadyWindow
	}

	if p.FaultNodes != nil {
		if len(p.FaultNodes) == 0 {
			p.FaultNodes = nil // empty explicit set is the fault-free request
		}
		p.Faults = 0
		p.FaultSeed = 0
	} else if p.Faults == 0 {
		p.FaultSeed = 0 // no pattern drawn; seed is inert
	} else if p.FaultSeed == 0 {
		p.FaultSeed = 1
	}

	topo, err := topology.Make(p.Topology, p.Width, p.Height)
	if err != nil {
		return p, fmt.Errorf("serve: %w", err)
	}
	if err := routing.SupportsTopology(p.Algorithm, topo); err != nil {
		return p, fmt.Errorf("serve: %w", err)
	}

	// Engine config, mirroring the Runner's normalization so a request
	// carrying the zero Config and one spelling the defaults collide.
	cfg := p.Config
	if cfg.NumVCs == 0 {
		cfg = sim.DefaultEngineConfig()
	}
	if cfg.MaxHops == 0 {
		cfg.MaxHops = int32(16 * topo.Diameter())
	}
	if cfg.StallScanInterval <= 0 {
		cfg.StallScanInterval = 1024
	}
	// Per-link telemetry is an observer too: it changes Result.Links,
	// never Stats. Cache entries store Stats only, so normalize it away.
	cfg.ChannelTelemetry = false
	if err := cfg.Validate(); err != nil {
		return p, fmt.Errorf("serve: %w", err)
	}
	if min, err := routing.MinVCs(p.Algorithm, topo); err != nil {
		return p, fmt.Errorf("serve: %w", err)
	} else if cfg.NumVCs < min {
		return p, fmt.Errorf("serve: %s on %s needs >= %d VCs, got %d", p.Algorithm, p.Topology, min, cfg.NumVCs)
	}
	p.Config = cfg
	return p, nil
}

// Key normalizes p and returns its content address — the canonical
// digest the cache files results under — together with the normalized
// Params the simulation must run with so the stored result matches the
// key exactly.
func Key(p sim.Params) (string, sim.Params, error) {
	np, err := Normalize(p)
	if err != nil {
		return "", np, err
	}
	d, err := metrics.CanonicalDigest(np)
	if err != nil {
		return "", np, err
	}
	return d, np, nil
}
