package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"testing"
)

// TestStoreRoundTrip: Put then Get returns the same entry and bytes.
func TestStoreRoundTrip(t *testing.T) {
	store, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	e := &Entry{Key: "fnv1a:00000000deadbeef", Provenance: "simulated", ResultDigest: "fnv1a:0000000000000001"}
	body, err := json.Marshal(e)
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Put(e.Key, body); err != nil {
		t.Fatal(err)
	}
	got, raw, err := store.Get(e.Key)
	if err != nil {
		t.Fatal(err)
	}
	if got == nil || got.Key != e.Key || !bytes.Equal(raw, body) {
		t.Fatalf("Get = %+v (raw %q)", got, raw)
	}
	if !store.Has(e.Key) {
		t.Error("Has missed a stored key")
	}
	if _, _, err := store.Get("fnv1a:ffffffffffffffff"); err != nil {
		t.Errorf("absent key errored: %v", err)
	}
}

// TestStoreCorruptionIsAMiss: truncated JSON, garbage, and an entry
// filed under the wrong key all degrade to a miss — never an error the
// handler would turn into a 500.
func TestStoreCorruptionIsAMiss(t *testing.T) {
	dir := t.TempDir()
	store, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	key := "fnv1a:00000000deadbeef"
	e := &Entry{Key: key, Provenance: "simulated"}
	body, _ := json.Marshal(e)
	if err := store.Put(key, body); err != nil {
		t.Fatal(err)
	}
	path := store.path(key)

	for name, corrupt := range map[string][]byte{
		"truncated": body[:len(body)/2],
		"garbage":   []byte("not json at all"),
		"empty":     {},
		"foreign":   []byte(`{"key":"fnv1a:0000000000000bad","provenance":"simulated"}`),
	} {
		if err := os.WriteFile(path, corrupt, 0o644); err != nil {
			t.Fatal(err)
		}
		got, _, err := store.Get(key)
		if err != nil || got != nil {
			t.Errorf("%s file: Get = (%v, %v), want miss", name, got, err)
		}
	}

	// A fresh Put repairs the slot.
	if err := store.Put(key, body); err != nil {
		t.Fatal(err)
	}
	if got, _, _ := store.Get(key); got == nil {
		t.Error("Put did not repair the corrupt slot")
	}

	// No temp droppings left behind.
	matches, _ := filepath.Glob(filepath.Join(dir, "put-*.tmp"))
	if len(matches) != 0 {
		t.Errorf("temp files left behind: %v", matches)
	}
}

// TestCorruptDiskRecomputes: end to end, a truncated cache file makes
// the server resimulate and heal the file rather than 500.
func TestCorruptDiskRecomputes(t *testing.T) {
	dir := t.TempDir()
	p := quickParams()

	s1, ts1 := newTestServer(t, Config{Dir: dir})
	resp, cold := postRun(t, ts1.URL, p, true)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cold status %d", resp.StatusCode)
	}
	var entry Entry
	if err := json.Unmarshal(cold, &entry); err != nil {
		t.Fatal(err)
	}
	ts1.Close()
	s1.Close()

	// Truncate the stored file mid-document.
	path := filepath.Join(dir, "fnv1a-"+entry.Key[len("fnv1a:"):]+".json")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("stored file not found at %s: %v", path, err)
	}
	if err := os.WriteFile(path, data[:len(data)/3], 0o644); err != nil {
		t.Fatal(err)
	}

	s2, ts2 := newTestServer(t, Config{Dir: dir})
	defer s2.Close()
	resp, healed := postRun(t, ts2.URL, p, true)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("corrupt-store status %d, want 200 via recompute", resp.StatusCode)
	}
	if h := resp.Header.Get("X-Cache"); h != "miss" {
		t.Errorf("X-Cache = %q, want miss (recompute)", h)
	}
	var e2 Entry
	if err := json.Unmarshal(healed, &e2); err != nil {
		t.Fatal(err)
	}
	if e2.ResultDigest != entry.ResultDigest {
		t.Errorf("recomputed digest %s != original %s (determinism broken)", e2.ResultDigest, entry.ResultDigest)
	}
	// The file must be healed on disk.
	if got, _, _ := s2.cache.store.Get(entry.Key); got == nil {
		t.Error("recompute did not repair the disk file")
	}
}

// TestCacheLRUEviction: the memory tier respects its bound; evicted
// entries survive on disk.
func TestCacheLRUEviction(t *testing.T) {
	store, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	c := NewCache(2, store, nil)
	for i := 0; i < 3; i++ {
		e := &Entry{Key: keyN(i), Provenance: "simulated"}
		if _, err := c.Put(e); err != nil {
			t.Fatal(err)
		}
	}
	if c.Len() != 2 {
		t.Fatalf("memory entries = %d, want 2", c.Len())
	}
	// Key 0 was evicted from memory but must hit via disk.
	_, _, ok := c.Get(keyN(0))
	if !ok {
		t.Fatal("evicted entry lost from disk tier")
	}
	_, diskHits, _ := c.Stats()
	if diskHits != 1 {
		t.Errorf("disk hits = %d, want 1", diskHits)
	}
}

func keyN(i int) string {
	return "fnv1a:" + string(rune('a'+i)) + "000000000000000"
}

// TestFloatJSON: NaN round-trips as null; finite values verbatim.
func TestFloatJSON(t *testing.T) {
	b, err := json.Marshal(struct {
		A Float `json:"a"`
		B Float `json:"b"`
	}{A: Float(1.5), B: Float(nan())})
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != `{"a":1.5,"b":null}` {
		t.Errorf("marshal = %s", b)
	}
	var out struct {
		A Float `json:"a"`
		B Float `json:"b"`
	}
	if err := json.Unmarshal(b, &out); err != nil {
		t.Fatal(err)
	}
	if float64(out.A) != 1.5 {
		t.Errorf("A = %v", out.A)
	}
	if out.B == out.B { // NaN != NaN
		t.Errorf("B = %v, want NaN", out.B)
	}
}
