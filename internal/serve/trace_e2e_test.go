package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// End-to-end trace assertions: every request archetype (cached hit,
// simulated miss, surrogate fast path) must produce a complete span
// tree — no orphans, stages nested under one root, and the sum of
// stage durations bounded by the observed wall time.

// getTrace fetches and decodes GET /traces/{id}.
func getTrace(t *testing.T, url, id string) traceResponse {
	t.Helper()
	resp, err := http.Get(url + "/traces/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /traces/%s: status %d", id, resp.StatusCode)
	}
	var tr traceResponse
	if err := json.NewDecoder(resp.Body).Decode(&tr); err != nil {
		t.Fatal(err)
	}
	return tr
}

// childByName finds a direct child span by name, or nil.
func childByName(root *traceSpanJSON, name string) *traceSpanJSON {
	for _, c := range root.Children {
		if c.Name == name {
			return c
		}
	}
	return nil
}

// assertCompleteTree checks the structural invariants every trace must
// satisfy: exactly one root, zero orphans, every named stage present,
// and the named stages' durations summing to no more than the root's
// wall time (they run sequentially inside the request; spans from a
// background job legitimately outlive the root and are not counted).
func assertCompleteTree(t *testing.T, tr traceResponse, wantStages []string) *traceSpanJSON {
	t.Helper()
	if tr.Orphans != 0 {
		t.Errorf("trace %s has %d orphan spans", tr.TraceID, tr.Orphans)
	}
	if len(tr.Tree) != 1 {
		t.Fatalf("trace %s has %d roots, want 1", tr.TraceID, len(tr.Tree))
	}
	root := tr.Tree[0]
	var sum float64
	for _, name := range wantStages {
		c := childByName(root, name)
		if c == nil {
			t.Errorf("trace %s missing stage span %q (have %v)", tr.TraceID, name, spanNames(root))
			continue
		}
		sum += c.DurationSeconds
	}
	if sum > root.DurationSeconds {
		t.Errorf("stage durations sum %.6fs > root wall %.6fs", sum, root.DurationSeconds)
	}
	return root
}

func spanNames(root *traceSpanJSON) []string {
	names := make([]string, 0, len(root.Children))
	for _, c := range root.Children {
		names = append(names, c.Name)
	}
	return names
}

// TestTraceSimulatedMiss: a waited miss records the full pipeline —
// normalize, cache.lookup, queue.wait, run (with engine events
// attached), store.write — all under the request's root span.
func TestTraceSimulatedMiss(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, body := postRun(t, ts.URL, quickParams(), true)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	id := resp.Header.Get("X-Trace-Id")
	if id == "" {
		t.Fatal("response carries no X-Trace-Id")
	}
	if tp := resp.Header.Get("Traceparent"); tp == "" {
		t.Error("response carries no Traceparent")
	}

	tr := getTrace(t, ts.URL, id)
	root := assertCompleteTree(t, tr,
		[]string{"normalize", "cache.lookup", "queue.wait", "run", "store.write"})
	if root.Name != "HTTP POST /run" {
		t.Errorf("root span %q", root.Name)
	}
	run := childByName(root, "run")
	if run.EngineEvents == 0 {
		t.Error("run span has no decoded engine events")
	}
	if n, ok := run.Attrs["engine_events"].(float64); !ok || n <= 0 {
		t.Errorf("run span engine_events attr = %v", run.Attrs["engine_events"])
	}
	if childByName(root, "cache.lookup").Attrs["tier"] != nil {
		t.Error("miss lookup span claims a cache tier")
	}
}

// TestTraceCachedHit: a warm hit's trace is just edge work — normalize
// and a tier-tagged cache.lookup, no queue/run/store spans.
func TestTraceCachedHit(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	p := quickParams()
	postRun(t, ts.URL, p, true) // warm
	resp, _ := postRun(t, ts.URL, p, true)
	if got := resp.Header.Get("X-Cache"); got != "hit" {
		t.Fatalf("X-Cache = %q", got)
	}
	if got := resp.Header.Get("X-Cache-Tier"); got != TierMemory {
		t.Errorf("X-Cache-Tier = %q, want %q", got, TierMemory)
	}

	tr := getTrace(t, ts.URL, resp.Header.Get("X-Trace-Id"))
	root := assertCompleteTree(t, tr, []string{"normalize", "cache.lookup"})
	lookup := childByName(root, "cache.lookup")
	if tier := lookup.Attrs["tier"]; tier != TierMemory {
		t.Errorf("hit lookup tier = %v", tier)
	}
	for _, absent := range []string{"queue.wait", "run", "store.write"} {
		if childByName(root, absent) != nil {
			t.Errorf("cached hit recorded a %q span", absent)
		}
	}
}

// TestTraceDiskTier: a restart over the same store directory serves
// from disk, and both the header and the span say so.
func TestTraceDiskTier(t *testing.T) {
	dir := t.TempDir()
	p := quickParams()
	s1, ts1 := newTestServer(t, Config{Dir: dir})
	postRun(t, ts1.URL, p, true)
	ts1.Close()
	s1.Close()

	_, ts2 := newTestServer(t, Config{Dir: dir})
	resp, _ := postRun(t, ts2.URL, p, true)
	if got := resp.Header.Get("X-Cache-Tier"); got != TierDisk {
		t.Fatalf("X-Cache-Tier = %q, want %q", got, TierDisk)
	}
	tr := getTrace(t, ts2.URL, resp.Header.Get("X-Trace-Id"))
	root := assertCompleteTree(t, tr, []string{"cache.lookup"})
	if tier := childByName(root, "cache.lookup").Attrs["tier"]; tier != TierDisk {
		t.Errorf("disk hit lookup tier = %v", tier)
	}
}

// TestTraceSurrogateFastPath: a no-wait miss answers with the analytic
// model immediately (model.answer span inside the request) while the
// exact simulation's spans — queue.wait, run, store.write — join the
// same trace as the background job completes.
func TestTraceSurrogateFastPath(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, body := postRun(t, ts.URL, quickParams(), false)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var acc runAccepted
	if err := json.Unmarshal(body, &acc); err != nil {
		t.Fatal(err)
	}
	if acc.Model == nil {
		t.Fatal("no-wait miss got no model fast path")
	}
	id := resp.Header.Get("X-Trace-Id")

	// The synchronous half must already be complete.
	tr := getTrace(t, ts.URL, id)
	assertCompleteTree(t, tr, []string{"normalize", "cache.lookup", "model.answer"})
	if ma := childByName(tr.Tree[0], "model.answer"); ma.Attrs["applicable"] != true {
		t.Errorf("model.answer applicable = %v", ma.Attrs["applicable"])
	}

	// Background job spans land under the same root as it finishes.
	deadline := time.Now().Add(30 * time.Second)
	for {
		tr = getTrace(t, ts.URL, id)
		if len(tr.Tree) == 1 && childByName(tr.Tree[0], "store.write") != nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job spans never joined the trace: %v", spanNames(tr.Tree[0]))
		}
		time.Sleep(5 * time.Millisecond)
	}
	if tr.Orphans != 0 {
		t.Errorf("completed surrogate trace has %d orphans", tr.Orphans)
	}
	for _, name := range []string{"queue.wait", "run"} {
		if childByName(tr.Tree[0], name) == nil {
			t.Errorf("completed trace missing %q (have %v)", name, spanNames(tr.Tree[0]))
		}
	}
}

// TestTraceparentPropagation: an upstream Traceparent header pins the
// trace ID; our spans join the caller's trace instead of starting one.
func TestTraceparentPropagation(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	const parent = "00-0123456789abcdef0123456789abcdef-00f067aa0ba902b7-01"
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/healthz", nil)
	req.Header.Set("Traceparent", parent)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Trace-Id"); got != "0123456789abcdef0123456789abcdef" {
		t.Errorf("X-Trace-Id = %q, did not adopt upstream trace", got)
	}
	tr := getTrace(t, ts.URL, "0123456789abcdef0123456789abcdef")
	// The upstream parent span is not in our ring, so our root is an
	// orphan from BuildTree's perspective — it still renders as a root.
	if len(tr.Tree) != 1 || tr.Tree[0].ParentID != "00f067aa0ba902b7" {
		t.Fatalf("propagated trace tree malformed: %+v", tr)
	}
}

// TestErrorEnvelopeTraceID: every error body is the one JSON envelope,
// and it names the trace that can explain it.
func TestErrorEnvelopeTraceID(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	p := quickParams()
	p.Algorithm = "no-such"
	resp, body := postRun(t, ts.URL, p, true)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var env map[string]any
	if err := json.Unmarshal(body, &env); err != nil {
		t.Fatalf("error body is not JSON: %s", body)
	}
	if env["error"] == "" || env["error"] == nil {
		t.Errorf("envelope missing error: %s", body)
	}
	if env["trace_id"] != resp.Header.Get("X-Trace-Id") {
		t.Errorf("envelope trace_id %v != header %q", env["trace_id"], resp.Header.Get("X-Trace-Id"))
	}

	// Unknown paths get the same envelope shape.
	r2, err := http.Get(ts.URL + "/no/such/path")
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Body.Close()
	if r2.StatusCode != http.StatusNotFound {
		t.Errorf("unknown path status %d", r2.StatusCode)
	}
	var env2 map[string]any
	if err := json.NewDecoder(r2.Body).Decode(&env2); err != nil {
		t.Errorf("404 body is not the JSON envelope: %v", err)
	} else if env2["trace_id"] != r2.Header.Get("X-Trace-Id") {
		t.Errorf("404 envelope trace_id %v != header %q", env2["trace_id"], r2.Header.Get("X-Trace-Id"))
	}
}

// TestTraceNeutrality: the golden contract — tracing and the engine
// bridge never perturb Stats. The same cell simulated on a fully
// traced server and on one with tracing and the engine bridge disabled
// yields bit-identical ResultDigests.
func TestTraceNeutrality(t *testing.T) {
	p := quickParams()
	digest := func(cfg Config) string {
		t.Helper()
		_, ts := newTestServer(t, cfg)
		resp, body := postRun(t, ts.URL, p, true)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d: %s", resp.StatusCode, body)
		}
		var e Entry
		if err := json.Unmarshal(body, &e); err != nil {
			t.Fatal(err)
		}
		if e.ResultDigest == "" {
			t.Fatal("entry has no digest")
		}
		return e.ResultDigest
	}
	traced := digest(Config{})                               // tracing + engine bridge on
	dark := digest(Config{TraceSpans: -1, EngineEvents: -1}) // everything off
	bridgeless := digest(Config{EngineEvents: -1})           // spans on, bridge off
	if traced != dark || traced != bridgeless {
		t.Errorf("tracing perturbed Stats: traced=%s dark=%s bridgeless=%s", traced, dark, bridgeless)
	}
}

// TestTracingDisabled: TraceSpans < 0 turns the span layer off — no
// trace headers, /traces 404s, requests still work.
func TestTracingDisabled(t *testing.T) {
	_, ts := newTestServer(t, Config{TraceSpans: -1})
	resp, _ := postRun(t, ts.URL, quickParams(), true)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if id := resp.Header.Get("X-Trace-Id"); id != "" {
		t.Errorf("disabled tracing still stamped X-Trace-Id %q", id)
	}
	r2, err := http.Get(ts.URL + "/traces/0123456789abcdef0123456789abcdef")
	if err != nil {
		t.Fatal(err)
	}
	r2.Body.Close()
	if r2.StatusCode != http.StatusNotFound {
		t.Errorf("/traces with tracing off: status %d, want 404", r2.StatusCode)
	}
}

// TestReadyz: ready while running; 503 with a reason once the
// scheduler has shut down (the draining state a load balancer must
// see before /healthz goes dark).
func TestReadyz(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	var rr readyzResponse
	json.NewDecoder(resp.Body).Decode(&rr)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !rr.Ready {
		t.Fatalf("running server readyz: status %d, body %+v", resp.StatusCode, rr)
	}

	s.sched.Close()
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/readyz", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("closed scheduler readyz: status %d, want 503", rec.Code)
	}
	var closed readyzResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &closed); err != nil {
		t.Fatal(err)
	}
	if closed.Ready || len(closed.Reasons) == 0 {
		t.Errorf("closed readyz body: %+v", closed)
	}
}

// TestHealthzBody: the liveness body carries the status snapshot.
func TestHealthzBody(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	postRun(t, ts.URL, quickParams(), true)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var hz healthzResponse
	if err := json.NewDecoder(resp.Body).Decode(&hz); err != nil {
		t.Fatal(err)
	}
	if !hz.OK || hz.CacheEntries != 1 || hz.TraceSpans == 0 {
		t.Errorf("healthz body: %+v", hz)
	}
}

// TestChromeExportEndpoint: /traces/{id}.json is valid Chrome trace
// JSON with both process tracks.
func TestChromeExportEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, _ := postRun(t, ts.URL, quickParams(), true)
	id := resp.Header.Get("X-Trace-Id")
	r2, err := http.Get(ts.URL + "/traces/" + id + ".json")
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(r2.Body)
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome export is not JSON: %v", err)
	}
	pids := map[float64]bool{}
	for _, ev := range doc.TraceEvents {
		if pid, ok := ev["pid"].(float64); ok {
			pids[pid] = true
		}
	}
	if !pids[1] || !pids[2] {
		t.Errorf("chrome export missing a track: service=%v engine=%v", pids[1], pids[2])
	}
}
