package experiments

import (
	"strings"
	"testing"
)

func TestAblateVCs(t *testing.T) {
	o := tiny()
	res, err := o.AblateVCs("Duato", []int{8, 16, 24})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Values) != 3 {
		t.Fatalf("values = %v", res.Values)
	}
	for i, thr := range res.Throughput {
		if thr <= 0 {
			t.Errorf("VCs=%s: zero throughput", res.Values[i])
		}
	}
	// More VCs must not collapse throughput (generous tolerance at
	// tiny cycle counts).
	if res.Throughput[2] < res.Throughput[0]*0.7 {
		t.Errorf("24 VCs (%.3f) much worse than 8 (%.3f)", res.Throughput[2], res.Throughput[0])
	}
	var sb strings.Builder
	if err := res.Table().Write(&sb); err != nil {
		t.Fatal(err)
	}
}

func TestAblateVCsRespectsMinimum(t *testing.T) {
	o := tiny()
	// PHop needs 23 VCs on 10x10: the low counts must be skipped.
	res, err := o.AblateVCs("PHop", []int{8, 16, 24})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Values) != 1 || res.Values[0] != "24" {
		t.Fatalf("values = %v, want [24]", res.Values)
	}
	if _, err := o.AblateVCs("PHop", []int{4}); err == nil {
		t.Error("all-below-minimum sweep accepted")
	}
	if _, err := o.AblateVCs("bogus", nil); err == nil {
		t.Error("unknown algorithm accepted")
	}
}

func TestAblateBufDepthAndSelection(t *testing.T) {
	o := tiny()
	buf, err := o.AblateBufDepth("NHop", []int{1, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(buf.Values) != 2 || buf.Throughput[0] <= 0 || buf.Throughput[1] <= 0 {
		t.Fatalf("buf ablation broken: %+v", buf)
	}
	sel, err := o.AblateSelection("Duato")
	if err != nil {
		t.Fatal(err)
	}
	if len(sel.Values) != 3 {
		t.Fatalf("selection values = %v", sel.Values)
	}
	for i := range sel.Values {
		if sel.Throughput[i] <= 0 {
			t.Errorf("policy %s: zero throughput", sel.Values[i])
		}
	}
}

func TestAblateMessageLength(t *testing.T) {
	o := tiny()
	res, err := o.AblateMessageLength("Duato", []int{32, 100})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Values) != 2 {
		t.Fatalf("values = %v", res.Values)
	}
	// Shorter messages at the same flit load have lower latency (less
	// serialization).
	if res.Latency[0] >= res.Latency[1] {
		t.Errorf("32-flit latency %.0f not below 100-flit %.0f", res.Latency[0], res.Latency[1])
	}
}

func TestModelValidation(t *testing.T) {
	o := tiny()
	res, err := o.ModelValidation([]float64{0.0005, 0.001})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Simulated) != 2 || len(res.Calibrated) != 2 {
		t.Fatalf("lengths wrong: %+v", res)
	}
	if res.Gain <= 0 {
		t.Errorf("gain = %v", res.Gain)
	}
	// Calibration anchors the first point.
	if rel := (res.Calibrated[0] - res.Simulated[0]) / res.Simulated[0]; rel > 0.02 || rel < -0.02 {
		t.Errorf("calibrated anchor off by %.1f%%", 100*rel)
	}
	var sb strings.Builder
	if err := res.Table().Write(&sb); err != nil {
		t.Fatal(err)
	}
}

func TestSaturationPoints(t *testing.T) {
	o := tiny()
	res, err := o.SaturationPoints([]string{"NHop", "PHop"})
	if err != nil {
		t.Fatal(err)
	}
	for i, alg := range res.Algorithms {
		if res.Throughput[i] <= 0 || res.Throughput[i] > 0.4 {
			t.Errorf("%s: saturation throughput %v outside (0, 0.4]", alg, res.Throughput[i])
		}
		if res.Rate[i] < 0.0005 {
			t.Errorf("%s: rate %v below search start", alg, res.Rate[i])
		}
	}
	var sb strings.Builder
	if err := res.Table().Write(&sb); err != nil {
		t.Fatal(err)
	}
}

func TestScaleStudy(t *testing.T) {
	o := tiny()
	res, err := Scale(o, []string{"Duato"}, []int{6, 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Latency["Duato"]) != 2 {
		t.Fatalf("latency series = %v", res.Latency["Duato"])
	}
	// Bigger mesh, longer paths: latency must grow.
	if res.Latency["Duato"][1] <= res.Latency["Duato"][0] {
		t.Errorf("latency did not grow with mesh size: %v", res.Latency["Duato"])
	}
	var sb strings.Builder
	if err := res.Table().Write(&sb); err != nil {
		t.Fatal(err)
	}
}
