package experiments

import (
	"strings"
	"testing"
)

func TestAdaptivityOrdersCategories(t *testing.T) {
	o := tiny()
	res, err := Adaptivity(o, []string{"PHop", "Nbc", "Duato", "Minimal-Adaptive"}, 5, 200)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's two categories in one number: free-choice pools
	// offer many channels per decision, the strict ladders few.
	if res.Channels["PHop"] >= res.Channels["Nbc"] {
		t.Errorf("PHop %.1f >= Nbc %.1f channels", res.Channels["PHop"], res.Channels["Nbc"])
	}
	if res.Channels["Nbc"] >= res.Channels["Duato"] {
		t.Errorf("Nbc %.1f >= Duato %.1f channels", res.Channels["Nbc"], res.Channels["Duato"])
	}
	if res.Channels["Duato"] >= res.Channels["Minimal-Adaptive"] {
		t.Errorf("Duato %.1f >= Minimal-Adaptive %.1f channels", res.Channels["Duato"], res.Channels["Minimal-Adaptive"])
	}
	// Direction freedom is bounded by 2 for minimal routing.
	for alg, d := range res.Dirs {
		if d < 1 || d > 2.01 {
			t.Errorf("%s: %.2f directions per decision out of [1,2]", alg, d)
		}
	}
	var sb strings.Builder
	if err := res.Table().Write(&sb); err != nil {
		t.Fatal(err)
	}
}

func TestAdaptivityUnknownAlgorithm(t *testing.T) {
	o := tiny()
	if _, err := Adaptivity(o, []string{"bogus"}, 0, 10); err == nil {
		t.Error("unknown algorithm accepted")
	}
}
