package experiments

import (
	"testing"
)

func TestTopologyComparePlumbing(t *testing.T) {
	o := tiny()
	res, err := TopologyCompare(o, []string{"Duato", "Minimal-Adaptive"})
	if err != nil {
		t.Fatal(err)
	}
	// Minimal-Adaptive is mesh-only and must be filtered out, leaving
	// Duato alone: 2 kinds x 2 fault counts = 4 rows.
	if len(res.Algorithms) != 1 || res.Algorithms[0] != "Duato" {
		t.Fatalf("algorithms = %v, want [Duato]", res.Algorithms)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(res.Rows))
	}
	kinds := map[string]int{}
	for _, row := range res.Rows {
		kinds[row.Kind]++
		if row.Latency <= 0 {
			t.Errorf("%s/%s: nonpositive latency %v", row.Algorithm, row.Kind, row.Latency)
		}
		if row.Norm <= 0 || row.Norm > 1 {
			t.Errorf("%s/%s: normalized throughput %v outside (0,1]", row.Algorithm, row.Kind, row.Norm)
		}
	}
	if kinds["mesh"] != 2 || kinds["torus"] != 2 {
		t.Errorf("kind split = %v, want 2 mesh + 2 torus", kinds)
	}
	// Same offered load on the same dimensions: the torus's doubled
	// bisection means its normalized throughput must come out below the
	// mesh's on the fault-free runs.
	var meshNorm, torusNorm float64
	for _, row := range res.Rows {
		if row.Faults != 0 {
			continue
		}
		if row.Kind == "mesh" {
			meshNorm = row.Norm
		} else {
			torusNorm = row.Norm
		}
	}
	if torusNorm >= meshNorm {
		t.Errorf("fault-free normalized throughput torus %v >= mesh %v", torusNorm, meshNorm)
	}
	if tbl := res.Table(); len(tbl.Rows) != 4 {
		t.Errorf("table rows = %d, want 4", len(tbl.Rows))
	}

	if _, err := TopologyCompare(o, []string{"Minimal-Adaptive"}); err == nil {
		t.Error("all-mesh-only selection accepted")
	}
}
