package experiments

import (
	"strings"
	"testing"
)

// TestHotspotRingLocalization is the acceptance check for the hotspot
// study: on the Figure 6 canned pattern at the knee load, at least one
// BC-fortified algorithm blocks disproportionately on its f-ring links
// (on-ring mean blocked cycles > off-ring mean), while the structural
// outputs (row grid, link splits, views, table) are complete.
func TestHotspotRingLocalization(t *testing.T) {
	o := tiny()
	// The ring-localization signal needs the knee regime to settle;
	// tiny()'s 800 cycles are too noisy for a ratio assertion.
	o.WarmupCycles = 1000
	o.MeasureCycles = 4000
	algs := []string{"Duato-Nbc", "Nbc"}
	res, err := Hotspot(o, algs, []int{5})
	if err != nil {
		t.Fatal(err)
	}
	wantRows := len(algs) * 2 /* cases: fig6, 5 */ * 2 /* loads */
	if len(res.Rows) != wantRows {
		t.Fatalf("rows = %d, want %d", len(res.Rows), wantRows)
	}
	for _, row := range res.Rows {
		if row.Blocked.OnRingLinks == 0 || row.Blocked.OffRingLinks == 0 {
			t.Errorf("%s@%s/%s: degenerate link split %d/%d",
				row.Algorithm, row.Case, row.Load, row.Blocked.OnRingLinks, row.Blocked.OffRingLinks)
		}
		if row.P50 > row.P99 {
			t.Errorf("%s@%s/%s: p50 %d > p99 %d", row.Algorithm, row.Case, row.Load, row.P50, row.P99)
		}
		if row.BlockedShare < 0 || row.BlockedShare > 1 {
			t.Errorf("%s@%s/%s: blocked share %v outside [0,1]",
				row.Algorithm, row.Case, row.Load, row.BlockedShare)
		}
	}

	// The headline claim: congestion localizes on the rings at the knee
	// for at least one BC-fortified algorithm.
	localized := false
	for _, alg := range algs {
		row := res.Row(alg, "fig6", "knee")
		if row == nil {
			t.Fatalf("missing fig6/knee row for %s", alg)
		}
		if r := row.Blocked.Ratio(); r > 1 {
			localized = true
			t.Logf("%s: fig6@knee blocked ratio %.2f", alg, r)
		}
	}
	if !localized {
		t.Error("no BC-fortified algorithm showed on-ring blocked mean > off-ring at the knee")
	}

	// Each algorithm's fig6 knee view renders and marks the fault block.
	for _, alg := range algs {
		lv, ok := res.Views[alg]
		if !ok {
			t.Fatalf("no fig6 knee view for %s", alg)
		}
		var sb strings.Builder
		if err := lv.Write(&sb); err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(sb.String(), "X") {
			t.Errorf("%s view does not mark faulty nodes", alg)
		}
	}

	tab := res.Table()
	if len(tab.Rows) != wantRows {
		t.Errorf("table rows = %d, want %d", len(tab.Rows), wantRows)
	}
	var sb strings.Builder
	if err := tab.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "blocked_ratio") {
		t.Error("hotspot CSV missing blocked_ratio column")
	}
}
