package experiments

import (
	"fmt"

	"wormmesh/internal/report"
	"wormmesh/internal/routing"
	"wormmesh/internal/sweep"
)

// TrafficSweepResult holds Figures 1 and 2: per-algorithm throughput
// and latency curves against the traffic generation rate on the
// fault-free mesh.
type TrafficSweepResult struct {
	Rates      []float64
	Algorithms []string
	// Normalized[alg][i] is accepted throughput at Rates[i] as a
	// fraction of bisection capacity (Figure 1's y axis).
	Normalized map[string][]float64
	// Accepted[alg][i] is accepted flits per node per cycle.
	Accepted map[string][]float64
	// Latency[alg][i] is mean message latency in cycles (Figure 2).
	Latency map[string][]float64
}

// DefaultRates spans the paper's x axis: 0.0001 to 0.0351 messages
// per node per cycle.
func DefaultRates() []float64 {
	return []float64{0.0001, 0.0011, 0.0021, 0.0031, 0.0041, 0.0051,
		0.0076, 0.0101, 0.0151, 0.0201, 0.0251, 0.0301, 0.0351}
}

// TrafficSweep runs the fault-free load sweep behind Figures 1 and 2.
// A nil rates slice uses DefaultRates; a nil algorithms slice uses all
// eleven configurations.
func TrafficSweep(o Options, algorithms []string, rates []float64) (*TrafficSweepResult, error) {
	if rates == nil {
		rates = DefaultRates()
	}
	if algorithms == nil {
		algorithms = routing.AlgorithmNames
	}
	var points []sweep.Point
	for _, alg := range algorithms {
		for _, rate := range rates {
			p := o.baseParams()
			p.Algorithm = alg
			p.Rate = rate
			p.Faults = 0
			points = append(points, sweep.Point{
				Key:    fmt.Sprintf("%s@%g", alg, rate),
				Params: p,
			})
		}
	}
	o.logf("traffic sweep: %d runs (%d algorithms x %d rates)", len(points), len(algorithms), len(rates))
	outcomes := o.runSweep(points)
	if err := sweep.FirstError(outcomes); err != nil {
		return nil, err
	}
	res := &TrafficSweepResult{
		Rates:      rates,
		Algorithms: algorithms,
		Normalized: map[string][]float64{},
		Accepted:   map[string][]float64{},
		Latency:    map[string][]float64{},
	}
	i := 0
	for _, alg := range algorithms {
		norm := make([]float64, len(rates))
		acc := make([]float64, len(rates))
		lat := make([]float64, len(rates))
		for j := range rates {
			r := outcomes[i].Result
			norm[j] = r.NormalizedThroughput()
			acc[j] = r.Stats.Throughput()
			lat[j] = r.Stats.AvgLatency()
			i++
		}
		res.Normalized[alg] = norm
		res.Accepted[alg] = acc
		res.Latency[alg] = lat
		o.logf("  %-18s peak normalized throughput %.3f", alg, maxOf(norm))
	}
	return res, nil
}

// PeakThroughput returns an algorithm's best normalized throughput
// across the sweep.
func (r *TrafficSweepResult) PeakThroughput(alg string) float64 {
	return maxOf(r.Normalized[alg])
}

// SaturationRate estimates where an algorithm saturates: the lowest
// rate at which accepted throughput reaches 95% of its peak.
func (r *TrafficSweepResult) SaturationRate(alg string) float64 {
	acc := r.Accepted[alg]
	peak := maxOf(acc)
	for i, v := range acc {
		if v >= 0.95*peak {
			return r.Rates[i]
		}
	}
	return r.Rates[len(r.Rates)-1]
}

// ThroughputChart renders Figure 1.
func (r *TrafficSweepResult) ThroughputChart() *report.LineChart {
	c := &report.LineChart{
		Title:  "Figure 1: normalized accepted throughput vs. traffic generation rate (fault-free)",
		XLabel: "messages/node/cycle",
	}
	for _, alg := range r.Algorithms {
		c.Add(report.Series{Name: alg, X: r.Rates, Y: r.Normalized[alg]})
	}
	return c
}

// LatencyChart renders Figure 2.
func (r *TrafficSweepResult) LatencyChart() *report.LineChart {
	c := &report.LineChart{
		Title:  "Figure 2: average message latency vs. traffic generation rate (fault-free)",
		XLabel: "messages/node/cycle",
	}
	for _, alg := range r.Algorithms {
		c.Add(report.Series{Name: alg, X: r.Rates, Y: r.Latency[alg]})
	}
	return c
}

// Table renders the raw series.
func (r *TrafficSweepResult) Table() *report.Table {
	t := report.NewTable("algorithm", "rate", "accepted_flits", "normalized_thr", "latency_cycles")
	for _, alg := range r.Algorithms {
		for i, rate := range r.Rates {
			t.AddRow(alg, rate, r.Accepted[alg][i], r.Normalized[alg][i], r.Latency[alg][i])
		}
	}
	return t
}

func maxOf(v []float64) float64 {
	best := 0.0
	for _, x := range v {
		if x > best {
			best = x
		}
	}
	return best
}
