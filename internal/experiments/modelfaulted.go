package experiments

import (
	"fmt"
	"math"

	"wormmesh/internal/report"
	"wormmesh/internal/sim"
	"wormmesh/internal/sweep"
)

// FaultedModelValidationResult records the faulted analytic model's
// tracking error against the simulator, per fault scenario: the paper's
// fig6 block pattern and 2/5/10 random-fault cases.
type FaultedModelValidationResult struct {
	Scenarios []FaultedScenarioValidation
}

// FaultedScenarioValidation is one scenario's stable-region comparison.
// γ is calibrated at the middle rate; ErrPct holds the absolute
// relative error at every rate (0 at the anchor by construction).
type FaultedScenarioValidation struct {
	Name      string
	Gamma     float64
	Knee      float64
	Anchor    float64
	Rates     []float64
	Simulated []float64
	Predicted []float64
	ErrPct    []float64
	MaxErrPct float64
}

// FaultedModelValidation validates the faulted surrogate the way the
// tentpole promises: per scenario, calibrate γ at one stable rate
// (0.55 of the predicted knee) and compare predictions against the
// simulator at 0.35 and 0.75 of the knee. Each simulated latency
// averages two traffic seeds — near the knee a single short run's
// transient noise would swamp the model error being measured. The
// algorithm is Minimal-Adaptive throughout, matching ModelValidation.
func (o Options) FaultedModelValidation() (*FaultedModelValidationResult, error) {
	type scenario struct {
		name  string
		setup func(p *sim.Params)
	}
	scenarios := []scenario{
		{"fig6-block", func(p *sim.Params) { p.FaultNodes = o.Fig6FaultNodes() }},
		{"2-random", func(p *sim.Params) { p.Faults = 2; p.FaultSeed = o.Seed + 10 }},
		{"5-random", func(p *sim.Params) { p.Faults = 5; p.FaultSeed = o.Seed + 11 }},
		{"10-random", func(p *sim.Params) { p.Faults = 10; p.FaultSeed = o.Seed + 12 }},
	}
	const seedsPerPoint = 2
	fracs := []float64{0.35, 0.55, 0.75}
	const anchorIdx = 1

	res := &FaultedModelValidationResult{}
	var points []sweep.Point
	type cell struct{ scenario, rate int }
	index := map[string]cell{}
	for si, sc := range scenarios {
		base := o.baseParams()
		base.Algorithm = "Minimal-Adaptive"
		sc.setup(&base)
		model, err := sweep.Surrogate(base)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", sc.name, err)
		}
		knee := model.SaturationRate()
		v := FaultedScenarioValidation{Name: sc.name, Knee: knee}
		for ri, frac := range fracs {
			rate := frac * knee
			v.Rates = append(v.Rates, rate)
			for s := 0; s < seedsPerPoint; s++ {
				p := base
				p.Rate = rate
				p.Seed = o.Seed + int64(s)
				key := fmt.Sprintf("%s@%g#%d", sc.name, rate, s)
				index[key] = cell{si, ri}
				points = append(points, sweep.Point{Key: key, Params: p})
			}
		}
		v.Anchor = v.Rates[anchorIdx]
		res.Scenarios = append(res.Scenarios, v)
	}
	o.logf("faulted model validation: %d simulator runs (%d scenarios x %d rates x %d seeds)",
		len(points), len(scenarios), len(fracs), seedsPerPoint)
	outcomes := o.runSweep(points)
	if err := sweep.FirstError(outcomes); err != nil {
		return nil, err
	}
	sums := make([][]float64, len(scenarios))
	for i := range sums {
		sums[i] = make([]float64, len(fracs))
	}
	for _, oc := range outcomes {
		c := index[oc.Point.Key]
		sums[c.scenario][c.rate] += oc.Result.Stats.AvgLatency() / seedsPerPoint
	}
	for si := range res.Scenarios {
		v := &res.Scenarios[si]
		v.Simulated = sums[si]

		base := o.baseParams()
		base.Algorithm = "Minimal-Adaptive"
		scenarios[si].setup(&base)
		model, err := sweep.Surrogate(base)
		if err != nil {
			return nil, err
		}
		cal, err := model.Calibrate(v.Anchor, v.Simulated[anchorIdx])
		if err != nil {
			return nil, fmt.Errorf("%s: calibrate: %w", v.Name, err)
		}
		v.Gamma = cal.ContentionGain
		for ri, rate := range v.Rates {
			pred, err := cal.Predict(rate)
			if err != nil {
				return nil, fmt.Errorf("%s rate %g: %w", v.Name, rate, err)
			}
			v.Predicted = append(v.Predicted, pred.Latency)
			errPct := 100 * math.Abs(pred.Latency-v.Simulated[ri]) / v.Simulated[ri]
			v.ErrPct = append(v.ErrPct, errPct)
			if ri != anchorIdx && errPct > v.MaxErrPct {
				v.MaxErrPct = errPct
			}
		}
	}
	return res, nil
}

// Table renders the per-scenario comparison.
func (r *FaultedModelValidationResult) Table() *report.Table {
	t := report.NewTable("scenario", "rate", "simulated_lat", "model_lat", "err_pct", "gamma")
	for _, v := range r.Scenarios {
		for i, rate := range v.Rates {
			t.AddRow(v.Name, rate, v.Simulated[i], v.Predicted[i], v.ErrPct[i], v.Gamma)
		}
	}
	return t
}
