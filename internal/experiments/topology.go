package experiments

import (
	"fmt"

	"wormmesh/internal/report"
	"wormmesh/internal/routing"
	"wormmesh/internal/sweep"
	"wormmesh/internal/topology"
)

// TopologyRow is one measured cell of the mesh-vs-torus study.
type TopologyRow struct {
	Algorithm string
	Kind      string // "mesh" or "torus"
	Faults    int
	Latency   float64
	Thr       float64 // flits/node/cycle
	Norm      float64 // fraction of the topology's own bisection capacity
	Detour    float64
	Killed    float64 // killed fraction of generated messages
}

// TopologyResult compares the mesh and torus backends head-to-head:
// the torus-enabled algorithm roster run on both topologies at the
// same dimensions, offered load, and fault budget. Raw throughput is
// not directly comparable across kinds (the wrap links double the
// bisection), so Norm reports each run against its own topology's
// capacity via Result.NormalizedThroughput.
type TopologyResult struct {
	Algorithms []string
	Rows       []TopologyRow
}

// TopologyCompare runs the study. The algorithm set is intersected
// with the torus roster for the options' dimensions (mesh-only
// fortifications have nothing to compare); nil selects the whole
// roster. Each algorithm runs fault-free and with 5% node faults on
// both kinds, at 0.1 flits/node/cycle offered — below either
// topology's saturation, so latencies compare.
func TopologyCompare(o Options, algorithms []string) (*TopologyResult, error) {
	torus := topology.NewTorus(o.Width, o.Height)
	roster := routing.TorusAlgorithmNames(torus)
	if algorithms == nil {
		algorithms = roster
	} else {
		enabled := make(map[string]bool, len(roster))
		for _, a := range roster {
			enabled[a] = true
		}
		kept := algorithms[:0:0]
		for _, a := range algorithms {
			if enabled[a] {
				kept = append(kept, a)
			}
		}
		algorithms = kept
	}
	if len(algorithms) == 0 {
		return nil, fmt.Errorf("experiments: no torus-enabled algorithms selected on %v", torus)
	}
	kinds := []string{"mesh", "torus"}
	faults := []int{0, o.Width * o.Height / 20}
	var points []sweep.Point
	for _, alg := range algorithms {
		for _, kind := range kinds {
			for _, nf := range faults {
				p := o.baseParams()
				p.Topology = kind
				p.Algorithm = alg
				p.Rate = 0.1 / float64(o.MessageLength)
				p.Faults = nf
				t, err := topology.Make(kind, o.Width, o.Height)
				if err != nil {
					return nil, err
				}
				if min, err := routing.MinVCs(alg, t); err == nil && min > p.Config.NumVCs {
					p.Config.NumVCs = min
				}
				points = append(points, sweep.Point{
					Key:    fmt.Sprintf("%s@%s/f%d", alg, kind, nf),
					Params: p,
				})
			}
		}
	}
	o.logf("topology study: %d runs (%d algorithms x %v x faults %v)",
		len(points), len(algorithms), kinds, faults)
	outcomes := o.runSweep(points)
	if err := sweep.FirstError(outcomes); err != nil {
		return nil, err
	}
	res := &TopologyResult{Algorithms: algorithms}
	for i, pt := range points {
		r := outcomes[i].Result
		st := r.Stats
		killed := 0.0
		if st.Generated > 0 {
			killed = float64(st.Killed) / float64(st.Generated)
		}
		res.Rows = append(res.Rows, TopologyRow{
			Algorithm: pt.Params.Algorithm,
			Kind:      pt.Params.Topology,
			Faults:    pt.Params.Faults,
			Latency:   st.AvgLatency(),
			Thr:       st.Throughput(),
			Norm:      r.NormalizedThroughput(),
			Detour:    st.AvgDetour(),
			Killed:    killed,
		})
	}
	for _, alg := range algorithms {
		var mesh0, torus0 float64
		for _, row := range res.Rows {
			if row.Algorithm == alg && row.Faults == 0 {
				if row.Kind == "mesh" {
					mesh0 = row.Latency
				} else {
					torus0 = row.Latency
				}
			}
		}
		o.logf("  %-18s fault-free latency mesh %.1f vs torus %.1f", alg, mesh0, torus0)
	}
	return res, nil
}

// Table renders the study.
func (r *TopologyResult) Table() *report.Table {
	t := report.NewTable("algorithm", "topology", "faults", "latency",
		"throughput", "normalized", "detour", "killed")
	for _, row := range r.Rows {
		t.AddRow(row.Algorithm, row.Kind, row.Faults, row.Latency,
			row.Thr, row.Norm, row.Detour, row.Killed)
	}
	return t
}
