package experiments

import (
	"fmt"

	"wormmesh/internal/report"
	"wormmesh/internal/sim"
	"wormmesh/internal/sweep"
)

// WarmupRow is one cell of the warm-up sensitivity study: one offered
// load measured under one truncation policy.
type WarmupRow struct {
	Rate    float64
	Variant string // "fixed-<fraction>" or "mser"
	// Budget is the warm-up ceiling the run was given; Effective is what
	// it actually discarded (equal for fixed variants, the detected
	// truncation point for mser).
	Budget     int64
	Effective  int64
	Latency    float64
	Throughput float64
	// LatencyBiasPct is the latency deviation from the same rate's
	// full-budget fixed reference, in percent — the initialization bias
	// that truncating less warm-up leaves in the measurement.
	LatencyBiasPct float64
}

// WarmupResult is the full study: per (rate × policy) rows over one
// algorithm and fault case.
type WarmupResult struct {
	Algorithm string
	Faults    int
	Rows      []WarmupRow
}

// DefaultWarmupFractions are the fixed-truncation ladder of the study,
// as fractions of the configured warm-up budget. 1 is the reference
// every bias is measured against.
var DefaultWarmupFractions = []float64{0, 0.25, 1}

// Warmup quantifies warm-up sensitivity across the saturation knee:
// for each offered load it measures the same cell under a ladder of
// fixed truncations (including none) and under MSER detection, then
// reports each variant's latency bias against the full-budget fixed
// reference. Two questions get numeric answers: how much bias does
// skipping warm-up leave at each load, and does the detected truncation
// point reach the reference's measurement unbiased while discarding
// fewer cycles.
func Warmup(o Options, algorithm string, faults int, kneeFractions []float64) (*WarmupResult, error) {
	if algorithm == "" {
		algorithm = "Duato-Nbc"
	}
	if kneeFractions == nil {
		kneeFractions = []float64{0.5, 0.8, 1.0, 1.2}
	}
	knee := o.KneeRate()
	var points []sweep.Point
	var rows []WarmupRow
	add := func(rate float64, variant string, mut func(*sim.Params)) {
		p := o.baseParams()
		p.Algorithm = algorithm
		p.Faults = faults
		p.Rate = rate
		mut(&p)
		points = append(points, sweep.Point{
			Key:    fmt.Sprintf("%s@%g/%s", algorithm, rate, variant),
			Params: p,
		})
		rows = append(rows, WarmupRow{Rate: rate, Variant: variant, Budget: p.WarmupCycles})
	}
	for _, kf := range kneeFractions {
		rate := kf * knee
		for _, frac := range DefaultWarmupFractions {
			frac := frac
			add(rate, fmt.Sprintf("fixed-%g", frac), func(p *sim.Params) {
				p.WarmupCycles = int64(frac * float64(o.WarmupCycles))
			})
		}
		add(rate, "mser", func(p *sim.Params) {
			p.WarmupMode = "mser"
			// Scale the batch width to the budget so detection has the
			// ~20 batches it needs regardless of -quick vs paper scale
			// (at the paper's 10 000-cycle budget this is the default 500).
			p.SteadyWindow = o.WarmupCycles / 20
			if p.SteadyWindow < 50 {
				p.SteadyWindow = 50
			}
		})
	}
	o.logf("warmup: %d runs (%s, %d faults, %d loads × %d policies)",
		len(points), algorithm, faults, len(kneeFractions), len(DefaultWarmupFractions)+1)
	outcomes := o.runSweep(points)
	if err := sweep.FirstError(outcomes); err != nil {
		return nil, err
	}
	res := &WarmupResult{Algorithm: algorithm, Faults: faults, Rows: rows}
	for i, out := range outcomes {
		st := out.Result.Stats
		row := &res.Rows[i]
		row.Effective = st.EffectiveWarmup
		row.Latency = st.AvgLatency()
		row.Throughput = st.Throughput()
	}
	// Bias against each rate's full-budget fixed reference.
	perRate := len(DefaultWarmupFractions) + 1
	refVariant := fmt.Sprintf("fixed-%g", DefaultWarmupFractions[len(DefaultWarmupFractions)-1])
	for base := 0; base < len(res.Rows); base += perRate {
		var ref float64
		for i := base; i < base+perRate; i++ {
			if res.Rows[i].Variant == refVariant {
				ref = res.Rows[i].Latency
			}
		}
		for i := base; i < base+perRate; i++ {
			if ref > 0 {
				res.Rows[i].LatencyBiasPct = 100 * (res.Rows[i].Latency - ref) / ref
			}
		}
	}
	return res, nil
}

// Table renders the study data.
func (r *WarmupResult) Table() *report.Table {
	t := report.NewTable("rate", "policy", "warmup_budget", "effective_warmup",
		"latency_cycles", "latency_bias%", "throughput")
	for _, row := range r.Rows {
		t.AddRow(row.Rate, row.Variant, row.Budget, row.Effective,
			row.Latency, row.LatencyBiasPct, row.Throughput)
	}
	return t
}
