package experiments

import (
	"fmt"

	"wormmesh/internal/report"
	"wormmesh/internal/routing"
	"wormmesh/internal/sim"
	"wormmesh/internal/sweep"
	"wormmesh/internal/topology"
)

// RingLoadResult holds Figure 6: the traffic load distribution over
// f-ring nodes versus the remaining nodes, for a faulty run on the
// canned three-region pattern and for the fault-free baseline scored
// on the same node set.
type RingLoadResult struct {
	Algorithms []string
	// Faulty[alg] and FaultFree[alg] hold the two bars per algorithm.
	Faulty    map[string]sim.LoadDistribution
	FaultFree map[string]sim.LoadDistribution
	RingNodes int
}

// RingLoad runs Figure 6 at saturating load.
func RingLoad(o Options, algorithms []string) (*RingLoadResult, error) {
	if algorithms == nil {
		algorithms = routing.AlgorithmNames
	}
	faultNodes := o.Fig6FaultNodes()
	var points []sweep.Point
	for _, alg := range algorithms {
		p := o.baseParams()
		p.Algorithm = alg
		p.Rate = o.SaturatingRate()
		p.FaultNodes = faultNodes
		points = append(points, sweep.Point{Key: alg + "@faulty", Params: p})
		p2 := p
		p2.FaultNodes = nil
		p2.Faults = 0
		points = append(points, sweep.Point{Key: alg + "@free", Params: p2})
	}
	o.logf("ring load: %d runs (%d algorithms, canned pattern of %d faults + fault-free)",
		len(points), len(algorithms), len(faultNodes))
	outcomes := o.runSweep(points)
	if err := sweep.FirstError(outcomes); err != nil {
		return nil, err
	}
	res := &RingLoadResult{
		Algorithms: algorithms,
		Faulty:     map[string]sim.LoadDistribution{},
		FaultFree:  map[string]sim.LoadDistribution{},
	}
	for i := 0; i < len(outcomes); i += 2 {
		alg := algorithms[i/2]
		faulty := outcomes[i].Result
		free := outcomes[i+1].Result
		// Score the fault-free run on the nodes that ring the canned
		// pattern in the faulty run.
		ringSet := map[topology.NodeID]bool{}
		for id := topology.NodeID(0); int(id) < faulty.Faults.Topo.NodeCount(); id++ {
			if !faulty.Faults.IsFaulty(id) && faulty.Faults.OnAnyRing(id) {
				ringSet[id] = true
			}
		}
		res.RingNodes = len(ringSet)
		res.Faulty[alg] = faulty.LoadDistribution()
		res.FaultFree[alg] = free.LoadDistributionFor(ringSet)
		o.logf("  %-18s faulty ring/other %.1f%%/%.1f%%  fault-free %.1f%%/%.1f%%",
			alg,
			100*res.Faulty[alg].RingShare, 100*res.Faulty[alg].OtherShare,
			100*res.FaultFree[alg].RingShare, 100*res.FaultFree[alg].OtherShare)
	}
	return res, nil
}

// Chart renders the grouped bars (ring share per algorithm and fault
// case; the companion "other" values are in the table).
func (r *RingLoadResult) Chart() *report.BarChart {
	b := &report.BarChart{
		Title: "Figure 6: mean node load as % of peak (f-ring nodes vs. others)",
		Unit:  "",
	}
	for _, alg := range r.Algorithms {
		b.Add(fmt.Sprintf("%s 0%% ring", alg), 100*r.FaultFree[alg].RingShare)
		b.Add(fmt.Sprintf("%s 0%% other", alg), 100*r.FaultFree[alg].OtherShare)
		b.Add(fmt.Sprintf("%s faulty ring", alg), 100*r.Faulty[alg].RingShare)
		b.Add(fmt.Sprintf("%s faulty other", alg), 100*r.Faulty[alg].OtherShare)
	}
	return b
}

// Table renders the full distribution data.
func (r *RingLoadResult) Table() *report.Table {
	t := report.NewTable("algorithm", "case", "ring_share%", "other_share%", "peak_load", "peak_node_util%")
	for _, alg := range r.Algorithms {
		f := r.FaultFree[alg]
		t.AddRow(alg, "0%", 100*f.RingShare, 100*f.OtherShare, f.PeakLoad, 100*f.PeakUtilization)
		d := r.Faulty[alg]
		t.AddRow(alg, "faulty", 100*d.RingShare, 100*d.OtherShare, d.PeakLoad, 100*d.PeakUtilization)
	}
	return t
}
