package experiments

import (
	"strings"
	"testing"

	"wormmesh/internal/fault"
	"wormmesh/internal/topology"
)

// tiny returns very small options so the experiment plumbing can be
// tested quickly; shapes are checked by the larger shape tests.
func tiny() Options {
	o := Quick()
	o.WarmupCycles = 200
	o.MeasureCycles = 800
	o.FaultSets = 2
	return o
}

func TestOptionsScales(t *testing.T) {
	p := Paper()
	if p.WarmupCycles != 10000 || p.MeasureCycles != 20000 || p.Width != 10 || p.NumVCs != 24 {
		t.Errorf("Paper options wrong: %+v", p)
	}
	q := Quick()
	if q.MeasureCycles >= p.MeasureCycles {
		t.Error("Quick not quicker than Paper")
	}
	if r := p.SaturatingRate(); r != 0.01 {
		t.Errorf("saturating rate = %v, want 0.01 for 100-flit messages", r)
	}
}

func TestFig6FaultNodesFormExpectedRegions(t *testing.T) {
	o := Paper()
	mesh := topology.New(o.Width, o.Height)
	f, err := fault.New(mesh, o.Fig6FaultNodes())
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Regions()) != 3 {
		t.Fatalf("regions = %d, want 3", len(f.Regions()))
	}
	sizes := map[int]int{}
	for _, r := range f.Regions() {
		sizes[r.Size()]++
	}
	if sizes[6] != 1 || sizes[1] != 2 {
		t.Errorf("region sizes = %v, want one 2x3 and two 1x1", sizes)
	}
	// The paper's pattern has overlapping rings: at least one node on
	// two rings.
	overlap := false
	for id := topology.NodeID(0); int(id) < mesh.NodeCount(); id++ {
		if len(f.RingsThrough(id)) >= 2 {
			overlap = true
			break
		}
	}
	if !overlap {
		t.Error("canned pattern has no overlapping rings")
	}
}

func TestTrafficSweepPlumbing(t *testing.T) {
	o := tiny()
	algs := []string{"Duato", "NHop"}
	rates := []float64{0.001, 0.004}
	res, err := TrafficSweep(o, algs, rates)
	if err != nil {
		t.Fatal(err)
	}
	for _, alg := range algs {
		if len(res.Normalized[alg]) != 2 || len(res.Latency[alg]) != 2 {
			t.Fatalf("%s: series lengths wrong", alg)
		}
		if res.Normalized[alg][1] <= 0 {
			t.Errorf("%s: zero throughput at high rate", alg)
		}
		if res.PeakThroughput(alg) <= 0 {
			t.Errorf("%s: no peak", alg)
		}
		if sat := res.SaturationRate(alg); sat != rates[0] && sat != rates[1] {
			t.Errorf("%s: saturation rate %v not in sweep", alg, sat)
		}
	}
	// Charts and table render and mention the series.
	var sb strings.Builder
	if err := res.ThroughputChart().Write(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "Duato") {
		t.Error("throughput chart missing series name")
	}
	sb.Reset()
	if err := res.LatencyChart().Write(&sb); err != nil {
		t.Fatal(err)
	}
	if tab := res.Table(); len(tab.Rows) != 4 {
		t.Errorf("table rows = %d, want 4", len(tab.Rows))
	}
}

func TestVCUsagePlumbing(t *testing.T) {
	o := tiny()
	res, err := VCUsage(o, []string{"NHop", "Duato"}, 5)
	if err != nil {
		t.Fatal(err)
	}
	u := res.Utilization["NHop"]
	if len(u) != 24 {
		t.Fatalf("VC vector = %d, want 24", len(u))
	}
	sum := 0.0
	for _, v := range u {
		if v < 0 || v > 1 {
			t.Fatalf("utilization %v outside [0,1]", v)
		}
		sum += v
	}
	if sum == 0 {
		t.Fatal("no VC utilization measured")
	}
	if res.UsedVCs("NHop") == 0 {
		t.Error("UsedVCs = 0")
	}
	if res.Imbalance("NHop") < 1 {
		t.Errorf("imbalance = %v, must be >= 1", res.Imbalance("NHop"))
	}
	var sb strings.Builder
	if err := res.Chart("NHop").Write(&sb); err != nil {
		t.Fatal(err)
	}
	if tab := res.Table(); len(tab.Rows) != 24 {
		t.Errorf("table rows = %d", len(tab.Rows))
	}
}

func TestFaultSweepPlumbing(t *testing.T) {
	o := tiny()
	res, err := FaultSweep(o, []string{"Nbc", "PHop"}, []int{0, 5})
	if err != nil {
		t.Fatal(err)
	}
	for _, alg := range []string{"Nbc", "PHop"} {
		thr := res.Throughput[alg]
		if len(thr) != 2 {
			t.Fatalf("%s: series length %d", alg, len(thr))
		}
		if thr[0] <= 0 {
			t.Errorf("%s: zero fault-free throughput", alg)
		}
		// Throughput must not improve with faults (generous margin for
		// the tiny cycle count).
		if thr[1] > thr[0]*1.3 {
			t.Errorf("%s: throughput grew with faults: %v", alg, thr)
		}
	}
	var sb strings.Builder
	if err := res.ThroughputChart().Write(&sb); err != nil {
		t.Fatal(err)
	}
	sb.Reset()
	if err := res.LatencyChart().Write(&sb); err != nil {
		t.Fatal(err)
	}
	if tab := res.Table(); len(tab.Rows) != 4 {
		t.Errorf("table rows = %d", len(tab.Rows))
	}
}

func TestRingLoadPlumbing(t *testing.T) {
	o := tiny()
	res, err := RingLoad(o, []string{"Duato-Nbc", "PHop"})
	if err != nil {
		t.Fatal(err)
	}
	if res.RingNodes == 0 {
		t.Fatal("no ring nodes identified")
	}
	for _, alg := range res.Algorithms {
		for _, d := range []struct {
			name string
			v    float64
		}{
			{"faulty ring", res.Faulty[alg].RingShare},
			{"faulty other", res.Faulty[alg].OtherShare},
			{"free ring", res.FaultFree[alg].RingShare},
			{"free other", res.FaultFree[alg].OtherShare},
		} {
			if d.v < 0 || d.v > 1 {
				t.Errorf("%s %s share = %v outside [0,1]", alg, d.name, d.v)
			}
		}
		if res.Faulty[alg].PeakLoad <= 0 {
			t.Errorf("%s: no peak load", alg)
		}
	}
	var sb strings.Builder
	if err := res.Chart().Write(&sb); err != nil {
		t.Fatal(err)
	}
	if tab := res.Table(); len(tab.Rows) != 4 {
		t.Errorf("table rows = %d", len(tab.Rows))
	}
}

func TestDefaultRatesSpanPaperAxis(t *testing.T) {
	rates := DefaultRates()
	if rates[0] != 0.0001 {
		t.Errorf("first rate %v", rates[0])
	}
	if rates[len(rates)-1] != 0.0351 {
		t.Errorf("last rate %v", rates[len(rates)-1])
	}
	for i := 1; i < len(rates); i++ {
		if rates[i] <= rates[i-1] {
			t.Error("rates not increasing")
		}
	}
}
