package experiments

import (
	"fmt"
	"runtime"

	"wormmesh/internal/report"
	"wormmesh/internal/routing"
	"wormmesh/internal/sweep"
	"wormmesh/internal/topology"
)

// ScaleResult extends the comparison beyond the paper's 10×10 mesh:
// the same algorithms at the same relative load and fault fraction on
// growing meshes (run on the deterministic parallel engine above
// 10×10).
type ScaleResult struct {
	Sizes      []int
	Algorithms []string
	// Latency[alg][i] etc. index Sizes.
	Latency    map[string][]float64
	Throughput map[string][]float64
	Detour     map[string][]float64
}

// Scale runs the scaling study. Sizes default to {10, 16, 20}; the
// fault fraction is 5% and the offered load 0.1 flits/node/cycle
// (comfortably below every size's saturation so latencies compare).
func Scale(o Options, algorithms []string, sizes []int) (*ScaleResult, error) {
	if algorithms == nil {
		algorithms = []string{"NHop", "Nbc", "Duato-Nbc", "Minimal-Adaptive"}
	}
	if sizes == nil {
		sizes = []int{10, 16, 20}
	}
	var points []sweep.Point
	for _, alg := range algorithms {
		for _, size := range sizes {
			p := o.baseParams()
			p.Width, p.Height = size, size
			p.Algorithm = alg
			p.Rate = 0.1 / float64(o.MessageLength)
			p.Faults = size * size / 20
			if size > 10 {
				p.EngineWorkers = runtime.NumCPU()
			}
			mesh := topology.New(size, size)
			if min, err := routing.MinVCs(alg, mesh); err == nil && min > p.Config.NumVCs {
				p.Config.NumVCs = min
			}
			points = append(points, sweep.Point{
				Key:    fmt.Sprintf("%s@%d", alg, size),
				Params: p,
			})
		}
	}
	o.logf("scaling study: %d runs (%d algorithms x %v sizes)", len(points), len(algorithms), sizes)
	outcomes := o.runSweep(points)
	if err := sweep.FirstError(outcomes); err != nil {
		return nil, err
	}
	res := &ScaleResult{
		Sizes:      sizes,
		Algorithms: algorithms,
		Latency:    map[string][]float64{},
		Throughput: map[string][]float64{},
		Detour:     map[string][]float64{},
	}
	i := 0
	for _, alg := range algorithms {
		for range sizes {
			st := outcomes[i].Result.Stats
			res.Latency[alg] = append(res.Latency[alg], st.AvgLatency())
			res.Throughput[alg] = append(res.Throughput[alg], st.Throughput())
			res.Detour[alg] = append(res.Detour[alg], st.AvgDetour())
			i++
		}
		o.logf("  %-18s latency %v", alg, formatSeries(res.Latency[alg]))
	}
	return res, nil
}

// Table renders the scaling study.
func (r *ScaleResult) Table() *report.Table {
	t := report.NewTable("algorithm", "mesh", "latency", "throughput", "detour")
	for _, alg := range r.Algorithms {
		for i, size := range r.Sizes {
			t.AddRow(alg, fmt.Sprintf("%dx%d", size, size),
				r.Latency[alg][i], r.Throughput[alg][i], r.Detour[alg][i])
		}
	}
	return t
}
