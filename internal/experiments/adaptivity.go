package experiments

import (
	"math/rand"

	"wormmesh/internal/core"
	"wormmesh/internal/report"
	"wormmesh/internal/routing"
	"wormmesh/internal/sim"
	"wormmesh/internal/topology"
)

// AdaptivityResult quantifies each algorithm's routing freedom: the
// average number of candidate channels (and distinct directions) its
// headers are offered, sampled over random message states — the
// structural quantity behind the paper's two-category split.
type AdaptivityResult struct {
	Algorithms []string
	// Channels[alg] is the mean candidate-channel count per routing
	// decision; Dirs[alg] the mean distinct-direction count.
	Channels map[string]float64
	Dirs     map[string]float64
}

// Adaptivity samples `samples` random (src, dst, progress) states per
// algorithm on the fault pattern implied by the options' seed and
// faultPercent, replaying each message's walk and recording the
// candidate sets along it.
func Adaptivity(o Options, algorithms []string, faultPercent, samples int) (*AdaptivityResult, error) {
	if algorithms == nil {
		algorithms = routing.AlgorithmNames
	}
	p := o.baseParams()
	p.Faults = o.Width * o.Height * faultPercent / 100
	f, err := sim.BuildFaults(p)
	if err != nil {
		return nil, err
	}
	healthy := f.HealthyNodes()
	mesh := f.Topo
	res := &AdaptivityResult{
		Algorithms: algorithms,
		Channels:   map[string]float64{},
		Dirs:       map[string]float64{},
	}
	for _, algName := range algorithms {
		alg, err := routing.New(algName, f, p.Config.NumVCs)
		if err != nil {
			return nil, err
		}
		rng := rand.New(rand.NewSource(o.Seed))
		var cands core.CandidateSet
		decisions, chanSum, dirSum := 0, 0, 0
		for s := 0; s < samples; s++ {
			src := healthy[rng.Intn(len(healthy))]
			dst := healthy[rng.Intn(len(healthy))]
			if src == dst {
				continue
			}
			m := core.NewMessage(int64(s+1), src, dst, 1)
			alg.InitMessage(m)
			cur := src
			for steps := 0; cur != dst && steps < 8*mesh.Diameter(); steps++ {
				cands.Reset()
				alg.Candidates(m, cur, &cands)
				// Record the winning tier's freedom.
				var tier []core.Channel
				for t := 0; t < core.MaxTiers; t++ {
					if len(cands.Tier(t)) > 0 {
						tier = cands.Tier(t)
						break
					}
				}
				if len(tier) == 0 {
					break
				}
				decisions++
				chanSum += len(tier)
				dirs := map[topology.Direction]bool{}
				for _, ch := range tier {
					dirs[ch.Dir] = true
				}
				dirSum += len(dirs)
				ch := tier[rng.Intn(len(tier))]
				alg.Advance(m, cur, ch)
				cur = mesh.NeighborID(cur, ch.Dir)
			}
		}
		if decisions > 0 {
			res.Channels[algName] = float64(chanSum) / float64(decisions)
			res.Dirs[algName] = float64(dirSum) / float64(decisions)
		}
		o.logf("  %-18s %.1f channels, %.2f directions per decision",
			algName, res.Channels[algName], res.Dirs[algName])
	}
	return res, nil
}

// Table renders the adaptivity comparison.
func (r *AdaptivityResult) Table() *report.Table {
	t := report.NewTable("algorithm", "mean_channels", "mean_directions")
	for _, alg := range r.Algorithms {
		t.AddRow(alg, r.Channels[alg], r.Dirs[alg])
	}
	return t
}
