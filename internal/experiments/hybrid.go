package experiments

import (
	"fmt"

	"wormmesh/internal/report"
	"wormmesh/internal/routing"
	"wormmesh/internal/sweep"
)

// HybridTrafficSweepResult is a TrafficSweepResult whose cells carry
// provenance: some were simulated flit by flit, the rest filled by the
// calibrated analytic surrogate. The embedded curves plot with the
// same charts as a full sweep.
type HybridTrafficSweepResult struct {
	TrafficSweepResult
	// Faults is the random-fault count shared by every curve (0 for
	// the paper's fault-free Figures 1 and 2).
	Faults int
	// Source[alg][i] is sweep.SourceSimulated or sweep.SourceModel for
	// the cell at Rates[i].
	Source map[string][]string
	// Gamma and Knee are each curve's fitted contention gain and the
	// surrogate's predicted saturation rate; BracketLo/Hi the simulated
	// rate window.
	Gamma     map[string]float64
	Knee      map[string]float64
	BracketLo map[string]float64
	BracketHi map[string]float64
	// SimulatedPoints counts simulations actually run across all
	// curves; TotalPoints the full grid a non-hybrid sweep would run.
	SimulatedPoints int
	TotalPoints     int
}

// HybridTrafficSweep is TrafficSweep with the analytic surrogate
// screening the load axis: per algorithm it predicts the saturation
// knee, simulates only the rates bracketing it, and fills the rest
// from the γ-calibrated model (stable region) or the simulated plateau
// (beyond it). Simulated cells are bit-identical to a full sweep's.
// faults > 0 sweeps a faulted mesh (fault seed o.Seed, shared across
// algorithms); radius <= 1 uses the default bracket.
//
// Unsupported cells — torus options, or faults with an algorithm
// outside the BC fortification — fail up front with an error
// satisfying errors.Is(err, analytic.ErrUnsupported); nothing is
// simulated.
func HybridTrafficSweep(o Options, algorithms []string, rates []float64, faults int, radius float64) (*HybridTrafficSweepResult, error) {
	if rates == nil {
		rates = DefaultRates()
	}
	if algorithms == nil {
		algorithms = routing.AlgorithmNames
	}
	var curves []sweep.HybridCurve
	for _, alg := range algorithms {
		p := o.baseParams()
		p.Algorithm = alg
		p.Faults = faults
		if err := sweep.HybridSupported(p); err != nil {
			return nil, err
		}
		curves = append(curves, sweep.HybridCurve{Key: alg, Base: p, Rates: rates})
	}
	o.logf("hybrid traffic sweep: %d algorithms x %d rates, surrogate-screened", len(algorithms), len(rates))
	hopt := sweep.HybridOptions{
		Workers:       o.Workers,
		BracketRadius: radius,
		Cache:         o.Cache,
	}
	if o.SweepMetrics != nil {
		// The sink's Start sees the simulated-cell count, not the full
		// grid, so the published ETA covers the work that actually runs.
		hopt.Metrics = o.SweepMetrics
	}
	hres, err := sweep.HybridSweep(curves, hopt)
	if err != nil {
		return nil, err
	}
	res := &HybridTrafficSweepResult{
		TrafficSweepResult: TrafficSweepResult{
			Rates:      rates,
			Algorithms: algorithms,
			Normalized: map[string][]float64{},
			Accepted:   map[string][]float64{},
			Latency:    map[string][]float64{},
		},
		Faults:      faults,
		Source:      map[string][]string{},
		Gamma:       map[string]float64{},
		Knee:        map[string]float64{},
		BracketLo:   map[string]float64{},
		BracketHi:   map[string]float64{},
		TotalPoints: len(algorithms) * len(rates),
	}
	for _, hc := range hres {
		norm := make([]float64, len(rates))
		acc := make([]float64, len(rates))
		lat := make([]float64, len(rates))
		src := make([]string, len(rates))
		for i, hp := range hc.Points {
			norm[i] = hp.Normalized
			acc[i] = hp.Accepted
			lat[i] = hp.Latency
			src[i] = hp.Source
		}
		res.Normalized[hc.Key] = norm
		res.Accepted[hc.Key] = acc
		res.Latency[hc.Key] = lat
		res.Source[hc.Key] = src
		res.Gamma[hc.Key] = hc.Gamma
		res.Knee[hc.Key] = hc.Knee
		res.BracketLo[hc.Key] = hc.BracketLo
		res.BracketHi[hc.Key] = hc.BracketHi
		res.SimulatedPoints += hc.Simulated
		o.logf("  %-18s knee %.4f, simulated %d/%d points in [%.4f, %.4f], gamma %.2f",
			hc.Key, hc.Knee, hc.Simulated, len(rates), hc.BracketLo, hc.BracketHi, hc.Gamma)
	}
	return res, nil
}

// Table renders the raw series with a provenance column per cell.
func (r *HybridTrafficSweepResult) Table() *report.Table {
	t := report.NewTable("algorithm", "rate", "accepted_flits", "normalized_thr", "latency_cycles", "source")
	for _, alg := range r.Algorithms {
		for i, rate := range r.Rates {
			t.AddRow(alg, rate, r.Accepted[alg][i], r.Normalized[alg][i], r.Latency[alg][i], r.Source[alg][i])
		}
	}
	return t
}

// SummaryTable renders the per-curve screening outcome: the knee the
// surrogate predicted, the simulated bracket, and the fitted γ.
func (r *HybridTrafficSweepResult) SummaryTable() *report.Table {
	t := report.NewTable("algorithm", "model_knee", "bracket_lo", "bracket_hi", "simulated", "total", "gamma")
	for _, alg := range r.Algorithms {
		sim := 0
		for _, s := range r.Source[alg] {
			if s == sweep.SourceSimulated {
				sim++
			}
		}
		t.AddRow(alg, r.Knee[alg], r.BracketLo[alg], r.BracketHi[alg], sim, len(r.Rates), r.Gamma[alg])
	}
	return t
}

// Provenance flattens per-cell sources for run manifests: one
// "alg@rate" → source entry per cell.
func (r *HybridTrafficSweepResult) Provenance() map[string]string {
	out := make(map[string]string, r.TotalPoints)
	for _, alg := range r.Algorithms {
		for i, rate := range r.Rates {
			out[fmt.Sprintf("%s@%g", alg, rate)] = r.Source[alg][i]
		}
	}
	return out
}
