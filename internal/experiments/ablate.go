package experiments

import (
	"fmt"

	"wormmesh/internal/analytic"
	"wormmesh/internal/core"
	"wormmesh/internal/report"
	"wormmesh/internal/routing"
	"wormmesh/internal/sim"
	"wormmesh/internal/sweep"
	"wormmesh/internal/topology"
)

// AblationResult holds one parameter ablation: throughput and latency
// per value of the swept parameter.
type AblationResult struct {
	Parameter  string
	Algorithm  string
	Values     []string
	Throughput []float64
	Latency    []float64
	Killed     []float64
}

// Table renders the ablation.
func (r *AblationResult) Table() *report.Table {
	t := report.NewTable(r.Parameter, "throughput", "latency", "killed_frac")
	for i, v := range r.Values {
		t.AddRow(v, r.Throughput[i], r.Latency[i], r.Killed[i])
	}
	return t
}

func (o Options) runAblation(param, alg string, values []string, configure func(*sim.Params, int)) (*AblationResult, error) {
	var points []sweep.Point
	for i := range values {
		p := o.baseParams()
		p.Algorithm = alg
		p.Rate = o.SaturatingRate() / 2 // busy but not wedged: differences visible
		configure(&p, i)
		points = append(points, sweep.Point{Key: values[i], Params: p})
	}
	o.logf("ablation %s on %s: %d runs", param, alg, len(points))
	outcomes := o.runSweep(points)
	if err := sweep.FirstError(outcomes); err != nil {
		return nil, err
	}
	res := &AblationResult{Parameter: param, Algorithm: alg, Values: values}
	for _, oc := range outcomes {
		st := oc.Result.Stats
		res.Throughput = append(res.Throughput, st.Throughput())
		res.Latency = append(res.Latency, st.AvgLatency())
		killed := 0.0
		if st.Generated > 0 {
			killed = float64(st.Killed) / float64(st.Generated)
		}
		res.Killed = append(res.Killed, killed)
	}
	return res, nil
}

// AblateVCs sweeps the virtual-channel count for one algorithm (the
// paper's "throughput is affected by the number of virtual channels"
// claim for the first category). Counts below the algorithm's minimum
// are skipped.
func (o Options) AblateVCs(alg string, counts []int) (*AblationResult, error) {
	if counts == nil {
		counts = []int{6, 8, 12, 16, 24, 32}
	}
	mesh := topology.New(o.Width, o.Height)
	min, err := routing.MinVCs(alg, mesh)
	if err != nil {
		return nil, err
	}
	var kept []int
	for _, c := range counts {
		if c >= min {
			kept = append(kept, c)
		}
	}
	if len(kept) == 0 {
		return nil, fmt.Errorf("experiments: no VC count >= %s's minimum %d", alg, min)
	}
	values := make([]string, len(kept))
	for i, c := range kept {
		values[i] = fmt.Sprintf("%d", c)
	}
	return o.runAblation("num_vcs", alg, values, func(p *sim.Params, i int) {
		p.Config.NumVCs = kept[i]
	})
}

// AblateBufDepth sweeps the per-VC buffer depth (a parameter the paper
// never states; the ablation quantifies its influence).
func (o Options) AblateBufDepth(alg string, depths []int) (*AblationResult, error) {
	if depths == nil {
		depths = []int{1, 2, 4, 8}
	}
	values := make([]string, len(depths))
	for i, d := range depths {
		values[i] = fmt.Sprintf("%d", d)
	}
	return o.runAblation("buf_depth", alg, values, func(p *sim.Params, i int) {
		p.Config.BufDepth = depths[i]
	})
}

// AblateMessageLength sweeps the fixed message length over the values
// the literature commonly considers (the paper: "fixed-length messages
// with 32, 64, or 100 flits are commonly considered; we have used
// 100"). The offered load in flits/node/cycle is held constant so the
// comparison isolates the length effect.
func (o Options) AblateMessageLength(alg string, lengths []int) (*AblationResult, error) {
	if lengths == nil {
		lengths = []int{32, 64, 100}
	}
	flitLoad := o.SaturatingRate() / 2 * float64(o.MessageLength)
	values := make([]string, len(lengths))
	for i, l := range lengths {
		values[i] = fmt.Sprintf("%d", l)
	}
	return o.runAblation("msg_length", alg, values, func(p *sim.Params, i int) {
		p.MessageLength = lengths[i]
		p.Rate = flitLoad / float64(lengths[i])
	})
}

// AblateSelection sweeps the free-channel selection policy (the
// engine's stand-in for the paper's unspecified adaptive selection).
func (o Options) AblateSelection(alg string) (*AblationResult, error) {
	policies := []core.SelectionPolicy{core.SelectRandomChannel, core.SelectRandomDir, core.SelectLowestVC}
	values := make([]string, len(policies))
	for i, p := range policies {
		values[i] = p.String()
	}
	return o.runAblation("selection", alg, values, func(p *sim.Params, i int) {
		p.Config.Selection = policies[i]
	})
}

// ModelValidationResult compares the analytic model against the
// simulator across loads.
type ModelValidationResult struct {
	Rates      []float64
	Simulated  []float64 // measured mean latency
	Uncal      []float64 // uncalibrated model
	Calibrated []float64 // model calibrated at the first rate
	Gain       float64
}

// Table renders the comparison.
func (r *ModelValidationResult) Table() *report.Table {
	t := report.NewTable("rate", "simulated", "model_raw", "model_calibrated")
	for i := range r.Rates {
		t.AddRow(r.Rates[i], r.Simulated[i], r.Uncal[i], r.Calibrated[i])
	}
	return t
}

// ModelValidation runs the simulator at each rate (fault-free,
// Minimal-Adaptive: the configuration closest to the model's
// assumptions), evaluates the analytic model, and calibrates the
// contention gain on the first rate.
func (o Options) ModelValidation(rates []float64) (*ModelValidationResult, error) {
	if rates == nil {
		rates = []float64{0.0005, 0.001, 0.0015, 0.002}
	}
	var points []sweep.Point
	for _, rate := range rates {
		p := o.baseParams()
		p.Algorithm = "Minimal-Adaptive"
		p.Rate = rate
		points = append(points, sweep.Point{Key: fmt.Sprintf("%g", rate), Params: p})
	}
	o.logf("model validation: %d simulator runs", len(points))
	outcomes := o.runSweep(points)
	if err := sweep.FirstError(outcomes); err != nil {
		return nil, err
	}
	model := analytic.Default()
	model.Topo = topology.New(o.Width, o.Height)
	model.MessageLength = o.MessageLength

	res := &ModelValidationResult{Rates: rates}
	for _, oc := range outcomes {
		res.Simulated = append(res.Simulated, oc.Result.Stats.AvgLatency())
	}
	calibrated, err := model.Calibrate(rates[0], res.Simulated[0])
	if err != nil {
		return nil, err
	}
	res.Gain = calibrated.ContentionGain
	for _, rate := range rates {
		if p, err := model.Predict(rate); err == nil {
			res.Uncal = append(res.Uncal, p.Latency)
		} else {
			res.Uncal = append(res.Uncal, -1)
		}
		if p, err := calibrated.Predict(rate); err == nil {
			res.Calibrated = append(res.Calibrated, p.Latency)
		} else {
			res.Calibrated = append(res.Calibrated, -1)
		}
	}
	return res, nil
}

// SaturationResult reports each algorithm's measured saturation point
// (the paper's "NHop starts to saturate after 0.066 and PHop shows
// signs of saturation at about 0.045" style of observation).
type SaturationResult struct {
	Algorithms []string
	Rate       []float64 // offered rate where saturation was reached
	Throughput []float64 // accepted flits/node/cycle at saturation
}

// Table renders the saturation points.
func (r *SaturationResult) Table() *report.Table {
	t := report.NewTable("algorithm", "saturation_rate", "saturation_throughput")
	for i, alg := range r.Algorithms {
		t.AddRow(alg, r.Rate[i], r.Throughput[i])
	}
	return t
}

// SaturationPoints searches each algorithm's saturation throughput on
// the fault-free mesh by doubling the offered rate until accepted
// traffic stops improving.
func (o Options) SaturationPoints(algorithms []string) (*SaturationResult, error) {
	if algorithms == nil {
		algorithms = routing.AlgorithmNames
	}
	res := &SaturationResult{Algorithms: algorithms}
	for _, alg := range algorithms {
		p := o.baseParams()
		p.Algorithm = alg
		rate, thr, err := sweep.SaturationSearch(p, 0.0005, 0.03, 8)
		if err != nil {
			return nil, err
		}
		o.logf("  %-18s saturates by rate %.4f at %.4f flits/node/cycle", alg, rate, thr)
		res.Rate = append(res.Rate, rate)
		res.Throughput = append(res.Throughput, thr)
	}
	return res, nil
}
