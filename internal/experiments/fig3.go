package experiments

import (
	"fmt"

	"wormmesh/internal/report"
	"wormmesh/internal/routing"
	"wormmesh/internal/sweep"
)

// VCUsageResult holds Figure 3: per-virtual-channel utilization for
// every algorithm on a mesh with 5% node failures, averaged over the
// fault sets.
type VCUsageResult struct {
	Algorithms []string
	NumVCs     int
	// Utilization[alg][v] is the mean fraction of cycles VC v was
	// owned, averaged over physical channels and fault sets.
	Utilization map[string][]float64
}

// VCUsage runs Figure 3 (faultPercent in whole percent of nodes; the
// paper uses 5) at a near-saturation load so the channel pressure the
// figure discusses is visible.
func VCUsage(o Options, algorithms []string, faultPercent int) (*VCUsageResult, error) {
	if algorithms == nil {
		algorithms = routing.AlgorithmNames
	}
	base := o.baseParams()
	base.Rate = o.SaturatingRate()
	nodes := o.Width * o.Height
	base.Faults = nodes * faultPercent / 100

	var points []sweep.Point
	for _, alg := range algorithms {
		p := base
		p.Algorithm = alg
		points = append(points, sweep.FaultReplicas(alg, p, o.FaultSets)...)
	}
	o.logf("VC usage: %d runs (%d algorithms x %d fault sets, %d%% faults)",
		len(points), len(algorithms), o.FaultSets, faultPercent)
	outcomes := o.runSweep(points)
	if err := sweep.FirstError(outcomes); err != nil {
		return nil, err
	}
	res := &VCUsageResult{
		Algorithms:  algorithms,
		NumVCs:      base.Config.NumVCs,
		Utilization: map[string][]float64{},
	}
	i := 0
	for _, alg := range algorithms {
		acc := make([]float64, res.NumVCs)
		for rep := 0; rep < o.FaultSets; rep++ {
			u := outcomes[i].Result.Stats.VCUtilization()
			for v := range u {
				acc[v] += u[v] / float64(o.FaultSets)
			}
			i++
		}
		res.Utilization[alg] = acc
		o.logf("  %-18s mean VC utilization %.3f, imbalance %.2f", alg, meanOf(acc), res.Imbalance(alg))
	}
	return res, nil
}

// Imbalance returns max/mean utilization over the VCs an algorithm
// actually touched — the figure's "balanced use of virtual channels"
// in one number (1.0 = perfectly even).
func (r *VCUsageResult) Imbalance(alg string) float64 {
	u := r.Utilization[alg]
	var max, sum float64
	n := 0
	for _, v := range u {
		if v > 0 {
			sum += v
			n++
			if v > max {
				max = v
			}
		}
	}
	if n == 0 || sum == 0 {
		return 0
	}
	return max / (sum / float64(n))
}

// UsedVCs counts channels with non-negligible utilization.
func (r *VCUsageResult) UsedVCs(alg string) int {
	n := 0
	for _, v := range r.Utilization[alg] {
		if v > 1e-4 {
			n++
		}
	}
	return n
}

// Chart renders one algorithm's per-VC bars.
func (r *VCUsageResult) Chart(alg string) *report.BarChart {
	b := &report.BarChart{Title: fmt.Sprintf("Figure 3: per-VC utilization — %s", alg), Unit: ""}
	for v, u := range r.Utilization[alg] {
		b.Add(fmt.Sprintf("VC%d", v), u)
	}
	return b
}

// Table renders the full matrix.
func (r *VCUsageResult) Table() *report.Table {
	header := []string{"vc"}
	header = append(header, r.Algorithms...)
	t := report.NewTable(header...)
	for v := 0; v < r.NumVCs; v++ {
		row := make([]interface{}, 0, len(r.Algorithms)+1)
		row = append(row, fmt.Sprintf("VC%d", v))
		for _, alg := range r.Algorithms {
			row = append(row, r.Utilization[alg][v])
		}
		t.AddRow(row...)
	}
	return t
}

func meanOf(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range v {
		sum += x
	}
	return sum / float64(len(v))
}
