// Package experiments encodes the paper's six figures as runnable
// experiment definitions, shared by cmd/experiments, the test suite,
// and the benchmark harness. Each figure function returns structured
// data plus renderers; EXPERIMENTS.md records the measured-vs-paper
// comparison.
package experiments

import (
	"fmt"
	"io"

	"wormmesh/internal/metrics"
	"wormmesh/internal/sim"
	"wormmesh/internal/sweep"
	"wormmesh/internal/topology"
)

// Options scales the experiments. Paper() reproduces the publication
// parameters (within tractable replication counts); Quick() shrinks
// cycle counts for tests and benchmarks while preserving shapes.
type Options struct {
	Width, Height int
	// Topology selects the network backend ("mesh" or "torus"; empty
	// means mesh). It re-bases every study; algorithm defaults should
	// be intersected with the torus roster by the caller.
	Topology      string
	MessageLength int
	NumVCs        int

	WarmupCycles  int64
	MeasureCycles int64
	FaultSets     int // replications per fault case
	Workers       int // 0 = NumCPU
	Seed          int64

	// Progress, when non-nil, receives one line per completed run.
	Progress io.Writer `json:"-"`

	// SweepMetrics, when non-nil, publishes live batch progress
	// (points total/done, elapsed, ETA) for every sweep these options
	// run — cmd/experiments wires it to a -metrics-addr listener so a
	// multi-hour figure regeneration is observable from the outside.
	SweepMetrics *metrics.Sweep `json:"-"`

	// Cache, when non-nil, is the content-addressed result cache every
	// sweep consults before simulating a point and files results into —
	// cmd/experiments wires it to the same disk store meshserve uses,
	// so a re-run of a figure costs lookups, not simulations.
	Cache sweep.Cache `json:"-"`
}

// Paper returns the publication-scale options: 10×10 mesh, 100-flit
// messages, 24 VCs, 30 000 cycles with 10 000 warm-up. (The paper runs
// 1 000 fault patterns for its fault-model statistics and 10 fault
// sets for the performance figures; we default to the latter
// everywhere and let callers raise it.)
func Paper() Options {
	return Options{
		Width: 10, Height: 10,
		MessageLength: 100,
		NumVCs:        24,
		WarmupCycles:  10000,
		MeasureCycles: 20000,
		FaultSets:     10,
		Seed:          1,
	}
}

// Quick returns CI-scale options (roughly 6× faster per run, 3 fault
// sets).
func Quick() Options {
	o := Paper()
	o.WarmupCycles = 1000
	o.MeasureCycles = 4000
	o.FaultSets = 3
	return o
}

// baseParams builds the shared sim.Params for these options.
func (o Options) baseParams() sim.Params {
	p := sim.DefaultParams()
	p.Width, p.Height = o.Width, o.Height
	p.Topology = o.Topology
	p.MessageLength = o.MessageLength
	p.WarmupCycles = o.WarmupCycles
	p.MeasureCycles = o.MeasureCycles
	p.Seed = o.Seed
	p.FaultSeed = o.Seed
	if o.NumVCs != 0 {
		p.Config.NumVCs = o.NumVCs
	}
	return p
}

// runSweep executes one batch of points with the configured worker
// count, bracketing it with the live sweep metrics when installed.
func (o Options) runSweep(points []sweep.Point) []sweep.Outcome {
	if o.SweepMetrics == nil {
		return sweep.RunCached(points, o.Workers, nil, o.Cache)
	}
	o.SweepMetrics.Start(len(points))
	defer o.SweepMetrics.Finish()
	return sweep.RunCached(points, o.Workers, o.SweepMetrics.Progress, o.Cache)
}

func (o Options) logf(format string, args ...interface{}) {
	if o.Progress != nil {
		fmt.Fprintf(o.Progress, format+"\n", args...)
	}
}

// SaturatingRate is the offered load used for the paper's "100%
// traffic load" experiments: far above the mesh's bisection capacity,
// so injection is limited only by the network's acceptance.
func (o Options) SaturatingRate() float64 {
	// One flit per node per cycle offered; capacity is ~0.4 for 10×10.
	return 1.0 / float64(o.MessageLength)
}

// Fig6FaultNodes returns the canned fault pattern of Figure 6 scaled
// to the mesh: one 2-wide × 3-high block plus two 1×1 regions in the
// same row band, spaced so their f-rings overlap.
func (o Options) Fig6FaultNodes() []topology.NodeID {
	m := topology.New(o.Width, o.Height)
	var ids []topology.NodeID
	add := func(x, y int) {
		c := topology.Coord{X: x, Y: y}
		if m.Contains(c) {
			ids = append(ids, m.ID(c))
		}
	}
	// 2×3 block at columns 2-3, rows 3-5.
	for y := 3; y <= 5; y++ {
		for x := 2; x <= 3; x++ {
			add(x, y)
		}
	}
	// Two unit regions at Chebyshev distance 2 (distinct regions,
	// overlapping f-rings).
	add(5, 4)
	add(7, 4)
	return ids
}
