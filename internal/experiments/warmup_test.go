package experiments

import (
	"strings"
	"testing"
)

// TestWarmupStudy runs the warm-up sensitivity study at CI scale and
// checks its structural contract: a full policy ladder per load, zero
// bias at the reference by construction, fixed variants discarding
// exactly their budget, and the MSER variant never exceeding its.
func TestWarmupStudy(t *testing.T) {
	o := Quick()
	o.FaultSets = 1
	res, err := Warmup(o, "Duato", 0, []float64{0.5, 1.0})
	if err != nil {
		t.Fatal(err)
	}
	perRate := len(DefaultWarmupFractions) + 1
	if len(res.Rows) != 2*perRate {
		t.Fatalf("rows = %d, want %d", len(res.Rows), 2*perRate)
	}
	for _, row := range res.Rows {
		if row.Latency <= 0 {
			t.Errorf("%s@%g: latency %g not positive", row.Variant, row.Rate, row.Latency)
		}
		switch {
		case row.Variant == "mser":
			if row.Effective > row.Budget {
				t.Errorf("mser@%g: effective warm-up %d exceeds budget %d", row.Rate, row.Effective, row.Budget)
			}
		case strings.HasPrefix(row.Variant, "fixed-"):
			if row.Effective != row.Budget {
				t.Errorf("%s@%g: effective %d != budget %d", row.Variant, row.Rate, row.Effective, row.Budget)
			}
		default:
			t.Errorf("unknown variant %q", row.Variant)
		}
		if row.Variant == "fixed-1" && row.LatencyBiasPct != 0 {
			t.Errorf("reference variant bias = %g%%, want 0", row.LatencyBiasPct)
		}
	}
	tab := res.Table()
	if tab == nil {
		t.Fatal("nil table")
	}
}
