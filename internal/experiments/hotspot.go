package experiments

import (
	"fmt"
	"strconv"

	"wormmesh/internal/report"
	"wormmesh/internal/routing"
	"wormmesh/internal/sim"
	"wormmesh/internal/sweep"
)

// HotspotRow is one cell of the hotspot study: one algorithm on one
// fault case at one load, with its on-/off-ring blocked-cycle split and
// the latency anatomy headline numbers.
type HotspotRow struct {
	Algorithm string
	Case      string // "fig6" or the random fault count
	Load      string // "knee" (saturation onset) or "sat" (100% load)
	Faults    int    // seed faults of the case

	// Blocked is the blocked-cycle aggregation over directional links:
	// mean blocked cycles per on-ring link vs. per off-ring link. A
	// ratio above 1 localizes the congestion on the rings — which holds
	// at the knee; past saturation the whole fabric blocks and the
	// split washes out (see EXPERIMENTS.md).
	Blocked sim.RingSplit
	// Busy is the same split over busy cycles (would-be senders): the
	// utilization imbalance, which survives past saturation.
	Busy sim.RingSplit

	// BlockedShare is the fraction of total message latency spent
	// credit/switch-blocked; RingShare the f-ring traversal overlay
	// share.
	BlockedShare  float64
	RingShare     float64
	P50, P95, P99 int64
}

// HotspotResult holds the full study: rows per (algorithm, fault case,
// load) plus the blocked-cycle congestion map of each algorithm on the
// Figure 6 canned pattern at the knee load.
type HotspotResult struct {
	Algorithms []string
	Cases      []string
	Loads      []string
	Rows       []HotspotRow

	// Views maps algorithm -> the composite blocked-cycle link map of
	// its Figure 6 knee-load run (the spatial picture behind that row).
	Views map[string]*report.LinkView
}

// DefaultHotspotFaults are the random-fault cases of the hotspot study
// (in addition to the canned Figure 6 pattern): 2%, 5% and 10% of the
// paper's 10×10 mesh.
var DefaultHotspotFaults = []int{2, 5, 10}

// KneeRate is the offered load at the faulty mesh's saturation onset:
// 15% of the 100% traffic load. Fault blocks cut the usable bisection,
// so the faulty configurations sit at the top of their latency knee
// here — the regime where congestion is localized rather than global.
func (o Options) KneeRate() float64 {
	return 0.15 * o.SaturatingRate()
}

// Hotspot measures WHERE congestion sits: for each algorithm, fault
// case and load it runs with per-link telemetry enabled and splits
// blocked and busy cycles into on-f-ring links versus the rest. The
// BC-fortified algorithms funnel misrouted traffic onto the rings, so
// at the saturation knee their on-ring links block disproportionately
// (ratio > 1); past saturation blocking goes global while the busy
// split keeps the rings on top — the spatial mechanism behind Figure
// 6's load imbalance.
func Hotspot(o Options, algorithms []string, faultCounts []int) (*HotspotResult, error) {
	if algorithms == nil {
		algorithms = routing.AlgorithmNames
	}
	if faultCounts == nil {
		faultCounts = DefaultHotspotFaults
	}
	cases := []string{"fig6"}
	for _, f := range faultCounts {
		cases = append(cases, strconv.Itoa(f))
	}
	loads := []string{"knee", "sat"}
	rates := []float64{o.KneeRate(), o.SaturatingRate()}
	var points []sweep.Point
	for _, alg := range algorithms {
		for ci := range cases {
			for li, load := range loads {
				p := o.baseParams()
				p.Algorithm = alg
				p.Rate = rates[li]
				p.Config.ChannelTelemetry = true
				if ci == 0 {
					p.FaultNodes = o.Fig6FaultNodes()
				} else {
					p.Faults = faultCounts[ci-1]
				}
				points = append(points, sweep.Point{
					Key:    fmt.Sprintf("%s@%s/%s", alg, cases[ci], load),
					Params: p,
				})
			}
		}
	}
	o.logf("hotspot: %d runs (%d algorithms × %d fault cases × %d loads, link telemetry on)",
		len(points), len(algorithms), len(cases), len(loads))
	outcomes := o.runSweep(points)
	if err := sweep.FirstError(outcomes); err != nil {
		return nil, err
	}
	res := &HotspotResult{
		Algorithms: algorithms,
		Cases:      cases,
		Loads:      loads,
		Views:      map[string]*report.LinkView{},
	}
	perAlg := len(cases) * len(loads)
	for i, out := range outcomes {
		alg := algorithms[i/perAlg]
		c := cases[(i%perAlg)/len(loads)]
		load := loads[i%len(loads)]
		r := out.Result
		blocked, err := r.RingSplit(sim.LinkBlocked)
		if err != nil {
			return nil, err
		}
		busy, err := r.RingSplit(sim.LinkBusy)
		if err != nil {
			return nil, err
		}
		st := r.Stats
		row := HotspotRow{
			Algorithm: alg,
			Case:      c,
			Load:      load,
			Faults:    r.SeedFaults,
			Blocked:   blocked,
			Busy:      busy,
			P50:       st.Percentile(50),
			P95:       st.Percentile(95),
			P99:       st.Percentile(99),
		}
		if st.LatencySum > 0 {
			row.BlockedShare = float64(st.LatBlockedSum) / float64(st.LatencySum)
			row.RingShare = float64(st.LatRingSum) / float64(st.LatencySum)
		}
		res.Rows = append(res.Rows, row)
		if c == "fig6" && load == "knee" {
			lv, err := r.LinkView(sim.LinkBlocked)
			if err != nil {
				return nil, err
			}
			lv.Title = fmt.Sprintf("%s: blocked cycles per link per cycle, Figure 6 pattern at knee load (X = faulty, o = f-ring node):", alg)
			res.Views[alg] = lv
			o.logf("  %-18s fig6@knee on/off-ring blocked %.1f/%.1f (ratio %.2f), busy ratio %.2f",
				alg, blocked.OnRingMean, blocked.OffRingMean, blocked.Ratio(), busy.Ratio())
		}
	}
	return res, nil
}

// Row returns the study row for (algorithm, case, load), or nil.
func (r *HotspotResult) Row(alg, c, load string) *HotspotRow {
	for i := range r.Rows {
		row := &r.Rows[i]
		if row.Algorithm == alg && row.Case == c && row.Load == load {
			return row
		}
	}
	return nil
}

// Table renders the full study data.
func (r *HotspotResult) Table() *report.Table {
	t := report.NewTable("algorithm", "case", "load", "faults",
		"ring_links", "other_links",
		"onring_blocked_mean", "offring_blocked_mean", "blocked_ratio", "busy_ratio",
		"blocked_share%", "ring_overlay_share%", "p50", "p95", "p99")
	for _, row := range r.Rows {
		t.AddRow(row.Algorithm, row.Case, row.Load, row.Faults,
			row.Blocked.OnRingLinks, row.Blocked.OffRingLinks,
			row.Blocked.OnRingMean, row.Blocked.OffRingMean,
			row.Blocked.Ratio(), row.Busy.Ratio(),
			100*row.BlockedShare, 100*row.RingShare,
			row.P50, row.P95, row.P99)
	}
	return t
}
