package experiments

import (
	"fmt"

	"wormmesh/internal/report"
	"wormmesh/internal/routing"
	"wormmesh/internal/sweep"
)

// FaultSweepResult holds Figures 4 and 5: normalized throughput and
// message latency at saturating ("100%") load against the percentage
// of faulty nodes, averaged over the fault sets.
type FaultSweepResult struct {
	Algorithms    []string
	FaultPercents []int
	// Throughput[alg][i] is mean normalized throughput at
	// FaultPercents[i]; ThroughputStd the std over fault sets.
	Throughput    map[string][]float64
	ThroughputStd map[string][]float64
	Latency       map[string][]float64
	LatencyStd    map[string][]float64
	Killed        map[string][]float64 // killed fraction of generated
}

// FaultSweep runs the fault cases behind Figures 4 and 5. A nil
// faultPercents uses the paper's {0, 5, 10}.
func FaultSweep(o Options, algorithms []string, faultPercents []int) (*FaultSweepResult, error) {
	if algorithms == nil {
		algorithms = routing.AlgorithmNames
	}
	if faultPercents == nil {
		faultPercents = []int{0, 5, 10}
	}
	nodes := o.Width * o.Height
	var points []sweep.Point
	for _, alg := range algorithms {
		for _, pct := range faultPercents {
			p := o.baseParams()
			p.Algorithm = alg
			p.Rate = o.SaturatingRate()
			p.Faults = nodes * pct / 100
			key := fmt.Sprintf("%s@%d%%", alg, pct)
			reps := o.FaultSets
			if pct == 0 {
				reps = 1 // no fault pattern to vary
			}
			points = append(points, sweep.FaultReplicas(key, p, reps)...)
		}
	}
	o.logf("fault sweep: %d runs (%d algorithms x %v%% faults x %d sets)",
		len(points), len(algorithms), faultPercents, o.FaultSets)
	outcomes := o.runSweep(points)
	if err := sweep.FirstError(outcomes); err != nil {
		return nil, err
	}
	cells := sweep.Aggregate(outcomes)
	byKey := map[string]sweep.Cell{}
	for _, c := range cells {
		byKey[c.Key] = c
	}
	res := &FaultSweepResult{
		Algorithms:    algorithms,
		FaultPercents: faultPercents,
		Throughput:    map[string][]float64{},
		ThroughputStd: map[string][]float64{},
		Latency:       map[string][]float64{},
		LatencyStd:    map[string][]float64{},
		Killed:        map[string][]float64{},
	}
	for _, alg := range algorithms {
		thr := make([]float64, len(faultPercents))
		thrStd := make([]float64, len(faultPercents))
		lat := make([]float64, len(faultPercents))
		latStd := make([]float64, len(faultPercents))
		killed := make([]float64, len(faultPercents))
		for i, pct := range faultPercents {
			c := byKey[fmt.Sprintf("%s@%d%%", alg, pct)]
			thr[i] = c.Normalized.Mean()
			thrStd[i] = c.Normalized.Std()
			lat[i] = c.Latency.Mean()
			latStd[i] = c.Latency.Std()
			killed[i] = c.KilledFraction.Mean()
		}
		res.Throughput[alg] = thr
		res.ThroughputStd[alg] = thrStd
		res.Latency[alg] = lat
		res.LatencyStd[alg] = latStd
		res.Killed[alg] = killed
		o.logf("  %-18s thr %v", alg, formatSeries(thr))
	}
	return res, nil
}

// ThroughputChart renders Figure 4.
func (r *FaultSweepResult) ThroughputChart() *report.LineChart {
	c := &report.LineChart{
		Title:  "Figure 4: normalized throughput vs. percentage of faulty nodes (saturating load)",
		XLabel: "% faulty nodes",
	}
	x := make([]float64, len(r.FaultPercents))
	for i, p := range r.FaultPercents {
		x[i] = float64(p)
	}
	for _, alg := range r.Algorithms {
		c.Add(report.Series{Name: alg, X: x, Y: r.Throughput[alg]})
	}
	return c
}

// LatencyChart renders Figure 5.
func (r *FaultSweepResult) LatencyChart() *report.LineChart {
	c := &report.LineChart{
		Title:  "Figure 5: average message latency vs. percentage of faulty nodes (saturating load)",
		XLabel: "% faulty nodes",
	}
	x := make([]float64, len(r.FaultPercents))
	for i, p := range r.FaultPercents {
		x[i] = float64(p)
	}
	for _, alg := range r.Algorithms {
		c.Add(report.Series{Name: alg, X: x, Y: r.Latency[alg]})
	}
	return c
}

// Table renders both figures' data.
func (r *FaultSweepResult) Table() *report.Table {
	t := report.NewTable("algorithm", "faults%", "norm_throughput", "thr_std", "latency", "lat_std", "killed_frac")
	for _, alg := range r.Algorithms {
		for i, pct := range r.FaultPercents {
			t.AddRow(alg, pct, r.Throughput[alg][i], r.ThroughputStd[alg][i],
				r.Latency[alg][i], r.LatencyStd[alg][i], r.Killed[alg][i])
		}
	}
	return t
}

func formatSeries(v []float64) string {
	s := "["
	for i, x := range v {
		if i > 0 {
			s += " "
		}
		s += fmt.Sprintf("%.3f", x)
	}
	return s + "]"
}
