package traffic

import (
	"math"
	"math/rand"
	"testing"

	"wormmesh/internal/core"
	"wormmesh/internal/topology"
)

// emittedMsg records the observable content of a generated message so
// two sources' output streams can be compared field by field.
type emittedMsg struct {
	id       int64
	src, dst topology.NodeID
	length   int
	genTime  int64
}

func collectTicks(s *Source, cycles int64, defeatSkip bool) []emittedMsg {
	var out []emittedMsg
	emit := func(m *core.Message) bool {
		out = append(out, emittedMsg{m.ID, m.Src, m.Dst, m.Length, m.GenTime})
		return true
	}
	for c := int64(0); c < cycles; c++ {
		if defeatSkip {
			// Force the full per-node scan on every cycle: the
			// reference behavior the nextMin short-circuit must match.
			s.nextMin = math.Inf(-1)
		}
		s.Tick(c, emit)
	}
	return out
}

// TestTickSkipMatchesScan is the traffic-side equivalence contract:
// the nextMin idle-cycle short-circuit in Source.Tick must produce a
// message stream identical to scanning every node on every cycle. Two
// sources are built from identical seeds; one has its cache defeated
// (nextMin forced to -Inf before each tick) so it always takes the
// scan path. A skipped cycle draws nothing from the RNG — neither
// does a scan cycle where no node is due — so the streams, and the
// RNG states behind them, must stay in lockstep.
func TestTickSkipMatchesScan(t *testing.T) {
	for _, rate := range []float64{0.0005, 0.004, 0.02} {
		f := model10(t)
		fast, err := NewSource(f, NewUniform(f), rate, 16, rand.New(rand.NewSource(42)))
		if err != nil {
			t.Fatal(err)
		}
		slow, err := NewSource(f, NewUniform(f), rate, 16, rand.New(rand.NewSource(42)))
		if err != nil {
			t.Fatal(err)
		}
		const cycles = 5000
		got := collectTicks(fast, cycles, false)
		want := collectTicks(slow, cycles, true)
		if len(got) == 0 {
			t.Fatalf("rate %v: no messages generated; equivalence is vacuous", rate)
		}
		if len(got) != len(want) {
			t.Fatalf("rate %v: skip path emitted %d messages, scan path %d", rate, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("rate %v: message %d diverged: skip=%+v scan=%+v", rate, i, got[i], want[i])
			}
		}
		if fast.Generated() != slow.Generated() {
			t.Fatalf("rate %v: Generated() %d vs %d", rate, fast.Generated(), slow.Generated())
		}
	}
}

// TestTickIdleAllocs locks in the cost model of an idle tick: cycles
// before the earliest pending arrival must return after the nextMin
// comparison without calling emit and without allocating.
func TestTickIdleAllocs(t *testing.T) {
	f := model10(t)
	s, err := NewSource(f, NewUniform(f), 1e-9, 16, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	// ExpFloat64 is strictly positive, so every arrival lies after
	// cycle 0 and ticks at cycle 0 are guaranteed idle.
	if s.nextMin <= 0 {
		t.Fatalf("nextMin = %v, expected positive first arrivals", s.nextMin)
	}
	calls := 0
	emit := func(m *core.Message) bool { calls++; return true }
	allocs := testing.AllocsPerRun(1000, func() { s.Tick(0, emit) })
	if allocs != 0 {
		t.Errorf("idle Tick allocates %.2f objects, want 0", allocs)
	}
	if calls != 0 {
		t.Errorf("idle Tick called emit %d times, want 0", calls)
	}
}
