// Package traffic generates workloads for the simulator. The paper
// uses uniform traffic with exponentially distributed inter-arrival
// times; the transpose, bit-complement and hotspot patterns are the
// standard extras any interconnect simulator ships and are used by the
// ablation examples.
package traffic

import (
	"fmt"
	"math"
	"math/rand"

	"wormmesh/internal/core"
	"wormmesh/internal/fault"
	"wormmesh/internal/topology"
)

// Pattern picks destinations for generated messages. Destinations must
// be healthy and different from the source; a Pattern may return
// ok=false when the source has no admissible destination (e.g. the
// transpose partner is faulty), in which case no message is generated.
type Pattern interface {
	Name() string
	Dest(src topology.NodeID, rng *rand.Rand) (topology.NodeID, bool)
}

// Uniform sends each message to a healthy node chosen uniformly at
// random (excluding the source) — the paper's workload.
type Uniform struct {
	healthy []topology.NodeID
}

// NewUniform builds the uniform pattern over a fault model.
func NewUniform(f *fault.Model) *Uniform {
	return &Uniform{healthy: f.HealthyNodes()}
}

// Name implements Pattern.
func (u *Uniform) Name() string { return "uniform" }

// Dest implements Pattern.
func (u *Uniform) Dest(src topology.NodeID, rng *rand.Rand) (topology.NodeID, bool) {
	if len(u.healthy) < 2 {
		return topology.Invalid, false
	}
	for {
		d := u.healthy[rng.Intn(len(u.healthy))]
		if d != src {
			return d, true
		}
	}
}

// Transpose sends (x, y) → (y, x) on a square mesh.
type Transpose struct {
	mesh   topology.Topology
	faults *fault.Model
}

// NewTranspose builds the transpose pattern; the mesh must be square.
func NewTranspose(f *fault.Model) (*Transpose, error) {
	if f.Topo.Width() != f.Topo.Height() {
		return nil, fmt.Errorf("traffic: transpose needs a square mesh, got %v", f.Topo)
	}
	return &Transpose{mesh: f.Topo, faults: f}, nil
}

// Name implements Pattern.
func (t *Transpose) Name() string { return "transpose" }

// Dest implements Pattern.
func (t *Transpose) Dest(src topology.NodeID, _ *rand.Rand) (topology.NodeID, bool) {
	c := t.mesh.CoordOf(src)
	d := t.mesh.ID(topology.Coord{X: c.Y, Y: c.X})
	if d == src || t.faults.IsFaulty(d) {
		return topology.Invalid, false
	}
	return d, true
}

// BitComplement sends (x, y) → (W-1-x, H-1-y).
type BitComplement struct {
	mesh   topology.Topology
	faults *fault.Model
}

// NewBitComplement builds the bit-complement pattern.
func NewBitComplement(f *fault.Model) *BitComplement {
	return &BitComplement{mesh: f.Topo, faults: f}
}

// Name implements Pattern.
func (b *BitComplement) Name() string { return "bit-complement" }

// Dest implements Pattern.
func (b *BitComplement) Dest(src topology.NodeID, _ *rand.Rand) (topology.NodeID, bool) {
	c := b.mesh.CoordOf(src)
	d := b.mesh.ID(topology.Coord{X: b.mesh.Width() - 1 - c.X, Y: b.mesh.Height() - 1 - c.Y})
	if d == src || b.faults.IsFaulty(d) {
		return topology.Invalid, false
	}
	return d, true
}

// Hotspot sends to a fixed hot node with probability p and uniformly
// otherwise.
type Hotspot struct {
	uniform *Uniform
	hot     topology.NodeID
	p       float64
}

// NewHotspot builds a hotspot pattern; hot must be healthy.
func NewHotspot(f *fault.Model, hot topology.NodeID, p float64) (*Hotspot, error) {
	if f.IsFaulty(hot) {
		return nil, fmt.Errorf("traffic: hotspot node %d is faulty", hot)
	}
	if p < 0 || p > 1 {
		return nil, fmt.Errorf("traffic: hotspot probability %v outside [0,1]", p)
	}
	return &Hotspot{uniform: NewUniform(f), hot: hot, p: p}, nil
}

// Name implements Pattern.
func (h *Hotspot) Name() string { return fmt.Sprintf("hotspot(%.0f%%)", h.p*100) }

// Dest implements Pattern.
func (h *Hotspot) Dest(src topology.NodeID, rng *rand.Rand) (topology.NodeID, bool) {
	if src != h.hot && rng.Float64() < h.p {
		return h.hot, true
	}
	return h.uniform.Dest(src, rng)
}

// BitReverse sends each node to the node whose coordinate bits are
// reversed within ceil(log2(dim)) bits, clipped to the mesh — the
// FFT-style permutation. Destinations that fall on the source or on a
// faulty node are refused.
type BitReverse struct {
	mesh   topology.Topology
	faults *fault.Model
}

// NewBitReverse builds the bit-reversal pattern.
func NewBitReverse(f *fault.Model) *BitReverse {
	return &BitReverse{mesh: f.Topo, faults: f}
}

// Name implements Pattern.
func (b *BitReverse) Name() string { return "bit-reverse" }

func reverseBits(v, width int) int {
	out := 0
	for i := 0; i < width; i++ {
		out = out<<1 | (v & 1)
		v >>= 1
	}
	return out
}

func bitsFor(n int) int {
	b := 0
	for 1<<b < n {
		b++
	}
	return b
}

// Dest implements Pattern.
func (b *BitReverse) Dest(src topology.NodeID, _ *rand.Rand) (topology.NodeID, bool) {
	c := b.mesh.CoordOf(src)
	d := topology.Coord{
		X: reverseBits(c.X, bitsFor(b.mesh.Width())),
		Y: reverseBits(c.Y, bitsFor(b.mesh.Height())),
	}
	if !b.mesh.Contains(d) {
		return topology.Invalid, false
	}
	id := b.mesh.ID(d)
	if id == src || b.faults.IsFaulty(id) {
		return topology.Invalid, false
	}
	return id, true
}

// Tornado sends each node halfway across its row ((x + W/2) mod W at
// constant y): the classical adversarial pattern for minimal routing
// on rings. On a torus the wrap target is used directly; on a mesh,
// which lacks wraparound, the wrapped targets are reflected back from
// the east edge, keeping the pattern maximum-distance row traffic.
type Tornado struct {
	mesh   topology.Topology
	faults *fault.Model
}

// NewTornado builds the tornado pattern.
func NewTornado(f *fault.Model) *Tornado {
	return &Tornado{mesh: f.Topo, faults: f}
}

// Name implements Pattern.
func (t *Tornado) Name() string { return "tornado" }

// Dest implements Pattern.
func (t *Tornado) Dest(src topology.NodeID, _ *rand.Rand) (topology.NodeID, bool) {
	c := t.mesh.CoordOf(src)
	x := c.X + t.mesh.Width()/2
	if x >= t.mesh.Width() {
		x = x - t.mesh.Width() // the wrapped target...
		if t.mesh.Kind() != "torus" {
			x = t.mesh.Width() - 1 - x // ...reflected on the mesh
		}
	}
	d := topology.Coord{X: x, Y: c.Y}
	id := t.mesh.ID(d)
	if id == src || t.faults.IsFaulty(id) {
		return topology.Invalid, false
	}
	return id, true
}

// NewPattern builds a pattern by name: "uniform", "transpose",
// "bit-complement", "bit-reverse", "tornado" or "hotspot".
func NewPattern(name string, f *fault.Model) (Pattern, error) {
	switch name {
	case "", "uniform":
		return NewUniform(f), nil
	case "transpose":
		return NewTranspose(f)
	case "bit-complement":
		return NewBitComplement(f), nil
	case "bit-reverse":
		return NewBitReverse(f), nil
	case "tornado":
		return NewTornado(f), nil
	case "hotspot":
		hot := f.Topo.ID(topology.Coord{X: f.Topo.Width() / 2, Y: f.Topo.Height() / 2})
		if f.IsFaulty(hot) {
			for _, id := range f.HealthyNodes() {
				hot = id
				break
			}
		}
		return NewHotspot(f, hot, 0.1)
	}
	return nil, fmt.Errorf("traffic: unknown pattern %q", name)
}

// Source drives message generation: each healthy node generates
// messages with exponentially distributed inter-arrival times of mean
// 1/rate cycles (the paper's arrival process), destinations drawn from
// the pattern.
type Source struct {
	faults  *fault.Model
	pattern Pattern
	rng     *rand.Rand
	rate    float64
	length  int

	// Alloc builds each generated message. Nil means core.NewMessage
	// (heap-allocated, caller-inspectable forever). Sustained-load
	// drivers set this to Network.AcquireMessage so completed messages
	// recycle through the network's arena instead of churning the GC;
	// such messages must not be retained past delivery, kill, or a
	// refused Offer.
	Alloc func(id int64, src, dst topology.NodeID, length int) *core.Message

	nodes []topology.NodeID
	next  []float64
	seq   int64

	// nextMin caches min(next): Tick returns immediately when the
	// earliest pending arrival lies beyond the current cycle, so an
	// idle tick costs one comparison instead of a full per-node scan.
	// At the paper's low rates almost every cycle is idle — this is the
	// traffic-side twin of the engine's quiescent-cycle short-circuit
	// (core/worklist.go). The skip cannot change the generated stream:
	// a node with next[i] > t draws nothing from the RNG in the scan,
	// so skipping a cycle where ALL nodes satisfy that draws nothing,
	// exactly like the scan would.
	nextMin float64
}

// NewSource builds a generator. rate is in messages per node per
// cycle; length is the fixed message length in flits.
func NewSource(f *fault.Model, p Pattern, rate float64, length int, rng *rand.Rand) (*Source, error) {
	if rate <= 0 {
		return nil, fmt.Errorf("traffic: rate %v must be positive", rate)
	}
	if length < 1 {
		return nil, fmt.Errorf("traffic: message length %d < 1", length)
	}
	s := &Source{
		faults:  f,
		pattern: p,
		rng:     rng,
		rate:    rate,
		length:  length,
		nodes:   f.HealthyNodes(),
	}
	s.next = make([]float64, len(s.nodes))
	s.nextMin = math.Inf(1)
	for i := range s.next {
		// Desynchronize the first arrivals.
		s.next[i] = s.rng.ExpFloat64() / rate
		if s.next[i] < s.nextMin {
			s.nextMin = s.next[i]
		}
	}
	return s, nil
}

// Reset rebinds the source to a new fault model, pattern, rate and RNG,
// reusing the per-node arrival storage. The RNG draw sequence is
// identical to NewSource's — one ExpFloat64 per healthy node, in node
// order — so a reused source seeded the same way generates the same
// message stream as a fresh one (the reuse invariant sim.Runner relies
// on). Alloc is cleared; callers rebind it per run.
func (s *Source) Reset(f *fault.Model, p Pattern, rate float64, length int, rng *rand.Rand) error {
	if rate <= 0 {
		return fmt.Errorf("traffic: rate %v must be positive", rate)
	}
	if length < 1 {
		return fmt.Errorf("traffic: message length %d < 1", length)
	}
	s.faults = f
	s.pattern = p
	s.rng = rng
	s.rate = rate
	s.length = length
	s.Alloc = nil
	s.seq = 0
	s.nodes = f.HealthyNodes()
	if cap(s.next) >= len(s.nodes) {
		s.next = s.next[:len(s.nodes)]
	} else {
		s.next = make([]float64, len(s.nodes))
	}
	s.nextMin = math.Inf(1)
	for i := range s.next {
		s.next[i] = s.rng.ExpFloat64() / rate
		if s.next[i] < s.nextMin {
			s.nextMin = s.next[i]
		}
	}
	return nil
}

// Generated returns how many messages the source has produced.
func (s *Source) Generated() int64 { return s.seq }

// Tick emits the messages due at the given cycle through emit (usually
// Network.Offer). emit's return value is ignored beyond accounting —
// a refused offer (full source queue) drops the message, modeling the
// node's interface back-pressure. Cycles before the earliest pending
// arrival return after a single comparison (see nextMin); scan cycles
// refresh the cache for free while walking the nodes.
func (s *Source) Tick(cycle int64, emit func(*core.Message) bool) {
	t := float64(cycle)
	if s.nextMin > t {
		return // nothing due anywhere: the scan would emit nothing
	}
	min := math.Inf(1)
	for i, node := range s.nodes {
		for s.next[i] <= t {
			s.next[i] += s.rng.ExpFloat64() / s.rate
			dst, ok := s.pattern.Dest(node, s.rng)
			if !ok {
				continue
			}
			s.seq++
			var m *core.Message
			if s.Alloc != nil {
				m = s.Alloc(s.seq, node, dst, s.length)
			} else {
				m = core.NewMessage(s.seq, node, dst, s.length)
			}
			m.GenTime = cycle
			emit(m)
		}
		if s.next[i] < min {
			min = s.next[i]
		}
	}
	s.nextMin = min
}
