package traffic

import (
	"math"
	"math/rand"
	"testing"

	"wormmesh/internal/core"
	"wormmesh/internal/fault"
	"wormmesh/internal/topology"
)

func model10(t *testing.T, faults ...topology.Coord) *fault.Model {
	t.Helper()
	m := topology.New(10, 10)
	var ids []topology.NodeID
	for _, c := range faults {
		ids = append(ids, m.ID(c))
	}
	f, err := fault.New(m, ids)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestUniformDestinationsValid(t *testing.T) {
	f := model10(t, topology.Coord{X: 4, Y: 4})
	u := NewUniform(f)
	rng := rand.New(rand.NewSource(1))
	src := f.Topo.ID(topology.Coord{X: 0, Y: 0})
	for i := 0; i < 2000; i++ {
		dst, ok := u.Dest(src, rng)
		if !ok {
			t.Fatal("uniform refused a destination")
		}
		if dst == src {
			t.Fatal("destination equals source")
		}
		if f.IsFaulty(dst) {
			t.Fatal("destination faulty")
		}
	}
}

func TestUniformCoversAllHealthyNodes(t *testing.T) {
	f := model10(t)
	u := NewUniform(f)
	rng := rand.New(rand.NewSource(2))
	src := topology.NodeID(0)
	seen := map[topology.NodeID]int{}
	const draws = 50000
	for i := 0; i < draws; i++ {
		dst, _ := u.Dest(src, rng)
		seen[dst]++
	}
	if len(seen) != 99 {
		t.Fatalf("covered %d destinations, want 99", len(seen))
	}
	// Uniformity: every node within 4 sigma of the mean.
	mean := float64(draws) / 99
	sigma := math.Sqrt(mean)
	for id, count := range seen {
		if math.Abs(float64(count)-mean) > 4*sigma {
			t.Errorf("node %d drawn %d times, mean %.0f", id, count, mean)
		}
	}
}

func TestTranspose(t *testing.T) {
	f := model10(t, topology.Coord{X: 2, Y: 7})
	tr, err := NewTranspose(f)
	if err != nil {
		t.Fatal(err)
	}
	m := f.Topo
	if dst, ok := tr.Dest(m.ID(topology.Coord{X: 3, Y: 5}), nil); !ok || m.CoordOf(dst) != (topology.Coord{X: 5, Y: 3}) {
		t.Errorf("transpose(3,5) = %v, %v", dst, ok)
	}
	// Diagonal nodes map to themselves: refused.
	if _, ok := tr.Dest(m.ID(topology.Coord{X: 4, Y: 4}), nil); ok {
		t.Error("diagonal node got a destination")
	}
	// Partner faulty: refused. (7,2)'s partner is (2,7), which is faulty.
	if _, ok := tr.Dest(m.ID(topology.Coord{X: 7, Y: 2}), nil); ok {
		t.Error("faulty partner accepted")
	}
}

func TestTransposeRequiresSquare(t *testing.T) {
	m := topology.New(6, 4)
	f, err := fault.New(m, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewTranspose(f); err == nil {
		t.Error("transpose on 6x4 mesh accepted")
	}
}

func TestBitComplement(t *testing.T) {
	f := model10(t)
	b := NewBitComplement(f)
	m := f.Topo
	if dst, _ := b.Dest(m.ID(topology.Coord{X: 0, Y: 0}), nil); m.CoordOf(dst) != (topology.Coord{X: 9, Y: 9}) {
		t.Errorf("complement(0,0) = %v", m.CoordOf(dst))
	}
	if dst, _ := b.Dest(m.ID(topology.Coord{X: 3, Y: 7}), nil); m.CoordOf(dst) != (topology.Coord{X: 6, Y: 2}) {
		t.Errorf("complement(3,7) = %v", m.CoordOf(dst))
	}
}

func TestHotspot(t *testing.T) {
	f := model10(t)
	hot := f.Topo.ID(topology.Coord{X: 5, Y: 5})
	h, err := NewHotspot(f, hot, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	src := topology.NodeID(0)
	hits := 0
	const draws = 10000
	for i := 0; i < draws; i++ {
		dst, ok := h.Dest(src, rng)
		if !ok {
			t.Fatal("hotspot refused")
		}
		if dst == hot {
			hits++
		}
	}
	// ~30% direct hits plus ~0.7% uniform strays.
	frac := float64(hits) / draws
	if frac < 0.25 || frac > 0.36 {
		t.Errorf("hotspot fraction = %.3f, want ~0.30", frac)
	}
	// The hot node itself never targets itself.
	for i := 0; i < 1000; i++ {
		if dst, _ := h.Dest(hot, rng); dst == hot {
			t.Fatal("hotspot node targeted itself")
		}
	}
}

func TestHotspotRejectsBadConfig(t *testing.T) {
	f := model10(t, topology.Coord{X: 5, Y: 5})
	if _, err := NewHotspot(f, f.Topo.ID(topology.Coord{X: 5, Y: 5}), 0.1); err == nil {
		t.Error("faulty hotspot accepted")
	}
	if _, err := NewHotspot(f, 0, 1.5); err == nil {
		t.Error("probability > 1 accepted")
	}
}

func TestNewPatternByName(t *testing.T) {
	f := model10(t)
	for _, name := range []string{"", "uniform", "transpose", "bit-complement", "bit-reverse", "tornado", "hotspot"} {
		if _, err := NewPattern(name, f); err != nil {
			t.Errorf("NewPattern(%q): %v", name, err)
		}
	}
	if _, err := NewPattern("nope", f); err == nil {
		t.Error("unknown pattern accepted")
	}
}

func TestBitReverse(t *testing.T) {
	f := model10(t)
	b := NewBitReverse(f)
	m := f.Topo
	// 10 needs 4 bits; x=1 (0001) reverses to 8 (1000).
	if dst, ok := b.Dest(m.ID(topology.Coord{X: 1, Y: 0}), nil); !ok || m.CoordOf(dst) != (topology.Coord{X: 8, Y: 0}) {
		t.Errorf("bit-reverse(1,0) = %v, %v", dst, ok)
	}
	// x=3 (0011) reverses to 12, outside the mesh: refused.
	if _, ok := b.Dest(m.ID(topology.Coord{X: 3, Y: 0}), nil); ok {
		t.Error("off-mesh reversal accepted")
	}
	// Fixed point (0,0) refused.
	if _, ok := b.Dest(m.ID(topology.Coord{X: 0, Y: 0}), nil); ok {
		t.Error("fixed point accepted")
	}
	// All emitted destinations are valid.
	for id := topology.NodeID(0); int(id) < m.NodeCount(); id++ {
		if f.IsFaulty(id) {
			continue
		}
		if dst, ok := b.Dest(id, nil); ok {
			if dst == id || f.IsFaulty(dst) {
				t.Fatalf("invalid destination %d for %d", dst, id)
			}
		}
	}
}

func TestTornado(t *testing.T) {
	f := model10(t)
	tor := NewTornado(f)
	m := f.Topo
	// x=0 -> x+5 = 5, same row.
	if dst, ok := tor.Dest(m.ID(topology.Coord{X: 0, Y: 3}), nil); !ok || m.CoordOf(dst) != (topology.Coord{X: 5, Y: 3}) {
		t.Errorf("tornado(0,3) = %v, %v", dst, ok)
	}
	// x=8 -> 13 wraps to 3, reflected to 6.
	if dst, ok := tor.Dest(m.ID(topology.Coord{X: 8, Y: 2}), nil); !ok || m.CoordOf(dst) != (topology.Coord{X: 6, Y: 2}) {
		t.Errorf("tornado(8,2) = %v, %v", dst, ok)
	}
	// Every destination stays in the source's row.
	for id := topology.NodeID(0); int(id) < m.NodeCount(); id++ {
		if f.IsFaulty(id) {
			continue
		}
		if dst, ok := tor.Dest(id, nil); ok {
			if m.CoordOf(dst).Y != m.CoordOf(id).Y {
				t.Fatalf("tornado left the row: %v -> %v", m.CoordOf(id), m.CoordOf(dst))
			}
		}
	}
}

func TestSourceRateAccuracy(t *testing.T) {
	f := model10(t)
	rate := 0.01
	src, err := NewSource(f, NewUniform(f), rate, 10, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	var generated int64
	const cycles = 5000
	for c := int64(0); c < cycles; c++ {
		src.Tick(c, func(m *core.Message) bool {
			generated++
			if m.GenTime != c {
				t.Fatalf("GenTime %d at cycle %d", m.GenTime, c)
			}
			if m.Length != 10 {
				t.Fatalf("length %d", m.Length)
			}
			return true
		})
	}
	want := rate * 100 * cycles // 100 healthy nodes
	if math.Abs(float64(generated)-want) > 0.1*want {
		t.Errorf("generated %d messages, want ~%.0f", generated, want)
	}
	if src.Generated() != generated {
		t.Errorf("Generated() = %d, emitted %d", src.Generated(), generated)
	}
}

func TestSourceExponentialInterArrival(t *testing.T) {
	f := model10(t)
	rate := 0.02
	src, err := NewSource(f, NewUniform(f), rate, 1, rand.New(rand.NewSource(11)))
	if err != nil {
		t.Fatal(err)
	}
	// Collect per-node arrival times for one node and check the
	// inter-arrival coefficient of variation is near 1 (exponential).
	node := f.HealthyNodes()[0]
	var arrivals []int64
	for c := int64(0); c < 100000; c++ {
		src.Tick(c, func(m *core.Message) bool {
			if m.Src == node {
				arrivals = append(arrivals, m.GenTime)
			}
			return true
		})
	}
	if len(arrivals) < 100 {
		t.Fatalf("too few arrivals: %d", len(arrivals))
	}
	var gaps []float64
	for i := 1; i < len(arrivals); i++ {
		gaps = append(gaps, float64(arrivals[i]-arrivals[i-1]))
	}
	mean, varsum := 0.0, 0.0
	for _, g := range gaps {
		mean += g
	}
	mean /= float64(len(gaps))
	for _, g := range gaps {
		varsum += (g - mean) * (g - mean)
	}
	cv := math.Sqrt(varsum/float64(len(gaps)-1)) / mean
	if cv < 0.8 || cv > 1.2 {
		t.Errorf("inter-arrival CV = %.2f, want ~1 for exponential", cv)
	}
	if math.Abs(mean-1/rate) > 0.15/rate {
		t.Errorf("mean inter-arrival = %.1f, want ~%.0f", mean, 1/rate)
	}
}

func TestSourceRejectsBadParams(t *testing.T) {
	f := model10(t)
	if _, err := NewSource(f, NewUniform(f), 0, 10, rand.New(rand.NewSource(1))); err == nil {
		t.Error("zero rate accepted")
	}
	if _, err := NewSource(f, NewUniform(f), 0.01, 0, rand.New(rand.NewSource(1))); err == nil {
		t.Error("zero length accepted")
	}
}

func TestSourceDeterministicPerSeed(t *testing.T) {
	f := model10(t)
	collect := func() []int64 {
		src, err := NewSource(f, NewUniform(f), 0.005, 4, rand.New(rand.NewSource(42)))
		if err != nil {
			t.Fatal(err)
		}
		var ids []int64
		for c := int64(0); c < 1000; c++ {
			src.Tick(c, func(m *core.Message) bool {
				ids = append(ids, int64(m.Src)<<32|int64(m.Dst))
				return true
			})
		}
		return ids
	}
	a, b := collect(), collect()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("divergence at %d", i)
		}
	}
}

func TestPatternNames(t *testing.T) {
	f := model10(t)
	if NewUniform(f).Name() != "uniform" {
		t.Error("uniform name")
	}
	if NewBitComplement(f).Name() != "bit-complement" {
		t.Error("bit-complement name")
	}
}
