package metrics

import (
	"sync/atomic"
	"time"
)

// Sweep is the batch-progress metric set: how many experimental points
// a sweep holds, how many are done, and a wall-clock ETA extrapolated
// from the completion rate so far. Progress callbacks run on worker
// goroutines; every update here is an atomic store, so no extra
// locking is needed.
type Sweep struct {
	PointsTotal    *Gauge
	PointsDone     *Gauge
	Running        *Gauge // 1 while a sweep is active
	ElapsedSeconds *FloatGauge
	EtaSeconds     *FloatGauge

	startNanos atomic.Int64
}

// NewSweep registers the sweep metric set on r.
func NewSweep(r *Registry) *Sweep {
	return &Sweep{
		PointsTotal:    r.NewGauge("wormmesh_sweep_points_total", "Simulation points in the current sweep."),
		PointsDone:     r.NewGauge("wormmesh_sweep_points_done", "Simulation points completed so far."),
		Running:        r.NewGauge("wormmesh_sweep_running", "1 while a sweep is in progress."),
		ElapsedSeconds: r.NewFloatGauge("wormmesh_sweep_elapsed_seconds", "Wall time since the sweep started."),
		EtaSeconds:     r.NewFloatGauge("wormmesh_sweep_eta_seconds", "Estimated wall time to sweep completion."),
	}
}

// Start marks the beginning of a sweep of `total` points.
func (s *Sweep) Start(total int) {
	s.startNanos.Store(time.Now().UnixNano())
	s.PointsTotal.Set(int64(total))
	s.PointsDone.Set(0)
	s.ElapsedSeconds.Set(0)
	s.EtaSeconds.Set(0)
	s.Running.Set(1)
}

// Progress records that `done` of `total` points have completed and
// refreshes the ETA. It matches the sweep.RunContext progress-callback
// signature, so wiring is one line:
//
//	sweep.RunContext(ctx, points, workers, sw.Progress)
func (s *Sweep) Progress(done, total int) {
	elapsed := time.Since(time.Unix(0, s.startNanos.Load())).Seconds()
	s.PointsDone.Set(int64(done))
	s.PointsTotal.Set(int64(total))
	s.ElapsedSeconds.Set(elapsed)
	if done > 0 && done <= total {
		s.EtaSeconds.Set(elapsed / float64(done) * float64(total-done))
	}
}

// Finish marks the sweep complete.
func (s *Sweep) Finish() {
	s.ElapsedSeconds.Set(time.Since(time.Unix(0, s.startNanos.Load())).Seconds())
	s.EtaSeconds.Set(0)
	s.Running.Set(0)
}
