package metrics

// Server is the meshserve metric set: the request/cache/queue counters
// the sweep-as-a-service layer (internal/serve) publishes on its
// registry, plus the RED layer (Rate, Errors, Duration) that makes the
// service dashboardable: per-route request and error counters, log₂
// latency histograms for requests, cache lookups, queue waits and
// simulation runs, and occupancy gauges. Handlers and the scheduler
// update these from many goroutines; every member is an atomic counter,
// gauge or lock-free histogram, so no extra locking is needed and the
// warm-hit path stays allocation-free.
type Server struct {
	Requests     *Counter // simulation cells requested (runs + sweep cells)
	CacheHits    *Counter // cells answered from the cache (memory or disk)
	DiskHits     *Counter // the subset of hits that came off the disk store
	CacheMisses  *Counter // cells that needed a simulation
	Deduplicated *Counter // misses that joined an already in-flight job
	Rejected     *Counter // submissions refused by queue backpressure (HTTP 429)
	ModelAnswers *Counter // misses answered provisionally by the analytic surrogate
	Simulations  *Counter // simulations the worker fleet completed
	QueueDepth   *Gauge   // jobs waiting for a worker
	Running      *Gauge   // jobs currently simulating

	// RED: per-route rate/error counters and duration histograms. Routes
	// are a fixed vocabulary (see ServeRoutes); anything else lands in
	// "other" so cardinality stays bounded.
	HTTPRequests map[string]*Counter   // wormmesh_serve_http_requests_total{route=...}
	HTTPErrors   map[string]*Counter   // wormmesh_serve_http_errors_total{route=...} (5xx)
	HTTPSeconds  map[string]*Histogram // wormmesh_serve_http_request_seconds{route=...}

	LookupMemSeconds  *Histogram // cache lookup latency, memory tier
	LookupDiskSeconds *Histogram // cache lookup latency, disk tier
	QueueWaitSeconds  *Histogram // submit -> worker pickup
	RunSeconds        *Histogram // simulation wall time per job
	RunnersWarm       *Gauge     // warm runners idle in the pool
}

// ServeRoutes is the fixed route vocabulary of the RED series, matching
// the meshserve endpoint set. "other" absorbs unknown paths.
var ServeRoutes = []string{"run", "sweep", "jobs", "traces", "metrics", "healthz", "readyz", "other"}

// NewServer registers the serve metric set on r.
func NewServer(r *Registry) *Server {
	s := &Server{
		Requests:     r.NewCounter("wormmesh_serve_requests_total", "Simulation cells requested (runs plus sweep cells)."),
		CacheHits:    r.NewCounter("wormmesh_serve_cache_hits_total", "Cells answered from the result cache (memory or disk)."),
		DiskHits:     r.NewCounter("wormmesh_serve_cache_disk_hits_total", "Cache hits served from the disk store (subset of hits)."),
		CacheMisses:  r.NewCounter("wormmesh_serve_cache_misses_total", "Cells not in the cache when requested."),
		Deduplicated: r.NewCounter("wormmesh_serve_deduplicated_total", "Misses that joined an identical in-flight job instead of enqueueing."),
		Rejected:     r.NewCounter("wormmesh_serve_rejected_total", "Submissions refused by queue backpressure (HTTP 429)."),
		ModelAnswers: r.NewCounter("wormmesh_serve_model_answers_total", "Misses answered provisionally by the analytic surrogate."),
		Simulations:  r.NewCounter("wormmesh_serve_simulations_total", "Simulations completed by the worker fleet."),
		QueueDepth:   r.NewGauge("wormmesh_serve_queue_depth", "Jobs waiting for a worker."),
		Running:      r.NewGauge("wormmesh_serve_jobs_running", "Jobs currently simulating."),

		HTTPRequests: map[string]*Counter{},
		HTTPErrors:   map[string]*Counter{},
		HTTPSeconds:  map[string]*Histogram{},

		LookupMemSeconds:  r.NewHistogram("wormmesh_serve_lookup_seconds", `tier="memory"`, "Cache lookup latency by tier."),
		LookupDiskSeconds: r.NewHistogram("wormmesh_serve_lookup_seconds", `tier="disk"`, "Cache lookup latency by tier."),
		QueueWaitSeconds:  r.NewHistogram("wormmesh_serve_queue_wait_seconds", "", "Time a job waits between submission and worker pickup."),
		RunSeconds:        r.NewHistogram("wormmesh_serve_run_seconds", "", "Simulation wall time per completed job."),
		RunnersWarm:       r.NewGauge("wormmesh_serve_runners_warm", "Warm runners idle in the pool."),
	}
	for _, route := range ServeRoutes {
		label := `route="` + route + `"`
		s.HTTPRequests[route] = r.NewLabeledCounter("wormmesh_serve_http_requests_total", label, "HTTP requests by route.")
		s.HTTPErrors[route] = r.NewLabeledCounter("wormmesh_serve_http_errors_total", label, "HTTP responses with a 5xx status, by route.")
		s.HTTPSeconds[route] = r.NewHistogram("wormmesh_serve_http_request_seconds", label, "HTTP request latency by route.")
	}
	return s
}

// ObserveHTTP records one completed HTTP request in the RED series.
// Unknown routes collapse into "other"; errors are 5xx only (4xx is the
// client's problem, not the service's).
func (s *Server) ObserveHTTP(route string, code int, seconds float64) {
	if _, ok := s.HTTPRequests[route]; !ok {
		route = "other"
	}
	s.HTTPRequests[route].Inc()
	if code >= 500 {
		s.HTTPErrors[route].Inc()
	}
	s.HTTPSeconds[route].Observe(seconds)
}
