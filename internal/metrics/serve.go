package metrics

// Server is the meshserve metric set: the request/cache/queue counters
// the sweep-as-a-service layer (internal/serve) publishes on its
// registry. Handlers and the scheduler update these from many
// goroutines; every member is an atomic counter or gauge, so no extra
// locking is needed and the warm-hit path stays allocation-free.
type Server struct {
	Requests     *Counter // simulation cells requested (runs + sweep cells)
	CacheHits    *Counter // cells answered from the cache (memory or disk)
	DiskHits     *Counter // the subset of hits that came off the disk store
	CacheMisses  *Counter // cells that needed a simulation
	Deduplicated *Counter // misses that joined an already in-flight job
	Rejected     *Counter // submissions refused by queue backpressure (HTTP 429)
	ModelAnswers *Counter // misses answered provisionally by the analytic surrogate
	Simulations  *Counter // simulations the worker fleet completed
	QueueDepth   *Gauge   // jobs waiting for a worker
	Running      *Gauge   // jobs currently simulating
}

// NewServer registers the serve metric set on r.
func NewServer(r *Registry) *Server {
	return &Server{
		Requests:     r.NewCounter("wormmesh_serve_requests_total", "Simulation cells requested (runs plus sweep cells)."),
		CacheHits:    r.NewCounter("wormmesh_serve_cache_hits_total", "Cells answered from the result cache (memory or disk)."),
		DiskHits:     r.NewCounter("wormmesh_serve_cache_disk_hits_total", "Cache hits served from the disk store (subset of hits)."),
		CacheMisses:  r.NewCounter("wormmesh_serve_cache_misses_total", "Cells not in the cache when requested."),
		Deduplicated: r.NewCounter("wormmesh_serve_deduplicated_total", "Misses that joined an identical in-flight job instead of enqueueing."),
		Rejected:     r.NewCounter("wormmesh_serve_rejected_total", "Submissions refused by queue backpressure (HTTP 429)."),
		ModelAnswers: r.NewCounter("wormmesh_serve_model_answers_total", "Misses answered provisionally by the analytic surrogate."),
		Simulations:  r.NewCounter("wormmesh_serve_simulations_total", "Simulations completed by the worker fleet."),
		QueueDepth:   r.NewGauge("wormmesh_serve_queue_depth", "Jobs waiting for a worker."),
		Running:      r.NewGauge("wormmesh_serve_jobs_running", "Jobs currently simulating."),
	}
}
