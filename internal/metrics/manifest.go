package metrics

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"
	"runtime"
	"time"
)

// Manifest is the per-run provenance record a driver writes next to
// its outputs: what was run (tool, arguments, parameters, seeds), when
// and for how long, and a digest of the results so two runs can be
// compared for bit-identity without diffing full CSVs. It marshals to
// a single JSON document.
type Manifest struct {
	Tool      string    `json:"tool"`
	Args      []string  `json:"args,omitempty"`
	GoVersion string    `json:"go_version"`
	Started   time.Time `json:"started"`
	Finished  time.Time `json:"finished,omitempty"`
	// WallSeconds is the run's wall-clock duration.
	WallSeconds float64 `json:"wall_seconds,omitempty"`
	// Params is the driver's parameter struct, marshaled verbatim
	// (writers embedded in parameter structs must carry json:"-").
	Params any `json:"params,omitempty"`
	// ParamsDigest is CanonicalDigest over Params — the content address
	// a result cache (internal/serve) would file this run under. Equal
	// digests mean semantically identical parameters regardless of JSON
	// field order or defaulted-vs-explicit zero fields.
	ParamsDigest string `json:"params_digest,omitempty"`
	// Seeds lists the traffic/arbitration seeds the run consumed.
	Seeds []int64 `json:"seeds,omitempty"`
	// ResultDigest is DigestJSON over the driver's result payload —
	// fast equality, not cryptographic integrity.
	ResultDigest string `json:"result_digest,omitempty"`
	// EffectiveWarmupCycles is how many warm-up cycles the run actually
	// discarded — the detected truncation point under adaptive warm-up
	// ("mser"), the fixed WarmupCycles otherwise. Zero when the driver
	// did not run a measured simulation.
	EffectiveWarmupCycles int64 `json:"effective_warmup_cycles,omitempty"`
	// LatencyCIHalfWidth is the 95% batch-means confidence half-width
	// on mean latency at the moment the run stopped; set only when the
	// relative-precision stopping rule was active.
	LatencyCIHalfWidth float64 `json:"latency_ci_half_width,omitempty"`
	// Notes carries driver-specific annotations, such as the per-cell
	// simulated/model provenance of a hybrid sweep.
	Notes map[string]any `json:"notes,omitempty"`
}

// NewManifest starts a manifest for the named tool, stamping the start
// time, the command line and the Go toolchain version.
func NewManifest(tool string, params any) *Manifest {
	m := &Manifest{
		Tool:      tool,
		Args:      append([]string(nil), os.Args[1:]...),
		GoVersion: runtime.Version(),
		Started:   time.Now(),
		Params:    params,
	}
	if params != nil {
		if d, err := CanonicalDigest(params); err == nil {
			m.ParamsDigest = d
		}
	}
	return m
}

// Finish stamps the end time and wall duration and digests the result
// payload (nil results leave the digest empty).
func (m *Manifest) Finish(results any) error {
	m.Finished = time.Now()
	m.WallSeconds = m.Finished.Sub(m.Started).Seconds()
	if results != nil {
		d, err := DigestJSON(results)
		if err != nil {
			return err
		}
		m.ResultDigest = d
	}
	return nil
}

// WriteFile marshals the manifest (indented, trailing newline) to
// path, truncating any existing file.
func (m *Manifest) WriteFile(path string) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("metrics: manifest: %w", err)
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// DigestJSON returns a short stable digest (FNV-1a 64 over the JSON
// encoding) of any marshalable value. Go's json encoding is
// deterministic for a fixed value — struct fields keep declaration
// order, maps are key-sorted — so equal values yield equal digests.
func DigestJSON(v any) (string, error) {
	data, err := json.Marshal(v)
	if err != nil {
		return "", fmt.Errorf("metrics: digest: %w", err)
	}
	h := fnv.New64a()
	_, _ = h.Write(data)
	return fmt.Sprintf("fnv1a:%016x", h.Sum64()), nil
}

// CanonicalDigest is DigestJSON over v's canonical JSON form, the
// digest to use when v is a *request* rather than a result payload:
// two encodings of the same configuration must collide. The encoding
// is re-parsed into generic values and re-encoded, which sorts object
// keys regardless of field or insertion order, and JSON zero values
// (null, "", 0, false, empty object/array) are pruned from objects, so
// an absent field and an explicitly zero one digest identically —
// exactly the "zero means default" convention the simulator's
// parameter structs follow. Numbers travel as json.Number, so 64-bit
// seeds survive the round trip verbatim. Do not use it for payloads
// where zero and absent mean different things; DigestJSON is the
// byte-faithful digest.
func CanonicalDigest(v any) (string, error) {
	data, err := json.Marshal(v)
	if err != nil {
		return "", fmt.Errorf("metrics: canonical digest: %w", err)
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.UseNumber()
	var g any
	if err := dec.Decode(&g); err != nil {
		return "", fmt.Errorf("metrics: canonical digest: %w", err)
	}
	g, _ = pruneZero(g)
	return DigestJSON(g)
}

// pruneZero canonicalizes a generic JSON value: object members whose
// values are JSON zeroes vanish, arrays keep their length (elements
// are positional, only their members are pruned). The second return
// reports whether the pruned value is itself a JSON zero.
func pruneZero(v any) (any, bool) {
	switch x := v.(type) {
	case nil:
		return nil, true
	case bool:
		return x, !x
	case string:
		return x, x == ""
	case json.Number:
		f, err := x.Float64()
		return x, err == nil && f == 0
	case float64: // only when the caller skipped UseNumber
		return x, x == 0
	case []any:
		for i := range x {
			x[i], _ = pruneZero(x[i])
		}
		return x, len(x) == 0
	case map[string]any:
		for k, mv := range x {
			pv, zero := pruneZero(mv)
			if zero {
				delete(x, k)
				continue
			}
			x[k] = pv
		}
		return x, len(x) == 0
	}
	return v, false
}
