package metrics_test

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"wormmesh/internal/metrics"
	"wormmesh/internal/sim"
)

func TestRegistryCountersAndGauges(t *testing.T) {
	r := metrics.NewRegistry()
	c := r.NewCounter("test_ops_total", "operations")
	g := r.NewGauge("test_depth", "queue depth")
	f := r.NewFloatGauge("test_rate", "rate")

	c.Inc()
	c.Add(4)
	g.Set(7)
	g.Add(-2)
	f.Set(0.125)

	if c.Get() != 5 {
		t.Errorf("counter = %d, want 5", c.Get())
	}
	if g.Get() != 5 {
		t.Errorf("gauge = %d, want 5", g.Get())
	}
	if f.Get() != 0.125 {
		t.Errorf("float gauge = %g, want 0.125", f.Get())
	}
	if got := r.Get("test_depth"); got == nil || got.Value() != 5 {
		t.Errorf("Get(test_depth) = %v", got)
	}
	if r.Get("nope") != nil {
		t.Error("Get of unknown metric should be nil")
	}
}

func TestRegistryRejectsDuplicates(t *testing.T) {
	r := metrics.NewRegistry()
	r.NewCounter("dup", "first")
	defer func() {
		if recover() == nil {
			t.Error("duplicate metric name did not panic")
		}
	}()
	r.NewGauge("dup", "second")
}

func TestWritePrometheusFormat(t *testing.T) {
	r := metrics.NewRegistry()
	r.NewCounter("zz_total", "last by name").Add(3)
	r.NewGauge("aa_depth", "first by name").Set(-1)
	r.NewFloatGauge("mm_ratio", "a float").Set(0.5)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# HELP aa_depth first by name",
		"# TYPE aa_depth gauge",
		"aa_depth -1",
		"# TYPE mm_ratio gauge",
		"mm_ratio 0.5",
		"# TYPE zz_total counter",
		"zz_total 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// Name-sorted output: aa before mm before zz.
	if !(strings.Index(out, "aa_depth") < strings.Index(out, "mm_ratio") &&
		strings.Index(out, "mm_ratio") < strings.Index(out, "zz_total")) {
		t.Errorf("metrics not sorted by name:\n%s", out)
	}
}

func TestServeHTTP(t *testing.T) {
	r := metrics.NewRegistry()
	r.NewCounter("served_total", "samples served").Add(9)
	r.PublishExpvar()
	srv, addr, err := metrics.Serve("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Errorf("Content-Type = %q, want text/plain exposition", ct)
	}
	if !strings.Contains(string(body), "served_total 9") {
		t.Errorf("scrape missing served_total:\n%s", body)
	}

	resp, err = http.Get("http://" + addr + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	var vars map[string]any
	if err := json.Unmarshal(body, &vars); err != nil {
		t.Fatalf("/debug/vars is not JSON: %v", err)
	}
	if _, ok := vars["served_total"]; !ok {
		t.Errorf("/debug/vars missing served_total: %v", vars)
	}
}

func TestSweepProgress(t *testing.T) {
	r := metrics.NewRegistry()
	s := metrics.NewSweep(r)
	s.Start(10)
	if s.Running.Get() != 1 || s.PointsTotal.Get() != 10 {
		t.Fatalf("Start: running=%d total=%d", s.Running.Get(), s.PointsTotal.Get())
	}
	s.Progress(4, 10)
	if s.PointsDone.Get() != 4 {
		t.Errorf("done = %d, want 4", s.PointsDone.Get())
	}
	if eta := s.EtaSeconds.Get(); eta < 0 {
		t.Errorf("ETA = %g, want >= 0", eta)
	}
	s.Finish()
	if s.Running.Get() != 0 {
		t.Error("Finish did not clear the running gauge")
	}
}

func TestManifestDigestAndWrite(t *testing.T) {
	d1, err := metrics.DigestJSON(map[string]int{"a": 1})
	if err != nil {
		t.Fatal(err)
	}
	d2, _ := metrics.DigestJSON(map[string]int{"a": 1})
	d3, _ := metrics.DigestJSON(map[string]int{"a": 2})
	if d1 != d2 {
		t.Errorf("digest not deterministic: %s vs %s", d1, d2)
	}
	if d1 == d3 {
		t.Error("different payloads share a digest")
	}
	if !strings.HasPrefix(d1, "fnv1a:") {
		t.Errorf("digest %q missing algorithm prefix", d1)
	}

	m := metrics.NewManifest("test-tool", map[string]int{"width": 10})
	m.Seeds = []int64{1, 2, 3}
	if err := m.Finish(map[string]string{"table": "fnv1a:0000000000000000"}); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "manifest.json")
	if err := m.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back metrics.Manifest
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatalf("manifest is not JSON: %v", err)
	}
	if back.Tool != "test-tool" || len(back.Seeds) != 3 || back.ResultDigest == "" {
		t.Errorf("round-tripped manifest = %+v", back)
	}
	if back.WallSeconds < 0 {
		t.Errorf("wall time = %g, want >= 0", back.WallSeconds)
	}
}

// TestSimMetricsSampling drives a short real simulation with a Sim
// sampler installed and checks the counters reflect the run — and that
// installing the sampler does not change the run's statistics.
func TestSimMetricsSampling(t *testing.T) {
	base := sim.DefaultParams()
	base.Width, base.Height = 6, 6
	base.Rate = 0.01
	base.MessageLength = 8
	base.WarmupCycles = 200
	base.MeasureCycles = 800
	base.Seed = 7

	plain, err := sim.Run(base)
	if err != nil {
		t.Fatal(err)
	}

	r := metrics.NewRegistry()
	p := base
	p.Metrics = metrics.NewSim(r)
	p.MetricsInterval = 64
	observed, err := sim.Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain.Stats, observed.Stats) {
		t.Errorf("metrics sampling changed the run:\n  plain:    %+v\n  observed: %+v",
			plain.Stats, observed.Stats)
	}

	get := func(name string) float64 {
		m := r.Get(name)
		if m == nil {
			t.Fatalf("metric %s not registered", name)
		}
		return m.Value()
	}
	// The cumulative counters span both windows (warm-up and measured);
	// the measured-window Stats are a lower bound.
	if got := get("wormmesh_engine_delivered_total"); got < float64(observed.Stats.Delivered) || got == 0 {
		t.Errorf("delivered_total = %g, want >= %d", got, observed.Stats.Delivered)
	}
	if got := get("wormmesh_engine_generated_total"); got < float64(observed.Stats.Generated) {
		t.Errorf("generated_total = %g, want >= %d", got, observed.Stats.Generated)
	}
	if get("wormmesh_engine_runs_completed") != 1 {
		t.Error("runs_completed != 1 after one run")
	}
	if got, want := get("wormmesh_engine_cycle"), float64(base.WarmupCycles+base.MeasureCycles); got != want {
		t.Errorf("cycle gauge = %g, want %g (total cycles run)", got, want)
	}
}

// TestSimMetricsTelemetryAndKillSeries drives a saturated faulty run
// with link telemetry on and an aggressive stall watchdog, and checks
// the new series: per-cause kill counters partition the total, the
// interval latency percentile gauges land in order, and the hottest-
// link gauges publish a real link with a descending flit ranking.
func TestSimMetricsTelemetryAndKillSeries(t *testing.T) {
	p := sim.DefaultParams()
	p.Width, p.Height = 6, 6
	p.Rate = 0.2 // far past saturation: guarantees blocking
	p.MessageLength = 8
	p.WarmupCycles = 0
	p.MeasureCycles = 1500
	p.Seed = 9
	p.Faults = 4
	p.FaultSeed = 3
	p.Config = sim.DefaultEngineConfig()
	p.Config.ChannelTelemetry = true
	p.Config.MessageStallCycles = 64
	p.Config.StallScanInterval = 16

	r := metrics.NewRegistry()
	p.Metrics = metrics.NewSim(r)
	p.MetricsInterval = 64
	if _, err := sim.Run(p); err != nil {
		t.Fatal(err)
	}

	get := func(name string) float64 {
		t.Helper()
		m := r.Get(name)
		if m == nil {
			t.Fatalf("metric %s not registered", name)
		}
		return m.Value()
	}

	total := get("wormmesh_engine_killed_total")
	byCause := get("wormmesh_engine_killed_global_total") +
		get("wormmesh_engine_killed_stall_total") +
		get("wormmesh_engine_killed_livelock_total")
	if total != byCause {
		t.Errorf("killed_total %g != sum of per-cause counters %g", total, byCause)
	}
	if get("wormmesh_engine_killed_stall_total") == 0 {
		t.Error("aggressive stall watchdog on a saturated faulty mesh killed nothing")
	}

	p50 := get("wormmesh_engine_latency_p50_cycles")
	p95 := get("wormmesh_engine_latency_p95_cycles")
	p99 := get("wormmesh_engine_latency_p99_cycles")
	if p50 <= 0 {
		t.Errorf("p50 gauge %g: no deliveries in the final sampling interval of a saturated run", p50)
	}
	if p50 > p95 || p95 > p99 {
		t.Errorf("percentile gauges out of order: p50=%g p95=%g p99=%g", p50, p95, p99)
	}

	id0 := get("wormmesh_engine_hot_link_0_id")
	if id0 < 0 || id0 >= float64(4*p.Width*p.Height) {
		t.Errorf("hot_link_0_id %g outside the mesh's link id range", id0)
	}
	f0 := get("wormmesh_engine_hot_link_0_flits")
	f1 := get("wormmesh_engine_hot_link_1_flits")
	f2 := get("wormmesh_engine_hot_link_2_flits")
	if f0 == 0 {
		t.Error("hottest link recorded no interval flits on a saturated run")
	}
	if f0 < f1 || f1 < f2 {
		t.Errorf("hot-link flits not descending: %g %g %g", f0, f1, f2)
	}

	// Telemetry off: the hot-link series stay at their defaults.
	r2 := metrics.NewRegistry()
	p2 := p
	p2.Config.ChannelTelemetry = false
	p2.Metrics = metrics.NewSim(r2)
	if _, err := sim.Run(p2); err != nil {
		t.Fatal(err)
	}
	if v := r2.Get("wormmesh_engine_hot_link_0_flits").Value(); v != 0 {
		t.Errorf("telemetry off but hot_link_0_flits = %g", v)
	}
}
