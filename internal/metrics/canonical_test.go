package metrics

import (
	"encoding/json"
	"testing"
)

// TestCanonicalDigestFieldOrder is the cache-key contract: the same
// request must digest identically whether it arrives as a Go struct
// (fixed field order) or as decoded JSON whose members were written in
// any order.
func TestCanonicalDigestFieldOrder(t *testing.T) {
	type params struct {
		Width, Height int
		Algorithm     string
		Rate          float64
		Seed          int64
	}
	p := params{Width: 10, Height: 10, Algorithm: "Duato", Rate: 0.002, Seed: 42}
	want, err := CanonicalDigest(p)
	if err != nil {
		t.Fatal(err)
	}

	for _, doc := range []string{
		`{"Width":10,"Height":10,"Algorithm":"Duato","Rate":0.002,"Seed":42}`,
		`{"Seed":42,"Rate":0.002,"Algorithm":"Duato","Height":10,"Width":10}`,
	} {
		var g map[string]any
		if err := json.Unmarshal([]byte(doc), &g); err != nil {
			t.Fatal(err)
		}
		got, err := CanonicalDigest(g)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("CanonicalDigest(%s) = %s, want %s", doc, got, want)
		}
	}
}

// TestCanonicalDigestZeroFields: absent, null and explicitly zero
// members are the same request; non-zero differences are not.
func TestCanonicalDigestZeroFields(t *testing.T) {
	base, err := CanonicalDigest(map[string]any{"Width": 10, "Rate": 0.002})
	if err != nil {
		t.Fatal(err)
	}
	same := []map[string]any{
		{"Width": 10, "Rate": 0.002, "Faults": 0},
		{"Width": 10, "Rate": 0.002, "Topology": ""},
		{"Width": 10, "Rate": 0.002, "TraceFlits": false},
		{"Width": 10, "Rate": 0.002, "FaultNodes": nil},
		{"Width": 10, "Rate": 0.002, "FaultNodes": []any{}},
		{"Width": 10, "Rate": 0.002, "Config": map[string]any{}},
	}
	for _, m := range same {
		if got, _ := CanonicalDigest(m); got != base {
			t.Errorf("CanonicalDigest(%v) = %s, want %s (zero member must prune)", m, got, base)
		}
	}
	if got, _ := CanonicalDigest(map[string]any{"Width": 10, "Rate": 0.004}); got == base {
		t.Error("different Rate collided with base digest")
	}
	// Array elements are positional: zeroes inside arrays must survive.
	a1, _ := CanonicalDigest(map[string]any{"FaultNodes": []any{0, 5}})
	a2, _ := CanonicalDigest(map[string]any{"FaultNodes": []any{5}})
	if a1 == a2 {
		t.Error("zero array element was pruned; array positions must be preserved")
	}
}

// TestCanonicalDigestLargeSeeds: 64-bit values beyond float64's exact
// integer range must not be rounded into collision.
func TestCanonicalDigestLargeSeeds(t *testing.T) {
	d1, _ := CanonicalDigest(map[string]any{"Seed": int64(1) << 62})
	d2, _ := CanonicalDigest(map[string]any{"Seed": int64(1)<<62 + 1})
	if d1 == d2 {
		t.Error("adjacent 63-bit seeds collided (float64 rounding in canonicalization)")
	}
}

// TestManifestParamsDigest: NewManifest stamps the canonical params
// digest so a manifest and a serve cache entry for the same run agree
// on the content address.
func TestManifestParamsDigest(t *testing.T) {
	type params struct{ Width int }
	m := NewManifest("test", params{Width: 10})
	want, err := CanonicalDigest(params{Width: 10})
	if err != nil {
		t.Fatal(err)
	}
	if m.ParamsDigest != want {
		t.Errorf("ParamsDigest = %q, want %q", m.ParamsDigest, want)
	}
	if NewManifest("test", nil).ParamsDigest != "" {
		t.Error("nil params produced a non-empty digest")
	}
}
