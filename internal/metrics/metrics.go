// Package metrics is the simulator's live telemetry layer: a small
// registry of atomic counters and gauges that the simulation loop
// updates on a coarse cadence and an HTTP scraper reads concurrently,
// exposed in Prometheus text format and through expvar. A multi-hour
// sweep is otherwise a black box until its CSVs land; with a registry
// wired in, `curl localhost:PORT/metrics` answers "is it alive, how
// far along, how fast" without perturbing the run — publication is
// one-way (the sim goroutine stores, scrapers load) and touches no
// engine state or RNG.
//
// Metric naming follows the Prometheus conventions: a `wormmesh_`
// namespace, an `_engine_`/`_sweep_` subsystem, `_total` suffixes on
// counters, base units (cycles, seconds, messages) on gauges. See
// DESIGN.md §4.4.
package metrics

import (
	"expvar"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// Metric is one named value in a Registry. Writers mutate the concrete
// types (Counter, Gauge, FloatGauge, Histogram) through atomic stores;
// readers — the Prometheus handler, expvar — only ever call Value.
type Metric interface {
	Name() string
	Help() string
	// Kind is the Prometheus type: "counter", "gauge" or "histogram".
	Kind() string
	// Value returns the current value as a float64 (atomically). For
	// histograms this is the observation count.
	Value() float64
}

// labeledMetric is the optional interface a metric implements to carry
// a constant Prometheus label body (e.g. `route="run"`). Labels make
// one NAME hold several SERIES — the RED layer's per-route counters —
// while registration, sorting and expvar keys stay unique per series.
type labeledMetric interface {
	labelBody() string
}

// seriesKey is the registry's uniqueness key: the metric name alone, or
// name{labels} for labeled series.
func seriesKey(m Metric) string {
	if lm, ok := m.(labeledMetric); ok && lm.labelBody() != "" {
		return m.Name() + "{" + lm.labelBody() + "}"
	}
	return m.Name()
}

// Counter is a monotonically non-decreasing cumulative count.
type Counter struct {
	name, help, labels string
	v                  atomic.Int64
}

// Add increments the counter by d (d must be >= 0).
func (c *Counter) Add(d int64) { c.v.Add(d) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Get returns the current count.
func (c *Counter) Get() int64 { return c.v.Load() }

// Name implements Metric.
func (c *Counter) Name() string { return c.name }

// Help implements Metric.
func (c *Counter) Help() string { return c.help }

// Kind implements Metric.
func (c *Counter) Kind() string { return "counter" }

// Value implements Metric.
func (c *Counter) Value() float64 { return float64(c.v.Load()) }

// labelBody implements labeledMetric.
func (c *Counter) labelBody() string { return c.labels }

// Gauge is an instantaneous integer value.
type Gauge struct {
	name, help string
	v          atomic.Int64
}

// Set stores the gauge value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts the gauge by d.
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// Get returns the current value.
func (g *Gauge) Get() int64 { return g.v.Load() }

// Name implements Metric.
func (g *Gauge) Name() string { return g.name }

// Help implements Metric.
func (g *Gauge) Help() string { return g.help }

// Kind implements Metric.
func (g *Gauge) Kind() string { return "gauge" }

// Value implements Metric.
func (g *Gauge) Value() float64 { return float64(g.v.Load()) }

// FloatGauge is an instantaneous float64 value (stored as IEEE-754
// bits in a uint64, so loads and stores stay atomic and lock-free).
type FloatGauge struct {
	name, help string
	bits       atomic.Uint64
}

// Set stores the gauge value.
func (g *FloatGauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Get returns the current value.
func (g *FloatGauge) Get() float64 { return math.Float64frombits(g.bits.Load()) }

// Name implements Metric.
func (g *FloatGauge) Name() string { return g.name }

// Help implements Metric.
func (g *FloatGauge) Help() string { return g.help }

// Kind implements Metric.
func (g *FloatGauge) Kind() string { return "gauge" }

// Value implements Metric.
func (g *FloatGauge) Value() float64 { return g.Get() }

// histBuckets is the fixed log₂ bucket count of a Histogram. Bucket i
// counts observations v ≤ 2^(i+histMinExp) seconds; with histMinExp
// −20 the boundaries run from ~1µs to ~2048s — the full useful span of
// an HTTP request, a queue wait or a simulation — and the final bucket
// doubles as the +Inf overflow.
const (
	histBuckets = 32
	histMinExp  = -20
)

// Histogram is a log₂-bucketed distribution of non-negative float64
// observations (seconds, by convention). Observe is lock-free — one
// atomic add on the bucket, one on the count, one CAS loop on the sum —
// so scheduler workers and HTTP handlers can observe concurrently
// without contending on a mutex. Rendering follows the Prometheus
// histogram exposition: cumulative `_bucket{le=...}` series plus
// `_sum` and `_count`.
type Histogram struct {
	name, help, labels string
	count              atomic.Int64
	sumBits            atomic.Uint64
	buckets            [histBuckets]atomic.Int64
}

// Observe records one observation (negative and NaN values clamp to
// the lowest bucket: they are measurement noise, not data).
func (h *Histogram) Observe(v float64) {
	idx := 0
	if v > 0 && !math.IsNaN(v) {
		frac, exp := math.Frexp(v)
		if frac == 0.5 {
			exp-- // exact powers of two belong to their own le boundary
		}
		idx = exp - histMinExp
		if idx < 0 {
			idx = 0
		}
		if idx >= histBuckets {
			idx = histBuckets - 1
		}
	}
	h.buckets[idx].Add(1)
	h.count.Add(1)
	if v > 0 && !math.IsNaN(v) {
		for {
			old := h.sumBits.Load()
			next := math.Float64bits(math.Float64frombits(old) + v)
			if h.sumBits.CompareAndSwap(old, next) {
				break
			}
		}
	}
}

// Count returns how many observations were recorded.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the total of all observations.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Bucket returns the non-cumulative count of bucket i (tests).
func (h *Histogram) Bucket(i int) int64 { return h.buckets[i].Load() }

// BucketUpperBound returns bucket i's `le` boundary in seconds
// (+Inf for the last bucket).
func BucketUpperBound(i int) float64 {
	if i >= histBuckets-1 {
		return math.Inf(1)
	}
	return math.Ldexp(1, i+histMinExp)
}

// Name implements Metric.
func (h *Histogram) Name() string { return h.name }

// Help implements Metric.
func (h *Histogram) Help() string { return h.help }

// Kind implements Metric.
func (h *Histogram) Kind() string { return "histogram" }

// Value implements Metric: the observation count (what expvar shows).
func (h *Histogram) Value() float64 { return float64(h.count.Load()) }

// labelBody implements labeledMetric.
func (h *Histogram) labelBody() string { return h.labels }

// writeProm renders the histogram's series. Empty buckets are elided
// (32 log₂ buckets would otherwise bloat every scrape); cumulative
// counts stay correct because `le` is cumulative by definition and the
// +Inf bucket always appears.
func (h *Histogram) writeProm(w io.Writer) error {
	sep := ""
	if h.labels != "" {
		sep = ","
	}
	cum := int64(0)
	for i := 0; i < histBuckets; i++ {
		n := h.buckets[i].Load()
		cum += n
		if n == 0 && i < histBuckets-1 {
			continue
		}
		le := "+Inf"
		if i < histBuckets-1 {
			le = formatValue(BucketUpperBound(i))
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{%s%sle=%q} %d\n", h.name, h.labels, sep, le, cum); err != nil {
			return err
		}
	}
	series := ""
	if h.labels != "" {
		series = "{" + h.labels + "}"
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", h.name, series, formatValue(h.Sum())); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", h.name, series, h.count.Load())
	return err
}

// Registry owns a set of metrics. Registration happens once at setup
// time (and panics on duplicate names, a programming error); reads and
// writes after that are lock-free.
type Registry struct {
	mu      sync.Mutex
	metrics []Metric
	byName  map[string]Metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: map[string]Metric{}}
}

func (r *Registry) register(m Metric) {
	r.mu.Lock()
	defer r.mu.Unlock()
	key := seriesKey(m)
	if _, dup := r.byName[key]; dup {
		panic(fmt.Sprintf("metrics: duplicate metric %q", key))
	}
	r.byName[key] = m
	r.metrics = append(r.metrics, m)
}

// NewCounter registers and returns a counter.
func (r *Registry) NewCounter(name, help string) *Counter {
	c := &Counter{name: name, help: help}
	r.register(c)
	return c
}

// NewLabeledCounter registers a counter series under name with a
// constant label body (e.g. `route="run"`). Several series may share a
// name as long as their label bodies differ; HELP/TYPE are emitted once
// per name.
func (r *Registry) NewLabeledCounter(name, labels, help string) *Counter {
	c := &Counter{name: name, help: help, labels: labels}
	r.register(c)
	return c
}

// NewHistogram registers and returns a log₂ histogram (pass labels ""
// for an unlabeled series).
func (r *Registry) NewHistogram(name, labels, help string) *Histogram {
	h := &Histogram{name: name, help: help, labels: labels}
	r.register(h)
	return h
}

// NewGauge registers and returns an integer gauge.
func (r *Registry) NewGauge(name, help string) *Gauge {
	g := &Gauge{name: name, help: help}
	r.register(g)
	return g
}

// NewFloatGauge registers and returns a float gauge.
func (r *Registry) NewFloatGauge(name, help string) *FloatGauge {
	g := &FloatGauge{name: name, help: help}
	r.register(g)
	return g
}

// Get returns the metric registered under name (for labeled series,
// `name{labels}`), or nil.
func (r *Registry) Get(name string) Metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.byName[name]
}

// snapshot returns the metric list sorted by series key — stable scrape
// output regardless of registration order, with a name's labeled series
// adjacent so HELP/TYPE group naturally.
func (r *Registry) snapshot() []Metric {
	r.mu.Lock()
	out := append([]Metric(nil), r.metrics...)
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name() != out[j].Name() {
			return out[i].Name() < out[j].Name()
		}
		return seriesKey(out[i]) < seriesKey(out[j])
	})
	return out
}

// WritePrometheus renders every metric in the Prometheus text
// exposition format (version 0.0.4): HELP and TYPE once per metric
// name, then every series of that name.
func (r *Registry) WritePrometheus(w io.Writer) error {
	prev := ""
	for _, m := range r.snapshot() {
		if m.Name() != prev {
			prev = m.Name()
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n",
				m.Name(), m.Help(), m.Name(), m.Kind()); err != nil {
				return err
			}
		}
		if h, ok := m.(*Histogram); ok {
			if err := h.writeProm(w); err != nil {
				return err
			}
			continue
		}
		if _, err := fmt.Fprintf(w, "%s %s\n", seriesKey(m), formatValue(m.Value())); err != nil {
			return err
		}
	}
	return nil
}

// Handler returns an http.Handler serving the registry in Prometheus
// text format (for mounting at /metrics).
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}

// PublishExpvar additionally exposes every currently registered metric
// through the process-global expvar namespace (visible at /debug/vars).
// Re-publishing an existing name is a no-op, so the call is idempotent
// and safe across multiple registries in tests.
func (r *Registry) PublishExpvar() {
	for _, m := range r.snapshot() {
		key := seriesKey(m)
		if expvar.Get(key) != nil {
			continue
		}
		m := m // capture
		expvar.Publish(key, expvar.Func(func() any { return m.Value() }))
	}
}

// Serve starts an HTTP listener on addr exposing the registry at
// /metrics and the expvar namespace at /debug/vars, serving in a
// background goroutine. It returns the server (Close it to stop) and
// the bound address — pass ":0" to let the kernel pick a free port.
func Serve(addr string, r *Registry) (*http.Server, string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, "", fmt.Errorf("metrics: listen %s: %w", addr, err)
	}
	mux := http.NewServeMux()
	mux.Handle("/metrics", r.Handler())
	mux.Handle("/debug/vars", expvar.Handler())
	srv := &http.Server{Handler: mux}
	go func() { _ = srv.Serve(ln) }()
	return srv, ln.Addr().String(), nil
}

// formatValue renders a sample value the way Prometheus expects:
// shortest round-trip representation, integers without an exponent.
func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
