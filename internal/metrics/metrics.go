// Package metrics is the simulator's live telemetry layer: a small
// registry of atomic counters and gauges that the simulation loop
// updates on a coarse cadence and an HTTP scraper reads concurrently,
// exposed in Prometheus text format and through expvar. A multi-hour
// sweep is otherwise a black box until its CSVs land; with a registry
// wired in, `curl localhost:PORT/metrics` answers "is it alive, how
// far along, how fast" without perturbing the run — publication is
// one-way (the sim goroutine stores, scrapers load) and touches no
// engine state or RNG.
//
// Metric naming follows the Prometheus conventions: a `wormmesh_`
// namespace, an `_engine_`/`_sweep_` subsystem, `_total` suffixes on
// counters, base units (cycles, seconds, messages) on gauges. See
// DESIGN.md §4.4.
package metrics

import (
	"expvar"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// Metric is one named value in a Registry. Writers mutate the concrete
// types (Counter, Gauge, FloatGauge) through atomic stores; readers —
// the Prometheus handler, expvar — only ever call Value.
type Metric interface {
	Name() string
	Help() string
	// Kind is the Prometheus type: "counter" or "gauge".
	Kind() string
	// Value returns the current value as a float64 (atomically).
	Value() float64
}

// Counter is a monotonically non-decreasing cumulative count.
type Counter struct {
	name, help string
	v          atomic.Int64
}

// Add increments the counter by d (d must be >= 0).
func (c *Counter) Add(d int64) { c.v.Add(d) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Get returns the current count.
func (c *Counter) Get() int64 { return c.v.Load() }

// Name implements Metric.
func (c *Counter) Name() string { return c.name }

// Help implements Metric.
func (c *Counter) Help() string { return c.help }

// Kind implements Metric.
func (c *Counter) Kind() string { return "counter" }

// Value implements Metric.
func (c *Counter) Value() float64 { return float64(c.v.Load()) }

// Gauge is an instantaneous integer value.
type Gauge struct {
	name, help string
	v          atomic.Int64
}

// Set stores the gauge value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts the gauge by d.
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// Get returns the current value.
func (g *Gauge) Get() int64 { return g.v.Load() }

// Name implements Metric.
func (g *Gauge) Name() string { return g.name }

// Help implements Metric.
func (g *Gauge) Help() string { return g.help }

// Kind implements Metric.
func (g *Gauge) Kind() string { return "gauge" }

// Value implements Metric.
func (g *Gauge) Value() float64 { return float64(g.v.Load()) }

// FloatGauge is an instantaneous float64 value (stored as IEEE-754
// bits in a uint64, so loads and stores stay atomic and lock-free).
type FloatGauge struct {
	name, help string
	bits       atomic.Uint64
}

// Set stores the gauge value.
func (g *FloatGauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Get returns the current value.
func (g *FloatGauge) Get() float64 { return math.Float64frombits(g.bits.Load()) }

// Name implements Metric.
func (g *FloatGauge) Name() string { return g.name }

// Help implements Metric.
func (g *FloatGauge) Help() string { return g.help }

// Kind implements Metric.
func (g *FloatGauge) Kind() string { return "gauge" }

// Value implements Metric.
func (g *FloatGauge) Value() float64 { return g.Get() }

// Registry owns a set of metrics. Registration happens once at setup
// time (and panics on duplicate names, a programming error); reads and
// writes after that are lock-free.
type Registry struct {
	mu      sync.Mutex
	metrics []Metric
	byName  map[string]Metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: map[string]Metric{}}
}

func (r *Registry) register(m Metric) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byName[m.Name()]; dup {
		panic(fmt.Sprintf("metrics: duplicate metric %q", m.Name()))
	}
	r.byName[m.Name()] = m
	r.metrics = append(r.metrics, m)
}

// NewCounter registers and returns a counter.
func (r *Registry) NewCounter(name, help string) *Counter {
	c := &Counter{name: name, help: help}
	r.register(c)
	return c
}

// NewGauge registers and returns an integer gauge.
func (r *Registry) NewGauge(name, help string) *Gauge {
	g := &Gauge{name: name, help: help}
	r.register(g)
	return g
}

// NewFloatGauge registers and returns a float gauge.
func (r *Registry) NewFloatGauge(name, help string) *FloatGauge {
	g := &FloatGauge{name: name, help: help}
	r.register(g)
	return g
}

// Get returns the metric registered under name, or nil.
func (r *Registry) Get(name string) Metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.byName[name]
}

// snapshot returns the metric list in sorted-name order (stable scrape
// output regardless of registration order).
func (r *Registry) snapshot() []Metric {
	r.mu.Lock()
	out := append([]Metric(nil), r.metrics...)
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name() < out[j].Name() })
	return out
}

// WritePrometheus renders every metric in the Prometheus text
// exposition format (version 0.0.4: HELP, TYPE, then the sample).
func (r *Registry) WritePrometheus(w io.Writer) error {
	for _, m := range r.snapshot() {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n%s %s\n",
			m.Name(), m.Help(), m.Name(), m.Kind(),
			m.Name(), formatValue(m.Value())); err != nil {
			return err
		}
	}
	return nil
}

// Handler returns an http.Handler serving the registry in Prometheus
// text format (for mounting at /metrics).
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}

// PublishExpvar additionally exposes every currently registered metric
// through the process-global expvar namespace (visible at /debug/vars).
// Re-publishing an existing name is a no-op, so the call is idempotent
// and safe across multiple registries in tests.
func (r *Registry) PublishExpvar() {
	for _, m := range r.snapshot() {
		if expvar.Get(m.Name()) != nil {
			continue
		}
		m := m // capture
		expvar.Publish(m.Name(), expvar.Func(func() any { return m.Value() }))
	}
}

// Serve starts an HTTP listener on addr exposing the registry at
// /metrics and the expvar namespace at /debug/vars, serving in a
// background goroutine. It returns the server (Close it to stop) and
// the bound address — pass ":0" to let the kernel pick a free port.
func Serve(addr string, r *Registry) (*http.Server, string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, "", fmt.Errorf("metrics: listen %s: %w", addr, err)
	}
	mux := http.NewServeMux()
	mux.Handle("/metrics", r.Handler())
	mux.Handle("/debug/vars", expvar.Handler())
	srv := &http.Server{Handler: mux}
	go func() { _ = srv.Serve(ln) }()
	return srv, ln.Addr().String(), nil
}

// formatValue renders a sample value the way Prometheus expects:
// shortest round-trip representation, integers without an exponent.
func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
