package metrics

import (
	"wormmesh/internal/core"
)

// Sim is the engine-facing metric set: instantaneous gauges over the
// network's live state plus cumulative counters derived from the
// engine's LiveCounters. The simulation loop calls Sample on a coarse
// cadence (sim.Params.MetricsInterval cycles); scrapers read the
// atomics concurrently. Sample costs a handful of loads and atomic
// stores — it reads only scalar engine state and draws nothing from
// the RNG, so enabling metrics does not perturb results.
type Sim struct {
	Cycle          *Gauge
	BusyRouters    *Gauge
	ActiveMessages *Gauge
	ArenaIdle      *Gauge
	QueuedRuns     *Gauge // runs completed by this process (multi-run drivers)

	Generated      *Counter
	Injected       *Counter
	Delivered      *Counter
	DeliveredFlits *Counter
	Killed         *Counter
	KilledGlobal   *Counter // global-watchdog victims
	KilledStall    *Counter // per-message stall kills
	KilledLivelock *Counter // livelock-guard kills (MaxHops)
	DeadlockEvents *Counter

	InjectedRate  *FloatGauge // messages per cycle since the last sample
	DeliveredRate *FloatGauge
	KilledRate    *FloatGauge

	// Interval latency percentiles: upper bounds read from the engine's
	// log2 histogram over the messages DELIVERED since the last sample
	// (-1 until the first delivery of an interval). The registry has no
	// label support, so each quantile is its own series.
	LatencyP50 *FloatGauge
	LatencyP95 *FloatGauge
	LatencyP99 *FloatGauge

	// Hottest links by flits forwarded since the last sample, published
	// only when the network collects link telemetry
	// (core.Config.ChannelTelemetry). Rank k's pair of series carries
	// the link id (node*4+dir) and its flit count, so a scraper can
	// watch congestion migrate without per-link label cardinality.
	HotLinkID    [HotLinks]*Gauge
	HotLinkFlits [HotLinks]*Gauge

	// last sample state (touched only by the sampling goroutine).
	lastCycle int64
	last      core.LiveCounters
	lastHist  core.LatencyHist
	lastFlits []int64 // per-link flit counts at the previous sample
	histDelta core.LatencyHist
}

// HotLinks is how many top links by interval flits Sample publishes.
const HotLinks = 3

// NewSim registers the engine metric set on r.
func NewSim(r *Registry) *Sim {
	return &Sim{
		Cycle:          r.NewGauge("wormmesh_engine_cycle", "Current simulation cycle of the active run."),
		BusyRouters:    r.NewGauge("wormmesh_engine_busy_routers", "Routers holding engine state (dirty-set population)."),
		ActiveMessages: r.NewGauge("wormmesh_engine_active_messages", "Messages generated but not yet delivered or killed."),
		ArenaIdle:      r.NewGauge("wormmesh_engine_arena_idle_messages", "Idle messages in the engine's recycling arena."),
		QueuedRuns:     r.NewGauge("wormmesh_engine_runs_completed", "Simulations completed by this process."),
		Generated:      r.NewCounter("wormmesh_engine_generated_total", "Messages offered and accepted."),
		Injected:       r.NewCounter("wormmesh_engine_injected_total", "Headers that left their source queue."),
		Delivered:      r.NewCounter("wormmesh_engine_delivered_total", "Tails ejected at their destination."),
		DeliveredFlits: r.NewCounter("wormmesh_engine_delivered_flits_total", "Flits consumed at destinations."),
		Killed:         r.NewCounter("wormmesh_engine_killed_total", "Messages torn down by deadlock/livelock recovery."),
		KilledGlobal:   r.NewCounter("wormmesh_engine_killed_global_total", "Recovery victims of the global deadlock watchdog."),
		KilledStall:    r.NewCounter("wormmesh_engine_killed_stall_total", "Per-message stall kills (MessageStallCycles exceeded)."),
		KilledLivelock: r.NewCounter("wormmesh_engine_killed_livelock_total", "Livelock-guard kills (MaxHops exceeded)."),
		DeadlockEvents: r.NewCounter("wormmesh_engine_deadlock_events_total", "Global watchdog firings."),
		InjectedRate:   r.NewFloatGauge("wormmesh_engine_injected_per_cycle", "Injection rate over the last sampling interval."),
		DeliveredRate:  r.NewFloatGauge("wormmesh_engine_delivered_per_cycle", "Delivery rate over the last sampling interval."),
		KilledRate:     r.NewFloatGauge("wormmesh_engine_killed_per_cycle", "Kill rate over the last sampling interval."),
		LatencyP50:     r.NewFloatGauge("wormmesh_engine_latency_p50_cycles", "p50 latency upper bound (log2 buckets) of messages delivered in the last sampling interval."),
		LatencyP95:     r.NewFloatGauge("wormmesh_engine_latency_p95_cycles", "p95 latency upper bound (log2 buckets) of messages delivered in the last sampling interval."),
		LatencyP99:     r.NewFloatGauge("wormmesh_engine_latency_p99_cycles", "p99 latency upper bound (log2 buckets) of messages delivered in the last sampling interval."),
		HotLinkID: [HotLinks]*Gauge{
			r.NewGauge("wormmesh_engine_hot_link_0_id", "Link id (node*4+dir) of the hottest link by interval flits (link telemetry only)."),
			r.NewGauge("wormmesh_engine_hot_link_1_id", "Link id of the second-hottest link by interval flits."),
			r.NewGauge("wormmesh_engine_hot_link_2_id", "Link id of the third-hottest link by interval flits."),
		},
		HotLinkFlits: [HotLinks]*Gauge{
			r.NewGauge("wormmesh_engine_hot_link_0_flits", "Interval flit count of the hottest link (link telemetry only)."),
			r.NewGauge("wormmesh_engine_hot_link_1_flits", "Interval flit count of the second-hottest link."),
			r.NewGauge("wormmesh_engine_hot_link_2_flits", "Interval flit count of the third-hottest link."),
		},
	}
}

// Sample publishes the network's current state. The engine's window
// counters reset at measurement boundaries (and the cycle restarts
// across runs on a reused Runner), so cumulative counters advance by
// clamped deltas: a backwards step re-bases on the new window instead
// of going negative — Prometheus counters must never decrease.
func (s *Sim) Sample(n *core.Network) {
	lc := n.LiveCounters()
	s.Cycle.Set(lc.Cycle)
	s.BusyRouters.Set(int64(n.BusyRouters()))
	s.ActiveMessages.Set(int64(n.InFlight()))
	s.ArenaIdle.Set(int64(n.PoolSize()))

	s.Generated.Add(counterDelta(lc.Generated, s.last.Generated))
	injected := counterDelta(lc.Injected, s.last.Injected)
	s.Injected.Add(injected)
	delivered := counterDelta(lc.Delivered, s.last.Delivered)
	s.Delivered.Add(delivered)
	s.DeliveredFlits.Add(counterDelta(lc.DeliveredFlits, s.last.DeliveredFlits))
	killed := counterDelta(lc.Killed, s.last.Killed)
	s.Killed.Add(killed)
	s.KilledGlobal.Add(counterDelta(lc.KilledGlobal, s.last.KilledGlobal))
	s.KilledStall.Add(counterDelta(lc.KilledStall, s.last.KilledStall))
	s.KilledLivelock.Add(counterDelta(lc.KilledLivelock, s.last.KilledLivelock))
	s.DeadlockEvents.Add(counterDelta(lc.DeadlockEvents, s.last.DeadlockEvents))

	if dc := lc.Cycle - s.lastCycle; dc > 0 {
		s.InjectedRate.Set(float64(injected) / float64(dc))
		s.DeliveredRate.Set(float64(delivered) / float64(dc))
		s.KilledRate.Set(float64(killed) / float64(dc))
	}
	s.lastCycle = lc.Cycle
	s.last = lc

	// Interval latency percentiles: difference the engine's cumulative
	// window histogram per bucket (clamped, like the scalar counters —
	// a measurement-window reset re-bases on the new window).
	hist := n.LiveLatencyHist()
	for b := range hist {
		s.histDelta[b] = counterDelta(hist[b], s.lastHist[b])
	}
	s.lastHist = hist
	s.LatencyP50.Set(float64(s.histDelta.Percentile(50)))
	s.LatencyP95.Set(float64(s.histDelta.Percentile(95)))
	s.LatencyP99.Set(float64(s.histDelta.Percentile(99)))

	s.sampleHotLinks(n)
}

// sampleHotLinks publishes the top-HotLinks links by flits forwarded
// since the previous sample. A no-op (series stay at their defaults)
// when the network collects no link telemetry. The scan is O(links)
// with an insertion into a HotLinks-sized array — allocation-free, as
// the engine-off sampling budget requires.
func (s *Sim) sampleHotLinks(n *core.Network) {
	flits, _, _, _ := n.LinkCounters()
	if flits == nil {
		return
	}
	if len(s.lastFlits) != len(flits) {
		s.lastFlits = make([]int64, len(flits))
	}
	var topID [HotLinks]int64
	var topV [HotLinks]int64
	for i := range topID {
		topID[i] = -1
	}
	for li, cur := range flits {
		d := counterDelta(cur, s.lastFlits[li])
		s.lastFlits[li] = cur
		if d <= topV[HotLinks-1] && topID[HotLinks-1] >= 0 {
			continue
		}
		// Insertion sort into the fixed top list (ties keep the lower
		// link id, scan order being ascending).
		for r := 0; r < HotLinks; r++ {
			if topID[r] < 0 || d > topV[r] {
				copy(topID[r+1:], topID[r:HotLinks-1])
				copy(topV[r+1:], topV[r:HotLinks-1])
				topID[r], topV[r] = int64(li), d
				break
			}
		}
	}
	for r := 0; r < HotLinks; r++ {
		s.HotLinkID[r].Set(topID[r])
		s.HotLinkFlits[r].Set(topV[r])
	}
}

// RunStarted re-bases the delta tracking for a fresh run on a reused
// network (cycle restarts at zero). Call it before the first Sample of
// each run.
func (s *Sim) RunStarted() {
	s.lastCycle = 0
	s.last = core.LiveCounters{}
	s.lastHist = core.LatencyHist{}
	s.lastFlits = nil
}

// RunFinished counts one completed simulation.
func (s *Sim) RunFinished() { s.QueuedRuns.Add(1) }

// counterDelta returns the non-negative advance of a window counter,
// re-basing when the window was reset (cur < last).
func counterDelta(cur, last int64) int64 {
	if d := cur - last; d >= 0 {
		return d
	}
	return cur
}
