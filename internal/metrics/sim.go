package metrics

import (
	"wormmesh/internal/core"
)

// Sim is the engine-facing metric set: instantaneous gauges over the
// network's live state plus cumulative counters derived from the
// engine's LiveCounters. The simulation loop calls Sample on a coarse
// cadence (sim.Params.MetricsInterval cycles); scrapers read the
// atomics concurrently. Sample costs a handful of loads and atomic
// stores — it reads only scalar engine state and draws nothing from
// the RNG, so enabling metrics does not perturb results.
type Sim struct {
	Cycle          *Gauge
	BusyRouters    *Gauge
	ActiveMessages *Gauge
	ArenaIdle      *Gauge
	QueuedRuns     *Gauge // runs completed by this process (multi-run drivers)

	Generated      *Counter
	Injected       *Counter
	Delivered      *Counter
	DeliveredFlits *Counter
	Killed         *Counter
	DeadlockEvents *Counter

	InjectedRate  *FloatGauge // messages per cycle since the last sample
	DeliveredRate *FloatGauge
	KilledRate    *FloatGauge

	// last sample state (touched only by the sampling goroutine).
	lastCycle int64
	last      core.LiveCounters
}

// NewSim registers the engine metric set on r.
func NewSim(r *Registry) *Sim {
	return &Sim{
		Cycle:          r.NewGauge("wormmesh_engine_cycle", "Current simulation cycle of the active run."),
		BusyRouters:    r.NewGauge("wormmesh_engine_busy_routers", "Routers holding engine state (dirty-set population)."),
		ActiveMessages: r.NewGauge("wormmesh_engine_active_messages", "Messages generated but not yet delivered or killed."),
		ArenaIdle:      r.NewGauge("wormmesh_engine_arena_idle_messages", "Idle messages in the engine's recycling arena."),
		QueuedRuns:     r.NewGauge("wormmesh_engine_runs_completed", "Simulations completed by this process."),
		Generated:      r.NewCounter("wormmesh_engine_generated_total", "Messages offered and accepted."),
		Injected:       r.NewCounter("wormmesh_engine_injected_total", "Headers that left their source queue."),
		Delivered:      r.NewCounter("wormmesh_engine_delivered_total", "Tails ejected at their destination."),
		DeliveredFlits: r.NewCounter("wormmesh_engine_delivered_flits_total", "Flits consumed at destinations."),
		Killed:         r.NewCounter("wormmesh_engine_killed_total", "Messages torn down by deadlock/livelock recovery."),
		DeadlockEvents: r.NewCounter("wormmesh_engine_deadlock_events_total", "Global watchdog firings."),
		InjectedRate:   r.NewFloatGauge("wormmesh_engine_injected_per_cycle", "Injection rate over the last sampling interval."),
		DeliveredRate:  r.NewFloatGauge("wormmesh_engine_delivered_per_cycle", "Delivery rate over the last sampling interval."),
		KilledRate:     r.NewFloatGauge("wormmesh_engine_killed_per_cycle", "Kill rate over the last sampling interval."),
	}
}

// Sample publishes the network's current state. The engine's window
// counters reset at measurement boundaries (and the cycle restarts
// across runs on a reused Runner), so cumulative counters advance by
// clamped deltas: a backwards step re-bases on the new window instead
// of going negative — Prometheus counters must never decrease.
func (s *Sim) Sample(n *core.Network) {
	lc := n.LiveCounters()
	s.Cycle.Set(lc.Cycle)
	s.BusyRouters.Set(int64(n.BusyRouters()))
	s.ActiveMessages.Set(int64(n.InFlight()))
	s.ArenaIdle.Set(int64(n.PoolSize()))

	s.Generated.Add(counterDelta(lc.Generated, s.last.Generated))
	injected := counterDelta(lc.Injected, s.last.Injected)
	s.Injected.Add(injected)
	delivered := counterDelta(lc.Delivered, s.last.Delivered)
	s.Delivered.Add(delivered)
	s.DeliveredFlits.Add(counterDelta(lc.DeliveredFlits, s.last.DeliveredFlits))
	killed := counterDelta(lc.Killed, s.last.Killed)
	s.Killed.Add(killed)
	s.DeadlockEvents.Add(counterDelta(lc.DeadlockEvents, s.last.DeadlockEvents))

	if dc := lc.Cycle - s.lastCycle; dc > 0 {
		s.InjectedRate.Set(float64(injected) / float64(dc))
		s.DeliveredRate.Set(float64(delivered) / float64(dc))
		s.KilledRate.Set(float64(killed) / float64(dc))
	}
	s.lastCycle = lc.Cycle
	s.last = lc
}

// RunStarted re-bases the delta tracking for a fresh run on a reused
// network (cycle restarts at zero). Call it before the first Sample of
// each run.
func (s *Sim) RunStarted() {
	s.lastCycle = 0
	s.last = core.LiveCounters{}
}

// RunFinished counts one completed simulation.
func (s *Sim) RunFinished() { s.QueuedRuns.Add(1) }

// counterDelta returns the non-negative advance of a window counter,
// re-basing when the window was reset (cur < last).
func counterDelta(cur, last int64) int64 {
	if d := cur - last; d >= 0 {
		return d
	}
	return cur
}
