package metrics

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestHistogramBucketing(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("lat_seconds", "", "test")
	cases := []struct {
		v    float64
		want int // expected bucket index
	}{
		{1e-9, 0},               // far below the first boundary: clamps low
		{math.Ldexp(1, -20), 0}, // exactly the first boundary: le is inclusive
		{math.Ldexp(1, -19), 1}, // exact power of two lands on its own boundary
		{0.001, 11},             // 1ms is just above 2^-10s, so le=2^-9
		{1.0, 20},               // 1s = 2^0 ≤ le 2^0
		{1.5, 21},               // just past 1s
		{1e9, histBuckets - 1},  // overflow clamps into +Inf bucket
		{-5, 0},                 // negative clamps low, not a crash
		{math.NaN(), 0},         // NaN clamps low
	}
	for _, c := range cases {
		before := h.Bucket(c.want)
		h.Observe(c.v)
		if h.Bucket(c.want) != before+1 {
			t.Errorf("Observe(%g): bucket %d not incremented", c.v, c.want)
		}
	}
	if h.Count() != int64(len(cases)) {
		t.Fatalf("count = %d, want %d", h.Count(), len(cases))
	}
	// Sum excludes the unusable observations (negative, NaN).
	wantSum := 1e-9 + math.Ldexp(1, -20) + math.Ldexp(1, -19) + 0.001 + 1.0 + 1.5 + 1e9
	if math.Abs(h.Sum()-wantSum) > 1e-6 {
		t.Fatalf("sum = %g, want %g", h.Sum(), wantSum)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("conc_seconds", "", "test")
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				h.Observe(0.25)
			}
		}()
	}
	wg.Wait()
	if h.Count() != 4000 {
		t.Fatalf("count = %d", h.Count())
	}
	if math.Abs(h.Sum()-1000) > 1e-9 {
		t.Fatalf("sum = %g", h.Sum())
	}
}

func TestLabeledSeriesExposition(t *testing.T) {
	r := NewRegistry()
	a := r.NewLabeledCounter("http_requests_total", `route="run"`, "Requests by route.")
	b := r.NewLabeledCounter("http_requests_total", `route="sweep"`, "Requests by route.")
	a.Add(3)
	b.Add(5)
	h := r.NewHistogram("req_seconds", `route="run"`, "Latency.")
	h.Observe(0.5)
	h.Observe(2.0)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if strings.Count(out, "# HELP http_requests_total") != 1 ||
		strings.Count(out, "# TYPE http_requests_total counter") != 1 {
		t.Fatalf("HELP/TYPE not grouped once per name:\n%s", out)
	}
	for _, want := range []string{
		`http_requests_total{route="run"} 3`,
		`http_requests_total{route="sweep"} 5`,
		"# TYPE req_seconds histogram",
		`req_seconds_bucket{route="run",le="0.5"} 1`,
		`req_seconds_bucket{route="run",le="+Inf"} 2`,
		`req_seconds_sum{route="run"} 2.5`,
		`req_seconds_count{route="run"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// Cumulative: the le="2" bucket (covers the 2.0 observation) counts both.
	if !strings.Contains(out, `req_seconds_bucket{route="run",le="2"} 2`) {
		t.Errorf("cumulative le=2 bucket wrong:\n%s", out)
	}
	// Labeled lookup via series key.
	if got := r.Get(`http_requests_total{route="run"}`); got != Metric(a) {
		t.Fatalf("Get by series key = %v", got)
	}
}

func TestDuplicateLabeledSeriesPanics(t *testing.T) {
	r := NewRegistry()
	r.NewLabeledCounter("dup_total", `k="v"`, "x")
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate labeled series did not panic")
		}
	}()
	r.NewLabeledCounter("dup_total", `k="v"`, "x")
}

func TestObserveHTTP(t *testing.T) {
	r := NewRegistry()
	s := NewServer(r)
	s.ObserveHTTP("run", 200, 0.01)
	s.ObserveHTTP("run", 500, 0.02)
	s.ObserveHTTP("no-such-route", 404, 0.03)
	if got := s.HTTPRequests["run"].Get(); got != 2 {
		t.Fatalf("run requests = %d", got)
	}
	if got := s.HTTPErrors["run"].Get(); got != 1 {
		t.Fatalf("run errors = %d", got)
	}
	if got := s.HTTPRequests["other"].Get(); got != 1 {
		t.Fatalf("other requests = %d", got)
	}
	if got := s.HTTPErrors["other"].Get(); got != 0 {
		t.Fatalf("other errors = %d (4xx must not count)", got)
	}
	if got := s.HTTPSeconds["run"].Count(); got != 2 {
		t.Fatalf("run duration observations = %d", got)
	}
}
