package core

import (
	"wormmesh/internal/topology"
)

// vcState is one input virtual channel of a router. A VC is owned by a
// message from the moment the upstream router wins it in VC allocation
// until the message's tail flit leaves the buffer; the buffer therefore
// only ever holds flits of the owning message, with consecutive flit
// indices. That invariant lets the buffer be represented as a compact
// (first, count) window over the owning message instead of a
// heap-allocated []Flit: flits are computed values, not stored structs,
// and a vcState is a flat, pointer-light struct that packs densely in
// the router's per-port arrays.
type vcState struct {
	owner  *Message
	routed bool    // header has been assigned an output channel
	out    Channel // valid when routed

	// dvc caches the downstream input VC that out feeds, resolved once
	// when the output channel is assigned. The healthy-neighbor table is
	// immutable and router VC slices are never reallocated, so the
	// pointer stays valid for as long as routed does; the switch phase
	// reads it instead of recomputing downstream() every cycle. nil when
	// out is the Local (ejection) port, which has no downstream VC.
	dvc *vcState

	// Flit window: the buffer holds flits [first, first+count) of the
	// owning message. count is at most Config.BufDepth; first is only
	// meaningful while count > 0 or after the first arrival.
	first int32
	count int32

	acquired  int64 // cycle ownership began (utilization accounting)
	stagedIn  int64 // cycle a flit was staged to arrive (-1 never)
	stagedOut int64 // cycle a flit was staged to leave (-1 never)

	activeIdx int32 // position in the router's active list, -1 if free
	port      int8  // which input port this VC belongs to
	idx       uint8 // VC index within the port
}

// pushBack appends the flit with message index idx to the window. The
// engine only ever delivers the owner's next consecutive flit, so the
// window stays contiguous by construction.
func (s *vcState) pushBack(idx int32) {
	if s.count == 0 {
		s.first = idx
	}
	s.count++
}

// popFront removes and returns the head flit — a computed value over
// the owning message, never a stored struct.
func (s *vcState) popFront() Flit {
	f := Flit{Msg: s.owner, Index: s.first}
	s.first++
	s.count--
	return f
}

// headIsHeader reports whether the buffer head is the message header.
func (s *vcState) headIsHeader() bool { return s.first == 0 }

// popFrontMsg removes the head of a source queue in place, preserving
// the backing array. Re-slicing with q[1:] would slide the slice start
// forward forever, so every later append would eventually reallocate —
// the copy-down keeps steady-state queue churn allocation-free (the
// queue is bounded by Config.MaxSourceQueue, so the copy is O(small)).
func popFrontMsg(q []*Message) []*Message {
	copy(q, q[1:])
	q[len(q)-1] = nil // drop the reference so the arena solely owns it
	return q[:len(q)-1]
}

// injState tracks the message currently streaming out of a node's
// source queue, together with the first-hop channel it won and the
// downstream input VC that channel feeds (cached like vcState.dvc).
type injState struct {
	msg *Message
	out Channel
	dvc *vcState
}

// router is the per-node switching element: four buffered input ports
// (one per incoming physical channel) with Config.NumVCs virtual
// channels each, a source queue on the injection port, and an
// unbuffered ejection port.
type router struct {
	id topology.NodeID

	// vcs holds the router's input VCs as one flat slice indexed by
	// localChannel code (port*NumVCs + vc) for port = East..South —
	// the router-local residue of the global ChannelID encoding, so
	// vcAt is a single bounds-checked load with no division. Input
	// ports are named after the side of the router the link physically
	// enters: a flit sent East by the western neighbor arrives on this
	// router's West port, so a message sent through output channel ch
	// of node u lands in vc(ch.Dir.Opposite(), ch.VC) of the neighbor.
	vcs []vcState

	srcQ []*Message
	inj  injState

	// active lists the occupied input VCs as localChannel codes
	// (port*NumVCs+vc — the router-local residue of the global
	// ChannelID encoding) so the per-cycle loops skip idle channels.
	// Swap-remove keeps it dense; activeIdx back-references make
	// removal O(1).
	active []localChannel

	// crossings counts flits that traversed this router's crossbar
	// inside the measurement window (the traffic-load metric).
	crossings int64
}

// vcAt resolves a localChannel code to its vcState — a direct index
// into the flat per-router slice.
func (r *router) vcAt(code localChannel) *vcState {
	return &r.vcs[code]
}

// vc resolves (port, vc index) to its vcState.
func (r *router) vc(port topology.Direction, vcIdx int, numVCs int) *vcState {
	return &r.vcs[int(port)*numVCs+vcIdx]
}

// claim marks VC (port, vcIdx) owned by m and registers it active.
func (r *router) claim(port topology.Direction, vcIdx int, m *Message, cycle int64, numVCs int) *vcState {
	s := r.vc(port, vcIdx, numVCs)
	s.owner = m
	s.routed = false
	s.acquired = cycle
	s.first = 0
	s.count = 0
	s.activeIdx = int32(len(r.active))
	r.active = append(r.active, int32(port)*int32(numVCs)+int32(vcIdx))
	return s
}

// release frees an owned VC and drops it from the active list.
func (r *router) release(s *vcState, numVCs int) {
	idx := s.activeIdx
	last := int32(len(r.active) - 1)
	if idx != last {
		moved := r.active[last]
		r.active[idx] = moved
		r.vcAt(moved).activeIdx = idx
	}
	r.active = r.active[:last]
	s.owner = nil
	s.routed = false
	s.dvc = nil
	s.activeIdx = -1
	s.first = 0
	s.count = 0
}
