package core

import (
	"wormmesh/internal/topology"
)

// vcState is one input virtual channel of a router. A VC is owned by a
// message from the moment the upstream router wins it in VC allocation
// until the message's tail flit leaves the buffer; the buffer therefore
// only ever holds flits of the owning message.
type vcState struct {
	owner  *Message
	routed bool    // header has been assigned an output channel
	out    Channel // valid when routed

	buf []Flit // FIFO of at most Config.BufDepth flits

	acquired  int64 // cycle ownership began (utilization accounting)
	stagedIn  int64 // cycle a flit was staged to arrive (-1 never)
	stagedOut int64 // cycle a flit was staged to leave (-1 never)

	activeIdx int32 // position in the router's active list, -1 if free
	port      int8  // which input port this VC belongs to
	idx       uint8 // VC index within the port
}

// injState tracks the message currently streaming out of a node's
// source queue, together with the first-hop channel it won.
type injState struct {
	msg *Message
	out Channel
}

// router is the per-node switching element: four buffered input ports
// (one per incoming physical channel) with Config.NumVCs virtual
// channels each, a source queue on the injection port, and an
// unbuffered ejection port.
type router struct {
	id topology.NodeID

	// in[port][vc] for port = East..South. Input ports are named after
	// the side of the router the link physically enters: a flit sent
	// East by the western neighbor arrives on this router's West port,
	// so a message sent through output channel ch of node u lands in
	// in[ch.Dir.Opposite()][ch.VC] of the neighbor.
	in [topology.NumDirs][]vcState

	srcQ []*Message
	inj  injState

	// active lists the occupied input VCs as port*NumVCs+vc codes so
	// the per-cycle loops skip idle channels.
	active []int32

	// crossings counts flits that traversed this router's crossbar
	// inside the measurement window (the traffic-load metric).
	crossings int64
}

func (r *router) vcAt(code int32, numVCs int) *vcState {
	return &r.in[code/int32(numVCs)][code%int32(numVCs)]
}

// claim marks VC (port, vcIdx) owned by m and registers it active.
func (r *router) claim(port topology.Direction, vcIdx int, m *Message, cycle int64, numVCs int) *vcState {
	s := &r.in[port][vcIdx]
	s.owner = m
	s.routed = false
	s.acquired = cycle
	s.activeIdx = int32(len(r.active))
	r.active = append(r.active, int32(port)*int32(numVCs)+int32(vcIdx))
	return s
}

// release frees an owned VC and drops it from the active list.
func (r *router) release(s *vcState, numVCs int) {
	idx := s.activeIdx
	last := int32(len(r.active) - 1)
	if idx != last {
		moved := r.active[last]
		r.active[idx] = moved
		r.vcAt(moved, numVCs).activeIdx = idx
	}
	r.active = r.active[:last]
	s.owner = nil
	s.routed = false
	s.activeIdx = -1
	s.buf = s.buf[:0]
}
