package core

import (
	"math/rand"
	"testing"

	"wormmesh/internal/topology"
	"wormmesh/internal/trace"
)

// BenchmarkStepIdle measures the per-cycle cost of an empty network
// (the sweep harness spends warm-up tails here at low loads). The
// worklist variant is the production path — a quiescent cycle
// short-circuits on the empty dirty set — while fullscan pins
// core.DebugFullScan to measure the pre-worklist reference engine
// that still walks every router.
func BenchmarkStepIdle(b *testing.B) {
	for _, variant := range []struct {
		name     string
		fullScan bool
	}{{"worklist", false}, {"fullscan", true}} {
		b.Run(variant.name, func(b *testing.B) {
			mesh := topology.New(10, 10)
			cfg := DefaultConfig()
			n, err := NewNetwork(mesh, nil, xyAlg{mesh: mesh, vcs: cfg.NumVCs}, cfg, rand.New(rand.NewSource(1)))
			if err != nil {
				b.Fatal(err)
			}
			DebugFullScan = variant.fullScan
			defer func() { DebugFullScan = false }()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				n.Step()
			}
		})
	}
}

// BenchmarkStepLowLoad measures the regime the worklist is for: a
// trickle of traffic on a 10×10 mesh, so most routers are idle on any
// given cycle but the network is never fully quiescent for long. The
// worklist walks only the handful of busy routers; the fullscan
// reference walks all 100 every cycle.
func BenchmarkStepLowLoad(b *testing.B) {
	for _, variant := range []struct {
		name     string
		fullScan bool
	}{{"worklist", false}, {"fullscan", true}} {
		b.Run(variant.name, func(b *testing.B) {
			mesh := topology.New(10, 10)
			cfg := DefaultConfig()
			cfg.MaxSourceQueue = 4
			n, err := NewNetwork(mesh, nil, xyAlg{mesh: mesh, vcs: cfg.NumVCs}, cfg, rand.New(rand.NewSource(1)))
			if err != nil {
				b.Fatal(err)
			}
			rng := rand.New(rand.NewSource(2))
			id := int64(0)
			DebugFullScan = variant.fullScan
			defer func() { DebugFullScan = false }()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				// ~0.02 messages per cycle network-wide: the paper's
				// low-load region, where most cycles touch 0–2 messages.
				if rng.Float64() < 0.02 {
					src := topology.NodeID(rng.Intn(mesh.NodeCount()))
					dst := topology.NodeID(rng.Intn(mesh.NodeCount()))
					if src != dst {
						id++
						m := n.AcquireMessage(id, src, dst, 16)
						m.GenTime = n.Cycle()
						n.Offer(m)
					}
				}
				n.Step()
			}
		})
	}
}

// BenchmarkStepLoaded measures the per-cycle cost with live traffic.
// Messages come from the network's arena, so a steady-state cycle
// performs zero heap allocations (asserted by TestStepLoadedAllocs).
// The flightrec variant runs the same workload with a saturated
// 4096-event flight recorder ring installed, pricing the black-box
// observation the sweeps can now leave on; the telemetry variant runs
// with Config.ChannelTelemetry, pricing the per-link congestion
// counters (each budget is <= 10% over plain, still at zero allocs/op
// — diff the set with cmd/benchdiff). The spans variant prices the
// serve layer's engine bridge: the same recorder ring, decoded into a
// trace span every ring-length of cycles — the amortized cost of the
// span-scoped engine view /traces serves. The sampler variant prices
// the time-resolved WindowSampler ticked every cycle (512-cycle
// windows), the observer the live SSE stream and -live dashboard ride
// on — same ≤10% budget over plain.
func BenchmarkStepLoaded(b *testing.B) {
	for _, variant := range []struct {
		name      string
		flightRe  bool
		telemetry bool
		spans     bool
		sampler   bool
	}{
		{"plain", false, false, false, false},
		{"flightrec", true, false, false, false},
		{"telemetry", false, true, false, false},
		{"spans", true, false, true, false},
		{"sampler", false, false, false, true},
	} {
		b.Run(variant.name, func(b *testing.B) {
			mesh := topology.New(10, 10)
			cfg := DefaultConfig()
			cfg.MaxSourceQueue = 4
			cfg.ChannelTelemetry = variant.telemetry
			n, err := NewNetwork(mesh, nil, xyAlg{mesh: mesh, vcs: cfg.NumVCs}, cfg, rand.New(rand.NewSource(1)))
			if err != nil {
				b.Fatal(err)
			}
			var rec *FlightRecorder
			if variant.flightRe {
				rec = NewFlightRecorder(4096)
				n.SetFlightRecorder(rec)
			}
			var tracer *trace.Tracer
			if variant.spans {
				tracer = trace.New(64)
			}
			var sampler *WindowSampler
			if variant.sampler {
				sampler = NewWindowSampler(512, 256)
				sampler.Start(n, 0)
			}
			rng := rand.New(rand.NewSource(2))
			id := int64(0)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				// ~0.3 messages per cycle network-wide: a busy mesh.
				if rng.Float64() < 0.3 {
					src := topology.NodeID(rng.Intn(mesh.NodeCount()))
					dst := topology.NodeID(rng.Intn(mesh.NodeCount()))
					if src != dst {
						id++
						m := n.AcquireMessage(id, src, dst, 16)
						m.GenTime = n.Cycle()
						n.Offer(m)
					}
				}
				n.Step()
				if sampler != nil {
					sampler.Tick(n)
				}
				if variant.spans && i%4096 == 4095 {
					span := tracer.Start("engine.window", trace.Context{})
					span.AttachEngine(toEngineEvents(rec.Events()))
					span.End()
				}
			}
			b.ReportMetric(float64(n.Snapshot().DeliveredFlits)/float64(b.N), "flits/cycle")
		})
	}
}

// toEngineEvents mirrors the serve scheduler's conversion from the
// engine's TraceEvent to the trace package's dependency-free mirror —
// the exact copy the spans benchmark variant prices.
func toEngineEvents(evs []TraceEvent) []trace.EngineEvent {
	if len(evs) == 0 {
		return nil
	}
	out := make([]trace.EngineEvent, len(evs))
	for i, e := range evs {
		out[i] = trace.EngineEvent{
			Cycle: e.Cycle, Kind: e.Kind, Msg: e.Msg,
			Src: e.Src, Dst: e.Dst, Node: e.Node,
			Dir: e.Dir, VC: e.VC, Flit: e.Flit, Cause: e.Cause,
		}
	}
	return out
}

// BenchmarkStepLoadedTorus is BenchmarkStepLoaded's plain workload on
// the 10×10 torus backend with the dateline XY discipline: the cost of
// wrap links and wrap-class computation on the loaded per-cycle path
// (same 0 allocs/op budget, gated by cmd/benchdiff like the rest of
// the set).
func BenchmarkStepLoadedTorus(b *testing.B) {
	var torus topology.Topology = topology.NewTorus(10, 10)
	cfg := DefaultConfig()
	cfg.MaxSourceQueue = 4
	n, err := NewNetwork(torus, nil, torusXYAlg{topo: torus, vcs: cfg.NumVCs}, cfg, rand.New(rand.NewSource(1)))
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	id := int64(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// ~0.3 messages per cycle network-wide: a busy torus.
		if rng.Float64() < 0.3 {
			src := topology.NodeID(rng.Intn(torus.NodeCount()))
			dst := topology.NodeID(rng.Intn(torus.NodeCount()))
			if src != dst {
				id++
				m := n.AcquireMessage(id, src, dst, 16)
				m.GenTime = n.Cycle()
				n.Offer(m)
			}
		}
		n.Step()
	}
	b.ReportMetric(float64(n.Snapshot().DeliveredFlits)/float64(b.N), "flits/cycle")
}

// BenchmarkStepParallel measures the parallel request–grant engine on
// a large mesh across worker counts (run with -cpu to vary GOMAXPROCS
// as well). The large/ variants exercise the persistent worker pool on
// a 24×24 mesh; small/ shows the single-shard fallback on the paper's
// 10×10 mesh, where sharding overhead would dominate.
func BenchmarkStepParallel(b *testing.B) {
	run := func(b *testing.B, mesh topology.Topology, workers int) {
		cfg := DefaultConfig()
		cfg.NumVCs = 8
		cfg.MaxSourceQueue = 4
		n, err := NewNetwork(mesh, nil, xyAlg{mesh: mesh, vcs: 8}, cfg, rand.New(rand.NewSource(1)))
		if err != nil {
			b.Fatal(err)
		}
		defer n.Close()
		clones := make([]Algorithm, workers)
		for i := range clones {
			clones[i] = xyAlg{mesh: mesh, vcs: 8}
		}
		if err := n.EnableParallel(workers, clones); err != nil {
			b.Fatal(err)
		}
		rng := rand.New(rand.NewSource(2))
		id := int64(0)
		step := func() {
			for k := 0; k < 4; k++ { // busy network
				src := topology.NodeID(rng.Intn(mesh.NodeCount()))
				dst := topology.NodeID(rng.Intn(mesh.NodeCount()))
				if src != dst {
					id++
					m := n.AcquireMessage(id, src, dst, 16)
					m.GenTime = n.Cycle()
					n.Offer(m)
				}
			}
			n.Step()
		}
		// Reach the arena's and scratch tables' steady-state capacity
		// before measuring, so allocs/op reports the steady state.
		for i := 0; i < 1500; i++ {
			step()
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			step()
		}
	}
	for _, workers := range []int{1, 2, 4} {
		b.Run("large/"+benchName(workers), func(b *testing.B) {
			run(b, topology.New(24, 24), workers)
		})
	}
	for _, workers := range []int{1, 4} {
		b.Run("small/"+benchName(workers), func(b *testing.B) {
			run(b, topology.New(10, 10), workers)
		})
	}
}

func benchName(workers int) string {
	return "workers-" + string(rune('0'+workers))
}

// BenchmarkValidate measures the invariant checker used by the tests.
func BenchmarkValidate(b *testing.B) {
	mesh := topology.New(10, 10)
	cfg := DefaultConfig()
	n, err := NewNetwork(mesh, nil, xyAlg{mesh: mesh, vcs: cfg.NumVCs}, cfg, rand.New(rand.NewSource(1)))
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		m := NewMessage(int64(i+1), topology.NodeID(i), topology.NodeID(99-i), 16)
		m.GenTime = 0
		n.Offer(m)
	}
	for i := 0; i < 20; i++ {
		n.Step()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := n.Validate(); err != nil {
			b.Fatal(err)
		}
	}
}
