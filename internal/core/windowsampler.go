package core

import (
	"sync"
	"sync/atomic"
	"time"
)

// WindowSnapshot is one fixed-width slice of a run's time-resolved
// telemetry: the counter deltas accumulated over [Start, End) plus the
// instantaneous backlog at the window's close. Snapshots are produced
// by a WindowSampler on the simulation goroutine and read concurrently
// by dashboards and SSE streams.
type WindowSnapshot struct {
	// Seq numbers snapshots from 0 across the whole run; it never
	// wraps, so a reader that remembers the last Seq it saw can ask
	// Since(seq) for exactly the windows it missed (modulo ring
	// eviction).
	Seq int64 `json:"seq"`
	// Start and End delimit the window in engine cycles.
	Start int64 `json:"start"`
	End   int64 `json:"end"`
	// WallNanos is the wall-clock time the window closed at
	// (UnixNano). It is recorded, never consumed by the engine, so
	// sampling stays deterministic; readers use it for ETA and
	// cycles-per-second rates.
	WallNanos int64 `json:"wall_nanos"`

	// Counter deltas over the window. They are computed from the
	// engine's live measurement-window counters, so a mid-window
	// ResetStats (the warm-up cut) clamps them to the new window's
	// partial tally rather than going negative.
	Generated      int64 `json:"generated"`
	Injected       int64 `json:"injected"`
	Delivered      int64 `json:"delivered"`
	DeliveredFlits int64 `json:"delivered_flits"`
	Killed         int64 `json:"killed"`

	// InFlight is the number of messages in the network when the
	// window closed.
	InFlight int `json:"in_flight"`
	// BlockedLinks counts directional physical links that spent at
	// least one cycle blocked during the window. It requires
	// Config.ChannelTelemetry; zero otherwise.
	BlockedLinks int `json:"blocked_links"`
	// AvgLatency is the mean latency (cycles) of the measured messages
	// delivered inside the window; zero when none were.
	AvgLatency float64 `json:"avg_latency"`

	// LinkBusy holds per-link busy fractions for the window,
	// downsampled to 8 bits (0 = idle, 255 = busy every cycle),
	// indexed by LinkID. Nil when Config.ChannelTelemetry is off.
	// The slice aliases the sampler's ring slab inside the sampler;
	// copies handed out by Since own their storage.
	LinkBusy []uint8 `json:"link_busy,omitempty"`
}

// Throughput returns the window's accepted traffic in flits per node
// per cycle.
func (w WindowSnapshot) Throughput(healthyNodes int) float64 {
	cycles := w.End - w.Start
	if cycles == 0 || healthyNodes == 0 {
		return 0
	}
	return float64(w.DeliveredFlits) / float64(cycles) / float64(healthyNodes)
}

// WindowSampler is the time-resolved telemetry observer: every
// `window` cycles it snapshots the engine's live counters into a
// preallocated ring of WindowSnapshots. Like every observer it is
// strictly read-only and RNG-free — Stats are bit-identical with the
// sampler attached or not (locked in by the sampler golden test) —
// and, once Start has sized its buffers, a Tick performs zero heap
// allocations (locked in by TestStepLoadedAllocsSampler).
//
// The writer (the simulation goroutine) calls Start once per run and
// Tick once per cycle; readers call Since/Latest/Meta from any
// goroutine. The boundary check in Tick is lock-free; only the actual
// window close (one in `window` calls) takes the mutex.
type WindowSampler struct {
	window   int64
	capacity int

	// seq is the number of snapshots ever produced; the ring holds the
	// most recent min(seq, capacity) of them. Atomic so Tick can
	// publish and readers can poll without taking the mutex.
	seq atomic.Int64

	mu    sync.Mutex
	snaps []WindowSnapshot // ring, len == capacity
	slab  []uint8          // LinkBusy backing store, capacity×links

	// Writer-only state (no locking: single writer).
	links        int
	prevCyc      int64
	prev         LiveCounters
	prevInjected int64
	prevBusy     []int64
	prevBlocked  []int64
	healthy      int
	startWall    int64
	startCycle   int64
	totalCycles  int64
}

// DefaultWindowCycles is the window width services use when the caller
// does not pick one: fine enough to resolve warm-up transients on the
// paper's 30 000-cycle runs, coarse enough that a ring of a few
// thousand covers any realistic run.
const DefaultWindowCycles = 512

// NewWindowSampler returns a sampler that closes a window every
// `window` cycles and retains the most recent `capacity` snapshots.
// Non-positive arguments fall back to DefaultWindowCycles and 4096.
func NewWindowSampler(window int64, capacity int) *WindowSampler {
	if window <= 0 {
		window = DefaultWindowCycles
	}
	if capacity <= 0 {
		capacity = 4096
	}
	return &WindowSampler{window: window, capacity: capacity}
}

// Window returns the configured window width in cycles.
func (s *WindowSampler) Window() int64 { return s.window }

// Start binds the sampler to a network at the beginning of a run:
// sizes the ring and per-link scratch for the network's link count,
// zeroes the counter baselines, and resets Seq. Allocation happens
// here, once, so every subsequent Tick is allocation-free. totalCycles
// is the run's planned length (warm-up + measurement), recorded for
// readers computing progress and ETA; pass 0 when unknown.
func (s *WindowSampler) Start(n *Network, totalCycles int64) {
	links := 0
	if n.LinkTelemetryEnabled() {
		links = n.NumLinks()
	}
	s.mu.Lock()
	if len(s.snaps) != s.capacity {
		s.snaps = make([]WindowSnapshot, s.capacity)
	}
	if links > 0 && len(s.slab) != s.capacity*links {
		s.slab = make([]uint8, s.capacity*links)
	}
	s.links = links
	if links > 0 {
		if len(s.prevBusy) != links {
			s.prevBusy = make([]int64, links)
			s.prevBlocked = make([]int64, links)
		}
		_, busy, blocked, _ := n.LinkCounters()
		copy(s.prevBusy, busy)
		copy(s.prevBlocked, blocked)
	}
	s.prevCyc = n.Cycle()
	s.prev = n.LiveCounters()
	s.healthy = n.Faults.HealthyCount()
	s.startWall = time.Now().UnixNano()
	s.startCycle = n.Cycle()
	s.totalCycles = totalCycles
	s.mu.Unlock()
	s.seq.Store(0)
}

// Tick advances the sampler one cycle; call it after Network.Step. It
// closes a window once `window` cycles have elapsed since the last
// close. The off-boundary path is a single comparison; the boundary
// path reads the live counters, computes deltas, and publishes one
// snapshot — still allocation-free.
func (s *WindowSampler) Tick(n *Network) {
	if n.Cycle()-s.prevCyc < s.window {
		return
	}
	s.close(n)
}

// Flush closes a final, possibly short window if any cycles have
// elapsed since the last close — so the tail of a run (or an
// early-stopped measurement) is not lost. Call it once after the run
// loop.
func (s *WindowSampler) Flush(n *Network) {
	if n.Cycle() == s.prevCyc {
		return
	}
	s.close(n)
}

// counterDelta returns cur-prev clamped for counter resets: the
// warm-up cut zeroes the live counters mid-run, so a current value
// below the baseline means the counter restarted and the delta since
// the reset is just cur.
func counterDelta(cur, prev int64) int64 {
	if cur < prev {
		return cur
	}
	return cur - prev
}

func (s *WindowSampler) close(n *Network) {
	cur := n.LiveCounters()
	seq := s.seq.Load()
	slot := int(seq % int64(s.capacity))

	s.mu.Lock()
	w := &s.snaps[slot]
	w.Seq = seq
	w.Start = s.prevCyc
	w.End = n.Cycle()
	w.WallNanos = time.Now().UnixNano()
	w.Generated = counterDelta(cur.Generated, s.prev.Generated)
	w.Injected = counterDelta(cur.Injected, s.prev.Injected)
	w.Delivered = counterDelta(cur.Delivered, s.prev.Delivered)
	w.DeliveredFlits = counterDelta(cur.DeliveredFlits, s.prev.DeliveredFlits)
	w.Killed = counterDelta(cur.Killed, s.prev.Killed)
	w.InFlight = n.InFlight()
	w.AvgLatency = 0
	if dc := counterDelta(cur.LatencyCount, s.prev.LatencyCount); dc > 0 {
		w.AvgLatency = float64(counterDelta(cur.LatencySum, s.prev.LatencySum)) / float64(dc)
	}
	w.BlockedLinks = 0
	w.LinkBusy = nil
	if s.links > 0 {
		_, busy, blocked, _ := n.LinkCounters()
		cycles := w.End - w.Start
		row := s.slab[slot*s.links : (slot+1)*s.links]
		for i := 0; i < s.links; i++ {
			db := counterDelta(busy[i], s.prevBusy[i])
			frac := db * 255 / cycles
			if frac > 255 {
				frac = 255
			}
			row[i] = uint8(frac)
			if counterDelta(blocked[i], s.prevBlocked[i]) > 0 {
				w.BlockedLinks++
			}
			s.prevBusy[i] = busy[i]
			s.prevBlocked[i] = blocked[i]
		}
		w.LinkBusy = row
	}
	s.prev = cur
	s.prevCyc = n.Cycle()
	s.mu.Unlock()
	s.seq.Store(seq + 1)
}

// Seq returns the number of snapshots produced so far; snapshot
// sequence numbers run [0, Seq). Safe from any goroutine.
func (s *WindowSampler) Seq() int64 { return s.seq.Load() }

// Meta describes the sampler's run for readers: window width, healthy
// node count (the throughput denominator), planned total cycles, and
// the wall-clock and cycle origin of the run.
type SamplerMeta struct {
	WindowCycles int64 `json:"window_cycles"`
	HealthyNodes int   `json:"healthy_nodes"`
	TotalCycles  int64 `json:"total_cycles"`
	StartCycle   int64 `json:"start_cycle"`
	WallStart    int64 `json:"wall_start"`
}

// Meta returns the run description captured at Start.
func (s *WindowSampler) Meta() SamplerMeta {
	s.mu.Lock()
	defer s.mu.Unlock()
	return SamplerMeta{
		WindowCycles: s.window,
		HealthyNodes: s.healthy,
		TotalCycles:  s.totalCycles,
		StartCycle:   s.startCycle,
		WallStart:    s.startWall,
	}
}

// Since returns copies of every retained snapshot with Seq >= after,
// oldest first. Snapshots evicted from the ring are silently skipped
// (the reader sees a Seq gap). The copies own their LinkBusy storage,
// so they remain valid after the ring slot is overwritten. Safe from
// any goroutine; the caller owns the returned slice.
func (s *WindowSampler) Since(after int64) []WindowSnapshot {
	seq := s.seq.Load()
	if after >= seq {
		return nil
	}
	lo := seq - int64(s.capacity)
	if lo < 0 {
		lo = 0
	}
	if after > lo {
		lo = after
	}
	out := make([]WindowSnapshot, 0, seq-lo)
	var busy []uint8
	if s.links > 0 {
		busy = make([]uint8, int(seq-lo)*s.links)
	}
	s.mu.Lock()
	// Re-check under the lock: the writer may have advanced past the
	// slots we planned to read. Anything still >= lo is intact because
	// a slot is rewritten only when its Seq advances by `capacity`.
	hi := s.seq.Load()
	if lo < hi-int64(s.capacity) {
		lo = hi - int64(s.capacity)
	}
	for q := lo; q < seq; q++ {
		w := s.snaps[q%int64(s.capacity)]
		if w.LinkBusy != nil {
			i := len(out)
			dst := busy[i*s.links : (i+1)*s.links]
			copy(dst, w.LinkBusy)
			w.LinkBusy = dst
		}
		out = append(out, w)
	}
	s.mu.Unlock()
	return out
}

// Latest returns the most recent snapshot (a copy owning its LinkBusy)
// and true, or a zero snapshot and false when none has been produced.
func (s *WindowSampler) Latest() (WindowSnapshot, bool) {
	seq := s.seq.Load()
	if seq == 0 {
		return WindowSnapshot{}, false
	}
	ws := s.Since(seq - 1)
	if len(ws) == 0 {
		return WindowSnapshot{}, false
	}
	return ws[len(ws)-1], true
}
