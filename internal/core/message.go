package core

import (
	"fmt"

	"wormmesh/internal/topology"
)

// Message is one wormhole message: a fixed-length train of flits led by
// a header that carries all routing state. The engine moves flits; the
// routing algorithm reads and writes the routing-state fields.
type Message struct {
	ID     int64
	Src    topology.NodeID
	Dst    topology.NodeID
	Length int // flits, header and tail included

	// Timestamps, in cycles. -1 means "not yet".
	GenTime     int64 // generation (enqueue at the source)
	InjectTime  int64 // header flit leaves the source queue
	DeliverTime int64 // tail flit ejected at the destination

	// Routing state maintained by the algorithms via Advance.
	Hops       int32           // hops taken so far
	NegHops    int32           // negative (high→low color) hops taken
	Class      int32           // buffer class used by the last hop
	Cards      int32           // remaining bonus cards
	CardsSpent int32           // cumulative bonus cards spent
	Misroutes  int32           // non-minimal hops taken (Fully-Adaptive budget)
	DirClass   DirClass        // WE/EW/NS/SN, fixed at generation
	Subnet     uint8           // virtual subnetwork (Boura double-y discipline)
	Prev       topology.NodeID // node the header last came from

	// Boppana–Chalasani f-ring traversal state. RingIdx indexes the
	// fault model's Rings(); -1 when the message is routing normally.
	RingIdx int32
	RingCW  bool

	// Latency decomposition (telemetry.go): every cycle between
	// generation and tail delivery is attributed to exactly one of the
	// four disjoint buckets below; LatRing is an overlay counting the
	// cycles spent inside f-ring traversals. Always on — the accounting
	// is read-only, RNG-free and allocation-free.
	LatQueue   int64 // waiting in the source queue
	LatRoute   int64 // header awaiting VC allocation at a router
	LatBlocked int64 // routed but stalled (credits, switch, ejection)
	LatMoving  int64 // cycles in which at least one flit moved
	LatRing    int64 // cycles spent traversing f-rings (overlay)

	// Engine bookkeeping.
	flitsInjected int   // flits that have left the source queue
	lastMove      int64 // cycle of the message's last flit movement
	activeIdx     int32 // position in Network.active, -1 when not in flight
	acctFrom      int64 // last cycle already attributed (decomposition)
	acctMoved     int64 // cycle of the last accounted move, -1 never
	ringSince     int64 // cycle the open f-ring traversal began, -1 none
	acctState     uint8 // wait bucket for unattributed cycles
	pooled        bool  // drawn from the network's arena; recycled on completion
	Killed        bool  // torn down by deadlock recovery
}

// NewMessage builds a message with timestamps and routing state
// cleared. The caller (traffic generator) sets GenTime; the routing
// algorithm's InitMessage fills the routing state. Messages built here
// are never recycled by the engine, so the caller may inspect them
// after delivery; sustained-load drivers should prefer
// Network.AcquireMessage, which recycles completed messages through the
// network's arena.
func NewMessage(id int64, src, dst topology.NodeID, length int) *Message {
	if length < 1 {
		panic(fmt.Sprintf("core: message length %d < 1", length))
	}
	return &Message{
		ID:          id,
		Src:         src,
		Dst:         dst,
		Length:      length,
		GenTime:     -1,
		InjectTime:  -1,
		DeliverTime: -1,
		RingIdx:     -1,
		Prev:        topology.Invalid,
		activeIdx:   -1,
		acctMoved:   -1,
		ringSince:   -1,
	}
}

// AcquireMessage returns a message initialized exactly like NewMessage
// but drawn from the network's free list when one is available. The
// engine recycles such messages automatically the moment they complete
// — tail delivered, killed by recovery, or refused by Offer — so the
// caller must not retain a reference past those events. Drivers that
// inspect messages after completion (tests, single-shot probes) should
// use NewMessage instead; the two kinds coexist freely in one network.
func (n *Network) AcquireMessage(id int64, src, dst topology.NodeID, length int) *Message {
	k := len(n.msgPool) - 1
	if k < 0 {
		m := NewMessage(id, src, dst, length)
		m.pooled = true
		return m
	}
	if length < 1 {
		panic(fmt.Sprintf("core: message length %d < 1", length))
	}
	m := n.msgPool[k]
	n.msgPool = n.msgPool[:k]
	*m = Message{
		ID:          id,
		Src:         src,
		Dst:         dst,
		Length:      length,
		GenTime:     -1,
		InjectTime:  -1,
		DeliverTime: -1,
		RingIdx:     -1,
		Prev:        topology.Invalid,
		activeIdx:   -1,
		acctMoved:   -1,
		ringSince:   -1,
		pooled:      true,
	}
	return m
}

// recycle returns a pooled message to the free list. Messages built
// with NewMessage pass through untouched. Clearing pooled first makes a
// double recycle a no-op instead of a pool corruption.
func (n *Network) recycle(m *Message) {
	if m == nil || !m.pooled {
		return
	}
	m.pooled = false
	n.msgPool = append(n.msgPool, m)
}

// PoolSize returns the number of idle messages in the network's arena
// (observability for tests and memory accounting).
func (n *Network) PoolSize() int { return len(n.msgPool) }

// Delivered reports whether the tail has reached the destination.
func (m *Message) Delivered() bool { return m.DeliverTime >= 0 }

// Latency returns the message latency in cycles from generation to
// tail delivery (the paper's "average message latency" includes source
// queueing). It panics when the message is not yet delivered.
func (m *Message) Latency() int64 {
	if !m.Delivered() {
		panic("core: Latency on undelivered message")
	}
	return m.DeliverTime - m.GenTime
}

// NetworkLatency returns the cycles spent inside the network, from
// header injection to tail delivery.
func (m *Message) NetworkLatency() int64 {
	if !m.Delivered() || m.InjectTime < 0 {
		panic("core: NetworkLatency on undelivered message")
	}
	return m.DeliverTime - m.InjectTime
}

// String renders a compact description for traces and tests.
func (m *Message) String() string {
	return fmt.Sprintf("msg#%d %d->%d len=%d hops=%d class=%d", m.ID, m.Src, m.Dst, m.Length, m.Hops, m.Class)
}

// Flit is one flow-control unit of a message. Index 0 is the header;
// Index == Length-1 is the tail. A one-flit message's single flit is
// both header and tail. Flits are computed values derived from a VC's
// (first, count) window — the engine never stores them.
type Flit struct {
	Msg   *Message
	Index int32
}

// Head reports whether this is the header flit.
func (f Flit) Head() bool { return f.Index == 0 }

// Tail reports whether this is the tail flit.
func (f Flit) Tail() bool { return int(f.Index) == f.Msg.Length-1 }
