package core

import (
	"fmt"
	"sort"
)

// TraceSummary aggregates a recorded event stream into per-message
// journeys — the offline counterpart of the live statistics, useful
// when digging into a single run's behavior from a `meshsim -trace`
// file.
type TraceSummary struct {
	Messages  int
	Delivered int
	Killed    int
	// KilledByCause splits Killed by recovery mechanism: "global"
	// (network-wide watchdog), "stall" (per-message stall scan),
	// "livelock" (hop-budget guard). Traces recorded before the cause
	// field existed land under "" and still sum into Killed.
	KilledByCause map[string]int
	// WatchdogFires counts global-watchdog events, including those
	// that found no resource-holding victim to tear down.
	WatchdogFires int
	FlitMoves     int64
	// Hops[msg] counts route grants per message; Journeys maps each
	// delivered message to its injection→delivery span in cycles.
	Hops     map[int64]int
	Journeys map[int64]int64
	// HotNodes lists the nodes that routed the most headers, busiest
	// first (ties by node id).
	HotNodes []NodeActivity
}

// NodeActivity pairs a node with its header-routing count.
type NodeActivity struct {
	Node   int32
	Routed int
}

// SummarizeTrace folds a parsed event stream (ReadTrace) into a
// summary. Events may be partial (e.g. a run cut short): messages
// without a deliver event simply stay undelivered in the counts.
func SummarizeTrace(events []TraceEvent) TraceSummary {
	s := TraceSummary{
		Hops:          map[int64]int{},
		Journeys:      map[int64]int64{},
		KilledByCause: map[string]int{},
	}
	injected := map[int64]int64{}
	routedBy := map[int32]int{}
	seen := map[int64]bool{}
	for _, e := range events {
		// Watchdog events carry the victim's ID (or zeros when no
		// victim held resources); neither names a new message.
		if e.Kind != "watchdog" && !seen[e.Msg] {
			seen[e.Msg] = true
			s.Messages++
		}
		switch e.Kind {
		case "inject":
			injected[e.Msg] = e.Cycle
		case "route":
			s.Hops[e.Msg]++
			routedBy[e.Node]++
		case "flit":
			s.FlitMoves++
		case "deliver":
			s.Delivered++
			if inj, ok := injected[e.Msg]; ok {
				s.Journeys[e.Msg] = e.Cycle - inj
			}
		case "kill":
			s.Killed++
			s.KilledByCause[e.Cause]++
		case "watchdog":
			s.WatchdogFires++
		}
	}
	for node, n := range routedBy {
		s.HotNodes = append(s.HotNodes, NodeActivity{Node: node, Routed: n})
	}
	sort.Slice(s.HotNodes, func(i, j int) bool {
		if s.HotNodes[i].Routed != s.HotNodes[j].Routed {
			return s.HotNodes[i].Routed > s.HotNodes[j].Routed
		}
		return s.HotNodes[i].Node < s.HotNodes[j].Node
	})
	return s
}

// String renders the headline numbers, splitting kills by cause when
// any occurred.
func (s TraceSummary) String() string {
	out := fmt.Sprintf("trace: %d messages (%d delivered, %d killed), %d flit moves",
		s.Messages, s.Delivered, s.Killed, s.FlitMoves)
	if s.Killed > 0 {
		out += fmt.Sprintf(" [killed: %d global, %d stall, %d livelock]",
			s.KilledByCause[KillCauseGlobal.String()],
			s.KilledByCause[KillCauseStall.String()],
			s.KilledByCause[KillCauseLivelock.String()])
	}
	if s.WatchdogFires > 0 {
		out += fmt.Sprintf(", %d watchdog firings", s.WatchdogFires)
	}
	return out
}
