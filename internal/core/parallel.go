package core

import (
	"fmt"
	"runtime"
	"sync"

	"wormmesh/internal/topology"
)

// Parallel stepping. The serial engine resolves conflicts by a global
// random service order, which is inherently sequential. The parallel
// engine replaces it with a single-round request–grant handshake (the
// structure of real virtual-channel allocators):
//
//	P1 (parallel over nodes)  every header picks ONE free candidate
//	                          channel using a per-(cycle, node) hashed
//	                          random stream;
//	P2 (serial, cheap)        each contested downstream VC grants one
//	                          requester by a hash tournament; losers
//	                          retry next cycle;
//	P3 (parallel over nodes)  switch allocation stages flit moves;
//	P4 (serial, cheap)        staged moves commit in node order.
//
// All random choices derive from splitmix64 hashes of (seed, cycle,
// node), so a run is bit-identical for ANY worker count, including 1 —
// results differ from the serial engine (a different, but equally
// legitimate, arbitration model) yet are reproducible everywhere.
//
// Memory layout: the grant table is a flat slice indexed by the dense
// ChannelID of the contested downstream VC, validity marked by an epoch
// stamp (the cycle number) so it is never cleared; all phase scratch is
// per-worker and reused, so a steady-state parallel Step performs zero
// heap allocations. Worker goroutines are persistent — spawned once at
// EnableParallel, woken by channel sends each phase — because spawning
// goroutines per cycle both allocates and swamps small meshes in
// scheduler overhead. Below fallbackNodes the phases run inline on the
// calling goroutine (identical semantics: the hashed streams do not
// depend on the worker count).
//
// Routing algorithms keep per-instance scratch buffers, so each worker
// needs its own clone; EnableParallel receives them from the caller
// (the registry lives above core). Call DisableParallel (or
// Network.Close) to stop the worker pool.

// fallbackNodes is the worklist length (busy-router count; the full
// node count under DebugFullScan) below which the parallel engine runs
// its node phases inline on the calling goroutine instead of waking the
// worker pool: cross-goroutine handoff costs microseconds per phase,
// which dwarfs the per-node work when only a few hundred routers
// participate.
// Sharding additionally requires GOMAXPROCS > 1 — on a single-CPU host
// the handoff is pure loss at every size (benchmarked in DESIGN.md).
// Semantics are unaffected either way: arbitration derives from hashed
// per-(cycle, node) streams, never from the execution schedule, so
// inline and sharded runs are bit-identical.
const fallbackNodes = 256

// parallelEngine holds the parallel-mode state.
type parallelEngine struct {
	workers int
	algs    []Algorithm // one clone per worker
	hashKey uint64

	reqs    [][]pRequest           // staged requests, per node
	moved   [][]move               // staged flit moves, per node
	cands   []CandidateSet         // per-worker scratch
	sendq   [][NumPorts][]*vcState // per-worker per-direction sender buckets
	senders [][]*vcState           // per-worker sender scratch (nil = injection slot)

	// grants is the flat request–grant table indexed by the downstream
	// VC's ChannelID; grantEpoch[c] == cycle marks grants[c] valid this
	// cycle. Stale entries are never cleared — the epoch stamp makes
	// clearing unnecessary.
	grants     []pGrant
	grantEpoch []int64

	// Persistent worker pool. The calling goroutine acts as worker 0;
	// wake[w-1] signals worker w (1-based) to run the current phase
	// over its shard of phaseWork — the dirty-router worklist (or the
	// constant all-nodes list under DebugFullScan), so workers
	// partition the routers that actually have work, not the mesh.
	phaseFn   func(worker, node int)
	phaseWork []topology.NodeID
	wake      []chan struct{}
	wg        sync.WaitGroup

	// maxprocs caches runtime.GOMAXPROCS at EnableParallel: with one
	// scheduler thread the pool dispatch is pure overhead, so phases
	// run inline regardless of mesh size. forceShard is a test hook
	// that exercises the pool dispatch even where the fallback would
	// normally engage.
	maxprocs   int
	forceShard bool

	// Prebuilt phase bodies (created once so the per-cycle dispatch
	// allocates nothing).
	p1, p3 func(worker, node int)
}

// pRequest is one header's selected channel for this cycle.
type pRequest struct {
	port   int8 // InjectPort for the source queue head
	vc     uint8
	msg    *Message
	choice Channel
}

// pGrant marks the winning requester of one downstream VC.
type pGrant struct {
	node topology.NodeID
	idx  int32 // index into reqs[node]
}

// EnableParallel switches the network to parallel stepping with the
// given worker count and per-worker routing algorithm clones (workers
// entries; they must be built over the same mesh and fault model).
// Pass workers <= 1 with a single clone to get the parallel
// ARBITRATION semantics on one thread (useful to pin determinism).
// Calling it again replaces the previous pool; call DisableParallel or
// Close when done so the worker goroutines exit.
func (n *Network) EnableParallel(workers int, algs []Algorithm) error {
	if workers < 1 {
		return fmt.Errorf("core: workers %d < 1", workers)
	}
	if len(algs) != workers {
		return fmt.Errorf("core: need %d algorithm clones, got %d", workers, len(algs))
	}
	for i, a := range algs {
		if a.NumVCs() != n.Alg.NumVCs() {
			return fmt.Errorf("core: clone %d has %d VCs, network algorithm has %d", i, a.NumVCs(), n.Alg.NumVCs())
		}
	}
	if pe := n.par; pe != nil && pe.workers == workers {
		// Same pool shape (worker count; the mesh is fixed for the
		// network's lifetime): reuse the persistent goroutines and all
		// per-worker scratch. Re-keying the hashed streams from the RNG
		// draws exactly what a fresh EnableParallel would, and the grant
		// epochs return to "never" because a Network.Reset restarts the
		// cycle counter — a stale stamp from the previous run could
		// otherwise collide with a real one.
		pe.algs = algs
		pe.hashKey = uint64(n.rng.Int63())
		for c := range pe.grantEpoch {
			pe.grantEpoch[c] = -1
		}
		return nil
	}
	n.DisableParallel()
	pe := &parallelEngine{
		workers:    workers,
		algs:       algs,
		hashKey:    uint64(n.rng.Int63()),
		reqs:       make([][]pRequest, n.Topo.NodeCount()),
		moved:      make([][]move, n.Topo.NodeCount()),
		cands:      make([]CandidateSet, workers),
		sendq:      make([][NumPorts][]*vcState, workers),
		senders:    make([][]*vcState, workers),
		grants:     make([]pGrant, n.NumChannels()),
		grantEpoch: make([]int64, n.NumChannels()),
		maxprocs:   runtime.GOMAXPROCS(0),
	}
	for c := range pe.grantEpoch {
		pe.grantEpoch[c] = -1
	}
	pe.p1 = n.routeNodeParallel
	pe.p3 = n.switchNodeParallel
	if workers > 1 {
		pe.wake = make([]chan struct{}, workers-1)
		for w := 1; w < workers; w++ {
			ch := make(chan struct{})
			pe.wake[w-1] = ch
			go pe.worker(w, ch)
		}
	}
	n.par = pe
	return nil
}

// DisableParallel returns to serial stepping and stops the worker pool.
func (n *Network) DisableParallel() {
	if n.par == nil {
		return
	}
	for _, ch := range n.par.wake {
		close(ch)
	}
	n.par = nil
}

// worker is the persistent body of pool worker w: each wake-up runs the
// current phase over the worker's strided shard of the worklist.
func (pe *parallelEngine) worker(w int, wake <-chan struct{}) {
	for range wake {
		fn, work, stride := pe.phaseFn, pe.phaseWork, pe.workers
		for i := w; i < len(work); i += stride {
			fn(w, int(work[i]))
		}
		pe.wg.Done()
	}
}

// shouldShard reports whether a phase over the given worklist length is
// worth dispatching to the worker pool: enough busy routers to amortize
// the handoff AND more than one scheduler thread to run them on. The
// threshold now gates on ACTIVITY, not mesh size — a huge mesh at low
// load falls back to the inline loop, because waking workers to visit a
// handful of routers costs more than visiting them.
func (pe *parallelEngine) shouldShard(busy int) bool {
	if pe.forceShard {
		return pe.workers > 1
	}
	return pe.workers > 1 && pe.maxprocs > 1 && busy >= fallbackNodes
}

// forEachWork runs fn over the routers named in work. Long worklists
// shard across the persistent workers (the caller takes shard 0);
// short worklists and single-CPU hosts run inline — see fallbackNodes.
// Sharding never affects results: all randomness comes from hashed
// per-(cycle, node) streams, and no phase writes state shared between
// distinct routers.
func (pe *parallelEngine) forEachWork(work []topology.NodeID, fn func(worker, node int)) {
	if !pe.shouldShard(len(work)) {
		for _, id := range work {
			fn(0, int(id))
		}
		return
	}
	pe.phaseFn, pe.phaseWork = fn, work
	pe.wg.Add(pe.workers - 1)
	for _, ch := range pe.wake {
		ch <- struct{}{}
	}
	for i := 0; i < len(work); i += pe.workers {
		fn(0, int(work[i]))
	}
	pe.wg.Wait()
}

// splitmix64 is the standard splitmix64 finalizer, used to derive
// deterministic per-(cycle, node) random streams.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// prng is a tiny deterministic stream seeded from hashes.
type prng struct{ state uint64 }

func newPRNG(key, cycle uint64, node topology.NodeID, salt uint64) prng {
	return prng{state: splitmix64(key ^ splitmix64(cycle) ^ splitmix64(uint64(node)+salt*0x517cc1b727220a95))}
}

func (p *prng) next() uint64 {
	p.state += 0x9e3779b97f4a7c15
	return splitmix64(p.state)
}

func (p *prng) intn(n int) int {
	return int(p.next() % uint64(n))
}

// routeNodeParallel is P1 for one node: every ready header picks one
// free candidate channel into pe.reqs[i].
func (n *Network) routeNodeParallel(worker, i int) {
	pe := n.par
	r := &n.routers[i]
	pe.reqs[i] = pe.reqs[i][:0]
	alg := pe.algs[worker]
	rng := newPRNG(pe.hashKey, uint64(n.cycle), r.id, 1)
	cands := &pe.cands[worker]
	consider := func(port int8, vc uint8, m *Message) {
		cands.Reset()
		alg.Candidates(m, r.id, cands)
		ch, ok := n.selectFreeHashed(r.id, cands, &rng)
		if !ok {
			return
		}
		pe.reqs[i] = append(pe.reqs[i], pRequest{port: port, vc: vc, msg: m, choice: ch})
	}
	if r.inj.msg == nil && len(r.srcQ) > 0 {
		consider(InjectPort, 0, r.srcQ[0])
	}
	for _, code := range r.active {
		s := r.vcAt(code)
		if s.routed || s.count == 0 {
			continue
		}
		if s.owner.Dst == r.id {
			s.routed = true
			s.out = Channel{Dir: topology.Local}
			s.dvc = nil
			// Routing wait ends at the ejection port. Safe on a worker:
			// a message has exactly one header VC, so exactly one node's
			// P1 touches its accounting fields.
			s.owner.settleWait(n.cycle, acctBlocked)
			continue
		}
		consider(s.port, s.idx, s.owner)
	}
}

// switchNodeParallel is P3 for one node: switch allocation stages the
// node's flit moves into pe.moved[i].
func (n *Network) switchNodeParallel(worker, i int) {
	pe := n.par
	pe.moved[i] = n.switchAllocateNode(i, pe.moved[i][:0], worker)
}

// stepParallel is Step's parallel-mode body. All four phases run over
// the dirty-router worklist (ascending router order — the order the
// full 0..N-1 loops visited): P1 clears and refills pe.reqs only for
// visited routers, so P2/P4 must iterate the same snapshots to avoid
// reading stale per-node scratch from earlier cycles. Under
// DebugFullScan every phase runs over the constant all-nodes list,
// which is byte-for-byte the original engine. Equivalence needs no RNG
// argument here: every random choice hashes (seed, cycle, node), so
// skipping idle nodes — which stage no requests and no moves — cannot
// shift anyone else's stream.
func (n *Network) stepParallel() {
	pe := n.par
	if n.busyCount == 0 && !DebugFullScan {
		// Fully quiescent: no requests, no senders, no moves — only the
		// watchdog (which sees an empty active set) and the clock tick.
		n.watchdog()
		n.cycle++
		return
	}
	work := n.allNodes
	if !DebugFullScan {
		n.collectWork()
		work = n.work
	}

	// P1: every header selects one free candidate.
	pe.forEachWork(work, pe.p1)

	// P2: grant each contested downstream VC to the hash-tournament
	// winner. The table is indexed by the dense ChannelID of the
	// contested VC and epoch-stamped with the cycle number, so no
	// per-cycle clearing happens; the tournament hashes the stable
	// arbKey (see channelid.go) to keep outcomes identical across
	// engine revisions.
	cycle := n.cycle
	for _, from := range work {
		i := int(from)
		for ri := range pe.reqs[i] {
			req := &pe.reqs[i][ri]
			c := n.downstreamChanID(from, req.choice)
			if pe.grantEpoch[c] != cycle {
				pe.grantEpoch[c] = cycle
				pe.grants[c] = pGrant{node: from, idx: int32(ri)}
				continue
			}
			cur := pe.grants[c]
			curReq := &pe.reqs[cur.node][cur.idx]
			k := n.arbKey(from, req.choice)
			if pe.tournament(k, req.msg.ID) < pe.tournament(k, curReq.msg.ID) {
				pe.grants[c] = pGrant{node: from, idx: int32(ri)}
			}
		}
	}
	// Apply grants in node order.
	for _, from := range work {
		i := int(from)
		for ri := range pe.reqs[i] {
			req := &pe.reqs[i][ri]
			c := n.downstreamChanID(from, req.choice)
			if g := pe.grants[c]; pe.grantEpoch[c] != cycle || g.node != from || g.idx != int32(ri) {
				continue
			}
			r := &n.routers[i]
			dr, dvc, ok := n.downstream(r.id, req.choice)
			if !ok || dvc.owner != nil {
				continue // freshness double-check
			}
			dr.claim(req.choice.Dir.Opposite(), int(req.choice.VC), req.msg, n.cycle, n.Cfg.NumVCs)
			n.markBusy(dr.id) // downstream router now owns a VC
			if req.port == InjectPort {
				r.inj = injState{msg: req.msg, out: req.choice, dvc: dvc}
				req.msg.lastMove = n.cycle
			} else {
				s := r.vc(topology.Direction(req.port), int(req.vc), n.Cfg.NumVCs)
				s.routed = true
				s.out = req.choice
				s.dvc = dvc
			}
			// Decomposition: queue wait (inject grant) or routing wait
			// (intermediate hop) ends; blocked until the next move.
			req.msg.settleWait(n.cycle, acctBlocked)
			ringBefore := req.msg.RingIdx
			n.Alg.Advance(req.msg, r.id, req.choice)
			if ringBefore < 0 && req.msg.RingIdx >= 0 {
				req.msg.ringSince = n.cycle
				if n.cycle >= n.statsStart {
					n.stats.RingEntries++
				}
			} else if ringBefore >= 0 && req.msg.RingIdx < 0 {
				req.msg.closeRing(n.cycle)
			}
			if n.tracer != nil {
				n.tracer.HeaderRouted(req.msg, r.id, req.choice, n.cycle)
			}
		}
	}

	// P3: switch allocation, staged per node. Re-collect the worklist:
	// the grant application above may have claimed VCs of routers that
	// were idle at cycle start, and their staged moves (none this cycle,
	// but the visit clears pe.moved for P4) belong to this cycle's
	// traversal, mirroring the serial engine's re-collection.
	if !DebugFullScan {
		n.collectWork()
		work = n.work
	}
	pe.forEachWork(work, pe.p3)

	// P4: serial commit in node order.
	n.moves = n.moves[:0]
	for _, id := range work {
		n.moves = append(n.moves, pe.moved[id]...)
	}
	n.commit()

	n.watchdog()
	n.cycle++
}

// tournament orders competing requesters deterministically.
func (pe *parallelEngine) tournament(key int64, msgID int64) uint64 {
	return splitmix64(pe.hashKey ^ splitmix64(uint64(key)) ^ splitmix64(uint64(msgID)))
}

// selectFreeHashed mirrors Network.allocate with a hashed stream
// instead of the global RNG.
func (n *Network) selectFreeHashed(node topology.NodeID, cands *CandidateSet, rng *prng) (Channel, bool) {
	for t := 0; t < MaxTiers; t++ {
		tier := cands.Tier(t)
		if len(tier) == 0 {
			continue
		}
		// Count free candidates, reservoir-pick per policy.
		switch n.Cfg.Selection {
		case SelectLowestVC:
			var best Channel
			found := false
			for _, ch := range tier {
				if _, dvc, ok := n.downstream(node, ch); !ok || dvc.owner != nil {
					continue
				}
				if !found || ch.VC < best.VC || (ch.VC == best.VC && ch.Dir < best.Dir) {
					best, found = ch, true
				}
			}
			if found {
				return best, true
			}
		default:
			// Random among free channels via reservoir sampling (one
			// pass, no allocation).
			var pick Channel
			seen := 0
			for _, ch := range tier {
				if _, dvc, ok := n.downstream(node, ch); !ok || dvc.owner != nil {
					continue
				}
				seen++
				if rng.intn(seen) == 0 {
					pick = ch
				}
			}
			if seen > 0 {
				return pick, true
			}
		}
	}
	return Channel{}, false
}

// switchAllocateNode is the per-node body of the switch phase, shared
// in spirit with switchPhase but using the hashed stream; it returns
// the staged moves for the node. Sender scratch is per-worker and
// reused across cycles.
func (n *Network) switchAllocateNode(i int, out []move, worker int) []move {
	r := &n.routers[i]
	if len(r.active) == 0 && r.inj.msg == nil {
		return out
	}
	tel := n.linkBusy != nil // ChannelTelemetry; link rows are per-node, race-free
	pe := n.par
	rng := newPRNG(pe.hashKey, uint64(n.cycle), r.id, 2)
	var portUsed [NumPorts]bool
	order := [NumPorts]topology.Direction{topology.East, topology.West, topology.North, topology.South, topology.Local}
	for k := NumPorts - 1; k > 0; k-- {
		j := rng.intn(k + 1)
		order[k], order[j] = order[j], order[k]
	}
	senders := pe.senders[worker]
	// Pre-pass: bucket the routed VCs by output direction in r.active
	// order, then scan only each output's own bucket — the bit-identical
	// rewrite documented in switchPhase (an output with an empty bucket
	// and no injector is skipped without consuming randomness).
	sendq := &pe.sendq[worker]
	for d := range sendq {
		sendq[d] = sendq[d][:0]
	}
	for _, code := range r.active {
		s := r.vcAt(code)
		if s.routed && s.count > 0 {
			sendq[s.out.Dir] = append(sendq[s.out.Dir], s)
		}
	}
	injDir := topology.Direction(NumPorts) // sentinel: no pending injector
	if m := r.inj.msg; m != nil && m.flitsInjected < m.Length {
		injDir = r.inj.out.Dir
	}
	for _, outDir := range order {
		bucket := sendq[outDir]
		if len(bucket) == 0 && injDir != outDir {
			continue
		}
		capacity := 1
		if outDir == topology.Local {
			capacity = n.Cfg.EjectBW
		}
		forwarded := false
		for capacity > 0 {
			senders = senders[:0]
			for _, s := range bucket {
				if portUsed[s.port] || s.stagedOut == n.cycle {
					continue
				}
				if outDir != topology.Local && !n.hasCredit(s.dvc) {
					continue
				}
				senders = append(senders, s)
			}
			if outDir != topology.Local && injDir == outDir && !portUsed[InjectPort] {
				if n.hasCredit(r.inj.dvc) {
					senders = append(senders, nil) // nil = injection slot
				}
			}
			if len(senders) == 0 {
				break
			}
			w := senders[rng.intn(len(senders))]
			switch {
			case w == nil:
				portUsed[InjectPort] = true
				r.inj.dvc.stagedIn = n.cycle
				out = append(out, move{kind: moveInject, node: r.id})
				forwarded = true
			case outDir == topology.Local:
				portUsed[w.port] = true
				w.stagedOut = n.cycle
				out = append(out, move{kind: moveEject, node: r.id, port: w.port, vc: w.idx})
			default:
				portUsed[w.port] = true
				w.stagedOut = n.cycle
				w.dvc.stagedIn = n.cycle
				out = append(out, move{kind: moveLink, node: r.id, port: w.port, vc: w.idx})
				forwarded = true
			}
			capacity--
		}
		// Link occupancy (see switchAllocRouter): demand existed if we
		// got past the skip above.
		if tel && outDir != topology.Local {
			li := LinkID(r.id, outDir)
			n.linkBusy[li]++
			if !forwarded {
				n.linkBlocked[li]++
			}
		}
	}
	pe.senders[worker] = senders[:0]
	return out
}
