package core

import (
	"fmt"
	"sync"

	"wormmesh/internal/topology"
)

// Parallel stepping. The serial engine resolves conflicts by a global
// random service order, which is inherently sequential. The parallel
// engine replaces it with a single-round request–grant handshake (the
// structure of real virtual-channel allocators):
//
//	P1 (parallel over nodes)  every header picks ONE free candidate
//	                          channel using a per-(cycle, node) hashed
//	                          random stream;
//	P2 (serial, cheap)        each contested downstream VC grants one
//	                          requester by a hash tournament; losers
//	                          retry next cycle;
//	P3 (parallel over nodes)  switch allocation stages flit moves;
//	P4 (serial, cheap)        staged moves commit in node order.
//
// All random choices derive from splitmix64 hashes of (seed, cycle,
// node), so a run is bit-identical for ANY worker count, including 1 —
// results differ from the serial engine (a different, but equally
// legitimate, arbitration model) yet are reproducible everywhere.
//
// Routing algorithms keep per-instance scratch buffers, so each worker
// needs its own clone; EnableParallel receives them from the caller
// (the registry lives above core).

// parallelEngine holds the parallel-mode state.
type parallelEngine struct {
	workers int
	algs    []Algorithm // one clone per worker
	hashKey uint64

	reqs  [][]pRequest // staged requests, per node
	moved [][]move     // staged flit moves, per node
	grant map[int64]pGrant
	cands []CandidateSet // per-worker scratch

	wg sync.WaitGroup
}

// pRequest is one header's selected channel for this cycle.
type pRequest struct {
	port   int8 // InjectPort for the source queue head
	vc     uint8
	msg    *Message
	choice Channel
}

// pGrant marks the winning requester of one downstream VC.
type pGrant struct {
	node topology.NodeID
	idx  int // index into reqs[node]
}

// EnableParallel switches the network to parallel stepping with the
// given worker count and per-worker routing algorithm clones (workers
// entries; they must be built over the same mesh and fault model).
// Pass workers <= 1 with a single clone to get the parallel
// ARBITRATION semantics on one thread (useful to pin determinism).
func (n *Network) EnableParallel(workers int, algs []Algorithm) error {
	if workers < 1 {
		return fmt.Errorf("core: workers %d < 1", workers)
	}
	if len(algs) != workers {
		return fmt.Errorf("core: need %d algorithm clones, got %d", workers, len(algs))
	}
	for i, a := range algs {
		if a.NumVCs() != n.Alg.NumVCs() {
			return fmt.Errorf("core: clone %d has %d VCs, network algorithm has %d", i, a.NumVCs(), n.Alg.NumVCs())
		}
	}
	n.par = &parallelEngine{
		workers: workers,
		algs:    algs,
		hashKey: uint64(n.rng.Int63()),
		reqs:    make([][]pRequest, n.Mesh.NodeCount()),
		moved:   make([][]move, n.Mesh.NodeCount()),
		grant:   make(map[int64]pGrant),
		cands:   make([]CandidateSet, workers),
	}
	return nil
}

// DisableParallel returns to serial stepping.
func (n *Network) DisableParallel() { n.par = nil }

// splitmix64 is the standard splitmix64 finalizer, used to derive
// deterministic per-(cycle, node) random streams.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// prng is a tiny deterministic stream seeded from hashes.
type prng struct{ state uint64 }

func newPRNG(key, cycle uint64, node topology.NodeID, salt uint64) prng {
	return prng{state: splitmix64(key ^ splitmix64(cycle) ^ splitmix64(uint64(node)+salt*0x517cc1b727220a95))}
}

func (p *prng) next() uint64 {
	p.state += 0x9e3779b97f4a7c15
	return splitmix64(p.state)
}

func (p *prng) intn(n int) int {
	return int(p.next() % uint64(n))
}

// forEachNode runs fn over all node indices, sharded across the
// configured workers.
func (pe *parallelEngine) forEachNode(nodes int, fn func(worker, node int)) {
	if pe.workers == 1 {
		for i := 0; i < nodes; i++ {
			fn(0, i)
		}
		return
	}
	pe.wg.Add(pe.workers)
	for w := 0; w < pe.workers; w++ {
		go func(w int) {
			defer pe.wg.Done()
			for i := w; i < nodes; i += pe.workers {
				fn(w, i)
			}
		}(w)
	}
	pe.wg.Wait()
}

// stepParallel is Step's parallel-mode body.
func (n *Network) stepParallel() {
	pe := n.par
	nodes := n.Mesh.NodeCount()

	// P1: every header selects one free candidate.
	pe.forEachNode(nodes, func(worker, i int) {
		r := &n.routers[i]
		pe.reqs[i] = pe.reqs[i][:0]
		alg := pe.algs[worker]
		rng := newPRNG(pe.hashKey, uint64(n.cycle), r.id, 1)
		cands := &pe.cands[worker]
		consider := func(port int8, vc uint8, m *Message) {
			cands.Reset()
			alg.Candidates(m, r.id, cands)
			ch, ok := n.selectFreeHashed(r.id, cands, &rng)
			if !ok {
				return
			}
			pe.reqs[i] = append(pe.reqs[i], pRequest{port: port, vc: vc, msg: m, choice: ch})
		}
		if r.inj.msg == nil && len(r.srcQ) > 0 {
			consider(InjectPort, 0, r.srcQ[0])
		}
		for _, code := range r.active {
			s := r.vcAt(code, n.Cfg.NumVCs)
			if s.routed || len(s.buf) == 0 {
				continue
			}
			if s.owner.Dst == r.id {
				s.routed = true
				s.out = Channel{Dir: topology.Local}
				continue
			}
			consider(int8(code/int32(n.Cfg.NumVCs)), uint8(code%int32(n.Cfg.NumVCs)), s.owner)
		}
	})

	// P2: grant each contested downstream VC to the hash-tournament
	// winner; apply grants.
	for k := range pe.grant {
		delete(pe.grant, k)
	}
	keyOf := func(ch Channel, from topology.NodeID) int64 {
		nb := n.Mesh.NeighborID(from, ch.Dir)
		return int64(nb)*int64(NumPorts*256) + int64(ch.Dir.Opposite())*256 + int64(ch.VC)
	}
	for i := 0; i < nodes; i++ {
		for ri, req := range pe.reqs[i] {
			k := keyOf(req.choice, topology.NodeID(i))
			cur, ok := pe.grant[k]
			if !ok {
				pe.grant[k] = pGrant{node: topology.NodeID(i), idx: ri}
				continue
			}
			curReq := pe.reqs[cur.node][cur.idx]
			if pe.tournament(k, req.msg.ID) < pe.tournament(k, curReq.msg.ID) {
				pe.grant[k] = pGrant{node: topology.NodeID(i), idx: ri}
			}
		}
	}
	for i := 0; i < nodes; i++ {
		for ri, req := range pe.reqs[i] {
			k := keyOf(req.choice, topology.NodeID(i))
			if g := pe.grant[k]; g.node != topology.NodeID(i) || g.idx != ri {
				continue
			}
			r := &n.routers[i]
			dr, dvc, ok := n.downstream(r.id, req.choice)
			if !ok || dvc.owner != nil {
				continue // freshness double-check
			}
			dr.claim(req.choice.Dir.Opposite(), int(req.choice.VC), req.msg, n.cycle, n.Cfg.NumVCs)
			if req.port == InjectPort {
				r.inj = injState{msg: req.msg, out: req.choice}
				req.msg.lastMove = n.cycle
			} else {
				s := &r.in[req.port][req.vc]
				s.routed = true
				s.out = req.choice
			}
			ringBefore := req.msg.RingIdx
			n.Alg.Advance(req.msg, r.id, req.choice)
			if ringBefore < 0 && req.msg.RingIdx >= 0 && n.cycle >= n.statsStart {
				n.stats.RingEntries++
			}
			if n.tracer != nil {
				n.tracer.HeaderRouted(req.msg, r.id, req.choice, n.cycle)
			}
		}
	}

	// P3: switch allocation, staged per node.
	pe.forEachNode(nodes, func(worker, i int) {
		pe.moved[i] = n.switchAllocateNode(i, pe.moved[i][:0], worker)
	})

	// P4: serial commit in node order.
	n.moves = n.moves[:0]
	for i := 0; i < nodes; i++ {
		n.moves = append(n.moves, pe.moved[i]...)
	}
	n.commit()

	n.watchdog()
	n.cycle++
}

// tournament orders competing requesters deterministically.
func (pe *parallelEngine) tournament(key int64, msgID int64) uint64 {
	return splitmix64(pe.hashKey ^ splitmix64(uint64(key)) ^ splitmix64(uint64(msgID)))
}

// selectFreeHashed mirrors Network.allocate with a hashed stream
// instead of the global RNG.
func (n *Network) selectFreeHashed(node topology.NodeID, cands *CandidateSet, rng *prng) (Channel, bool) {
	for t := 0; t < MaxTiers; t++ {
		tier := cands.Tier(t)
		if len(tier) == 0 {
			continue
		}
		// Count free candidates, reservoir-pick per policy.
		switch n.Cfg.Selection {
		case SelectLowestVC:
			var best Channel
			found := false
			for _, ch := range tier {
				if _, dvc, ok := n.downstream(node, ch); !ok || dvc.owner != nil {
					continue
				}
				if !found || ch.VC < best.VC || (ch.VC == best.VC && ch.Dir < best.Dir) {
					best, found = ch, true
				}
			}
			if found {
				return best, true
			}
		default:
			// Random among free channels via reservoir sampling (one
			// pass, no allocation).
			var pick Channel
			seen := 0
			for _, ch := range tier {
				if _, dvc, ok := n.downstream(node, ch); !ok || dvc.owner != nil {
					continue
				}
				seen++
				if rng.intn(seen) == 0 {
					pick = ch
				}
			}
			if seen > 0 {
				return pick, true
			}
		}
	}
	return Channel{}, false
}

// switchAllocateNode is the per-node body of the switch phase, shared
// in spirit with switchPhase but using the hashed stream; it returns
// the staged moves for the node.
func (n *Network) switchAllocateNode(i int, out []move, worker int) []move {
	r := &n.routers[i]
	if len(r.active) == 0 && r.inj.msg == nil {
		return out
	}
	rng := newPRNG(n.par.hashKey, uint64(n.cycle), r.id, 2)
	var portUsed [NumPorts]bool
	order := [NumPorts]topology.Direction{topology.East, topology.West, topology.North, topology.South, topology.Local}
	for k := NumPorts - 1; k > 0; k-- {
		j := rng.intn(k + 1)
		order[k], order[j] = order[j], order[k]
	}
	var senders []sender
	for _, outDir := range order {
		capacity := 1
		if outDir == topology.Local {
			capacity = n.Cfg.EjectBW
		}
		for capacity > 0 {
			senders = senders[:0]
			for _, code := range r.active {
				port := int8(code / int32(n.Cfg.NumVCs))
				if portUsed[port] {
					continue
				}
				s := r.vcAt(code, n.Cfg.NumVCs)
				if !s.routed || s.out.Dir != outDir || len(s.buf) == 0 || s.stagedOut == n.cycle {
					continue
				}
				if outDir != topology.Local {
					_, dvc, ok := n.downstream(r.id, s.out)
					if !ok || !n.hasCredit(dvc) {
						continue
					}
				}
				senders = append(senders, sender{port: port, vc: uint8(code % int32(n.Cfg.NumVCs))})
			}
			if outDir != topology.Local && r.inj.msg != nil && r.inj.out.Dir == outDir && !portUsed[InjectPort] {
				m := r.inj.msg
				if m.flitsInjected < m.Length {
					if _, dvc, ok := n.downstream(r.id, r.inj.out); ok && n.hasCredit(dvc) {
						senders = append(senders, sender{port: InjectPort})
					}
				}
			}
			if len(senders) == 0 {
				break
			}
			w := senders[rng.intn(len(senders))]
			portUsed[w.port] = true
			switch {
			case w.port == InjectPort:
				_, dvc, _ := n.downstream(r.id, r.inj.out)
				dvc.stagedIn = n.cycle
				out = append(out, move{kind: moveInject, node: r.id})
			case outDir == topology.Local:
				s := &r.in[w.port][w.vc]
				s.stagedOut = n.cycle
				out = append(out, move{kind: moveEject, node: r.id, port: w.port, vc: w.vc})
			default:
				s := &r.in[w.port][w.vc]
				s.stagedOut = n.cycle
				_, dvc, _ := n.downstream(r.id, s.out)
				dvc.stagedIn = n.cycle
				out = append(out, move{kind: moveLink, node: r.id, port: w.port, vc: w.vc})
			}
			capacity--
		}
	}
	return out
}
