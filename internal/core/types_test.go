package core

import (
	"math"
	"strings"
	"testing"

	"wormmesh/internal/topology"
)

func TestCandidateSetBasics(t *testing.T) {
	var cs CandidateSet
	if !cs.Empty() {
		t.Error("fresh set not empty")
	}
	cs.Add(0, Channel{Dir: topology.East, VC: 1})
	cs.AddVCs(1, topology.North, 2, 4)
	if cs.Empty() {
		t.Error("populated set reported empty")
	}
	if got := cs.Total(); got != 4 {
		t.Errorf("Total = %d, want 4", got)
	}
	if got := len(cs.Tier(0)); got != 1 {
		t.Errorf("tier0 = %d, want 1", got)
	}
	if got := len(cs.Tier(1)); got != 3 {
		t.Errorf("tier1 = %d, want 3", got)
	}
	for i, ch := range cs.Tier(1) {
		if ch.Dir != topology.North || int(ch.VC) != 2+i {
			t.Errorf("tier1[%d] = %v", i, ch)
		}
	}
	cs.Reset()
	if !cs.Empty() || cs.Total() != 0 {
		t.Error("Reset did not clear")
	}
}

func TestCandidateSetFilter(t *testing.T) {
	var cs CandidateSet
	cs.AddVCs(0, topology.East, 0, 3)
	cs.AddVCs(2, topology.West, 0, 1)
	cs.Filter(func(ch Channel) bool { return ch.VC%2 == 0 })
	if got := len(cs.Tier(0)); got != 2 {
		t.Errorf("tier0 after filter = %d, want 2", got)
	}
	if got := len(cs.Tier(2)); got != 1 {
		t.Errorf("tier2 after filter = %d, want 1", got)
	}
	cs.Filter(func(Channel) bool { return false })
	if !cs.Empty() {
		t.Error("filter-all did not empty the set")
	}
}

func TestClassifyDir(t *testing.T) {
	tests := []struct {
		src, dst topology.Coord
		want     DirClass
	}{
		{topology.Coord{X: 0, Y: 0}, topology.Coord{X: 5, Y: 3}, WE},
		{topology.Coord{X: 5, Y: 0}, topology.Coord{X: 0, Y: 9}, EW},
		{topology.Coord{X: 3, Y: 0}, topology.Coord{X: 3, Y: 7}, NS},
		{topology.Coord{X: 3, Y: 7}, topology.Coord{X: 3, Y: 0}, SN},
	}
	for _, tc := range tests {
		if got := ClassifyDir(tc.src, tc.dst); got != tc.want {
			t.Errorf("ClassifyDir(%v,%v) = %v, want %v", tc.src, tc.dst, got, tc.want)
		}
	}
}

func TestDirClassString(t *testing.T) {
	for dc, want := range map[DirClass]string{WE: "WE", EW: "EW", NS: "NS", SN: "SN"} {
		if dc.String() != want {
			t.Errorf("%v.String() = %q", dc, dc.String())
		}
	}
	if !strings.Contains(DirClass(9).String(), "9") {
		t.Error("unknown DirClass string uninformative")
	}
}

func TestMessageAccessors(t *testing.T) {
	m := NewMessage(7, 3, 9, 5)
	if m.Delivered() {
		t.Error("fresh message delivered")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Latency on undelivered message did not panic")
			}
		}()
		m.Latency()
	}()
	m.GenTime, m.InjectTime, m.DeliverTime = 10, 15, 40
	if m.Latency() != 30 || m.NetworkLatency() != 25 {
		t.Errorf("latencies = %d, %d", m.Latency(), m.NetworkLatency())
	}
	if s := m.String(); !strings.Contains(s, "msg#7") {
		t.Errorf("String = %q", s)
	}
}

func TestNewMessagePanicsOnBadLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero-length message did not panic")
		}
	}()
	NewMessage(1, 0, 1, 0)
}

func TestFlitHeadTail(t *testing.T) {
	m := NewMessage(1, 0, 1, 3)
	if f := (Flit{Msg: m, Index: 0}); !f.Head() || f.Tail() {
		t.Error("flit 0 classification wrong")
	}
	if f := (Flit{Msg: m, Index: 2}); f.Head() || !f.Tail() {
		t.Error("tail flit classification wrong")
	}
	single := NewMessage(2, 0, 1, 1)
	if f := (Flit{Msg: single, Index: 0}); !f.Head() || !f.Tail() {
		t.Error("single-flit message should be both head and tail")
	}
}

func TestConfigValidate(t *testing.T) {
	good := DefaultConfig()
	if err := good.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := []func(*Config){
		func(c *Config) { c.NumVCs = 0 },
		func(c *Config) { c.NumVCs = 300 },
		func(c *Config) { c.BufDepth = 0 },
		func(c *Config) { c.EjectBW = 0 },
		func(c *Config) { c.DeadlockCycles = 0 },
		func(c *Config) { c.MaxSourceQueue = -1 },
	}
	for i, mutate := range bad {
		c := DefaultConfig()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestStatsMath(t *testing.T) {
	var s Stats
	s.init(4, 9)
	if !math.IsNaN(s.AvgLatency()) || !math.IsNaN(s.AvgHops()) || !math.IsNaN(s.AvgDetour()) {
		t.Error("empty stats should be NaN")
	}
	if s.Throughput() != 0 {
		t.Error("empty throughput nonzero")
	}
	m := NewMessage(1, 0, 8, 4)
	m.GenTime, m.InjectTime, m.DeliverTime, m.Hops = 100, 110, 160, 6
	s.recordDelivery(m, 50, 4)
	m2 := NewMessage(2, 0, 8, 4)
	m2.GenTime, m2.InjectTime, m2.DeliverTime, m2.Hops = 120, 125, 200, 4
	s.recordDelivery(m2, 50, 4)
	if got := s.AvgLatency(); got != 70 {
		t.Errorf("AvgLatency = %v, want 70", got)
	}
	if got := s.LatencyMax; got != 80 {
		t.Errorf("LatencyMax = %d, want 80", got)
	}
	if got := s.AvgHops(); got != 5 {
		t.Errorf("AvgHops = %v, want 5", got)
	}
	if got := s.AvgDetour(); got != 1 {
		t.Errorf("AvgDetour = %v, want 1", got)
	}
	if sd := s.LatencyStdDev(); math.Abs(sd-14.1421) > 0.01 {
		t.Errorf("LatencyStdDev = %v", sd)
	}
	// Messages generated before the window count for throughput only.
	m3 := NewMessage(3, 0, 8, 4)
	m3.GenTime, m3.InjectTime, m3.DeliverTime = 10, 20, 90
	s.recordDelivery(m3, 50, 4)
	if s.LatencyCount != 2 || s.Delivered != 3 {
		t.Errorf("window filtering wrong: latencyCount=%d delivered=%d", s.LatencyCount, s.Delivered)
	}
}

func TestStatsThroughput(t *testing.T) {
	var s Stats
	s.init(1, 1)
	s.Cycles = 1000
	s.HealthyNodes = 100
	s.DeliveredFlits = 5000
	s.Delivered = 50
	if got := s.Throughput(); got != 0.05 {
		t.Errorf("Throughput = %v, want 0.05", got)
	}
	if got := s.MessageThroughput(); got != 0.0005 {
		t.Errorf("MessageThroughput = %v", got)
	}
}

func TestVCUtilizationComputation(t *testing.T) {
	var s Stats
	s.init(2, 4)
	s.Cycles = 100
	s.PhysicalChannels = 10
	s.VCBusy[0] = 500 // 50% of 100 cycles x 10 channels
	s.VCBusy[1] = 100
	u := s.VCUtilization()
	if u[0] != 0.5 || u[1] != 0.1 {
		t.Errorf("utilization = %v", u)
	}
}

func TestSelectionPolicyString(t *testing.T) {
	if SelectRandomChannel.String() != "random-channel" ||
		SelectRandomDir.String() != "random-dir" ||
		SelectLowestVC.String() != "lowest-vc" {
		t.Error("selection policy names wrong")
	}
}

func TestChannelString(t *testing.T) {
	ch := Channel{Dir: topology.East, VC: 3}
	if got := ch.String(); got != "East/vc3" {
		t.Errorf("Channel.String = %q", got)
	}
}
