package core

import "fmt"

// KillPolicy selects what the deadlock watchdog does with its victim.
type KillPolicy uint8

// Kill policies.
const (
	// KillDrop tears the victim down and counts it; its flits are lost.
	KillDrop KillPolicy = iota
	// KillReinject tears the victim down and re-enqueues a fresh copy
	// at its source, preserving the original generation time so the
	// recovery stall shows up as latency.
	KillReinject
)

// Config holds the router micro-architecture parameters the paper does
// not vary (but also does not always state); defaults follow the
// values common in the fault-tolerant wormhole literature.
type Config struct {
	// NumVCs is the number of virtual channels per physical channel.
	// The paper uses 24 for the 10×10 mesh.
	NumVCs int
	// BufDepth is the flit capacity of each virtual-channel buffer.
	BufDepth int
	// EjectBW is the number of flits a node can consume per cycle.
	EjectBW int
	// DeadlockCycles is the watchdog threshold: if no flit in the whole
	// network moves for this many cycles, the watchdog triggers.
	DeadlockCycles int64
	// MessageStallCycles additionally triggers recovery for a single
	// message whose flits have not moved for this many cycles while the
	// rest of the network is making progress (catches local deadlock
	// cycles that global motion masks). Zero disables the per-message
	// check.
	MessageStallCycles int64
	// StallScanInterval is how often (in cycles) the watchdog scans the
	// active set for per-message stalls and livelocks. The scan is
	// O(in-flight messages), so it runs on a coarse cadence rather than
	// every cycle; the historical hardcoded value was 1024, which stays
	// the default. Values <= 0 fall back to 1024 at construction so
	// hand-built Configs keep their old behavior; tests that need a
	// stall scan to fire deterministically fast set it to 1.
	StallScanInterval int64
	// MaxHops is the livelock guard: a message that exceeds this many
	// hops (possible only through misrouting or pathological f-ring
	// circling) is torn down and counted. Zero disables the guard.
	MaxHops int32
	// Kill selects the recovery action.
	Kill KillPolicy
	// Selection picks among free candidate channels.
	Selection SelectionPolicy
	// MaxSourceQueue bounds the per-node source queue; when full, newly
	// generated messages are refused (counted as rejected offers).
	// Zero means unbounded.
	MaxSourceQueue int
	// ChannelTelemetry enables the per-link congestion counters (flits
	// forwarded, busy cycles, blocked cycles per directional physical
	// link, with f-ring tagging — see telemetry.go). Recording is
	// read-only and RNG-free, so Stats are bit-identical either way;
	// the arrays are sized at construction, so toggling requires a new
	// network (a Runner rebuilds automatically on a Config change).
	ChannelTelemetry bool
}

// DefaultConfig returns the configuration used throughout the paper's
// experiments: 24 VCs per physical channel, 2-flit VC buffers, one
// ejection flit per cycle.
func DefaultConfig() Config {
	return Config{
		NumVCs:             24,
		BufDepth:           2,
		EjectBW:            1,
		DeadlockCycles:     3000,
		MessageStallCycles: 5000,
		StallScanInterval:  1024,
		MaxHops:            0, // set per-mesh by the sim layer
		Kill:               KillDrop,
		Selection:          SelectRandomChannel,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.NumVCs < 1 || c.NumVCs > 255 {
		return fmt.Errorf("core: NumVCs %d out of range [1,255]", c.NumVCs)
	}
	if c.BufDepth < 1 {
		return fmt.Errorf("core: BufDepth %d < 1", c.BufDepth)
	}
	if c.EjectBW < 1 {
		return fmt.Errorf("core: EjectBW %d < 1", c.EjectBW)
	}
	if c.DeadlockCycles < 1 {
		return fmt.Errorf("core: DeadlockCycles %d < 1", c.DeadlockCycles)
	}
	if c.MaxSourceQueue < 0 {
		return fmt.Errorf("core: MaxSourceQueue %d < 0", c.MaxSourceQueue)
	}
	return nil
}
