package core

import (
	"bytes"
	"reflect"
	"testing"

	"wormmesh/internal/topology"
)

// driveTraffic runs a small deterministic workload that produces all
// header-level event kinds except kill/watchdog: two crossing messages
// delivered on a 4x4 mesh.
func driveTraffic(t *testing.T, n *Network) {
	t.Helper()
	a := offer(t, n, 1, topology.Coord{X: 0, Y: 0}, topology.Coord{X: 3, Y: 2}, 5)
	b := offer(t, n, 2, topology.Coord{X: 3, Y: 3}, topology.Coord{X: 0, Y: 1}, 5)
	for !a.Delivered() || !b.Delivered() {
		n.Step()
		if n.Cycle() > 500 {
			t.Fatal("traffic not delivered")
		}
	}
}

// TestFlightRecorderMatchesRecorder locks in the dump-format contract:
// with a ring deep enough to hold the whole run, the flight recorder's
// decoded events are exactly the JSONL Recorder's stream — same events,
// same order, same fields — so every trace tool reads both identically.
func TestFlightRecorderMatchesRecorder(t *testing.T) {
	mesh := topology.New(4, 4)
	n := newTestNetwork(t, mesh, nil, xyAlg{mesh: mesh, vcs: 4}, testConfig(), 1)
	var buf bytes.Buffer
	rec := NewRecorder(&buf)
	rec.IncludeFlits = true
	n.SetTracer(rec)
	fr := NewFlightRecorder(4096)
	n.SetFlightRecorder(fr)

	driveTraffic(t, n)
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	want, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(want) == 0 {
		t.Fatal("recorder saw no events")
	}
	got := fr.Events()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("flight recorder events diverge from recorder stream:\n got %d events %+v\nwant %d events %+v",
			len(got), got, len(want), want)
	}
	if fr.Total() != rec.Events() {
		t.Errorf("Total = %d, recorder events = %d", fr.Total(), rec.Events())
	}

	// WriteTrace must round-trip through ReadTrace to the same events.
	var dump bytes.Buffer
	if err := fr.WriteTrace(&dump); err != nil {
		t.Fatal(err)
	}
	redecoded, err := ReadTrace(&dump)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(redecoded, want) {
		t.Error("WriteTrace dump does not round-trip to the recorder stream")
	}
}

// TestFlightRecorderRingWrap verifies the ring semantics after
// overflow: the recorder holds exactly the LAST capacity events of the
// run, oldest first, and Last(n) returns a suffix of that.
func TestFlightRecorderRingWrap(t *testing.T) {
	mesh := topology.New(4, 4)
	n := newTestNetwork(t, mesh, nil, xyAlg{mesh: mesh, vcs: 4}, testConfig(), 1)
	var buf bytes.Buffer
	rec := NewRecorder(&buf)
	rec.IncludeFlits = true
	n.SetTracer(rec)
	const capEvents = 8
	fr := NewFlightRecorder(capEvents)
	n.SetFlightRecorder(fr)

	driveTraffic(t, n)
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	full, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(full) <= capEvents {
		t.Fatalf("workload produced only %d events, need > %d to wrap", len(full), capEvents)
	}
	if fr.Len() != capEvents || fr.Cap() != capEvents {
		t.Fatalf("Len/Cap = %d/%d, want %d/%d", fr.Len(), fr.Cap(), capEvents, capEvents)
	}
	if fr.Total() != int64(len(full)) {
		t.Errorf("Total = %d, want %d", fr.Total(), len(full))
	}
	want := full[len(full)-capEvents:]
	if got := fr.Events(); !reflect.DeepEqual(got, want) {
		t.Errorf("wrapped ring holds %+v, want trailing events %+v", got, want)
	}
	if got, want := fr.Last(3), full[len(full)-3:]; !reflect.DeepEqual(got, want) {
		t.Errorf("Last(3) = %+v, want %+v", got, want)
	}
	if got := fr.Last(capEvents * 4); !reflect.DeepEqual(got, want) {
		t.Errorf("Last(> Len) = %d events, want the full ring (%d)", len(got), capEvents)
	}

	fr.Reset()
	if fr.Len() != 0 || fr.Total() != 0 {
		t.Errorf("after Reset: Len=%d Total=%d, want 0/0", fr.Len(), fr.Total())
	}
	if fr.Cap() != capEvents {
		t.Errorf("Reset dropped the ring storage: Cap=%d", fr.Cap())
	}
}

// TestFlightRecorderExcludesFlits checks the volume knob: with
// IncludeFlits off, per-flit link traversals are dropped while the
// header-level events stay.
func TestFlightRecorderExcludesFlits(t *testing.T) {
	mesh := topology.New(4, 4)
	n := newTestNetwork(t, mesh, nil, xyAlg{mesh: mesh, vcs: 4}, testConfig(), 1)
	fr := NewFlightRecorder(4096)
	fr.IncludeFlits = false
	n.SetFlightRecorder(fr)
	driveTraffic(t, n)
	kinds := map[string]int{}
	for _, e := range fr.Events() {
		kinds[e.Kind]++
	}
	if kinds["flit"] != 0 {
		t.Errorf("recorded %d flit events despite IncludeFlits=false", kinds["flit"])
	}
	if kinds["inject"] != 2 || kinds["deliver"] != 2 {
		t.Errorf("kinds = %v, want 2 injects and 2 delivers", kinds)
	}
}

// TestFlightRecorderSummarizes feeds a flight dump through the trace
// summary pipeline — the recorder's whole point is that offline tools
// need no second code path.
func TestFlightRecorderSummarizes(t *testing.T) {
	mesh := topology.New(4, 4)
	n := newTestNetwork(t, mesh, nil, xyAlg{mesh: mesh, vcs: 4}, testConfig(), 1)
	fr := NewFlightRecorder(4096)
	n.SetFlightRecorder(fr)
	driveTraffic(t, n)
	s := SummarizeTrace(fr.Events())
	if s.Messages != 2 || s.Delivered != 2 || s.Killed != 0 {
		t.Errorf("summary = %+v, want 2 messages delivered", s)
	}
	if s.FlitMoves == 0 {
		t.Error("summary counted no flit moves")
	}
}

// TestStepLoadedAllocsWithFlightRecorder extends the zero-allocation
// budget to the observed engine: a loaded steady-state Step with the
// flight recorder ring wrapping every cycle must still never touch the
// heap. This is the recorder's admission ticket for long sweeps.
func TestStepLoadedAllocsWithFlightRecorder(t *testing.T) {
	var mesh topology.Topology = topology.New(10, 10) // box once, not per call

	n, rng, id := loadNetwork(t, mesh, 0)
	fr := NewFlightRecorder(1024)
	n.SetFlightRecorder(fr)
	// Prime the ring past its first wrap so the append path is the
	// overwrite branch throughout the measured region.
	for i := 0; i < 50; i++ {
		stepLoaded(n, mesh, rng, id)
	}
	if fr.Len() != fr.Cap() {
		t.Fatalf("ring not saturated before measurement: %d/%d", fr.Len(), fr.Cap())
	}
	allocs := testing.AllocsPerRun(500, func() {
		stepLoaded(n, mesh, rng, id)
	})
	if allocs != 0 {
		t.Errorf("loaded Step with flight recorder allocates %.2f objects/cycle, want 0", allocs)
	}
}
