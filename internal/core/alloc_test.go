package core

import (
	"math/rand"
	"testing"

	"wormmesh/internal/topology"
)

// loadNetwork fills a network with pooled traffic and advances it until
// the arena and every internal scratch slice have reached steady-state
// capacity, so the measured region below performs no growth.
func loadNetwork(tb testing.TB, mesh topology.Topology, workers int) (*Network, *rand.Rand, *int64) {
	return loadNetworkAlg(tb, mesh, workers, func() Algorithm { return xyAlg{mesh: mesh, vcs: 8} })
}

// loadNetworkAlg is loadNetwork with a caller-chosen algorithm factory
// (one instance per worker clone), so torus workloads can use the
// dateline discipline.
func loadNetworkAlg(tb testing.TB, mesh topology.Topology, workers int, alg func() Algorithm) (*Network, *rand.Rand, *int64) {
	tb.Helper()
	cfg := DefaultConfig()
	cfg.NumVCs = 8
	cfg.MaxSourceQueue = 4
	n, err := NewNetwork(mesh, nil, alg(), cfg, rand.New(rand.NewSource(1)))
	if err != nil {
		tb.Fatal(err)
	}
	if workers >= 1 {
		clones := make([]Algorithm, workers)
		for i := range clones {
			clones[i] = alg()
		}
		if err := n.EnableParallel(workers, clones); err != nil {
			tb.Fatal(err)
		}
	}
	rng := rand.New(rand.NewSource(2))
	id := new(int64)
	// Warm up: drive enough traffic that the message pool, active
	// slices, source queues and parallel scratch tables grow to their
	// steady-state capacity. 24×24 under this load plateaus at several
	// hundred messages in flight, so run well past the ramp.
	for i := 0; i < 6000; i++ {
		stepLoaded(n, mesh, rng, id)
	}
	// Stock the arena with a cushion: offers run before the cycle's
	// deliveries recycle, so the pool transiently dips below its
	// steady-state level; the cushion absorbs that dip and ordinary
	// in-flight fluctuation without falling back to the heap.
	cushion := make([]*Message, 512)
	for i := range cushion {
		cushion[i] = n.AcquireMessage(0, 0, 1, 16)
	}
	for _, m := range cushion {
		n.recycle(m)
	}
	return n, rng, id
}

// stepLoaded is one cycle of the allocation-budget workload: offer up
// to four pooled messages, then step.
func stepLoaded(n *Network, mesh topology.Topology, rng *rand.Rand, id *int64) {
	for k := 0; k < 4; k++ {
		src := topology.NodeID(rng.Intn(mesh.NodeCount()))
		dst := topology.NodeID(rng.Intn(mesh.NodeCount()))
		if src != dst {
			*id++
			m := n.AcquireMessage(*id, src, dst, 16)
			m.GenTime = n.Cycle()
			n.Offer(m)
		}
	}
	n.Step()
}

// TestStepLoadedAllocs locks in the zero-allocation steady state of the
// serial engine: once the arena is warm, a loaded Step (including the
// Offer path) must not touch the heap.
func TestStepLoadedAllocs(t *testing.T) {
	// Interface-typed so the measured closure does not re-box the
	// concrete Mesh into the Topology parameter on every call.
	var mesh topology.Topology = topology.New(10, 10)
	n, rng, id := loadNetwork(t, mesh, 0)
	allocs := testing.AllocsPerRun(500, func() {
		stepLoaded(n, mesh, rng, id)
	})
	if allocs != 0 {
		t.Errorf("serial loaded Step allocates %.2f objects/cycle, want 0", allocs)
	}
}

// TestStepLoadedAllocsTorus locks in the same zero-allocation budget on
// the torus backend: wrap links and the dateline VC discipline must not
// introduce heap traffic into a loaded Step.
func TestStepLoadedAllocsTorus(t *testing.T) {
	// Interface-typed so the measured closure does not re-box the
	// concrete Torus into the Topology parameter on every call.
	var torus topology.Topology = topology.NewTorus(10, 10)
	n, rng, id := loadNetworkAlg(t, torus, 0, func() Algorithm { return torusXYAlg{topo: torus, vcs: 8} })
	allocs := testing.AllocsPerRun(500, func() {
		stepLoaded(n, torus, rng, id)
	})
	if allocs != 0 {
		t.Errorf("torus loaded Step allocates %.2f objects/cycle, want 0", allocs)
	}
}

// TestStepParallelAllocs does the same for the parallel request–grant
// engine. With 4 workers the forceShard hook makes the persistent
// worker pool really run even though AllocsPerRun pins GOMAXPROCS to 1
// (which would otherwise engage the single-CPU inline fallback):
// goroutine wake-ups must not allocate either. AllocsPerRun's counter
// is process-global (runtime.MemStats.Mallocs), so worker-goroutine
// allocations are included in the measurement.
func TestStepParallelAllocs(t *testing.T) {
	for _, workers := range []int{1, 4} {
		n, rng, id := loadNetwork(t, topology.New(24, 24), workers)
		if workers > 1 {
			n.par.forceShard = true
		}
		mesh := n.Topo
		allocs := testing.AllocsPerRun(200, func() {
			stepLoaded(n, mesh, rng, id)
		})
		n.Close()
		if allocs != 0 {
			t.Errorf("parallel loaded Step (workers=%d) allocates %.2f objects/cycle, want 0", workers, allocs)
		}
	}
}

// TestValidateAllocs locks in the allocation-free invariant checker
// (it runs every cycle under the engine tests' watchdog cadence).
func TestValidateAllocs(t *testing.T) {
	mesh := topology.New(10, 10)
	n, _, _ := loadNetwork(t, mesh, 0)
	allocs := testing.AllocsPerRun(100, func() {
		if err := n.Validate(); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("Validate allocates %.2f objects/call, want 0", allocs)
	}
}

// TestMessagePoolRecycles confirms delivered pooled messages return to
// the arena instead of leaking: after draining, the pool holds every
// message the run acquired.
func TestMessagePoolRecycles(t *testing.T) {
	mesh := topology.New(10, 10)
	n, rng, id := loadNetwork(t, mesh, 0)
	for i := 0; i < 5000 && n.InFlight() > 0; i++ {
		n.Step()
	}
	_ = rng
	if n.InFlight() != 0 {
		t.Fatalf("network did not drain: %d messages in flight", n.InFlight())
	}
	if n.PoolSize() == 0 {
		t.Fatal("drained network has an empty message pool; recycling is broken")
	}
	if got := int64(n.PoolSize()); got > *id {
		t.Fatalf("pool holds %d messages but only %d were acquired", got, *id)
	}
}
