package core

import "math"

// Stats accumulates the measurements the paper reports: latency,
// throughput, per-virtual-channel utilization, and per-node traffic
// load, over one measurement window.
type Stats struct {
	Cycles       int64 // length of the measurement window
	HealthyNodes int   // traffic-carrying nodes

	Generated int64 // messages offered and accepted
	Refused   int64 // offers rejected by a bounded source queue
	Injected  int64 // headers that left their source queue
	Delivered int64 // tails ejected at their destination

	DeliveredFlits int64 // flits consumed at destinations
	FlitHops       int64 // flit-link traversals (inject + link moves)

	// Latency over messages generated inside the window and delivered.
	LatencyCount  int64
	LatencySum    int64
	LatencySumSq  float64
	LatencyMax    int64
	NetLatencySum int64
	HopsSum       int64 // header hops of those messages
	MinHopsSum    int64 // their minimal distances (detour accounting)

	// Latency decomposition: per-component sums over the same measured
	// messages as LatencySum, so each mean component is Sum/LatencyCount
	// and Queue+Route+Blocked+Moving == LatencySum exactly (LatRingSum
	// is an overlay, counted inside the other buckets too).
	LatQueueSum   int64 // source-queue wait
	LatRouteSum   int64 // header routing (VC-allocation) wait
	LatBlockedSum int64 // credit/switch blocked
	LatMovingSum  int64 // cycles with flit movement
	LatRingSum    int64 // f-ring traversal overlay

	// LatencyHist is the log2-bucketed histogram of measured message
	// latencies; Percentile reads p50/p95/p99 from it.
	LatencyHist LatencyHist

	Killed         int64 // messages torn down by recovery (all causes)
	KilledGlobal   int64 // victims of the global deadlock watchdog
	KilledStall    int64 // per-message stall kills (MessageStallCycles)
	KilledLivelock int64 // livelock-guard kills (MaxHops exceeded)
	DeadlockEvents int64 // global watchdog firings
	RingEntries    int64 // headers that began an f-ring traversal

	// VCBusy[v] is the total busy time of virtual channel v summed
	// over every physical channel; VCAcquired[v] counts ownership
	// periods. PhysicalChannels is the utilization denominator.
	VCBusy           []int64
	VCAcquired       []int64
	PhysicalChannels int

	// NodeCrossings[node] counts flits that traversed that node's
	// crossbar inside the window.
	NodeCrossings []int64

	// EffectiveWarmup is the number of cycles actually discarded before
	// this measurement window. The sim layer sets it: equal to the
	// configured WarmupCycles on the fixed path, or the detected
	// truncation point when MSER-style warm-up detection is enabled.
	// Zero for windows cut directly via ResetStats.
	EffectiveWarmup int64
	// LatencyCIHalf is the 95% batch-means confidence half-width of the
	// mean latency, in cycles — set by the sim layer only when a
	// relative-precision stopping rule ran (Params.StopRelPrecision).
	LatencyCIHalf float64
}

func (s *Stats) init(numVCs, nodes int) {
	s.VCBusy = make([]int64, numVCs)
	s.VCAcquired = make([]int64, numVCs)
	s.NodeCrossings = make([]int64, nodes)
}

// reset zeroes the statistics in place, retaining the slice storage:
// measurement windows restart many times over a reused network (warm-up
// cuts, Network.Reset), and reallocating the per-VC and per-node arrays
// each time would churn the heap for no observable difference.
func (s *Stats) reset() {
	vb, va, nc := s.VCBusy, s.VCAcquired, s.NodeCrossings
	*s = Stats{}
	for i := range vb {
		vb[i] = 0
	}
	for i := range va {
		va[i] = 0
	}
	for i := range nc {
		nc[i] = 0
	}
	s.VCBusy, s.VCAcquired, s.NodeCrossings = vb, va, nc
}

func (s *Stats) clone() Stats {
	out := *s
	out.VCBusy = append([]int64(nil), s.VCBusy...)
	out.VCAcquired = append([]int64(nil), s.VCAcquired...)
	out.NodeCrossings = append([]int64(nil), s.NodeCrossings...)
	return out
}

// recordDelivery folds a delivered message into the statistics. Only
// messages generated inside the window contribute to latency, so the
// estimator is not biased by survivors of the warm-up period.
func (s *Stats) recordDelivery(m *Message, statsStart int64, minHops int) {
	s.Delivered++
	if m.GenTime < statsStart {
		return
	}
	lat := m.DeliverTime - m.GenTime
	s.LatencyCount++
	s.LatencySum += lat
	s.LatencySumSq += float64(lat) * float64(lat)
	if lat > s.LatencyMax {
		s.LatencyMax = lat
	}
	s.NetLatencySum += m.DeliverTime - m.InjectTime
	s.HopsSum += int64(m.Hops)
	s.MinHopsSum += int64(minHops)
	s.LatQueueSum += m.LatQueue
	s.LatRouteSum += m.LatRoute
	s.LatBlockedSum += m.LatBlocked
	s.LatMovingSum += m.LatMoving
	s.LatRingSum += m.LatRing
	s.LatencyHist.Add(lat)
}

// Percentile returns an upper bound on the p-th percentile message
// latency in cycles (p in [0,100]), read from the log2-bucketed
// histogram; -1 when no message was measured. See LatencyHist.
func (s Stats) Percentile(p float64) int64 {
	return s.LatencyHist.Percentile(p)
}

// AvgDetour returns the mean number of extra hops beyond the minimal
// path (misrouting plus f-ring traversal overhead).
func (s Stats) AvgDetour() float64 {
	if s.LatencyCount == 0 {
		return math.NaN()
	}
	return float64(s.HopsSum-s.MinHopsSum) / float64(s.LatencyCount)
}

// AvgLatency returns the mean message latency in cycles (generation to
// tail delivery), or NaN when no message completed.
func (s Stats) AvgLatency() float64 {
	if s.LatencyCount == 0 {
		return math.NaN()
	}
	return float64(s.LatencySum) / float64(s.LatencyCount)
}

// LatencyStdDev returns the sample standard deviation of latency.
func (s Stats) LatencyStdDev() float64 {
	if s.LatencyCount < 2 {
		return 0
	}
	n := float64(s.LatencyCount)
	mean := float64(s.LatencySum) / n
	v := (s.LatencySumSq - n*mean*mean) / (n - 1)
	if v < 0 {
		v = 0
	}
	return math.Sqrt(v)
}

// AvgNetLatency returns the mean in-network latency in cycles.
func (s Stats) AvgNetLatency() float64 {
	if s.LatencyCount == 0 {
		return math.NaN()
	}
	return float64(s.NetLatencySum) / float64(s.LatencyCount)
}

// Throughput returns accepted traffic in flits per node per cycle —
// the paper's throughput measure before normalization.
func (s Stats) Throughput() float64 {
	if s.Cycles == 0 || s.HealthyNodes == 0 {
		return 0
	}
	return float64(s.DeliveredFlits) / float64(s.Cycles) / float64(s.HealthyNodes)
}

// MessageThroughput returns delivered messages per node per cycle.
func (s Stats) MessageThroughput() float64 {
	if s.Cycles == 0 || s.HealthyNodes == 0 {
		return 0
	}
	return float64(s.Delivered) / float64(s.Cycles) / float64(s.HealthyNodes)
}

// VCUtilization returns, per VC index, the fraction of the window the
// channel was owned, averaged over all physical channels (Figure 3's
// per-VC usage, as a fraction of 1).
func (s Stats) VCUtilization() []float64 {
	out := make([]float64, len(s.VCBusy))
	denom := float64(s.Cycles) * float64(s.PhysicalChannels)
	if denom == 0 {
		return out
	}
	for v, busy := range s.VCBusy {
		out[v] = float64(busy) / denom
	}
	return out
}

// AvgHops returns the mean hop count of measured messages.
func (s Stats) AvgHops() float64 {
	if s.LatencyCount == 0 {
		return math.NaN()
	}
	return float64(s.HopsSum) / float64(s.LatencyCount)
}
