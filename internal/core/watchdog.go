package core

import (
	"wormmesh/internal/topology"
)

// victim is one message the stall scan selected for recovery, tagged
// with the watchdog mechanism that condemned it.
type victim struct {
	m     *Message
	cause KillCause
}

// watchdog detects global and per-message stalls and applies the
// configured recovery. Minimal-Adaptive routing (and, under faults,
// some BC corner cases) are not provably deadlock-free; the watchdog
// makes such configurations simulable while keeping an honest count of
// recoveries in the statistics — broken down by cause (global
// recoveries vs. per-message stall kills vs. livelock kills) so the
// paper's recovery accounting can tell a network-wide deadlock from a
// local cycle from a circling header.
//
// When the GLOBAL watchdog fires, the event is observable twice over:
// the tracer's WatchdogFired callback (recorded by the flight recorder,
// if installed), and — when a post-mortem hook is set — a full
// Diagnose() report of the wait-for graph captured BEFORE the victim is
// torn down, so the report shows the cycle that actually formed.
func (n *Network) watchdog() {
	if len(n.active) == 0 {
		n.lastGlobalMove = n.cycle
		return
	}
	if n.cycle-n.lastGlobalMove > n.Cfg.DeadlockCycles {
		v := n.recoveryVictim()
		if n.tracer != nil {
			n.tracer.WatchdogFired(v, n.cycle)
		}
		if n.postmortemFn != nil {
			pm := n.diagnose(TriggerWatchdog)
			if v != nil {
				pm.Victim = v.ID
			}
			n.postmortemFn(pm)
		}
		if v != nil {
			n.stats.DeadlockEvents++
			n.kill(v, KillCauseGlobal)
		}
		n.lastGlobalMove = n.cycle
		return
	}
	if (n.Cfg.MessageStallCycles > 0 || n.Cfg.MaxHops > 0) && n.cycle-n.lastStallScan >= n.Cfg.StallScanInterval {
		n.lastStallScan = n.cycle
		// Collect victims first: kill mutates the active set (and, with
		// KillReinject, appends to it), so the scan must not run over a
		// set that is shifting under it.
		n.victims = n.victims[:0]
		for _, m := range n.active {
			// Stall takes precedence over livelock when both hold — the
			// historical condition order, preserved so the cause split
			// changes no behavior.
			switch {
			case n.Cfg.MessageStallCycles > 0 && n.holdsResources(m) &&
				n.cycle-m.lastMove > n.Cfg.MessageStallCycles:
				n.victims = append(n.victims, victim{m: m, cause: KillCauseStall})
			case n.Cfg.MaxHops > 0 && m.Hops > n.Cfg.MaxHops:
				n.victims = append(n.victims, victim{m: m, cause: KillCauseLivelock})
			}
		}
		for _, v := range n.victims {
			n.kill(v.m, v.cause)
		}
	}
}

// holdsResources reports whether the message owns network channels
// (and therefore could be part of a deadlock cycle).
func (m *Message) holdsResourcesIn(n *Network) bool {
	return m.flitsInjected > 0 || n.routers[m.Src].inj.msg == m
}

func (n *Network) holdsResources(m *Message) bool { return m.holdsResourcesIn(n) }

// recoveryVictim picks the longest-stalled resource-holding message —
// the one the global watchdog will tear down — or nil when no message
// holds network resources.
func (n *Network) recoveryVictim() *Message {
	var victim *Message
	for _, m := range n.active {
		if !n.holdsResources(m) {
			continue
		}
		if victim == nil || m.lastMove < victim.lastMove ||
			(m.lastMove == victim.lastMove && m.ID < victim.ID) {
			victim = m
		}
	}
	return victim
}

// kill removes every flit of m from the network, releases the virtual
// channels it owns (including channels claimed but not yet entered),
// and either drops or re-injects it per the kill policy. A pooled
// victim is recycled once every engine structure has let go of it.
func (n *Network) kill(m *Message, cause KillCause) {
	for i := range n.routers {
		r := &n.routers[i]
		// Iterate backwards: release swap-removes from the active list.
		for j := len(r.active) - 1; j >= 0; j-- {
			s := r.vcAt(r.active[j])
			if s.owner == m {
				n.releaseVC(r, s)
			}
		}
	}
	src := &n.routers[m.Src]
	if src.inj.msg == m {
		src.inj.msg = nil
	}
	if len(src.srcQ) > 0 && src.srcQ[0] == m {
		src.srcQ = popFrontMsg(src.srcQ)
	}
	n.checkIdle(src) // the teardown may have emptied the source router
	n.removeActive(m)
	m.Killed = true
	// Close the victim's latency decomposition before the kill event
	// fires, so tracers and post-mortems see how long each phase starved
	// (telemetry.go).
	m.settleTeardown(n.cycle)
	if n.tracer != nil {
		n.tracer.MessageKilled(m, cause, n.cycle)
	}
	if n.cycle >= n.statsStart {
		n.stats.Killed++
		switch cause {
		case KillCauseGlobal:
			n.stats.KilledGlobal++
		case KillCauseStall:
			n.stats.KilledStall++
		case KillCauseLivelock:
			n.stats.KilledLivelock++
		}
	}
	if n.Cfg.Kill == KillReinject {
		clone := n.AcquireMessage(n.NextMessageID(), m.Src, m.Dst, m.Length)
		clone.GenTime = m.GenTime
		n.Alg.InitMessage(clone)
		clone.lastMove = n.cycle
		// The clone inherits the victim's decomposition and resumes
		// accounting from the kill cycle, so its eventual delivery still
		// satisfies the partition invariant for the preserved GenTime.
		clone.LatQueue, clone.LatRoute = m.LatQueue, m.LatRoute
		clone.LatBlocked, clone.LatMoving = m.LatBlocked, m.LatMoving
		clone.LatRing = m.LatRing
		clone.acctFrom = n.cycle
		clone.acctState = acctQueued
		// Push to the queue front so recovery does not reorder behind
		// younger traffic (in place: slide the queue right by one).
		src.srcQ = append(src.srcQ, nil)
		copy(src.srcQ[1:], src.srcQ)
		src.srcQ[0] = clone
		n.markBusy(m.Src) // the re-queued clone re-dirties the source
		n.addActive(clone)
	}
	n.recycle(m)
}

// SetPostmortemHook installs (or, with nil, removes) the function the
// engine calls with a Diagnose() report each time the GLOBAL watchdog
// fires, before recovery tears the victim down. The hook runs
// synchronously on the simulation goroutine and must treat the report
// as read-only context; it fires only on deadlock recovery, so it may
// allocate and perform I/O freely.
func (n *Network) SetPostmortemHook(fn func(*Postmortem)) { n.postmortemFn = fn }

// ResetStats starts a fresh measurement window at the current cycle
// (the paper discards the first 10 000 of 30 000 cycles as warm-up).
func (n *Network) ResetStats() {
	n.stats.reset()
	n.statsStart = n.cycle
	for i := range n.routers {
		n.routers[i].crossings = 0
	}
	// The per-link telemetry counters share the measurement window.
	n.resetLinkCounters()
}

// LiveCounters is the scalar subset of the running statistics that live
// telemetry samples every few hundred cycles. Unlike Snapshot it copies
// no per-VC or per-node arrays, so sampling it mid-run costs nothing
// but a handful of loads.
type LiveCounters struct {
	Cycle          int64
	Generated      int64
	Injected       int64
	Delivered      int64
	DeliveredFlits int64
	Killed         int64
	KilledGlobal   int64
	KilledStall    int64
	KilledLivelock int64
	DeadlockEvents int64
	// LatencySum/LatencyCount mirror the Stats latency accumulators so
	// interval samplers (WindowSampler, steady-state detection) can
	// compute window-mean latency from deltas without a Snapshot.
	LatencySum   int64
	LatencyCount int64
}

// LiveCounters returns the current scalar counters (measurement window
// to date). It is read-only and allocation-free.
func (n *Network) LiveCounters() LiveCounters {
	return LiveCounters{
		Cycle:          n.cycle,
		Generated:      n.stats.Generated,
		Injected:       n.stats.Injected,
		Delivered:      n.stats.Delivered,
		DeliveredFlits: n.stats.DeliveredFlits,
		Killed:         n.stats.Killed,
		KilledGlobal:   n.stats.KilledGlobal,
		KilledStall:    n.stats.KilledStall,
		KilledLivelock: n.stats.KilledLivelock,
		DeadlockEvents: n.stats.DeadlockEvents,
		LatencySum:     n.stats.LatencySum,
		LatencyCount:   n.stats.LatencyCount,
	}
}

// LiveLatencyHist returns the current latency histogram (measurement
// window to date) by value — read-only, allocation-free, for interval
// percentile sampling (internal/metrics).
func (n *Network) LiveLatencyHist() LatencyHist {
	return n.stats.LatencyHist
}

// Snapshot finalizes and returns the statistics for the window from
// the last ResetStats (or construction) to now. Busy time of channels
// still owned is included up to the current cycle.
func (n *Network) Snapshot() Stats {
	s := n.stats.clone()
	s.Cycles = n.cycle - n.statsStart
	s.HealthyNodes = n.Faults.HealthyCount()
	for i := range n.routers {
		r := &n.routers[i]
		s.NodeCrossings[i] = r.crossings
		for _, code := range r.active {
			vs := r.vcAt(code)
			start := vs.acquired
			if start < n.statsStart {
				start = n.statsStart
			}
			s.VCBusy[vs.idx] += n.cycle - start
		}
	}
	s.PhysicalChannels = n.countPhysicalChannels()
	return s
}

// countPhysicalChannels counts directed links between healthy nodes
// (the denominator of per-VC utilization).
func (n *Network) countPhysicalChannels() int {
	count := 0
	for i := range n.routers {
		id := topology.NodeID(i)
		if n.Faults.IsFaulty(id) {
			continue
		}
		for d := topology.Direction(0); d < topology.NumDirs; d++ {
			nb := n.Topo.NeighborID(id, d)
			if nb != topology.Invalid && !n.Faults.IsFaulty(nb) {
				count++
			}
		}
	}
	return count
}
