package core

import (
	"wormmesh/internal/topology"
)

// watchdog detects global and per-message stalls and applies the
// configured recovery. Minimal-Adaptive routing (and, under faults,
// some BC corner cases) are not provably deadlock-free; the watchdog
// makes such configurations simulable while keeping an honest count of
// recoveries in the statistics.
func (n *Network) watchdog() {
	if len(n.active) == 0 {
		n.lastGlobalMove = n.cycle
		return
	}
	if n.cycle-n.lastGlobalMove > n.Cfg.DeadlockCycles {
		n.recover()
		n.lastGlobalMove = n.cycle
		return
	}
	if (n.Cfg.MessageStallCycles > 0 || n.Cfg.MaxHops > 0) && n.cycle-n.lastStallScan >= 1024 {
		n.lastStallScan = n.cycle
		// Collect victims first: kill mutates the active set (and, with
		// KillReinject, appends to it), so the scan must not run over a
		// set that is shifting under it.
		n.victims = n.victims[:0]
		for _, m := range n.active {
			stalled := n.Cfg.MessageStallCycles > 0 && n.holdsResources(m) &&
				n.cycle-m.lastMove > n.Cfg.MessageStallCycles
			livelocked := n.Cfg.MaxHops > 0 && m.Hops > n.Cfg.MaxHops
			if stalled || livelocked {
				n.victims = append(n.victims, m)
			}
		}
		for _, m := range n.victims {
			n.kill(m)
		}
	}
}

// holdsResources reports whether the message owns network channels
// (and therefore could be part of a deadlock cycle).
func (m *Message) holdsResourcesIn(n *Network) bool {
	return m.flitsInjected > 0 || n.routers[m.Src].inj.msg == m
}

func (n *Network) holdsResources(m *Message) bool { return m.holdsResourcesIn(n) }

// recover picks the longest-stalled resource-holding message and tears
// it down.
func (n *Network) recover() {
	var victim *Message
	for _, m := range n.active {
		if !n.holdsResources(m) {
			continue
		}
		if victim == nil || m.lastMove < victim.lastMove ||
			(m.lastMove == victim.lastMove && m.ID < victim.ID) {
			victim = m
		}
	}
	if victim == nil {
		return
	}
	n.stats.DeadlockEvents++
	n.kill(victim)
}

// kill removes every flit of m from the network, releases the virtual
// channels it owns (including channels claimed but not yet entered),
// and either drops or re-injects it per the kill policy. A pooled
// victim is recycled once every engine structure has let go of it.
func (n *Network) kill(m *Message) {
	for i := range n.routers {
		r := &n.routers[i]
		// Iterate backwards: release swap-removes from the active list.
		for j := len(r.active) - 1; j >= 0; j-- {
			s := r.vcAt(r.active[j])
			if s.owner == m {
				n.releaseVC(r, s)
			}
		}
	}
	src := &n.routers[m.Src]
	if src.inj.msg == m {
		src.inj.msg = nil
	}
	if len(src.srcQ) > 0 && src.srcQ[0] == m {
		src.srcQ = popFrontMsg(src.srcQ)
	}
	n.checkIdle(src) // the teardown may have emptied the source router
	n.removeActive(m)
	m.Killed = true
	if n.tracer != nil {
		n.tracer.MessageKilled(m, n.cycle)
	}
	if n.cycle >= n.statsStart {
		n.stats.Killed++
	}
	if n.Cfg.Kill == KillReinject {
		clone := n.AcquireMessage(n.NextMessageID(), m.Src, m.Dst, m.Length)
		clone.GenTime = m.GenTime
		n.Alg.InitMessage(clone)
		clone.lastMove = n.cycle
		// Push to the queue front so recovery does not reorder behind
		// younger traffic (in place: slide the queue right by one).
		src.srcQ = append(src.srcQ, nil)
		copy(src.srcQ[1:], src.srcQ)
		src.srcQ[0] = clone
		n.markBusy(m.Src) // the re-queued clone re-dirties the source
		n.addActive(clone)
	}
	n.recycle(m)
}

// ResetStats starts a fresh measurement window at the current cycle
// (the paper discards the first 10 000 of 30 000 cycles as warm-up).
func (n *Network) ResetStats() {
	n.stats.reset()
	n.statsStart = n.cycle
	for i := range n.routers {
		n.routers[i].crossings = 0
	}
}

// Snapshot finalizes and returns the statistics for the window from
// the last ResetStats (or construction) to now. Busy time of channels
// still owned is included up to the current cycle.
func (n *Network) Snapshot() Stats {
	s := n.stats.clone()
	s.Cycles = n.cycle - n.statsStart
	s.HealthyNodes = n.Faults.HealthyCount()
	for i := range n.routers {
		r := &n.routers[i]
		s.NodeCrossings[i] = r.crossings
		for _, code := range r.active {
			vs := r.vcAt(code)
			start := vs.acquired
			if start < n.statsStart {
				start = n.statsStart
			}
			s.VCBusy[vs.idx] += n.cycle - start
		}
	}
	s.PhysicalChannels = n.countPhysicalChannels()
	return s
}

// countPhysicalChannels counts directed links between healthy nodes
// (the denominator of per-VC utilization).
func (n *Network) countPhysicalChannels() int {
	count := 0
	for i := range n.routers {
		id := topology.NodeID(i)
		if n.Faults.IsFaulty(id) {
			continue
		}
		for d := topology.Direction(0); d < topology.NumDirs; d++ {
			nb := n.Mesh.NeighborID(id, d)
			if nb != topology.Invalid && !n.Faults.IsFaulty(nb) {
				count++
			}
		}
	}
	return count
}
