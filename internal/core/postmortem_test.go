package core

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"wormmesh/internal/fault"
	"wormmesh/internal/topology"
)

// ringAlg routes every message clockwise around a fixed cycle of
// nodes. With a single virtual channel per link it manufactures the
// textbook wormhole deadlock: four messages, each holding the channel
// the previous one wants.
type ringAlg struct {
	mesh topology.Topology
	next map[topology.NodeID]topology.NodeID
	vcs  int
}

func newRingAlg(mesh topology.Topology, loop []topology.Coord, vcs int) ringAlg {
	next := make(map[topology.NodeID]topology.NodeID, len(loop))
	for i, c := range loop {
		next[mesh.ID(c)] = mesh.ID(loop[(i+1)%len(loop)])
	}
	return ringAlg{mesh: mesh, next: next, vcs: vcs}
}

func (a ringAlg) Name() string           { return "test-ring" }
func (a ringAlg) NumVCs() int            { return a.vcs }
func (a ringAlg) InitMessage(m *Message) {}
func (a ringAlg) Candidates(m *Message, node topology.NodeID, out *CandidateSet) {
	if node == m.Dst {
		return
	}
	nxt, ok := a.next[node]
	if !ok {
		return
	}
	cur, to := a.mesh.CoordOf(node), a.mesh.CoordOf(nxt)
	var d topology.Direction
	switch {
	case to.X > cur.X:
		d = topology.East
	case to.X < cur.X:
		d = topology.West
	case to.Y > cur.Y:
		d = topology.North
	default:
		d = topology.South
	}
	out.AddVCs(0, d, 0, a.vcs-1)
}
func (a ringAlg) Advance(m *Message, from topology.NodeID, ch Channel) { m.Hops++ }

// deadlockNetwork wedges four messages into a 4-cycle on the square
// `loop` (clockwise order) of the given mesh: message i travels two
// hops, so after its first hop its header owns loop[i+1]'s input VC
// and waits for loop[i+2]'s, which message i+1 owns. Returns the
// network once all four headers are wedged.
func deadlockNetwork(t *testing.T, mesh topology.Topology, f *fault.Model, loop []topology.Coord, cfg Config) (*Network, []*Message) {
	t.Helper()
	n := newTestNetwork(t, mesh, f, newRingAlg(mesh, loop, 1), cfg, 1)
	msgs := make([]*Message, 4)
	for i := range msgs {
		msgs[i] = offer(t, n, int64(i+1), loop[i], loop[(i+2)%4], 4)
	}
	for i := 0; i < 40; i++ {
		n.Step()
	}
	for _, m := range msgs {
		if m.Delivered() || m.Killed {
			t.Fatalf("message %d escaped the intended deadlock", m.ID)
		}
	}
	return n, msgs
}

func deadlockConfig() Config {
	cfg := testConfig()
	cfg.NumVCs = 1
	cfg.BufDepth = 8 // whole 4-flit message drains off the source
	cfg.DeadlockCycles = 1 << 20
	cfg.MessageStallCycles = 0
	return cfg
}

// TestDiagnoseFindsWaitCycle wedges the canonical 4-message cycle and
// checks that Diagnose names it exactly: all four messages fully
// blocked, one cycle with the four IDs, each member holding the VC the
// previous one wants.
func TestDiagnoseFindsWaitCycle(t *testing.T) {
	mesh := topology.New(2, 2)
	loop := []topology.Coord{{X: 0, Y: 0}, {X: 1, Y: 0}, {X: 1, Y: 1}, {X: 0, Y: 1}}
	n, _ := deadlockNetwork(t, mesh, nil, loop, deadlockConfig())

	pm := n.Diagnose()
	if pm.Trigger != TriggerDiagnose {
		t.Errorf("Trigger = %q, want %q", pm.Trigger, TriggerDiagnose)
	}
	if pm.Victim != -1 {
		t.Errorf("Victim = %d, want -1 for on-demand diagnosis", pm.Victim)
	}
	if pm.InFlight != 4 {
		t.Errorf("InFlight = %d, want 4", pm.InFlight)
	}
	if len(pm.Blocked) != 4 {
		t.Fatalf("Blocked = %d messages, want 4: %+v", len(pm.Blocked), pm.Blocked)
	}
	owner := map[int64]int64{} // waited-on owner per message
	for _, b := range pm.Blocked {
		if !b.FullyBlocked {
			t.Errorf("msg#%d not fully blocked", b.ID)
		}
		if b.Injecting {
			t.Errorf("msg#%d reported as injecting, holds resources", b.ID)
		}
		if len(b.Holds) == 0 {
			t.Errorf("msg#%d holds no VCs", b.ID)
			continue
		}
		head := b.Holds[len(b.Holds)-1]
		if head.Routed {
			t.Errorf("msg#%d head VC is routed — not the wait point", b.ID)
		}
		if head.Node != b.WaitNode || head.Port != b.WaitPort || head.VC != b.WaitVC {
			t.Errorf("msg#%d wait point %d %v/vc%d does not match head holding %+v",
				b.ID, b.WaitNode, b.WaitPort, b.WaitVC, head)
		}
		if len(b.Waits) != 1 {
			t.Fatalf("msg#%d has %d candidate waits, want 1 (single VC, single direction)", b.ID, len(b.Waits))
		}
		w := b.Waits[0]
		if w.Free || w.Down == topology.Invalid {
			t.Errorf("msg#%d wait %+v should be held and reachable", b.ID, w)
		}
		owner[b.ID] = w.Owner
	}
	// The wait graph is the 4-cycle 1→2→3→4→1.
	for id := int64(1); id <= 4; id++ {
		want := id%4 + 1
		if owner[id] != want {
			t.Errorf("msg#%d waits on msg#%d, want msg#%d", id, owner[id], want)
		}
	}
	if len(pm.Cycles) != 1 {
		t.Fatalf("Cycles = %+v, want exactly one", pm.Cycles)
	}
	c := pm.Cycles[0]
	if len(c.Members) != 4 {
		t.Fatalf("cycle members = %v, want the four messages", c.Members)
	}
	for i, id := range c.Members {
		if id != int64(i+1) {
			t.Errorf("cycle members = %v, want [1 2 3 4]", c.Members)
			break
		}
	}
	if c.FRing {
		t.Error("cycle flagged as f-ring involved on a fault-free mesh")
	}

	var buf bytes.Buffer
	if err := pm.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"trigger=diagnose",
		"wait cycle 1/1: 4 messages: msg#1 msg#2 msg#3 msg#4",
		"FULLY BLOCKED",
		"chain:",
		"held by msg#",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

// TestDiagnoseHealthyNetwork checks the negative space: a progressing
// network reports no wait cycles, and a drained network nothing at all.
func TestDiagnoseHealthyNetwork(t *testing.T) {
	mesh := topology.New(4, 4)
	n := newTestNetwork(t, mesh, nil, xyAlg{mesh: mesh, vcs: 4}, testConfig(), 1)
	a := offer(t, n, 1, topology.Coord{X: 0, Y: 0}, topology.Coord{X: 3, Y: 3}, 20)
	b := offer(t, n, 2, topology.Coord{X: 3, Y: 0}, topology.Coord{X: 0, Y: 3}, 20)
	for i := 0; i < 5; i++ {
		n.Step()
		if pm := n.Diagnose(); len(pm.Cycles) != 0 {
			t.Fatalf("cycle %d: healthy network reported wait cycles: %+v", n.Cycle(), pm.Cycles)
		}
	}
	stepUntilDelivered(t, n, a, 200)
	stepUntilDelivered(t, n, b, 200)
	pm := n.Diagnose()
	if len(pm.Blocked) != 0 || len(pm.Cycles) != 0 || pm.InFlight != 0 {
		t.Errorf("drained network diagnosis = %+v, want empty", pm)
	}
}

// TestDiagnoseInjectionStarvation: a fifth message queued behind the
// deadlock is starved (fully blocked at its source) but holds nothing,
// so it must appear in the report WITHOUT joining the cycle.
func TestDiagnoseInjectionStarvation(t *testing.T) {
	mesh := topology.New(2, 2)
	loop := []topology.Coord{{X: 0, Y: 0}, {X: 1, Y: 0}, {X: 1, Y: 1}, {X: 0, Y: 1}}
	n, _ := deadlockNetwork(t, mesh, nil, loop, deadlockConfig())

	late := offer(t, n, 5, loop[0], loop[2], 4)
	for i := 0; i < 20; i++ {
		n.Step()
	}
	if late.Delivered() {
		t.Fatal("late message should be starved behind the deadlock")
	}
	pm := n.Diagnose()
	var found bool
	for _, b := range pm.Blocked {
		if b.ID != 5 {
			continue
		}
		found = true
		if !b.Injecting {
			t.Error("msg#5 should be waiting to inject")
		}
		if b.WaitNode != n.Topo.ID(loop[0]) {
			t.Errorf("msg#5 wait node = %d, want its source", b.WaitNode)
		}
		if len(b.Holds) != 0 {
			t.Errorf("msg#5 holds %+v, want nothing", b.Holds)
		}
		if !b.FullyBlocked {
			t.Error("msg#5 should be fully blocked (first hop VC is owned)")
		}
	}
	if !found {
		t.Fatalf("starved injector missing from report: %+v", pm.Blocked)
	}
	if len(pm.Cycles) != 1 || len(pm.Cycles[0].Members) != 4 {
		t.Fatalf("Cycles = %+v, want the original 4-cycle only", pm.Cycles)
	}
	for _, id := range pm.Cycles[0].Members {
		if id == 5 {
			t.Error("starved injector wrongly included in the wait cycle")
		}
	}
}

// TestDiagnoseClassifiesFRing builds the same 4-cycle on a square that
// touches the f-ring of a faulted corner node and checks the cycle is
// flagged as f-ring involved.
func TestDiagnoseClassifiesFRing(t *testing.T) {
	mesh := topology.New(4, 4)
	f, err := fault.New(mesh, []topology.NodeID{mesh.ID(topology.Coord{X: 0, Y: 0})})
	if err != nil {
		t.Fatal(err)
	}
	// Square (1,0)-(2,0)-(2,1)-(1,1): nodes (1,0) and (1,1) sit on the
	// faulted corner's f-ring.
	loop := []topology.Coord{{X: 1, Y: 0}, {X: 2, Y: 0}, {X: 2, Y: 1}, {X: 1, Y: 1}}
	if !f.OnAnyRing(mesh.ID(loop[0])) {
		t.Fatal("test premise broken: loop[0] not on the f-ring")
	}
	n, _ := deadlockNetwork(t, mesh, f, loop, deadlockConfig())
	pm := n.Diagnose()
	if len(pm.Cycles) != 1 {
		t.Fatalf("Cycles = %+v, want one", pm.Cycles)
	}
	if !pm.Cycles[0].FRing {
		t.Error("cycle touching f-ring nodes not flagged FRing")
	}
	var buf bytes.Buffer
	if err := pm.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "[f-ring involved]") {
		t.Errorf("report missing the f-ring tag:\n%s", buf.String())
	}
}

// TestWatchdogPostmortemHook wedges the 4-cycle with a tight watchdog
// and verifies the firing sequence: the hook receives a watchdog-
// triggered report that names the cycle and the recovery victim, and —
// with a flight recorder installed — carries the recent event tail.
func TestWatchdogPostmortemHook(t *testing.T) {
	mesh := topology.New(2, 2)
	loop := []topology.Coord{{X: 0, Y: 0}, {X: 1, Y: 0}, {X: 1, Y: 1}, {X: 0, Y: 1}}
	cfg := deadlockConfig()
	cfg.DeadlockCycles = 50
	n := newTestNetwork(t, mesh, nil, newRingAlg(mesh, loop, 1), cfg, 1)
	n.SetFlightRecorder(NewFlightRecorder(256))
	var reports []*Postmortem
	n.SetPostmortemHook(func(pm *Postmortem) { reports = append(reports, pm) })

	msgs := make([]*Message, 4)
	for i := range msgs {
		msgs[i] = offer(t, n, int64(i+1), loop[i], loop[(i+2)%4], 4)
	}
	for i := 0; i < 400 && len(reports) == 0; i++ {
		n.Step()
	}
	if len(reports) == 0 {
		t.Fatal("watchdog never fired the post-mortem hook")
	}
	pm := reports[0]
	if pm.Trigger != TriggerWatchdog {
		t.Errorf("Trigger = %q, want %q", pm.Trigger, TriggerWatchdog)
	}
	if pm.Victim < 1 || pm.Victim > 4 {
		t.Errorf("Victim = %d, want one of the wedged messages", pm.Victim)
	}
	if len(pm.Cycles) != 1 || len(pm.Cycles[0].Members) != 4 {
		t.Fatalf("watchdog report cycles = %+v, want the 4-cycle", pm.Cycles)
	}
	if len(pm.Recent) == 0 || pm.RecorderTotal == 0 {
		t.Error("flight recorder tail missing from the watchdog report")
	}
	var buf bytes.Buffer
	if err := pm.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"trigger=watchdog", "recovery victim: msg#", "engine events"} {
		if !strings.Contains(out, want) {
			t.Errorf("watchdog report missing %q:\n%s", want, out)
		}
	}
}

// TestDiagnoseIsReadOnly locks in that diagnosis never perturbs the
// simulation: running the deadlock scenario with a Diagnose every
// cycle yields the same statistics as running it untouched.
func TestDiagnoseIsReadOnly(t *testing.T) {
	run := func(diagnose bool) Stats {
		mesh := topology.New(2, 2)
		loop := []topology.Coord{{X: 0, Y: 0}, {X: 1, Y: 0}, {X: 1, Y: 1}, {X: 0, Y: 1}}
		cfg := deadlockConfig()
		cfg.DeadlockCycles = 60
		cfg.Kill = KillReinject
		n := newTestNetwork(t, mesh, nil, newRingAlg(mesh, loop, 1), cfg, 1)
		for i := 0; i < 4; i++ {
			offer(t, n, int64(i+1), loop[i], loop[(i+2)%4], 4)
		}
		for i := 0; i < 500; i++ {
			n.Step()
			if diagnose && i%3 == 0 {
				_ = n.Diagnose()
			}
		}
		return n.Snapshot()
	}
	a, b := run(false), run(true)
	if !reflect.DeepEqual(a, b) {
		t.Errorf("Diagnose perturbed the run:\n  without: %+v\n  with:    %+v", a, b)
	}
}
