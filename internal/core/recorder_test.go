package core

import (
	"bytes"
	"testing"

	"wormmesh/internal/topology"
)

func TestRecorderRoundTrip(t *testing.T) {
	mesh := topology.New(4, 4)
	n := newTestNetwork(t, mesh, nil, xyAlg{mesh: mesh, vcs: 4}, testConfig(), 1)
	var buf bytes.Buffer
	rec := NewRecorder(&buf)
	rec.IncludeFlits = true
	n.SetTracer(rec)

	m := offer(t, n, 42, topology.Coord{X: 0, Y: 0}, topology.Coord{X: 2, Y: 1}, 3)
	stepUntilDelivered(t, n, m, 100)
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	events, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(events)) != rec.Events() {
		t.Fatalf("parsed %d events, recorder says %d", len(events), rec.Events())
	}
	kinds := map[string]int{}
	for _, e := range events {
		kinds[e.Kind]++
		if e.Msg != 42 {
			t.Errorf("event for unexpected message %d", e.Msg)
		}
	}
	if kinds["inject"] != 1 || kinds["deliver"] != 1 {
		t.Errorf("kinds = %v, want one inject and one deliver", kinds)
	}
	if kinds["route"] != 3 {
		t.Errorf("route events = %d, want 3 (3 hops)", kinds["route"])
	}
	// 3 links x 3 flits = 9 flit moves.
	if kinds["flit"] != 9 {
		t.Errorf("flit events = %d, want 9", kinds["flit"])
	}
	// Events are time-ordered.
	for i := 1; i < len(events); i++ {
		if events[i].Cycle < events[i-1].Cycle {
			t.Fatal("events out of order")
		}
	}
}

func TestRecorderWithoutFlits(t *testing.T) {
	mesh := topology.New(4, 4)
	n := newTestNetwork(t, mesh, nil, xyAlg{mesh: mesh, vcs: 4}, testConfig(), 1)
	var buf bytes.Buffer
	rec := NewRecorder(&buf)
	n.SetTracer(rec)
	m := offer(t, n, 1, topology.Coord{X: 0, Y: 0}, topology.Coord{X: 3, Y: 0}, 5)
	stepUntilDelivered(t, n, m, 100)
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	events, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range events {
		if e.Kind == "flit" {
			t.Fatal("flit event recorded despite IncludeFlits=false")
		}
	}
}

type failWriter struct{ n int }

func (f *failWriter) Write(p []byte) (int, error) {
	f.n += len(p)
	if f.n > 100000 {
		return 0, bytes.ErrTooLarge
	}
	return len(p), nil
}

func TestRecorderSurfacesWriteErrors(t *testing.T) {
	mesh := topology.New(4, 4)
	n := newTestNetwork(t, mesh, nil, xyAlg{mesh: mesh, vcs: 4}, testConfig(), 1)
	rec := NewRecorder(&failWriter{})
	rec.IncludeFlits = true
	n.SetTracer(rec)
	for i := 0; i < 3000; i++ {
		if i%3 == 0 {
			id := n.NextMessageID()
			m := NewMessage(id, topology.NodeID(i%16), topology.NodeID((i+5)%16), 10)
			m.GenTime = n.Cycle()
			if m.Src != m.Dst {
				n.Offer(m)
			}
		}
		n.Step()
	}
	if rec.Close() == nil {
		t.Error("write error not surfaced")
	}
}

func TestSummarizeTrace(t *testing.T) {
	mesh := topology.New(5, 5)
	n := newTestNetwork(t, mesh, nil, xyAlg{mesh: mesh, vcs: 4}, testConfig(), 1)
	var buf bytes.Buffer
	rec := NewRecorder(&buf)
	rec.IncludeFlits = true
	n.SetTracer(rec)
	a := offer(t, n, 1, topology.Coord{X: 0, Y: 0}, topology.Coord{X: 4, Y: 0}, 5)
	b := offer(t, n, 2, topology.Coord{X: 0, Y: 4}, topology.Coord{X: 4, Y: 4}, 5)
	for !a.Delivered() || !b.Delivered() {
		n.Step()
		if n.Cycle() > 500 {
			t.Fatal("not delivered")
		}
	}
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	events, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	s := SummarizeTrace(events)
	if s.Messages != 2 || s.Delivered != 2 || s.Killed != 0 {
		t.Fatalf("summary = %+v", s)
	}
	if s.Hops[1] != 4 || s.Hops[2] != 4 {
		t.Errorf("hops = %v, want 4 each", s.Hops)
	}
	// Journey = deliver - inject = (H-1+L) - 0... both uncontended:
	// tail delivered H+L-1 cycles after generation, header injected at
	// cycle 0, so the journey equals the total latency.
	for id, j := range s.Journeys {
		if j != a.Latency() {
			t.Errorf("journey[%d] = %d, want %d", id, j, a.Latency())
		}
	}
	if s.FlitMoves != 2*4*5 {
		t.Errorf("flit moves = %d, want 40 (2 msgs x 4 links x 5 flits)", s.FlitMoves)
	}
	if len(s.HotNodes) == 0 || s.HotNodes[0].Routed < 1 {
		t.Errorf("hot nodes = %v", s.HotNodes)
	}
	if s.String() == "" {
		t.Error("empty summary string")
	}
}
