package core

import (
	"io"

	"wormmesh/internal/topology"
)

// Flight recorder. The JSONL Recorder is the right tool for offline
// analysis of a whole run, but it is far too expensive to leave on
// during a multi-hour sweep — every event is a JSON encode plus buffered
// I/O. The FlightRecorder is the black-box counterpart: a fixed-capacity
// ring buffer of compact binary events, appended with zero heap
// allocations and zero RNG interaction, that always holds the LAST
// capacity events of the run. When something goes wrong — the global
// watchdog fires, a post-mortem is requested, an invariant trips — the
// ring is decoded into the same TraceEvent shape the Recorder streams,
// so every existing trace tool reads the dump unchanged.
//
// Recording is strictly read-only observation: no callback mutates the
// network or draws from any RNG, so golden Stats are bit-identical with
// the recorder on or off (locked in by internal/sim's golden tests).
// The engine's disabled path stays one branch per event: the recorder
// installs into the same n.tracer slot the JSONL Recorder uses, tee'd
// when both are present (see SetFlightRecorder).

// frKind is the compact event discriminator of one ring slot.
type frKind uint8

const (
	frInject frKind = iota
	frRoute
	frFlit
	frDeliver
	frKill
	frWatchdog
)

var frKindNames = [...]string{"inject", "route", "flit", "deliver", "kill", "watchdog"}

// frEvent is one ring slot: a flat, pointer-free record (40 bytes) so
// the ring is a single allocation that the garbage collector never has
// to scan.
type frEvent struct {
	cycle int64
	msg   int64
	src   int32
	dst   int32
	node  int32
	flit  int32
	kind  frKind
	dir   uint8
	vc    uint8
	cause uint8
}

// FlightRecorder is a Tracer that keeps the most recent events in a
// preallocated ring. It is not safe for concurrent use; like every
// Tracer it runs synchronously on the simulation goroutine.
type FlightRecorder struct {
	buf   []frEvent
	next  int   // next slot to overwrite
	total int64 // events ever recorded

	// IncludeFlits controls whether per-flit link traversals are
	// recorded (default true). Flit events dominate the volume, so a
	// ring that should retain a long header-level history can drop them;
	// a ring meant for deadlock post-mortems should keep them — the last
	// flit movements show exactly where progress stopped.
	IncludeFlits bool
}

// DefaultFlightRecorderEvents is the ring capacity drivers use when the
// caller does not specify one: deep enough to span the tail of a stall
// at header-event granularity, small enough (~160 KiB) to forget about.
const DefaultFlightRecorderEvents = 4096

// NewFlightRecorder builds a recorder holding the last `capacity`
// events. Capacities < 1 fall back to DefaultFlightRecorderEvents.
func NewFlightRecorder(capacity int) *FlightRecorder {
	if capacity < 1 {
		capacity = DefaultFlightRecorderEvents
	}
	return &FlightRecorder{buf: make([]frEvent, 0, capacity), IncludeFlits: true}
}

// Cap returns the ring capacity in events.
func (f *FlightRecorder) Cap() int { return cap(f.buf) }

// Len returns the number of events currently held (≤ Cap).
func (f *FlightRecorder) Len() int { return len(f.buf) }

// Total returns the number of events ever recorded, including those the
// ring has since overwritten.
func (f *FlightRecorder) Total() int64 { return f.total }

// Reset empties the ring, retaining its storage.
func (f *FlightRecorder) Reset() {
	f.buf = f.buf[:0]
	f.next = 0
	f.total = 0
}

// record appends one event, overwriting the oldest slot once the ring
// is full. The two branches keep the append allocation-free: the grow
// path re-slices within the preallocated capacity.
func (f *FlightRecorder) record(e frEvent) {
	if len(f.buf) < cap(f.buf) {
		f.buf = append(f.buf, e)
	} else {
		f.buf[f.next] = e
		f.next++
		if f.next == len(f.buf) {
			f.next = 0
		}
	}
	f.total++
}

// MessageInjected implements Tracer.
func (f *FlightRecorder) MessageInjected(m *Message, cycle int64) {
	f.record(frEvent{cycle: cycle, kind: frInject, msg: m.ID, src: int32(m.Src), dst: int32(m.Dst)})
}

// HeaderRouted implements Tracer.
func (f *FlightRecorder) HeaderRouted(m *Message, node topology.NodeID, ch Channel, cycle int64) {
	f.record(frEvent{
		cycle: cycle, kind: frRoute, msg: m.ID, src: int32(m.Src), dst: int32(m.Dst),
		node: int32(node), dir: uint8(ch.Dir), vc: ch.VC,
	})
}

// FlitMoved implements Tracer.
func (f *FlightRecorder) FlitMoved(fl Flit, from topology.NodeID, ch Channel, cycle int64) {
	if !f.IncludeFlits {
		return
	}
	f.record(frEvent{
		cycle: cycle, kind: frFlit, msg: fl.Msg.ID, src: int32(fl.Msg.Src), dst: int32(fl.Msg.Dst),
		node: int32(from), dir: uint8(ch.Dir), vc: ch.VC, flit: fl.Index,
	})
}

// MessageDelivered implements Tracer.
func (f *FlightRecorder) MessageDelivered(m *Message, cycle int64) {
	f.record(frEvent{cycle: cycle, kind: frDeliver, msg: m.ID, src: int32(m.Src), dst: int32(m.Dst)})
}

// MessageKilled implements Tracer.
func (f *FlightRecorder) MessageKilled(m *Message, cause KillCause, cycle int64) {
	f.record(frEvent{cycle: cycle, kind: frKill, msg: m.ID, src: int32(m.Src), dst: int32(m.Dst), cause: uint8(cause)})
}

// WatchdogFired implements Tracer.
func (f *FlightRecorder) WatchdogFired(victim *Message, cycle int64) {
	e := frEvent{cycle: cycle, kind: frWatchdog}
	if victim != nil {
		e.msg, e.src, e.dst = victim.ID, int32(victim.Src), int32(victim.Dst)
	}
	f.record(e)
}

// decode expands one ring slot into the JSONL TraceEvent shape.
func (e frEvent) decode() TraceEvent {
	out := TraceEvent{
		Cycle: e.cycle, Kind: frKindNames[e.kind], Msg: e.msg,
		Src: e.src, Dst: e.dst,
	}
	switch e.kind {
	case frRoute, frFlit:
		out.Node = e.node
		out.Dir = topology.Direction(e.dir).String()
		out.VC = e.vc
		out.Flit = e.flit
	case frKill:
		out.Cause = KillCause(e.cause).String()
	}
	return out
}

// at returns the i-th oldest held event (0 = oldest). Callers keep i in
// [0, Len).
func (f *FlightRecorder) at(i int) frEvent {
	if len(f.buf) < cap(f.buf) {
		return f.buf[i] // ring has not wrapped yet: slot 0 is the oldest
	}
	j := f.next + i
	if j >= len(f.buf) {
		j -= len(f.buf)
	}
	return f.buf[j]
}

// Events decodes the held events, oldest first, into the TraceEvent
// shape. It allocates; use it on the dump path, not per cycle.
func (f *FlightRecorder) Events() []TraceEvent {
	out := make([]TraceEvent, f.Len())
	for i := range out {
		out[i] = f.at(i).decode()
	}
	return out
}

// Last decodes the most recent n held events, oldest of those first.
// n larger than Len returns everything.
func (f *FlightRecorder) Last(n int) []TraceEvent {
	if n > f.Len() {
		n = f.Len()
	}
	if n < 0 {
		n = 0
	}
	out := make([]TraceEvent, n)
	start := f.Len() - n
	for i := range out {
		out[i] = f.at(start + i).decode()
	}
	return out
}

// WriteTrace dumps the held events as JSON lines — the same format the
// live Recorder streams, so ReadTrace and tracesummary consume flight
// dumps unchanged.
func (f *FlightRecorder) WriteTrace(w io.Writer) error {
	rec := NewRecorder(w)
	for i := 0; i < f.Len(); i++ {
		rec.emit(f.at(i).decode())
	}
	return rec.Close()
}

// SetFlightRecorder installs (or, with nil, removes) the flight
// recorder. It composes with SetTracer through an internal tee: the
// engine still branches on a single observer slot per event, so the
// fully disabled path keeps its one-branch cost.
func (n *Network) SetFlightRecorder(f *FlightRecorder) {
	n.flight = f
	n.rewireTracer()
}

// FlightRecorder returns the installed flight recorder, or nil. The
// post-mortem layer uses it to attach the last recorded events to its
// reports.
func (n *Network) FlightRecorder() *FlightRecorder { return n.flight }
