package core

import (
	"math/rand"
	"testing"

	"wormmesh/internal/topology"
)

// runParallel drives a fixed random workload through a network in
// parallel mode and returns the final statistics.
func runParallel(t *testing.T, workers int, cycles int, validateEvery int) Stats {
	t.Helper()
	mesh := topology.New(8, 8)
	cfg := DefaultConfig()
	cfg.NumVCs = 6
	cfg.MaxSourceQueue = 4
	alg := xyAlg{mesh: mesh, vcs: 6}
	n, err := NewNetwork(mesh, nil, alg, cfg, rand.New(rand.NewSource(77)))
	if err != nil {
		t.Fatal(err)
	}
	clones := make([]Algorithm, workers)
	for i := range clones {
		clones[i] = xyAlg{mesh: mesh, vcs: 6}
	}
	if err := n.EnableParallel(workers, clones); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(55))
	id := int64(0)
	for cycle := 0; cycle < cycles; cycle++ {
		if rng.Float64() < 0.5 {
			src := topology.NodeID(rng.Intn(mesh.NodeCount()))
			dst := topology.NodeID(rng.Intn(mesh.NodeCount()))
			if src != dst {
				id++
				m := NewMessage(id, src, dst, 8)
				m.GenTime = n.Cycle()
				n.Offer(m)
			}
		}
		n.Step()
		if validateEvery > 0 && cycle%validateEvery == 0 {
			if err := n.Validate(); err != nil {
				t.Fatalf("cycle %d: %v", cycle, err)
			}
		}
	}
	return n.Snapshot()
}

// TestParallelDeterministicAcrossWorkerCounts is the core guarantee:
// results are bit-identical for any worker count.
func TestParallelDeterministicAcrossWorkerCounts(t *testing.T) {
	base := runParallel(t, 1, 1200, 50)
	if base.Delivered == 0 {
		t.Fatal("no deliveries")
	}
	for _, workers := range []int{2, 3, 4} {
		got := runParallel(t, workers, 1200, 0)
		if got.Delivered != base.Delivered ||
			got.LatencySum != base.LatencySum ||
			got.FlitHops != base.FlitHops ||
			got.Generated != base.Generated {
			t.Errorf("workers=%d diverged: delivered %d vs %d, latencySum %d vs %d, flitHops %d vs %d",
				workers, got.Delivered, base.Delivered, got.LatencySum, base.LatencySum, got.FlitHops, base.FlitHops)
		}
	}
}

// TestParallelMatchesSerialStatistically: the request–grant arbitration
// differs from the serial global-order arbitration, but aggregate
// behavior must agree closely at a moderate load.
func TestParallelMatchesSerialStatistically(t *testing.T) {
	mesh := topology.New(8, 8)
	run := func(parallel bool) Stats {
		cfg := DefaultConfig()
		cfg.NumVCs = 6
		cfg.MaxSourceQueue = 4
		n, err := NewNetwork(mesh, nil, xyAlg{mesh: mesh, vcs: 6}, cfg, rand.New(rand.NewSource(7)))
		if err != nil {
			t.Fatal(err)
		}
		if parallel {
			if err := n.EnableParallel(2, []Algorithm{xyAlg{mesh: mesh, vcs: 6}, xyAlg{mesh: mesh, vcs: 6}}); err != nil {
				t.Fatal(err)
			}
		}
		rng := rand.New(rand.NewSource(3))
		id := int64(0)
		for cycle := 0; cycle < 3000; cycle++ {
			if rng.Float64() < 0.3 {
				src := topology.NodeID(rng.Intn(mesh.NodeCount()))
				dst := topology.NodeID(rng.Intn(mesh.NodeCount()))
				if src != dst {
					id++
					m := NewMessage(id, src, dst, 8)
					m.GenTime = n.Cycle()
					n.Offer(m)
				}
			}
			n.Step()
		}
		return n.Snapshot()
	}
	serial, par := run(false), run(true)
	if par.Delivered == 0 {
		t.Fatal("parallel mode delivered nothing")
	}
	relDelivered := float64(par.Delivered)/float64(serial.Delivered) - 1
	if relDelivered > 0.1 || relDelivered < -0.1 {
		t.Errorf("deliveries diverge: serial %d, parallel %d", serial.Delivered, par.Delivered)
	}
	relLatency := par.AvgLatency()/serial.AvgLatency() - 1
	if relLatency > 0.25 || relLatency < -0.25 {
		t.Errorf("latency diverges: serial %.1f, parallel %.1f", serial.AvgLatency(), par.AvgLatency())
	}
}

func TestEnableParallelValidation(t *testing.T) {
	mesh := topology.New(4, 4)
	n, err := NewNetwork(mesh, nil, xyAlg{mesh: mesh, vcs: 2}, func() Config {
		c := DefaultConfig()
		c.NumVCs = 2
		return c
	}(), rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if err := n.EnableParallel(0, nil); err == nil {
		t.Error("workers=0 accepted")
	}
	if err := n.EnableParallel(2, []Algorithm{xyAlg{mesh: mesh, vcs: 2}}); err == nil {
		t.Error("clone count mismatch accepted")
	}
	if err := n.EnableParallel(1, []Algorithm{xyAlg{mesh: mesh, vcs: 1}}); err == nil {
		t.Error("clone VC mismatch accepted")
	}
	if err := n.EnableParallel(1, []Algorithm{xyAlg{mesh: mesh, vcs: 2}}); err != nil {
		t.Errorf("valid enable failed: %v", err)
	}
	n.DisableParallel()
	n.Step() // back on the serial path
}

func TestPRNGDeterminism(t *testing.T) {
	a := newPRNG(1, 2, 3, 4)
	b := newPRNG(1, 2, 3, 4)
	for i := 0; i < 100; i++ {
		if a.next() != b.next() {
			t.Fatal("prng streams diverged")
		}
	}
	c := newPRNG(1, 2, 4, 4)
	same := 0
	a = newPRNG(1, 2, 3, 4)
	for i := 0; i < 100; i++ {
		if a.next() == c.next() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("different nodes share %d of 100 outputs", same)
	}
	// intn stays in range.
	for i := 0; i < 1000; i++ {
		if v := c.intn(7); v < 0 || v >= 7 {
			t.Fatalf("intn out of range: %d", v)
		}
	}
}
