// Package core implements the flit-level wormhole-switching network
// engine: routers with per-port virtual channels, virtual-channel
// allocation, crossbar (switch) allocation with one flit per physical
// channel per cycle, credit-based flow control, and a deadlock
// watchdog. The engine is cycle-driven and deterministic for a given
// seed; conflicts are resolved at random, as in the paper.
//
// Routing algorithms are plugged in through the Algorithm interface;
// the ten algorithms of the paper live in internal/routing.
package core

import (
	"fmt"

	"wormmesh/internal/topology"
)

// Channel names one virtual channel of one output direction of a
// router: the unit of allocation for a message header.
type Channel struct {
	Dir topology.Direction
	VC  uint8
}

// String renders the channel as "East/vc3".
func (c Channel) String() string { return fmt.Sprintf("%v/vc%d", c.Dir, c.VC) }

// DirClass types a message by its overall direction of travel, used by
// the Boppana–Chalasani scheme to pick f-ring virtual channels. Row
// messages (those that must correct their X offset) are WE or EW;
// pure-column messages are NS or SN.
type DirClass uint8

// Message direction classes.
const (
	WE DirClass = iota // destination strictly east of source
	EW                 // destination strictly west of source
	NS                 // same column, destination north
	SN                 // same column, destination south
)

var dirClassNames = [...]string{"WE", "EW", "NS", "SN"}

// String returns the class mnemonic.
func (d DirClass) String() string {
	if int(d) < len(dirClassNames) {
		return dirClassNames[d]
	}
	return fmt.Sprintf("DirClass(%d)", uint8(d))
}

// ClassifyDir computes the direction class of a (src, dst) pair on a
// mesh, where the travel direction per dimension is the coordinate
// ordering. Topology-aware callers use ClassifyDirOn.
func ClassifyDir(src, dst topology.Coord) DirClass {
	switch {
	case dst.X > src.X:
		return WE
	case dst.X < src.X:
		return EW
	case dst.Y > src.Y:
		return NS
	default:
		return SN
	}
}

// ClassifyDirOn computes the direction class of a (src, dst) pair on
// any topology via its minimal-direction choice: on a torus the class
// reflects which way around the ring the message travels. On a mesh it
// is identical to ClassifyDir.
func ClassifyDirOn(t topology.Topology, src, dst topology.Coord) DirClass {
	if d, ok := t.DirTowards(src, dst, 0); ok {
		if d == topology.East {
			return WE
		}
		return EW
	}
	if d, ok := t.DirTowards(src, dst, 1); ok && d == topology.North {
		return NS
	}
	return SN
}

// MaxTiers is the number of preference tiers a routing algorithm may
// populate. Tier 0 is most preferred (e.g. Duato's adaptive class);
// the engine falls to later tiers only when every channel in the
// earlier ones is unavailable.
const MaxTiers = 3

// CandidateSet receives the output channels an algorithm permits for a
// header flit, grouped into preference tiers. It is reused across
// calls to avoid allocation in the simulation inner loop.
type CandidateSet struct {
	tiers [MaxTiers][]Channel
}

// Reset clears all tiers, retaining capacity.
func (s *CandidateSet) Reset() {
	for i := range s.tiers {
		s.tiers[i] = s.tiers[i][:0]
	}
}

// Add appends a channel to the given preference tier.
func (s *CandidateSet) Add(tier int, ch Channel) {
	s.tiers[tier] = append(s.tiers[tier], ch)
}

// AddMany appends a pre-built channel slice to the given preference
// tier in slice order. Routing algorithms that intern their channel
// sets (the BC wrapper's per-class ring channels) use it to turn
// per-VC Add loops into one bulk append; the resulting candidate
// ordering is identical to adding the elements one by one, which is
// part of the determinism contract (DESIGN.md §4.2).
func (s *CandidateSet) AddMany(tier int, chs []Channel) {
	s.tiers[tier] = append(s.tiers[tier], chs...)
}

// AddVCs appends one channel per VC in [lo, hi] for direction d.
func (s *CandidateSet) AddVCs(tier int, d topology.Direction, lo, hi int) {
	for vc := lo; vc <= hi; vc++ {
		s.Add(tier, Channel{Dir: d, VC: uint8(vc)})
	}
}

// Tier returns the channels in one preference tier (do not modify).
func (s *CandidateSet) Tier(i int) []Channel { return s.tiers[i] }

// Filter removes, in place, every candidate for which keep is false.
func (s *CandidateSet) Filter(keep func(Channel) bool) {
	for i := range s.tiers {
		kept := s.tiers[i][:0]
		for _, ch := range s.tiers[i] {
			if keep(ch) {
				kept = append(kept, ch)
			}
		}
		s.tiers[i] = kept
	}
}

// Empty reports whether no tier holds any candidate.
func (s *CandidateSet) Empty() bool {
	for i := range s.tiers {
		if len(s.tiers[i]) > 0 {
			return false
		}
	}
	return true
}

// Total returns the number of candidates across all tiers.
func (s *CandidateSet) Total() int {
	n := 0
	for i := range s.tiers {
		n += len(s.tiers[i])
	}
	return n
}

// Algorithm is a routing algorithm as seen by the engine. An Algorithm
// instance is bound to one mesh and one fault pattern at construction
// time; implementations must be stateless across messages apart from
// the per-message fields they maintain inside Message.
type Algorithm interface {
	// Name identifies the algorithm in reports ("NHop", "Duato-Nbc"…).
	Name() string
	// NumVCs returns the number of virtual channels the algorithm
	// requires per physical channel.
	NumVCs() int
	// InitMessage initializes the per-message routing state (direction
	// class, bonus cards, buffer class, …) at generation time.
	InitMessage(m *Message)
	// Candidates populates out with the channels the header of m may
	// take at node. It must not return channels toward faulty or
	// non-existent nodes. An empty set means the message must wait at
	// this node until conditions change (which only happens for
	// transiently full channels — algorithms must never return an
	// empty set out of routing restrictions alone unless node is the
	// destination, which the engine handles before calling).
	Candidates(m *Message, node topology.NodeID, out *CandidateSet)
	// Advance updates m's routing state after its header actually moved
	// from node `from` through channel ch. The engine calls it exactly
	// once per header hop.
	Advance(m *Message, from topology.NodeID, ch Channel)
}

// SelectionPolicy decides which free candidate channel a header takes
// when several are available within the winning preference tier.
type SelectionPolicy uint8

// Selection policies.
const (
	// SelectRandomChannel picks uniformly among free (dir, vc) pairs.
	// Directions offering more free VCs are implicitly favored, a mild
	// congestion-avoiding bias; this is the default.
	SelectRandomChannel SelectionPolicy = iota
	// SelectRandomDir first picks a direction uniformly among those
	// with at least one free VC, then a free VC within it.
	SelectRandomDir
	// SelectLowestVC picks the free channel with the lowest VC index,
	// breaking ties by direction order. Deterministic; useful in tests.
	SelectLowestVC
)

var selectionNames = [...]string{"random-channel", "random-dir", "lowest-vc"}

// String returns the policy name.
func (p SelectionPolicy) String() string {
	if int(p) < len(selectionNames) {
		return selectionNames[p]
	}
	return fmt.Sprintf("SelectionPolicy(%d)", uint8(p))
}
