package core

import (
	"math"
	"math/bits"

	"wormmesh/internal/topology"
)

// Spatial and per-message telemetry.
//
// Two layers live here:
//
//  1. Per-link congestion counters, gated by Config.ChannelTelemetry:
//     dense LinkID-indexed arrays counting flits forwarded, busy cycles
//     (the link had at least one would-be sender) and blocked cycles
//     (it had senders but forwarded nothing — credit exhaustion or
//     switch contention), plus an f-ring membership tag per link so
//     reports can split on-ring from off-ring congestion. Recording is
//     an array index plus an add on the hot path; the disabled path
//     costs one nil check hoisted per router (switch phase) or per
//     commit batch.
//
//  2. Per-message latency decomposition, always on: every cycle of a
//     message's life between generation and tail delivery is attributed
//     to exactly one of {source-queue wait, header-routing wait,
//     credit/switch blocked, moving}, with f-ring traversal tracked as
//     an overlay. The accounting is settled lazily — at each committed
//     flit move, at each routing transition, and at teardown — so the
//     steady-state cost is a handful of integer ops per move, no
//     allocation, and no RNG interaction.
//
// Both layers are read-only with respect to engine decisions: they
// never branch the routing, allocation or arbitration paths and never
// draw from any random stream, so Stats are bit-identical with
// telemetry on or off (locked in by internal/sim's TestTelemetryNeutral
// tests).

// ---------------------------------------------------------------------
// Per-message latency decomposition.

// Accounting states: what the message has been doing since acctFrom.
// The state tracks the HEAD of the message — when nothing moves in a
// cycle, the head's situation is why.
const (
	// acctQueued: the header is still in its source queue.
	acctQueued uint8 = iota
	// acctRouteWait: the header sits at the front of an input VC
	// awaiting VC allocation (routing).
	acctRouteWait
	// acctBlocked: the header is routed (or ejecting) but the message
	// could not move — downstream credits, switch contention, or
	// ejection bandwidth.
	acctBlocked
)

// addWait folds gap cycles into the bucket named by the current state.
func (m *Message) addWait(gap int64) {
	switch m.acctState {
	case acctQueued:
		m.LatQueue += gap
	case acctRouteWait:
		m.LatRoute += gap
	default:
		m.LatBlocked += gap
	}
}

// settleWait attributes the waiting cycles (acctFrom, c-1] to the
// current bucket and switches the state. Called at routing transitions
// during cycle c, before any of cycle c's moves commit, so cycle c
// itself stays available for the move accounting.
func (m *Message) settleWait(c int64, newState uint8) {
	if gap := c - 1 - m.acctFrom; gap > 0 {
		m.addWait(gap)
		m.acctFrom = c - 1
	}
	m.acctState = newState
}

// settleMove attributes (acctFrom, c-1] to the current wait bucket and
// cycle c to LatMoving. The caller guards with acctMoved so this runs
// at most once per message per cycle (the first committed flit move).
func (m *Message) settleMove(c int64) {
	if c <= m.acctFrom {
		return // same-cycle offer+inject: cycle c is outside the latency span
	}
	if gap := c - 1 - m.acctFrom; gap > 0 {
		m.addWait(gap)
	}
	m.LatMoving++
	m.acctFrom = c
}

// settleTeardown closes the books on a message torn down at cycle c
// (deadlock/livelock recovery): the open wait interval is attributed
// through c and any open f-ring traversal is closed, so kill events and
// post-mortems observe the victim's final decomposition.
func (m *Message) settleTeardown(c int64) {
	if gap := c - m.acctFrom; gap > 0 {
		m.addWait(gap)
		m.acctFrom = c
	}
	m.closeRing(c)
}

// closeRing ends an open f-ring traversal at cycle c.
func (m *Message) closeRing(c int64) {
	if m.ringSince >= 0 {
		m.LatRing += c - m.ringSince
		m.ringSince = -1
	}
}

// LatencyTotal returns the sum of the four disjoint decomposition
// buckets. For a delivered message this equals DeliverTime - GenTime
// (the partition invariant TestLatencyDecompositionSums locks in).
func (m *Message) LatencyTotal() int64 {
	return m.LatQueue + m.LatRoute + m.LatBlocked + m.LatMoving
}

// ---------------------------------------------------------------------
// Log2-bucketed latency histogram.

// LatencyBuckets is the number of log2 buckets tracked per window:
// bucket b counts latencies in [2^(b-1), 2^b), so 40 buckets cover
// every latency a practical run can produce.
const LatencyBuckets = 40

// LatencyHist is a log2-bucketed histogram of message latencies.
// Bucket index is bits.Len64(latency): latency 1 lands in bucket 1,
// [2,3] in bucket 2, [4,7] in bucket 3, and so on; bucket b's upper
// bound is 2^b - 1. The fixed-size array keeps Stats reset/clone/
// DeepEqual semantics trivial and the per-delivery fold allocation-free.
type LatencyHist [LatencyBuckets]int64

// Add folds one latency sample into the histogram.
func (h *LatencyHist) Add(lat int64) {
	if lat < 0 {
		lat = 0
	}
	b := bits.Len64(uint64(lat))
	if b >= LatencyBuckets {
		b = LatencyBuckets - 1
	}
	h[b]++
}

// Total returns the number of samples folded in.
func (h *LatencyHist) Total() int64 {
	var t int64
	for _, c := range h {
		t += c
	}
	return t
}

// Percentile returns the upper bound (2^b - 1) of the bucket containing
// the p-th percentile sample (p in [0,100]), or -1 when the histogram
// is empty. Because buckets are log2-sized the result is an upper bound
// on the true percentile, tight to within a factor of two — enough to
// tell a 300-cycle p99 from a 30,000-cycle one.
func (h *LatencyHist) Percentile(p float64) int64 {
	total := h.Total()
	if total == 0 {
		return -1
	}
	need := int64(math.Ceil(p / 100 * float64(total)))
	if need < 1 {
		need = 1
	}
	if need > total {
		need = total
	}
	var cum int64
	for b, c := range h {
		cum += c
		if cum >= need {
			if b == 0 {
				return 0
			}
			return (int64(1) << uint(b)) - 1
		}
	}
	return -1 // unreachable: cum reaches total
}

// ---------------------------------------------------------------------
// Per-link congestion counters (Config.ChannelTelemetry).

// LinkID densely encodes one directional physical link — node id's
// outgoing link in direction dir — as id*NumDirs + dir, the same row
// layout as the healthy-neighbor table. Links toward the mesh edge or a
// faulty neighbor simply never accumulate counts.
func LinkID(id topology.NodeID, dir topology.Direction) int {
	return int(id)*topology.NumDirs + int(dir)
}

// NumLinks returns the length of any LinkID-indexed table.
func (n *Network) NumLinks() int { return n.Topo.NodeCount() * topology.NumDirs }

// LinkStats is a snapshot of the per-link telemetry counters for one
// measurement window, taken by Network.LinkSnapshot. All slices are
// LinkID-indexed copies, safe to retain after the network resets.
type LinkStats struct {
	Width, Height int

	// Flits counts flits forwarded across the link inside the window.
	Flits []int64
	// Busy counts cycles the link had at least one would-be sender (a
	// routed VC with buffered flits, or a pending injection).
	Busy []int64
	// Blocked counts busy cycles in which no flit was forwarded: every
	// sender was stopped by downstream credit exhaustion or switch
	// contention. Blocked <= Busy per link.
	Blocked []int64
	// OnRing marks links that lie on an f-ring: both endpoints are
	// consecutive nodes of some fault ring, in either orientation.
	OnRing []bool
}

// LinkTelemetryEnabled reports whether per-link counters are being
// collected (Config.ChannelTelemetry at construction).
func (n *Network) LinkTelemetryEnabled() bool { return n.linkFlits != nil }

// LinkSnapshot copies the per-link counters for the current measurement
// window (since the last ResetStats), or nil when ChannelTelemetry is
// off. It allocates; call it once per run, not per cycle.
func (n *Network) LinkSnapshot() *LinkStats {
	if n.linkFlits == nil {
		return nil
	}
	return &LinkStats{
		Width:   n.Topo.Width(),
		Height:  n.Topo.Height(),
		Flits:   append([]int64(nil), n.linkFlits...),
		Busy:    append([]int64(nil), n.linkBusy...),
		Blocked: append([]int64(nil), n.linkBlocked...),
		OnRing:  append([]bool(nil), n.linkOnRing...),
	}
}

// LinkCounters exposes the LIVE per-link counter rows for samplers that
// must not allocate (internal/metrics). All slices are nil when
// ChannelTelemetry is off. Callers must treat them as read-only and
// must not retain them across a Network.Reset.
func (n *Network) LinkCounters() (flits, busy, blocked []int64, onRing []bool) {
	return n.linkFlits, n.linkBusy, n.linkBlocked, n.linkOnRing
}

// initLinkTelemetry allocates the counter arrays (construction time,
// ChannelTelemetry on).
func (n *Network) initLinkTelemetry() {
	links := n.NumLinks()
	n.linkFlits = make([]int64, links)
	n.linkBusy = make([]int64, links)
	n.linkBlocked = make([]int64, links)
	n.linkOnRing = make([]bool, links)
	n.buildRingLinks()
}

// resetLinkCounters zeroes the window counters in place (ResetStats and
// Network.Reset; no-op when telemetry is off).
func (n *Network) resetLinkCounters() {
	for i := range n.linkFlits {
		n.linkFlits[i] = 0
	}
	for i := range n.linkBusy {
		n.linkBusy[i] = 0
	}
	for i := range n.linkBlocked {
		n.linkBlocked[i] = 0
	}
}

// buildRingLinks recomputes the per-link f-ring membership tags from
// the current fault model: a directional link is on-ring when its
// endpoints are consecutive nodes of some f-ring (both orientations are
// tagged — ring traffic flows clockwise and counter-clockwise).
// Consecutive ring nodes are mesh-adjacent by construction; the
// adjacency probe below simply finds which direction connects them
// (and skips the clipped-chain wraparound pair, which need not be
// adjacent).
func (n *Network) buildRingLinks() {
	if n.linkOnRing == nil {
		return
	}
	for i := range n.linkOnRing {
		n.linkOnRing[i] = false
	}
	for _, ring := range n.Faults.Rings() {
		for _, id := range ring.Nodes {
			next, ok := ring.Next(id, true)
			if !ok {
				continue // terminal node of an open chain
			}
			for d := topology.Direction(0); d < topology.NumDirs; d++ {
				if n.Topo.NeighborID(id, d) == next {
					n.linkOnRing[LinkID(id, d)] = true
					n.linkOnRing[LinkID(next, d.Opposite())] = true
					break
				}
			}
		}
	}
}
