package core

import (
	"bufio"
	"encoding/json"
	"io"

	"wormmesh/internal/topology"
)

// TraceEvent is the JSON shape of one recorded engine event. Besides
// the live Recorder stream it is also the dump format of the in-memory
// FlightRecorder, so offline tooling reads both the same way.
type TraceEvent struct {
	Cycle int64  `json:"cycle"`
	Kind  string `json:"kind"` // inject | route | flit | deliver | kill | watchdog
	Msg   int64  `json:"msg"`
	Src   int32  `json:"src"`
	Dst   int32  `json:"dst"`
	Node  int32  `json:"node,omitempty"`
	Dir   string `json:"dir,omitempty"`
	VC    uint8  `json:"vc,omitempty"`
	Flit  int32  `json:"flit,omitempty"`
	// Cause qualifies kill events: global | stall | livelock.
	Cause string `json:"cause,omitempty"`
}

// Recorder is a Tracer that streams events as JSON lines, one object
// per event, suitable for offline analysis. Flit-movement events are
// optional (they dominate the volume); Close flushes the buffer.
type Recorder struct {
	w            *bufio.Writer
	enc          *json.Encoder
	IncludeFlits bool
	err          error
	events       int64
}

// NewRecorder wraps a writer. Set IncludeFlits to record every flit
// hop in addition to the per-message events.
func NewRecorder(w io.Writer) *Recorder {
	bw := bufio.NewWriterSize(w, 1<<16)
	return &Recorder{w: bw, enc: json.NewEncoder(bw)}
}

// Events returns the number of events written.
func (r *Recorder) Events() int64 { return r.events }

// Err returns the first write error, if any.
func (r *Recorder) Err() error { return r.err }

// Close flushes buffered events.
func (r *Recorder) Close() error {
	if err := r.w.Flush(); err != nil && r.err == nil {
		r.err = err
	}
	return r.err
}

func (r *Recorder) emit(e TraceEvent) {
	if r.err != nil {
		return
	}
	if err := r.enc.Encode(e); err != nil {
		r.err = err
		return
	}
	r.events++
}

// MessageInjected implements Tracer.
func (r *Recorder) MessageInjected(m *Message, cycle int64) {
	r.emit(TraceEvent{Cycle: cycle, Kind: "inject", Msg: m.ID, Src: int32(m.Src), Dst: int32(m.Dst)})
}

// HeaderRouted implements Tracer.
func (r *Recorder) HeaderRouted(m *Message, node topology.NodeID, ch Channel, cycle int64) {
	r.emit(TraceEvent{
		Cycle: cycle, Kind: "route", Msg: m.ID, Src: int32(m.Src), Dst: int32(m.Dst),
		Node: int32(node), Dir: ch.Dir.String(), VC: ch.VC,
	})
}

// FlitMoved implements Tracer.
func (r *Recorder) FlitMoved(f Flit, from topology.NodeID, ch Channel, cycle int64) {
	if !r.IncludeFlits {
		return
	}
	r.emit(TraceEvent{
		Cycle: cycle, Kind: "flit", Msg: f.Msg.ID, Src: int32(f.Msg.Src), Dst: int32(f.Msg.Dst),
		Node: int32(from), Dir: ch.Dir.String(), VC: ch.VC, Flit: f.Index,
	})
}

// MessageDelivered implements Tracer.
func (r *Recorder) MessageDelivered(m *Message, cycle int64) {
	r.emit(TraceEvent{Cycle: cycle, Kind: "deliver", Msg: m.ID, Src: int32(m.Src), Dst: int32(m.Dst)})
}

// MessageKilled implements Tracer.
func (r *Recorder) MessageKilled(m *Message, cause KillCause, cycle int64) {
	r.emit(TraceEvent{Cycle: cycle, Kind: "kill", Msg: m.ID, Src: int32(m.Src), Dst: int32(m.Dst), Cause: cause.String()})
}

// WatchdogFired implements Tracer. The victim fields are zero when the
// watchdog found no resource-holding message to tear down.
func (r *Recorder) WatchdogFired(victim *Message, cycle int64) {
	e := TraceEvent{Cycle: cycle, Kind: "watchdog"}
	if victim != nil {
		e.Msg, e.Src, e.Dst = victim.ID, int32(victim.Src), int32(victim.Dst)
	}
	r.emit(e)
}

// ReadTrace parses a JSONL trace back into events (for tests and
// analysis tools).
func ReadTrace(rd io.Reader) ([]TraceEvent, error) {
	var out []TraceEvent
	dec := json.NewDecoder(rd)
	for dec.More() {
		var e TraceEvent
		if err := dec.Decode(&e); err != nil {
			return out, err
		}
		out = append(out, e)
	}
	return out, nil
}
