package core

import (
	"fmt"

	"wormmesh/internal/topology"
)

// Validate checks the engine's structural invariants and returns the
// first violation found. It is O(all channels) and intended for tests,
// which typically call it every cycle on small configurations.
//
// Invariants:
//   - a VC buffer only holds flits of the VC's owning message;
//   - flit indices within a buffer are consecutive and increasing;
//   - buffers never exceed the configured depth;
//   - an unowned VC has an empty buffer and is not marked routed;
//   - a routed VC's output channel targets an existing healthy node
//     (or Local at the owner's destination);
//   - the active list matches exactly the owned VCs;
//   - faulty routers hold no traffic.
func (n *Network) Validate() error {
	for i := range n.routers {
		r := &n.routers[i]
		id := topology.NodeID(i)
		faulty := n.Faults.IsFaulty(id)
		activeSet := map[int32]bool{}
		for _, code := range r.active {
			if activeSet[code] {
				return fmt.Errorf("node %d: duplicate active code %d", id, code)
			}
			activeSet[code] = true
		}
		if faulty && (len(r.active) > 0 || len(r.srcQ) > 0 || r.inj.msg != nil) {
			return fmt.Errorf("faulty node %d holds traffic", id)
		}
		for p := 0; p < topology.NumDirs; p++ {
			for v := range r.in[p] {
				s := &r.in[p][v]
				code := int32(p)*int32(n.Cfg.NumVCs) + int32(v)
				if (s.owner != nil) != activeSet[code] {
					return fmt.Errorf("node %d port %d vc %d: owner=%v but active=%v",
						id, p, v, s.owner != nil, activeSet[code])
				}
				if len(s.buf) > n.Cfg.BufDepth {
					return fmt.Errorf("node %d port %d vc %d: %d flits exceed depth %d",
						id, p, v, len(s.buf), n.Cfg.BufDepth)
				}
				if s.owner == nil {
					if len(s.buf) != 0 {
						return fmt.Errorf("node %d port %d vc %d: unowned VC holds %d flits", id, p, v, len(s.buf))
					}
					if s.routed {
						return fmt.Errorf("node %d port %d vc %d: unowned VC marked routed", id, p, v)
					}
					continue
				}
				for fi, f := range s.buf {
					if f.Msg != s.owner {
						return fmt.Errorf("node %d port %d vc %d: foreign flit (msg %d in VC owned by %d)",
							id, p, v, f.Msg.ID, s.owner.ID)
					}
					if fi > 0 && f.Index != s.buf[fi-1].Index+1 {
						return fmt.Errorf("node %d port %d vc %d: flit indices not consecutive (%d then %d)",
							id, p, v, s.buf[fi-1].Index, f.Index)
					}
				}
				if s.routed {
					if s.out.Dir == topology.Local {
						if s.owner.Dst != id {
							return fmt.Errorf("node %d: VC routed Local but owner's dst is %d", id, s.owner.Dst)
						}
					} else {
						nb := n.Mesh.NeighborID(id, s.out.Dir)
						if nb == topology.Invalid {
							return fmt.Errorf("node %d: VC routed off-mesh (%v)", id, s.out.Dir)
						}
						if n.Faults.IsFaulty(nb) {
							return fmt.Errorf("node %d: VC routed into faulty node %d", id, nb)
						}
						if int(s.out.VC) >= n.Cfg.NumVCs {
							return fmt.Errorf("node %d: VC routed to out-of-range vc %d", id, s.out.VC)
						}
					}
				}
			}
		}
	}
	return nil
}
