package core

import (
	"fmt"

	"wormmesh/internal/topology"
)

// Validate checks the engine's structural invariants and returns the
// first violation found. It is O(all channels) and allocation-free: it
// runs under the watchdog cadence in tests (often every cycle), so it
// reuses an epoch-stamped scratch table held on the Network instead of
// building a map per call.
//
// Invariants:
//   - a VC's flit window stays inside the owning message and never
//     exceeds the configured buffer depth;
//   - an unrouted VC with buffered flits has the header at its head;
//   - an unowned VC has an empty window and is not marked routed;
//   - a routed VC's output channel targets an existing healthy node
//     (or Local at the owner's destination);
//   - the active list matches exactly the owned VCs, with consistent
//     back-references;
//   - the network-wide active message set is consistent (dense indices,
//     no duplicates);
//   - faulty routers hold no traffic;
//   - the dirty-router set holds exactly the routers with engine state
//     (worklist.go's membership invariant), and its population count
//     matches the bitmap.
func (n *Network) Validate() error {
	busyBits := 0
	for i := range n.routers {
		r := &n.routers[i]
		id := topology.NodeID(i)
		faulty := n.Faults.IsFaulty(id)
		wantBusy := len(r.active) > 0 || len(r.srcQ) > 0 || r.inj.msg != nil
		if got := n.isBusy(id); got != wantBusy {
			return fmt.Errorf("node %d: dirty-set membership %v, want %v (active=%d srcQ=%d inj=%v)",
				id, got, wantBusy, len(r.active), len(r.srcQ), r.inj.msg != nil)
		}
		if wantBusy {
			busyBits++
		}
		// Epoch-stamp the router's active codes: valSeen[code] ==
		// n.valEpoch marks membership without any per-call clearing.
		n.valEpoch++
		for ai, code := range r.active {
			if code < 0 || int(code) >= len(n.valSeen) {
				return fmt.Errorf("node %d: active code %d out of range", id, code)
			}
			if n.valSeen[code] == n.valEpoch {
				return fmt.Errorf("node %d: duplicate active code %d", id, code)
			}
			n.valSeen[code] = n.valEpoch
			if got := r.vcAt(code).activeIdx; got != int32(ai) {
				return fmt.Errorf("node %d: active code %d back-reference %d, want %d", id, code, got, ai)
			}
		}
		if faulty && (len(r.active) > 0 || len(r.srcQ) > 0 || r.inj.msg != nil) {
			return fmt.Errorf("faulty node %d holds traffic", id)
		}
		for p := 0; p < topology.NumDirs; p++ {
			for v := 0; v < n.Cfg.NumVCs; v++ {
				s := r.vc(topology.Direction(p), v, n.Cfg.NumVCs)
				code := int32(p)*int32(n.Cfg.NumVCs) + int32(v)
				inActive := n.valSeen[code] == n.valEpoch
				if (s.owner != nil) != inActive {
					return fmt.Errorf("node %d port %d vc %d: owner=%v but active=%v",
						id, p, v, s.owner != nil, inActive)
				}
				if int(s.count) > n.Cfg.BufDepth {
					return fmt.Errorf("node %d port %d vc %d: %d flits exceed depth %d",
						id, p, v, s.count, n.Cfg.BufDepth)
				}
				if s.owner == nil {
					if s.count != 0 {
						return fmt.Errorf("node %d port %d vc %d: unowned VC holds %d flits", id, p, v, s.count)
					}
					if s.routed {
						return fmt.Errorf("node %d port %d vc %d: unowned VC marked routed", id, p, v)
					}
					continue
				}
				if s.count < 0 || s.first < 0 || int(s.first)+int(s.count) > s.owner.Length {
					return fmt.Errorf("node %d port %d vc %d: flit window [%d,%d) outside message of %d flits",
						id, p, v, s.first, s.first+s.count, s.owner.Length)
				}
				if !s.routed && s.count > 0 && !s.headIsHeader() {
					return fmt.Errorf("node %d port %d vc %d: unrouted VC heads flit %d, want header",
						id, p, v, s.first)
				}
				if s.routed {
					if s.out.Dir == topology.Local {
						if s.owner.Dst != id {
							return fmt.Errorf("node %d: VC routed Local but owner's dst is %d", id, s.owner.Dst)
						}
					} else {
						nb := n.Topo.NeighborID(id, s.out.Dir)
						if nb == topology.Invalid {
							return fmt.Errorf("node %d: VC routed off-mesh (%v)", id, s.out.Dir)
						}
						if n.Faults.IsFaulty(nb) {
							return fmt.Errorf("node %d: VC routed into faulty node %d", id, nb)
						}
						if int(s.out.VC) >= n.Cfg.NumVCs {
							return fmt.Errorf("node %d: VC routed to out-of-range vc %d", id, s.out.VC)
						}
					}
				}
			}
		}
	}
	if busyBits != n.busyCount {
		return fmt.Errorf("dirty-set population %d, want %d", n.busyCount, busyBits)
	}
	for i, m := range n.active {
		if m == nil {
			return fmt.Errorf("active[%d] is nil", i)
		}
		if m.activeIdx != int32(i) {
			return fmt.Errorf("active[%d] (msg %d) back-reference %d", i, m.ID, m.activeIdx)
		}
	}
	return nil
}
