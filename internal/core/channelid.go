package core

import (
	"wormmesh/internal/topology"
)

// ChannelID densely encodes one input virtual channel of the network —
// the triple (node, input port, vc) — as a single small integer:
//
//	ChannelID = (node*NumDirs + port)*NumVCs + vc
//
// Every engine table that is keyed by a channel (the parallel engine's
// grant table, the validator's scratch, …) is a flat slice indexed by
// ChannelID, so per-cycle lookups are a single bounds-checked load with
// no hashing and no map iteration. The per-router active lists store
// the router-local residue of the same encoding (port*NumVCs + vc, see
// localChannel), so global and local views convert with one
// multiply-add.
type ChannelID int32

// localChannel is the router-local residue of a ChannelID: the channel
// (port, vc) encoded as port*NumVCs + vc. The router's active list
// holds localChannel codes; ChannelID = node*NumDirs*NumVCs + local.
type localChannel = int32

// InvalidChannel is the sentinel for "no channel".
const InvalidChannel ChannelID = -1

// chansPerRouter returns the number of input VCs each router owns.
func (n *Network) chansPerRouter() int32 {
	return int32(topology.NumDirs) * int32(n.Cfg.NumVCs)
}

// NumChannels returns the number of input virtual channels in the
// network — the length of any ChannelID-indexed table.
func (n *Network) NumChannels() int {
	return n.Topo.NodeCount() * topology.NumDirs * n.Cfg.NumVCs
}

// ChanID encodes (node, input port, vc) as a dense ChannelID.
func (n *Network) ChanID(node topology.NodeID, port topology.Direction, vc uint8) ChannelID {
	return ChannelID((int32(node)*int32(topology.NumDirs)+int32(port))*int32(n.Cfg.NumVCs) + int32(vc))
}

// ChannelOf decodes a ChannelID back into its (node, port, vc) triple.
func (n *Network) ChannelOf(id ChannelID) (node topology.NodeID, port topology.Direction, vc uint8) {
	vcs := int32(n.Cfg.NumVCs)
	vc = uint8(int32(id) % vcs)
	rest := int32(id) / vcs
	return topology.NodeID(rest / int32(topology.NumDirs)), topology.Direction(rest % int32(topology.NumDirs)), vc
}

// downstreamChanID returns the dense id of the input VC that output
// channel ch of node `from` feeds. The caller must have verified the
// neighbor exists (ch came from allocate/selectFreeHashed, which only
// return channels toward live neighbors).
func (n *Network) downstreamChanID(from topology.NodeID, ch Channel) ChannelID {
	nb := n.nbr[int(from)*topology.NumDirs+int(ch.Dir)]
	return n.ChanID(nb, ch.Dir.Opposite(), ch.VC)
}

// arbKey is the stable arbitration key of the downstream input VC fed
// by output channel ch of node `from`:
//
//	nb*(NumPorts*256) + oppositePort*256 + vc
//
// This is the historical sparse encoding the parallel engine's
// splitmix64 grant tournament hashes. It is kept verbatim — and
// decoupled from the dense ChannelID used for table indexing — because
// changing the formula would change every tournament outcome and break
// the golden determinism contract (identical Stats for a given seed
// across engine revisions; see DESIGN.md "Memory layout & determinism
// contract").
func (n *Network) arbKey(from topology.NodeID, ch Channel) int64 {
	nb := n.nbr[int(from)*topology.NumDirs+int(ch.Dir)]
	return int64(nb)*int64(NumPorts*256) + int64(ch.Dir.Opposite())*256 + int64(ch.VC)
}
