package core

import (
	"math/rand"
	"testing"

	"wormmesh/internal/topology"
)

// TestStepLoadedAllocsSampler locks in the sampler's steady-state
// allocation budget: once Start has sized the ring, a loaded Step plus
// a sampler Tick — including the cycles where a window actually closes
// — must not touch the heap.
func TestStepLoadedAllocsSampler(t *testing.T) {
	var mesh topology.Topology = topology.New(10, 10)
	n, rng, id := loadNetwork(t, mesh, 0)
	s := NewWindowSampler(64, 32)
	s.Start(n, 0)
	allocs := testing.AllocsPerRun(500, func() {
		stepLoaded(n, mesh, rng, id)
		s.Tick(n)
	})
	if allocs != 0 {
		t.Errorf("loaded Step with sampler allocates %.2f objects/cycle, want 0", allocs)
	}
	if s.Seq() < 5 {
		t.Fatalf("sampler closed %d windows during the measured region, want several", s.Seq())
	}
}

// TestStepLoadedAllocsSamplerTelemetry is the same budget with link
// telemetry enabled, so the per-link busy-fraction rows (the slab
// subslices) are exercised on the measured path too.
func TestStepLoadedAllocsSamplerTelemetry(t *testing.T) {
	var mesh topology.Topology = topology.New(10, 10)
	cfg := DefaultConfig()
	cfg.NumVCs = 8
	cfg.MaxSourceQueue = 4
	cfg.ChannelTelemetry = true
	n, err := NewNetwork(mesh, nil, xyAlg{mesh: mesh, vcs: 8}, cfg, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	id := new(int64)
	for i := 0; i < 6000; i++ {
		stepLoaded(n, mesh, rng, id)
	}
	cushion := make([]*Message, 512)
	for i := range cushion {
		cushion[i] = n.AcquireMessage(0, 0, 1, 16)
	}
	for _, m := range cushion {
		n.recycle(m)
	}
	s := NewWindowSampler(64, 32)
	s.Start(n, 0)
	allocs := testing.AllocsPerRun(500, func() {
		stepLoaded(n, mesh, rng, id)
		s.Tick(n)
	})
	if allocs != 0 {
		t.Errorf("loaded Step with sampler+telemetry allocates %.2f objects/cycle, want 0", allocs)
	}
	last, ok := s.Latest()
	if !ok {
		t.Fatal("no snapshot produced")
	}
	if len(last.LinkBusy) != n.NumLinks() {
		t.Fatalf("LinkBusy rows have %d entries, want %d", len(last.LinkBusy), n.NumLinks())
	}
	busy := 0
	for _, b := range last.LinkBusy {
		if b > 0 {
			busy++
		}
	}
	if busy == 0 {
		t.Error("loaded mesh recorded no busy links in the last window")
	}
	if last.BlockedLinks == 0 {
		t.Log("no blocked links in the last window (load may be below contention)")
	}
}

// TestWindowSamplerSeries checks the snapshot series semantics: dense
// sequence numbers, contiguous [Start, End) ranges, delta consistency
// against the network's cumulative counters, and Since's replay and
// ring-eviction behavior.
func TestWindowSamplerSeries(t *testing.T) {
	var mesh topology.Topology = topology.New(8, 8)
	cfg := DefaultConfig()
	cfg.NumVCs = 8
	cfg.MaxSourceQueue = 4
	n, err := NewNetwork(mesh, nil, xyAlg{mesh: mesh, vcs: 8}, cfg, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(8))
	id := new(int64)
	s := NewWindowSampler(50, 4) // tiny ring to force eviction
	s.Start(n, 1000)
	for i := 0; i < 1000; i++ {
		stepLoaded(n, mesh, rng, id)
		s.Tick(n)
	}
	if got, want := s.Seq(), int64(20); got != want {
		t.Fatalf("Seq = %d, want %d", got, want)
	}
	all := s.Since(0)
	if len(all) != 4 {
		t.Fatalf("Since(0) returned %d snapshots with a 4-slot ring, want 4", len(all))
	}
	for i, w := range all {
		if w.Seq != int64(16+i) {
			t.Errorf("snapshot %d has Seq %d, want %d", i, w.Seq, 16+i)
		}
		if w.End-w.Start != 50 {
			t.Errorf("snapshot %d spans [%d,%d), want 50 cycles", i, w.Start, w.End)
		}
		if i > 0 && w.Start != all[i-1].End {
			t.Errorf("snapshot %d starts at %d, previous ended at %d", i, w.Start, all[i-1].End)
		}
	}
	if got := s.Since(19); len(got) != 1 || got[0].Seq != 19 {
		t.Errorf("Since(19) = %d snapshots (first seq %v), want exactly the last", len(got), got)
	}
	if got := s.Since(20); got != nil {
		t.Errorf("Since(Seq) = %v, want nil", got)
	}
	meta := s.Meta()
	if meta.WindowCycles != 50 || meta.TotalCycles != 1000 || meta.HealthyNodes != 64 {
		t.Errorf("Meta = %+v, want window 50, total 1000, healthy 64", meta)
	}

	// Fresh sampler with a roomy ring: the full series' deltas must sum
	// to the cumulative counters accumulated while it watched.
	s2 := NewWindowSampler(50, 64)
	s2.Start(n, 0)
	before := n.LiveCounters()
	for i := 0; i < 500; i++ {
		stepLoaded(n, mesh, rng, id)
		s2.Tick(n)
	}
	s2.Flush(n)
	after := n.LiveCounters()
	var delivered, flits int64
	for _, w := range s2.Since(0) {
		delivered += w.Delivered
		flits += w.DeliveredFlits
	}
	if want := after.Delivered - before.Delivered; delivered != want {
		t.Errorf("window Delivered deltas sum to %d, cumulative counters moved %d", delivered, want)
	}
	if want := after.DeliveredFlits - before.DeliveredFlits; flits != want {
		t.Errorf("window flit deltas sum to %d, cumulative counters moved %d", flits, want)
	}
}

// TestWindowSamplerResetClamp checks the warm-up cut behavior: a
// mid-window ResetStats zeroes the live counters, and the next window's
// deltas clamp to the post-reset tally instead of going negative.
func TestWindowSamplerResetClamp(t *testing.T) {
	var mesh topology.Topology = topology.New(8, 8)
	cfg := DefaultConfig()
	cfg.NumVCs = 8
	cfg.MaxSourceQueue = 4
	n, err := NewNetwork(mesh, nil, xyAlg{mesh: mesh, vcs: 8}, cfg, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(8))
	id := new(int64)
	s := NewWindowSampler(100, 16)
	s.Start(n, 0)
	for i := 0; i < 250; i++ {
		stepLoaded(n, mesh, rng, id)
		s.Tick(n)
		if i == 149 {
			n.ResetStats() // mid-window warm-up cut
		}
	}
	for _, w := range s.Since(0) {
		if w.Delivered < 0 || w.DeliveredFlits < 0 || w.Generated < 0 || w.AvgLatency < 0 {
			t.Fatalf("negative delta after ResetStats: %+v", w)
		}
	}
}
