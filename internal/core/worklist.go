package core

import (
	"math/bits"

	"wormmesh/internal/topology"
)

// Activity-driven stepping. The paper's latency-vs-traffic curves spend
// most of their points at low injection rates, where almost every
// router of the mesh is idle on almost every cycle — yet the original
// routingPhase and switchPhase scanned all routers unconditionally.
// The engine therefore maintains a *dirty-router set*: the exact set of
// routers that hold any engine state (a non-empty source queue, an
// injection in progress, or at least one owned input VC). Only those
// routers can contribute routing requests, switch-allocation work, or
// staged moves, so the per-cycle phases iterate the set instead of the
// mesh, and a fully quiescent network short-circuits the cycle in O(1).
//
// Representation: a bitmap (one bit per router) plus a population
// count. A bitmap was chosen over the dense epoch-stamped list the
// other engine sets use (Network.active, router.active) because the
// determinism contract requires iterating dirty routers in ASCENDING
// router-index order — the order of the original full scans — and a
// bitmap yields that order for free via trailing-zero iteration, where
// a swap-remove list would need a per-cycle sort. Membership updates
// are O(1) and idempotent; iteration is O(words + population), which
// even for a fully idle 100×100 mesh is ~160 word loads instead of
// 10 000 router visits.
//
// Membership invariant (checked by Network.Validate):
//
//	busy(r) ⇔ len(r.srcQ) > 0 ∨ r.inj.msg ≠ nil ∨ len(r.active) > 0
//
// Events that can set the bit — who marks whom dirty:
//
//   - Offer appends to r.srcQ            → markBusy(source router)
//   - VC allocation claims a downstream
//     input VC (serial routingPhase and
//     the parallel engine's grant apply) → markBusy(downstream router)
//   - watchdog kill with KillReinject
//     re-queues the clone               → markBusy(source router)
//
// Flit arrivals and credit returns never change membership on their
// own: a flit can only arrive on a VC that was claimed earlier (the
// claim marked the router), and a router waiting on a downstream credit
// still owns the blocked VC. Keeping credit-blocked routers in the set
// is REQUIRED for bit-exactness, not a missed optimization: the serial
// switch phase consumes RNG (the outOrder shuffle) for every router
// with owned VCs or a pending injection, sendable or not, so the
// worklist must visit exactly those routers to replay the stream.
//
// Events that can clear the bit — each re-checks the invariant:
//
//   - releaseVC frees a VC (tail departure, ejection, watchdog kill)
//   - commit finishes an injection (inj cleared, srcQ popped)
//   - watchdog kill clears the victim's source-queue head/injection
//
// DebugFullScan restores the original full-mesh scans (the worklist is
// still maintained, so the toggle may flip between cycles); the golden
// equivalence tests in internal/sim prove worklist ≡ full-scan Stats
// bit-identically across load levels, fault scenarios and engines.
var DebugFullScan bool

// markBusy inserts a router into the dirty set (idempotent).
func (n *Network) markBusy(id topology.NodeID) {
	w, b := int(id)>>6, uint64(1)<<(uint(id)&63)
	if n.busy[w]&b == 0 {
		n.busy[w] |= b
		n.busyCount++
	}
}

// isBusy reports dirty-set membership (Validate and tests).
func (n *Network) isBusy(id topology.NodeID) bool {
	return n.busy[int(id)>>6]&(uint64(1)<<(uint(id)&63)) != 0
}

// BusyRouters returns the dirty-set population — observability for
// tests and load monitoring. The quiescent short-circuit engages when
// this reaches zero.
func (n *Network) BusyRouters() int { return n.busyCount }

// checkIdle removes the router from the dirty set if it no longer holds
// any engine state. Called after every event that can release the last
// resource of a router.
func (n *Network) checkIdle(r *router) {
	if len(r.active) != 0 || r.inj.msg != nil || len(r.srcQ) != 0 {
		return
	}
	w, b := int(r.id)>>6, uint64(1)<<(uint(r.id)&63)
	if n.busy[w]&b != 0 {
		n.busy[w] &^= b
		n.busyCount--
	}
}

// collectWork snapshots the dirty set into n.work in ascending
// router-index order. The phases iterate the snapshot, not the live
// bitmap: commit may clear bits mid-cycle (deliveries) and VC claims
// may set bits mid-cycle (newly claimed downstream routers), and the
// full-scan semantics the worklist replays are "membership as of the
// start of the phase". The switch phase re-collects after the routing
// phase precisely so that routers claimed THIS cycle get their outOrder
// shuffle, exactly as the full scan gave them one.
func (n *Network) collectWork() {
	n.work = n.work[:0]
	for wi, word := range n.busy {
		base := wi << 6
		for word != 0 {
			n.work = append(n.work, topology.NodeID(base+bits.TrailingZeros64(word)))
			word &= word - 1
		}
	}
}

// resetBusy empties the dirty set (Network.Reset).
func (n *Network) resetBusy() {
	for i := range n.busy {
		n.busy[i] = 0
	}
	n.busyCount = 0
}
