package core

import "wormmesh/internal/topology"

// Tracer observes engine events. All callbacks run synchronously on
// the simulation goroutine; implementations must be fast and must not
// mutate the network. A nil tracer (the default) costs one branch per
// event.
type Tracer interface {
	// MessageInjected fires when a header flit leaves its source
	// queue.
	MessageInjected(m *Message, cycle int64)
	// HeaderRouted fires when a header wins an output channel at a
	// node (including the injection grant at the source).
	HeaderRouted(m *Message, node topology.NodeID, ch Channel, cycle int64)
	// FlitMoved fires for every flit transfer across a link.
	FlitMoved(f Flit, from topology.NodeID, ch Channel, cycle int64)
	// MessageDelivered fires when the tail flit is consumed at the
	// destination.
	MessageDelivered(m *Message, cycle int64)
	// MessageKilled fires when deadlock/livelock recovery tears a
	// message down.
	MessageKilled(m *Message, cycle int64)
}

// SetTracer installs (or, with nil, removes) the event observer.
func (n *Network) SetTracer(t Tracer) { n.tracer = t }

// NopTracer implements Tracer with empty methods; embed it to observe
// a subset of events.
type NopTracer struct{}

// MessageInjected implements Tracer.
func (NopTracer) MessageInjected(*Message, int64) {}

// HeaderRouted implements Tracer.
func (NopTracer) HeaderRouted(*Message, topology.NodeID, Channel, int64) {}

// FlitMoved implements Tracer.
func (NopTracer) FlitMoved(Flit, topology.NodeID, Channel, int64) {}

// MessageDelivered implements Tracer.
func (NopTracer) MessageDelivered(*Message, int64) {}

// MessageKilled implements Tracer.
func (NopTracer) MessageKilled(*Message, int64) {}
