package core

import "wormmesh/internal/topology"

// KillCause distinguishes the three watchdog mechanisms that can tear a
// message down. The paper's deadlock-recovery accounting needs them kept
// apart: a global recovery means the whole network stopped (a candidate
// true deadlock), a stall kill means one message sat still while the
// rest made progress (a local cycle or starvation), and a livelock kill
// means a header circled past the hop budget without ever blocking.
type KillCause uint8

// Kill causes.
const (
	// KillCauseGlobal is the global watchdog: no flit anywhere moved for
	// Config.DeadlockCycles, and this message was the chosen victim.
	KillCauseGlobal KillCause = iota
	// KillCauseStall is the per-message check: the message's flits sat
	// still for Config.MessageStallCycles while the network moved.
	KillCauseStall
	// KillCauseLivelock is the hop budget: the header exceeded
	// Config.MaxHops.
	KillCauseLivelock
)

var killCauseNames = [...]string{"global", "stall", "livelock"}

// String returns the cause mnemonic used in traces and reports.
func (c KillCause) String() string {
	if int(c) < len(killCauseNames) {
		return killCauseNames[c]
	}
	return "unknown"
}

// Tracer observes engine events. All callbacks run synchronously on
// the simulation goroutine; implementations must be fast and must not
// mutate the network. A nil tracer (the default) costs one branch per
// event; installing both a Tracer and a FlightRecorder fans out through
// an internal tee, keeping that single branch on the disabled path.
type Tracer interface {
	// MessageInjected fires when a header flit leaves its source
	// queue.
	MessageInjected(m *Message, cycle int64)
	// HeaderRouted fires when a header wins an output channel at a
	// node (including the injection grant at the source).
	HeaderRouted(m *Message, node topology.NodeID, ch Channel, cycle int64)
	// FlitMoved fires for every flit transfer across a link.
	FlitMoved(f Flit, from topology.NodeID, ch Channel, cycle int64)
	// MessageDelivered fires when the tail flit is consumed at the
	// destination.
	MessageDelivered(m *Message, cycle int64)
	// MessageKilled fires when deadlock/livelock recovery tears a
	// message down; cause says which watchdog mechanism fired.
	MessageKilled(m *Message, cause KillCause, cycle int64)
	// WatchdogFired fires when the GLOBAL watchdog trips (no flit moved
	// for Config.DeadlockCycles), before the victim is torn down.
	// victim is the message recovery chose, or nil when no message
	// held network resources.
	WatchdogFired(victim *Message, cycle int64)
}

// SetTracer installs (or, with nil, removes) the event observer. It
// composes with SetFlightRecorder: when both are installed, events fan
// out to the flight recorder first, then the tracer.
func (n *Network) SetTracer(t Tracer) {
	n.userTracer = t
	n.rewireTracer()
}

// rewireTracer folds the user tracer and the flight recorder into the
// single n.tracer observation point the engine branches on. The tee is
// rebuilt on every (re)wire — it is one small allocation per install,
// never per event.
func (n *Network) rewireTracer() {
	switch {
	case n.flight != nil && n.userTracer != nil:
		n.tracer = &teeTracer{first: n.flight, second: n.userTracer}
	case n.flight != nil:
		n.tracer = n.flight
	default:
		n.tracer = n.userTracer
	}
}

// teeTracer fans every event out to two observers in order.
type teeTracer struct {
	first, second Tracer
}

// MessageInjected implements Tracer.
func (t *teeTracer) MessageInjected(m *Message, cycle int64) {
	t.first.MessageInjected(m, cycle)
	t.second.MessageInjected(m, cycle)
}

// HeaderRouted implements Tracer.
func (t *teeTracer) HeaderRouted(m *Message, node topology.NodeID, ch Channel, cycle int64) {
	t.first.HeaderRouted(m, node, ch, cycle)
	t.second.HeaderRouted(m, node, ch, cycle)
}

// FlitMoved implements Tracer.
func (t *teeTracer) FlitMoved(f Flit, from topology.NodeID, ch Channel, cycle int64) {
	t.first.FlitMoved(f, from, ch, cycle)
	t.second.FlitMoved(f, from, ch, cycle)
}

// MessageDelivered implements Tracer.
func (t *teeTracer) MessageDelivered(m *Message, cycle int64) {
	t.first.MessageDelivered(m, cycle)
	t.second.MessageDelivered(m, cycle)
}

// MessageKilled implements Tracer.
func (t *teeTracer) MessageKilled(m *Message, cause KillCause, cycle int64) {
	t.first.MessageKilled(m, cause, cycle)
	t.second.MessageKilled(m, cause, cycle)
}

// WatchdogFired implements Tracer.
func (t *teeTracer) WatchdogFired(victim *Message, cycle int64) {
	t.first.WatchdogFired(victim, cycle)
	t.second.WatchdogFired(victim, cycle)
}

// NopTracer implements Tracer with empty methods; embed it to observe
// a subset of events.
type NopTracer struct{}

// MessageInjected implements Tracer.
func (NopTracer) MessageInjected(*Message, int64) {}

// HeaderRouted implements Tracer.
func (NopTracer) HeaderRouted(*Message, topology.NodeID, Channel, int64) {}

// FlitMoved implements Tracer.
func (NopTracer) FlitMoved(Flit, topology.NodeID, Channel, int64) {}

// MessageDelivered implements Tracer.
func (NopTracer) MessageDelivered(*Message, int64) {}

// MessageKilled implements Tracer.
func (NopTracer) MessageKilled(*Message, KillCause, int64) {}

// WatchdogFired implements Tracer.
func (NopTracer) WatchdogFired(*Message, int64) {}
