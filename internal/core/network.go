package core

import (
	"fmt"
	"math/rand"

	"wormmesh/internal/fault"
	"wormmesh/internal/topology"
)

// Network is one simulated wormhole-switched mesh: routers, link state,
// in-flight messages, and measurement counters. A Network instance is
// not safe for concurrent use; run independent simulations in parallel
// instead (see internal/sweep).
type Network struct {
	Mesh   topology.Mesh
	Faults *fault.Model
	Alg    Algorithm
	Cfg    Config

	rng     *rand.Rand
	routers []router
	cycle   int64

	lastGlobalMove int64
	lastStallScan  int64
	active         map[*Message]struct{}

	stats      Stats
	statsStart int64
	tracer     Tracer
	par        *parallelEngine

	// Reused scratch buffers (inner-loop allocation avoidance).
	cands    CandidateSet
	freeCh   []Channel
	requests []request
	moves    []move
	senders  []sender
	outOrder [NumPorts]topology.Direction
	dirBuf   []topology.Direction
	msgSeq   int64
}

// request identifies a header awaiting an output channel: either an
// input VC (port < InjectPort) or the head of the source queue.
type request struct {
	node topology.NodeID
	port int8 // 0..3 = input port, InjectPort = source queue head
	vc   uint8
}

type moveKind uint8

const (
	moveLink moveKind = iota
	moveInject
	moveEject
)

// move is a staged flit transfer, committed at end of cycle so that all
// decisions within one cycle observe the same start-of-cycle state.
type move struct {
	kind moveKind
	node topology.NodeID // router whose crossbar the flit traverses
	port int8            // source input port (moveLink/moveEject)
	vc   uint8
}

// sender is a switch-allocation candidate for one output.
type sender struct {
	port int8 // InjectPort for the injection slot
	vc   uint8
}

// NumPorts re-exported locally for loop bounds.
const NumPorts = topology.NumPorts

// InjectPort aliases topology.InjectPort for readability inside core.
const InjectPort = topology.InjectPort

// NewNetwork assembles a network over the given mesh, fault pattern and
// routing algorithm. The algorithm's NumVCs must not exceed
// cfg.NumVCs; the surplus channels, if any, simply stay idle so that
// hardware cost comparisons remain fair.
func NewNetwork(m topology.Mesh, f *fault.Model, alg Algorithm, cfg Config, rng *rand.Rand) (*Network, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if f == nil {
		f = fault.None(m)
	}
	if f.Mesh != m {
		return nil, fmt.Errorf("core: fault model built for %v, network is %v", f.Mesh, m)
	}
	if alg.NumVCs() > cfg.NumVCs {
		return nil, fmt.Errorf("core: algorithm %s needs %d VCs, config provides %d", alg.Name(), alg.NumVCs(), cfg.NumVCs)
	}
	n := &Network{
		Mesh:           m,
		Faults:         f,
		Alg:            alg,
		Cfg:            cfg,
		rng:            rng,
		routers:        make([]router, m.NodeCount()),
		active:         make(map[*Message]struct{}),
		lastGlobalMove: 0,
	}
	for i := range n.routers {
		r := &n.routers[i]
		r.id = topology.NodeID(i)
		for p := 0; p < topology.NumDirs; p++ {
			r.in[p] = make([]vcState, cfg.NumVCs)
			for v := range r.in[p] {
				s := &r.in[p][v]
				s.buf = make([]Flit, 0, cfg.BufDepth)
				s.activeIdx = -1
				s.stagedIn = -1
				s.stagedOut = -1
				s.port = int8(p)
				s.idx = uint8(v)
			}
		}
	}
	n.stats.init(cfg.NumVCs, m.NodeCount())
	return n, nil
}

// Cycle returns the current simulation time.
func (n *Network) Cycle() int64 { return n.cycle }

// InFlight returns the number of messages generated but not yet
// delivered or killed.
func (n *Network) InFlight() int { return len(n.active) }

// QueueLen returns the source-queue length at a node.
func (n *Network) QueueLen(id topology.NodeID) int { return len(n.routers[id].srcQ) }

// NextMessageID hands out engine-unique message identifiers for
// drivers that do not keep their own counter.
func (n *Network) NextMessageID() int64 {
	n.msgSeq++
	return n.msgSeq
}

// Offer enqueues a freshly generated message at its source node. The
// caller must have set GenTime; Offer runs the routing algorithm's
// InitMessage. It returns false (counting a refused offer) when the
// source queue is bounded and full. Offering traffic at or to a faulty
// node is a driver bug and panics.
func (n *Network) Offer(m *Message) bool {
	if n.Faults.IsFaulty(m.Src) || n.Faults.IsFaulty(m.Dst) {
		panic(fmt.Sprintf("core: traffic at faulty node: %v", m))
	}
	if m.Src == m.Dst {
		panic(fmt.Sprintf("core: message to self: %v", m))
	}
	r := &n.routers[m.Src]
	if n.Cfg.MaxSourceQueue > 0 && len(r.srcQ) >= n.Cfg.MaxSourceQueue {
		if m.GenTime >= n.statsStart {
			n.stats.Refused++
		}
		return false
	}
	n.Alg.InitMessage(m)
	m.lastMove = n.cycle
	r.srcQ = append(r.srcQ, m)
	n.active[m] = struct{}{}
	if m.GenTime >= n.statsStart {
		n.stats.Generated++
	}
	return true
}

// Step advances the network one cycle: routing + VC allocation, then
// switch allocation and flit traversal, then watchdog checks. With
// EnableParallel, the parallel request–grant engine runs instead.
func (n *Network) Step() {
	if n.par != nil {
		n.stepParallel()
		return
	}
	n.routingPhase()
	n.switchPhase()
	n.watchdog()
	n.cycle++
}

// downstream resolves the input VC that output channel ch of node id
// feeds. ok is false when the neighbor does not exist or is faulty.
func (n *Network) downstream(id topology.NodeID, ch Channel) (*router, *vcState, bool) {
	nb := n.Mesh.NeighborID(id, ch.Dir)
	if nb == topology.Invalid || n.Faults.IsFaulty(nb) {
		return nil, nil, false
	}
	r := &n.routers[nb]
	return r, &r.in[ch.Dir.Opposite()][ch.VC], true
}

// routingPhase finds every header that needs an output channel, asks
// the routing algorithm for candidates, and performs VC allocation
// with random conflict resolution.
func (n *Network) routingPhase() {
	n.requests = n.requests[:0]
	for i := range n.routers {
		r := &n.routers[i]
		if r.inj.msg == nil && len(r.srcQ) > 0 {
			n.requests = append(n.requests, request{node: r.id, port: InjectPort})
		}
		for _, code := range r.active {
			s := r.vcAt(code, n.Cfg.NumVCs)
			if s.routed || len(s.buf) == 0 {
				continue // body VC, or claimed with header still in flight
			}
			if !s.buf[0].Head() {
				panic("core: unrouted VC with non-header at head")
			}
			if s.owner.Dst == r.id {
				s.routed = true
				s.out = Channel{Dir: topology.Local}
				continue
			}
			n.requests = append(n.requests, request{node: r.id, port: int8(code / int32(n.Cfg.NumVCs)), vc: uint8(code % int32(n.Cfg.NumVCs))})
		}
	}
	// Random service order = random conflict resolution among headers
	// competing for the same downstream VCs.
	n.rng.Shuffle(len(n.requests), func(i, j int) {
		n.requests[i], n.requests[j] = n.requests[j], n.requests[i]
	})
	for _, req := range n.requests {
		r := &n.routers[req.node]
		var m *Message
		if req.port == InjectPort {
			if r.inj.msg != nil || len(r.srcQ) == 0 {
				continue
			}
			m = r.srcQ[0]
		} else {
			s := &r.in[req.port][req.vc]
			if s.owner == nil || s.routed || len(s.buf) == 0 {
				continue
			}
			m = s.owner
		}
		n.cands.Reset()
		n.Alg.Candidates(m, req.node, &n.cands)
		ch, ok := n.allocate(req.node, &n.cands)
		if !ok {
			continue
		}
		dr, dvc, ok := n.downstream(req.node, ch)
		if !ok || dvc.owner != nil {
			panic("core: allocate returned unusable channel")
		}
		dr.claim(ch.Dir.Opposite(), int(ch.VC), m, n.cycle, n.Cfg.NumVCs)
		if req.port == InjectPort {
			r.inj = injState{msg: m, out: ch}
			m.lastMove = n.cycle
		} else {
			s := &r.in[req.port][req.vc]
			s.routed = true
			s.out = ch
		}
		ringBefore := m.RingIdx
		n.Alg.Advance(m, req.node, ch)
		if ringBefore < 0 && m.RingIdx >= 0 && n.cycle >= n.statsStart {
			n.stats.RingEntries++
		}
		if n.tracer != nil {
			n.tracer.HeaderRouted(m, req.node, ch, n.cycle)
		}
	}
}

// allocate picks one free channel from the earliest preference tier
// that has any, applying the configured selection policy.
func (n *Network) allocate(node topology.NodeID, cands *CandidateSet) (Channel, bool) {
	for t := 0; t < MaxTiers; t++ {
		tier := cands.Tier(t)
		if len(tier) == 0 {
			continue
		}
		n.freeCh = n.freeCh[:0]
		for _, ch := range tier {
			if _, dvc, ok := n.downstream(node, ch); ok && dvc.owner == nil {
				n.freeCh = append(n.freeCh, ch)
			}
		}
		if len(n.freeCh) == 0 {
			continue
		}
		switch n.Cfg.Selection {
		case SelectRandomChannel:
			return n.freeCh[n.rng.Intn(len(n.freeCh))], true
		case SelectRandomDir:
			n.dirBuf = n.dirBuf[:0]
			for _, ch := range n.freeCh {
				seen := false
				for _, d := range n.dirBuf {
					if d == ch.Dir {
						seen = true
						break
					}
				}
				if !seen {
					n.dirBuf = append(n.dirBuf, ch.Dir)
				}
			}
			d := n.dirBuf[n.rng.Intn(len(n.dirBuf))]
			same := n.freeCh[:0:0]
			for _, ch := range n.freeCh {
				if ch.Dir == d {
					same = append(same, ch)
				}
			}
			return same[n.rng.Intn(len(same))], true
		case SelectLowestVC:
			best := n.freeCh[0]
			for _, ch := range n.freeCh[1:] {
				if ch.VC < best.VC || (ch.VC == best.VC && ch.Dir < best.Dir) {
					best = ch
				}
			}
			return best, true
		}
	}
	return Channel{}, false
}

// switchPhase performs switch allocation (one flit per input port and
// per output physical channel per cycle; EjectBW flits on the local
// output) and commits the staged flit moves.
func (n *Network) switchPhase() {
	n.moves = n.moves[:0]
	for i := range n.routers {
		r := &n.routers[i]
		if len(r.active) == 0 && r.inj.msg == nil {
			continue
		}
		var portUsed [NumPorts]bool
		// Random output service order for fairness between outputs that
		// contend for the same input ports.
		n.outOrder = [NumPorts]topology.Direction{topology.East, topology.West, topology.North, topology.South, topology.Local}
		for k := NumPorts - 1; k > 0; k-- {
			j := n.rng.Intn(k + 1)
			n.outOrder[k], n.outOrder[j] = n.outOrder[j], n.outOrder[k]
		}
		for _, out := range n.outOrder {
			capacity := 1
			if out == topology.Local {
				capacity = n.Cfg.EjectBW
			}
			for capacity > 0 {
				n.senders = n.senders[:0]
				for _, code := range r.active {
					port := int8(code / int32(n.Cfg.NumVCs))
					if portUsed[port] {
						continue
					}
					s := r.vcAt(code, n.Cfg.NumVCs)
					if !s.routed || s.out.Dir != out || len(s.buf) == 0 || s.stagedOut == n.cycle {
						continue
					}
					if out != topology.Local {
						_, dvc, ok := n.downstream(r.id, s.out)
						if !ok {
							panic("core: routed VC towards missing neighbor")
						}
						if !n.hasCredit(dvc) {
							continue
						}
					}
					n.senders = append(n.senders, sender{port: port, vc: uint8(code % int32(n.Cfg.NumVCs))})
				}
				if out != topology.Local && r.inj.msg != nil && r.inj.out.Dir == out && !portUsed[InjectPort] {
					m := r.inj.msg
					if m.flitsInjected < m.Length {
						if _, dvc, ok := n.downstream(r.id, r.inj.out); ok && n.hasCredit(dvc) {
							n.senders = append(n.senders, sender{port: InjectPort})
						}
					}
				}
				if len(n.senders) == 0 {
					break
				}
				w := n.senders[n.rng.Intn(len(n.senders))]
				portUsed[w.port] = true
				switch {
				case w.port == InjectPort:
					_, dvc, _ := n.downstream(r.id, r.inj.out)
					dvc.stagedIn = n.cycle
					n.moves = append(n.moves, move{kind: moveInject, node: r.id})
				case out == topology.Local:
					s := &r.in[w.port][w.vc]
					s.stagedOut = n.cycle
					n.moves = append(n.moves, move{kind: moveEject, node: r.id, port: w.port, vc: w.vc})
				default:
					s := &r.in[w.port][w.vc]
					s.stagedOut = n.cycle
					_, dvc, _ := n.downstream(r.id, s.out)
					dvc.stagedIn = n.cycle
					n.moves = append(n.moves, move{kind: moveLink, node: r.id, port: w.port, vc: w.vc})
				}
				capacity--
			}
		}
	}
	n.commit()
}

// hasCredit reports whether a downstream VC can accept one more flit
// this cycle (start-of-cycle occupancy plus any staged arrival).
func (n *Network) hasCredit(dvc *vcState) bool {
	occ := len(dvc.buf)
	if dvc.stagedIn == n.cycle {
		occ++
	}
	return occ < n.Cfg.BufDepth
}

// commit applies the staged moves simultaneously.
func (n *Network) commit() {
	measuring := n.cycle >= n.statsStart
	for _, mv := range n.moves {
		r := &n.routers[mv.node]
		switch mv.kind {
		case moveInject:
			m := r.inj.msg
			idx := m.flitsInjected
			m.flitsInjected++
			_, dvc, _ := n.downstream(r.id, r.inj.out)
			dvc.buf = append(dvc.buf, Flit{Msg: m, Index: int32(idx)})
			if idx == 0 {
				m.InjectTime = n.cycle
				if measuring {
					n.stats.Injected++
				}
				if n.tracer != nil {
					n.tracer.MessageInjected(m, n.cycle)
				}
			}
			if n.tracer != nil {
				n.tracer.FlitMoved(Flit{Msg: m, Index: int32(idx)}, r.id, r.inj.out, n.cycle)
			}
			if idx == m.Length-1 {
				r.srcQ = r.srcQ[1:]
				r.inj.msg = nil
			}
			m.lastMove = n.cycle
			n.lastGlobalMove = n.cycle
			if measuring {
				r.crossings++
				n.stats.FlitHops++
			}
		case moveLink:
			s := &r.in[mv.port][mv.vc]
			f := s.popFront()
			_, dvc, _ := n.downstream(r.id, s.out)
			dvc.buf = append(dvc.buf, f)
			if f.Tail() {
				n.releaseVC(r, s)
			}
			f.Msg.lastMove = n.cycle
			n.lastGlobalMove = n.cycle
			if n.tracer != nil {
				n.tracer.FlitMoved(f, r.id, s.out, n.cycle)
			}
			if measuring {
				r.crossings++
				n.stats.FlitHops++
			}
		case moveEject:
			s := &r.in[mv.port][mv.vc]
			f := s.popFront()
			m := f.Msg
			if f.Tail() {
				n.releaseVC(r, s)
				m.DeliverTime = n.cycle
				delete(n.active, m)
				if n.tracer != nil {
					n.tracer.MessageDelivered(m, n.cycle)
				}
				if measuring {
					n.stats.recordDelivery(m, n.statsStart, n.Mesh.Distance(n.Mesh.CoordOf(m.Src), n.Mesh.CoordOf(m.Dst)))
				}
			}
			m.lastMove = n.cycle
			n.lastGlobalMove = n.cycle
			if measuring {
				r.crossings++
				n.stats.DeliveredFlits++
			}
		}
	}
}

func (s *vcState) popFront() Flit {
	f := s.buf[0]
	copy(s.buf, s.buf[1:])
	s.buf = s.buf[:len(s.buf)-1]
	return f
}

// releaseVC accumulates the VC's busy time and frees it.
func (n *Network) releaseVC(r *router, s *vcState) {
	start := s.acquired
	if start < n.statsStart {
		start = n.statsStart
	}
	if n.cycle >= n.statsStart {
		n.stats.VCBusy[s.idx] += n.cycle - start + 1
		n.stats.VCAcquired[s.idx]++
	}
	r.release(s, n.Cfg.NumVCs)
}
