package core

import (
	"fmt"
	"math/rand"

	"wormmesh/internal/fault"
	"wormmesh/internal/topology"
)

// Network is one simulated wormhole-switched mesh: routers, link state,
// in-flight messages, and measurement counters. A Network instance is
// not safe for concurrent use; run independent simulations in parallel
// instead (see internal/sweep).
//
// Memory layout: all per-cycle state lives in dense, index-addressed
// slices — the in-flight message set, the per-router active-VC lists,
// the (first, count) flit windows, and the parallel engine's
// epoch-stamped grant table — so a steady-state Step performs zero heap
// allocations. See DESIGN.md "Memory layout & determinism contract".
type Network struct {
	Topo   topology.Topology
	Faults *fault.Model
	Alg    Algorithm
	Cfg    Config

	rng     *rand.Rand
	routers []router
	cycle   int64

	// nbr is the flattened healthy-neighbor table:
	// nbr[int(id)*NumDirs + int(dir)] is id's neighbor in dir, or
	// Invalid when the link leaves the mesh or ends at a faulty node.
	// The fault model is immutable after construction, so the table is
	// built once and turns the hot downstream() lookup into a single
	// load instead of coordinate arithmetic plus a fault probe.
	nbr []topology.NodeID

	lastGlobalMove int64
	lastStallScan  int64

	// active is the dense in-flight message set. Messages carry their
	// index (Message.activeIdx) so removal is O(1) swap-remove — the
	// same intrusive pattern router.active uses — and iteration order
	// is deterministic.
	active []*Message

	// msgPool is the message arena: completed pooled messages
	// (delivered, killed, or refused) are recycled here instead of
	// churning the garbage collector. See AcquireMessage.
	msgPool []*Message

	// busy is the dirty-router set (see worklist.go): bit i set ⇔
	// router i holds any engine state (source queue, injection in
	// progress, or owned VCs). busyCount is its population; work is the
	// reusable ascending-order snapshot the phases iterate; allNodes is
	// the constant 0..N-1 worklist the parallel engine uses under
	// DebugFullScan.
	busy      []uint64
	busyCount int
	work      []topology.NodeID
	allNodes  []topology.NodeID

	stats      Stats
	statsStart int64

	// Per-link congestion counters (telemetry.go), LinkID-indexed; all
	// nil unless Cfg.ChannelTelemetry — the nil check IS the feature
	// flag, hoisted out of the inner loops where possible.
	linkFlits   []int64
	linkBusy    []int64
	linkBlocked []int64
	linkOnRing  []bool

	// Observation. tracer is the single slot the engine branches on per
	// event (nil = disabled, one branch). It is derived from the two
	// installable observers — the user Tracer and the FlightRecorder —
	// by rewireTracer, tee'ing when both are present. postmortemFn,
	// when set, receives a Diagnose() report each time the global
	// watchdog fires, before the victim is torn down.
	tracer       Tracer
	userTracer   Tracer
	flight       *FlightRecorder
	postmortemFn func(*Postmortem)

	par *parallelEngine

	// Reused scratch buffers (inner-loop allocation avoidance).
	cands    CandidateSet
	freeCh   []Channel
	sameCh   []Channel
	requests []request
	moves    []move
	// sendq buckets the current router's routed VCs by output direction
	// (in r.active order); sendVCs is the per-output sender list built
	// from one bucket, with nil marking the injection slot. Both are
	// switch-phase scratch, truncated per router.
	sendq    [NumPorts][]*vcState
	sendVCs  []*vcState
	victims  []victim
	outOrder [NumPorts]topology.Direction
	dirBuf   []topology.Direction
	msgSeq   int64

	// Validator scratch (epoch-stamped, never cleared): valSeen[code]
	// == valEpoch marks localChannel code active in the router under
	// inspection.
	valSeen  []int64
	valEpoch int64
}

// request identifies a header awaiting an output channel: either an
// input VC (port < InjectPort) or the head of the source queue.
type request struct {
	node topology.NodeID
	port int8 // 0..3 = input port, InjectPort = source queue head
	vc   uint8
}

type moveKind uint8

const (
	moveLink moveKind = iota
	moveInject
	moveEject
)

// move is a staged flit transfer, committed at end of cycle so that all
// decisions within one cycle observe the same start-of-cycle state.
type move struct {
	kind moveKind
	node topology.NodeID // router whose crossbar the flit traverses
	port int8            // source input port (moveLink/moveEject)
	vc   uint8
}

// NumPorts re-exported locally for loop bounds.
const NumPorts = topology.NumPorts

// InjectPort aliases topology.InjectPort for readability inside core.
const InjectPort = topology.InjectPort

// NewNetwork assembles a network over the given mesh, fault pattern and
// routing algorithm. The algorithm's NumVCs must not exceed
// cfg.NumVCs; the surplus channels, if any, simply stay idle so that
// hardware cost comparisons remain fair.
func NewNetwork(m topology.Topology, f *fault.Model, alg Algorithm, cfg Config, rng *rand.Rand) (*Network, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.StallScanInterval <= 0 {
		cfg.StallScanInterval = 1024 // historical hardcoded cadence
	}
	if f == nil {
		f = fault.None(m)
	}
	if f.Topo != m {
		return nil, fmt.Errorf("core: fault model built for %v, network is %v", f.Topo, m)
	}
	if alg.NumVCs() > cfg.NumVCs {
		return nil, fmt.Errorf("core: algorithm %s needs %d VCs, config provides %d", alg.Name(), alg.NumVCs(), cfg.NumVCs)
	}
	n := &Network{
		Topo:           m,
		Faults:         f,
		Alg:            alg,
		Cfg:            cfg,
		rng:            rng,
		routers:        make([]router, m.NodeCount()),
		valSeen:        make([]int64, topology.NumDirs*cfg.NumVCs),
		lastGlobalMove: 0,
	}
	for i := range n.routers {
		r := &n.routers[i]
		r.id = topology.NodeID(i)
		r.vcs = make([]vcState, topology.NumDirs*cfg.NumVCs)
		for code := range r.vcs {
			s := &r.vcs[code]
			s.activeIdx = -1
			s.stagedIn = -1
			s.stagedOut = -1
			s.port = int8(code / cfg.NumVCs)
			s.idx = uint8(code % cfg.NumVCs)
		}
	}
	n.busy = make([]uint64, (m.NodeCount()+63)/64)
	n.work = make([]topology.NodeID, 0, m.NodeCount())
	n.allNodes = make([]topology.NodeID, m.NodeCount())
	for i := range n.allNodes {
		n.allNodes[i] = topology.NodeID(i)
	}
	n.nbr = make([]topology.NodeID, m.NodeCount()*topology.NumDirs)
	for i := range n.routers {
		id := topology.NodeID(i)
		for d := topology.Direction(0); d < topology.NumDirs; d++ {
			nb := m.NeighborID(id, d)
			if nb != topology.Invalid && f.IsFaulty(nb) {
				nb = topology.Invalid
			}
			n.nbr[i*topology.NumDirs+int(d)] = nb
		}
	}
	n.stats.init(cfg.NumVCs, m.NodeCount())
	if cfg.ChannelTelemetry {
		n.initLinkTelemetry()
	}
	return n, nil
}

// Reset rebinds the network to a new fault model, routing algorithm and
// RNG without reallocating any of its dense state: routers, VC arrays,
// the neighbor table, the message arena and every scratch buffer are
// retained. After Reset the network is observably indistinguishable
// from a fresh NewNetwork(mesh, f, alg, cfg, rng) — same statistics for
// the same seed, cycle restarted at zero — which is the invariant the
// cached-vs-fresh golden tests in internal/sim lock in. The mesh and
// Config are fixed at construction; pass a model over the same mesh.
//
// Parallel mode: Reset does not tear down an enabled parallel engine.
// Callers that want parallel stepping must call EnableParallel again
// (which re-keys the hashed streams from the new RNG and reuses the
// worker pool when the shape matches); callers that want serial
// stepping after a parallel run must call DisableParallel.
func (n *Network) Reset(f *fault.Model, alg Algorithm, rng *rand.Rand) error {
	if f == nil {
		f = fault.None(n.Topo)
	}
	if f.Topo != n.Topo {
		return fmt.Errorf("core: fault model built for %v, network is %v", f.Topo, n.Topo)
	}
	if alg.NumVCs() > n.Cfg.NumVCs {
		return fmt.Errorf("core: algorithm %s needs %d VCs, config provides %d", alg.Name(), alg.NumVCs(), n.Cfg.NumVCs)
	}
	// Recycle every in-flight pooled message: all live messages are in
	// the active set (Offer registers them), so one pass covers source
	// queues, injection slots and buffered flits alike.
	for _, m := range n.active {
		m.activeIdx = -1
		n.recycle(m)
	}
	n.active = n.active[:0]
	for i := range n.routers {
		r := &n.routers[i]
		for code := range r.vcs {
			s := &r.vcs[code]
			// Wipe everything except the structural port/idx fields. The
			// staged stamps MUST return to -1: they hold cycle numbers
			// from the previous run, and the cycle counter restarts at
			// zero, so a stale stamp would collide with a real one.
			s.owner = nil
			s.routed = false
			s.out = Channel{}
			s.dvc = nil
			s.first = 0
			s.count = 0
			s.acquired = 0
			s.stagedIn = -1
			s.stagedOut = -1
			s.activeIdx = -1
		}
		for j := range r.srcQ {
			r.srcQ[j] = nil // drop references so the arena solely owns them
		}
		r.srcQ = r.srcQ[:0]
		r.inj = injState{}
		r.active = r.active[:0]
		r.crossings = 0
	}
	// Rebuild the healthy-neighbor table in place for the new pattern.
	for i := range n.routers {
		id := topology.NodeID(i)
		for d := topology.Direction(0); d < topology.NumDirs; d++ {
			nb := n.Topo.NeighborID(id, d)
			if nb != topology.Invalid && f.IsFaulty(nb) {
				nb = topology.Invalid
			}
			n.nbr[i*topology.NumDirs+int(d)] = nb
		}
	}
	n.resetBusy() // every router is empty again
	n.Faults = f
	n.Alg = alg
	n.rng = rng
	n.cycle = 0
	n.lastGlobalMove = 0
	n.lastStallScan = 0
	n.statsStart = 0
	n.msgSeq = 0
	n.tracer = nil
	n.userTracer = nil
	n.flight = nil
	n.postmortemFn = nil
	n.stats.reset()
	n.resetLinkCounters()
	n.buildRingLinks() // ring membership follows the new fault model
	// valSeen/valEpoch are epoch-stamped and monotonic: stale marks can
	// never be mistaken for fresh ones, so they carry over untouched.
	return nil
}

// Close releases resources the network holds beyond its own memory —
// today, the parallel engine's persistent worker goroutines. A network
// must not be stepped after Close; drivers that enable parallel mode
// (internal/sim does) should defer it.
func (n *Network) Close() { n.DisableParallel() }

// Cycle returns the current simulation time.
func (n *Network) Cycle() int64 { return n.cycle }

// InFlight returns the number of messages generated but not yet
// delivered or killed.
func (n *Network) InFlight() int { return len(n.active) }

// QueueLen returns the source-queue length at a node.
func (n *Network) QueueLen(id topology.NodeID) int { return len(n.routers[id].srcQ) }

// NextMessageID hands out engine-unique message identifiers for
// drivers that do not keep their own counter.
func (n *Network) NextMessageID() int64 {
	n.msgSeq++
	return n.msgSeq
}

// addActive registers m in the dense in-flight set.
func (n *Network) addActive(m *Message) {
	m.activeIdx = int32(len(n.active))
	n.active = append(n.active, m)
}

// removeActive unregisters m with an O(1) swap-remove.
func (n *Network) removeActive(m *Message) {
	idx := m.activeIdx
	last := int32(len(n.active) - 1)
	if idx != last {
		moved := n.active[last]
		n.active[idx] = moved
		moved.activeIdx = idx
	}
	n.active = n.active[:last]
	m.activeIdx = -1
}

// Offer enqueues a freshly generated message at its source node. The
// caller must have set GenTime; Offer runs the routing algorithm's
// InitMessage. It returns false (counting a refused offer) when the
// source queue is bounded and full; a refused pooled message is
// recycled immediately. Offering traffic at or to a faulty node is a
// driver bug and panics.
func (n *Network) Offer(m *Message) bool {
	if n.Faults.IsFaulty(m.Src) || n.Faults.IsFaulty(m.Dst) {
		panic(fmt.Sprintf("core: traffic at faulty node: %v", m))
	}
	if m.Src == m.Dst {
		panic(fmt.Sprintf("core: message to self: %v", m))
	}
	r := &n.routers[m.Src]
	if n.Cfg.MaxSourceQueue > 0 && len(r.srcQ) >= n.Cfg.MaxSourceQueue {
		if m.GenTime >= n.statsStart {
			n.stats.Refused++
		}
		n.recycle(m)
		return false
	}
	n.Alg.InitMessage(m)
	m.lastMove = n.cycle
	// Latency decomposition starts here: cycles after GenTime count as
	// source-queue wait until the injection grant (telemetry.go).
	m.acctFrom = m.GenTime
	m.acctState = acctQueued
	m.ringSince = -1
	r.srcQ = append(r.srcQ, m)
	n.markBusy(m.Src)
	n.addActive(m)
	if m.GenTime >= n.statsStart {
		n.stats.Generated++
	}
	return true
}

// Step advances the network one cycle: routing + VC allocation, then
// switch allocation and flit traversal, then watchdog checks. With
// EnableParallel, the parallel request–grant engine runs instead.
//
// A fully quiescent network — empty dirty set, which by the membership
// invariant (worklist.go) means no queued, injecting or in-flight
// traffic anywhere — short-circuits to the watchdog and the cycle tick.
// The short-circuit is bit-exact: with zero routers holding state the
// routing phase would gather zero requests (a zero-length shuffle draws
// nothing from the RNG), the switch phase would skip every router
// before its shuffle, and commit would have no moves to apply.
func (n *Network) Step() {
	if n.par != nil {
		n.stepParallel()
		return
	}
	if n.busyCount == 0 && !DebugFullScan {
		n.watchdog()
		n.cycle++
		return
	}
	n.routingPhase()
	n.switchPhase()
	n.watchdog()
	n.cycle++
}

// downstream resolves the input VC that output channel ch of node id
// feeds. ok is false when the neighbor does not exist or is faulty.
// It is the hottest lookup in the engine, so it reads the prebuilt
// healthy-neighbor table instead of doing coordinate arithmetic.
func (n *Network) downstream(id topology.NodeID, ch Channel) (*router, *vcState, bool) {
	if ch.Dir >= topology.NumDirs {
		// A Local "output" has no downstream input VC; a buggy
		// algorithm emitting it must not index past the table row.
		return nil, nil, false
	}
	nb := n.nbr[int(id)*topology.NumDirs+int(ch.Dir)]
	if nb == topology.Invalid {
		return nil, nil, false
	}
	r := &n.routers[nb]
	return r, r.vc(ch.Dir.Opposite(), int(ch.VC), n.Cfg.NumVCs), true
}

// routingPhase finds every header that needs an output channel, asks
// the routing algorithm for candidates, and performs VC allocation
// with random conflict resolution. Request gathering iterates only the
// dirty-router set, in ascending router-index order — routers outside
// the set hold no queue entries, injections or VCs and would contribute
// nothing, so the gathered request slice (and therefore every RNG draw
// that follows) is bit-identical to the original full-mesh scan.
// DebugFullScan restores the full scan, with a cheap idle guard so even
// the reference path stops paying per-router cost for empty routers.
func (n *Network) routingPhase() {
	n.requests = n.requests[:0]
	if DebugFullScan {
		for i := range n.routers {
			r := &n.routers[i]
			if len(r.active) == 0 && r.inj.msg == nil && len(r.srcQ) == 0 {
				continue // idle: cannot contribute a request
			}
			n.gatherRequests(r)
		}
	} else {
		n.collectWork()
		for _, id := range n.work {
			n.gatherRequests(&n.routers[id])
		}
	}
	// Random service order = random conflict resolution among headers
	// competing for the same downstream VCs.
	n.rng.Shuffle(len(n.requests), func(i, j int) {
		n.requests[i], n.requests[j] = n.requests[j], n.requests[i]
	})
	for _, req := range n.requests {
		r := &n.routers[req.node]
		var m *Message
		if req.port == InjectPort {
			if r.inj.msg != nil || len(r.srcQ) == 0 {
				continue
			}
			m = r.srcQ[0]
		} else {
			s := r.vc(topology.Direction(req.port), int(req.vc), n.Cfg.NumVCs)
			if s.owner == nil || s.routed || s.count == 0 {
				continue
			}
			m = s.owner
		}
		n.cands.Reset()
		n.Alg.Candidates(m, req.node, &n.cands)
		ch, ok := n.allocate(req.node, &n.cands)
		if !ok {
			continue
		}
		dr, dvc, ok := n.downstream(req.node, ch)
		if !ok || dvc.owner != nil {
			panic("core: allocate returned unusable channel")
		}
		dr.claim(ch.Dir.Opposite(), int(ch.VC), m, n.cycle, n.Cfg.NumVCs)
		n.markBusy(dr.id) // downstream router now owns a VC
		if req.port == InjectPort {
			r.inj = injState{msg: m, out: ch, dvc: dvc}
			m.lastMove = n.cycle
		} else {
			s := r.vc(topology.Direction(req.port), int(req.vc), n.Cfg.NumVCs)
			s.routed = true
			s.out = ch
			s.dvc = dvc
		}
		// Decomposition: the wait that just ended was queue wait (inject
		// grant) or routing wait (intermediate hop); from here until the
		// next flit move the head is credit/switch blocked.
		m.settleWait(n.cycle, acctBlocked)
		ringBefore := m.RingIdx
		n.Alg.Advance(m, req.node, ch)
		if ringBefore < 0 && m.RingIdx >= 0 {
			m.ringSince = n.cycle
			if n.cycle >= n.statsStart {
				n.stats.RingEntries++
			}
		} else if ringBefore >= 0 && m.RingIdx < 0 {
			m.closeRing(n.cycle)
		}
		if n.tracer != nil {
			n.tracer.HeaderRouted(m, req.node, ch, n.cycle)
		}
	}
}

// gatherRequests appends router r's routing-phase requests — the
// source-queue head awaiting injection and every unrouted header VC —
// to n.requests, resolving destination-reached headers in place. This
// is the per-router body of the original full scan, factored out so the
// worklist and DebugFullScan paths share it verbatim.
func (n *Network) gatherRequests(r *router) {
	if r.inj.msg == nil && len(r.srcQ) > 0 {
		n.requests = append(n.requests, request{node: r.id, port: InjectPort})
	}
	for _, code := range r.active {
		s := r.vcAt(code)
		if s.routed || s.count == 0 {
			continue // body VC, or claimed with header still in flight
		}
		if !s.headIsHeader() {
			panic("core: unrouted VC with non-header at head")
		}
		if s.owner.Dst == r.id {
			s.routed = true
			s.out = Channel{Dir: topology.Local}
			s.dvc = nil
			// Routing wait ends: the header resolved to the ejection
			// port; remaining stalls are ejection-bandwidth blocked.
			s.owner.settleWait(n.cycle, acctBlocked)
			continue
		}
		n.requests = append(n.requests, request{node: r.id, port: s.port, vc: s.idx})
	}
}

// allocate picks one free channel from the earliest preference tier
// that has any, applying the configured selection policy.
func (n *Network) allocate(node topology.NodeID, cands *CandidateSet) (Channel, bool) {
	for t := 0; t < MaxTiers; t++ {
		tier := cands.Tier(t)
		if len(tier) == 0 {
			continue
		}
		n.freeCh = n.freeCh[:0]
		for _, ch := range tier {
			if _, dvc, ok := n.downstream(node, ch); ok && dvc.owner == nil {
				n.freeCh = append(n.freeCh, ch)
			}
		}
		if len(n.freeCh) == 0 {
			continue
		}
		switch n.Cfg.Selection {
		case SelectRandomChannel:
			return n.freeCh[n.rng.Intn(len(n.freeCh))], true
		case SelectRandomDir:
			n.dirBuf = n.dirBuf[:0]
			for _, ch := range n.freeCh {
				seen := false
				for _, d := range n.dirBuf {
					if d == ch.Dir {
						seen = true
						break
					}
				}
				if !seen {
					n.dirBuf = append(n.dirBuf, ch.Dir)
				}
			}
			d := n.dirBuf[n.rng.Intn(len(n.dirBuf))]
			n.sameCh = n.sameCh[:0]
			for _, ch := range n.freeCh {
				if ch.Dir == d {
					n.sameCh = append(n.sameCh, ch)
				}
			}
			return n.sameCh[n.rng.Intn(len(n.sameCh))], true
		case SelectLowestVC:
			best := n.freeCh[0]
			for _, ch := range n.freeCh[1:] {
				if ch.VC < best.VC || (ch.VC == best.VC && ch.Dir < best.Dir) {
					best = ch
				}
			}
			return best, true
		}
	}
	return Channel{}, false
}

// switchPhase performs switch allocation (one flit per input port and
// per output physical channel per cycle; EjectBW flits on the local
// output) and commits the staged flit moves. It iterates the dirty set
// RE-COLLECTED after the routing phase: VC allocation may have claimed
// input VCs of routers that were idle at cycle start, and the full scan
// gave exactly those routers an outOrder shuffle (consuming RNG), so
// the worklist must visit them too. Routers whose only state is a
// waiting source queue fail the same idle guard the full scan applies
// and consume nothing — membership is a superset of the guard, never a
// substitute for it.
func (n *Network) switchPhase() {
	n.moves = n.moves[:0]
	if DebugFullScan {
		for i := range n.routers {
			n.switchAllocRouter(&n.routers[i])
		}
	} else {
		n.collectWork()
		for _, id := range n.work {
			n.switchAllocRouter(&n.routers[id])
		}
	}
	n.commit()
}

// switchAllocRouter stages router r's flit moves for this cycle — the
// per-router body of the original switch-phase scan, shared by the
// worklist and DebugFullScan paths.
func (n *Network) switchAllocRouter(r *router) {
	if len(r.active) == 0 && r.inj.msg == nil {
		return
	}
	tel := n.linkBusy != nil // ChannelTelemetry, hoisted out of the loops
	var portUsed [NumPorts]bool
	// Random output service order for fairness between outputs that
	// contend for the same input ports.
	n.outOrder = [NumPorts]topology.Direction{topology.East, topology.West, topology.North, topology.South, topology.Local}
	for k := NumPorts - 1; k > 0; k-- {
		j := n.rng.Intn(k + 1)
		n.outOrder[k], n.outOrder[j] = n.outOrder[j], n.outOrder[k]
	}
	// One pre-pass buckets the routed VCs by output direction, in
	// r.active order. Each output's sender scan then touches only
	// the VCs that could possibly send there instead of rescanning
	// the full active list per output × capacity iteration. The
	// rewrite is bit-identical to the full rescans: output direction,
	// routed, and count are all frozen for the duration of the switch
	// phase (flits move at commit), buckets preserve r.active order,
	// and the per-iteration conditions (portUsed, stagedOut, credit)
	// are still evaluated in the scan — so every sender list is
	// element-for-element the one the rescan would build, and an
	// output with an empty bucket and no injector is skipped without
	// consuming the RNG, exactly like an empty-scan break.
	for d := range n.sendq {
		n.sendq[d] = n.sendq[d][:0]
	}
	for _, code := range r.active {
		s := r.vcAt(code)
		if s.routed && s.count > 0 {
			n.sendq[s.out.Dir] = append(n.sendq[s.out.Dir], s)
		}
	}
	injDir := topology.Direction(NumPorts) // sentinel: no pending injector
	if m := r.inj.msg; m != nil && m.flitsInjected < m.Length {
		injDir = r.inj.out.Dir
	}
	for _, out := range n.outOrder {
		bucket := n.sendq[out]
		if len(bucket) == 0 && injDir != out {
			continue
		}
		capacity := 1
		if out == topology.Local {
			capacity = n.Cfg.EjectBW
		}
		forwarded := false
		for capacity > 0 {
			n.sendVCs = n.sendVCs[:0]
			for _, s := range bucket {
				if portUsed[s.port] || s.stagedOut == n.cycle {
					continue
				}
				if out != topology.Local && !n.hasCredit(s.dvc) {
					continue
				}
				n.sendVCs = append(n.sendVCs, s)
			}
			if out != topology.Local && injDir == out && !portUsed[InjectPort] {
				if n.hasCredit(r.inj.dvc) {
					n.sendVCs = append(n.sendVCs, nil) // nil = injection slot
				}
			}
			if len(n.sendVCs) == 0 {
				break
			}
			w := n.sendVCs[n.rng.Intn(len(n.sendVCs))]
			switch {
			case w == nil:
				portUsed[InjectPort] = true
				r.inj.dvc.stagedIn = n.cycle
				n.moves = append(n.moves, move{kind: moveInject, node: r.id})
				forwarded = true
			case out == topology.Local:
				portUsed[w.port] = true
				w.stagedOut = n.cycle
				n.moves = append(n.moves, move{kind: moveEject, node: r.id, port: w.port, vc: w.idx})
			default:
				portUsed[w.port] = true
				w.stagedOut = n.cycle
				w.dvc.stagedIn = n.cycle
				n.moves = append(n.moves, move{kind: moveLink, node: r.id, port: w.port, vc: w.idx})
				forwarded = true
			}
			capacity--
		}
		// Link occupancy: the output had demand this cycle (busy); if
		// nothing was staged, every sender was credit- or port-blocked.
		if tel && out != topology.Local {
			li := LinkID(r.id, out)
			n.linkBusy[li]++
			if !forwarded {
				n.linkBlocked[li]++
			}
		}
	}
}

// hasCredit reports whether a downstream VC can accept one more flit
// this cycle (start-of-cycle occupancy plus any staged arrival).
func (n *Network) hasCredit(dvc *vcState) bool {
	occ := int(dvc.count)
	if dvc.stagedIn == n.cycle {
		occ++
	}
	return occ < n.Cfg.BufDepth
}

// commit applies the staged moves simultaneously.
func (n *Network) commit() {
	measuring := n.cycle >= n.statsStart
	tel := n.linkFlits != nil // ChannelTelemetry, hoisted out of the loop
	for _, mv := range n.moves {
		r := &n.routers[mv.node]
		switch mv.kind {
		case moveInject:
			m := r.inj.msg
			if tel {
				n.linkFlits[LinkID(mv.node, r.inj.out.Dir)]++
			}
			if m.acctMoved != n.cycle {
				m.acctMoved = n.cycle
				m.settleMove(n.cycle)
			}
			idx := m.flitsInjected
			m.flitsInjected++
			r.inj.dvc.pushBack(int32(idx))
			if idx == 0 {
				m.InjectTime = n.cycle
				// The header now sits in a neighbor's input VC awaiting
				// VC allocation there.
				m.acctState = acctRouteWait
				if measuring {
					n.stats.Injected++
				}
				if n.tracer != nil {
					n.tracer.MessageInjected(m, n.cycle)
				}
			}
			if n.tracer != nil {
				n.tracer.FlitMoved(Flit{Msg: m, Index: int32(idx)}, r.id, r.inj.out, n.cycle)
			}
			if idx == m.Length-1 {
				r.srcQ = popFrontMsg(r.srcQ)
				r.inj.msg = nil
				// The source router may now be fully drained (all of
				// m's flits live downstream).
				n.checkIdle(r)
			}
			m.lastMove = n.cycle
			n.lastGlobalMove = n.cycle
			if measuring {
				r.crossings++
				n.stats.FlitHops++
			}
		case moveLink:
			s := r.vc(topology.Direction(mv.port), int(mv.vc), n.Cfg.NumVCs)
			if tel {
				n.linkFlits[LinkID(mv.node, s.out.Dir)]++
			}
			f := s.popFront()
			s.dvc.pushBack(f.Index)
			if f.Tail() {
				n.releaseVC(r, s)
			}
			if f.Msg.acctMoved != n.cycle {
				f.Msg.acctMoved = n.cycle
				f.Msg.settleMove(n.cycle)
			}
			if f.Head() {
				// The header advanced into the next router's input VC.
				f.Msg.acctState = acctRouteWait
			}
			f.Msg.lastMove = n.cycle
			n.lastGlobalMove = n.cycle
			if n.tracer != nil {
				n.tracer.FlitMoved(f, r.id, s.out, n.cycle)
			}
			if measuring {
				r.crossings++
				n.stats.FlitHops++
			}
		case moveEject:
			s := r.vc(topology.Direction(mv.port), int(mv.vc), n.Cfg.NumVCs)
			f := s.popFront()
			m := f.Msg
			if m.acctMoved != n.cycle {
				m.acctMoved = n.cycle
				m.settleMove(n.cycle)
			}
			if f.Head() {
				// Header consumed; remaining stalls are body-flit
				// (credit/ejection-bandwidth) blocked.
				m.acctState = acctBlocked
			}
			tail := f.Tail()
			if tail {
				n.releaseVC(r, s)
				m.DeliverTime = n.cycle
				m.closeRing(n.cycle)
				n.removeActive(m)
				if n.tracer != nil {
					n.tracer.MessageDelivered(m, n.cycle)
				}
				if measuring {
					n.stats.recordDelivery(m, n.statsStart, n.Topo.Distance(n.Topo.CoordOf(m.Src), n.Topo.CoordOf(m.Dst)))
				}
			}
			m.lastMove = n.cycle
			n.lastGlobalMove = n.cycle
			if measuring {
				r.crossings++
				n.stats.DeliveredFlits++
			}
			if tail {
				// Last touch: the message is out of every engine
				// structure, its statistics are folded in, and the
				// tracer has fired — safe to recycle.
				n.recycle(m)
			}
		}
	}
}

// releaseVC accumulates the VC's busy time and frees it. Releasing the
// router's last VC may empty it of engine state entirely, so the
// dirty-set membership is re-checked here.
func (n *Network) releaseVC(r *router, s *vcState) {
	start := s.acquired
	if start < n.statsStart {
		start = n.statsStart
	}
	if n.cycle >= n.statsStart {
		n.stats.VCBusy[s.idx] += n.cycle - start + 1
		n.stats.VCAcquired[s.idx]++
	}
	r.release(s, n.Cfg.NumVCs)
	n.checkIdle(r)
}
