package core

import (
	"math/rand"
	"testing"

	"wormmesh/internal/fault"
	"wormmesh/internal/topology"
)

// TestLatencyHistPercentile checks the log2 histogram against a
// hand-computed distribution. Samples: 1×1, 2×2, 3×5, 4×600 → buckets
// b1=1, b2=5, b3=1, b10=4 with totals 1/6/7/11 cumulative.
func TestLatencyHistPercentile(t *testing.T) {
	var h LatencyHist
	add := func(lat int64, times int) {
		for i := 0; i < times; i++ {
			h.Add(lat)
		}
	}
	add(1, 1)   // bucket 1 (upper bound 1)
	add(2, 2)   // bucket 2 (upper bound 3)
	add(3, 3)   // bucket 2
	add(5, 1)   // bucket 3 (upper bound 7)
	add(600, 4) // bucket 10 (upper bound 1023)
	if got := h.Total(); got != 11 {
		t.Fatalf("Total = %d, want 11", got)
	}
	// Cumulative counts: b1=1, b2=6, b3=7, b10=11. With need =
	// ceil(p/100*11): p... -> bucket upper bound.
	for _, tc := range []struct {
		p    float64
		want int64
	}{
		{0, 1},     // need clamps to 1 -> first sample, bucket 1
		{9, 1},     // need 1
		{10, 3},    // need 2 -> bucket 2
		{50, 3},    // need 6 -> bucket 2
		{60, 7},    // need 7 -> bucket 3
		{64, 1023}, // need 8 -> bucket 10
		{95, 1023}, // need 11
		{100, 1023},
	} {
		if got := h.Percentile(tc.p); got != tc.want {
			t.Errorf("Percentile(%g) = %d, want %d", tc.p, got, tc.want)
		}
	}
}

// TestLatencyHistEdgeCases covers the empty histogram, zero/negative
// samples, and the clamp of absurdly large latencies into the last
// bucket.
func TestLatencyHistEdgeCases(t *testing.T) {
	var h LatencyHist
	if got := h.Percentile(50); got != -1 {
		t.Errorf("empty Percentile = %d, want -1", got)
	}
	h.Add(0)
	h.Add(-5) // clamped to 0
	if h[0] != 2 {
		t.Errorf("bucket 0 = %d, want 2 (zero and clamped negative)", h[0])
	}
	if got := h.Percentile(50); got != 0 {
		t.Errorf("all-zero Percentile(50) = %d, want 0", got)
	}
	var big LatencyHist
	big.Add(1 << 62)
	if big[LatencyBuckets-1] != 1 {
		t.Errorf("huge sample not clamped into last bucket")
	}
	if got := big.Percentile(99); got != (int64(1)<<(LatencyBuckets-1))-1 {
		t.Errorf("huge Percentile = %d, want last bucket upper bound", got)
	}
}

// TestStatsPercentileFromRun cross-checks Stats.Percentile against the
// exact latencies of a tiny deterministic run: with a handful of
// messages the histogram's bucket bound must dominate the true maximum
// and the p50 bound must cover the true median.
func TestStatsPercentileFromRun(t *testing.T) {
	mesh := topology.New(5, 5)
	n := newTestNetwork(t, mesh, nil, xyAlg{mesh: mesh, vcs: 4}, testConfig(), 1)
	for i := 0; i < 6; i++ {
		offer(t, n, int64(i+1), topology.Coord{X: i % 4, Y: 0}, topology.Coord{X: 4, Y: 4}, 4)
	}
	for i := 0; i < 500 && n.InFlight() > 0; i++ {
		n.Step()
	}
	st := n.Snapshot()
	if st.LatencyCount != 6 {
		t.Fatalf("delivered %d messages, want 6", st.LatencyCount)
	}
	p100 := st.Percentile(100)
	if p100 < st.LatencyMax {
		t.Errorf("Percentile(100) = %d below true max %d", p100, st.LatencyMax)
	}
	if p100 >= 2*st.LatencyMax+2 {
		t.Errorf("Percentile(100) = %d not within 2x of max %d (log2 bound)", p100, st.LatencyMax)
	}
	if p50 := st.Percentile(50); p50 < 0 || p50 > p100 {
		t.Errorf("Percentile(50) = %d out of range (0, %d]", p50, p100)
	}
}

// figRingModel builds a fault model with one 2x2 block so the network
// has a proper closed f-ring.
func figRingModel(t *testing.T, mesh topology.Topology) *fault.Model {
	t.Helper()
	f, err := fault.New(mesh, []topology.NodeID{
		mesh.ID(topology.Coord{X: 2, Y: 2}),
		mesh.ID(topology.Coord{X: 3, Y: 2}),
		mesh.ID(topology.Coord{X: 2, Y: 3}),
		mesh.ID(topology.Coord{X: 3, Y: 3}),
	})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// TestRingLinkTagging checks the per-link f-ring tags: every tagged
// link connects two consecutive nodes of some ring (in either
// orientation), tags are symmetric, and the count matches the rings'
// adjacent-consecutive pairs.
func TestRingLinkTagging(t *testing.T) {
	mesh := topology.New(8, 8)
	f := figRingModel(t, mesh)
	cfg := testConfig()
	cfg.ChannelTelemetry = true
	n := newTestNetwork(t, mesh, f, xyAlg{mesh: mesh, vcs: 4}, cfg, 1)
	_, _, _, onRing := n.LinkCounters()
	if onRing == nil {
		t.Fatal("ChannelTelemetry on but no ring tags")
	}
	tagged := 0
	for id := topology.NodeID(0); int(id) < mesh.NodeCount(); id++ {
		for d := topology.Direction(0); d < topology.NumDirs; d++ {
			if !onRing[LinkID(id, d)] {
				continue
			}
			tagged++
			nb := mesh.NeighborID(id, d)
			if nb == topology.Invalid {
				t.Fatalf("tagged link %v/%v leaves the mesh", id, d)
			}
			if !onRing[LinkID(nb, d.Opposite())] {
				t.Errorf("ring tag not symmetric: %v/%v tagged, reverse not", id, d)
			}
			if !f.OnAnyRing(id) || !f.OnAnyRing(nb) {
				t.Errorf("tagged link %v->%v has a non-ring endpoint", id, nb)
			}
		}
	}
	// A 2x2 block's f-ring is the surrounding 12-node cycle: 12
	// consecutive pairs, tagged in both orientations.
	if tagged != 24 {
		t.Errorf("tagged %d directional links, want 24 (12-node closed ring)", tagged)
	}
	// Reset onto a fault-free model must clear every tag.
	if err := n.Reset(fault.None(mesh), xyAlg{mesh: mesh, vcs: 4}, rand.New(rand.NewSource(1))); err != nil {
		t.Fatalf("Reset: %v", err)
	}
	_, _, _, onRing = n.LinkCounters()
	for li, tag := range onRing {
		if tag {
			t.Fatalf("link %d still ring-tagged after fault-free Reset", li)
		}
	}
}

// TestLinkCountersConsistency runs traffic with telemetry on and checks
// the structural invariants of the per-link counters: Blocked <= Busy
// per link, flits only on existing links, and total link flits equal to
// the engine's FlitHops (both count inject and link moves, neither the
// ejection into the destination).
func TestLinkCountersConsistency(t *testing.T) {
	mesh := topology.New(6, 6)
	cfg := testConfig()
	cfg.ChannelTelemetry = true
	cfg.MaxSourceQueue = 4
	n := newTestNetwork(t, mesh, nil, xyAlg{mesh: mesh, vcs: 4}, cfg, 1)
	rng := rand.New(rand.NewSource(2))
	id := int64(0)
	for i := 0; i < 3000; i++ {
		if rng.Float64() < 0.2 {
			src := topology.NodeID(rng.Intn(mesh.NodeCount()))
			dst := topology.NodeID(rng.Intn(mesh.NodeCount()))
			if src != dst {
				id++
				m := n.AcquireMessage(id, src, dst, 8)
				m.GenTime = n.Cycle()
				n.Offer(m)
			}
		}
		n.Step()
	}
	ls := n.LinkSnapshot()
	if ls == nil {
		t.Fatal("LinkSnapshot returned nil with telemetry on")
	}
	var totalFlits int64
	for id := topology.NodeID(0); int(id) < mesh.NodeCount(); id++ {
		for d := topology.Direction(0); d < topology.NumDirs; d++ {
			li := LinkID(id, d)
			if ls.Blocked[li] > ls.Busy[li] {
				t.Errorf("link %v/%v: blocked %d > busy %d", id, d, ls.Blocked[li], ls.Busy[li])
			}
			if mesh.NeighborID(id, d) == topology.Invalid && (ls.Flits[li] != 0 || ls.Busy[li] != 0) {
				t.Errorf("nonexistent link %v/%v accumulated counts", id, d)
			}
			totalFlits += ls.Flits[li]
		}
	}
	st := n.Snapshot()
	if totalFlits != st.FlitHops {
		t.Errorf("sum of link flits = %d, want FlitHops = %d", totalFlits, st.FlitHops)
	}
	if totalFlits == 0 {
		t.Error("no link flits recorded under load")
	}
}

// TestStepLoadedAllocsTelemetry re-runs the zero-allocation budget with
// ChannelTelemetry enabled: counter recording must stay free of heap
// traffic in both the serial and the parallel engine.
func TestStepLoadedAllocsTelemetry(t *testing.T) {
	for _, workers := range []int{0, 4} {
		var mesh topology.Topology = topology.New(10, 10) // box once, not per call
		if workers > 0 {
			mesh = topology.New(24, 24)
		}
		cfg := DefaultConfig()
		cfg.NumVCs = 8
		cfg.MaxSourceQueue = 4
		cfg.ChannelTelemetry = true
		n, err := NewNetwork(mesh, nil, xyAlg{mesh: mesh, vcs: 8}, cfg, rand.New(rand.NewSource(1)))
		if err != nil {
			t.Fatal(err)
		}
		if workers >= 1 {
			clones := make([]Algorithm, workers)
			for i := range clones {
				clones[i] = xyAlg{mesh: mesh, vcs: 8}
			}
			if err := n.EnableParallel(workers, clones); err != nil {
				t.Fatal(err)
			}
			n.par.forceShard = true
		}
		rng := rand.New(rand.NewSource(2))
		id := new(int64)
		for i := 0; i < 6000; i++ {
			stepLoaded(n, mesh, rng, id)
		}
		cushion := make([]*Message, 512)
		for i := range cushion {
			cushion[i] = n.AcquireMessage(0, 0, 1, 16)
		}
		for _, m := range cushion {
			n.recycle(m)
		}
		allocs := testing.AllocsPerRun(200, func() {
			stepLoaded(n, mesh, rng, id)
		})
		n.Close()
		if allocs != 0 {
			t.Errorf("telemetry-on loaded Step (workers=%d) allocates %.2f objects/cycle, want 0", workers, allocs)
		}
	}
}

// TestLatencyDecompositionSums drives a loaded network with a tracer
// that checks, at every delivery and kill, the partition invariant:
// Queue+Route+Blocked+Moving covers generation to delivery exactly
// (killed messages are checked up to the kill cycle).
func TestLatencyDecompositionSums(t *testing.T) {
	mesh := topology.New(8, 8)
	cfg := testConfig()
	cfg.MaxSourceQueue = 4
	n := newTestNetwork(t, mesh, nil, xyAlg{mesh: mesh, vcs: 4}, cfg, 1)
	checker := &decompChecker{t: t}
	n.SetTracer(checker)
	rng := rand.New(rand.NewSource(2))
	id := int64(0)
	for i := 0; i < 4000; i++ {
		if rng.Float64() < 0.3 {
			src := topology.NodeID(rng.Intn(mesh.NodeCount()))
			dst := topology.NodeID(rng.Intn(mesh.NodeCount()))
			if src != dst {
				id++
				m := n.AcquireMessage(id, src, dst, 8)
				m.GenTime = n.Cycle()
				n.Offer(m)
			}
		}
		n.Step()
	}
	for i := 0; i < 2000 && n.InFlight() > 0; i++ {
		n.Step()
	}
	if checker.delivered == 0 {
		t.Fatal("no deliveries checked")
	}
	st := n.Snapshot()
	if st.LatQueueSum+st.LatRouteSum+st.LatBlockedSum+st.LatMovingSum != st.LatencySum {
		t.Errorf("component sums %d+%d+%d+%d != LatencySum %d",
			st.LatQueueSum, st.LatRouteSum, st.LatBlockedSum, st.LatMovingSum, st.LatencySum)
	}
	if st.LatMovingSum == 0 {
		t.Error("no moving cycles attributed under load")
	}
}

type decompChecker struct {
	nopTracer
	t         *testing.T
	delivered int
}

func (c *decompChecker) MessageDelivered(m *Message, cycle int64) {
	c.delivered++
	if got, want := m.LatencyTotal(), m.DeliverTime-m.GenTime; got != want {
		c.t.Errorf("msg#%d decomposition %d (q=%d r=%d b=%d m=%d) != latency %d",
			m.ID, got, m.LatQueue, m.LatRoute, m.LatBlocked, m.LatMoving, want)
	}
	if m.LatQueue < 0 || m.LatRoute < 0 || m.LatBlocked < 0 || m.LatMoving < 0 || m.LatRing < 0 {
		c.t.Errorf("msg#%d has a negative latency component", m.ID)
	}
}

func (c *decompChecker) MessageKilled(m *Message, cause KillCause, cycle int64) {
	if got, want := m.LatencyTotal(), cycle-m.GenTime; got != want {
		c.t.Errorf("killed msg#%d decomposition %d != lifetime %d", m.ID, got, want)
	}
}

// nopTracer implements Tracer with no-ops for embedding.
type nopTracer struct{}

func (nopTracer) MessageInjected(*Message, int64)                        {}
func (nopTracer) HeaderRouted(*Message, topology.NodeID, Channel, int64) {}
func (nopTracer) FlitMoved(Flit, topology.NodeID, Channel, int64)        {}
func (nopTracer) MessageDelivered(*Message, int64)                       {}
func (nopTracer) MessageKilled(*Message, KillCause, int64)               {}
func (nopTracer) WatchdogFired(*Message, int64)                          {}
