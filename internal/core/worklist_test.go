package core

import (
	"math/rand"
	"testing"

	"wormmesh/internal/topology"
)

// TestStepIdleAllocs locks in the zero-allocation budget for quiescent
// cycles in both stepping modes: the worklist short-circuit must touch
// nothing, and even the DebugFullScan reference path must scan without
// heap traffic.
func TestStepIdleAllocs(t *testing.T) {
	for _, fullScan := range []bool{false, true} {
		mesh := topology.New(10, 10)
		cfg := DefaultConfig()
		n, err := NewNetwork(mesh, nil, xyAlg{mesh: mesh, vcs: cfg.NumVCs}, cfg, rand.New(rand.NewSource(1)))
		if err != nil {
			t.Fatal(err)
		}
		DebugFullScan = fullScan
		allocs := testing.AllocsPerRun(500, func() { n.Step() })
		DebugFullScan = false
		if allocs != 0 {
			t.Errorf("idle Step (fullScan=%v) allocates %.2f objects/cycle, want 0", fullScan, allocs)
		}
	}
}

// TestQuiescentShortCircuit drives a network to quiescence and checks
// that the dirty set is empty, that idle cycles still advance the clock
// and keep the structural invariants, and that traffic offered after an
// idle stretch wakes the engine back up.
func TestQuiescentShortCircuit(t *testing.T) {
	mesh := topology.New(10, 10)
	n, _, _ := loadNetwork(t, mesh, 0)
	for i := 0; i < 5000 && n.InFlight() > 0; i++ {
		n.Step()
	}
	if n.InFlight() != 0 {
		t.Fatalf("network did not drain: %d in flight", n.InFlight())
	}
	if n.BusyRouters() != 0 {
		t.Fatalf("drained network has %d busy routers, want 0", n.BusyRouters())
	}
	before := n.Cycle()
	for i := 0; i < 100; i++ {
		n.Step()
	}
	if got := n.Cycle(); got != before+100 {
		t.Fatalf("idle cycles advanced clock to %d, want %d", got, before+100)
	}
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	// Wake-up: a fresh offer must re-enter the dirty set and deliver.
	m := NewMessage(n.NextMessageID(), 0, topology.NodeID(mesh.NodeCount()-1), 4)
	m.GenTime = n.Cycle()
	if !n.Offer(m) {
		t.Fatal("offer refused on an empty network")
	}
	if n.BusyRouters() == 0 {
		t.Fatal("offer did not mark the source router busy")
	}
	for i := 0; i < 2000 && !m.Delivered(); i++ {
		n.Step()
	}
	if !m.Delivered() {
		t.Fatal("message offered after idle stretch was never delivered")
	}
	if n.BusyRouters() != 0 {
		t.Fatalf("network drained again but %d routers stay busy", n.BusyRouters())
	}
}

// TestBusyMembershipLifecycle walks one message through the engine and
// checks dirty-set membership at each stage against the invariant
// busy(r) ⇔ r holds engine state. Validate re-checks the same
// equivalence globally; this test documents WHO is expected to be busy.
func TestBusyMembershipLifecycle(t *testing.T) {
	mesh := topology.New(4, 4)
	cfg := DefaultConfig()
	cfg.NumVCs = 2
	n, err := NewNetwork(mesh, nil, xyAlg{mesh: mesh, vcs: 2}, cfg, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	if n.BusyRouters() != 0 {
		t.Fatalf("fresh network has %d busy routers", n.BusyRouters())
	}
	src, dst := topology.NodeID(0), topology.NodeID(3) // same row, 3 hops east
	m := NewMessage(1, src, dst, 3)
	m.GenTime = 0
	n.Offer(m)
	if !n.isBusy(src) || n.BusyRouters() != 1 {
		t.Fatalf("after Offer: busy(src)=%v count=%d, want true/1", n.isBusy(src), n.BusyRouters())
	}
	// One step: routing claims the first-hop VC of router 1.
	n.Step()
	if !n.isBusy(src) || !n.isBusy(1) {
		t.Fatalf("after first step: busy(src)=%v busy(next)=%v, want both", n.isBusy(src), n.isBusy(1))
	}
	for i := 0; i < 200 && !m.Delivered(); i++ {
		n.Step()
		if err := n.Validate(); err != nil {
			t.Fatalf("cycle %d: %v", n.Cycle(), err)
		}
	}
	if !m.Delivered() {
		t.Fatal("message never delivered")
	}
	if n.BusyRouters() != 0 {
		t.Fatalf("after delivery: %d routers busy, want 0", n.BusyRouters())
	}
}

// TestWorklistReset checks that Network.Reset empties the dirty set
// along with the rest of the engine state, so a reused network does not
// inherit phantom busy routers from the previous run.
func TestWorklistReset(t *testing.T) {
	mesh := topology.New(6, 6)
	cfg := DefaultConfig()
	cfg.NumVCs = 2
	cfg.MaxSourceQueue = 4
	alg := xyAlg{mesh: mesh, vcs: 2}
	n, err := NewNetwork(mesh, nil, alg, cfg, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		m := n.AcquireMessage(int64(i+1), topology.NodeID(i), topology.NodeID(35-i), 8)
		m.GenTime = 0
		n.Offer(m)
	}
	for i := 0; i < 10; i++ {
		n.Step()
	}
	if n.BusyRouters() == 0 {
		t.Fatal("mid-run network should have busy routers")
	}
	if err := n.Reset(nil, alg, rand.New(rand.NewSource(4))); err != nil {
		t.Fatal(err)
	}
	if n.BusyRouters() != 0 {
		t.Fatalf("after Reset: %d routers busy, want 0", n.BusyRouters())
	}
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
}
