package core

import (
	"math/rand"
	"testing"

	"wormmesh/internal/fault"
	"wormmesh/internal/topology"
)

// xyAlg is a minimal deterministic dimension-order algorithm used to
// test the engine in isolation from the real routing package.
type xyAlg struct {
	mesh topology.Topology
	vcs  int
}

func (a xyAlg) Name() string           { return "test-xy" }
func (a xyAlg) NumVCs() int            { return a.vcs }
func (a xyAlg) InitMessage(m *Message) {}
func (a xyAlg) Candidates(m *Message, node topology.NodeID, out *CandidateSet) {
	cur, dst := a.mesh.CoordOf(node), a.mesh.CoordOf(m.Dst)
	d, ok := topology.DirTowards(cur, dst, 0)
	if !ok {
		d, ok = topology.DirTowards(cur, dst, 1)
	}
	if ok {
		out.AddVCs(0, d, 0, a.vcs-1)
	}
}
func (a xyAlg) Advance(m *Message, from topology.NodeID, ch Channel) { m.Hops++ }

// torusXYAlg is xyAlg's torus form: dimension-order routing over the
// topology's minimal-direction choice, with each hop restricted to the
// half of the VC pool selected by the wrap class — the classic
// dateline discipline, so the wrap rings stay deadlock-free.
type torusXYAlg struct {
	topo topology.Topology
	vcs  int
}

func (a torusXYAlg) Name() string           { return "test-torus-xy" }
func (a torusXYAlg) NumVCs() int            { return a.vcs }
func (a torusXYAlg) InitMessage(m *Message) {}
func (a torusXYAlg) Candidates(m *Message, node topology.NodeID, out *CandidateSet) {
	cur, dst := a.topo.CoordOf(node), a.topo.CoordOf(m.Dst)
	dim := 0
	d, ok := a.topo.DirTowards(cur, dst, 0)
	if !ok {
		dim = 1
		d, ok = a.topo.DirTowards(cur, dst, 1)
	}
	if !ok {
		return
	}
	half := a.vcs / 2
	lo := int(a.topo.WrapClass(cur, dst, dim)) * half
	out.AddVCs(0, d, lo, lo+half-1)
}
func (a torusXYAlg) Advance(m *Message, from topology.NodeID, ch Channel) { m.Hops++ }

// stuckAlg grants a first hop and then never offers candidates again,
// wedging every message one hop in — used to exercise stall recovery.
type stuckAlg struct{ xyAlg }

func (a stuckAlg) Candidates(m *Message, node topology.NodeID, out *CandidateSet) {
	if m.Hops == 0 {
		a.xyAlg.Candidates(m, node, out)
	}
}

func testConfig() Config {
	cfg := DefaultConfig()
	cfg.NumVCs = 4
	cfg.Selection = SelectLowestVC
	return cfg
}

func newTestNetwork(t *testing.T, mesh topology.Topology, f *fault.Model, alg Algorithm, cfg Config, seed int64) *Network {
	t.Helper()
	n, err := NewNetwork(mesh, f, alg, cfg, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func offer(t *testing.T, n *Network, id int64, src, dst topology.Coord, length int) *Message {
	t.Helper()
	m := NewMessage(id, n.Topo.ID(src), n.Topo.ID(dst), length)
	m.GenTime = n.Cycle()
	if !n.Offer(m) {
		t.Fatalf("offer refused for msg %d", id)
	}
	return m
}

func stepUntilDelivered(t *testing.T, n *Network, m *Message, limit int) {
	t.Helper()
	for i := 0; i < limit; i++ {
		n.Step()
		if err := n.Validate(); err != nil {
			t.Fatalf("cycle %d: %v", n.Cycle(), err)
		}
		if m.Delivered() {
			return
		}
	}
	t.Fatalf("message %v not delivered within %d cycles", m, limit)
}

func TestSingleMessagePipelineLatency(t *testing.T) {
	mesh := topology.New(6, 6)
	n := newTestNetwork(t, mesh, nil, xyAlg{mesh: mesh, vcs: 4}, testConfig(), 1)
	// 3 hops east, 4 flits: wormhole pipelining gives H + L - 1 cycles.
	m := offer(t, n, 1, topology.Coord{X: 0, Y: 0}, topology.Coord{X: 3, Y: 0}, 4)
	stepUntilDelivered(t, n, m, 100)
	if got, want := m.Latency(), int64(3+4-1); got != want {
		t.Errorf("latency = %d, want %d (H+L-1)", got, want)
	}
	if m.NetworkLatency() != m.Latency() {
		t.Errorf("network latency %d != total %d for uncontended message", m.NetworkLatency(), m.Latency())
	}
}

func TestLatencyScalesWithDistanceAndLength(t *testing.T) {
	mesh := topology.New(10, 10)
	for _, tc := range []struct {
		dst    topology.Coord
		length int
	}{
		{topology.Coord{X: 9, Y: 0}, 1},
		{topology.Coord{X: 9, Y: 9}, 1},
		{topology.Coord{X: 1, Y: 0}, 100},
		{topology.Coord{X: 5, Y: 5}, 32},
	} {
		n := newTestNetwork(t, mesh, nil, xyAlg{mesh: mesh, vcs: 4}, testConfig(), 1)
		m := offer(t, n, 1, topology.Coord{X: 0, Y: 0}, tc.dst, tc.length)
		stepUntilDelivered(t, n, m, 500)
		h := int64(mesh.Distance(topology.Coord{X: 0, Y: 0}, tc.dst))
		if got, want := m.Latency(), h+int64(tc.length)-1; got != want {
			t.Errorf("dst %v len %d: latency = %d, want %d", tc.dst, tc.length, got, want)
		}
	}
}

func TestHeaderBlocksWhenAllVCsBusy(t *testing.T) {
	mesh := topology.New(4, 2)
	cfg := testConfig()
	cfg.NumVCs = 1
	n := newTestNetwork(t, mesh, nil, xyAlg{mesh: mesh, vcs: 1}, cfg, 1)
	// Long message A occupies the single VC of the (1,0)->(2,0) link;
	// message B from (1,0), offered after A holds the channel, must
	// wait for A's tail.
	a := offer(t, n, 1, topology.Coord{X: 0, Y: 0}, topology.Coord{X: 3, Y: 0}, 20)
	for i := 0; i < 3; i++ {
		n.Step()
	}
	b := offer(t, n, 2, topology.Coord{X: 1, Y: 0}, topology.Coord{X: 3, Y: 0}, 5)
	for !a.Delivered() || !b.Delivered() {
		n.Step()
		if err := n.Validate(); err != nil {
			t.Fatal(err)
		}
		if n.Cycle() > 500 {
			t.Fatalf("not delivered: a=%v b=%v", a.Delivered(), b.Delivered())
		}
	}
	if b.Latency() <= int64(2+5-1) {
		t.Errorf("B latency %d shows no blocking behind A", b.Latency())
	}
}

func TestVCMultiplexingSharesLink(t *testing.T) {
	mesh := topology.New(4, 2)
	cfg := testConfig()
	cfg.NumVCs = 2
	n := newTestNetwork(t, mesh, nil, xyAlg{mesh: mesh, vcs: 2}, cfg, 1)
	// Two messages share every link eastward on separate VCs: both
	// progress, each at roughly half bandwidth.
	a := offer(t, n, 1, topology.Coord{X: 0, Y: 0}, topology.Coord{X: 3, Y: 0}, 10)
	b := offer(t, n, 2, topology.Coord{X: 0, Y: 0}, topology.Coord{X: 3, Y: 0}, 10)
	for !a.Delivered() || !b.Delivered() {
		n.Step()
		if err := n.Validate(); err != nil {
			t.Fatal(err)
		}
		if n.Cycle() > 500 {
			t.Fatal("messages not delivered")
		}
	}
	// Serialized at the source injection port (1 flit/cycle), so the
	// pair takes at least 2*L cycles overall.
	last := a.DeliverTime
	if b.DeliverTime > last {
		last = b.DeliverTime
	}
	if last < 20 {
		t.Errorf("both 10-flit messages done at cycle %d, faster than injection bandwidth allows", last)
	}
}

func TestEjectionBandwidthLimits(t *testing.T) {
	mesh := topology.New(3, 3)
	run := func(ejectBW int) int64 {
		cfg := testConfig()
		cfg.EjectBW = ejectBW
		n := newTestNetwork(t, mesh, nil, xyAlg{mesh: mesh, vcs: 4}, cfg, 1)
		// Two messages from opposite sides converge on the center.
		a := offer(t, n, 1, topology.Coord{X: 0, Y: 1}, topology.Coord{X: 1, Y: 1}, 30)
		b := offer(t, n, 2, topology.Coord{X: 2, Y: 1}, topology.Coord{X: 1, Y: 1}, 30)
		for !a.Delivered() || !b.Delivered() {
			n.Step()
			if n.Cycle() > 1000 {
				t.Fatal("not delivered")
			}
		}
		if a.DeliverTime > b.DeliverTime {
			return a.DeliverTime
		}
		return b.DeliverTime
	}
	if fast, slow := run(2), run(1); fast >= slow {
		t.Errorf("EjectBW=2 finished at %d, not faster than EjectBW=1 at %d", fast, slow)
	}
}

func TestBackpressureWithMinimalBuffers(t *testing.T) {
	mesh := topology.New(8, 2)
	cfg := testConfig()
	cfg.BufDepth = 1
	n := newTestNetwork(t, mesh, nil, xyAlg{mesh: mesh, vcs: 2}, cfg, 1)
	m := offer(t, n, 1, topology.Coord{X: 0, Y: 0}, topology.Coord{X: 7, Y: 0}, 50)
	stepUntilDelivered(t, n, m, 2000)
}

func TestOfferRefusedWhenQueueFull(t *testing.T) {
	mesh := topology.New(3, 3)
	cfg := testConfig()
	cfg.MaxSourceQueue = 2
	n := newTestNetwork(t, mesh, nil, xyAlg{mesh: mesh, vcs: 4}, cfg, 1)
	src, dst := topology.Coord{X: 0, Y: 0}, topology.Coord{X: 2, Y: 2}
	for i := 0; i < 2; i++ {
		offer(t, n, int64(i+1), src, dst, 10)
	}
	extra := NewMessage(99, mesh.ID(src), mesh.ID(dst), 10)
	extra.GenTime = 0
	if n.Offer(extra) {
		t.Fatal("offer accepted beyond MaxSourceQueue")
	}
	if n.Snapshot().Refused != 1 {
		t.Errorf("Refused = %d, want 1", n.Snapshot().Refused)
	}
}

func TestOfferPanicsOnFaultyEndpoints(t *testing.T) {
	mesh := topology.New(5, 5)
	f, err := fault.New(mesh, []topology.NodeID{mesh.ID(topology.Coord{X: 2, Y: 2})})
	if err != nil {
		t.Fatal(err)
	}
	n := newTestNetwork(t, mesh, f, xyAlg{mesh: mesh, vcs: 4}, testConfig(), 1)
	for _, tc := range []struct{ src, dst topology.Coord }{
		{topology.Coord{X: 2, Y: 2}, topology.Coord{X: 0, Y: 0}},
		{topology.Coord{X: 0, Y: 0}, topology.Coord{X: 2, Y: 2}},
		{topology.Coord{X: 1, Y: 1}, topology.Coord{X: 1, Y: 1}}, // self
	} {
		m := NewMessage(1, mesh.ID(tc.src), mesh.ID(tc.dst), 1)
		m.GenTime = 0
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Offer(%v->%v) did not panic", tc.src, tc.dst)
				}
			}()
			n.Offer(m)
		}()
	}
}

func TestStallRecoveryKillsWedgedMessage(t *testing.T) {
	mesh := topology.New(4, 4)
	cfg := testConfig()
	cfg.MessageStallCycles = 100
	n := newTestNetwork(t, mesh, nil, stuckAlg{xyAlg{mesh: mesh, vcs: 4}}, cfg, 1)
	m := offer(t, n, 1, topology.Coord{X: 0, Y: 0}, topology.Coord{X: 3, Y: 0}, 10)
	for i := 0; i < 3000 && !m.Killed; i++ {
		n.Step()
		if err := n.Validate(); err != nil {
			t.Fatal(err)
		}
	}
	if !m.Killed {
		t.Fatal("wedged message never killed")
	}
	if n.InFlight() != 0 {
		t.Errorf("InFlight = %d after kill", n.InFlight())
	}
	st := n.Snapshot()
	if st.Killed != 1 {
		t.Errorf("Killed = %d, want 1", st.Killed)
	}
	// All channels must be free again.
	if err := n.Validate(); err != nil {
		t.Error(err)
	}
}

func TestGlobalWatchdogRecovers(t *testing.T) {
	mesh := topology.New(4, 4)
	cfg := testConfig()
	cfg.DeadlockCycles = 50
	cfg.MessageStallCycles = 0 // force the global path
	n := newTestNetwork(t, mesh, nil, stuckAlg{xyAlg{mesh: mesh, vcs: 4}}, cfg, 1)
	m := offer(t, n, 1, topology.Coord{X: 0, Y: 0}, topology.Coord{X: 3, Y: 0}, 10)
	for i := 0; i < 500 && !m.Killed; i++ {
		n.Step()
	}
	if !m.Killed {
		t.Fatal("global watchdog never fired")
	}
	if n.Snapshot().DeadlockEvents == 0 {
		t.Error("DeadlockEvents not counted")
	}
}

func TestKillReinjectPreservesGenTime(t *testing.T) {
	mesh := topology.New(4, 4)
	cfg := testConfig()
	cfg.MessageStallCycles = 100
	cfg.Kill = KillReinject
	n := newTestNetwork(t, mesh, nil, stuckAlg{xyAlg{mesh: mesh, vcs: 4}}, cfg, 1)
	m := offer(t, n, 1, topology.Coord{X: 0, Y: 0}, topology.Coord{X: 3, Y: 0}, 10)
	for i := 0; i < 2000 && !m.Killed; i++ {
		n.Step()
	}
	if !m.Killed {
		t.Fatal("message not killed")
	}
	if n.InFlight() != 1 {
		t.Fatalf("InFlight = %d, want 1 (the re-injected clone)", n.InFlight())
	}
	if n.QueueLen(m.Src) != 1 {
		t.Fatalf("clone not queued at source")
	}
}

func TestMaxHopsLivelockGuard(t *testing.T) {
	mesh := topology.New(4, 4)
	cfg := testConfig()
	cfg.MaxHops = 16
	cfg.MessageStallCycles = 0
	// spinAlg circles the bottom-left 2x2 square forever, never
	// approaching the destination: a synthetic livelock.
	n := newTestNetwork(t, mesh, nil, spinAlg{mesh: mesh}, cfg, 1)
	m := offer(t, n, 1, topology.Coord{X: 0, Y: 0}, topology.Coord{X: 3, Y: 3}, 3)
	for i := 0; i < 5000 && !m.Killed && !m.Delivered(); i++ {
		n.Step()
	}
	if m.Delivered() {
		t.Fatal("spin message unexpectedly delivered")
	}
	if !m.Killed {
		t.Fatal("message exceeding MaxHops not killed")
	}
	if m.Hops <= cfg.MaxHops {
		t.Fatalf("killed at %d hops, guard is %d", m.Hops, cfg.MaxHops)
	}
}

// spinAlg routes clockwise around the bottom-left 2x2 square.
type spinAlg struct{ mesh topology.Topology }

func (a spinAlg) Name() string           { return "test-spin" }
func (a spinAlg) NumVCs() int            { return 1 }
func (a spinAlg) InitMessage(m *Message) {}
func (a spinAlg) Candidates(m *Message, node topology.NodeID, out *CandidateSet) {
	c := a.mesh.CoordOf(node)
	var d topology.Direction
	switch {
	case c.X == 0 && c.Y == 0:
		d = topology.East
	case c.X == 1 && c.Y == 0:
		d = topology.North
	case c.X == 1 && c.Y == 1:
		d = topology.West
	default:
		d = topology.South
	}
	out.Add(0, Channel{Dir: d, VC: 0})
}
func (a spinAlg) Advance(m *Message, from topology.NodeID, ch Channel) { m.Hops++ }

func TestDeterminismAcrossRuns(t *testing.T) {
	mesh := topology.New(6, 6)
	run := func() Stats {
		n := newTestNetwork(t, mesh, nil, xyAlg{mesh: mesh, vcs: 4}, testConfig(), 7)
		rng := rand.New(rand.NewSource(3))
		id := int64(0)
		for cycle := 0; cycle < 600; cycle++ {
			if rng.Float64() < 0.3 {
				src := topology.NodeID(rng.Intn(mesh.NodeCount()))
				dst := topology.NodeID(rng.Intn(mesh.NodeCount()))
				if src != dst {
					id++
					m := NewMessage(id, src, dst, 8)
					m.GenTime = n.Cycle()
					n.Offer(m)
				}
			}
			n.Step()
		}
		return n.Snapshot()
	}
	a, b := run(), run()
	if a.Delivered != b.Delivered || a.LatencySum != b.LatencySum || a.FlitHops != b.FlitHops {
		t.Errorf("same seeds diverged: %+v vs %+v", a.Delivered, b.Delivered)
	}
}

func TestResetStatsStartsCleanWindow(t *testing.T) {
	mesh := topology.New(5, 5)
	n := newTestNetwork(t, mesh, nil, xyAlg{mesh: mesh, vcs: 4}, testConfig(), 1)
	m := offer(t, n, 1, topology.Coord{X: 0, Y: 0}, topology.Coord{X: 4, Y: 0}, 5)
	stepUntilDelivered(t, n, m, 100)
	if n.Snapshot().Delivered != 1 {
		t.Fatal("warm-up delivery not counted before reset")
	}
	n.ResetStats()
	st := n.Snapshot()
	if st.Delivered != 0 || st.Generated != 0 || st.DeliveredFlits != 0 {
		t.Errorf("stats not cleared: %+v", st)
	}
	// A message generated before the reset but delivered after it
	// counts towards throughput but not latency.
	m2 := offer(t, n, 2, topology.Coord{X: 0, Y: 0}, topology.Coord{X: 4, Y: 0}, 5)
	m2.GenTime = n.Cycle() - 1000 // pretend it predates the window
	stepUntilDelivered(t, n, m2, 100)
	st = n.Snapshot()
	if st.Delivered != 1 {
		t.Errorf("post-reset delivery not counted: %+v", st.Delivered)
	}
	if st.LatencyCount != 0 {
		t.Errorf("stale-generation message polluted latency: count=%d", st.LatencyCount)
	}
}

func TestVCUtilizationAccounting(t *testing.T) {
	mesh := topology.New(4, 2)
	cfg := testConfig()
	n := newTestNetwork(t, mesh, nil, xyAlg{mesh: mesh, vcs: 1}, cfg, 1)
	m := offer(t, n, 1, topology.Coord{X: 0, Y: 0}, topology.Coord{X: 3, Y: 0}, 10)
	stepUntilDelivered(t, n, m, 200)
	st := n.Snapshot()
	if st.VCBusy[0] == 0 {
		t.Error("VC0 busy time not recorded")
	}
	for v := 1; v < cfg.NumVCs; v++ {
		if st.VCBusy[v] != 0 {
			t.Errorf("unused VC%d shows busy time %d", v, st.VCBusy[v])
		}
	}
	if st.VCAcquired[0] != 3 {
		t.Errorf("VC0 acquisitions = %d, want 3 (one per hop)", st.VCAcquired[0])
	}
	util := st.VCUtilization()
	if util[0] <= 0 || util[0] > 1 {
		t.Errorf("VC0 utilization = %v", util[0])
	}
}

func TestNodeCrossingsCounted(t *testing.T) {
	mesh := topology.New(4, 2)
	n := newTestNetwork(t, mesh, nil, xyAlg{mesh: mesh, vcs: 2}, testConfig(), 1)
	m := offer(t, n, 1, topology.Coord{X: 0, Y: 0}, topology.Coord{X: 3, Y: 0}, 10)
	stepUntilDelivered(t, n, m, 200)
	st := n.Snapshot()
	// Source crossbar: 10 injections. Intermediate nodes forward 10
	// flits each. Destination ejects 10.
	for x := 0; x < 4; x++ {
		id := mesh.ID(topology.Coord{X: x, Y: 0})
		if st.NodeCrossings[id] != 10 {
			t.Errorf("node (%d,0) crossings = %d, want 10", x, st.NodeCrossings[id])
		}
	}
	if st.FlitHops != 30 {
		t.Errorf("FlitHops = %d, want 30 (3 links x 10 flits)", st.FlitHops)
	}
	if st.DeliveredFlits != 10 {
		t.Errorf("DeliveredFlits = %d, want 10", st.DeliveredFlits)
	}
}

func TestRandomTrafficInvariantsUnderFaults(t *testing.T) {
	mesh := topology.New(8, 8)
	f, err := fault.New(mesh, []topology.NodeID{
		mesh.ID(topology.Coord{X: 3, Y: 3}), mesh.ID(topology.Coord{X: 4, Y: 3}),
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig()
	cfg.NumVCs = 6
	cfg.Selection = SelectRandomChannel
	n := newTestNetwork(t, mesh, f, xyAlg{mesh: mesh, vcs: 6}, cfg, 11)
	rng := rand.New(rand.NewSource(5))
	healthy := f.HealthyNodes()
	id := int64(0)
	for cycle := 0; cycle < 800; cycle++ {
		if rng.Float64() < 0.5 {
			src := healthy[rng.Intn(len(healthy))]
			dst := healthy[rng.Intn(len(healthy))]
			// xyAlg is fault-oblivious: only offer pairs whose XY path
			// avoids the fault block (row 3 columns 3-4).
			if src != dst && xyPathClear(mesh, f, src, dst) {
				id++
				m := NewMessage(id, src, dst, 6)
				m.GenTime = n.Cycle()
				n.Offer(m)
			}
		}
		n.Step()
		if err := n.Validate(); err != nil {
			t.Fatalf("cycle %d: %v", cycle, err)
		}
	}
	if n.Snapshot().Delivered == 0 {
		t.Fatal("no traffic delivered")
	}
}

// xyPathClear reports whether the dimension-order path between two
// nodes avoids every faulty node.
func xyPathClear(m topology.Topology, f *fault.Model, src, dst topology.NodeID) bool {
	cur := m.CoordOf(src)
	target := m.CoordOf(dst)
	for cur != target {
		d, ok := topology.DirTowards(cur, target, 0)
		if !ok {
			d, _ = topology.DirTowards(cur, target, 1)
		}
		next, _ := m.Neighbor(cur, d)
		if f.IsFaulty(m.ID(next)) {
			return false
		}
		cur = next
	}
	return true
}
