package core

import (
	"math/rand"
	"testing"

	"wormmesh/internal/topology"
)

// orderTracer checks the wormhole discipline through the event stream:
// per message and per link, flits move in strictly increasing index
// order with no gaps; every hop of the header follows the previously
// routed channel; deliveries and kills are mutually exclusive.
type orderTracer struct {
	NopTracer
	t *testing.T
	// lastIndex[msg][link] = last flit index seen on that link.
	lastIndex map[*Message]map[linkKey]int32
	delivered map[*Message]bool
	injected  map[*Message]bool
}

type linkKey struct {
	from topology.NodeID
	dir  topology.Direction
}

func newOrderTracer(t *testing.T) *orderTracer {
	return &orderTracer{
		t:         t,
		lastIndex: map[*Message]map[linkKey]int32{},
		delivered: map[*Message]bool{},
		injected:  map[*Message]bool{},
	}
}

func (o *orderTracer) MessageInjected(m *Message, cycle int64) {
	if o.injected[m] {
		o.t.Errorf("message %d injected twice", m.ID)
	}
	o.injected[m] = true
}

func (o *orderTracer) FlitMoved(f Flit, from topology.NodeID, ch Channel, cycle int64) {
	links, ok := o.lastIndex[f.Msg]
	if !ok {
		links = map[linkKey]int32{}
		o.lastIndex[f.Msg] = links
	}
	k := linkKey{from: from, dir: ch.Dir}
	last, seen := links[k]
	if !seen {
		if f.Index != 0 {
			o.t.Errorf("msg %d: first flit on link %v has index %d", f.Msg.ID, k, f.Index)
		}
	} else if f.Index != last+1 {
		o.t.Errorf("msg %d: link %v saw index %d after %d", f.Msg.ID, k, f.Index, last)
	}
	links[k] = f.Index
}

func (o *orderTracer) MessageDelivered(m *Message, cycle int64) {
	if o.delivered[m] {
		o.t.Errorf("message %d delivered twice", m.ID)
	}
	o.delivered[m] = true
	// Every link the message used must have carried all of its flits.
	for k, last := range o.lastIndex[m] {
		if int(last) != m.Length-1 {
			o.t.Errorf("msg %d delivered but link %v stopped at flit %d of %d", m.ID, k, last, m.Length)
		}
	}
}

func (o *orderTracer) MessageKilled(m *Message, cause KillCause, cycle int64) {
	if o.delivered[m] {
		o.t.Errorf("message %d killed after delivery", m.ID)
	}
}

func TestTracerObservesWormholeOrdering(t *testing.T) {
	mesh := topology.New(6, 6)
	cfg := testConfig()
	cfg.NumVCs = 3
	n := newTestNetwork(t, mesh, nil, xyAlg{mesh: mesh, vcs: 3}, cfg, 21)
	tr := newOrderTracer(t)
	n.SetTracer(tr)

	rng := rand.New(rand.NewSource(9))
	id := int64(0)
	for cycle := 0; cycle < 1500; cycle++ {
		if rng.Float64() < 0.4 {
			src := topology.NodeID(rng.Intn(mesh.NodeCount()))
			dst := topology.NodeID(rng.Intn(mesh.NodeCount()))
			if src != dst {
				id++
				m := NewMessage(id, src, dst, 7)
				m.GenTime = n.Cycle()
				n.Offer(m)
			}
		}
		n.Step()
	}
	if len(tr.delivered) == 0 {
		t.Fatal("tracer saw no deliveries")
	}
	if len(tr.injected) < len(tr.delivered) {
		t.Errorf("injections %d < deliveries %d", len(tr.injected), len(tr.delivered))
	}
}

func TestTracerHeaderRoutedMatchesHops(t *testing.T) {
	mesh := topology.New(5, 5)
	n := newTestNetwork(t, mesh, nil, xyAlg{mesh: mesh, vcs: 4}, testConfig(), 1)
	type hop struct {
		node topology.NodeID
		ch   Channel
	}
	var hops []hop
	rec := &recordingTracer{}
	n.SetTracer(rec)
	m := offer(t, n, 1, topology.Coord{X: 0, Y: 0}, topology.Coord{X: 3, Y: 2}, 4)
	stepUntilDelivered(t, n, m, 200)
	hops = nil
	for _, h := range rec.hops {
		if h.m == m {
			hops = append(hops, hop{node: h.node, ch: h.ch})
		}
	}
	// 5 hops + injection grant: the XY path (0,0)->(3,2) has 5 links,
	// each granted exactly once (injection grant is the first hop's).
	if len(hops) != 5 {
		t.Fatalf("HeaderRouted events = %d, want 5", len(hops))
	}
	// The recorded grant chain is connected: each grant's target is
	// the next grant's node.
	for i := 0; i+1 < len(hops); i++ {
		next := mesh.NeighborID(hops[i].node, hops[i].ch.Dir)
		if next != hops[i+1].node {
			t.Errorf("grant %d targets %d but next grant is at %d", i, next, hops[i+1].node)
		}
	}
	if int(m.Hops) != len(hops) {
		t.Errorf("message hops %d != grants %d", m.Hops, len(hops))
	}
}

type recordingTracer struct {
	NopTracer
	hops []struct {
		m    *Message
		node topology.NodeID
		ch   Channel
	}
}

func (r *recordingTracer) HeaderRouted(m *Message, node topology.NodeID, ch Channel, cycle int64) {
	r.hops = append(r.hops, struct {
		m    *Message
		node topology.NodeID
		ch   Channel
	}{m, node, ch})
}
