package analytic

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"wormmesh/internal/topology"
)

// TestQuickCutLoadsConserve checks flit-hop conservation for random
// mesh shapes and rates.
func TestQuickCutLoadsConserve(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func() bool {
		w := 2 + rng.Intn(14)
		h := 2 + rng.Intn(14)
		rate := rng.Float64() * 0.5
		m := topology.New(w, h)
		xs, ys := cutLoads(m, rate)
		total := 0.0
		for _, u := range xs {
			total += 2 * u * float64(h)
		}
		for _, u := range ys {
			total += 2 * u * float64(w)
		}
		want := rate * float64(m.NodeCount()) * (meanAbsDiff(w) + meanAbsDiff(h))
		return math.Abs(total-want) < 1e-9*(1+want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestQuickPredictionOrdering: for any pair of rates below saturation,
// the higher rate never yields lower latency or lower blocking.
func TestQuickPredictionOrdering(t *testing.T) {
	m := Default()
	rng := rand.New(rand.NewSource(2))
	f := func() bool {
		a := 0.0001 + rng.Float64()*0.002
		b := 0.0001 + rng.Float64()*0.002
		if a > b {
			a, b = b, a
		}
		pa, errA := m.Predict(a)
		pb, errB := m.Predict(b)
		if errA != nil {
			return errB != nil || a > b // saturation is monotone too
		}
		if errB != nil {
			return true
		}
		return pb.Latency >= pa.Latency-1e-9 && pb.BlockingProb >= pa.BlockingProb-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestQuickMeanDistanceBounds: the closed form stays within the
// trivial bounds for random mesh shapes.
func TestQuickMeanDistanceBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	f := func() bool {
		w := 2 + rng.Intn(20)
		h := 2 + rng.Intn(20)
		m := topology.New(w, h)
		d := MeanDistance(m)
		return d > 0 && d <= float64(m.Diameter())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}
