package analytic

import (
	"math"
	"testing"

	"wormmesh/internal/sim"
	"wormmesh/internal/topology"
)

func TestMeanDistanceExact(t *testing.T) {
	// Brute force over all distinct pairs.
	for _, dims := range [][2]int{{4, 4}, {10, 10}, {5, 8}} {
		m := topology.New(dims[0], dims[1])
		sum, n := 0, 0
		for a := topology.NodeID(0); int(a) < m.NodeCount(); a++ {
			for b := topology.NodeID(0); int(b) < m.NodeCount(); b++ {
				if a != b {
					sum += m.Distance(m.CoordOf(a), m.CoordOf(b))
					n++
				}
			}
		}
		want := float64(sum) / float64(n)
		if got := MeanDistance(m); math.Abs(got-want) > 1e-9 {
			t.Errorf("%v: MeanDistance = %v, brute force %v", m, got, want)
		}
	}
}

func TestChannelCount(t *testing.T) {
	if got := ChannelCount(topology.New(10, 10)); got != 360 {
		t.Errorf("10x10 channels = %d, want 360", got)
	}
	if got := ChannelCount(topology.New(2, 2)); got != 8 {
		t.Errorf("2x2 channels = %d, want 8", got)
	}
}

func TestCutLoadsConserveTraffic(t *testing.T) {
	m := topology.New(10, 10)
	flitRate := 0.1
	xs, ys := cutLoads(m, flitRate)
	// Summing per-channel loads times channels per cut over all four
	// directions must equal the total flit-hops generated per cycle:
	// rate * N * meanDistance(ordered pairs with repetition).
	total := 0.0
	for _, u := range xs {
		total += 2 * u * float64(m.Height()) // east + west symmetric
	}
	for _, u := range ys {
		total += 2 * u * float64(m.Width())
	}
	want := flitRate * float64(m.NodeCount()) * (meanAbsDiff(m.Width()) + meanAbsDiff(m.Height()))
	if math.Abs(total-want) > 1e-9 {
		t.Errorf("cut loads sum to %v, want %v", total, want)
	}
	// Center cuts are the busiest.
	if xs[4] <= xs[0] || xs[4] <= xs[8] {
		t.Errorf("center cut not the busiest: %v", xs)
	}
}

func TestPredictMonotoneInLoad(t *testing.T) {
	m := Default()
	prev := 0.0
	for _, rate := range []float64{0.0001, 0.0005, 0.001, 0.0015, 0.002} {
		p, err := m.Predict(rate)
		if err != nil {
			t.Fatalf("rate %v: %v", rate, err)
		}
		if p.Latency <= prev {
			t.Errorf("latency not increasing: %v at rate %v", p.Latency, rate)
		}
		if p.Latency < p.MeanDistance+float64(m.MessageLength)-1 {
			t.Errorf("latency %v below zero-load bound", p.Latency)
		}
		prev = p.Latency
	}
}

func TestPredictSaturates(t *testing.T) {
	m := Default()
	if _, err := m.Predict(1.0); err != ErrSaturated {
		t.Errorf("rate 1.0 err = %v, want ErrSaturated", err)
	}
	if _, err := m.Predict(-1); err == nil {
		t.Error("negative rate accepted")
	}
	sat := m.SaturationRate()
	if sat <= 0.001 || sat > 0.01 {
		t.Errorf("saturation rate = %v, expected a few thousandths for 100-flit messages", sat)
	}
	if _, err := m.Predict(sat * 0.9); err != nil {
		t.Errorf("below saturation errored: %v", err)
	}
	if _, err := m.Predict(sat * 1.2); err == nil {
		t.Error("above saturation accepted")
	}
}

func TestFewerVCsRaiseBlocking(t *testing.T) {
	wide := Default()
	narrow := Default()
	narrow.VirtualChannels = 2
	rate := 0.002
	pw, err := wide.Predict(rate)
	if err != nil {
		t.Fatal(err)
	}
	pn, err := narrow.Predict(rate)
	if err != nil {
		t.Fatal(err)
	}
	if pn.BlockingProb <= pw.BlockingProb {
		t.Errorf("narrow blocking %v not above wide %v", pn.BlockingProb, pw.BlockingProb)
	}
	if pn.Latency < pw.Latency {
		t.Errorf("narrow latency %v below wide %v", pn.Latency, pw.Latency)
	}
}

func TestContentionGainMonotone(t *testing.T) {
	m := Default()
	m.ContentionGain = 1
	a, err := m.Predict(0.001)
	if err != nil {
		t.Fatal(err)
	}
	m.ContentionGain = 2
	b, err := m.Predict(0.001)
	if err != nil {
		t.Fatal(err)
	}
	if b.Latency <= a.Latency {
		t.Errorf("gain 2 latency %v not above gain 1 %v", b.Latency, a.Latency)
	}
}

func TestCalibrateRejectsImpossible(t *testing.T) {
	m := Default()
	if _, err := m.Calibrate(0.001, 50); err == nil {
		t.Error("calibration to a latency below the zero-load bound succeeded")
	}
}

// TestModelShapeAgainstSimulator validates the uncalibrated model
// qualitatively against the flit-level simulator: same zero-load
// anchor, monotone growth in the same band, saturation at the right
// order of magnitude.
func TestModelShapeAgainstSimulator(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-backed validation")
	}
	model := Default()
	measure := func(rate float64) float64 {
		p := sim.DefaultParams()
		p.Algorithm = "Minimal-Adaptive"
		p.Rate = rate
		p.WarmupCycles = 3000
		p.MeasureCycles = 9000
		res, err := sim.Run(p)
		if err != nil {
			t.Fatal(err)
		}
		return res.Stats.AvgLatency()
	}
	for _, rate := range []float64{0.0005, 0.001} {
		pred, err := model.Predict(rate)
		if err != nil {
			t.Fatalf("rate %v: %v", rate, err)
		}
		measured := measure(rate)
		// Uncalibrated mean-field models understate bursty contention;
		// demand the right band (within a factor of 2) and the right
		// side of the zero-load bound.
		if pred.Latency > measured {
			t.Errorf("rate %v: uncalibrated model %.0f above simulator %.0f — the mean-field bound should be optimistic",
				rate, pred.Latency, measured)
		}
		if pred.Latency < measured/2 {
			t.Errorf("rate %v: model %.0f below half the simulator's %.0f", rate, pred.Latency, measured)
		}
	}
}

// TestCalibratedModelTransfers calibrates γ at one load and requires
// the calibrated model to predict a different load within 30%.
func TestCalibratedModelTransfers(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-backed validation")
	}
	measure := func(rate float64) float64 {
		p := sim.DefaultParams()
		p.Algorithm = "Minimal-Adaptive"
		p.Rate = rate
		p.WarmupCycles = 3000
		p.MeasureCycles = 9000
		res, err := sim.Run(p)
		if err != nil {
			t.Fatal(err)
		}
		return res.Stats.AvgLatency()
	}
	anchorRate, testRate := 0.001, 0.0015
	calibrated, err := Default().Calibrate(anchorRate, measure(anchorRate))
	if err != nil {
		t.Fatal(err)
	}
	pred, err := calibrated.Predict(testRate)
	if err != nil {
		t.Fatalf("calibrated model saturated at %v: %v", testRate, err)
	}
	measured := measure(testRate)
	if rel := math.Abs(pred.Latency-measured) / measured; rel > 0.30 {
		t.Errorf("calibrated transfer: model %.0f vs simulator %.0f (%.0f%% off, gain %.2f)",
			pred.Latency, measured, 100*rel, calibrated.ContentionGain)
	}
}
