// Package analytic implements a performance model of adaptive wormhole
// routing in 2-D meshes under uniform traffic — the paper's stated
// future work ("driving an analytical modeling approach to investigate
// the performance behavior of these routing algorithms"). It follows
// the M/G/1-style wormhole models of Draper–Ghosh and Ould-Khaoua,
// with two refinements that matter on small radix meshes:
//
//   - channel loads are computed exactly per bisection cut (minimal
//     routing fixes which cuts a message crosses, so cut loads are
//     routing-independent), rather than averaged over all channels;
//   - serialization is evaluated against each source-destination
//     pair's bottleneck cut, enumerated exactly over all pairs.
//
// Mean-field models of this family track simulation qualitatively —
// monotone latency growth, saturation location, virtual-channel
// effects — but systematically underestimate contention from transient
// load bursts. The model therefore carries a single contention-gain
// parameter γ (default 1) and a Calibrate method that fits γ to one
// measured latency; model_test.go validates the uncalibrated shape and
// the calibrated transfer to other loads.
package analytic

import (
	"errors"
	"math"

	"wormmesh/internal/topology"
)

// Model parameterizes the prediction.
type Model struct {
	// Topo is the modeled network. The model currently solves meshes
	// only; Predict returns ErrUnsupported for other kinds.
	Topo topology.Topology
	// MessageLength in flits.
	MessageLength int
	// VirtualChannels usable per physical channel by the modeled
	// algorithm (e.g. 18 for Duato's class I, 20 for the free pools).
	VirtualChannels int
	// Adaptivity is the mean number of permitted output directions
	// while both offsets are non-zero (2 for fully adaptive minimal
	// routing, 1 for deterministic).
	Adaptivity float64
	// ServiceCV is the coefficient of variation of channel holding
	// time used in the M/G/1 residual terms; 0.5 is customary.
	ServiceCV float64
	// ContentionGain γ scales the model's contention delta — the
	// latency in excess of the zero-load bound d̄+L — absorbing the
	// burstiness mean-field analysis misses. Validation shows the
	// model's delta tracks the simulator's at a near-constant ratio
	// throughout the stable region, so a single γ calibrated at one
	// load transfers to others. 1 = pure model; Calibrate fits it.
	ContentionGain float64
	// EjectBandwidth in flits/cycle/node (the simulator's EjectBW).
	EjectBandwidth float64

	// faulted, when non-nil, switches Predict onto the route-load
	// tables WithFaults precomputed: exact per-channel loads over the
	// fortified route set replace the routing-independent bisection-cut
	// shortcut, which is wrong once f-ring detours displace load.
	faulted *faultedTables
}

// Default returns the model configured like the paper's baseline: a
// 10×10 mesh, 100-flit messages, a 20-channel adaptive pool.
func Default() Model {
	return Model{
		Topo:            topology.New(10, 10),
		MessageLength:   100,
		VirtualChannels: 20,
		Adaptivity:      2,
		ServiceCV:       0.5,
		ContentionGain:  1,
		EjectBandwidth:  1,
	}
}

// ErrSaturated is returned when the offered load drives any resource
// in the model beyond unit utilization.
var ErrSaturated = errors.New("analytic: offered load beyond saturation")

// ErrUnsupported is returned for network configurations the model does
// not solve (today: any topology kind other than "mesh", and faulted
// algorithms outside the Boppana–Chalasani fortification).
var ErrUnsupported = errors.New("analytic: configuration not supported by the model")

// MeanDistance returns the exact mean minimal hop count between
// distinct nodes under uniform traffic. Meshes use the closed form;
// other topologies are enumerated exactly.
func MeanDistance(t topology.Topology) float64 {
	n := float64(t.NodeCount())
	if t.Kind() == "mesh" {
		dx := meanAbsDiff(t.Width())
		dy := meanAbsDiff(t.Height())
		// dx+dy averages over ordered pairs with repetition (including
		// distance-0 self pairs); rescale to distinct pairs.
		return (dx + dy) * n / (n - 1)
	}
	sum := 0
	for a := topology.NodeID(0); int(a) < t.NodeCount(); a++ {
		ca := t.CoordOf(a)
		for b := topology.NodeID(0); int(b) < t.NodeCount(); b++ {
			if a != b {
				sum += t.Distance(ca, t.CoordOf(b))
			}
		}
	}
	return float64(sum) / (n * (n - 1))
}

// meanAbsDiff is E|i-j| for i,j uniform on 0..k-1 (with repetition):
// (k²-1)/(3k).
func meanAbsDiff(k int) float64 {
	f := float64(k)
	return (f*f - 1) / (3 * f)
}

// ChannelCount returns the number of directed physical channels in the
// fault-free network (counted from the topology's link set, so wrap
// links are included where they exist).
func ChannelCount(t topology.Topology) int {
	n := 0
	for id := topology.NodeID(0); int(id) < t.NodeCount(); id++ {
		for d := topology.Direction(0); d < topology.NumDirs; d++ {
			if t.NeighborID(id, d) != topology.Invalid {
				n++
			}
		}
	}
	return n
}

// cutLoads returns the per-channel flit utilization of the directed
// X-cuts (east- or westward, symmetric) and Y-cuts for a given
// accepted flit rate per node. Every minimal path from x1 to x2 > x1
// crosses each eastward cut i with x1 <= i < x2 exactly once, so the
// loads hold for any minimal routing algorithm.
func cutLoads(m topology.Topology, flitRate float64) (x []float64, y []float64) {
	nodes := float64(m.NodeCount())
	x = make([]float64, m.Width()-1)
	for i := range x {
		// P(x1 <= i < x2) over uniform ordered coordinate pairs.
		p := float64(i+1) * float64(m.Width()-1-i) / float64(m.Width()*m.Width())
		// Total eastward flits/cycle over the cut, spread over Height
		// channels.
		x[i] = flitRate * nodes * p / float64(m.Height())
	}
	y = make([]float64, m.Height()-1)
	for j := range y {
		p := float64(j+1) * float64(m.Height()-1-j) / float64(m.Height()*m.Height())
		y[j] = flitRate * nodes * p / float64(m.Width())
	}
	return x, y
}

// Prediction is the model output at one offered load.
type Prediction struct {
	Rate           float64 // messages/node/cycle (input)
	MeanDistance   float64
	PeakCutLoad    float64 // utilization of the busiest channel
	MeanStretch    float64 // serialization stretch from bandwidth sharing
	VCOccupancy    float64 // mean per-VC holding probability
	BlockingProb   float64 // per-hop probability of finding no channel
	NetworkLatency float64 // injection to tail delivery
	SourceWait     float64 // queueing before injection
	EjectWait      float64 // contention at the destination port
	Latency        float64 // total
}

// Predict evaluates the model at a traffic generation rate in
// messages/node/cycle. It returns ErrSaturated beyond the model's
// stability region.
func (mo Model) Predict(rate float64) (Prediction, error) {
	if rate <= 0 {
		return Prediction{}, errors.New("analytic: rate must be positive")
	}
	gamma := mo.ContentionGain
	if gamma == 0 {
		gamma = 1
	}
	mesh := mo.Topo
	if mesh == nil || mesh.Kind() != "mesh" {
		return Prediction{}, ErrUnsupported
	}
	l := float64(mo.MessageLength)

	// Load anatomy: mean path length, busiest-channel utilization, and
	// the serialization stretch against each pair's bottleneck. The
	// fault-free path uses the exact routing-independent cut loads; the
	// faulted path (WithFaults) uses the per-channel loads of the
	// fortified route set, where f-ring detours displace load.
	var dbar, serialization, msgPerChannel float64
	var p Prediction
	if ft := mo.faulted; ft != nil {
		dbar = ft.lm.MeanHops
		p = Prediction{Rate: rate, MeanDistance: dbar}
		// Loads are per generated message; the network generates
		// rate×healthy messages of l flits per cycle.
		scale := rate * l * float64(ft.lm.Healthy)
		p.PeakCutLoad = ft.peak * scale
		if p.PeakCutLoad >= 1 {
			p.Latency = math.Inf(1)
			return p, ErrSaturated
		}
		p.MeanStretch = ft.meanStretch(scale)
		serialization = l * p.MeanStretch
		msgPerChannel = rate * float64(ft.lm.Healthy) * dbar / float64(ft.lm.Channels)
	} else {
		dbar = MeanDistance(mesh)
		p = Prediction{Rate: rate, MeanDistance: dbar}

		flitRate := rate * l
		xs, ys := cutLoads(mesh, flitRate)
		for _, u := range append(append([]float64{}, xs...), ys...) {
			if u > p.PeakCutLoad {
				p.PeakCutLoad = u
			}
		}
		if p.PeakCutLoad >= 1 {
			p.Latency = math.Inf(1)
			return p, ErrSaturated
		}

		// Serialization stretch: each pair's flits drain at the residual
		// bandwidth of the path's bottleneck cut; enumerate all coordinate
		// pairs exactly. The X and Y dimensions are independent under
		// uniform traffic, so enumerate each dimension's bottleneck and
		// combine with max.
		p.MeanStretch = meanBottleneckStretch(mesh, xs, ys)
		serialization = l * p.MeanStretch
		msgPerChannel = rate * float64(mesh.NodeCount()) * dbar / float64(ChannelCount(mesh))
	}

	// Channel holding: fixed point on the network latency. A message
	// holds each channel on its path for roughly its whole network
	// residence. Fault-free, every channel sees the same mean load;
	// faulted, occupancy and blocking are evaluated per channel and
	// averaged with traversal weights, because the hot f-ring detour
	// channels dominate blocking long before the mean load says so.
	v := float64(mo.VirtualChannels)
	cv2 := mo.ServiceCV * mo.ServiceCV
	occBlock := func(hold float64) (occ, pBlock float64) {
		occ = msgPerChannel * hold / v
		if occ > 0.99 {
			occ = 0.99
		}
		return occ, math.Pow(occ, v*mo.Adaptivity)
	}
	if ft := mo.faulted; ft != nil {
		occBlock = func(hold float64) (occ, pBlock float64) {
			return ft.occupancy(rate, hold, v, mo.Adaptivity)
		}
	}
	tNet := dbar + serialization
	for iter := 0; iter < 100; iter++ {
		hold := tNet
		occ, pBlock := occBlock(hold)
		p.VCOccupancy = occ
		// Header blocks when all V VCs of all permitted directions are
		// held; waits for the first of them to free (residual of the
		// minimum of a·V busy holders).
		p.BlockingProb = pBlock
		blockWait := hold * (1 + cv2) / 2 / (v * mo.Adaptivity)
		next := dbar + serialization + dbar*p.BlockingProb*blockWait
		if math.Abs(next-tNet) < 1e-9 {
			tNet = next
			break
		}
		tNet = next
	}

	// Ejection port: each node consumes rate*N/N messages per cycle of
	// length L at EjectBandwidth flits/cycle.
	ejService := l / mo.EjectBandwidth
	rhoEj := rate * ejService
	if rhoEj >= 1 {
		p.Latency = math.Inf(1)
		return p, ErrSaturated
	}
	p.EjectWait = rhoEj * ejService * (1 + cv2) / (2 * (1 - rhoEj))

	p.NetworkLatency = tNet + p.EjectWait

	// Source queue: M/G/1 at the injection port; the port is held for
	// the larger of the serialization time and the header's transit.
	srcService := math.Max(serialization, p.NetworkLatency-l)
	rhoSrc := rate * srcService
	if rhoSrc >= 1 {
		p.Latency = math.Inf(1)
		return p, ErrSaturated
	}
	if ft := mo.faulted; ft != nil {
		// Per-source heterogeneity: nodes whose traffic funnels into
		// the detour bottlenecks hold their injection port much longer
		// than the mean, and the M/G/1 wait is convex in that hold
		// time, so the average wait over sources exceeds the wait at
		// the average. This is where faulted latency curves pick up
		// their extra curvature near the knee.
		scale := rate * l * float64(ft.lm.Healthy)
		p.SourceWait = ft.meanSourceWait(rate, scale, l, p.NetworkLatency, cv2)
	} else {
		p.SourceWait = rate * srcService * srcService * (1 + cv2) / (2 * (1 - rhoSrc))
	}

	raw := p.SourceWait + p.NetworkLatency
	// Calibrated output: scale the contention delta above the
	// zero-load bound.
	zeroLoad := dbar + l
	p.Latency = zeroLoad + gamma*(raw-zeroLoad)
	return p, nil
}

// meanBottleneckStretch enumerates all (src, dst) coordinate pairs and
// averages 1/(1-rho_max) over each pair's bottleneck cut.
func meanBottleneckStretch(m topology.Topology, xs, ys []float64) float64 {
	w, h := m.Width(), m.Height()
	total, count := 0.0, 0
	for x1 := 0; x1 < w; x1++ {
		for x2 := 0; x2 < w; x2++ {
			// Bottleneck among crossed X cuts.
			bx := 0.0
			lo, hi := x1, x2
			if lo > hi {
				lo, hi = hi, lo
			}
			for i := lo; i < hi; i++ {
				if xs[i] > bx {
					bx = xs[i]
				}
			}
			for y1 := 0; y1 < h; y1++ {
				for y2 := 0; y2 < h; y2++ {
					if x1 == x2 && y1 == y2 {
						continue
					}
					b := bx
					lo, hi := y1, y2
					if lo > hi {
						lo, hi = hi, lo
					}
					for j := lo; j < hi; j++ {
						if ys[j] > b {
							b = ys[j]
						}
					}
					if b >= 1 {
						b = 0.999999
					}
					total += 1 / (1 - b)
					count++
				}
			}
		}
	}
	return total / float64(count)
}

// SaturationRate estimates the offered rate at which the model
// saturates (bisection over Predict's stability region).
func (mo Model) SaturationRate() float64 {
	lo, hi := 1e-7, 1.0
	for i := 0; i < 60; i++ {
		mid := (lo + hi) / 2
		if _, err := mo.Predict(mid); err == nil {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}

// Calibrate fits the contention gain γ so that the model reproduces a
// measured latency at one rate, returning the calibrated model. It
// fails when no γ in (0.1, 20] matches (e.g. a measurement below the
// zero-load bound).
func (mo Model) Calibrate(rate, measuredLatency float64) (Model, error) {
	lo, hi := 0.1, 20.0
	eval := func(g float64) float64 {
		m := mo
		m.ContentionGain = g
		p, err := m.Predict(rate)
		if err != nil {
			return math.Inf(1)
		}
		return p.Latency
	}
	if eval(lo) > measuredLatency {
		return mo, errors.New("analytic: measured latency below the model's zero-contention bound")
	}
	for i := 0; i < 80; i++ {
		mid := (lo + hi) / 2
		if eval(mid) < measuredLatency {
			lo = mid
		} else {
			hi = mid
		}
	}
	out := mo
	out.ContentionGain = (lo + hi) / 2
	if eval(out.ContentionGain) == math.Inf(1) {
		return mo, errors.New("analytic: calibration did not converge")
	}
	return out, nil
}
