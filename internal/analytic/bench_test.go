package analytic

import "testing"

// BenchmarkPredict is the fault-free surrogate's per-query cost: the
// price of answering one (rate → latency) question from the closed
// form instead of a simulation.
func BenchmarkPredict(b *testing.B) {
	mo := Default()
	rate := 0.5 * mo.SaturationRate()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mo.Predict(rate); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPredictFaulted prices a faulted prediction: the fixed point
// and source-wait terms run over the fortified route-load tables
// (O(pairs + channels) per query) instead of the mesh closed forms.
// The route walk itself is paid once in WithFaults, outside the loop —
// the point of the cached tables.
func BenchmarkPredictFaulted(b *testing.B) {
	mo := Default()
	fm, err := mo.WithFaults("Minimal-Adaptive", fig6Block(b, mo.Topo), 24)
	if err != nil {
		b.Fatal(err)
	}
	rate := 0.5 * fm.SaturationRate()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fm.Predict(rate); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWithFaults prices building the faulted tables themselves:
// the full fortified route walk plus per-pair bottleneck extraction.
// This is the one-time cost a hybrid sweep pays per curve.
func BenchmarkWithFaults(b *testing.B) {
	mo := Default()
	f := fig6Block(b, mo.Topo)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mo.WithFaults("Minimal-Adaptive", f, 24); err != nil {
			b.Fatal(err)
		}
	}
}
