package analytic

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"wormmesh/internal/fault"
	"wormmesh/internal/sim"
	"wormmesh/internal/topology"
)

// fig6Block reproduces the experiments package's Figure 6 fault
// pattern on a 10×10 mesh: a 2×3 block plus two unit regions with
// overlapping f-rings.
func fig6Block(t testing.TB, m topology.Topology) *fault.Model {
	t.Helper()
	var ids []topology.NodeID
	for y := 3; y <= 5; y++ {
		for x := 2; x <= 3; x++ {
			ids = append(ids, m.ID(topology.Coord{X: x, Y: y}))
		}
	}
	ids = append(ids, m.ID(topology.Coord{X: 5, Y: 4}), m.ID(topology.Coord{X: 7, Y: 4}))
	f, err := fault.New(m, ids)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestWithFaultsGating(t *testing.T) {
	mo := Default()
	f := fig6Block(t, mo.Topo)

	if _, err := mo.WithFaults("Boura-FT", f, 24); !errors.Is(err, ErrUnsupported) {
		t.Errorf("Boura-FT: err = %v, want ErrUnsupported", err)
	}

	tor, err := topology.Make("torus", 10, 10)
	if err != nil {
		t.Fatal(err)
	}
	tm := mo
	tm.Topo = tor
	if _, err := tm.WithFaults("PHop", fault.None(tor), 24); !errors.Is(err, ErrUnsupported) {
		t.Errorf("torus: err = %v, want ErrUnsupported", err)
	}
	if _, err := tm.Predict(0.001); !errors.Is(err, ErrUnsupported) {
		t.Errorf("torus Predict: err = %v, want ErrUnsupported", err)
	}

	// Fault-free: the cut path is exact, so the model is unchanged.
	ff, err := mo.WithFaults("Minimal-Adaptive", fault.None(mo.Topo), 24)
	if err != nil {
		t.Fatal(err)
	}
	if ff.Faulted() {
		t.Error("fault-free WithFaults produced a faulted model")
	}

	fm, err := mo.WithFaults("Minimal-Adaptive", f, 24)
	if err != nil {
		t.Fatal(err)
	}
	if !fm.Faulted() {
		t.Error("faulted WithFaults not marked faulted")
	}
}

// Faults must hurt: at the same rate the faulted model predicts higher
// latency than the fault-free one, and it saturates earlier.
func TestFaultedPredictShape(t *testing.T) {
	mo := Default()
	f := fig6Block(t, mo.Topo)
	fm, err := mo.WithFaults("Minimal-Adaptive", f, 24)
	if err != nil {
		t.Fatal(err)
	}
	rate := 0.001
	pf, err := fm.Predict(rate)
	if err != nil {
		t.Fatal(err)
	}
	p0, err := mo.Predict(rate)
	if err != nil {
		t.Fatal(err)
	}
	if pf.Latency <= p0.Latency {
		t.Errorf("faulted latency %.1f not above fault-free %.1f", pf.Latency, p0.Latency)
	}
	if pf.MeanDistance <= p0.MeanDistance-1 {
		t.Errorf("faulted mean path %.2f collapsed below fault-free %.2f", pf.MeanDistance, p0.MeanDistance)
	}
	if sf, s0 := fm.SaturationRate(), mo.SaturationRate(); sf >= s0 {
		t.Errorf("faulted saturation %.5f not below fault-free %.5f", sf, s0)
	}
	// Monotone in load across the stable region.
	sat := fm.SaturationRate()
	prev := 0.0
	for _, frac := range []float64{0.1, 0.3, 0.5, 0.7, 0.9} {
		r := sat * frac
		p, err := fm.Predict(r)
		if err != nil {
			t.Fatalf("rate %v (%.0f%% of saturation): %v", r, 100*frac, err)
		}
		if p.Latency <= prev {
			t.Errorf("faulted latency not increasing at %v", r)
		}
		prev = p.Latency
	}
}

// Calibration must keep its contract on the faulted path: γ fitted at
// one rate reproduces the measurement there.
func TestFaultedCalibrate(t *testing.T) {
	mo := Default()
	fm, err := mo.WithFaults("Nbc", fig6Block(t, mo.Topo), 24)
	if err != nil {
		t.Fatal(err)
	}
	rate := 0.001
	base, err := fm.Predict(rate)
	if err != nil {
		t.Fatal(err)
	}
	target := base.Latency * 1.4
	cal, err := fm.Calibrate(rate, target)
	if err != nil {
		t.Fatal(err)
	}
	got, err := cal.Predict(rate)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got.Latency-target) > 1 {
		t.Errorf("calibrated latency %.2f, want %.2f", got.Latency, target)
	}
	if !cal.Faulted() {
		t.Error("calibration dropped the faulted tables")
	}
}

// TestFaultedModelAgainstSimulator is the tentpole's validation: for
// the fig6 block pattern and 2/5/10 random-fault scenarios, calibrate
// γ at one stable rate and require the faulted model to track the
// simulator within 15% at the other stable rates.
func TestFaultedModelAgainstSimulator(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-backed validation")
	}
	mo := Default()
	m := mo.Topo

	scenarios := []struct {
		name   string
		faults *fault.Model
	}{
		{"fig6-block", fig6Block(t, m)},
		{"2-random", genFaults(t, m, 2, 11)},
		{"5-random", genFaults(t, m, 5, 12)},
		{"10-random", genFaults(t, m, 10, 13)},
	}
	for _, sc := range scenarios {
		fm, err := mo.WithFaults("Minimal-Adaptive", sc.faults, 24)
		if err != nil {
			t.Fatalf("%s: %v", sc.name, err)
		}
		// Stable-region rates relative to each scenario's own knee,
		// with γ calibrated at the middle one. Measurements average two
		// seeds over a paper-scale window: single short runs near the
		// knee carry enough transient noise to swamp a 15% band.
		sat := fm.SaturationRate()
		rates := []float64{0.35 * sat, 0.55 * sat, 0.75 * sat}
		anchor := rates[1]
		measure := func(rate float64) float64 {
			total := 0.0
			for seed := int64(1); seed <= 2; seed++ {
				p := sim.DefaultParams()
				p.Algorithm = "Minimal-Adaptive"
				p.Rate = rate
				p.WarmupCycles = 5000
				p.MeasureCycles = 20000
				p.Seed = seed
				p.FaultNodes = faultIDs(sc.faults)
				res, err := sim.Run(p)
				if err != nil {
					t.Fatal(err)
				}
				total += res.Stats.AvgLatency()
			}
			return total / 2
		}
		cal, err := fm.Calibrate(anchor, measure(anchor))
		if err != nil {
			t.Fatalf("%s: calibrate: %v", sc.name, err)
		}
		for _, rate := range rates {
			if rate == anchor {
				continue
			}
			pred, err := cal.Predict(rate)
			if err != nil {
				t.Fatalf("%s rate %v: %v", sc.name, rate, err)
			}
			measured := measure(rate)
			if rel := math.Abs(pred.Latency-measured) / measured; rel > 0.15 {
				t.Errorf("%s rate %v: model %.0f vs simulator %.0f (%.0f%% off, γ %.2f)",
					sc.name, rate, pred.Latency, measured, 100*rel, cal.ContentionGain)
			}
		}
	}
}

func genFaults(t *testing.T, m topology.Topology, n int, seed int64) *fault.Model {
	t.Helper()
	f, err := fault.Generate(m, n, rand.New(rand.NewSource(seed)), fault.Options{ForbidBoundary: true})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func faultIDs(f *fault.Model) []topology.NodeID {
	var ids []topology.NodeID
	for id := topology.NodeID(0); int(id) < f.Topo.NodeCount(); id++ {
		if f.IsFaulty(id) {
			ids = append(ids, id)
		}
	}
	return ids
}
