package analytic

// This file is the faulted-mesh extension: WithFaults swaps the
// model's load anatomy from the routing-independent bisection cuts
// onto exact per-channel loads over the fortified route set
// (routing.RouteLoads), so f-ring detour channels pick up the
// displaced load and the contention terms see the true bottlenecks.
// The M/G/1 superstructure — VC-occupancy fixed point, ejection and
// source queues, single-γ calibration — is shared with the fault-free
// path, so Calibrate keeps its contract.

import (
	"fmt"
	"math"

	"wormmesh/internal/fault"
	"wormmesh/internal/routing"
)

// faultedTables caches everything a faulted Predict needs so that a
// single prediction costs O(pairs + channels) — microseconds, not a
// route walk.
type faultedTables struct {
	lm   *routing.LoadMap
	peak float64 // largest per-message channel load

	// chanLoads compacts the non-zero per-message channel loads; its
	// sum is MeanHops, making it the traversal-weight distribution a
	// random hop samples channels by.
	chanLoads []float64
}

// occupancy evaluates the VC-occupancy fixed-point step over the
// actual channel-load distribution: each channel's occupancy is its
// own message rate times the holding time, and the per-hop blocking
// probability is the traversal-weighted mean of occ^(V·a). With
// faults the loads are strongly non-uniform, so this is materially
// more convex in load than blocking at the mean occupancy.
func (ft *faultedTables) occupancy(rate, hold, v, adaptivity float64) (occ, pBlock float64) {
	healthy := float64(ft.lm.Healthy)
	wSum := ft.lm.MeanHops
	exp := v * adaptivity
	for _, u := range ft.chanLoads {
		o := rate * healthy * u * hold / v
		if o > 0.99 {
			o = 0.99
		}
		occ += u * o
		pBlock += u * math.Pow(o, exp)
	}
	occ /= wSum
	pBlock /= wSum
	return occ, pBlock
}

// meanStretch averages the serialization stretch 1/(1-ρ_bottleneck)
// over healthy pairs, where each pair's bottleneck utilization is its
// per-unit expected bottleneck scaled by the network flit rate.
func (ft *faultedTables) meanStretch(scale float64) float64 {
	total := 0.0
	for _, b := range ft.lm.PairBottlenecks {
		rho := b * scale
		if rho >= 1 {
			rho = 0.999999
		}
		total += 1 / (1 - rho)
	}
	return total / float64(len(ft.lm.PairBottlenecks))
}

// meanSourceWait averages the M/G/1 injection-port wait over source
// nodes, each with its own serialization stretch from its own pairs'
// bottlenecks (PairBottlenecks is src-major, healthy-1 entries per
// source). Per-source utilizations are clamped just below 1 — the
// global saturation checks stay with the mean-based terms — so the
// hottest sources contribute large finite waits instead of poles.
func (ft *faultedTables) meanSourceWait(rate, scale, l, netLatency, cv2 float64) float64 {
	perSrc := ft.lm.Healthy - 1
	total := 0.0
	nSrc := 0
	for start := 0; start+perSrc <= len(ft.lm.PairBottlenecks); start += perSrc {
		stretch := 0.0
		for _, b := range ft.lm.PairBottlenecks[start : start+perSrc] {
			rho := b * scale
			if rho >= 1 {
				rho = 0.999999
			}
			stretch += 1 / (1 - rho)
		}
		stretch /= float64(perSrc)
		service := math.Max(l*stretch, netLatency-l)
		rho := rate * service
		if rho > 0.98 {
			rho = 0.98
		}
		total += rate * service * service * (1 + cv2) / (2 * (1 - rho))
		nSrc++
	}
	if nSrc == 0 {
		return 0
	}
	return total / float64(nSrc)
}

// WithFaults returns a copy of the model bound to one (algorithm,
// fault pattern, VC count) cell: predictions evaluate the fortified
// route set's exact channel loads instead of the fault-free cuts. The
// fault model must be built over the same topology the model carries.
//
// A fault-free model is returned unchanged (the cut loads are exact
// and routing-independent there). Unsupported combinations — non-mesh
// topologies, algorithms outside the BC fortification (Boura-FT) —
// return an error satisfying errors.Is(err, ErrUnsupported).
func (mo Model) WithFaults(algorithm string, f *fault.Model, numVCs int) (Model, error) {
	if f == nil {
		return mo, fmt.Errorf("analytic: nil fault model")
	}
	if mo.Topo == nil || f.Topo != mo.Topo {
		return mo, fmt.Errorf("analytic: fault model topology %v does not match the model's %v", f.Topo, mo.Topo)
	}
	if mo.Topo.Kind() != "mesh" {
		return mo, fmt.Errorf("%w: topology %s", ErrUnsupported, mo.Topo.Kind())
	}
	if f.FaultCount() == 0 {
		return mo, nil
	}
	if !routing.LoadsSupported(algorithm) {
		return mo, fmt.Errorf("%w: algorithm %s routes around faults outside the BC fortification", ErrUnsupported, algorithm)
	}
	lm, err := routing.RouteLoads(algorithm, f, numVCs)
	if err != nil {
		return mo, err
	}
	ft := &faultedTables{lm: lm, peak: lm.PeakLoad()}
	for _, u := range lm.Loads {
		if u > 0 {
			ft.chanLoads = append(ft.chanLoads, u)
		}
	}
	out := mo
	out.faulted = ft
	return out, nil
}

// Faulted reports whether the model predicts over faulted route loads.
func (mo Model) Faulted() bool { return mo.faulted != nil }
