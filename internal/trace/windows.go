package trace

// WindowPoint is one window of a run's time-resolved telemetry series,
// the dependency-free mirror of core.WindowSnapshot (minus the bulky
// per-link rows) — the same role EngineEvent plays for core.TraceEvent.
// The sim layers convert at the bridge so this package stays free of
// engine imports.
type WindowPoint struct {
	Seq   int64 `json:"seq"`
	Start int64 `json:"start"`
	End   int64 `json:"end"`

	Generated      int64 `json:"generated"`
	Delivered      int64 `json:"delivered"`
	DeliveredFlits int64 `json:"delivered_flits"`
	Killed         int64 `json:"killed,omitempty"`

	InFlight     int `json:"in_flight"`
	BlockedLinks int `json:"blocked_links,omitempty"`

	// AvgLatency is the window-mean message latency in cycles;
	// Throughput is accepted traffic in flits per node per cycle.
	AvgLatency float64 `json:"avg_latency"`
	Throughput float64 `json:"throughput"`
}
