package trace

import (
	"sync"
	"testing"
	"time"
)

func TestIDs(t *testing.T) {
	tr := New(16)
	s1 := tr.Start("a", Context{})
	s2 := tr.Start("b", Context{})
	if s1.TraceID().IsZero() || s2.TraceID().IsZero() {
		t.Fatal("zero trace IDs drawn")
	}
	if s1.TraceID() == s2.TraceID() {
		t.Fatal("two fresh roots share a trace ID")
	}
	if s1.Context().Span == s2.Context().Span {
		t.Fatal("two spans share a span ID")
	}
	id := s1.TraceID()
	parsed, ok := ParseTraceID(id.String())
	if !ok || parsed != id {
		t.Fatalf("ParseTraceID(%q) = %v, %v", id.String(), parsed, ok)
	}
	if _, ok := ParseTraceID("xyz"); ok {
		t.Fatal("garbage trace ID parsed")
	}
}

func TestTraceparentRoundTrip(t *testing.T) {
	tr := New(16)
	s := tr.Start("root", Context{})
	h := s.Context().Traceparent()
	c, ok := ParseTraceparent(h)
	if !ok {
		t.Fatalf("own traceparent %q did not parse", h)
	}
	if c != s.Context() {
		t.Fatalf("round trip lost identity: %v != %v", c, s.Context())
	}
	for _, bad := range []string{
		"", "00", "01-" + s.TraceID().String() + "-0123456789abcdef-01",
		"00-00000000000000000000000000000000-0123456789abcdef-01",
		"00-zz345678901234567890123456789012-0123456789abcdef-01",
	} {
		if _, ok := ParseTraceparent(bad); ok {
			t.Errorf("malformed traceparent %q accepted", bad)
		}
	}
}

func TestParentChildAndCollect(t *testing.T) {
	tr := New(64)
	root := tr.Start("root", Context{})
	child := root.Child("child")
	child.Set("k", "v")
	grand := child.Child("grand")
	grand.End()
	child.End()
	root.Instant("mark")
	root.End()

	spans := tr.Collect(root.TraceID())
	if len(spans) != 4 {
		t.Fatalf("collected %d spans, want 4", len(spans))
	}
	roots, orphans := BuildTree(spans)
	if orphans != 0 {
		t.Fatalf("%d orphans in a complete tree", orphans)
	}
	if len(roots) != 1 || roots[0].Name != "root" {
		t.Fatalf("roots = %+v", roots)
	}
	var names []string
	for _, c := range roots[0].Children {
		names = append(names, c.Name)
	}
	if len(names) != 2 {
		t.Fatalf("root children = %v, want child+mark", names)
	}
	var childNode *Node
	for _, c := range roots[0].Children {
		if c.Name == "child" {
			childNode = c
		}
	}
	if childNode == nil || len(childNode.Children) != 1 || childNode.Children[0].Name != "grand" {
		t.Fatalf("child subtree wrong: %+v", childNode)
	}
	if childNode.Attr("k") != "v" {
		t.Fatalf("attr lost: %v", childNode.Attrs)
	}
}

func TestOrphanDetection(t *testing.T) {
	tr := New(64)
	root := tr.Start("root", Context{})
	// A child whose parent context is fabricated (parent never commits).
	fake := Context{Trace: root.TraceID(), Span: SpanID{9, 9, 9, 9, 9, 9, 9, 9}}
	orphan := tr.Start("lost", fake)
	orphan.End()
	root.End()
	_, orphans := BuildTree(tr.Collect(root.TraceID()))
	if orphans != 1 {
		t.Fatalf("orphans = %d, want 1", orphans)
	}
}

func TestRingEviction(t *testing.T) {
	tr := New(4)
	first := tr.Start("first", Context{})
	first.End()
	for i := 0; i < 8; i++ {
		s := tr.Start("filler", Context{})
		s.End()
	}
	if tr.Len() != 4 {
		t.Fatalf("ring holds %d, want 4", tr.Len())
	}
	if got := tr.Collect(first.TraceID()); len(got) != 0 {
		t.Fatalf("evicted span still collectable: %+v", got)
	}
	started, ended := tr.Counts()
	if started != 9 || ended != 9 {
		t.Fatalf("counts = %d/%d, want 9/9", started, ended)
	}
}

// TestEngineBudget: the ring bounds the TOTAL engine events it retains;
// once over DefaultEngineBudget the oldest spans shed their payload
// (span survives, detail goes), newest-first retention wins.
func TestEngineBudget(t *testing.T) {
	tr := New(64)
	const perSpan = DefaultEngineBudget / 4 // 5 spans = 1.25× the budget
	events := make([]EngineEvent, perSpan)
	var ids []TraceID
	for i := 0; i < 5; i++ {
		s := tr.Start("run", Context{})
		s.AttachEngine(events)
		s.End()
		ids = append(ids, s.TraceID())
	}
	held := 0
	withEngine := make(map[int]bool)
	for i, id := range ids {
		spans := tr.Collect(id)
		if len(spans) != 1 {
			t.Fatalf("trace %d: %d spans, want 1 (span itself must survive shedding)", i, len(spans))
		}
		held += len(spans[0].Engine)
		withEngine[i] = len(spans[0].Engine) > 0
	}
	if held > DefaultEngineBudget {
		t.Fatalf("ring retains %d engine events, budget %d", held, DefaultEngineBudget)
	}
	if withEngine[0] {
		t.Fatal("oldest span kept its engine payload; should shed oldest-first")
	}
	if !withEngine[4] {
		t.Fatal("newest span lost its engine payload; newest must be kept")
	}
}

// TestNilSafety: every Span and Tracer method must be a no-op on nil,
// so call sites behind disabled tracing carry no conditionals.
func TestNilSafety(t *testing.T) {
	var tr *Tracer
	s := tr.Start("x", Context{})
	if s != nil {
		t.Fatal("nil tracer returned a span")
	}
	s.Set("k", 1)
	s.AttachEngine(nil)
	s.Instant("i")
	c := s.Child("c")
	c.ChildAt("d", time.Now()).End()
	s.End()
	if s.Context().Valid() {
		t.Fatal("nil span has a valid context")
	}
}

// TestConcurrentEmission hammers one tracer from many goroutines — the
// scheduler-worker pattern — and is meaningful under -race.
func TestConcurrentEmission(t *testing.T) {
	tr := New(256)
	root := tr.Start("root", Context{})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				s := tr.StartAt("work", root.Context(), time.Now())
				s.Set("worker", g)
				s.Instant("tick")
				s.End()
			}
		}(g)
	}
	wg.Wait()
	root.End()
	if tr.Len() != 256 {
		t.Fatalf("ring holds %d, want full 256", tr.Len())
	}
	started, ended := tr.Counts()
	if started != 1+8*200 || ended != 1+8*200*2 {
		t.Fatalf("counts %d/%d", started, ended)
	}
}

func TestExplicitTimes(t *testing.T) {
	tr := New(16)
	t0 := time.Date(2026, 8, 7, 12, 0, 0, 0, time.UTC)
	s := tr.StartAt("s", Context{}, t0)
	s.EndAt(t0.Add(250 * time.Millisecond))
	spans := tr.Collect(s.TraceID())
	if len(spans) != 1 {
		t.Fatal("span not committed")
	}
	if d := spans[0].Duration(); d != 250*time.Millisecond {
		t.Fatalf("duration %v", d)
	}
	qw := tr.StartAt("queue.wait", Context{Trace: spans[0].Trace, Span: spans[0].ID}, t0)
	qw.EndAt(t0.Add(time.Second))
	if got := tr.Collect(s.TraceID()); len(got) != 2 {
		t.Fatalf("backfilled span lost: %d", len(got))
	}
}
