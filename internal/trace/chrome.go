package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// Chrome trace-event exporter. The Chrome trace-event JSON format —
// https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU
// — is what chrome://tracing and Perfetto (ui.perfetto.dev) load, which
// makes it the cheapest possible interactive timeline viewer: no
// rendering code in this repo at all.
//
// Two time bases coexist in one file:
//
//   - Service spans are wall-clock. They land in process 1 ("meshserve")
//     with ts/dur in real microseconds, each trace's spans on a track
//     (tid) of their own so concurrent requests don't interleave into
//     false nesting.
//   - Engine events are cycle-clock. A wormhole simulation has no
//     meaningful wall time per event (the flight recorder stamps
//     cycles), so they land in process 2 ("engine") with ONE CYCLE
//     RENDERED AS ONE MICROSECOND, one track per message: the message's
//     lifetime (inject -> deliver/kill) as a complete slice, with route,
//     flit and watchdog history as instants on it. Scrolling process 2
//     therefore scrubs through simulated time, not wall time.
//
// Everything is streamed — the exporter never materializes the event
// list — so dumping a six-figure-event flight ring costs one pass.

// chromeEvent is one trace-event object; fields follow the format's
// phase-dependent schema.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"` // microseconds
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int64          `json:"tid"`
	S    string         `json:"s,omitempty"` // instant scope
	Args map[string]any `json:"args,omitempty"`
}

const (
	chromePidService = 1
	chromePidEngine  = 2
)

// WriteChrome renders one trace's spans (plus any engine events
// attached to them) as Chrome trace-event JSON:
// {"traceEvents":[...],"displayTimeUnit":"ms"}. Wall-clock timestamps
// are rebased so the earliest span starts at ts=0 — Perfetto handles
// absolute epochs poorly and nothing in a single trace needs them.
func WriteChrome(w io.Writer, spans []SpanData) error {
	bw := bufio.NewWriter(w)
	enc := &chromeEncoder{w: bw}
	enc.open()

	var epoch time.Time
	for i := range spans {
		if epoch.IsZero() || spans[i].Start.Before(epoch) {
			epoch = spans[i].Start
		}
	}

	// Name the processes and the per-trace service tracks.
	enc.meta("process_name", chromePidService, 0, map[string]any{"name": "meshserve"})
	enc.meta("process_name", chromePidEngine, 0, map[string]any{"name": "engine (1 cycle = 1us)"})

	tids := map[TraceID]int64{}
	for i := range spans {
		s := &spans[i]
		tid, ok := tids[s.Trace]
		if !ok {
			tid = int64(len(tids) + 1)
			tids[s.Trace] = tid
			enc.meta("thread_name", chromePidService, tid,
				map[string]any{"name": "trace " + s.Trace.String()[:8]})
		}
		args := map[string]any{"trace_id": s.Trace.String(), "span_id": s.ID.String()}
		for _, a := range s.Attrs {
			args[a.Key] = a.Value
		}
		enc.event(chromeEvent{
			Name: s.Name, Ph: "X",
			Ts:  float64(s.Start.Sub(epoch)) / float64(time.Microsecond),
			Dur: float64(s.Duration()) / float64(time.Microsecond),
			Pid: chromePidService, Tid: tid, Args: args,
		})
		writeEngineEvents(enc, s.Engine)
		writeWindowSeries(enc, s.Windows)
	}
	enc.close()
	if enc.err != nil {
		return enc.err
	}
	return bw.Flush()
}

// writeEngineEvents renders one span's attached engine history into the
// engine process: per-message lifetime slices plus event instants, all
// on the cycle timeline (one message per track).
func writeEngineEvents(enc *chromeEncoder, events []EngineEvent) {
	if len(events) == 0 {
		return
	}
	// First pass: message lifetimes. A message's slice opens at the
	// first event that mentions it (the ring may have evicted its
	// inject) and closes at deliver/kill, or at the last cycle seen,
	// tagged unfinished.
	type life struct {
		first, last int64
		src, dst    int32
		closedBy    string
	}
	lives := map[int64]*life{}
	order := make([]int64, 0, 64) // deterministic slice emission order
	for i := range events {
		e := &events[i]
		if e.Kind == "watchdog" && e.Msg == 0 {
			continue // victimless watchdog: no message to track
		}
		l := lives[e.Msg]
		if l == nil {
			l = &life{first: e.Cycle, src: e.Src, dst: e.Dst}
			lives[e.Msg] = l
			order = append(order, e.Msg)
		}
		l.last = e.Cycle
		if e.Kind == "deliver" || e.Kind == "kill" {
			l.closedBy = e.Kind
		}
	}
	for _, msg := range order {
		l := lives[msg]
		args := map[string]any{"src": l.src, "dst": l.dst}
		if l.closedBy == "" {
			args["unfinished"] = true
		} else {
			args["end"] = l.closedBy
		}
		enc.event(chromeEvent{
			Name: fmt.Sprintf("msg %d: %d->%d", msg, l.src, l.dst), Ph: "X",
			Ts: float64(l.first), Dur: float64(l.last - l.first),
			Pid: chromePidEngine, Tid: msg, Args: args,
		})
	}
	// Second pass: every event as a thread-scoped instant on its
	// message's track, so zooming a message shows its route/flit/kill
	// history cycle by cycle.
	for i := range events {
		e := &events[i]
		args := map[string]any{"cycle": e.Cycle}
		if e.Kind == "route" || e.Kind == "flit" {
			args["node"] = e.Node
			args["dir"] = e.Dir
			args["vc"] = e.VC
		}
		if e.Kind == "kill" {
			args["cause"] = e.Cause
		}
		name := e.Kind
		if e.Kind == "flit" {
			name = fmt.Sprintf("flit %d", e.Flit)
		}
		enc.event(chromeEvent{
			Name: name, Ph: "i", S: "t",
			Ts:  float64(e.Cycle),
			Pid: chromePidEngine, Tid: e.Msg, Args: args,
		})
	}
}

// writeWindowSeries renders a span's window telemetry as Perfetto
// counter tracks ("ph":"C") on the engine's cycle timeline, so the
// run's throughput/latency/backlog trajectory sits directly above the
// per-message slices writeEngineEvents emits. Each counter event is
// stamped at the cycle its window closed; Perfetto draws the series as
// a step plot per track.
func writeWindowSeries(enc *chromeEncoder, windows []WindowPoint) {
	for i := range windows {
		w := &windows[i]
		ts := float64(w.End)
		enc.event(chromeEvent{
			Name: "window throughput", Ph: "C",
			Ts: ts, Pid: chromePidEngine,
			Args: map[string]any{"flits/node/cycle": w.Throughput},
		})
		enc.event(chromeEvent{
			Name: "window latency", Ph: "C",
			Ts: ts, Pid: chromePidEngine,
			Args: map[string]any{"cycles": w.AvgLatency},
		})
		enc.event(chromeEvent{
			Name: "window backlog", Ph: "C",
			Ts: ts, Pid: chromePidEngine,
			Args: map[string]any{"in_flight": w.InFlight, "blocked_links": w.BlockedLinks},
		})
	}
}

// chromeEncoder streams the traceEvents array.
type chromeEncoder struct {
	w   io.Writer
	n   int
	err error
}

func (e *chromeEncoder) open() {
	_, err := io.WriteString(e.w, "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n")
	if e.err == nil {
		e.err = err
	}
}

func (e *chromeEncoder) event(ev chromeEvent) {
	if e.err != nil {
		return
	}
	b, err := json.Marshal(ev)
	if err != nil {
		e.err = err
		return
	}
	if e.n > 0 {
		if _, err := io.WriteString(e.w, ",\n"); err != nil {
			e.err = err
			return
		}
	}
	if _, err := e.w.Write(b); err != nil {
		e.err = err
		return
	}
	e.n++
}

func (e *chromeEncoder) meta(name string, pid int, tid int64, args map[string]any) {
	e.event(chromeEvent{Name: name, Ph: "M", Pid: pid, Tid: tid, Args: args})
}

func (e *chromeEncoder) close() {
	if e.err != nil {
		return
	}
	_, err := io.WriteString(e.w, "\n]}\n")
	e.err = err
}
