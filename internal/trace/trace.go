// Package trace is the service-side request-tracing layer: spans with
// 128-bit trace / 64-bit span identities, wall-clock start/end times
// and typed-ish attributes, collected into a fixed-capacity ring of
// completed spans. It is deliberately zero-dependency (stdlib only, no
// engine imports) so any layer — HTTP handlers, the scheduler, CLIs —
// can emit spans without coupling, and the engine's own event stream
// (the flight recorder's binary ring) bridges in as EngineEvents
// attached to a span rather than as a package dependency.
//
// The design mirrors the engine's observability contract: emitting a
// span never blocks the traced work beyond a mutex'd ring append, a nil
// *Span (tracing disabled) accepts every call as a no-op so call sites
// carry no conditionals, and completed spans are immutable once
// committed. Trace identity propagates across process hops through the
// W3C traceparent header form ("00-<trace>-<span>-01"), so a future
// sharded meshserve can stitch one request's spans across servers.
package trace

import (
	"encoding/binary"
	"encoding/hex"
	mrand "math/rand/v2"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// TraceID identifies one request end to end: 16 random bytes, rendered
// as 32 lowercase hex digits.
type TraceID [16]byte

// IsZero reports whether the ID is the invalid all-zero value.
func (t TraceID) IsZero() bool { return t == TraceID{} }

// String renders the ID as 32 hex digits.
func (t TraceID) String() string { return hex.EncodeToString(t[:]) }

// ParseTraceID parses a 32-hex-digit trace ID.
func ParseTraceID(s string) (TraceID, bool) {
	var t TraceID
	if len(s) != 32 {
		return t, false
	}
	if _, err := hex.Decode(t[:], []byte(s)); err != nil {
		return TraceID{}, false
	}
	return t, !t.IsZero()
}

// SpanID identifies one span within a trace: 8 random bytes, 16 hex
// digits.
type SpanID [8]byte

// IsZero reports whether the ID is the invalid all-zero value.
func (s SpanID) IsZero() bool { return s == SpanID{} }

// String renders the ID as 16 hex digits.
func (s SpanID) String() string { return hex.EncodeToString(s[:]) }

// Context is the propagation half of a span: enough identity to parent
// a child span in another goroutine, request or process.
type Context struct {
	Trace TraceID
	Span  SpanID
}

// Valid reports whether the context carries a usable trace identity.
func (c Context) Valid() bool { return !c.Trace.IsZero() }

// Traceparent renders the context in the W3C traceparent form:
// version 00, trace ID, parent span ID, flags 01 (sampled).
func (c Context) Traceparent() string {
	return "00-" + c.Trace.String() + "-" + c.Span.String() + "-01"
}

// ParseTraceparent parses a traceparent header. Only the version-00
// layout is accepted; anything malformed returns ok=false and the
// caller starts a fresh trace.
func ParseTraceparent(h string) (Context, bool) {
	// 00-<32 hex>-<16 hex>-<2 hex>
	if len(h) != 55 || h[0] != '0' || h[1] != '0' || h[2] != '-' || h[35] != '-' || h[52] != '-' {
		return Context{}, false
	}
	var c Context
	if _, err := hex.Decode(c.Trace[:], []byte(h[3:35])); err != nil {
		return Context{}, false
	}
	if _, err := hex.Decode(c.Span[:], []byte(h[36:52])); err != nil {
		return Context{}, false
	}
	if c.Trace.IsZero() || c.Span.IsZero() {
		return Context{}, false
	}
	return c, true
}

// Attr is one span attribute. Values should be strings, integers,
// floats or bools — things that render losslessly into JSON.
type Attr struct {
	Key   string
	Value any
}

// EngineEvent is one decoded engine flight-recorder event attached to a
// span: the bridge between the service's wall-clock timeline and the
// engine's cycle timeline. The field set mirrors the engine's
// TraceEvent shape one to one (kept as a separate struct so this
// package stays free of engine imports); cycles are the time base, not
// wall time.
type EngineEvent struct {
	Cycle int64  `json:"cycle"`
	Kind  string `json:"kind"` // inject | route | flit | deliver | kill | watchdog
	Msg   int64  `json:"msg"`
	Src   int32  `json:"src"`
	Dst   int32  `json:"dst"`
	Node  int32  `json:"node,omitempty"`
	Dir   string `json:"dir,omitempty"`
	VC    uint8  `json:"vc,omitempty"`
	Flit  int32  `json:"flit,omitempty"`
	Cause string `json:"cause,omitempty"`
}

// SpanData is one completed (or in-flight, inside *Span) span record.
type SpanData struct {
	Trace  TraceID
	ID     SpanID
	Parent SpanID // zero for a root span
	Name   string
	Start  time.Time
	End    time.Time
	Attrs  []Attr
	// Engine holds decoded engine events bridged onto this span (the
	// span-scoped flight recorder's dump); nil for pure service spans.
	Engine []EngineEvent
	// Windows holds the run's time-resolved telemetry series (the
	// WindowSampler's snapshots, mirrored dependency-free); the Chrome
	// exporter renders them as counter tracks on the cycle timeline.
	Windows []WindowPoint
}

// Duration returns End−Start (zero for instants).
func (d *SpanData) Duration() time.Duration { return d.End.Sub(d.Start) }

// Attr returns the value of the named attribute, or nil.
func (d *SpanData) Attr(key string) any {
	for _, a := range d.Attrs {
		if a.Key == key {
			return a.Value
		}
	}
	return nil
}

// Span is an in-flight span. It is built by exactly one goroutine and
// committed to its Tracer's ring by End/EndAt; after that the Span must
// not be touched. Every method is nil-safe, so call sites behind a
// disabled tracer need no guards.
type Span struct {
	t    *Tracer
	data SpanData
}

// Context returns the span's propagation context (zero for nil spans).
func (s *Span) Context() Context {
	if s == nil {
		return Context{}
	}
	return Context{Trace: s.data.Trace, Span: s.data.ID}
}

// TraceID returns the owning trace's ID (zero for nil spans).
func (s *Span) TraceID() TraceID {
	if s == nil {
		return TraceID{}
	}
	return s.data.Trace
}

// Set records one attribute.
func (s *Span) Set(key string, value any) {
	if s == nil {
		return
	}
	s.data.Attrs = append(s.data.Attrs, Attr{Key: key, Value: value})
}

// AttachEngine hands decoded engine events to the span; they are
// carried into the ring on End and surfaced by the Chrome exporter.
func (s *Span) AttachEngine(events []EngineEvent) {
	if s == nil {
		return
	}
	s.data.Engine = events
}

// AttachWindows hands a run's window telemetry series to the span; the
// Chrome exporter renders it as counter tracks ("ph":"C") on the
// engine's cycle timeline.
func (s *Span) AttachWindows(windows []WindowPoint) {
	if s == nil {
		return
	}
	s.data.Windows = windows
}

// Child starts a child span beginning now.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	return s.t.StartAt(name, s.Context(), time.Time{})
}

// ChildAt starts a child span with an explicit start time — how the
// scheduler backfills a queue-wait span from the moment the job was
// accepted.
func (s *Span) ChildAt(name string, start time.Time) *Span {
	if s == nil {
		return nil
	}
	return s.t.StartAt(name, s.Context(), start)
}

// Instant commits a zero-duration child span at time.Now().
func (s *Span) Instant(name string, attrs ...Attr) {
	if s == nil {
		return
	}
	now := time.Now()
	s.t.commit(SpanData{
		Trace: s.data.Trace, ID: s.t.newSpanID(), Parent: s.data.ID,
		Name: name, Start: now, End: now, Attrs: attrs,
	})
}

// End commits the span as of time.Now().
func (s *Span) End() { s.EndAt(time.Now()) }

// EndAt commits the span with an explicit end time.
func (s *Span) EndAt(end time.Time) {
	if s == nil {
		return
	}
	s.data.End = end
	s.t.commit(s.data)
}

// DefaultCapacity is the completed-span ring size when the caller does
// not choose one: deep enough to hold the last few hundred requests'
// trees, small enough to forget about.
const DefaultCapacity = 8192

// DefaultEngineBudget caps how many engine events the ring retains in
// total, across all spans. A span's decoded flight-recorder dump is
// ~100× the size of the span itself (4096 events ≈ 700 KB), so without
// an aggregate cap a burst of recorded runs would pin gigabytes of
// heap into the ring and tax every subsequent GC cycle with scanning
// it. When the budget is exceeded the OLDEST spans shed their engine
// payload first — the span, its timing and its engine_events count
// attribute all survive; only the cycle-level detail ages out. 64 Ki
// events ≈ the 16 most recent fully-recorded runs ≈ 11 MB worst case.
const DefaultEngineBudget = 64 * 1024

// Tracer owns the completed-span ring. Starting and committing spans is
// safe from any number of goroutines; the ring overwrites its oldest
// spans once full, so /traces answers about recent requests and memory
// stays bounded (span count by capacity, engine-event detail by
// DefaultEngineBudget).
type Tracer struct {
	mu         sync.Mutex
	buf        []SpanData
	next       int
	engineHeld int // total len(Engine) across the ring
	started    atomic.Int64
	ended      atomic.Int64
}

// New builds a tracer retaining the last `capacity` completed spans
// (DefaultCapacity when capacity < 1).
func New(capacity int) *Tracer {
	if capacity < 1 {
		capacity = DefaultCapacity
	}
	return &Tracer{buf: make([]SpanData, 0, capacity)}
}

// newSpanID draws a random non-zero span ID.
func (t *Tracer) newSpanID() SpanID {
	var id SpanID
	for id.IsZero() {
		randRead(id[:])
	}
	return id
}

// randRead fills b from math/rand/v2's global ChaCha8 generator: it is
// seeded with system entropy at startup, goroutine-safe without a
// shared lock, and — unlike crypto/rand — costs no getrandom syscall.
// IDs need fleet-wide collision resistance, not unpredictability, and
// 128 ChaCha8 bits provide exactly that at ~5ns per word.
func randRead(b []byte) {
	for len(b) >= 8 {
		binary.BigEndian.PutUint64(b, mrand.Uint64())
		b = b[8:]
	}
	if len(b) > 0 {
		var tail [8]byte
		binary.BigEndian.PutUint64(tail[:], mrand.Uint64())
		copy(b, tail[:])
	}
}

// StartAt starts a span. A valid parent context puts the span in that
// trace; an invalid one starts a new trace with this span as root.
// A zero start time means now. The returned span is owned by the
// calling goroutine until End.
func (t *Tracer) StartAt(name string, parent Context, start time.Time) *Span {
	if t == nil {
		return nil
	}
	if start.IsZero() {
		start = time.Now()
	}
	s := &Span{t: t}
	s.data.Name = name
	s.data.Start = start
	s.data.ID = t.newSpanID()
	if parent.Valid() {
		s.data.Trace = parent.Trace
		s.data.Parent = parent.Span
	} else {
		for s.data.Trace.IsZero() {
			randRead(s.data.Trace[:])
		}
	}
	t.started.Add(1)
	return s
}

// Start starts a span beginning now (see StartAt).
func (t *Tracer) Start(name string, parent Context) *Span {
	return t.StartAt(name, parent, time.Time{})
}

// commit files a completed span into the ring and enforces the
// engine-event retention budget.
func (t *Tracer) commit(d SpanData) {
	t.ended.Add(1)
	t.mu.Lock()
	if len(t.buf) < cap(t.buf) {
		t.buf = append(t.buf, d)
	} else {
		t.engineHeld -= len(t.buf[t.next].Engine)
		t.buf[t.next] = d
		t.next++
		if t.next == len(t.buf) {
			t.next = 0
		}
	}
	if t.engineHeld += len(d.Engine); t.engineHeld > DefaultEngineBudget {
		t.shedEngine()
	}
	t.mu.Unlock()
}

// shedEngine walks the ring oldest-first, dropping engine payloads
// until the retained total fits the budget again. The newest span's
// payload is always kept, even if it alone exceeds the budget — the
// request being debugged right now beats history. Caller holds t.mu.
func (t *Tracer) shedEngine() {
	n := len(t.buf)
	for off := 0; off < n-1 && t.engineHeld > DefaultEngineBudget; off++ {
		i := (t.next + off) % n // t.next is the oldest slot once the ring wraps
		if len(t.buf[i].Engine) > 0 {
			t.engineHeld -= len(t.buf[i].Engine)
			t.buf[i].Engine = nil
		}
	}
}

// Len returns how many completed spans the ring currently holds.
func (t *Tracer) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.buf)
}

// Counts returns how many spans were ever started and ended.
func (t *Tracer) Counts() (started, ended int64) {
	return t.started.Load(), t.ended.Load()
}

// Collect returns every completed span of the given trace still in the
// ring, sorted by start time (stable, so equal-start parent/child pairs
// keep commit order). The returned slices are copies; mutating them
// cannot corrupt the ring.
func (t *Tracer) Collect(id TraceID) []SpanData {
	t.mu.Lock()
	var out []SpanData
	for i := range t.buf {
		if t.buf[i].Trace == id {
			out = append(out, t.buf[i])
		}
	}
	t.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool { return out[i].Start.Before(out[j].Start) })
	return out
}

// Node is one span with its resolved children — the tree form /traces
// renders.
type Node struct {
	SpanData
	Children []*Node
}

// BuildTree resolves parent links over one trace's spans. Roots are
// spans whose parent is zero or absent from the set *and* that are not
// descendants of any present span; orphans counts the spans whose
// declared parent is missing (a broken tree — the e2e tests assert
// zero). Children are ordered by start time.
func BuildTree(spans []SpanData) (roots []*Node, orphans int) {
	nodes := make(map[SpanID]*Node, len(spans))
	for i := range spans {
		nodes[spans[i].ID] = &Node{SpanData: spans[i]}
	}
	orphaned := make(map[SpanID]bool)
	for _, n := range nodes {
		if n.Parent.IsZero() {
			continue
		}
		if p, ok := nodes[n.Parent]; ok && p != n {
			p.Children = append(p.Children, n)
		} else {
			// The declared parent is not in the set: a remotely-parented
			// root (Traceparent propagation) or a broken tree. Either
			// way it still renders, as a root.
			orphans++
			orphaned[n.ID] = true
		}
	}
	// Deterministic order: roots and children sorted by start time.
	for i := range spans {
		n := nodes[spans[i].ID]
		if n.Parent.IsZero() || orphaned[n.ID] {
			roots = append(roots, n)
		}
	}
	var sortChildren func(n *Node)
	sortChildren = func(n *Node) {
		sort.SliceStable(n.Children, func(i, j int) bool {
			return n.Children[i].Start.Before(n.Children[j].Start)
		})
		for _, c := range n.Children {
			sortChildren(c)
		}
	}
	sort.SliceStable(roots, func(i, j int) bool { return roots[i].Start.Before(roots[j].Start) })
	for _, r := range roots {
		sortChildren(r)
	}
	return roots, orphans
}
