package trace

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"
)

// chromeDoc mirrors the exported document shape for verification.
type chromeDoc struct {
	DisplayTimeUnit string `json:"displayTimeUnit"`
	TraceEvents     []struct {
		Name string         `json:"name"`
		Ph   string         `json:"ph"`
		Ts   float64        `json:"ts"`
		Dur  float64        `json:"dur"`
		Pid  int            `json:"pid"`
		Tid  int64          `json:"tid"`
		Args map[string]any `json:"args"`
	} `json:"traceEvents"`
}

func TestWriteChromeValidJSON(t *testing.T) {
	tr := New(64)
	t0 := time.Date(2026, 8, 7, 12, 0, 0, 0, time.UTC)
	root := tr.StartAt("HTTP POST /run", Context{}, t0)
	run := tr.StartAt("run", root.Context(), t0.Add(time.Millisecond))
	run.Set("algorithm", "Duato")
	run.AttachEngine([]EngineEvent{
		{Cycle: 0, Kind: "inject", Msg: 1, Src: 0, Dst: 5},
		{Cycle: 2, Kind: "route", Msg: 1, Src: 0, Dst: 5, Node: 1, Dir: "E", VC: 3},
		{Cycle: 3, Kind: "flit", Msg: 1, Src: 0, Dst: 5, Node: 1, Dir: "E", Flit: 1},
		{Cycle: 9, Kind: "deliver", Msg: 1, Src: 0, Dst: 5},
		{Cycle: 4, Kind: "inject", Msg: 2, Src: 3, Dst: 7},
		{Cycle: 11, Kind: "kill", Msg: 2, Src: 3, Dst: 7, Cause: "stall"},
		{Cycle: 11, Kind: "watchdog"},
	})
	run.EndAt(t0.Add(40 * time.Millisecond))
	root.EndAt(t0.Add(41 * time.Millisecond))

	var buf bytes.Buffer
	if err := WriteChrome(&buf, tr.Collect(root.TraceID())); err != nil {
		t.Fatal(err)
	}
	var doc chromeDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v\n%s", err, buf.String())
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}

	var serviceSlices, engineSlices, instants, metas int
	var rootTs, rootDur float64
	lifetimes := map[string]bool{}
	for _, e := range doc.TraceEvents {
		switch {
		case e.Ph == "M":
			metas++
		case e.Ph == "X" && e.Pid == chromePidService:
			serviceSlices++
			if e.Name == "HTTP POST /run" {
				rootTs, rootDur = e.Ts, e.Dur
			}
		case e.Ph == "X" && e.Pid == chromePidEngine:
			engineSlices++
			lifetimes[e.Name] = true
		case e.Ph == "i":
			instants++
		default:
			t.Errorf("unexpected event %+v", e)
		}
	}
	if serviceSlices != 2 {
		t.Errorf("service slices = %d, want 2", serviceSlices)
	}
	// Two messages, one lifetime slice each; the victimless watchdog
	// must not fabricate a message track.
	if engineSlices != 2 || !lifetimes["msg 1: 0->5"] || !lifetimes["msg 2: 3->7"] {
		t.Errorf("engine lifetimes = %v", lifetimes)
	}
	if instants != 7 {
		t.Errorf("instants = %d, want 7 (every engine event)", instants)
	}
	// Wall clock is rebased: the earliest span starts at ts 0.
	if rootTs != 0 {
		t.Errorf("root ts = %g, want 0 after rebase", rootTs)
	}
	if rootDur != 41000 {
		t.Errorf("root dur = %g us, want 41000", rootDur)
	}
}

func TestWriteChromeEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChrome(&buf, nil); err != nil {
		t.Fatal(err)
	}
	var doc chromeDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("empty export invalid: %v", err)
	}
	// Process metadata is always present; no span events.
	for _, e := range doc.TraceEvents {
		if e.Ph != "M" {
			t.Fatalf("unexpected event in empty trace: %+v", e)
		}
	}
}

// TestWriteChromeWindowCounters round-trips an attached window series
// through the exporter: every window must come back as one counter
// event ("ph":"C") per track on the engine timeline, stamped at the
// cycle the window closed, with the values intact.
func TestWriteChromeWindowCounters(t *testing.T) {
	tr := New(16)
	t0 := time.Date(2026, 8, 7, 12, 0, 0, 0, time.UTC)
	root := tr.StartAt("run", Context{}, t0)
	windows := []WindowPoint{
		{Seq: 0, Start: 0, End: 512, Delivered: 40, DeliveredFlits: 1280,
			InFlight: 9, BlockedLinks: 3, AvgLatency: 74.5, Throughput: 0.025},
		{Seq: 1, Start: 512, End: 1024, Delivered: 44, DeliveredFlits: 1408,
			InFlight: 7, BlockedLinks: 1, AvgLatency: 70.25, Throughput: 0.0275},
	}
	root.AttachWindows(windows)
	root.EndAt(t0.Add(time.Second))

	var buf bytes.Buffer
	if err := WriteChrome(&buf, tr.Collect(root.TraceID())); err != nil {
		t.Fatal(err)
	}
	var doc chromeDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v\n%s", err, buf.String())
	}
	type sample struct {
		ts   float64
		args map[string]any
	}
	counters := map[string][]sample{}
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "C" {
			continue
		}
		if ev.Pid != 2 {
			t.Errorf("counter %q on pid %d, want the engine process (2)", ev.Name, ev.Pid)
		}
		counters[ev.Name] = append(counters[ev.Name], sample{ev.Ts, ev.Args})
	}
	for _, name := range []string{"window throughput", "window latency", "window backlog"} {
		got := counters[name]
		if len(got) != len(windows) {
			t.Fatalf("counter %q has %d samples, want %d", name, len(got), len(windows))
		}
		for i, s := range got {
			if s.ts != float64(windows[i].End) {
				t.Errorf("counter %q sample %d at ts %v, want cycle %d", name, i, s.ts, windows[i].End)
			}
		}
	}
	if v := counters["window throughput"][1].args["flits/node/cycle"]; v != 0.0275 {
		t.Errorf("throughput sample = %v, want 0.0275", v)
	}
	if v := counters["window latency"][0].args["cycles"]; v != 74.5 {
		t.Errorf("latency sample = %v, want 74.5", v)
	}
	if v := counters["window backlog"][0].args["in_flight"]; v != 9.0 {
		t.Errorf("backlog sample = %v, want 9", v)
	}
	if v := counters["window backlog"][1].args["blocked_links"]; v != 1.0 {
		t.Errorf("blocked sample = %v, want 1", v)
	}
}
