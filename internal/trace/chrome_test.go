package trace

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"
)

// chromeDoc mirrors the exported document shape for verification.
type chromeDoc struct {
	DisplayTimeUnit string `json:"displayTimeUnit"`
	TraceEvents     []struct {
		Name string         `json:"name"`
		Ph   string         `json:"ph"`
		Ts   float64        `json:"ts"`
		Dur  float64        `json:"dur"`
		Pid  int            `json:"pid"`
		Tid  int64          `json:"tid"`
		Args map[string]any `json:"args"`
	} `json:"traceEvents"`
}

func TestWriteChromeValidJSON(t *testing.T) {
	tr := New(64)
	t0 := time.Date(2026, 8, 7, 12, 0, 0, 0, time.UTC)
	root := tr.StartAt("HTTP POST /run", Context{}, t0)
	run := tr.StartAt("run", root.Context(), t0.Add(time.Millisecond))
	run.Set("algorithm", "Duato")
	run.AttachEngine([]EngineEvent{
		{Cycle: 0, Kind: "inject", Msg: 1, Src: 0, Dst: 5},
		{Cycle: 2, Kind: "route", Msg: 1, Src: 0, Dst: 5, Node: 1, Dir: "E", VC: 3},
		{Cycle: 3, Kind: "flit", Msg: 1, Src: 0, Dst: 5, Node: 1, Dir: "E", Flit: 1},
		{Cycle: 9, Kind: "deliver", Msg: 1, Src: 0, Dst: 5},
		{Cycle: 4, Kind: "inject", Msg: 2, Src: 3, Dst: 7},
		{Cycle: 11, Kind: "kill", Msg: 2, Src: 3, Dst: 7, Cause: "stall"},
		{Cycle: 11, Kind: "watchdog"},
	})
	run.EndAt(t0.Add(40 * time.Millisecond))
	root.EndAt(t0.Add(41 * time.Millisecond))

	var buf bytes.Buffer
	if err := WriteChrome(&buf, tr.Collect(root.TraceID())); err != nil {
		t.Fatal(err)
	}
	var doc chromeDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v\n%s", err, buf.String())
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}

	var serviceSlices, engineSlices, instants, metas int
	var rootTs, rootDur float64
	lifetimes := map[string]bool{}
	for _, e := range doc.TraceEvents {
		switch {
		case e.Ph == "M":
			metas++
		case e.Ph == "X" && e.Pid == chromePidService:
			serviceSlices++
			if e.Name == "HTTP POST /run" {
				rootTs, rootDur = e.Ts, e.Dur
			}
		case e.Ph == "X" && e.Pid == chromePidEngine:
			engineSlices++
			lifetimes[e.Name] = true
		case e.Ph == "i":
			instants++
		default:
			t.Errorf("unexpected event %+v", e)
		}
	}
	if serviceSlices != 2 {
		t.Errorf("service slices = %d, want 2", serviceSlices)
	}
	// Two messages, one lifetime slice each; the victimless watchdog
	// must not fabricate a message track.
	if engineSlices != 2 || !lifetimes["msg 1: 0->5"] || !lifetimes["msg 2: 3->7"] {
		t.Errorf("engine lifetimes = %v", lifetimes)
	}
	if instants != 7 {
		t.Errorf("instants = %d, want 7 (every engine event)", instants)
	}
	// Wall clock is rebased: the earliest span starts at ts 0.
	if rootTs != 0 {
		t.Errorf("root ts = %g, want 0 after rebase", rootTs)
	}
	if rootDur != 41000 {
		t.Errorf("root dur = %g us, want 41000", rootDur)
	}
}

func TestWriteChromeEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChrome(&buf, nil); err != nil {
		t.Fatal(err)
	}
	var doc chromeDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("empty export invalid: %v", err)
	}
	// Process metadata is always present; no span events.
	for _, e := range doc.TraceEvents {
		if e.Ph != "M" {
			t.Fatalf("unexpected event in empty trace: %+v", e)
		}
	}
}
