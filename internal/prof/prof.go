// Package prof wires runtime/pprof into the command-line tools. Both
// cmd/meshsim and cmd/experiments expose -cpuprofile/-memprofile
// flags through it, so a slow sweep can be profiled in place:
//
//	meshsim -rate 0.02 -cycles 200000 -cpuprofile cpu.out
//	go tool pprof cpu.out
//
// bench.sh's "profile" mode is the benchmark-side counterpart (it uses
// go test's own -cpuprofile plumbing); this package exists for
// profiling real experiment workloads rather than micro-benchmarks.
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling to cpuPath and arranges for a heap
// profile to be written to memPath when the returned stop function is
// called. Either path may be empty to skip that profile; with both
// empty, Start is a no-op and stop is still safe to call. The caller
// must invoke stop (typically via defer) before exiting, or the CPU
// profile will be truncated and the heap profile never written.
func Start(cpuPath, memPath string) (stop func(), err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("prof: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("prof: start cpu profile: %w", err)
		}
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, "prof:", err)
				return
			}
			defer f.Close()
			// Materialize the live heap before snapshotting so the
			// profile reflects steady state, not GC timing luck.
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "prof: write heap profile:", err)
			}
		}
	}, nil
}
