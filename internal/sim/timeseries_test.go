package sim

import (
	"testing"
)

func TestWindowsCollected(t *testing.T) {
	p := DefaultParams()
	p.Rate = 0.001
	p.WarmupCycles = 500
	p.MeasureCycles = 4000
	p.WindowCycles = 1000
	res, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Windows) != 4 {
		t.Fatalf("windows = %d, want 4", len(res.Windows))
	}
	var totalDelivered, totalFlits int64
	for i, w := range res.Windows {
		if w.End-w.Start != 1000 {
			t.Errorf("window %d spans %d cycles", i, w.End-w.Start)
		}
		if i > 0 && w.Start != res.Windows[i-1].End {
			t.Errorf("window %d not contiguous", i)
		}
		totalDelivered += w.Delivered
		totalFlits += w.Flits
	}
	if totalDelivered != res.Stats.Delivered {
		t.Errorf("window deliveries %d != total %d", totalDelivered, res.Stats.Delivered)
	}
	if totalFlits != res.Stats.DeliveredFlits {
		t.Errorf("window flits %d != total %d", totalFlits, res.Stats.DeliveredFlits)
	}
	if s := res.Windows[0].String(); s == "" {
		t.Error("empty window string")
	}
}

func TestWindowsOffByDefault(t *testing.T) {
	p := DefaultParams()
	p.Rate = 0.001
	p.WarmupCycles = 100
	p.MeasureCycles = 500
	res, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Windows != nil {
		t.Error("windows collected without WindowCycles")
	}
}

func TestWindowThroughput(t *testing.T) {
	w := Window{Start: 0, End: 1000, Flits: 5000}
	if got := w.Throughput(100); got != 0.05 {
		t.Errorf("throughput = %v, want 0.05", got)
	}
	if got := w.Throughput(0); got != 0 {
		t.Errorf("zero-node throughput = %v", got)
	}
	zero := Window{Start: 5, End: 5}
	if zero.Throughput(100) != 0 {
		t.Error("zero-length window throughput nonzero")
	}
}

func TestStableThroughput(t *testing.T) {
	flat := make([]Window, 8)
	for i := range flat {
		flat[i] = Window{Start: int64(i * 100), End: int64(i*100 + 100), Flits: 1000}
	}
	if !StableThroughput(flat, 100, 0.05) {
		t.Error("flat series reported unstable")
	}
	ramp := make([]Window, 8)
	for i := range ramp {
		ramp[i] = Window{Start: int64(i * 100), End: int64(i*100 + 100), Flits: int64(100 * (i + 1))}
	}
	if StableThroughput(ramp, 100, 0.05) {
		t.Error("ramp reported stable")
	}
	if StableThroughput(flat[:2], 100, 0.05) {
		t.Error("too-short series reported stable")
	}
	empty := make([]Window, 8)
	for i := range empty {
		empty[i] = Window{Start: int64(i * 100), End: int64(i*100 + 100)}
	}
	if StableThroughput(empty, 100, 0.05) {
		t.Error("zero-throughput series reported stable")
	}
}

// TestBelowSaturationIsStable ties the stability check to real runs: a
// load well below saturation must stabilize; far beyond saturation the
// backlog keeps growing.
func TestBelowSaturationIsStable(t *testing.T) {
	p := DefaultParams()
	p.Algorithm = "Duato"
	p.Rate = 0.0008
	p.WarmupCycles = 2000
	p.MeasureCycles = 8000
	p.WindowCycles = 1000
	res, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if !StableThroughput(res.Windows, res.Stats.HealthyNodes, 0.25) {
		t.Errorf("sub-saturation run unstable: %v", res.Windows)
	}
}
