package sim

import (
	"math"

	"wormmesh/internal/core"
)

// Statistical steady-state handling: MSER-style warm-up truncation and
// a relative-precision (batch-means CI half-width) stopping rule.
//
// Both detectors observe the engine through core.Network.LiveCounters
// only — strictly read-only and RNG-free — so a run with detection
// enabled follows the exact engine trajectory of a fixed run of the
// same length. That is the bit-exactness contract the equivalence test
// locks in: an "mser" run and a fixed run whose WarmupCycles equals the
// detected EffectiveWarmup produce identical Stats.

// DefaultSteadyWindow is the batch width (in cycles) used by both
// detectors when Params.SteadyWindow is zero.
const DefaultSteadyWindow = 500

// minWarmupBatches is the number of batches the warm-up detector
// collects before it starts evaluating the MSER statistic; with fewer
// observations the truncation estimate is noise.
const minWarmupBatches = 10

// warmupDetector implements a sequential MSER-style truncation rule
// over batch means of message latency. After every batch it computes
// the classic MSER truncation point d* = argmin_d var(x[d:]) / (n-d)²
// over the batch means collected so far; while the series is still in
// its transient, the minimum sits in the most recent half (truncating
// almost everything is what minimizes the statistic), so detection
// triggers only once d* falls into the FIRST half — the standard
// "d* ≤ n/2" validity heuristic. Warm-up then ends at the current
// cycle: the transient occupies the first d* batches and an equally
// long steady tail has accumulated behind it, which is exactly the
// evidence the heuristic requires.
type warmupDetector struct {
	window  int64
	prevCyc int64
	prev    core.LiveCounters
	lastLat float64
	batches []float64
}

func newWarmupDetector(net *core.Network, window int64) *warmupDetector {
	return &warmupDetector{
		window:  window,
		prevCyc: net.Cycle(),
		prev:    net.LiveCounters(),
		batches: make([]float64, 0, 64),
	}
}

// observe ingests one cycle; it returns true when steady state is
// detected at the current cycle (always a batch boundary).
func (d *warmupDetector) observe(net *core.Network) bool {
	if net.Cycle()-d.prevCyc < d.window {
		return false
	}
	cur := net.LiveCounters()
	lat := d.lastLat
	if dc := cur.LatencyCount - d.prev.LatencyCount; dc > 0 {
		lat = float64(cur.LatencySum-d.prev.LatencySum) / float64(dc)
		d.lastLat = lat
	}
	// A batch with no deliveries carries the previous batch mean so the
	// series stays aligned with time; at any load worth measuring this
	// is rare.
	d.batches = append(d.batches, lat)
	d.prev = cur
	d.prevCyc = net.Cycle()
	if len(d.batches) < minWarmupBatches {
		return false
	}
	dstar, ok := mserTruncation(d.batches)
	return ok && dstar*2 <= len(d.batches)
}

// mserTruncation returns the MSER truncation point over a series of
// batch means: the d in [0, n-minTail] minimizing the squared standard
// error of the truncated mean, sum_{i>=d}(x_i - mean(x[d:]))² / (n-d)².
// ok is false when the series is too short or degenerate (zero
// variance everywhere — nothing to truncate).
func mserTruncation(x []float64) (dstar int, ok bool) {
	const minTail = 5
	n := len(x)
	if n < minTail+1 {
		return 0, false
	}
	// Suffix sums let each candidate d be evaluated in O(1).
	sum, sumSq := 0.0, 0.0
	best, bestD := math.Inf(1), -1
	for d := n - 1; d >= 0; d-- {
		sum += x[d]
		sumSq += x[d] * x[d]
		m := float64(n - d)
		if int(m) < minTail {
			continue
		}
		mean := sum / m
		variance := sumSq/m - mean*mean
		if variance < 0 {
			variance = 0
		}
		// MSER statistic: variance of the tail over its length, i.e.
		// sum of squared deviations / (n-d)². Ties (a flat series)
		// break toward the smaller d — truncate as little as possible —
		// which the descending loop gets via <=.
		z := variance / m
		if z <= best {
			best = z
			bestD = d
		}
	}
	if bestD < 0 {
		return 0, false
	}
	return bestD, true
}

// ciStopper implements the relative-precision stopping rule: batch
// means of latency are accumulated during measurement, and once the
// Student-t 95% confidence half-width of their mean falls below
// rel × mean (with at least minBatches batches), measurement stops.
type ciStopper struct {
	window  int64
	rel     float64
	prevCyc int64
	prev    core.LiveCounters
	batches []float64
	// half is the most recently computed CI half-width in cycles,
	// valid once at least two batches with deliveries accumulated.
	half float64
	mean float64
}

// minStopBatches is the floor before the stopping rule may fire; a CI
// from a handful of batches is too optimistic to act on.
const minStopBatches = 10

func newCIStopper(net *core.Network, window int64, rel float64) *ciStopper {
	return &ciStopper{
		window:  window,
		rel:     rel,
		prevCyc: net.Cycle(),
		prev:    net.LiveCounters(),
		batches: make([]float64, 0, 64),
		half:    math.NaN(),
		mean:    math.NaN(),
	}
}

// observe ingests one cycle; it returns true when the precision target
// is met at the current batch boundary.
func (c *ciStopper) observe(net *core.Network) bool {
	if net.Cycle()-c.prevCyc < c.window {
		return false
	}
	cur := net.LiveCounters()
	dc := cur.LatencyCount - c.prev.LatencyCount
	if dc > 0 {
		c.batches = append(c.batches,
			float64(cur.LatencySum-c.prev.LatencySum)/float64(dc))
	}
	c.prev = cur
	c.prevCyc = net.Cycle()
	n := len(c.batches)
	if n < 2 {
		return false
	}
	sum, sumSq := 0.0, 0.0
	for _, v := range c.batches {
		sum += v
		sumSq += v * v
	}
	fn := float64(n)
	mean := sum / fn
	variance := (sumSq - fn*mean*mean) / (fn - 1)
	if variance < 0 {
		variance = 0
	}
	c.mean = mean
	c.half = tCritical95(n-1) * math.Sqrt(variance/fn)
	return n >= minStopBatches && mean > 0 && c.half <= c.rel*mean
}

// tCritical95 returns the two-sided 95% critical value of Student's t
// with df degrees of freedom (tabulated; the asymptote 1.96 beyond).
// Duplicated from internal/sweep, which sits above sim in the import
// graph.
func tCritical95(df int) float64 {
	table := []float64{0, 12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365,
		2.306, 2.262, 2.228, 2.201, 2.179, 2.160, 2.145, 2.131, 2.120,
		2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060,
		2.056, 2.052, 2.048, 2.045, 2.042}
	if df < len(table) {
		return table[df]
	}
	switch {
	case df >= 120:
		return 1.980
	case df >= 60:
		return 2.000
	case df >= 40:
		return 2.021
	default:
		return 2.030
	}
}
