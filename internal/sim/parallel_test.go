package sim

import (
	"testing"

	"wormmesh/internal/routing"
)

// TestParallelEngineWithRealAlgorithms drives every routing algorithm
// through the parallel engine on a faulty mesh and checks traffic
// flows and the worker-count invariance end to end.
func TestParallelEngineWithRealAlgorithms(t *testing.T) {
	for _, name := range routing.AlgorithmNames {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			run := func(workers int) Result {
				p := DefaultParams()
				p.Algorithm = name
				p.Rate = 0.002
				p.Faults = 5
				p.WarmupCycles = 400
				p.MeasureCycles = 1600
				p.EngineWorkers = workers
				res, err := Run(p)
				if err != nil {
					t.Fatal(err)
				}
				return res
			}
			two := run(2)
			if two.Stats.Delivered == 0 {
				t.Fatalf("%s: parallel engine delivered nothing", name)
			}
			four := run(4)
			if two.Stats.Delivered != four.Stats.Delivered ||
				two.Stats.LatencySum != four.Stats.LatencySum {
				t.Errorf("%s: worker count changed results: %d/%d vs %d/%d",
					name, two.Stats.Delivered, two.Stats.LatencySum,
					four.Stats.Delivered, four.Stats.LatencySum)
			}
		})
	}
}

// TestParallelEngineLargeMesh exercises the parallel engine on a mesh
// four times the paper's size — its intended use case.
func TestParallelEngineLargeMesh(t *testing.T) {
	if testing.Short() {
		t.Skip("large mesh")
	}
	p := DefaultParams()
	p.Width, p.Height = 20, 20
	p.Algorithm = "Duato"
	p.Rate = 0.001
	p.Faults = 20
	p.WarmupCycles = 500
	p.MeasureCycles = 2500
	p.EngineWorkers = 4
	res, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Delivered == 0 {
		t.Fatal("no deliveries on 20x20")
	}
	if res.Stats.AvgDetour() > 6 {
		t.Errorf("average detour %.1f hops suspicious", res.Stats.AvgDetour())
	}
}
