package sim

import (
	"reflect"
	"testing"
)

func poolParams() Params {
	p := DefaultParams()
	p.Width, p.Height = 6, 6
	p.Rate = 0.002
	p.MessageLength = 20
	p.WarmupCycles = 200
	p.MeasureCycles = 800
	return p
}

func TestRunnerPoolReusesRunners(t *testing.T) {
	pool := NewRunnerPool(2)
	defer pool.Close()
	r1 := pool.Get()
	pool.Put(r1)
	if pool.Idle() != 1 {
		t.Fatalf("idle = %d after one Put", pool.Idle())
	}
	if r2 := pool.Get(); r2 != r1 {
		t.Error("Get did not hand back the parked Runner")
	} else {
		pool.Put(r2)
	}
}

func TestRunnerPoolIdleCap(t *testing.T) {
	pool := NewRunnerPool(2)
	defer pool.Close()
	runners := []*Runner{pool.Get(), pool.Get(), pool.Get()}
	for _, r := range runners {
		pool.Put(r)
	}
	if pool.Idle() != 2 {
		t.Fatalf("idle = %d, want cap 2", pool.Idle())
	}
}

func TestRunnerPoolClosedPutCloses(t *testing.T) {
	pool := NewRunnerPool(2)
	r := pool.Get()
	pool.Close()
	pool.Put(r) // must Close r, not park it
	if pool.Idle() != 0 {
		t.Fatalf("idle = %d after Close", pool.Idle())
	}
}

// TestRunnerPoolBitIdentical: a Runner that already ran other
// configurations, returned through the pool and checked out again,
// reproduces a fresh Runner's Stats bit for bit — the determinism
// contract that makes pooled serving (and result caching) safe.
func TestRunnerPoolBitIdentical(t *testing.T) {
	p := poolParams()
	fresh, err := NewRunner().Run(p)
	if err != nil {
		t.Fatal(err)
	}

	pool := NewRunnerPool(1)
	defer pool.Close()
	r := pool.Get()
	dirty := p
	dirty.Algorithm = "NHop"
	dirty.Faults = 3
	dirty.Seed = 99
	if _, err := r.Run(dirty); err != nil {
		t.Fatal(err)
	}
	pool.Put(r)

	r2 := pool.Get()
	if r2 != r {
		t.Fatal("pool built a new Runner with one idle")
	}
	pooled, err := r2.Run(p)
	pool.Put(r2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fresh.Stats, pooled.Stats) {
		t.Errorf("pooled Stats diverged from fresh Runner:\nfresh:  %+v\npooled: %+v", fresh.Stats, pooled.Stats)
	}
}
