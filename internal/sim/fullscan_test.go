package sim

import (
	"fmt"
	"testing"

	"wormmesh/internal/core"
	"wormmesh/internal/fault"
	"wormmesh/internal/topology"
)

// TestWorklistMatchesFullScan locks in the activity-driven engine's
// equivalence contract (core/worklist.go): stepping through the
// dirty-router worklists — including the quiescent-cycle short-circuit
// — must produce Stats bit-identical to the original full-mesh scans
// (core.DebugFullScan), for the serial engine and the parallel engine
// at every worker count, across the load regimes the paper sweeps:
//
//   - low load (most cycles quiescent, the short-circuit dominates),
//   - the latency knee (mixed idle/busy routers every cycle),
//   - near saturation (the worklist is almost the whole mesh, stressing
//     membership maintenance rather than skipping).
//
// The fault scenarios mirror the memoization equivalence tests: none
// (fault-free), an interior block (closed f-rings), and a boundary
// chain (open f-chain), so ring traffic, misrouting and watchdog kills
// all appear in at least one cell.
func TestWorklistMatchesFullScan(t *testing.T) {
	mesh := topology.New(10, 10)
	scenarios := []struct {
		name    string
		pattern string // canned fault pattern; "" = fault-free
	}{
		{"fault-free", ""},
		{"interior-block", "center-block"},
		{"boundary-chain", "boundary-chain"},
	}
	rates := []struct {
		name string
		rate float64
	}{
		{"low", 0.001},       // 0.032 flits/node/cycle offered: mostly idle
		{"knee", 0.008},      // around the latency knee for 32-flit messages
		{"saturation", 0.02}, // 0.64 flits/node/cycle: past saturation
	}
	for _, sc := range scenarios {
		var nodes []topology.NodeID
		if sc.pattern != "" {
			var err error
			nodes, err = fault.NamedPattern(sc.pattern, mesh)
			if err != nil {
				t.Fatal(err)
			}
		}
		for _, rt := range rates {
			for _, workers := range []int{0, 1, 2, 4} {
				name := fmt.Sprintf("%s/%s/workers-%d", sc.name, rt.name, workers)
				t.Run(name, func(t *testing.T) {
					p := DefaultParams()
					p.Algorithm = "Duato-Nbc"
					p.Rate = rt.rate
					p.MessageLength = 32
					p.WarmupCycles = 300
					p.MeasureCycles = 1200
					p.Seed = 90125
					p.EngineWorkers = workers
					if nodes != nil {
						p.FaultNodes = nodes
					}
					run := func(fullScan bool) (Result, error) {
						core.DebugFullScan = fullScan
						defer func() { core.DebugFullScan = false }()
						return Run(p)
					}
					worklist, err := run(false)
					if err != nil {
						t.Fatal(err)
					}
					scanned, err := run(true)
					if err != nil {
						t.Fatal(err)
					}
					if worklist.Stats.Delivered == 0 {
						t.Fatal("scenario delivered nothing; equivalence would be vacuous")
					}
					if !statsEqual(worklist.Stats, scanned.Stats) {
						t.Errorf("worklist run diverged from full-scan run:\n  worklist: %+v\n  fullscan: %+v",
							worklist.Stats, scanned.Stats)
					}
				})
			}
		}
	}
}
