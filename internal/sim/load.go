package sim

import (
	"wormmesh/internal/topology"
)

// LoadDistribution summarizes how traffic spreads over nodes,
// partitioned into the nodes on f-rings versus the rest — the paper's
// Figure 6 analysis. Shares are group means relative to the hottest
// node, so a flat distribution scores near 100% for both groups and a
// ring-corner hotspot drags the shares down.
type LoadDistribution struct {
	// RingShare and OtherShare are each group's mean per-node load as
	// a fraction of the peak per-node load.
	RingShare  float64
	OtherShare float64
	// PeakLoad is the hottest node's crossbar traversals per cycle;
	// PeakUtilization normalizes it by the crossbar's 5-flit/cycle
	// ceiling.
	PeakLoad        float64
	PeakUtilization float64
	PeakNode        topology.NodeID
	RingNodes       int
	OtherNodes      int
}

// LoadDistribution computes the distribution using the run's own
// f-ring node set.
func (r Result) LoadDistribution() LoadDistribution {
	ring := map[topology.NodeID]bool{}
	for id := topology.NodeID(0); int(id) < r.Faults.Topo.NodeCount(); id++ {
		if !r.Faults.IsFaulty(id) && r.Faults.OnAnyRing(id) {
			ring[id] = true
		}
	}
	return r.LoadDistributionFor(ring)
}

// LoadDistributionFor computes the distribution against an explicit
// ring-node set, so a fault-free run can be scored on the nodes that
// WOULD ring the reference fault pattern (the paper's 0% bars).
func (r Result) LoadDistributionFor(ringNodes map[topology.NodeID]bool) LoadDistribution {
	var d LoadDistribution
	cycles := float64(r.Stats.Cycles)
	if cycles == 0 {
		return d
	}
	var ringSum, otherSum, peak float64
	for id, crossings := range r.Stats.NodeCrossings {
		nid := topology.NodeID(id)
		if r.Faults.IsFaulty(nid) {
			continue
		}
		load := float64(crossings) / cycles
		if load > peak {
			peak = load
			d.PeakNode = nid
		}
		if ringNodes[nid] {
			ringSum += load
			d.RingNodes++
		} else {
			otherSum += load
			d.OtherNodes++
		}
	}
	d.PeakLoad = peak
	d.PeakUtilization = peak / 5 // 4 outputs + ejection
	if peak == 0 {
		return d
	}
	if d.RingNodes > 0 {
		d.RingShare = ringSum / float64(d.RingNodes) / peak
	}
	if d.OtherNodes > 0 {
		d.OtherShare = otherSum / float64(d.OtherNodes) / peak
	}
	return d
}
