// Package sim runs single simulations: it wires the mesh, fault
// pattern, routing algorithm, traffic source and engine together,
// handles warm-up, and derives the metrics the paper reports.
package sim

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"wormmesh/internal/core"
	"wormmesh/internal/fault"
	"wormmesh/internal/metrics"
	"wormmesh/internal/topology"
)

// Params fully specifies one simulation. The zero value is not
// runnable; start from DefaultParams.
type Params struct {
	Width, Height int
	// Topology selects the network backend: "mesh" (the default when
	// empty, matching the paper) or "torus". Torus runs are restricted
	// to the algorithms whose fortification is deadlock-free over wrap
	// links (routing.SupportsTopology).
	Topology  string
	Algorithm string
	Pattern   string

	// Rate is the traffic generation rate in messages per node per
	// cycle (the paper's x-axis); MessageLength is in flits.
	Rate          float64
	MessageLength int

	WarmupCycles  int64
	MeasureCycles int64
	// WindowCycles, when non-zero, additionally collects per-window
	// time series during the measurement phase (Result.Windows).
	WindowCycles int64

	// WarmupMode selects how the warm-up truncation point is chosen.
	// "" or "fixed" discards exactly WarmupCycles (the bit-exact
	// default). "mser" runs sequential MSER-style detection over
	// SteadyWindow-cycle batches of mean latency and cuts the
	// measurement window at the detected cycle; WarmupCycles then acts
	// as the cap — if no steady state is detected by then, the run
	// falls back to the fixed cut. The cycle actually discarded is
	// reported in Stats.EffectiveWarmup either way. Detection observes
	// live counters only (read-only, RNG-free), so an "mser" run is
	// bit-identical to a fixed run with WarmupCycles set to the
	// detected value.
	WarmupMode string
	// SteadyWindow is the batch width in cycles for both steady-state
	// detectors (warm-up MSER batches and the stopping rule's CI
	// batches). Zero means DefaultSteadyWindow.
	SteadyWindow int64
	// StopRelPrecision, when > 0, enables the relative-precision
	// stopping rule: measurement ends early once the 95% batch-means
	// confidence half-width of mean latency falls below this fraction
	// of the mean (e.g. 0.05 for ±5%). MeasureCycles caps the
	// measurement either way. The achieved half-width is reported in
	// Stats.LatencyCIHalf. Note that stopping early changes Stats (the
	// window is shorter), so unlike pure observers this field is part
	// of a run's identity.
	StopRelPrecision float64
	// EngineWorkers >= 1 switches the engine to the deterministic
	// parallel request–grant mode with that many workers, useful for
	// meshes much larger than the paper's. Results are reproducible
	// for a given seed regardless of the worker count — EngineWorkers=1
	// runs the parallel arbitration model on a single thread and yields
	// bit-identical statistics to any other worker count. Zero (the
	// default) selects the serial engine, whose arbitration model
	// differs slightly (see core/parallel.go).
	EngineWorkers int
	// TraceWriter, when non-nil, receives the engine's event stream
	// as JSON lines (core.Recorder); TraceFlits additionally records
	// every flit hop. Writers are excluded from JSON manifests.
	TraceWriter io.Writer `json:"-"`
	TraceFlits  bool

	// PostmortemWriter, when non-nil, receives a rendered deadlock
	// post-mortem (core.Postmortem.Render) each time the global
	// watchdog fires: the message→VC wait-for graph captured before
	// the recovery victim is torn down. Setting it also installs a
	// flight recorder so reports carry the last engine events.
	PostmortemWriter io.Writer `json:"-"`
	// FlightRecorderEvents, when > 0, installs a core.FlightRecorder
	// with that ring capacity for the run — a zero-allocation black
	// box cheap enough to leave on during sweeps. Zero leaves it off
	// unless PostmortemWriter is set, which installs one at the
	// default capacity (core.DefaultFlightRecorderEvents).
	FlightRecorderEvents int
	// FlightRecorder, when non-nil, installs this specific recorder
	// for the run instead of building one — the serve layer's engine
	// bridge hands each job its own ring and decodes it into trace
	// spans after the run. Takes precedence over FlightRecorderEvents.
	// Like every observer it never changes Stats and is excluded from
	// JSON manifests.
	FlightRecorder *core.FlightRecorder `json:"-"`

	// Metrics, when non-nil, receives live engine telemetry every
	// MetricsInterval cycles (default 1024) plus once at run end.
	// Sampling is read-only and RNG-free, so results are unchanged.
	Metrics         *metrics.Sim `json:"-"`
	MetricsInterval int64

	// Sampler, when non-nil, is the time-resolved telemetry observer:
	// the runner Starts it against the network and Ticks it every
	// cycle, so window snapshots stream into its ring for live readers
	// (SSE, dashboards) while the run executes. Like every observer it
	// is read-only and RNG-free — Stats are bit-identical with or
	// without it — and excluded from JSON manifests.
	Sampler *core.WindowSampler `json:"-"`

	// Faults is the number of randomly failed nodes. FaultNodes, when
	// non-nil, overrides random generation with an explicit pattern
	// (Figure 6's canned regions).
	Faults     int
	FaultNodes []topology.NodeID
	// FaultSeed seeds fault-pattern generation only, so the same seed
	// yields the same pattern for every algorithm — the paper's
	// "comparative performance across fault cases is in accordance
	// with the fault sets used".
	FaultSeed int64
	// Seed seeds traffic generation and in-network arbitration.
	Seed int64

	Config core.Config
}

// DefaultParams returns the paper's baseline configuration: a 10×10
// mesh, 100-flit messages, 24 virtual channels per physical channel,
// 30 000 cycles with the first 10 000 discarded as warm-up.
func DefaultParams() Params {
	return Params{
		Width:         10,
		Height:        10,
		Algorithm:     "Duato",
		Pattern:       "uniform",
		Rate:          0.001,
		MessageLength: 100,
		WarmupCycles:  10000,
		MeasureCycles: 20000,
		FaultSeed:     1,
		Seed:          1,
		Config:        DefaultEngineConfig(),
	}
}

// DefaultEngineConfig is core.DefaultConfig plus the source-queue
// bound that keeps past-saturation runs at finite memory.
func DefaultEngineConfig() core.Config {
	cfg := core.DefaultConfig()
	cfg.MaxSourceQueue = 16
	return cfg
}

// Result carries the measured statistics and the context needed to
// interpret them.
type Result struct {
	Params Params
	Stats  core.Stats
	Faults *fault.Model

	FaultCount       int // total unusable nodes (seed + deactivated)
	SeedFaults       int
	RingNodes        int
	Regions          int
	Elapsed          time.Duration
	UndeliveredAtEnd int

	// Windows holds the per-window time series when
	// Params.WindowCycles is set.
	Windows []Window

	// Links holds the per-link congestion counters for the measurement
	// window when Params.Config.ChannelTelemetry is set; nil otherwise.
	Links *core.LinkStats
}

// Run executes one simulation.
func Run(p Params) (Result, error) {
	if p.Width == 0 || p.Height == 0 {
		return Result{}, fmt.Errorf("sim: mesh dimensions not set")
	}
	f, err := BuildFaults(p)
	if err != nil {
		return Result{}, err
	}
	return RunWithFaults(p, f)
}

// BuildFaults materializes the fault model a Params describes.
func BuildFaults(p Params) (*fault.Model, error) {
	topo, err := topology.Make(p.Topology, p.Width, p.Height)
	if err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	if p.FaultNodes != nil {
		return fault.New(topo, p.FaultNodes)
	}
	if p.Faults == 0 {
		return fault.None(topo), nil
	}
	frng := rand.New(rand.NewSource(p.FaultSeed))
	return fault.Generate(topo, p.Faults, frng, fault.Options{})
}

// RunWithFaults executes one simulation over a pre-built fault model
// (so sweeps can share one pattern across algorithms and loads). It is
// a one-shot Runner: drivers that execute many simulations should own a
// Runner and call its methods directly to reuse the network, source and
// caches across runs (internal/sweep's workers do).
func RunWithFaults(p Params, f *fault.Model) (Result, error) {
	r := NewRunner()
	defer r.Close()
	return r.RunWithFaults(p, f)
}

// NormalizedThroughput is the accepted traffic as a fraction of the
// fault-free network's uniform-traffic bisection capacity in flits per
// node per cycle — the closest well-defined analogue of the paper's
// "messages received over messages that can be transmitted at the
// maximum load". A W×H mesh's bisection is 2·min(W,H) bidirectional
// links, giving 4·min(W,H)/(W·H); the torus's wrap links double the
// bisection to 8·min(W,H)/(W·H), so the same topology size normalizes
// against its own capacity and mesh-vs-torus comparisons are at equal
// bisection bandwidth.
func (r Result) NormalizedThroughput() float64 {
	minDim := r.Params.Width
	if r.Params.Height < minDim {
		minDim = r.Params.Height
	}
	nodes := float64(r.Params.Width * r.Params.Height)
	capacity := 4 * float64(minDim) / nodes
	if r.Params.Topology == "torus" {
		capacity *= 2
	}
	return r.Stats.Throughput() / capacity
}

// OfferedLoad returns the configured offered traffic in flits per node
// per cycle.
func (r Result) OfferedLoad() float64 {
	return r.Params.Rate * float64(r.Params.MessageLength)
}

// AcceptanceRatio is delivered traffic over generated traffic — near 1
// below saturation, dropping once the network saturates.
func (r Result) AcceptanceRatio() float64 {
	if r.Stats.Generated == 0 {
		return 0
	}
	return float64(r.Stats.Delivered) / float64(r.Stats.Generated)
}
