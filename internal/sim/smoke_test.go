package sim

import (
	"testing"

	"wormmesh/internal/routing"
)

// TestSmokeAllAlgorithms runs every algorithm briefly, fault-free and
// with faults, checking that traffic flows and nothing wedges.
func TestSmokeAllAlgorithms(t *testing.T) {
	for _, name := range routing.AlgorithmNames {
		for _, faults := range []int{0, 5} {
			name, faults := name, faults
			t.Run(name, func(t *testing.T) {
				t.Parallel()
				p := DefaultParams()
				p.Algorithm = name
				p.Rate = 0.002
				p.WarmupCycles = 1000
				p.MeasureCycles = 4000
				p.Faults = faults
				res, err := Run(p)
				if err != nil {
					t.Fatalf("Run: %v", err)
				}
				if res.Stats.Delivered == 0 {
					t.Fatalf("%s faults=%d: no messages delivered (generated=%d injected=%d killed=%d)",
						name, faults, res.Stats.Generated, res.Stats.Injected, res.Stats.Killed)
				}
				if lat := res.Stats.AvgLatency(); lat < float64(p.MessageLength) {
					t.Errorf("%s: avg latency %.1f below serialization bound %d", name, lat, p.MessageLength)
				}
				t.Logf("%s faults=%d: delivered=%d latency=%.1f thr=%.4f killed=%d deadlocks=%d detour=%.2f",
					name, faults, res.Stats.Delivered, res.Stats.AvgLatency(), res.Stats.Throughput(),
					res.Stats.Killed, res.Stats.DeadlockEvents, res.Stats.AvgDetour())
			})
		}
	}
}
