package sim

import (
	"testing"

	"wormmesh/internal/fault"
	"wormmesh/internal/routing"
	"wormmesh/internal/topology"
)

// TestMemoizedRoutingMatchesScanning locks in the static-fault
// memoization's bit-identical contract (internal/routing/memo.go): for
// EVERY registered algorithm, a run with the memo tables enabled must
// produce the same Stats — the whole value, per-VC and per-node slices
// included — as a run through the original scanning code paths
// (routing.DebugNoCache). Three fault scenarios cover the cache's
// distinct regimes: no faults (the allHealthy filter-skip everywhere),
// an interior block (closed f-rings, both orientations viable), and a
// boundary block (an open f-chain, where orientation scans hit chain
// ends and traversals reverse).
func TestMemoizedRoutingMatchesScanning(t *testing.T) {
	mesh := topology.New(10, 10)
	scenarios := []struct {
		name    string
		pattern string // canned fault pattern; "" = fault-free
	}{
		{"fault-free", ""},
		{"interior-block", "center-block"},
		{"boundary-chain", "boundary-chain"},
	}
	for _, sc := range scenarios {
		var nodes []topology.NodeID
		if sc.pattern != "" {
			var err error
			nodes, err = fault.NamedPattern(sc.pattern, mesh)
			if err != nil {
				t.Fatal(err)
			}
		}
		for _, alg := range routing.AlgorithmNames {
			t.Run(sc.name+"/"+alg, func(t *testing.T) {
				p := DefaultParams()
				p.Algorithm = alg
				p.Rate = 0.003
				p.MessageLength = 16
				p.WarmupCycles = 200
				p.MeasureCycles = 1000
				p.Seed = 77
				if nodes != nil {
					p.FaultNodes = nodes
				}
				run := func(noCache bool) (Result, error) {
					routing.DebugNoCache = noCache
					defer func() { routing.DebugNoCache = false }()
					return Run(p)
				}
				cached, err := run(false)
				if err != nil {
					t.Fatal(err)
				}
				scanned, err := run(true)
				if err != nil {
					t.Fatal(err)
				}
				if cached.Stats.Delivered == 0 {
					t.Fatal("scenario delivered nothing; equivalence would be vacuous")
				}
				if !statsEqual(cached.Stats, scanned.Stats) {
					t.Errorf("memoized run diverged from scanning run:\n  cached:  %+v\n  scanned: %+v",
						cached.Stats, scanned.Stats)
				}
			})
		}
	}
}
